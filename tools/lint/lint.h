// cqcs_lint: repo-specific, token-level lint rules for invariants the
// compiler cannot see. Each rule encodes a contract that an earlier PR's
// review caught by hand; the lint pass makes regressing it a test failure
// (`ctest -L lint`). docs/static_analysis.md is the human-facing catalogue.
//
// Rules (names are what waivers reference):
//
//   unpolled-loop   Governed hot-path files (rel/ops.cc, treewidth/
//                   hom_dp.cc, cq/acyclic.cc) run loops whose bounds are
//                   attacker-/input-sized; every OUTERMOST loop must
//                   reference the governor poll machinery (`Poll`,
//                   `trip_flag`, `governor`, `SyncCharge`, `cancel`)
//                   somewhere in its body, or carry a waiver saying why it
//                   is bounded.
//   banned-abort    Input-reachable modules (core/io, serve/) must not
//                   contain CQCS_CHECK / abort(): arbitrarily corrupt bytes
//                   reach these files, and PRs 6/8 converted their aborts
//                   to Result<> — this rule keeps them converted.
//   banned-call     Library code must not call std::rand/srand (use
//                   common/rng.h) or system().
//   header-guard    Every header carries the canonical include guard
//                   derived from its path (CQCS_<PATH>_H_).
//   header-first    A .cc file with a sibling header includes it FIRST, so
//                   every build proves the header self-contained.
//   waiver          Meta-rule: a malformed waiver (unknown rule name,
//                   missing reason) is itself a finding, and the waiver is
//                   ignored.
//
// Waiver syntax: a comment whose marker is the tool name immediately
// followed by a colon (spelled out here with a space so this very header
// does not parse as a directive — see MakeWaiverComment for the exact
// canonical form):
//
//   // cqcs-lint : allow(rule-name): reason       waives the rule on this
//                                                 line and the next
//   // cqcs-lint : allow-file(rule-name): reason  waives it for the file
//
// The reason is mandatory: a waiver documents a decision, not a shortcut.

#ifndef CQCS_TOOLS_LINT_LINT_H_
#define CQCS_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace cqcs::lint {

/// One rule violation (or malformed waiver). `line` is 1-based.
struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One file to lint. `path` is repo-relative with forward slashes
/// ("src/rel/ops.cc") — rules select themselves by path prefix.
struct FileInput {
  std::string path;
  std::string content;
  /// True when a same-stem .h sits next to this .cc (drives header-first).
  bool has_sibling_header = false;
};

/// A parsed waiver directive.
struct Waiver {
  int line = 0;  ///< 1-based line the directive sits on
  std::string rule;
  std::string reason;
  bool file_scope = false;  ///< allow-file(...) vs allow(...)
};

/// The closed set of rule names (waivers naming anything else are
/// malformed).
const std::vector<std::string>& RuleNames();

/// Renders the canonical waiver comment for `rule` — the exact text
/// ParseWaivers() accepts. Tests assert the round-trip.
std::string MakeWaiverComment(const std::string& rule,
                              const std::string& reason);

/// Extracts waiver directives from `content`. Malformed directives are
/// appended to `findings` (rule "waiver") and not returned.
std::vector<Waiver> ParseWaivers(const std::string& path,
                                 const std::string& content,
                                 std::vector<Finding>* findings);

/// Returns `content` with comment bodies and string/char literals blanked
/// (newlines kept), so token rules cannot fire on prose. Exposed for tests.
std::string StripCommentsAndStrings(const std::string& content);

/// Runs every applicable rule over one file.
std::vector<Finding> LintFile(const FileInput& input);

/// "path:line: [rule] message" — the compiler-style diagnostic line.
std::string FormatFinding(const Finding& f);

}  // namespace cqcs::lint

#endif  // CQCS_TOOLS_LINT_LINT_H_
