#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cqcs::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// 1-based line number of byte offset `pos` in `s`.
int LineOf(const std::string& s, size_t pos) {
  return 1 + static_cast<int>(std::count(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// True when a whole-word occurrence of `word` starts at `pos` in `mask`.
bool WordAt(std::string_view mask, size_t pos, std::string_view word) {
  if (pos + word.size() > mask.size()) return false;
  if (mask.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(mask[pos - 1])) return false;
  size_t end = pos + word.size();
  if (end < mask.size() && IsIdentChar(mask[end])) return false;
  return true;
}

/// Finds whole-word occurrences of `word` in `mask`; optionally requires a
/// '(' as the next non-space character (call-site matching).
std::vector<size_t> FindWord(const std::string& mask, std::string_view word,
                             bool require_call) {
  std::vector<size_t> hits;
  for (size_t pos = mask.find(word); pos != std::string::npos;
       pos = mask.find(word, pos + 1)) {
    if (!WordAt(mask, pos, word)) continue;
    if (require_call) {
      size_t after = pos + word.size();
      while (after < mask.size() && (mask[after] == ' ' || mask[after] == '\t'))
        ++after;
      if (after >= mask.size() || mask[after] != '(') continue;
    }
    hits.push_back(pos);
  }
  return hits;
}

/// Matches the bracket opened at `open` (mask[open] must be '(' or '{');
/// returns the offset one past the closer, or npos if unbalanced.
size_t MatchBracket(const std::string& mask, size_t open) {
  const char open_c = mask[open];
  const char close_c = open_c == '(' ? ')' : '}';
  int depth = 0;
  for (size_t i = open; i < mask.size(); ++i) {
    if (mask[i] == open_c) ++depth;
    else if (mask[i] == close_c && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

struct WaiverIndex {
  std::vector<Waiver> waivers;

  bool Waived(const std::string& rule, int line) const {
    for (const Waiver& w : waivers) {
      if (w.rule != rule) continue;
      if (w.file_scope) return true;
      // An inline waiver covers its own line and the next line, so it can
      // sit either at the end of the offending line or just above it.
      if (line == w.line || line == w.line + 1) return true;
    }
    return false;
  }
};

void Report(std::vector<Finding>* findings, const FileInput& input,
            const WaiverIndex& waivers, int line, const std::string& rule,
            std::string message) {
  if (waivers.Waived(rule, line)) return;
  findings->push_back(Finding{input.path, line, rule, std::move(message)});
}

// ----------------------------------------------------------------- rules ---

/// Files whose loops must stay governed (cooperative Poll/trip machinery).
bool IsGovernedHotPath(const std::string& path) {
  return path == "src/rel/ops.cc" || path == "src/treewidth/hom_dp.cc" ||
         path == "src/cq/acyclic.cc" || path == "src/common/work_pool.cc";
}

/// Input-reachable modules: arbitrarily corrupt bytes get here, so aborts
/// are banned (Result<> instead).
bool IsInputReachable(const std::string& path) {
  return StartsWith(path, "src/core/io") || StartsWith(path, "src/serve/");
}

bool IsLibraryCode(const std::string& path) {
  return StartsWith(path, "src/") || StartsWith(path, "tools/");
}

void CheckUnpolledLoops(const FileInput& input, const std::string& mask,
                        const WaiverIndex& waivers,
                        std::vector<Finding>* findings) {
  static const char* kGovernedTokens[] = {"Poll", "trip_flag", "governor",
                                          "SyncCharge", "cancel"};
  size_t outer_end = 0;  // end of the current outermost loop span
  for (size_t i = 0; i < mask.size(); ++i) {
    bool is_for = WordAt(mask, i, "for");
    bool is_while = WordAt(mask, i, "while");
    bool is_do = WordAt(mask, i, "do");
    if (!is_for && !is_while && !is_do) continue;
    if (i < outer_end) continue;  // nested in an already-checked loop
    size_t after_head;
    if (is_do) {
      // `do { body } while (cond);` — the braces are the span; the tail
      // `while` lands past outer_end but its head holds no nested loop, so
      // it can never re-fire.
      after_head = i + 2;
    } else {
      size_t open = mask.find_first_not_of(" \t\n", i + (is_for ? 3 : 5));
      if (open == std::string::npos || mask[open] != '(') continue;
      after_head = MatchBracket(mask, open);
      if (after_head == std::string::npos) continue;
    }
    size_t body = mask.find_first_not_of(" \t\n", after_head);
    if (body == std::string::npos) continue;
    size_t end;
    if (mask[body] == '{') {
      end = MatchBracket(mask, body);
      if (end == std::string::npos) continue;
    } else {
      end = mask.find(';', body);
      if (end == std::string::npos) continue;
      ++end;
    }
    outer_end = end;
    std::string_view span(mask.data() + i, end - i);
    // Only nested loop structures must poll: a flat loop in these files is
    // a single pass over an already-charged materialization, amortized by
    // the SyncCharge that built it. Superlinear work — the thing a budget
    // exists to interrupt — needs a loop inside the loop.
    std::string_view body_span(mask.data() + after_head, end - after_head);
    bool nested = false;
    for (size_t j = 0; j + 3 < body_span.size(); ++j) {
      if (WordAt(body_span, j, "for") || WordAt(body_span, j, "while")) {
        nested = true;
        break;
      }
    }
    if (!nested) continue;
    bool governed = false;
    for (const char* token : kGovernedTokens) {
      if (span.find(token) != std::string_view::npos) {
        governed = true;
        break;
      }
    }
    if (!governed) {
      Report(findings, input, waivers, LineOf(mask, i), "unpolled-loop",
             "nested outermost loop in a governed hot-path file never "
             "references the governor (Poll/trip_flag); add a poll or waive "
             "with the bound that makes it safe");
    }
  }
}

void CheckBannedAbort(const FileInput& input, const std::string& mask,
                      const WaiverIndex& waivers,
                      std::vector<Finding>* findings) {
  for (size_t pos : FindWord(mask, "CQCS_CHECK", false)) {
    // CQCS_CHECK also prefixes CQCS_CHECK_MSG; both abort.
    Report(findings, input, waivers, LineOf(mask, pos), "banned-abort",
           "CQCS_CHECK aborts the process; this module is input-reachable — "
           "return a Status instead (see PRs 6/8)");
  }
  for (size_t pos : FindWord(mask, "abort", true)) {
    Report(findings, input, waivers, LineOf(mask, pos), "banned-abort",
           "abort() in an input-reachable module; return a Status instead");
  }
}

void CheckBannedCalls(const FileInput& input, const std::string& mask,
                      const WaiverIndex& waivers,
                      std::vector<Finding>* findings) {
  for (std::string_view fn : {"rand", "srand"}) {
    // Matches qualified and unqualified spellings alike (std::rand, rand);
    // the repo owns no member named rand, so strict is safe.
    for (size_t pos : FindWord(mask, fn, true)) {
      Report(findings, input, waivers, LineOf(mask, pos), "banned-call",
             std::string(fn) +
                 "() is unseeded global state; use common/rng.h");
    }
  }
  for (size_t pos : FindWord(mask, "system", true)) {
    Report(findings, input, waivers, LineOf(mask, pos), "banned-call",
           "system() spawns a shell from library code");
  }
}

std::string ExpectedGuard(const std::string& path) {
  std::string body = StartsWith(path, "src/") ? path.substr(4) : path;
  std::string guard = "CQCS_";
  for (char c : body) {
    guard += IsIdentChar(c) && c != '_'
                 ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  // "foo.h" became "FOO_H"; the trailing '_' above finishes "FOO_H_".
  return guard;
}

void CheckHeaderGuard(const FileInput& input, const WaiverIndex& waivers,
                      std::vector<Finding>* findings) {
  const std::string guard = ExpectedGuard(input.path);
  const bool has_ifndef =
      input.content.find("#ifndef " + guard) != std::string::npos;
  const bool has_define =
      input.content.find("#define " + guard) != std::string::npos;
  if (!has_ifndef || !has_define) {
    Report(findings, input, waivers, 1, "header-guard",
           "missing canonical include guard " + guard);
  }
}

void CheckHeaderFirst(const FileInput& input, const std::string& mask,
                      const WaiverIndex& waivers,
                      std::vector<Finding>* findings) {
  // Expected first include: the file's own header, repo-include-relative
  // (src/api/problem.cc includes "api/problem.h").
  std::string own = input.path;
  own.replace(own.size() - 3, 3, ".h");
  if (StartsWith(own, "src/")) own = own.substr(4);
  else if (StartsWith(own, "tools/")) own = own.substr(6);
  size_t pos = mask.find("#include");
  if (pos == std::string::npos) {
    Report(findings, input, waivers, 1, "header-first",
           "has a sibling header but never includes it");
    return;
  }
  // The include path is a string literal, blanked in the mask — read it
  // from the original content.
  size_t open = input.content.find_first_of("\"<", pos);
  size_t close = open == std::string::npos
                     ? std::string::npos
                     : input.content.find_first_of("\">", open + 1);
  std::string first = close == std::string::npos
                          ? ""
                          : input.content.substr(open + 1, close - open - 1);
  if (first != own) {
    Report(findings, input, waivers, LineOf(mask, pos), "header-first",
           "first include must be the file's own header \"" + own +
               "\" (got \"" + first + "\"), proving it self-contained");
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "unpolled-loop", "banned-abort", "banned-call",
      "header-guard",  "header-first", "waiver"};
  return kRules;
}

std::string MakeWaiverComment(const std::string& rule,
                              const std::string& reason) {
  return "// cqcs-lint: allow(" + rule + "): " + reason;
}

namespace {

/// One pass over the lexical structure: `code` is the content with comment
/// and string/char-literal bodies blanked; `comments` is the inverse — only
/// comment text survives. Newlines survive in both, so line numbers and
/// line-oriented parsing keep working.
void SplitMasks(const std::string& content, std::string* code,
                std::string* comments) {
  const size_t n = content.size();
  *code = content;
  comments->assign(n, ' ');
  for (size_t k = 0; k < n; ++k) {
    if (content[k] == '\n') (*comments)[k] = '\n';
  }
  auto blank_code = [&](size_t from, size_t to, bool is_comment) {
    for (size_t k = from; k < to && k < n; ++k) {
      if ((*code)[k] == '\n') continue;
      if (is_comment) (*comments)[k] = (*code)[k];
      (*code)[k] = ' ';
    }
  };
  size_t i = 0;
  while (i < n) {
    char c = content[i];
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      blank_code(i, end, /*is_comment=*/true);
      i = end;
    } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      size_t end = content.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      blank_code(i, end, /*is_comment=*/true);
      i = end;
    } else if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
               (i == 0 || !IsIdentChar(content[i - 1]))) {
      size_t paren = content.find('(', i + 2);
      if (paren == std::string::npos) break;
      // Built piecewise: GCC 12 mis-fires -Wrestrict on the equivalent
      // `")" + substr + "\""` chain at -O2.
      std::string delim(1, ')');
      delim.append(content, i + 2, paren - (i + 2));
      delim.push_back('"');
      size_t end = content.find(delim, paren + 1);
      end = end == std::string::npos ? n : end + delim.size();
      blank_code(i, end, /*is_comment=*/false);
      i = end;
    } else if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n && content[j] != c) {
        j += content[j] == '\\' ? 2 : 1;
      }
      // Keep the quotes, blank the body.
      blank_code(i + 1, std::min(j, n), /*is_comment=*/false);
      i = std::min(j, n) + 1;
    } else {
      ++i;
    }
  }
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  std::string code, comments;
  SplitMasks(content, &code, &comments);
  return code;
}

std::vector<Waiver> ParseWaivers(const std::string& path,
                                 const std::string& content,
                                 std::vector<Finding>* findings) {
  std::vector<Waiver> waivers;
  static const std::string kTag = "cqcs-lint:";
  // Directives live in comments only: the marker inside a string literal
  // (this very file holds one) is data, not a waiver.
  std::string code, comments;
  SplitMasks(content, &code, &comments);
  size_t pos = 0;
  while ((pos = comments.find(kTag, pos)) != std::string::npos) {
    const int line = LineOf(comments, pos);
    size_t eol = comments.find('\n', pos);
    if (eol == std::string::npos) eol = comments.size();
    std::string rest = Trim(comments.substr(pos + kTag.size(),
                                            eol - pos - kTag.size()));
    pos = eol;
    auto bad = [&](const std::string& why) {
      findings->push_back(Finding{path, line, "waiver", why});
    };
    bool file_scope = false;
    std::string_view r(rest);
    if (StartsWith(r, "allow-file(")) {
      file_scope = true;
      r.remove_prefix(11);
    } else if (StartsWith(r, "allow(")) {
      r.remove_prefix(6);
    } else {
      bad("malformed waiver: expected 'allow(<rule>): <reason>' or "
          "'allow-file(<rule>): <reason>'");
      continue;
    }
    size_t close = r.find(')');
    if (close == std::string_view::npos) {
      bad("malformed waiver: missing ')'");
      continue;
    }
    std::string rule(r.substr(0, close));
    const auto& names = RuleNames();
    if (std::find(names.begin(), names.end(), rule) == names.end()) {
      bad("waiver names unknown rule '" + rule + "'");
      continue;
    }
    r.remove_prefix(close + 1);
    if (r.empty() || r[0] != ':') {
      bad("waiver for '" + rule + "' missing ': <reason>'");
      continue;
    }
    std::string reason = Trim(r.substr(1));
    if (reason.empty()) {
      bad("waiver for '" + rule + "' has an empty reason — say why the "
          "discard/exception is sound");
      continue;
    }
    waivers.push_back(Waiver{line, std::move(rule), std::move(reason),
                             file_scope});
  }
  return waivers;
}

std::vector<Finding> LintFile(const FileInput& input) {
  std::vector<Finding> findings;
  WaiverIndex waivers{ParseWaivers(input.path, input.content, &findings)};
  const std::string mask = StripCommentsAndStrings(input.content);

  if (IsGovernedHotPath(input.path)) {
    CheckUnpolledLoops(input, mask, waivers, &findings);
  }
  if (IsInputReachable(input.path)) {
    CheckBannedAbort(input, mask, waivers, &findings);
  }
  if (IsLibraryCode(input.path)) {
    CheckBannedCalls(input, mask, waivers, &findings);
    if (EndsWith(input.path, ".h")) {
      CheckHeaderGuard(input, waivers, &findings);
    }
    if (EndsWith(input.path, ".cc") && input.has_sibling_header) {
      CheckHeaderFirst(input, mask, waivers, &findings);
    }
  }
  return findings;
}

std::string FormatFinding(const Finding& f) {
  return f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace cqcs::lint
