// cqcs_lint driver: runs the repo-specific lint rules (lint/lint.h) over
// src/ and tools/ and prints compiler-style diagnostics.
//
//   cqcs_lint --root <repo-root> [rel-paths...]
//   cqcs_lint --list-rules
//
// With no explicit paths, scans every .h/.cc under <root>/src and
// <root>/tools. Exit code: 0 clean, 1 findings, 2 usage/I/O error.
// Wired up as the `lint`-labeled ctest (`ctest -L lint`).

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::string RelPath(const fs::path& root, const fs::path& file) {
  return fs::relative(file, root).generic_string();
}

bool HasSiblingHeader(const fs::path& file) {
  fs::path header = file;
  header.replace_extension(".h");
  return fs::exists(header);
}

int LintPaths(const fs::path& root, const std::vector<fs::path>& files) {
  size_t findings = 0;
  for (const fs::path& file : files) {
    cqcs::lint::FileInput input;
    input.path = RelPath(root, file);
    if (!ReadFile(file, &input.content)) {
      std::cerr << "cqcs_lint: cannot read " << file << "\n";
      return 2;
    }
    input.has_sibling_header = HasSiblingHeader(file);
    for (const cqcs::lint::Finding& f : cqcs::lint::LintFile(input)) {
      std::cout << cqcs::lint::FormatFinding(f) << "\n";
      ++findings;
    }
  }
  if (findings > 0) {
    std::cout << "cqcs_lint: " << findings << " finding(s) over "
              << files.size() << " file(s)\n";
    return 1;
  }
  std::cout << "cqcs_lint: clean (" << files.size() << " files)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : cqcs::lint::RuleNames()) {
        std::cout << rule << "\n";
      }
      return 0;
    }
    if (arg == "--root") {
      if (++i == argc) {
        std::cerr << "cqcs_lint: --root needs a directory\n";
        return 2;
      }
      root = argv[i];
    } else {
      explicit_paths.push_back(std::move(arg));
    }
  }
  if (root.empty()) {
    std::cerr << "usage: cqcs_lint --root <repo-root> [rel-paths...]\n"
              << "       cqcs_lint --list-rules\n";
    return 2;
  }

  std::vector<fs::path> files;
  if (!explicit_paths.empty()) {
    for (const std::string& p : explicit_paths) files.push_back(root / p);
  } else {
    for (const char* dir : {"src", "tools"}) {
      std::error_code ec;
      fs::recursive_directory_iterator it(root / dir, ec);
      if (ec) {
        std::cerr << "cqcs_lint: cannot scan " << (root / dir) << ": "
                  << ec.message() << "\n";
        return 2;
      }
      for (const fs::directory_entry& entry : it) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
  }
  return LintPaths(root, files);
}
