// Bounded treewidth in action (Section 5): evaluating tree-like queries in
// polynomial time via dynamic programming over a tree decomposition, with
// the generic exponential solver as the foil.

#include <cstdio>

#include "common/timer.h"
#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/binary_encoding.h"
#include "treewidth/decomposition.h"
#include "treewidth/hom_dp.h"

using namespace cqcs;

int main() {
  auto vocab = MakeGraphVocabulary();
  Rng rng(2024);

  // Source: a long "chain of diamonds" — treewidth 2 regardless of length.
  const size_t kDiamonds = 40;
  Structure chain(vocab, 1 + 3 * kDiamonds);
  for (size_t d = 0; d < kDiamonds; ++d) {
    auto base = static_cast<Element>(3 * d);
    Element top = base + 1, bottom = base + 2, next = base + 3;
    for (auto [u, v] : {std::pair<Element, Element>{base, top},
                        {base, bottom},
                        {top, next},
                        {bottom, next}}) {
      chain.AddTuple(0, {u, v});
      chain.AddTuple(0, {v, u});
    }
  }
  TreeDecomposition td = HeuristicDecomposition(chain);
  std::printf("diamond chain: %zu elements, decomposition width %d\n",
              chain.universe_size(), td.Width());

  // Target: a random symmetric graph ("database").
  Structure db = RandomGraphStructure(vocab, 30, 0.25, rng, true);

  Timer dp_timer;
  TreewidthSolveStats stats;
  auto dp = SolveViaTreeDecomposition(chain, db, td, &stats);
  double dp_ms = dp_timer.Millis();

  Timer bt_timer;
  auto bt = FindHomomorphism(chain, db);
  double bt_ms = bt_timer.Millis();

  std::printf("  DP over decomposition: %-3s in %7.2f ms (%zu table rows)\n",
              dp->has_value() ? "yes" : "no", dp_ms, stats.table_entries);
  std::printf("  backtracking        : %-3s in %7.2f ms\n",
              bt.has_value() ? "yes" : "no", bt_ms);

  // Lemma 5.5: a wide-arity structure becomes binary so the same machinery
  // applies. One 5-ary "pipeline stage" relation, chained.
  auto wide_vocab = std::make_shared<Vocabulary>();
  wide_vocab->AddRelation("Stage", 5);
  Structure pipeline(wide_vocab, 13);
  for (Element s = 0; s + 4 < 13; s += 4) {
    pipeline.AddTuple(0, {s, static_cast<Element>(s + 1),
                          static_cast<Element>(s + 2),
                          static_cast<Element>(s + 3),
                          static_cast<Element>(s + 4)});
  }
  Structure wide_db = RandomStructure(wide_vocab, 4, 60, rng);
  BinaryEncoded enc = BinaryEncode(pipeline);
  std::printf(
      "\nwide pipeline: Gaifman width %d, incidence-style binary encoding "
      "has %zu elements over %zu coincidence relations\n",
      HeuristicDecomposition(pipeline).Width(), enc.encoded.universe_size(),
      enc.vocabulary->size());
  bool via_binary = HomomorphismExistsViaBinaryEncoding(
      pipeline, wide_db, [](const Structure& ea, const Structure& eb) {
        auto r = SolveBoundedTreewidth(ea, eb);
        return r.ok() && r->has_value();
      });
  bool direct = HasHomomorphism(pipeline, wide_db);
  std::printf("  hom(pipeline -> db): direct %s, via binary encoding %s\n",
              direct ? "yes" : "no", via_binary ? "yes" : "no");
  return 0;
}
