// The Datalog side of the paper: bottom-up evaluation, the 4-Datalog
// non-2-colorability program of Section 4.1, and the canonical game program
// ρ_B of Theorem 4.7 compared against the pebble-game solver.

#include <cstdio>

#include "datalog/builtin_programs.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "datalog/rho_b.h"
#include "gen/generators.h"
#include "pebble/game.h"

using namespace cqcs;

int main() {
  // Plain transitive closure over a small flight network.
  auto program = ParseDatalogProgram(
      "Reach(X, Y) :- E(X, Y).\n"
      "Reach(X, Y) :- Reach(X, Z), E(Z, Y).\n");
  Structure flights(program->edb_vocabulary(), 5);
  flights.AddTuple(0, {0, 1});
  flights.AddTuple(0, {1, 2});
  flights.AddTuple(0, {3, 4});
  auto result = EvaluateDatalog(*program, flights);
  std::printf("reachable city pairs (%zu rounds):", result->rounds);
  for (const auto& row : result->idb_relations[0].tuples()) {
    std::printf(" (%u,%u)", row[0], row[1]);
  }
  std::printf("\n\n");

  // Section 4.1: non-2-colorability in 4-Datalog (odd-cycle detection).
  DatalogProgram non2col = BuildNon2ColorabilityProgram();
  std::printf("non-2-colorability program (k-Datalog width %u):\n%s\n",
              non2col.MaxBodyWidth(), non2col.ToString().c_str());
  auto vocab = non2col.edb_vocabulary();
  for (size_t n = 4; n <= 7; ++n) {
    Structure cycle = UndirectedCycleStructure(vocab, n);
    auto derived = GoalDerivable(non2col, cycle);
    std::printf("  C%zu: goal derived (odd cycle found): %s\n", n,
                *derived ? "yes" : "no");
  }

  // Theorem 4.7: generate ρ_B for B = K2 with k = 2 pebbles and compare
  // with the game-theoretic solver on a few inputs.
  Structure k2 = UndirectedCycleStructure(vocab, 2);
  auto rho = BuildSpoilerWinProgram(k2, 2);
  std::printf("\nrho_B for B=K2, k=2: %zu IDB predicates, %zu rules, "
              "is 2-Datalog: %s\n",
              rho->idb_count(), rho->rules().size(),
              rho->IsKDatalog(2) ? "yes" : "no");
  for (size_t n = 3; n <= 6; ++n) {
    Structure cycle = UndirectedCycleStructure(vocab, n);
    auto datalog_says = GoalDerivable(*rho, cycle);
    auto game_says = SpoilerWinsExistentialKPebble(cycle, k2, 2);
    std::printf("  C%zu: Spoiler wins per rho_B: %-3s per game solver: %s\n",
                n, *datalog_says ? "yes" : "no",
                game_says.ok() && *game_says ? "yes" : "no");
  }
  std::printf(
      "\n(with k=2 the Spoiler cannot expose odd cycles; the 4-pebble game "
      "can:)\n");
  for (size_t n = 3; n <= 6; ++n) {
    Structure cycle = UndirectedCycleStructure(vocab, n);
    auto wins = SpoilerWinsExistentialKPebble(cycle, k2, 4);
    std::printf("  C%zu: Spoiler wins 4-pebble game: %s\n", n,
                wins.ok() && *wins ? "yes" : "no");
  }
  return 0;
}
