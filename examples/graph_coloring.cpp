// Constraint satisfaction as homomorphism: graph coloring.
//
// CSP(K_c) is c-colorability. This example solves a small "map coloring"
// instance with the generic backtracking solver, then shows the paper's
// Booleanization pipeline (Lemma 3.5 + Schaefer) deciding 2-colorability in
// polynomial time, including the C4 target of Example 3.8.

#include <cstdio>

#include "gen/generators.h"
#include "schaefer/booleanize.h"
#include "schaefer/uniform.h"
#include "solver/backtracking.h"

using namespace cqcs;

int main() {
  auto vocab = MakeGraphVocabulary();

  // A tiny map: 7 regions, adjacency edges (symmetric).
  const char* names[] = {"WA", "NT", "SA", "QLD", "NSW", "VIC", "TAS"};
  Structure map(vocab, 7);
  auto edge = [&](Element u, Element v) {
    map.AddTuple(0, {u, v});
    map.AddTuple(0, {v, u});
  };
  edge(0, 1);  // WA-NT
  edge(0, 2);  // WA-SA
  edge(1, 2);  // NT-SA
  edge(1, 3);  // NT-QLD
  edge(2, 3);  // SA-QLD
  edge(2, 4);  // SA-NSW
  edge(2, 5);  // SA-VIC
  edge(3, 4);  // QLD-NSW
  edge(4, 5);  // NSW-VIC

  // 3-coloring == homomorphism into K3.
  Structure k3 = CliqueStructure(vocab, 3);
  auto h3 = FindHomomorphism(map, k3);
  std::printf("3-coloring of the map: %s\n", h3 ? "found" : "impossible");
  if (h3) {
    const char* colors[] = {"red", "green", "blue"};
    for (size_t r = 0; r < 7; ++r) {
      std::printf("  %-3s -> %s\n", names[r], colors[(*h3)[r]]);
    }
  }
  // 2-coloring fails (NT-SA-QLD is a triangle... actually WA-NT-SA is).
  Structure k2 = CliqueStructure(vocab, 2);
  std::printf("2-coloring of the map: %s\n\n",
              HasHomomorphism(map, k2) ? "found" : "impossible");

  // Example 3.7 pipeline: 2-colorability of an even cycle via
  // Booleanization + the uniform Schaefer algorithm. The Booleanized target
  // {(0,1),(1,0)} is bijunctive AND affine, so two polynomial algorithms
  // apply; SolveSchaefer picks one.
  for (size_t n : {8, 9}) {
    Structure cycle = UndirectedCycleStructure(vocab, n);
    auto boolean = Booleanize(cycle, k2);
    SchaeferSolveInfo info;
    auto h = SolveSchaefer(boolean->a_b, boolean->b_b,
                           SchaeferAlgorithm::kAuto, &info);
    std::printf(
        "C%zu 2-colorable? %s  (Booleanized target classes: %s; dispatched "
        "to %s)\n",
        n, h->has_value() ? "yes" : "no",
        SchaeferClassSetToString(info.classes).c_str(),
        SchaeferClassSetToString(info.dispatched).c_str());
  }

  // Example 3.8: CSP(C4) for directed graphs. The standard labeling makes
  // the Booleanized structure affine; homomorphisms to a directed 4-cycle
  // exist exactly for winding numbers divisible by 4.
  Structure c4 = DirectedCycleStructure(vocab, 4);
  std::printf("\nCSP(C4) on directed cycles (Example 3.8):\n");
  for (size_t n = 3; n <= 12; ++n) {
    Structure cn = DirectedCycleStructure(vocab, n);
    auto boolean = Booleanize(cn, c4);
    auto h = SolveSchaefer(boolean->a_b, boolean->b_b);
    std::printf("  C%-2zu -> C4: %s\n", n, h->has_value() ? "yes" : "no");
  }
  return 0;
}
