// cqcs command-line tool: the library's public API over text files.
//
// Usage:
//   hom_tool solve A.struct B.struct [strategy...]   # hom(A -> B)?
//   hom_tool contains "Q1(...) :- ..." "Q2(...) :- ..."
//   hom_tool minimize "Q(...) :- ..."
//   hom_tool evaluate "Q(...) :- ..." D.struct
//   hom_tool classify B.struct              # Schaefer classes of Boolean B
//
// Strategy flags for `solve` (any order; defaults: MAC, MRV, lex values):
//   --fc --mac                  propagation strength
//   --lex --mrv --domwdeg       variable ordering
//   --lcv                       least-constraining value ordering
//   --cbj                       conflict-directed backjumping
//   --restarts                  Luby restarts
//   --threads=N                 parallel subtree search with N workers
//                               (0 = one per hardware thread; default 1)
//   --backend=NAME              auto | uniform | treewidth | acyclic |
//                               schaefer (default auto: route from the
//                               instance profile, falling back to uniform)
//   --task=NAME                 decide | witness | count | enumerate
//                               (default witness). On acyclic sources every
//                               task runs on the Yannakakis route; count and
//                               enumerate otherwise need the uniform search.
//   --limit=N                   cap for --task=count / --task=enumerate
//   --deadline-ms=N             wall-clock budget for the whole solve; an
//                               exhausted run prints a structured verdict
//                               and exits 3 (distinct from "no" and errors)
//   --memory-budget-mb=N        ceiling on backend table memory, same
//                               verdict/exit-code contract as the deadline
//   --explain                   print the routing decision + unified stats
//                               as one JSON object (machine-readable)
//
// Structure files use the core/io.h format:
//   universe 3
//   E/2: 0 1, 1 2
//
// Run without arguments for a demo over built-in inputs.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "api/engine.h"
#include "core/io.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "schaefer/boolean_relation.h"
#include "solver/backtracking.h"

using namespace cqcs;

namespace {

Result<Structure> LoadStructure(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseStructure(buffer.str());
}

bool ParseStrategyFlag(const char* arg, EngineOptions* engine_options,
                       HomTask* task, bool* explain) {
  SolveOptions* options = &engine_options->solve;
  std::string flag = arg;
  if (flag == "--explain") {
    *explain = true;
  } else if (flag.rfind("--backend=", 0) == 0) {
    auto backend = ParseBackendName(flag.substr(10));
    if (!backend.has_value()) return false;
    engine_options->backend = *backend;
  } else if (flag.rfind("--task=", 0) == 0) {
    auto parsed = ParseHomTaskName(flag.substr(7));
    // kProject needs a projection spec, which the structure-pair CLI has no
    // syntax for — `evaluate` is the projection entry point.
    if (!parsed.has_value() || *parsed == HomTask::kProject) return false;
    *task = *parsed;
  } else if (flag.rfind("--limit=", 0) == 0) {
    const std::string digits = flag.substr(8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const size_t n = std::strtoull(digits.c_str(), nullptr, 10);
    engine_options->count_limit = n;
    engine_options->max_results = n;
  } else if (flag == "--fc") {
    options->propagation = Propagation::kForwardChecking;
  } else if (flag == "--mac") {
    options->propagation = Propagation::kMac;
  } else if (flag == "--lex") {
    options->strategy.var_order = VarOrder::kLex;
  } else if (flag == "--mrv") {
    options->strategy.var_order = VarOrder::kMrv;
  } else if (flag == "--domwdeg") {
    options->strategy.var_order = VarOrder::kDomWdeg;
  } else if (flag == "--lcv") {
    options->strategy.val_order = ValOrder::kLeastConstraining;
  } else if (flag == "--cbj") {
    options->strategy.backjumping = true;
  } else if (flag == "--restarts") {
    options->strategy.restarts = true;
  } else if (flag.rfind("--deadline-ms=", 0) == 0) {
    const std::string digits = flag.substr(14);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    engine_options->deadline_ms = std::strtoull(digits.c_str(), nullptr, 10);
  } else if (flag.rfind("--memory-budget-mb=", 0) == 0) {
    const std::string digits = flag.substr(19);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const size_t mb = std::strtoull(digits.c_str(), nullptr, 10);
    if (mb > (SIZE_MAX >> 20)) return false;
    engine_options->memory_budget_bytes = mb << 20;
  } else if (flag.rfind("--threads=", 0) == 0) {
    // Digits only (strtoul would happily eat "-1" as ULONG_MAX), nonempty,
    // and a sanity cap — a worker is a real OS thread.
    const std::string digits = flag.substr(10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    char* end = nullptr;
    const unsigned long n = std::strtoul(digits.c_str(), &end, 10);
    if (n > 1024) return false;
    options->num_threads = static_cast<unsigned>(n);
  } else {
    return false;
  }
  return true;
}

int Solve(const char* a_path, const char* b_path, int flag_count,
          char** flags) {
  auto a = LoadStructure(a_path);
  auto b = LoadStructure(b_path);
  if (!a.ok() || !b.ok()) {
    std::printf("error: %s %s\n", a.status().ToString().c_str(),
                b.status().ToString().c_str());
    return 1;
  }
  if (!a->vocabulary()->Equals(*b->vocabulary())) {
    std::printf("error: vocabularies differ (%s vs %s)\n",
                a->vocabulary()->ToString().c_str(),
                b->vocabulary()->ToString().c_str());
    return 1;
  }
  EngineOptions engine_options;
  HomTask task = HomTask::kWitness;
  bool explain = false;
  for (int i = 0; i < flag_count; ++i) {
    if (!ParseStrategyFlag(flags[i], &engine_options, &task, &explain)) {
      std::printf("error: unknown strategy flag %s\n", flags[i]);
      return 2;
    }
  }
  auto problem = HomProblem::FromStructures(*a, *b);
  if (!problem.ok()) {
    std::printf("error: %s\n", problem.status().ToString().c_str());
    return 1;
  }
  HomEngine engine(engine_options);
  auto result = engine.Run(*problem, task);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  switch (task) {
    case HomTask::kDecide:
    case HomTask::kWitness:
      if (!result->decided) {
        // A governed trip and a node-limit stop both leave the question
        // open; everything else genuinely means "no".
        std::printf(result->stats.governor.tripped
                        ? "unknown (resource budget exhausted)\n"
                    : result->stats.search.limit_hit
                        ? "unknown (node limit hit)\n"
                        : "no homomorphism\n");
      } else if (result->witness.has_value()) {
        std::printf("homomorphism found:\n");
        const Homomorphism& h = *result->witness;
        for (size_t e = 0; e < h.size(); ++e) {
          std::printf("  %zu -> %u\n", e, h[e]);
        }
      } else {
        std::printf("homomorphism exists\n");
      }
      break;
    case HomTask::kCount:
      std::printf(result->stats.governor.tripped
                      ? "count: >= %zu (resource budget exhausted)\n"
                  : result->stats.search.limit_hit
                      ? "count: >= %zu (node limit hit)\n"
                      : "count: %zu\n",
                  result->count);
      break;
    case HomTask::kEnumerate:
      std::printf("%zu homomorphism(s)\n", result->rows.size());
      for (const auto& row : result->rows) {
        std::printf(" ");
        for (Element e : row) std::printf(" %u", e);
        std::printf("\n");
      }
      break;
    case HomTask::kProject:
      break;  // unreachable: the flag parser rejects it
  }
  std::printf("backend: %s\n", BackendName(result->explain.chosen));
  if (result->stats.governor.tripped) {
    // Structured exhaustion verdict: exit 3 distinguishes "ran out of
    // budget" from "no homomorphism" (0), errors (1), and bad flags (2),
    // so scripts can retry with a larger budget instead of trusting a
    // partial answer.
    const GovernorRunStats& g = result->stats.governor;
    std::printf(
        "verdict: resource budget exhausted (%s) checks=%llu "
        "peak_bytes=%zu elapsed_ms=%llu\n",
        TripCauseName(g.cause), static_cast<unsigned long long>(g.checks),
        g.peak_bytes, static_cast<unsigned long long>(g.elapsed_ms));
    if (explain) std::printf("%s\n", result->ToJson().c_str());
    return 3;
  }
  if (explain) {
    std::printf("%s\n", result->ToJson().c_str());
    return 0;
  }
  if (result->stats.used_acyclic) {
    const YannakakisStats& ys = result->stats.yannakakis;
    std::printf(
        "acyclic: tables=%llu rows=%llu max_table_rows=%llu semijoins=%llu "
        "pruned=%llu join_rows=%llu\n",
        static_cast<unsigned long long>(ys.atom_tables),
        static_cast<unsigned long long>(ys.rows_materialized),
        static_cast<unsigned long long>(ys.max_table_rows),
        static_cast<unsigned long long>(ys.semijoins),
        static_cast<unsigned long long>(ys.rows_pruned),
        static_cast<unsigned long long>(ys.join_rows));
  }
  // A polynomial backend leaves the search stats untouched; printing them
  // would look like a genuine zero-node measurement.
  if (!result->stats.used_search) return 0;
  const SolveStats& stats = result->stats.search;
  std::printf(
      "stats: nodes=%llu backtracks=%llu backjumps=%llu "
      "longest_backjump=%llu restarts=%llu max_conflict_set=%llu\n",
      static_cast<unsigned long long>(stats.nodes),
      static_cast<unsigned long long>(stats.backtracks),
      static_cast<unsigned long long>(stats.backjumps),
      static_cast<unsigned long long>(stats.longest_backjump),
      static_cast<unsigned long long>(stats.restarts),
      static_cast<unsigned long long>(stats.max_conflict_set));
  if (stats.workers > 0) {
    std::printf("parallel: workers=%llu splits=%llu steals=%llu\n",
                static_cast<unsigned long long>(stats.workers),
                static_cast<unsigned long long>(stats.splits),
                static_cast<unsigned long long>(stats.steals));
  }
  return 0;
}

int ContainsCmd(const char* q1_text, const char* q2_text) {
  auto q1 = ParseQuery(q1_text);
  if (!q1.ok()) {
    std::printf("Q1: %s\n", q1.status().ToString().c_str());
    return 1;
  }
  auto q2 = ParseQuery(q2_text, q1->vocabulary());
  if (!q2.ok()) {
    std::printf("Q2: %s\n", q2.status().ToString().c_str());
    return 1;
  }
  auto forward = IsContained(*q1, *q2);
  auto backward = IsContained(*q2, *q1);
  if (!forward.ok() || !backward.ok()) {
    std::printf("error: %s %s\n", forward.status().ToString().c_str(),
                backward.status().ToString().c_str());
    return 1;
  }
  std::printf("Q1 ⊆ Q2: %s\nQ2 ⊆ Q1: %s\nequivalent: %s\n",
              *forward ? "yes" : "no", *backward ? "yes" : "no",
              *forward && *backward ? "yes" : "no");
  return 0;
}

int MinimizeCmd(const char* q_text) {
  auto q = ParseQuery(q_text);
  if (!q.ok()) {
    std::printf("%s\n", q.status().ToString().c_str());
    return 1;
  }
  auto m = Minimize(*q);
  if (!m.ok()) {
    std::printf("%s\n", m.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", ToString(*m).c_str());
  return 0;
}

int EvaluateCmd(const char* q_text, const char* d_path) {
  auto q = ParseQuery(q_text);
  if (!q.ok()) {
    std::printf("%s\n", q.status().ToString().c_str());
    return 1;
  }
  std::ifstream in(d_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto d = ParseStructure(buffer.str(), q->vocabulary());
  if (!d.ok()) {
    std::printf("%s\n", d.status().ToString().c_str());
    return 1;
  }
  auto rows = Evaluate(*q, *d);
  if (!rows.ok()) {
    std::printf("%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu answer(s)\n", rows->size());
  for (const auto& row : *rows) {
    std::printf(" ");
    for (Element e : row) std::printf(" %u", e);
    std::printf("\n");
  }
  return 0;
}

int ClassifyCmd(const char* b_path) {
  auto b = LoadStructure(b_path);
  if (!b.ok()) {
    std::printf("%s\n", b.status().ToString().c_str());
    return 1;
  }
  if (!IsBooleanStructure(*b)) {
    std::printf("not a Boolean structure (universe size %zu, need 2)\n",
                b->universe_size());
    return 1;
  }
  std::printf("Schaefer classes: %s\n",
              SchaeferClassSetToString(ClassifyBooleanStructure(*b)).c_str());
  return 0;
}

int Demo() {
  std::printf("demo (run with a subcommand for real use; see the header)\n\n");
  const char* q1 = "Q(X) :- E(X, Y), E(Y, Z), E(Z, X).";
  const char* q2 = "Q(X) :- E(X, Y).";
  std::printf("$ hom_tool contains \"%s\" \"%s\"\n", q1, q2);
  ContainsCmd(q1, q2);
  const char* redundant = "Q(X) :- E(X, Y), E(X, Z).";
  std::printf("\n$ hom_tool minimize \"%s\"\n", redundant);
  MinimizeCmd(redundant);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Demo();
  std::string cmd = argv[1];
  if (cmd == "solve" && argc >= 4) {
    return Solve(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "contains" && argc == 4) return ContainsCmd(argv[2], argv[3]);
  if (cmd == "minimize" && argc == 3) return MinimizeCmd(argv[2]);
  if (cmd == "evaluate" && argc == 4) return EvaluateCmd(argv[2], argv[3]);
  if (cmd == "classify" && argc == 3) return ClassifyCmd(argv[2]);
  std::printf("usage: see the comment at the top of examples/hom_tool.cpp\n");
  return 2;
}
