// cqcs command-line tool: the library's public API over text files.
//
// Usage:
//   hom_tool solve A.struct B.struct [strategy...]   # hom(A -> B)?
//   hom_tool contains "Q1(...) :- ..." "Q2(...) :- ..."
//   hom_tool minimize "Q(...) :- ..."
//   hom_tool evaluate "Q(...) :- ..." D.struct
//   hom_tool classify B.struct              # Schaefer classes of Boolean B
//   hom_tool serve [serve flags] [strategy flags]    # line protocol, below
//
// Exit-code contract (asserted end-to-end by tests/hom_tool_exit_codes.sh;
// scripts branch on these, so every path must honor them):
//   0  "yes" / an answer was produced (homomorphism found, count or
//      enumeration completed, containment verdict computed, ...)
//   1  a definite "no" (no homomorphism exists), or a usage problem
//      (unknown subcommand, unknown or malformed flag)
//   2  an error: unreadable file, parse failure, engine refusal (e.g. an
//      explicitly requested backend that cannot serve the task)
//   3  a resource budget was exhausted before an answer (deadline, memory,
//      node limit): the question is open, not answered — retry bigger
//
// Strategy flags for `solve` (any order; defaults: MAC, MRV, lex values):
//   --fc --mac                  propagation strength
//   --lex --mrv --domwdeg       variable ordering
//   --lcv                       least-constraining value ordering
//   --cbj                       conflict-directed backjumping
//   --restarts                  Luby restarts
//   --threads=N                 parallel subtree search with N workers
//                               (0 = one per hardware thread; default 1)
//   --backend=NAME              auto | uniform | treewidth | acyclic |
//                               schaefer (default auto: route from the
//                               instance profile, falling back to uniform)
//   --task=NAME                 decide | witness | count | enumerate
//                               (default witness). On acyclic sources every
//                               task runs on the Yannakakis route; count and
//                               enumerate otherwise need the uniform search.
//   --limit=N                   cap for --task=count / --task=enumerate
//   --deadline-ms=N             wall-clock budget for the whole solve; an
//                               exhausted run prints a structured verdict
//                               and exits 3 (distinct from "no" and errors)
//   --memory-budget-mb=N        ceiling on backend table memory, same
//                               verdict/exit-code contract as the deadline
//   --explain                   print the routing decision + unified stats
//                               as one JSON object (machine-readable)
//
// Structure files use the core/io.h format:
//   universe 3
//   E/2: 0 1, 1 2
//
// `serve` flags (besides the strategy/governor flags above, which configure
// the per-request engine):
//   --plan-cache=N --result-cache=N     cache entry bounds (0 disables)
//   --max-queue-depth=N                 admission: shed past N in-flight
//   --max-inflight-mb=N                 admission: shed past N MiB of
//                                       in-flight size-bound estimates
//   --data-dir=PATH                     durable registry: WAL + snapshots
//                                       under PATH, recovered on startup
//                                       (startup fails, exit 2, if the
//                                       on-disk state is unrecoverable)
//   --fsync=always|interval|never       when acknowledged updates are
//                                       durable (default always)
//   --fsync-interval-ms=N               max ms between fsyncs (interval)
//   --snapshot-every=N                  snapshot + truncate the log every
//                                       N records (0 = never)
//   --poison-strikes=K                  quarantine a query text after K
//                                       consecutive budget trips (0 = off)
//
// `serve` then reads one command per line on stdin (responses on stdout,
// one line each, flushed per response; ';' in a db declaration stands for a
// newline). Lines over 1 MiB, or containing NUL bytes, get a protocol
// error; a trailing CR (CRLF input) is stripped; EOF mid-line processes the
// partial line, then exits:
//   db <name> universe 3; E/2: 0 1, 1 2    register/replace a database
//                                          (replacing invalidates results)
//   query <name> Q(X) :- E(X, Y).          register a query
//   run <task> <query-name> <db-name>      serve one request
//   drop <name>                            unregister a database
//   catalog                                registered name#version pairs
//   dump <name>                            a database's text (';' = newline)
//   stats                                  aggregate ServeStats as JSON
//   quit                                   exit 0 (as does EOF)
//
// Run without arguments for a demo over built-in inputs.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/engine.h"
#include "core/io.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "schaefer/boolean_relation.h"
#include "serve/serving.h"
#include "solver/backtracking.h"

using namespace cqcs;

namespace {

Result<Structure> LoadStructure(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseStructure(buffer.str());
}

bool ParseStrategyFlag(const char* arg, EngineOptions* engine_options,
                       HomTask* task, bool* explain) {
  SolveOptions* options = &engine_options->solve;
  std::string flag = arg;
  if (flag == "--explain") {
    *explain = true;
  } else if (flag.rfind("--backend=", 0) == 0) {
    auto backend = ParseBackendName(flag.substr(10));
    if (!backend.has_value()) return false;
    engine_options->backend = *backend;
  } else if (flag.rfind("--task=", 0) == 0) {
    auto parsed = ParseHomTaskName(flag.substr(7));
    // kProject needs a projection spec, which the structure-pair CLI has no
    // syntax for — `evaluate` is the projection entry point.
    if (!parsed.has_value() || *parsed == HomTask::kProject) return false;
    *task = *parsed;
  } else if (flag.rfind("--limit=", 0) == 0) {
    const std::string digits = flag.substr(8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const size_t n = std::strtoull(digits.c_str(), nullptr, 10);
    engine_options->count_limit = n;
    engine_options->max_results = n;
  } else if (flag == "--fc") {
    options->propagation = Propagation::kForwardChecking;
  } else if (flag == "--mac") {
    options->propagation = Propagation::kMac;
  } else if (flag == "--lex") {
    options->strategy.var_order = VarOrder::kLex;
  } else if (flag == "--mrv") {
    options->strategy.var_order = VarOrder::kMrv;
  } else if (flag == "--domwdeg") {
    options->strategy.var_order = VarOrder::kDomWdeg;
  } else if (flag == "--lcv") {
    options->strategy.val_order = ValOrder::kLeastConstraining;
  } else if (flag == "--cbj") {
    options->strategy.backjumping = true;
  } else if (flag == "--restarts") {
    options->strategy.restarts = true;
  } else if (flag.rfind("--deadline-ms=", 0) == 0) {
    const std::string digits = flag.substr(14);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    engine_options->deadline_ms = std::strtoull(digits.c_str(), nullptr, 10);
  } else if (flag.rfind("--memory-budget-mb=", 0) == 0) {
    const std::string digits = flag.substr(19);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const size_t mb = std::strtoull(digits.c_str(), nullptr, 10);
    if (mb > (SIZE_MAX >> 20)) return false;
    engine_options->memory_budget_bytes = mb << 20;
  } else if (flag.rfind("--threads=", 0) == 0) {
    // Digits only (strtoul would happily eat "-1" as ULONG_MAX), nonempty,
    // and a sanity cap — a worker is a real OS thread.
    const std::string digits = flag.substr(10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    char* end = nullptr;
    const unsigned long n = std::strtoul(digits.c_str(), &end, 10);
    if (n > 1024) return false;
    options->num_threads = static_cast<unsigned>(n);
  } else {
    return false;
  }
  return true;
}

int Solve(const char* a_path, const char* b_path, int flag_count,
          char** flags) {
  auto a = LoadStructure(a_path);
  auto b = LoadStructure(b_path);
  if (!a.ok() || !b.ok()) {
    std::printf("error: %s %s\n", a.status().ToString().c_str(),
                b.status().ToString().c_str());
    return 2;
  }
  if (!a->vocabulary()->Equals(*b->vocabulary())) {
    std::printf("error: vocabularies differ (%s vs %s)\n",
                a->vocabulary()->ToString().c_str(),
                b->vocabulary()->ToString().c_str());
    return 2;
  }
  EngineOptions engine_options;
  HomTask task = HomTask::kWitness;
  bool explain = false;
  for (int i = 0; i < flag_count; ++i) {
    if (!ParseStrategyFlag(flags[i], &engine_options, &task, &explain)) {
      std::printf("error: unknown strategy flag %s\n", flags[i]);
      return 1;  // usage, not a runtime error (see the contract above)
    }
  }
  auto problem = HomProblem::FromStructures(*a, *b);
  if (!problem.ok()) {
    std::printf("error: %s\n", problem.status().ToString().c_str());
    return 2;
  }
  HomEngine engine(engine_options);
  auto result = engine.Run(*problem, task);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 2;
  }
  // 0 until a path below downgrades it: a definite "no" is 1, an
  // unanswered question (node limit, governed trip) is 3.
  int code = 0;
  switch (task) {
    case HomTask::kDecide:
    case HomTask::kWitness:
      if (!result->decided) {
        // A governed trip and a node-limit stop both leave the question
        // open (exit 3); everything else genuinely means "no" (exit 1).
        if (result->stats.governor.tripped) {
          std::printf("unknown (resource budget exhausted)\n");
        } else if (result->stats.search.limit_hit) {
          std::printf("unknown (node limit hit)\n");
          code = 3;
        } else {
          std::printf("no homomorphism\n");
          code = 1;
        }
      } else if (result->witness.has_value()) {
        std::printf("homomorphism found:\n");
        const Homomorphism& h = *result->witness;
        for (size_t e = 0; e < h.size(); ++e) {
          std::printf("  %zu -> %u\n", e, h[e]);
        }
      } else {
        std::printf("homomorphism exists\n");
      }
      break;
    case HomTask::kCount:
      std::printf(result->stats.governor.tripped
                      ? "count: >= %zu (resource budget exhausted)\n"
                  : result->stats.search.limit_hit
                      ? "count: >= %zu (node limit hit)\n"
                      : "count: %zu\n",
                  result->count);
      // A node-limit-truncated count is a lower bound, not an answer.
      if (!result->stats.governor.tripped && result->stats.search.limit_hit) {
        code = 3;
      }
      break;
    case HomTask::kEnumerate:
      std::printf("%zu homomorphism(s)\n", result->rows.size());
      for (const auto& row : result->rows) {
        std::printf(" ");
        for (Element e : row) std::printf(" %u", e);
        std::printf("\n");
      }
      break;
    case HomTask::kProject:
      break;  // unreachable: the flag parser rejects it
  }
  std::printf("backend: %s\n", BackendName(result->explain.chosen));
  if (result->stats.governor.tripped) {
    // Structured exhaustion verdict: exit 3 distinguishes "ran out of
    // budget" from "no homomorphism" (0), errors (1), and bad flags (2),
    // so scripts can retry with a larger budget instead of trusting a
    // partial answer.
    const GovernorRunStats& g = result->stats.governor;
    std::printf(
        "verdict: resource budget exhausted (%s) checks=%llu "
        "peak_bytes=%zu elapsed_ms=%llu\n",
        TripCauseName(g.cause), static_cast<unsigned long long>(g.checks),
        g.peak_bytes, static_cast<unsigned long long>(g.elapsed_ms));
    if (explain) std::printf("%s\n", result->ToJson().c_str());
    return 3;
  }
  if (explain) {
    std::printf("%s\n", result->ToJson().c_str());
    return code;
  }
  if (result->stats.used_acyclic) {
    const YannakakisStats& ys = result->stats.yannakakis;
    std::printf(
        "acyclic: tables=%llu rows=%llu max_table_rows=%llu semijoins=%llu "
        "pruned=%llu join_rows=%llu\n",
        static_cast<unsigned long long>(ys.atom_tables),
        static_cast<unsigned long long>(ys.rows_materialized),
        static_cast<unsigned long long>(ys.max_table_rows),
        static_cast<unsigned long long>(ys.semijoins),
        static_cast<unsigned long long>(ys.rows_pruned),
        static_cast<unsigned long long>(ys.join_rows));
  }
  // A polynomial backend leaves the search stats untouched; printing them
  // would look like a genuine zero-node measurement.
  if (!result->stats.used_search) return code;
  const SolveStats& stats = result->stats.search;
  std::printf(
      "stats: nodes=%llu backtracks=%llu backjumps=%llu "
      "longest_backjump=%llu restarts=%llu max_conflict_set=%llu\n",
      static_cast<unsigned long long>(stats.nodes),
      static_cast<unsigned long long>(stats.backtracks),
      static_cast<unsigned long long>(stats.backjumps),
      static_cast<unsigned long long>(stats.longest_backjump),
      static_cast<unsigned long long>(stats.restarts),
      static_cast<unsigned long long>(stats.max_conflict_set));
  if (stats.workers > 0) {
    std::printf("parallel: workers=%llu splits=%llu steals=%llu\n",
                static_cast<unsigned long long>(stats.workers),
                static_cast<unsigned long long>(stats.splits),
                static_cast<unsigned long long>(stats.steals));
  }
  return code;
}

int ContainsCmd(const char* q1_text, const char* q2_text) {
  auto q1 = ParseQuery(q1_text);
  if (!q1.ok()) {
    std::printf("Q1: %s\n", q1.status().ToString().c_str());
    return 2;
  }
  auto q2 = ParseQuery(q2_text, q1->vocabulary());
  if (!q2.ok()) {
    std::printf("Q2: %s\n", q2.status().ToString().c_str());
    return 2;
  }
  auto forward = IsContained(*q1, *q2);
  auto backward = IsContained(*q2, *q1);
  if (!forward.ok() || !backward.ok()) {
    std::printf("error: %s %s\n", forward.status().ToString().c_str(),
                backward.status().ToString().c_str());
    return 2;
  }
  std::printf("Q1 ⊆ Q2: %s\nQ2 ⊆ Q1: %s\nequivalent: %s\n",
              *forward ? "yes" : "no", *backward ? "yes" : "no",
              *forward && *backward ? "yes" : "no");
  return 0;
}

int MinimizeCmd(const char* q_text) {
  auto q = ParseQuery(q_text);
  if (!q.ok()) {
    std::printf("%s\n", q.status().ToString().c_str());
    return 2;
  }
  auto m = Minimize(*q);
  if (!m.ok()) {
    std::printf("%s\n", m.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", ToString(*m).c_str());
  return 0;
}

int EvaluateCmd(const char* q_text, const char* d_path) {
  auto q = ParseQuery(q_text);
  if (!q.ok()) {
    std::printf("%s\n", q.status().ToString().c_str());
    return 2;
  }
  std::ifstream in(d_path);
  if (!in) {
    // Without this check the parse below would blame an empty buffer
    // ("missing 'universe'") instead of the actual missing file.
    std::printf("error: cannot open %s\n", d_path);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto d = ParseStructure(buffer.str(), q->vocabulary());
  if (!d.ok()) {
    std::printf("%s\n", d.status().ToString().c_str());
    return 2;
  }
  auto rows = Evaluate(*q, *d);
  if (!rows.ok()) {
    std::printf("%s\n", rows.status().ToString().c_str());
    return 2;
  }
  std::printf("%zu answer(s)\n", rows->size());
  for (const auto& row : *rows) {
    std::printf(" ");
    for (Element e : row) std::printf(" %u", e);
    std::printf("\n");
  }
  return 0;
}

int ClassifyCmd(const char* b_path) {
  auto b = LoadStructure(b_path);
  if (!b.ok()) {
    std::printf("%s\n", b.status().ToString().c_str());
    return 2;
  }
  if (!IsBooleanStructure(*b)) {
    std::printf("not a Boolean structure (universe size %zu, need 2)\n",
                b->universe_size());
    return 2;
  }
  std::printf("Schaefer classes: %s\n",
              SchaeferClassSetToString(ClassifyBooleanStructure(*b)).c_str());
  return 0;
}

// One `run` response line: the answer plus the cache flags the request saw.
void PrintServeResult(const EngineResult& result, HomTask task) {
  const ServeRequestStats& s = result.stats.serve;
  std::string answer;
  switch (task) {
    case HomTask::kDecide:
    case HomTask::kWitness:
      if (result.decided) {
        answer = "yes";
      } else if (result.stats.governor.tripped ||
                 result.stats.search.limit_hit) {
        answer = "unknown";
      } else {
        answer = "no";
      }
      break;
    case HomTask::kCount:
      answer = "count=" + std::to_string(result.count);
      break;
    case HomTask::kEnumerate:
    case HomTask::kProject:
      answer = "rows=" + std::to_string(result.rows.size());
      break;
  }
  std::printf("ok %s backend=%s plan_hit=%d result_hit=%d\n", answer.c_str(),
              BackendName(result.explain.chosen), s.plan_cache_hit ? 1 : 0,
              s.result_cache_hit ? 1 : 0);
}

// Bounded protocol line reader. std::getline on a std::string has no
// length bound — one pathological line would balloon the process — so the
// serve loop reads through a fixed 1 MiB buffer instead and turns every
// degenerate input into a distinct, recoverable outcome.
enum class LineRead {
  kOk,       ///< a complete line (delimiter consumed, not included)
  kEof,      ///< end of input, nothing more to process
  kTooLong,  ///< line exceeded the bound; the rest was discarded
};

constexpr std::streamsize kMaxProtocolLine = 1 << 20;  // 1 MiB

LineRead ReadProtocolLine(std::istream& in, std::string* out) {
  static std::vector<char> buf(static_cast<size_t>(kMaxProtocolLine));
  in.getline(buf.data(), kMaxProtocolLine);
  const std::streamsize got = in.gcount();
  if (in.fail() && !in.eof()) {
    if (got == kMaxProtocolLine - 1) {
      // Buffer filled before a newline: discard the remainder of the line
      // so the protocol resynchronizes at the next one.
      in.clear();
      in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
      return LineRead::kTooLong;
    }
    return LineRead::kEof;  // hard stream failure: treat as end of input
  }
  if (got == 0 && in.eof()) return LineRead::kEof;
  // gcount() includes the consumed delimiter; EOF mid-line has none, and
  // that partial line is still a command (the sender just died).
  std::streamsize len = got;
  if (!in.eof()) --len;
  // Length from gcount, NOT strlen: an embedded NUL would silently
  // truncate the line and make "db evil\0..." parse as "db evil".
  out->assign(buf.data(), static_cast<size_t>(len));
  return LineRead::kOk;
}

/// Handles one protocol line, printing exactly the response lines for it.
/// Returns false when the session should end (quit).
bool HandleServeLine(serve::ServingEngine& engine,
                     std::unordered_map<std::string, std::string>& queries,
                     bool explain, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) return true;
  if (cmd == "quit") return false;
  if (cmd == "stats") {
    std::printf("%s\n", engine.stats().ToJson().c_str());
    return true;
  }
  if (cmd == "db") {
    std::string name;
    in >> name;
    std::string text;
    std::getline(in, text);
    for (char& c : text) {
      if (c == ';') c = '\n';
    }
    auto db = ParseStructure(text);
    if (!db.ok()) {
      std::printf("error: %s\n", db.status().ToString().c_str());
      return true;
    }
    auto status = engine.UpsertDatabase(name, *std::move(db));
    std::printf(status.ok() ? "ok db %s\n" : "error: %s\n",
                status.ok() ? name.c_str() : status.ToString().c_str());
    return true;
  }
  if (cmd == "query") {
    std::string name;
    in >> name;
    std::string text;
    std::getline(in, text);
    const size_t start = text.find_first_not_of(" \t");
    if (name.empty() || start == std::string::npos) {
      std::printf("error: usage: query <name> <CQ text>\n");
      return true;
    }
    queries[name] = text.substr(start);
    std::printf("ok query %s\n", name.c_str());
    return true;
  }
  if (cmd == "run") {
    std::string task_name, query_name, db_name;
    in >> task_name >> query_name >> db_name;
    auto task = ParseHomTaskName(task_name);
    if (!task.has_value()) {
      std::printf("error: unknown task %s\n", task_name.c_str());
      return true;
    }
    auto q = queries.find(query_name);
    if (q == queries.end()) {
      std::printf("error: no query named %s\n", query_name.c_str());
      return true;
    }
    serve::ServeRequest request;
    request.query = q->second;
    request.database = db_name;
    request.task = *task;
    auto result = engine.Serve(request);
    if (!result.ok()) {
      // Sheds are the admission policy working as designed; scripts watch
      // for the distinct prefix.
      std::printf(result.status().code() == StatusCode::kResourceExhausted
                      ? "shed: %s\n"
                      : "error: %s\n",
                  result.status().ToString().c_str());
      return true;
    }
    PrintServeResult(*result, *task);
    if (explain) std::printf("%s\n", result->ToJson().c_str());
    return true;
  }
  if (cmd == "drop") {
    std::string name;
    in >> name;
    auto status = engine.DropDatabase(name);
    std::printf(status.ok() ? "ok drop %s\n" : "error: %s\n",
                status.ok() ? name.c_str() : status.ToString().c_str());
    return true;
  }
  if (cmd == "catalog") {
    const auto dbs = engine.ListDatabases();
    std::string response = "ok catalog " + std::to_string(dbs.size());
    for (const auto& [name, version] : dbs) {
      response += " " + name + "#" + std::to_string(version);
    }
    std::printf("%s\n", response.c_str());
    return true;
  }
  if (cmd == "dump") {
    std::string name;
    in >> name;
    auto db = engine.GetDatabase(name);
    if (!db.ok()) {
      std::printf("error: %s\n", db.status().ToString().c_str());
      return true;
    }
    // One line per response: the inverse of the db command's encoding.
    std::string text = PrintStructure(**db);
    for (char& c : text) {
      if (c == '\n') c = ';';
    }
    std::printf("ok dump %s %s\n", name.c_str(), text.c_str());
    return true;
  }
  std::printf("error: unknown command %s\n", cmd.c_str());
  return true;
}

int ServeCmd(int flag_count, char** flags) {
  serve::ServeOptions serve_options;
  HomTask unused_task = HomTask::kDecide;
  bool explain = false;
  auto parse_size = [](const std::string& flag, size_t prefix, size_t* out) {
    const std::string digits = flag.substr(prefix);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    *out = std::strtoull(digits.c_str(), nullptr, 10);
    return true;
  };
  for (int i = 0; i < flag_count; ++i) {
    const std::string flag = flags[i];
    bool ok = true;
    if (flag.rfind("--plan-cache=", 0) == 0) {
      ok = parse_size(flag, 13, &serve_options.plan_cache_entries);
    } else if (flag.rfind("--result-cache=", 0) == 0) {
      ok = parse_size(flag, 15, &serve_options.result_cache_entries);
    } else if (flag.rfind("--max-queue-depth=", 0) == 0) {
      ok = parse_size(flag, 18, &serve_options.max_queue_depth);
    } else if (flag.rfind("--max-inflight-mb=", 0) == 0) {
      size_t mb = 0;
      ok = parse_size(flag, 18, &mb) && mb <= (SIZE_MAX >> 20);
      if (ok) serve_options.max_inflight_bytes = mb << 20;
    } else if (flag.rfind("--data-dir=", 0) == 0) {
      serve_options.durability.data_dir = flag.substr(11);
      ok = !serve_options.durability.data_dir.empty();
    } else if (flag.rfind("--fsync=", 0) == 0) {
      auto policy = serve::ParseFsyncPolicyName(flag.substr(8));
      ok = policy.has_value();
      if (ok) serve_options.durability.fsync = *policy;
    } else if (flag.rfind("--fsync-interval-ms=", 0) == 0) {
      size_t ms = 0;
      ok = parse_size(flag, 20, &ms);
      if (ok) serve_options.durability.fsync_interval_ms = ms;
    } else if (flag.rfind("--snapshot-every=", 0) == 0) {
      size_t n = 0;
      ok = parse_size(flag, 17, &n);
      if (ok) serve_options.durability.snapshot_every_records = n;
    } else if (flag.rfind("--poison-strikes=", 0) == 0) {
      size_t n = 0;
      ok = parse_size(flag, 17, &n) && n <= UINT32_MAX;
      if (ok) serve_options.poison_strikes = static_cast<uint32_t>(n);
    } else {
      ok = ParseStrategyFlag(flags[i], &serve_options.engine, &unused_task,
                             &explain);
    }
    if (!ok) {
      std::printf("error: unknown serve flag %s\n", flags[i]);
      return 1;  // usage
    }
  }
  serve::ServingEngine engine(serve_options);
  serve::RecoveryInfo recovery;
  Status opened = engine.Open(&recovery);
  if (!opened.ok()) {
    // Unrecoverable on-disk state: refusing to serve beats guessing at the
    // catalog. Exit 2 per the error contract above.
    std::printf("error: %s\n", opened.ToString().c_str());
    return 2;
  }
  if (!serve_options.durability.data_dir.empty()) {
    // The summary goes to stderr: stdout carries exactly one response line
    // per command (the crash harness counts acknowledgments there).
    std::fprintf(stderr,
                 "recovery: generation=%llu snapshot=%d databases=%zu "
                 "records_replayed=%llu tail_truncated=%d\n",
                 static_cast<unsigned long long>(recovery.generation),
                 recovery.snapshot_loaded ? 1 : 0,
                 engine.ListDatabases().size(),
                 static_cast<unsigned long long>(recovery.records_replayed),
                 recovery.tail_truncated ? 1 : 0);
    for (const std::string& warning : recovery.warnings) {
      std::fprintf(stderr, "recovery warning: %s\n", warning.c_str());
    }
  }
  std::unordered_map<std::string, std::string> queries;
  std::string line;
  for (;;) {
    const LineRead read = ReadProtocolLine(std::cin, &line);
    if (read == LineRead::kEof) break;
    bool keep_going = true;
    if (read == LineRead::kTooLong) {
      std::printf("error: protocol line exceeds %lld bytes\n",
                  static_cast<long long>(kMaxProtocolLine - 1));
    } else {
      if (line.find('\0') != std::string::npos) {
        std::printf("error: protocol line contains an embedded NUL byte\n");
      } else {
        if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF
        keep_going = HandleServeLine(engine, queries, explain, line);
      }
    }
    // Flush per response: acknowledgments must be visible to the peer
    // before the next command is processed — a kill -9 between the flush
    // and the next line is exactly what the crash harness exercises.
    std::fflush(stdout);
    if (!keep_going) break;
  }
  return 0;
}

int Demo() {
  std::printf("demo (run with a subcommand for real use; see the header)\n\n");
  const char* q1 = "Q(X) :- E(X, Y), E(Y, Z), E(Z, X).";
  const char* q2 = "Q(X) :- E(X, Y).";
  std::printf("$ hom_tool contains \"%s\" \"%s\"\n", q1, q2);
  ContainsCmd(q1, q2);
  const char* redundant = "Q(X) :- E(X, Y), E(X, Z).";
  std::printf("\n$ hom_tool minimize \"%s\"\n", redundant);
  MinimizeCmd(redundant);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Demo();
  std::string cmd = argv[1];
  if (cmd == "solve" && argc >= 4) {
    return Solve(argv[2], argv[3], argc - 4, argv + 4);
  }
  if (cmd == "contains" && argc == 4) return ContainsCmd(argv[2], argv[3]);
  if (cmd == "minimize" && argc == 3) return MinimizeCmd(argv[2]);
  if (cmd == "evaluate" && argc == 4) return EvaluateCmd(argv[2], argv[3]);
  if (cmd == "classify" && argc == 3) return ClassifyCmd(argv[2]);
  if (cmd == "serve") return ServeCmd(argc - 2, argv + 2);
  std::printf("usage: see the comment at the top of examples/hom_tool.cpp\n");
  return 1;  // usage problems are 1, runtime errors are 2 (header contract)
}
