// A realistic CSP workload end to end: timetabling as a homomorphism
// problem, with the pebble game as a polynomial relaxation that detects
// infeasibility early (Theorem 4.9's use as a one-sided test) and the
// backtracking solver for the full decision.
//
// Model: variables = course sections; values = timeslots. Constraints:
//   Conflict(x, y) — sections sharing students/rooms need different slots;
//   Precedes(x, y) — lab section y must be strictly after lecture x.
// Encoded as hom(A -> B): A holds the constraint edges over the sections;
// B holds the allowed value pairs over the slots (the constraint
// relations' extensions).

#include <cstdio>

#include "pebble/game.h"
#include "solver/backtracking.h"

using namespace cqcs;

namespace {

struct Problem {
  VocabularyPtr vocab;
  Structure sections;
  Structure slots;
};

Problem MakeProblem(size_t num_slots, bool overconstrained) {
  auto vocab = std::make_shared<Vocabulary>();
  RelId conflict = vocab->AddRelation("Conflict", 2);
  RelId precedes = vocab->AddRelation("Precedes", 2);

  // Sections: 0 = calculus lecture, 1 = calculus lab, 2 = algebra lecture,
  // 3 = algebra lab, 4 = physics lecture, 5 = physics lab.
  Structure sections(vocab, 6);
  auto conflicts = [&](Element x, Element y) {
    sections.AddTuple(conflict, {x, y});
    sections.AddTuple(conflict, {y, x});
  };
  conflicts(0, 2);  // shared first-year students
  conflicts(0, 4);
  conflicts(2, 4);
  conflicts(1, 3);  // labs share the lab room
  conflicts(3, 5);
  if (overconstrained) conflicts(1, 5);
  sections.AddTuple(precedes, {0, 1});  // lecture before its lab
  sections.AddTuple(precedes, {2, 3});
  sections.AddTuple(precedes, {4, 5});

  Structure slots(vocab, num_slots);
  for (Element s = 0; s < num_slots; ++s) {
    for (Element t = 0; t < num_slots; ++t) {
      if (s != t) slots.AddTuple(conflict, {s, t});
      if (s < t) slots.AddTuple(precedes, {s, t});
    }
  }
  return Problem{vocab, std::move(sections), std::move(slots)};
}

void SolveAndReport(const char* label, const Problem& problem) {
  // Cheap necessary condition first: if the Spoiler wins the 2-pebble game
  // there is certainly no schedule, without any search.
  auto spoiler = SpoilerWinsExistentialKPebble(problem.sections,
                                               problem.slots, 2);
  std::printf("%s\n  2-pebble relaxation: %s\n", label,
              spoiler.ok() && *spoiler
                  ? "infeasible (proved without search)"
                  : "possibly feasible");
  SolveStats stats;
  BacktrackingSolver solver(problem.sections, problem.slots);
  auto schedule = solver.Solve(&stats);
  if (!schedule.has_value()) {
    std::printf("  full search: infeasible (%llu nodes)\n\n",
                static_cast<unsigned long long>(stats.nodes));
    return;
  }
  static const char* kNames[] = {"calc lecture", "calc lab",
                                 "algebra lecture", "algebra lab",
                                 "physics lecture", "physics lab"};
  std::printf("  schedule found in %llu search nodes:\n",
              static_cast<unsigned long long>(stats.nodes));
  for (size_t s = 0; s < schedule->size(); ++s) {
    std::printf("    %-16s -> slot %u\n", kNames[s], (*schedule)[s]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Three mutually conflicting lectures need three distinct slots, and the
  // lecture landing in the last slot leaves no later slot for its lab — so
  // four slots is the feasibility threshold.
  SolveAndReport("4 slots (feasible):", MakeProblem(4, false));
  SolveAndReport("3 slots (infeasible: last lecture's lab has no slot):",
                 MakeProblem(3, false));
  SolveAndReport("2 slots (infeasible: three conflicting lectures):",
                 MakeProblem(2, false));
  SolveAndReport("4 slots with all labs mutually conflicting:",
                 MakeProblem(4, true));
  return 0;
}
