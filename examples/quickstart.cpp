// Quickstart: conjunctive-query containment as a homomorphism problem.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// This walks through the core of the paper: two SQL-ish conjunctive
// queries, their canonical databases, the Chandra–Merlin containment test,
// and the witnessing homomorphism.

#include <cstdio>

#include "cq/containment.h"
#include "cq/parser.h"

using namespace cqcs;

int main() {
  // Two queries over a movie-ish schema:
  //   Directed(person, film), Acted(person, film).
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("Directed", 2);
  vocab->AddRelation("Acted", 2);

  // Q1: people who directed a film they also acted in.
  // Q2: people who directed some film and acted in some film.
  auto q1 = ParseQuery("Q(P) :- Directed(P, F), Acted(P, F).", vocab);
  auto q2 = ParseQuery("Q(P) :- Directed(P, F), Acted(P, G).", vocab);
  if (!q1.ok() || !q2.ok()) {
    std::printf("parse error: %s %s\n", q1.status().ToString().c_str(),
                q2.status().ToString().c_str());
    return 1;
  }
  std::printf("Q1: %s\nQ2: %s\n\n", ToString(*q1).c_str(),
              ToString(*q2).c_str());

  // Containment both ways. Q1 is the more specific query, so Q1 ⊆ Q2 but
  // not conversely.
  auto forward = Contains(*q1, *q2);
  auto backward = Contains(*q2, *q1);
  std::printf("Q1 contained in Q2: %s\n",
              forward->contained ? "yes" : "no");
  std::printf("Q2 contained in Q1: %s\n\n",
              backward->contained ? "yes" : "no");

  // The containment witness is a homomorphism D_{Q2} -> D_{Q1} (Theorem
  // 2.1 of Kolaitis-Vardi). Print it in terms of Q2's variables.
  if (forward->witness.has_value()) {
    std::printf("witness homomorphism (variables of Q2 -> variables of Q1):\n");
    for (VarId v = 0; v < q2->var_count(); ++v) {
      std::printf("  %s -> %s\n", q2->var_name(v).c_str(),
                  q1->var_name((*forward->witness)[v]).c_str());
    }
  }

  // Containment == evaluation (the second face of Theorem 2.1): evaluate Q2
  // over Q1's canonical database and look for the distinguished tuple.
  auto via_eval = IsContainedViaEvaluation(*q1, *q2);
  std::printf("\nsame answer via evaluation characterization: %s\n",
              *via_eval ? "yes" : "no");

  // And evaluation itself: run Q1 on a small database.
  Structure db(vocab, 4);  // elements: 0=ada, 1=bob, 2=film1, 3=film2
  db.AddTuple(0, {0, 2});  // Directed(ada, film1)
  db.AddTuple(1, {0, 2});  // Acted(ada, film1)
  db.AddTuple(0, {1, 2});  // Directed(bob, film1)
  db.AddTuple(1, {1, 3});  // Acted(bob, film2)
  auto rows = Evaluate(*q1, db);
  std::printf("\nQ1 over the sample database returns %zu row(s):",
              rows->size());
  for (const auto& row : *rows) {
    std::printf(" (%u)", row[0]);
  }
  std::printf("   # element 0 is 'ada'\n");
  return 0;
}
