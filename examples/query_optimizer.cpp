// Query minimization — the classical application of containment that the
// paper's introduction motivates: redundant joins in select-project-join
// queries can be removed when the smaller query is equivalent, and
// equivalence reduces to two containment tests.

#include <cstdio>

#include "cq/containment.h"
#include "cq/parser.h"

using namespace cqcs;

namespace {

void MinimizeAndReport(const char* label, const ConjunctiveQuery& q) {
  auto minimized = Minimize(q);
  if (!minimized.ok()) {
    std::printf("%s: error: %s\n", label, minimized.status().ToString().c_str());
    return;
  }
  std::printf("%s\n  original : %s   (%zu atoms)\n  minimized: %s   (%zu atoms)\n",
              label, ToString(q).c_str(), q.atoms().size(),
              ToString(*minimized).c_str(), minimized->atoms().size());
  auto equivalent = AreEquivalent(q, *minimized);
  std::printf("  equivalent: %s\n\n", *equivalent ? "yes" : "NO (bug!)");
}

}  // namespace

int main() {
  // An "employees" schema: Works(emp, dept), Manages(mgr, emp).
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("Works", 2);
  vocab->AddRelation("Manages", 2);

  // A machine-generated query with redundant self-joins: the second Works
  // atom folds onto the first.
  auto q1 = ParseQuery(
      "Q(E) :- Works(E, D), Works(E, D2), Manages(M, E).", vocab);
  MinimizeAndReport("redundant self-join", *q1);

  // A chain that cannot shrink: managers of managers, with the endpoint
  // distinguished.
  auto q2 = ParseQuery(
      "Q(M2) :- Manages(M2, M1), Manages(M1, E), Works(E, D).", vocab);
  MinimizeAndReport("management chain (already minimal)", *q2);

  // A Boolean query whose body folds dramatically: several parallel copies
  // of the same pattern collapse to one.
  auto q3 = ParseQuery(
      "Q() :- Works(A, B), Works(C, B), Works(A, D), Works(C, D).", vocab);
  MinimizeAndReport("parallel patterns", *q3);

  // Containment-based view usability check: a materialized view V answers
  // query Q when Q ⊆ V (simplified rewriting test from the
  // answering-queries-using-views literature the paper cites).
  auto view = ParseQuery("V(E) :- Works(E, D).", vocab);
  auto query = ParseQuery("Q(E) :- Works(E, D), Manages(M, E).", vocab);
  auto usable = IsContained(*query, *view);
  std::printf("view usability: Q ⊆ V: %s — the view's rows are a superset\n",
              *usable ? "yes" : "no");
  return 0;
}
