// E12 ([Yan81]/[CR97] discussion in Sections 1 and 5): containment with an
// acyclic right-hand side is polynomial via Yannakakis semijoins, versus
// the generic NP test. Series: both procedures as the queries grow, plus
// an agreement audit.

#include <benchmark/benchmark.h>

#include "cq/acyclic.h"
#include "cq/containment.h"
#include "gen/generators.h"

namespace cqcs {
namespace {

struct QueryPair {
  ConjunctiveQuery q1;
  ConjunctiveQuery q2;
};

QueryPair MakePair(size_t size, uint64_t seed) {
  Rng rng(seed);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = ChainQuery(vocab, size);
  ConjunctiveQuery q2 = ChainQuery(vocab, size / 2 + 1);
  return QueryPair{std::move(q1), std::move(q2)};
}

void BM_AcyclicContainment(benchmark::State& state) {
  QueryPair pair = MakePair(static_cast<size_t>(state.range(0)), 3);
  bool answer = false;
  for (auto _ : state) {
    auto r = AcyclicContainment(pair.q1, pair.q2);
    answer = r.ok() && *r;
    benchmark::DoNotOptimize(r);
  }
  state.counters["contained"] = answer ? 1 : 0;
}
BENCHMARK(BM_AcyclicContainment)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_GenericContainmentBaseline(benchmark::State& state) {
  QueryPair pair = MakePair(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContained(pair.q1, pair.q2));
  }
}
BENCHMARK(BM_GenericContainmentBaseline)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_YannakakisEvaluation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17 + n);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, 8);
  Structure d = RandomGraphStructure(vocab, n, 8.0 / static_cast<double>(n),
                                     rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateBooleanAcyclic(chain, d));
  }
}
BENCHMARK(BM_YannakakisEvaluation)
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_AcyclicAgreementAudit(benchmark::State& state) {
  auto vocab = MakeGraphVocabulary();
  size_t agreements = 0, instances = 0;
  for (auto _ : state) {
    agreements = instances = 0;
    Rng rng(515);
    for (int trial = 0; trial < 20; ++trial) {
      ConjunctiveQuery q1 =
          RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(4), rng);
      ConjunctiveQuery q2 = ChainQuery(vocab, 1 + rng.Below(4));
      std::vector<VarId> head = {q1.head()[0], q1.head()[0]};
      q1.SetHead(head);
      auto fast = AcyclicContainment(q1, q2);
      auto slow = IsContained(q1, q2);
      ++instances;
      if (fast.ok() && slow.ok() && *fast == *slow) ++agreements;
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_AcyclicAgreementAudit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
