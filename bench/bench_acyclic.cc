// E12 ([Yan81]/[CR97] discussion in Sections 1 and 5): containment with an
// acyclic right-hand side is polynomial via Yannakakis semijoins, versus
// the generic NP test. Series: both procedures as the queries grow, plus
// an agreement audit.

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "cq/acyclic.h"
#include "cq/containment.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

struct QueryPair {
  ConjunctiveQuery q1;
  ConjunctiveQuery q2;
};

QueryPair MakePair(size_t size, uint64_t seed) {
  Rng rng(seed);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = ChainQuery(vocab, size);
  ConjunctiveQuery q2 = ChainQuery(vocab, size / 2 + 1);
  return QueryPair{std::move(q1), std::move(q2)};
}

void BM_AcyclicContainment(benchmark::State& state) {
  QueryPair pair = MakePair(static_cast<size_t>(state.range(0)), 3);
  bool answer = false;
  for (auto _ : state) {
    auto r = AcyclicContainment(pair.q1, pair.q2);
    answer = r.ok() && *r;
    benchmark::DoNotOptimize(r);
  }
  state.counters["contained"] = answer ? 1 : 0;
}
BENCHMARK(BM_AcyclicContainment)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_GenericContainmentBaseline(benchmark::State& state) {
  QueryPair pair = MakePair(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContained(pair.q1, pair.q2));
  }
}
BENCHMARK(BM_GenericContainmentBaseline)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_YannakakisEvaluation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17 + n);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, 8);
  Structure d = RandomGraphStructure(vocab, n, 8.0 / static_cast<double>(n),
                                     rng, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateBooleanAcyclic(chain, d));
  }
}
BENCHMARK(BM_YannakakisEvaluation)
    ->Arg(32)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

// Task-by-task Yannakakis series (recorded in BENCH_solver.json by
// bench/run_bench.sh): the engine's acyclic route — semijoin reduction and
// hash joins over the rel/ columnar kernel — against the uniform
// backtracking solver serving the exact same task with the same caps, on
// tree sources at sizes where the asymptotic separation shows. Arg 0 is
// the arm (0 = engine auto, 1 = raw uniform), Arg 1 the source size. Each
// arm pays its full per-call cost (problem compilation + profile for auto,
// CspInstance build for uniform), so these are honest end-to-end numbers.
constexpr size_t kCountCap = 100000;   // both arms saturate here
constexpr size_t kEnumerateCap = 1000; // both arms stop here

void RunYannakakisTask(benchmark::State& state, HomTask task) {
  const bool use_auto = state.range(0) == 0;
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(8111);
  auto vocab = MakeGraphVocabulary();
  Structure a = StructureFromGraph(vocab, RandomTree(n, rng));
  Structure b = RandomGraphStructure(vocab, 12, 0.3, rng, /*symmetric=*/true);
  size_t answer = 0;
  int chosen = -1;
  for (auto _ : state) {
    if (use_auto) {
      EngineOptions options;
      options.count_limit = kCountCap;
      options.max_results = kEnumerateCap;
      auto problem = HomProblem::FromStructures(a, b);
      HomEngine engine(options);
      auto r = engine.Run(*problem, task);
      answer = r.ok() ? (task == HomTask::kWitness ? r->decided : r->count) : 0;
      chosen = r.ok() ? static_cast<int>(r->explain.chosen) : -1;
      benchmark::DoNotOptimize(r);
    } else {
      BacktrackingSolver solver(a, b);
      chosen = static_cast<int>(Backend::kUniform);
      switch (task) {
        case HomTask::kWitness:
          answer = solver.Solve().has_value() ? 1 : 0;
          break;
        case HomTask::kCount:
          answer = solver.CountSolutions(kCountCap);
          break;
        case HomTask::kEnumerate: {
          size_t rows = 0;
          solver.ForEachSolution([&](const Homomorphism&) {
            return ++rows < kEnumerateCap;
          });
          answer = rows;
          break;
        }
        default:
          break;
      }
      benchmark::DoNotOptimize(answer);
    }
  }
  state.counters["auto_arm"] = use_auto ? 1 : 0;
  state.counters["backend"] = chosen;  // Backend enum value
  state.counters["answer"] = static_cast<double>(answer);
}

void BM_YannakakisTask_Witness(benchmark::State& state) {
  RunYannakakisTask(state, HomTask::kWitness);
}
void BM_YannakakisTask_Count(benchmark::State& state) {
  RunYannakakisTask(state, HomTask::kCount);
}
void BM_YannakakisTask_Enumerate(benchmark::State& state) {
  RunYannakakisTask(state, HomTask::kEnumerate);
}
BENCHMARK(BM_YannakakisTask_Witness)
    ->Args({0, 64})->Args({1, 64})
    ->Args({0, 512})->Args({1, 512})
    ->Args({0, 4096})->Args({1, 4096})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_YannakakisTask_Count)
    ->Args({0, 64})->Args({1, 64})
    ->Args({0, 512})->Args({1, 512})
    ->Args({0, 4096})->Args({1, 4096})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_YannakakisTask_Enumerate)
    ->Args({0, 64})->Args({1, 64})
    ->Args({0, 512})->Args({1, 512})
    ->Args({0, 4096})->Args({1, 4096})
    ->Unit(benchmark::kMillisecond);

// Thread sweep over the morsel-parallel acyclic route (same instance and
// caps as the Count series above, problem compiled once so the series
// isolates the kernel). On a single-core host (context.host.nproc = 1 in
// BENCH_solver.json) the 2/4/8 arms bound the *decomposition overhead* of
// multi-worker dispatch — morsel claiming, shard merging, pool handoff —
// rather than measuring speedup; the acceptance bar is that overhead, not
// scaling.
void BM_YannakakisTask_CountThreads(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(8111);
  auto vocab = MakeGraphVocabulary();
  Structure a = StructureFromGraph(vocab, RandomTree(n, rng));
  Structure b = RandomGraphStructure(vocab, 12, 0.3, rng, /*symmetric=*/true);
  EngineOptions options;
  options.backend = Backend::kAcyclic;
  options.count_limit = kCountCap;
  options.solve.num_threads = threads;
  auto problem = HomProblem::FromStructures(a, b);
  HomEngine engine(options);
  size_t answer = 0;
  uint64_t morsels = 0, steals = 0;
  for (auto _ : state) {
    auto r = engine.Run(*problem, HomTask::kCount);
    if (r.ok()) {
      answer = r->count;
      morsels = r->stats.yannakakis.morsels;
      steals = r->stats.yannakakis.steals;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = threads;
  state.counters["answer"] = static_cast<double>(answer);
  state.counters["morsels"] = static_cast<double>(morsels);
  state.counters["steals"] = static_cast<double>(steals);
}
BENCHMARK(BM_YannakakisTask_CountThreads)
    ->Args({1, 4096})->Args({2, 4096})->Args({4, 4096})->Args({8, 4096})
    ->Unit(benchmark::kMillisecond);

void BM_AcyclicAgreementAudit(benchmark::State& state) {
  auto vocab = MakeGraphVocabulary();
  size_t agreements = 0, instances = 0;
  for (auto _ : state) {
    agreements = instances = 0;
    Rng rng(515);
    for (int trial = 0; trial < 20; ++trial) {
      ConjunctiveQuery q1 =
          RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(4), rng);
      ConjunctiveQuery q2 = ChainQuery(vocab, 1 + rng.Below(4));
      std::vector<VarId> head = {q1.head()[0], q1.head()[0]};
      q1.SetHead(head);
      auto fast = AcyclicContainment(q1, q2);
      auto slow = IsContained(q1, q2);
      ++instances;
      if (fast.ok() && slow.ok() && *fast == *slow) ++agreements;
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_AcyclicAgreementAudit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
