// E10 (Lemma 5.5): the dual-graph binary encoding preserves homomorphism
// existence; its cost is quadratic in the number of tuples (all coincidence
// pairs are materialized). Series: encoding time and size versus tuple
// count and arity; plus an agreement audit through the treewidth DP.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/binary_encoding.h"
#include "treewidth/hom_dp.h"

namespace cqcs {
namespace {

void BM_BinaryEncode(benchmark::State& state) {
  const size_t tuples = static_cast<size_t>(state.range(0));
  Rng rng(13 + tuples);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  Structure a = RandomStructure(vocab, 2 * tuples, tuples, rng);
  size_t encoded_size = 0;
  for (auto _ : state) {
    BinaryEncoded enc = BinaryEncode(a);
    encoded_size = enc.encoded.Size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["orig_size"] = static_cast<double>(a.Size());
  state.counters["enc_size"] = static_cast<double>(encoded_size);
}
BENCHMARK(BM_BinaryEncode)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_BinaryEncode_AritySweep(benchmark::State& state) {
  const uint32_t arity = static_cast<uint32_t>(state.range(0));
  Rng rng(17 + arity);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", arity);
  Structure a = RandomStructure(vocab, 32, 32, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinaryEncode(a));
  }
}
BENCHMARK(BM_BinaryEncode_AritySweep)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_BinaryEquivalenceAudit(benchmark::State& state) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  size_t agreements = 0, instances = 0;
  for (auto _ : state) {
    agreements = instances = 0;
    Rng rng(2718);
    for (int trial = 0; trial < 20; ++trial) {
      Structure a = RandomStructure(vocab, 2 + rng.Below(4), rng.Below(5), rng);
      Structure b = RandomStructure(vocab, 2 + rng.Below(3), rng.Below(7), rng);
      bool direct = HasHomomorphism(a, b);
      bool encoded = HomomorphismExistsViaBinaryEncoding(
          a, b, [](const Structure& ea, const Structure& eb) {
            return HasHomomorphism(ea, eb);
          });
      ++instances;
      if (direct == encoded) ++agreements;
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_BinaryEquivalenceAudit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
