#!/usr/bin/env bash
# Runs the solver benchmarks with fixed seeds and writes BENCH_solver.json
# (google-benchmark JSON with both binaries' entries merged), so successive
# PRs leave a comparable perf trajectory.
#
# Usage: bench/run_bench.sh [build-dir] [output.json]
# Requires a configured build with CQCS_BUILD_BENCHMARKS=ON (needs the
# google-benchmark package; the CMake config skips bench/ without it).

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_solver.json}"
FILTER='BM_CliqueIntoRandomGraph|BM_Backtracking_NodeThroughput|BM_Horn_Backtracking'
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

cd "$(dirname "$0")/.."

for bin in bench_hardness bench_uniform_boolean; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "error: $BUILD_DIR/bench/$bin not built (configure with" \
         "CQCS_BUILD_BENCHMARKS=ON and google-benchmark installed)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bin in bench_hardness bench_uniform_boolean; do
  "$BUILD_DIR/bench/$bin" \
    --benchmark_filter="$FILTER" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$tmpdir/$bin.json" \
    --benchmark_out_format=json \
    --benchmark_repetitions=1
done

# Merge: keep the first file's context, concatenate benchmark entries.
jq -s '{context: .[0].context,
        benchmarks: (map(.benchmarks) | add)}' \
  "$tmpdir"/bench_hardness.json "$tmpdir"/bench_uniform_boolean.json > "$OUT"

echo "wrote $OUT ($(jq '.benchmarks | length' "$OUT") entries)"
