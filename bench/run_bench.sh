#!/usr/bin/env bash
# Runs the solver benchmarks with fixed seeds and writes BENCH_solver.json
# (google-benchmark JSON with both binaries' entries merged), so successive
# PRs leave a comparable perf trajectory. The filter keeps the PR 1 series
# and adds the PR 2 search-strategy series (CBJ / dom-wdeg / restarts
# variants of the clique and node-throughput benches).
#
# Usage: bench/run_bench.sh [build-dir] [output.json]
# Requires a configured build with CQCS_BUILD_BENCHMARKS=ON (needs the
# google-benchmark package; the CMake config skips bench/ without it).
#
# Any bench binary crashing (or emitting unparsable JSON) aborts the script
# with a non-zero exit: a partial BENCH_solver.json would silently poison
# the perf trajectory.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_solver.json}"
FILTER='BM_CliqueIntoRandomGraph|BM_PlantedCliqueRecovery|BM_SparseRefutationFc|BM_Backtracking_NodeThroughput|BM_Horn_Backtracking'
MIN_TIME="${BENCH_MIN_TIME:-0.2}"

cd "$(dirname "$0")/.."

for bin in bench_hardness bench_uniform_boolean; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "error: $BUILD_DIR/bench/$bin not built (configure with" \
         "CQCS_BUILD_BENCHMARKS=ON and google-benchmark installed)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bin in bench_hardness bench_uniform_boolean; do
  if ! "$BUILD_DIR/bench/$bin" \
      --benchmark_filter="$FILTER" \
      --benchmark_min_time="$MIN_TIME" \
      --benchmark_out="$tmpdir/$bin.json" \
      --benchmark_out_format=json \
      --benchmark_repetitions=1; then
    echo "error: $bin exited non-zero; refusing to write a partial $OUT" >&2
    exit 1
  fi
  # A crash after the JSON header leaves a truncated file that would merge
  # "successfully" — validate before trusting it.
  if ! jq -e '.benchmarks | length > 0' "$tmpdir/$bin.json" >/dev/null; then
    echo "error: $bin produced invalid or empty benchmark JSON" >&2
    exit 1
  fi
done

# Merge: keep the first file's context, concatenate benchmark entries.
jq -s '{context: .[0].context,
        benchmarks: (map(.benchmarks) | add)}' \
  "$tmpdir"/bench_hardness.json "$tmpdir"/bench_uniform_boolean.json > "$OUT"

echo "wrote $OUT ($(jq '.benchmarks | length' "$OUT") entries)"
