#!/usr/bin/env bash
# Runs the solver benchmarks with fixed seeds and writes BENCH_solver.json
# (google-benchmark JSON with all binaries' entries merged), so successive
# PRs leave a comparable perf trajectory. The filter keeps the PR 1 series,
# the PR 2 search-strategy series (CBJ / dom-wdeg / restarts variants),
# the PR 3 work-stealing parallel scaling series (1/2/4/8 workers), the
# PR 4 front-door routing series (engine kAuto vs raw uniform per family,
# now with a third governed arm — kAuto under never-tripping resource
# budgets — whose delta against arm 0 is the governance overhead),
# and the PR 5 polynomial-backend series: the task-by-task Yannakakis
# program on the rel/ columnar kernel (witness/count/enumerate, auto vs
# uniform arms over a source-size sweep) and the hash-indexed treewidth DP
# sweeps.
#
# The merged file's .context.host records the hardware and build the numbers
# came from — nproc, compiler, build type, git sha — because the parallel
# series is only comparable across machines with that context attached (an
# 8-worker run on a single-core CI box measures overhead, not speedup).
#
# Usage: bench/run_bench.sh [--quick] [build-dir] [output.json]
#   --quick   reduced series + minimal min_time, for CI smoke use: checks
#             that every bench binary still runs and emits valid JSON
#             without burning minutes on statistics.
#
# Requires a configured build with CQCS_BUILD_BENCHMARKS=ON (needs the
# google-benchmark package; the CMake config skips bench/ without it).
#
# Any bench binary crashing (or emitting unparsable JSON) aborts the script
# with a non-zero exit: a partial BENCH_solver.json would silently poison
# the perf trajectory.

set -euo pipefail

QUICK=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done

BUILD_DIR="${ARGS[0]:-build}"
OUT="${ARGS[1]:-BENCH_solver.json}"
BINS=(bench_hardness bench_uniform_boolean bench_acyclic bench_treewidth)
FILTER='BM_CliqueIntoRandomGraph|BM_PlantedCliqueRecovery|BM_SparseRefutationFc|BM_Backtracking_NodeThroughput|BM_Horn_Backtracking|BM_CliqueRefutationParallel|BM_PlantedCliqueParallel|BM_EngineAutoVsUniform|BM_YannakakisTask|BM_TreewidthDpIndexed'
MIN_TIME="${BENCH_MIN_TIME:-0.2}"
if [[ "$QUICK" == 1 ]]; then
  # Smoke series: one cheap entry per binary plus the parallel scaling
  # series (its correctness under load is exactly what CI should smoke).
  FILTER='BM_CliqueIntoRandomGraph/3|BM_Backtracking_NodeThroughput/|BM_CliqueRefutationParallel|BM_YannakakisTask_Witness/0/64|BM_TreewidthDpIndexed_SourceSweep/128'
  MIN_TIME="${BENCH_MIN_TIME:-0.01}"
fi

cd "$(dirname "$0")/.."

for bin in "${BINS[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "error: $BUILD_DIR/bench/$bin not built (configure with" \
         "CQCS_BUILD_BENCHMARKS=ON and google-benchmark installed)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for bin in "${BINS[@]}"; do
  if ! "$BUILD_DIR/bench/$bin" \
      --benchmark_filter="$FILTER" \
      --benchmark_min_time="$MIN_TIME" \
      --benchmark_out="$tmpdir/$bin.json" \
      --benchmark_out_format=json \
      --benchmark_repetitions=1; then
    echo "error: $bin exited non-zero; refusing to write a partial $OUT" >&2
    exit 1
  fi
  # A crash after the JSON header leaves a truncated file that would merge
  # "successfully" — validate before trusting it.
  if ! jq -e '.benchmarks | length > 0' "$tmpdir/$bin.json" >/dev/null; then
    echo "error: $bin produced invalid or empty benchmark JSON" >&2
    exit 1
  fi
done

# Hardware/build provenance for cross-machine comparability. Everything is
# best-effort ("unknown") except nproc, which the parallel series cannot be
# interpreted without.
NPROC="$(nproc 2>/dev/null || echo 1)"
COMPILER="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null |
            cut -d= -f2 || true)"
COMPILER_VERSION="$("${COMPILER:-c++}" --version 2>/dev/null | head -1 || echo unknown)"
BUILD_TYPE="$(grep -m1 '^CMAKE_BUILD_TYPE:' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null |
              cut -d= -f2 || echo unknown)"
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

# Merge: keep the first file's context, inject the host block, concatenate
# benchmark entries.
BIN_JSONS=()
for bin in "${BINS[@]}"; do BIN_JSONS+=("$tmpdir/$bin.json"); done
jq -s --arg nproc "$NPROC" \
      --arg compiler "${COMPILER_VERSION:-unknown}" \
      --arg build_type "${BUILD_TYPE:-unknown}" \
      --arg git_sha "$GIT_SHA" \
      --argjson quick "$QUICK" \
  '{context: (.[0].context + {host: {
        nproc: ($nproc | tonumber),
        compiler: $compiler,
        build_type: $build_type,
        git_sha: $git_sha,
        quick: ($quick == 1)}}),
    benchmarks: (map(.benchmarks) | add)}' \
  "${BIN_JSONS[@]}" > "$OUT"

echo "wrote $OUT ($(jq '.benchmarks | length' "$OUT") entries," \
     "nproc=$NPROC, quick=$QUICK)"
