#!/usr/bin/env bash
# Runs the benchmark suite with fixed seeds and writes two merged
# google-benchmark JSON files, so successive PRs leave a comparable perf
# trajectory:
#
#   BENCH_solver.json   the solver/backends trajectory: the PR 1 hardness
#                       series, PR 2 search strategies (CBJ / dom-wdeg /
#                       restarts), PR 3 work-stealing parallel scaling, PR 4
#                       front-door routing (kAuto vs raw uniform, plus the
#                       governed arm whose delta is the governance
#                       overhead), PR 5 polynomial backends (task-by-task
#                       Yannakakis, hash-indexed treewidth DP).
#   BENCH_serving.json  the PR 7 serving-layer series: cache-mode and
#                       distribution sweeps (uniform / zipfian / self-
#                       similar) over read-heavy and update-heavy mixes,
#                       with p50/p95/p99 latency, throughput, and cache hit
#                       rates as counters; plus the PR 8 durable arm, the
#                       same update-heavy mix WAL-backed under
#                       fsync=always / interval / never.
#
# Each merged file's .context.host records the hardware and build the
# numbers came from — nproc, compiler, build type, git sha — because the
# parallel and serving series are only comparable across machines with that
# context attached.
#
# Usage: bench/run_bench.sh [--quick] [build-dir] [solver-output.json]
#   --quick   reduced series + minimal min_time, for CI smoke use: checks
#             that every bench binary still runs and emits valid JSON
#             without burning minutes on statistics.
#
# Requires a configured build with CQCS_BUILD_BENCHMARKS=ON (needs the
# google-benchmark package; the CMake config skips bench/ without it).
#
# Any bench binary crashing (or emitting unparsable JSON) aborts the script
# with a non-zero exit: a partial output would silently poison the perf
# trajectory.

set -euo pipefail

QUICK=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done

BUILD_DIR="${ARGS[0]:-build}"
SOLVER_OUT="${ARGS[1]:-BENCH_solver.json}"
SERVING_OUT="BENCH_serving.json"

SOLVER_BINS=(bench_hardness bench_uniform_boolean bench_acyclic bench_treewidth bench_rel)
SOLVER_FILTER='BM_CliqueIntoRandomGraph|BM_PlantedCliqueRecovery|BM_SparseRefutationFc|BM_Backtracking_NodeThroughput|BM_Horn_Backtracking|BM_CliqueRefutationParallel|BM_PlantedCliqueParallel|BM_EngineAutoVsUniform|BM_YannakakisTask|BM_TreewidthDpIndexed|BM_ProbeBatch'
SERVING_BINS=(bench_serving)
SERVING_FILTER='BM_ServingReadHeavy|BM_ServingUpdateHeavy|BM_ServingDurableUpdateHeavy'
MIN_TIME="${BENCH_MIN_TIME:-0.2}"
if [[ "$QUICK" == 1 ]]; then
  # Smoke series: one cheap entry per binary plus the parallel scaling
  # series (its correctness under load is exactly what CI should smoke),
  # and for serving the disabled-vs-full-cache pair at zipfian 0.99 (the
  # pair the headline speedup claim compares).
  SOLVER_FILTER='BM_CliqueIntoRandomGraph/3|BM_Backtracking_NodeThroughput/|BM_CliqueRefutationParallel|BM_YannakakisTask_Witness/0/64|BM_YannakakisTask_CountThreads/2/4096|BM_TreewidthDpIndexed_SourceSweep/128|BM_ProbeBatch_Batched/1024'
  SERVING_FILTER='BM_ServingReadHeavy/0/2|BM_ServingReadHeavy/2/2'
  MIN_TIME="${BENCH_MIN_TIME:-0.01}"
fi

cd "$(dirname "$0")/.."

# Hardware/build provenance for cross-machine comparability. Everything is
# best-effort ("unknown") except nproc, which the parallel series cannot be
# interpreted without.
NPROC="$(nproc 2>/dev/null || echo 1)"
COMPILER="$(grep -m1 '^CMAKE_CXX_COMPILER:' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null |
            cut -d= -f2 || true)"
COMPILER_VERSION="$("${COMPILER:-c++}" --version 2>/dev/null | head -1 || echo unknown)"
BUILD_TYPE="$(grep -m1 '^CMAKE_BUILD_TYPE:' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null |
              cut -d= -f2 || echo unknown)"
GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# run_group <output.json> <filter> <bin>...: runs each binary with the
# filter, validates its JSON, then merges all of them (first file's context
# + the host block + concatenated benchmark entries) into the output.
run_group() {
  local out="$1" filter="$2"
  shift 2
  local bins=("$@")
  for bin in "${bins[@]}"; do
    if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
      echo "error: $BUILD_DIR/bench/$bin not built (configure with" \
           "CQCS_BUILD_BENCHMARKS=ON and google-benchmark installed)" >&2
      exit 1
    fi
  done
  local jsons=()
  for bin in "${bins[@]}"; do
    if ! "$BUILD_DIR/bench/$bin" \
        --benchmark_filter="$filter" \
        --benchmark_min_time="$MIN_TIME" \
        --benchmark_out="$tmpdir/$bin.json" \
        --benchmark_out_format=json \
        --benchmark_repetitions=1; then
      echo "error: $bin exited non-zero; refusing to write a partial $out" >&2
      exit 1
    fi
    # A crash after the JSON header leaves a truncated file that would merge
    # "successfully" — validate before trusting it.
    if ! jq -e '.benchmarks | length > 0' "$tmpdir/$bin.json" >/dev/null; then
      echo "error: $bin produced invalid or empty benchmark JSON" >&2
      exit 1
    fi
    jsons+=("$tmpdir/$bin.json")
  done
  jq -s --arg nproc "$NPROC" \
        --arg compiler "${COMPILER_VERSION:-unknown}" \
        --arg build_type "${BUILD_TYPE:-unknown}" \
        --arg git_sha "$GIT_SHA" \
        --argjson quick "$QUICK" \
    '{context: (.[0].context + {host: {
          nproc: ($nproc | tonumber),
          compiler: $compiler,
          build_type: $build_type,
          git_sha: $git_sha,
          quick: ($quick == 1)}}),
      benchmarks: (map(.benchmarks) | add)}' \
    "${jsons[@]}" > "$out"
  echo "wrote $out ($(jq '.benchmarks | length' "$out") entries," \
       "nproc=$NPROC, quick=$QUICK)"
}

run_group "$SOLVER_OUT" "$SOLVER_FILTER" "${SOLVER_BINS[@]}"
run_group "$SERVING_OUT" "$SERVING_FILTER" "${SERVING_BINS[@]}"
