// E4 (Lemma 3.5): Booleanization preserves homomorphism existence at a
// ⌈log |B|⌉ blow-up. Series: encoding time and measured blow-up factor as
// |B| grows; a one-time equivalence audit against the direct solver.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "schaefer/booleanize.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

void BM_Booleanize(benchmark::State& state) {
  const size_t nb = static_cast<size_t>(state.range(0));
  Rng rng(7 * nb + 1);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 64, 0.1, rng, false);
  Structure b = RandomGraphStructure(vocab, nb, 0.3, rng, false);
  size_t encoded_size = 0;
  uint32_t bits = 0;
  for (auto _ : state) {
    auto boolean = Booleanize(a, b);
    encoded_size = boolean->a_b.Size() + boolean->b_b.Size();
    bits = boolean->bits;
    benchmark::DoNotOptimize(boolean);
  }
  double original = static_cast<double>(a.Size() + b.Size());
  state.counters["bits"] = bits;
  state.counters["blowup"] = static_cast<double>(encoded_size) / original;
}
BENCHMARK(BM_Booleanize)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_BooleanizeEquivalenceAudit(benchmark::State& state) {
  // Decide 30 random instances both directly and through the encoding;
  // the counter reports agreements (must equal instances).
  Rng rng(99);
  auto vocab = MakeGraphVocabulary();
  size_t agreements = 0, instances = 0;
  for (auto _ : state) {
    agreements = 0;
    instances = 0;
    Rng local(rng.Next());
    for (int trial = 0; trial < 30; ++trial) {
      Structure a =
          RandomGraphStructure(vocab, 3 + local.Below(4), 0.4, local, false);
      Structure b =
          RandomGraphStructure(vocab, 2 + local.Below(5), 0.4, local, false);
      auto boolean = Booleanize(a, b);
      bool direct = HasHomomorphism(a, b);
      bool encoded = HasHomomorphism(boolean->a_b, boolean->b_b);
      ++instances;
      if (direct == encoded) ++agreements;
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_BooleanizeEquivalenceAudit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
