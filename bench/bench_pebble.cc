// E7 (Theorems 4.7/4.9): the existential k-pebble game is decidable in
// time polynomial in n^{2k}. Series: game time versus |A| for k = 2, 3;
// the position counter exhibits the n^{k}·m^{k}-sized state space the
// fixpoint runs over.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "pebble/game.h"

namespace cqcs {
namespace {

void RunGame(benchmark::State& state, uint32_t k) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(31 * n + k);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, n, 0.3, rng, false);
  Structure b = RandomGraphStructure(vocab, 4, 0.4, rng, false);
  size_t positions = 0;
  bool spoiler = false;
  for (auto _ : state) {
    auto game = ExistentialPebbleGame::Create(a, b, k);
    positions = game->stats().total_positions;
    spoiler = game->SpoilerWins();
    benchmark::DoNotOptimize(game);
  }
  state.counters["positions"] = static_cast<double>(positions);
  state.counters["spoiler_wins"] = spoiler ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(n));
}

void BM_PebbleGame_K2(benchmark::State& state) { RunGame(state, 2); }
void BM_PebbleGame_K3(benchmark::State& state) { RunGame(state, 3); }

BENCHMARK(BM_PebbleGame_K2)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oAuto);
BENCHMARK(BM_PebbleGame_K3)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oAuto);

void BM_PebbleGame_TargetSweep(benchmark::State& state) {
  // |B| sweep at fixed |A| — uniformity in the second input.
  const size_t m = static_cast<size_t>(state.range(0));
  Rng rng(77 + m);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 10, 0.3, rng, false);
  Structure b = RandomGraphStructure(vocab, m, 0.4, rng, false);
  for (auto _ : state) {
    auto game = ExistentialPebbleGame::Create(a, b, 2);
    benchmark::DoNotOptimize(game->SpoilerWins());
  }
}
BENCHMARK(BM_PebbleGame_TargetSweep)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
