// Ablations for the design choices DESIGN.md calls out:
//   - MAC vs forward checking in the generic solver;
//   - SCC-based vs phase-propagation 2-SAT;
//   - min-fill vs min-degree elimination orders (width and time);
//   - treewidth DP vs ∃FO^{w+1} sentence evaluation (two implementations
//     of Theorem 5.4's idea).

#include <benchmark/benchmark.h>

#include "fo/evaluate.h"
#include "fo/from_decomposition.h"
#include "gen/generators.h"
#include "schaefer/cnf.h"
#include "solver/backtracking.h"
#include "treewidth/hom_dp.h"

namespace cqcs {
namespace {

void RunSolver(benchmark::State& state, Propagation propagation) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(31337 + n);
  auto vocab = MakeGraphVocabulary();
  Structure a = UndirectedCycleStructure(vocab, (n | 1));  // odd: UNSAT side
  Structure b = CliqueStructure(vocab, 2);
  SolveOptions options;
  options.propagation = propagation;
  uint64_t nodes = 0;
  for (auto _ : state) {
    BacktrackingSolver solver(a, b, options);
    SolveStats stats;
    benchmark::DoNotOptimize(solver.Solve(&stats));
    nodes = stats.nodes;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
void BM_Solver_Mac(benchmark::State& state) {
  RunSolver(state, Propagation::kMac);
}
void BM_Solver_ForwardChecking(benchmark::State& state) {
  RunSolver(state, Propagation::kForwardChecking);
}
BENCHMARK(BM_Solver_Mac)->Arg(17)->Arg(33)->Arg(65)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Solver_ForwardChecking)->Arg(17)->Arg(33)->Arg(65)
    ->Unit(benchmark::kMicrosecond);

CnfFormula RandomTwoCnf(uint32_t vars, size_t clauses, uint64_t seed) {
  Rng rng(seed);
  CnfFormula f;
  f.var_count = vars;
  for (size_t c = 0; c < clauses; ++c) {
    Clause clause;
    clause.push_back(
        Literal{static_cast<uint32_t>(rng.Below(vars)), rng.Chance(0.5)});
    clause.push_back(
        Literal{static_cast<uint32_t>(rng.Below(vars)), rng.Chance(0.5)});
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

void BM_TwoSat_Scc(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  CnfFormula f = RandomTwoCnf(n, 2 * n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTwoSat(f));
  }
}
void BM_TwoSat_Propagation(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  CnfFormula f = RandomTwoCnf(n, 2 * n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTwoSatByPropagation(f));
  }
}
BENCHMARK(BM_TwoSat_Scc)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TwoSat_Propagation)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void RunOrder(benchmark::State& state, bool min_fill) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5 + n);
  Graph g = RandomPartialKTree(n, 3, 0.85, rng);
  int width = 0;
  for (auto _ : state) {
    auto order = min_fill ? MinFillOrder(g) : MinDegreeOrder(g);
    width = DecompositionFromEliminationOrder(g, order).Width();
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = width;
}
void BM_Order_MinFill(benchmark::State& state) { RunOrder(state, true); }
void BM_Order_MinDegree(benchmark::State& state) { RunOrder(state, false); }
BENCHMARK(BM_Order_MinFill)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Order_MinDegree)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_BoundedTw_Dp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(77 + n);
  auto vocab = MakeGraphVocabulary();
  Structure a =
      StructureFromGraph(vocab, RandomPartialKTree(n, 2, 0.85, rng));
  Structure b = RandomGraphStructure(vocab, 6, 0.5, rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveBoundedTreewidth(a, b));
  }
}
void BM_BoundedTw_FoSentence(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(77 + n);
  auto vocab = MakeGraphVocabulary();
  Structure a =
      StructureFromGraph(vocab, RandomPartialKTree(n, 2, 0.85, rng));
  Structure b = RandomGraphStructure(vocab, 6, 0.5, rng, true);
  auto sentence = BuildSentence(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateFoSentence(*sentence, b));
  }
}
BENCHMARK(BM_BoundedTw_Dp)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BoundedTw_FoSentence)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
