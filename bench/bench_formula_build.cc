// E2 (Theorem 3.2): defining formulas δ_R are constructible in polynomial
// time, with the sizes the paper states — O(k²) clauses for bijunctive and
// at most min(k+1, |R|) equations for affine (nullspace basis bound).

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "schaefer/formula_build.h"

namespace cqcs {
namespace {

BooleanRelation ClosedRelation(uint32_t arity, ClosureOp op, uint64_t seed) {
  Rng rng(seed);
  BooleanRelation r(arity);
  for (int i = 0; i < 5; ++i) r.Add(rng.Next() & r.FullMask());
  CloseUnder(r, op);
  return r;
}

void BM_BuildBijunctive(benchmark::State& state) {
  const uint32_t arity = static_cast<uint32_t>(state.range(0));
  BooleanRelation r = ClosedRelation(arity, ClosureOp::kMajority, 7 + arity);
  size_t clauses = 0;
  for (auto _ : state) {
    auto delta = BuildDefiningFormula(r, kBijunctive);
    clauses = delta->cnf.clauses.size();
    benchmark::DoNotOptimize(delta);
  }
  state.counters["tuples"] = static_cast<double>(r.size());
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["k^2"] = static_cast<double>(arity) * arity;
}
BENCHMARK(BM_BuildBijunctive)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildAffine(benchmark::State& state) {
  const uint32_t arity = static_cast<uint32_t>(state.range(0));
  BooleanRelation r = ClosedRelation(arity, ClosureOp::kXorTriples, 11 + arity);
  size_t equations = 0;
  for (auto _ : state) {
    auto delta = BuildDefiningFormula(r, kAffine);
    equations = delta->system.equations.size();
    benchmark::DoNotOptimize(delta);
  }
  state.counters["tuples"] = static_cast<double>(r.size());
  state.counters["equations"] = static_cast<double>(equations);
  // Theorem 3.2's bound on the basis size.
  state.counters["bound"] =
      static_cast<double>(std::min<size_t>(arity + 1, r.size()));
}
BENCHMARK(BM_BuildAffine)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildHorn(benchmark::State& state) {
  // The Horn construction sweeps the 2^k model complement (library bound
  // arity <= 16); the paper's direct route (Theorem 3.4) avoids δ entirely.
  const uint32_t arity = static_cast<uint32_t>(state.range(0));
  BooleanRelation r = ClosedRelation(arity, ClosureOp::kAnd, 13 + arity);
  size_t clauses = 0;
  for (auto _ : state) {
    auto delta = BuildDefiningFormula(r, kHorn);
    clauses = delta->cnf.clauses.size();
    benchmark::DoNotOptimize(delta);
  }
  state.counters["tuples"] = static_cast<double>(r.size());
  state.counters["clauses"] = static_cast<double>(clauses);
}
BENCHMARK(BM_BuildHorn)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildDualHorn(benchmark::State& state) {
  const uint32_t arity = static_cast<uint32_t>(state.range(0));
  BooleanRelation r = ClosedRelation(arity, ClosureOp::kOr, 17 + arity);
  for (auto _ : state) {
    auto delta = BuildDefiningFormula(r, kDualHorn);
    benchmark::DoNotOptimize(delta);
  }
  state.counters["tuples"] = static_cast<double>(r.size());
}
BENCHMARK(BM_BuildDualHorn)
    ->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
