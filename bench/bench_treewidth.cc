// E9 (Theorem 5.4): uniform tractability for bounded-treewidth sources.
// Series: DP over a tree decomposition versus generic backtracking as the
// source grows (n sweep) and as the target grows (|B| sweep, exhibiting
// the |B|^{w+1} table factor); plus the width sweep w = 1..4.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/hom_dp.h"

namespace cqcs {
namespace {

struct Instance {
  Structure a;
  Structure b;
};

Instance MakeInstance(size_t n, uint32_t k, size_t target_size,
                      uint64_t seed) {
  Rng rng(seed);
  auto vocab = MakeGraphVocabulary();
  Graph ga = RandomPartialKTree(n, k, 0.85, rng);
  return Instance{
      StructureFromGraph(vocab, ga),
      RandomGraphStructure(vocab, target_size, 0.5, rng, /*symmetric=*/true)};
}

void BM_TreewidthDp_SourceSweep(benchmark::State& state) {
  Instance inst =
      MakeInstance(static_cast<size_t>(state.range(0)), 2, 8, 4242);
  TreewidthSolveStats stats;
  bool hom = false;
  for (auto _ : state) {
    auto r = SolveBoundedTreewidth(inst.a, inst.b, &stats);
    hom = r.ok() && r->has_value();
    benchmark::DoNotOptimize(r);
  }
  state.counters["width"] = stats.width;
  state.counters["table_rows"] = static_cast<double>(stats.table_entries);
  state.counters["hom"] = hom ? 1 : 0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreewidthDp_SourceSweep)
    ->RangeMultiplier(2)->Range(16, 512)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oAuto);

void BM_Backtracking_SourceSweep(benchmark::State& state) {
  Instance inst =
      MakeInstance(static_cast<size_t>(state.range(0)), 2, 8, 4242);
  for (auto _ : state) {
    BacktrackingSolver solver(inst.a, inst.b);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Backtracking_SourceSweep)
    ->RangeMultiplier(2)->Range(16, 512)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oAuto);

void BM_TreewidthDp_TargetSweep(benchmark::State& state) {
  Instance inst =
      MakeInstance(64, 2, static_cast<size_t>(state.range(0)), 999);
  TreewidthSolveStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveBoundedTreewidth(inst.a, inst.b, &stats));
  }
  state.counters["width"] = stats.width;
  state.counters["table_rows"] = static_cast<double>(stats.table_entries);
}
BENCHMARK(BM_TreewidthDp_TargetSweep)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_TreewidthDp_WidthSweep(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Instance inst = MakeInstance(48, k, 6, 777);
  TreewidthSolveStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveBoundedTreewidth(inst.a, inst.b, &stats));
  }
  state.counters["width"] = stats.width;
  state.counters["table_rows"] = static_cast<double>(stats.table_entries);
}
BENCHMARK(BM_TreewidthDp_WidthSweep)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

// Hash-indexed DP series (recorded in BENCH_solver.json by
// bench/run_bench.sh): the rewritten tuple→bag assignment — rel::Table
// rows deduplicated through rel::HashIndex probes instead of
// std::set<std::vector<Element>> — at sizes the seed DP could not touch.
// The source sweep tracks near-linear growth in #bags at fixed width; the
// target sweep exhibits the |B|^{w+1} table factor with the new constants.
void BM_TreewidthDpIndexed_SourceSweep(benchmark::State& state) {
  Instance inst =
      MakeInstance(static_cast<size_t>(state.range(0)), 2, 8, 4242);
  TreewidthSolveStats stats;
  bool hom = false;
  for (auto _ : state) {
    auto r = SolveBoundedTreewidth(inst.a, inst.b, &stats);
    hom = r.ok() && r->has_value();
    benchmark::DoNotOptimize(r);
  }
  state.counters["width"] = stats.width;
  // table_entries = candidate bag assignments enumerated (the |B|^{w+1}
  // odometer); table_rows = deduplicated rows the hash index actually kept.
  state.counters["table_entries"] = static_cast<double>(stats.table_entries);
  state.counters["table_rows"] = static_cast<double>(stats.table_rows);
  state.counters["hom"] = hom ? 1 : 0;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreewidthDpIndexed_SourceSweep)
    ->RangeMultiplier(4)->Range(128, 2048)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oAuto);

void BM_TreewidthDpIndexed_TargetSweep(benchmark::State& state) {
  Instance inst =
      MakeInstance(96, 2, static_cast<size_t>(state.range(0)), 999);
  TreewidthSolveStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveBoundedTreewidth(inst.a, inst.b, &stats));
  }
  state.counters["width"] = stats.width;
  state.counters["table_entries"] = static_cast<double>(stats.table_entries);
  state.counters["table_rows"] = static_cast<double>(stats.table_rows);
}
BENCHMARK(BM_TreewidthDpIndexed_TargetSweep)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

// Thread sweep over the level-scheduled DP (decomposition reused across
// iterations via SolveViaTreeDecomposition would hide the bag-assignment
// phase, so this keeps the full SolveBoundedTreewidth cost like the other
// Indexed series). On a single-core host the 2/4/8 arms bound the
// level-barrier and pool-dispatch overhead, not speedup.
void BM_TreewidthDpIndexed_ThreadSweep(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  Instance inst = MakeInstance(512, 2, 8, 4242);
  TreewidthSolveStats stats;
  bool hom = false;
  for (auto _ : state) {
    auto r = SolveBoundedTreewidth(inst.a, inst.b, &stats,
                                   /*governor=*/nullptr, threads);
    hom = r.ok() && r->has_value();
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = threads;
  state.counters["table_entries"] = static_cast<double>(stats.table_entries);
  state.counters["morsels"] = static_cast<double>(stats.morsels);
  state.counters["steals"] = static_cast<double>(stats.steals);
  state.counters["hom"] = hom ? 1 : 0;
}
BENCHMARK(BM_TreewidthDpIndexed_ThreadSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_Decomposition_MinFill(benchmark::State& state) {
  Rng rng(55);
  Graph g = RandomPartialKTree(static_cast<size_t>(state.range(0)), 3, 0.8,
                               rng);
  int width = 0;
  for (auto _ : state) {
    auto td = DecompositionFromEliminationOrder(g, MinFillOrder(g));
    width = td.Width();
    benchmark::DoNotOptimize(td);
  }
  state.counters["width"] = width;
}
BENCHMARK(BM_Decomposition_MinFill)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
