// Serving-layer benchmarks (recorded in BENCH_serving.json by
// bench/run_bench.sh): the ServingEngine's caches and admission under
// YCSB-style traffic — a small pool of repeated queries over a few slowly
// changing databases, with controllable skew (uniform / zipfian 0.5 and
// 0.99 / self-similar) and read vs update mix.
//
// Each benchmark iteration is ONE workload op, timed individually, so the
// counters can report real latency percentiles (p50/p95/p99) next to the
// throughput — google-benchmark's built-in aggregate is a mean, which hides
// exactly the tail the admission policy exists to protect.
//
// Arms (Arg 0 = cache mode, Arg 1 = distribution):
//   cache mode    0 = caches disabled, 1 = plan cache only, 2 = plan +
//                 result caches (the production configuration)
//   distribution  0 = uniform, 1 = zipfian theta 0.5, 2 = zipfian theta
//                 0.99 (the YCSB default), 3 = self-similar 80/20
//
// The headline claims live in the zipfian-0.99 read-heavy series: the
// plan-only arm's plan_hit_rate counter (>= 0.90 after warmup — the result
// cache is off, so every request consults the plan cache) and the full-cache
// arm's ops_per_sec against the disabled arm (>= 5x).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "cq/query.h"
#include "gen/generators.h"
#include "serve/serving.h"
#include "serve/workload.h"

namespace cqcs {
namespace {

constexpr uint32_t kQueryPool = 16;
constexpr uint32_t kDbPool = 4;
constexpr size_t kDbUniverse = 48;
constexpr double kDbEdgeProb = 0.15;

// Distinct chain/star queries: the pool the plan cache amortizes over.
std::vector<std::string> MakeQueryPool(const VocabularyPtr& vocab,
                                       uint32_t n) {
  std::vector<std::string> pool;
  pool.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ConjunctiveQuery q = (i % 2 == 0) ? ChainQuery(vocab, 2 + i / 2)
                                      : StarQuery(vocab, 2 + i / 2);
    pool.push_back(ToString(q));
  }
  return pool;
}

Structure MakeDb(const VocabularyPtr& vocab, uint32_t index,
                 uint64_t version) {
  // Version enters the seed: an update genuinely changes the content, so a
  // stale cached answer would be observably wrong.
  Rng rng(0xdb0 + index * 1315423911ull + version * 2654435761ull);
  return RandomGraphStructure(vocab, kDbUniverse, kDbEdgeProb, rng,
                              /*symmetric=*/true);
}

std::string DbName(uint32_t index) { return "db" + std::to_string(index); }

// fsync_mode: -1 = no durability (in-memory registry only), otherwise a
// serve::FsyncPolicy for a WAL-backed engine over a scratch data dir.
void RunServingMix(benchmark::State& state, double update_fraction,
                   int cache_mode, int dist_code, int fsync_mode = -1) {
  serve::Distribution dist = serve::Distribution::kUniform;
  double param = 0.0;
  switch (dist_code) {
    case 0: dist = serve::Distribution::kUniform; break;
    case 1: dist = serve::Distribution::kZipfian; param = 0.5; break;
    case 2: dist = serve::Distribution::kZipfian; param = 0.99; break;
    case 3: dist = serve::Distribution::kSelfSimilar; param = 0.2; break;
  }

  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.plan_cache_entries = cache_mode >= 1 ? 512 : 0;
  options.result_cache_entries = cache_mode >= 2 ? 4096 : 0;
  std::filesystem::path data_dir;
  if (fsync_mode >= 0) {
    data_dir = std::filesystem::temp_directory_path() /
               ("cqcs_bench_durable_" + std::to_string(::getpid()) + "_" +
                std::to_string(state.range(0)));
    std::filesystem::remove_all(data_dir);
    options.durability.data_dir = data_dir.string();
    options.durability.fsync = static_cast<serve::FsyncPolicy>(fsync_mode);
    // High threshold: the series measures per-record WAL cost, not
    // snapshot cost (snapshots are amortized and policy-independent).
    options.durability.snapshot_every_records = 1 << 20;
  }
  serve::ServingEngine engine(options);
  if (fsync_mode >= 0 && !engine.Open().ok()) {
    state.SkipWithError("durable engine failed to open its data dir");
    return;
  }
  const std::vector<std::string> queries = MakeQueryPool(vocab, kQueryPool);
  std::vector<uint64_t> versions(kDbPool, 0);
  for (uint32_t i = 0; i < kDbPool; ++i) {
    // A silently failed upsert would make the bench serve NotFound errors
    // and measure the error path instead of the workload.
    if (!engine.UpsertDatabase(DbName(i), MakeDb(vocab, i, 0)).ok()) {
      state.SkipWithError("database registration failed during setup");
      return;
    }
  }

  serve::WorkloadSpec spec;
  spec.num_queries = kQueryPool;
  spec.num_databases = kDbPool;
  spec.query_dist = dist;
  spec.query_skew = param;
  spec.update_fraction = update_fraction;
  serve::Workload workload(spec);

  std::vector<double> lat_us;
  lat_us.reserve(1 << 16);
  for (auto _ : state) {
    const serve::Op op = workload.Next();
    const auto start = std::chrono::steady_clock::now();
    if (op.type == serve::OpType::kUpdate) {
      // A refused update (e.g. the durable engine went DEGRADED mid-run)
      // would quietly turn the update-heavy mix into a read-only one.
      Status update = engine.UpsertDatabase(
          DbName(op.database),
          MakeDb(vocab, op.database, ++versions[op.database]));
      if (!update.ok()) {
        state.SkipWithError(("update refused mid-run: " + update.ToString())
                                .c_str());
        break;
      }
    } else {
      serve::ServeRequest request;
      request.query = queries[op.query];
      request.database = DbName(op.database);
      request.task = HomTask::kDecide;
      auto result = engine.Serve(request);
      benchmark::DoNotOptimize(result);
    }
    const auto stop = std::chrono::steady_clock::now();
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }

  std::sort(lat_us.begin(), lat_us.end());
  auto pct = [&](double p) {
    if (lat_us.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(p * (lat_us.size() - 1));
    return lat_us[idx];
  };
  const double total_us =
      std::accumulate(lat_us.begin(), lat_us.end(), 0.0);
  const serve::ServeStats stats = engine.stats();
  state.counters["p50_us"] = pct(0.50);
  state.counters["p95_us"] = pct(0.95);
  state.counters["p99_us"] = pct(0.99);
  state.counters["ops_per_sec"] =
      total_us > 0 ? static_cast<double>(lat_us.size()) / (total_us * 1e-6)
                   : 0.0;
  state.counters["plan_hit_rate"] = stats.PlanHitRate();
  state.counters["result_hit_rate"] = stats.ResultHitRate();
  state.counters["updates"] = static_cast<double>(stats.updates);
  state.counters["invalidated"] =
      static_cast<double>(stats.invalidated_entries);
  if (fsync_mode >= 0) {
    state.counters["wal_appends"] = static_cast<double>(stats.wal_appends);
    state.counters["snapshots"] = static_cast<double>(stats.snapshots);
    std::filesystem::remove_all(data_dir);
  }
}

void BM_ServingReadHeavy(benchmark::State& state) {
  RunServingMix(state, /*update_fraction=*/0.0,
                static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
}
// Cache-mode sweep at zipfian 0.99 (the headline series), then the
// distribution sweep at the full-cache configuration.
BENCHMARK(BM_ServingReadHeavy)
    ->Args({0, 2})->Args({1, 2})->Args({2, 2})
    ->Args({2, 0})->Args({2, 1})->Args({2, 3})
    ->Unit(benchmark::kMicrosecond);

void BM_ServingUpdateHeavy(benchmark::State& state) {
  RunServingMix(state, /*update_fraction=*/0.3,
                static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
}
// Updates regenerate the database (new version), so every third op pays
// generation + registration + the invalidation sweep; the result-cache hit
// rate shows what skewed reads still salvage between updates.
BENCHMARK(BM_ServingUpdateHeavy)
    ->Args({0, 2})->Args({2, 2})
    ->Unit(benchmark::kMicrosecond);

void BM_ServingDurableUpdateHeavy(benchmark::State& state) {
  // Arg 0 = fsync policy: 0 = always (sync per WAL record), 1 = interval
  // (100ms group sync), 2 = never (OS page cache only). Full caches,
  // zipfian 0.99 — the durable delta rides on the same mix as the
  // in-memory update-heavy arm, so (always - never) is the headline
  // per-update fsync cost and (BM_ServingUpdateHeavy/2/2 - never) the WAL
  // encoding overhead.
  RunServingMix(state, /*update_fraction=*/0.3, /*cache_mode=*/2,
                /*dist_code=*/2, /*fsync_mode=*/static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ServingDurableUpdateHeavy)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
