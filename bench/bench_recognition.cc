// E1 (Theorem 3.1): recognizing Schaefer's class SC is polynomial-time.
// Series: classification time for closure-generated Boolean relations as
// the relation grows (tuples) and widens (arity). The claim reproduced:
// time grows polynomially (quadratic-to-cubic in |R|, from the pairwise and
// triple closure criteria), never exponentially.

#include <benchmark/benchmark.h>

#include "gen/generators.h"

namespace cqcs {
namespace {

void BM_ClassifyClosedRelation(benchmark::State& state) {
  const auto op = static_cast<ClosureOp>(state.range(0));
  const uint32_t arity = static_cast<uint32_t>(state.range(1));
  Rng rng(1234 + arity);
  BooleanRelation r(arity);
  for (int i = 0; i < 6; ++i) r.Add(rng.Next() & r.FullMask());
  CloseUnder(r, op);
  SchaeferClassSet classes = 0;
  for (auto _ : state) {
    classes = r.Classify();
    benchmark::DoNotOptimize(classes);
  }
  state.counters["tuples"] = static_cast<double>(r.size());
  state.counters["classes"] = static_cast<double>(classes);
}

BENCHMARK(BM_ClassifyClosedRelation)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 6, 8, 10, 12}})
    ->Unit(benchmark::kMicrosecond);

void BM_ClassifyStructure(benchmark::State& state) {
  // A Boolean structure with several relations; classification intersects.
  const uint32_t arity = static_cast<uint32_t>(state.range(0));
  Rng rng(99);
  auto vocab = std::make_shared<Vocabulary>();
  for (int i = 0; i < 4; ++i) {
    vocab->AddRelation("R" + std::to_string(i), arity);
  }
  Structure b(vocab, 2);
  for (RelId id = 0; id < 4; ++id) {
    BooleanRelation r(arity);
    for (int i = 0; i < 5; ++i) r.Add(rng.Next() & r.FullMask());
    CloseUnder(r, ClosureOp::kAnd);
    Relation packed = r.ToRelation();
    for (uint32_t t = 0; t < packed.tuple_count(); ++t) {
      b.AddTuple(id, packed.tuple(t));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifyBooleanStructure(b));
  }
  state.counters["size"] = static_cast<double>(b.Size());
}

BENCHMARK(BM_ClassifyStructure)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
