// Relational-kernel micro-benchmarks (recorded in BENCH_solver.json by
// bench/run_bench.sh): the batched two-pass probe (rel::ProbeBatch — hash a
// strip of keys, prefetch every bucket line, then resolve) against the
// probe-at-a-time baseline on the same index. The batch wins by overlapping
// the bucket-array cache misses across the strip, so it is a *single-thread*
// optimization: the series must show it no slower — target faster — than
// FindFirst even at one thread, independent of the morsel machinery.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "rel/hash_index.h"
#include "rel/table.h"

namespace cqcs::rel {
namespace {

constexpr uint32_t kKeyWidth = 2;

/// A build-side table of `rows` random 2-column keys (domain sized for
/// ~50% probe hit rate) with its hash index, plus `probes` probe keys.
struct Fixture {
  Table build;
  HashIndex index;
  Table probe;
  Fixture(size_t rows, size_t probes)
      : build(kKeyWidth), probe(kKeyWidth) {
    Rng rng(0xC0FFEE);
    // Per-column domain ~sqrt(2*rows): the 2-column key space is then
    // ~2*rows, so a random probe hits a built key about half the time.
    Element domain = 2;
    while (static_cast<size_t>(domain) * domain < 2 * rows) ++domain;
    std::vector<Element> key(kKeyWidth);
    for (size_t r = 0; r < rows; ++r) {
      for (Element& e : key) e = static_cast<Element>(rng.Below(domain));
      build.AppendRow(key);
    }
    index.Build(build.data(), kKeyWidth,
                static_cast<uint32_t>(build.row_count()), {0, 1});
    for (size_t r = 0; r < probes; ++r) {
      for (Element& e : key) e = static_cast<Element>(rng.Below(domain));
      probe.AppendRow(key);
    }
  }
};

void BM_ProbeBatch_OneAtATime(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1 << 16);
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    for (uint32_t r = 0; r < f.probe.row_count(); ++r) {
      if (f.index.FindFirst(f.build.data(), f.probe.row(r)) !=
          HashIndex::kNone) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["probes"] = static_cast<double>(f.probe.row_count());
}

void BM_ProbeBatch_Batched(benchmark::State& state) {
  Fixture f(static_cast<size_t>(state.range(0)), 1 << 16);
  ProbeBatch batch;
  batch.Reset(kKeyWidth);
  size_t hits = 0;
  for (auto _ : state) {
    hits = 0;
    batch.Clear();
    auto flush = [&] {
      f.index.FindFirstBatch(f.build.data(), &batch);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (batch.result(i) != HashIndex::kNone) ++hits;
      }
      batch.Clear();
    };
    for (uint32_t r = 0; r < f.probe.row_count(); ++r) {
      std::span<const Element> row = f.probe.row(r);
      Element* key = batch.Append(r);
      for (uint32_t c = 0; c < kKeyWidth; ++c) key[c] = row[c];
      if (batch.full()) flush();
    }
    flush();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["probes"] = static_cast<double>(f.probe.row_count());
}

// Sweep the build side from cache-resident to DRAM-resident: the batched
// win grows with the miss rate, the small sizes guard against regression
// where everything is already in L2.
BENCHMARK(BM_ProbeBatch_OneAtATime)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ProbeBatch_Batched)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs::rel
