// E8 (Theorems 4.7(2)/4.8, Remark 4.10): the canonical k-Datalog program
// ρ_B decides the Spoiler's win, agreeing with the game solver; for Horn
// targets the game decides CSP exactly. Series: semi-naive evaluation of
// ρ_B and the section 4.1 non-2-colorability program as the input grows.

#include <benchmark/benchmark.h>

#include "datalog/builtin_programs.h"
#include "datalog/evaluator.h"
#include "datalog/rho_b.h"
#include "gen/generators.h"
#include "pebble/game.h"

namespace cqcs {
namespace {

void BM_Non2ColProgram(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DatalogProgram program = BuildNon2ColorabilityProgram();
  Structure cycle =
      UndirectedCycleStructure(program.edb_vocabulary(), n | 1);  // odd
  bool derived = false;
  size_t facts = 0;
  for (auto _ : state) {
    auto result = EvaluateDatalog(program, cycle);
    derived = !result->idb_relations[program.goal()].empty();
    facts = result->derived_tuples;
    benchmark::DoNotOptimize(result);
  }
  state.counters["odd_cycle_found"] = derived ? 1 : 0;
  state.counters["derived_facts"] = static_cast<double>(facts);
}
BENCHMARK(BM_Non2ColProgram)
    ->Arg(9)->Arg(17)->Arg(33)->Arg(65)
    ->Unit(benchmark::kMillisecond);

void BM_RhoB_Evaluation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  Structure k2 = CliqueStructure(vocab, 2);
  auto rho = BuildSpoilerWinProgram(k2, 2);
  Structure cycle = UndirectedCycleStructure(vocab, n);
  bool spoiler = false;
  for (auto _ : state) {
    auto result = EvaluateDatalog(*rho, cycle);
    spoiler = !result->idb_relations[rho->goal()].empty();
    benchmark::DoNotOptimize(result);
  }
  state.counters["spoiler_wins"] = spoiler ? 1 : 0;
}
BENCHMARK(BM_RhoB_Evaluation)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_RhoB_VsGameAudit(benchmark::State& state) {
  // Agreement audit between the two Theorem 4.7 implementations.
  auto vocab = MakeGraphVocabulary();
  size_t agreements = 0, instances = 0;
  for (auto _ : state) {
    agreements = instances = 0;
    Rng rng(4242);
    for (int trial = 0; trial < 10; ++trial) {
      Structure b = RandomGraphStructure(vocab, 2, 0.5, rng, false);
      Structure a = RandomGraphStructure(vocab, 3 + rng.Below(3), 0.4, rng,
                                         false);
      auto rho = BuildSpoilerWinProgram(b, 2);
      auto datalog_says = GoalDerivable(*rho, a);
      auto game_says = SpoilerWinsExistentialKPebble(a, b, 2);
      ++instances;
      if (datalog_says.ok() && game_says.ok() &&
          *datalog_says == *game_says) {
        ++agreements;
      }
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_RhoB_VsGameAudit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
