// E5 (Proposition 3.6): two-atom conjunctive-query containment in
// polynomial time via Booleanization + bijunctivity, versus the generic
// NP containment test. Series: both decision procedures as the queries
// grow; the counter audits agreement.

#include <benchmark/benchmark.h>

#include "cq/containment.h"
#include "gen/generators.h"
#include "schaefer/saraiya.h"

namespace cqcs {
namespace {

VocabularyPtr WideVocab(size_t relations) {
  auto vocab = std::make_shared<Vocabulary>();
  for (size_t i = 0; i < relations; ++i) {
    vocab->AddRelation("E" + std::to_string(i), 2);
  }
  return vocab;
}

struct QueryPair {
  ConjunctiveQuery q1;
  ConjunctiveQuery q2;
};

QueryPair MakePair(size_t relations, uint64_t seed) {
  Rng rng(seed);
  auto vocab = WideVocab(relations);
  ConjunctiveQuery q1 = RandomTwoAtomQuery(vocab, 2 + relations, rng);
  ConjunctiveQuery q2 = RandomQuery(vocab, 2 + relations, 3 * relations, rng);
  return QueryPair{std::move(q1), std::move(q2)};
}

void BM_SaraiyaContainment(benchmark::State& state) {
  QueryPair pair = MakePair(static_cast<size_t>(state.range(0)), 5);
  bool answer = false;
  for (auto _ : state) {
    auto r = TwoAtomContainment(pair.q1, pair.q2);
    answer = r.ok() && *r;
    benchmark::DoNotOptimize(r);
  }
  state.counters["contained"] = answer ? 1 : 0;
  state.counters["q1_size"] = static_cast<double>(pair.q1.Size());
  state.counters["q2_size"] = static_cast<double>(pair.q2.Size());
}
BENCHMARK(BM_SaraiyaContainment)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_GenericContainment(benchmark::State& state) {
  QueryPair pair = MakePair(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto r = Contains(pair.q1, pair.q2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GenericContainment)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_SaraiyaAgreementAudit(benchmark::State& state) {
  size_t agreements = 0, instances = 0;
  for (auto _ : state) {
    agreements = instances = 0;
    for (uint64_t seed = 0; seed < 25; ++seed) {
      QueryPair pair = MakePair(3, 100 + seed);
      auto fast = TwoAtomContainment(pair.q1, pair.q2);
      auto slow = IsContained(pair.q1, pair.q2);
      ++instances;
      if (fast.ok() && slow.ok() && *fast == *slow) ++agreements;
    }
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["instances"] = static_cast<double>(instances);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_SaraiyaAgreementAudit)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cqcs
