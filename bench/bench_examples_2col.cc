// E6 (Examples 3.7 / 3.8): 2-colorability and CSP(C4) through the
// Booleanization pipeline, against the special-purpose BFS 2-coloring and
// the generic backtracking solver. The claim: the pipeline is a general
// polynomial method that reproduces the known tractable cases.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "schaefer/booleanize.h"
#include "schaefer/uniform.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

void BM_TwoColor_Bfs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  Structure cycle = UndirectedCycleStructure(vocab, n);
  Graph g = GaifmanGraph(cycle);
  for (auto _ : state) {
    std::vector<uint8_t> colors;
    benchmark::DoNotOptimize(g.TwoColor(&colors));
  }
}

void BM_TwoColor_SchaeferPipeline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  Structure cycle = UndirectedCycleStructure(vocab, n);
  Structure k2 = CliqueStructure(vocab, 2);
  bool colorable = false;
  for (auto _ : state) {
    auto boolean = Booleanize(cycle, k2);
    auto h = SolveSchaefer(boolean->a_b, boolean->b_b);
    colorable = h.ok() && h->has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["colorable"] = colorable ? 1 : 0;
}

void BM_TwoColor_Backtracking(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  Structure cycle = UndirectedCycleStructure(vocab, n);
  Structure k2 = CliqueStructure(vocab, 2);
  for (auto _ : state) {
    BacktrackingSolver solver(cycle, k2);
    benchmark::DoNotOptimize(solver.Solve());
  }
}

// Odd sizes: the unsatisfiable side (more interesting for solvers).
#define CYCLES ->Arg(65)->Arg(129)->Arg(257)->Arg(513)->Arg(1025)\
    ->Unit(benchmark::kMicrosecond)
BENCHMARK(BM_TwoColor_Bfs) CYCLES;
BENCHMARK(BM_TwoColor_SchaeferPipeline) CYCLES;
BENCHMARK(BM_TwoColor_Backtracking) CYCLES;
#undef CYCLES

void BM_CspC4_AffinePipeline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  Structure cn = DirectedCycleStructure(vocab, n);
  Structure c4 = DirectedCycleStructure(vocab, 4);
  bool maps = false;
  for (auto _ : state) {
    auto boolean = Booleanize(cn, c4);
    auto h = SolveSchaefer(boolean->a_b, boolean->b_b);
    maps = h.ok() && h->has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["hom"] = maps ? 1 : 0;  // 1 iff 4 | n
}
BENCHMARK(BM_CspC4_AffinePipeline)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(257)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
