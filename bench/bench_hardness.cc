// E11 (Section 2's negative discussion): nonuniform tractability does not
// uniformize. CSP(K, G) — "does G contain a k-clique?" — is NP-complete
// although each slice CSP(K_k, G) is constant-time; the uniform
// backtracking cost explodes in k while each fixed-k curve stays
// polynomial in |G|. Also general CQ containment (chain-in-random) as the
// NP-complete base problem the tractable fragments carve out of.

#include <benchmark/benchmark.h>

#include "cq/containment.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

void BM_CliqueIntoRandomGraph(benchmark::State& state) {
  // Spears the nonuniformity: fixed target size, growing clique. The target
  // is triangle-rich but k-clique-free for larger k, so the solver must
  // exhaust the search space.
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(31337);
  auto vocab = MakeGraphVocabulary();
  Structure clique = CliqueStructure(vocab, k);
  Structure g = RandomGraphStructure(vocab, 24, 0.5, rng, /*symmetric=*/true);
  SolveStats stats;
  bool found = false;
  for (auto _ : state) {
    BacktrackingSolver solver(clique, g);
    stats = SolveStats{};
    auto h = solver.Solve(&stats);
    found = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["clique_found"] = found ? 1 : 0;
}
BENCHMARK(BM_CliqueIntoRandomGraph)
    ->DenseRange(3, 9)
    ->Unit(benchmark::kMillisecond);

void BM_CliqueFixedK_GraphSweep(benchmark::State& state) {
  // The nonuniform slices: k fixed, |G| growing — polynomial curves.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(999);
  auto vocab = MakeGraphVocabulary();
  Structure clique = CliqueStructure(vocab, 4);
  Structure g = RandomGraphStructure(vocab, n, 0.3, rng, /*symmetric=*/true);
  for (auto _ : state) {
    BacktrackingSolver solver(clique, g);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_CliqueFixedK_GraphSweep)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oAuto);

void BM_ChainContainment(benchmark::State& state) {
  // Chain queries have treewidth 1; general containment handles them fast
  // even though the problem is NP-complete in general — the contrast that
  // motivates the width-based fragments (Section 5, [CR97]).
  const size_t len = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, len);
  ConjunctiveQuery longer = ChainQuery(vocab, len + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContained(chain, longer));
    benchmark::DoNotOptimize(IsContained(longer, chain));
  }
}
BENCHMARK(BM_ChainContainment)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_RandomContainment(benchmark::State& state) {
  // Random query pairs: the NP-complete general case at moderate sizes.
  const size_t vars = static_cast<size_t>(state.range(0));
  Rng rng(606 + vars);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = RandomQuery(vocab, vars, 2 * vars, rng);
  ConjunctiveQuery q2 = RandomQuery(vocab, vars, 2 * vars, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContained(q1, q2));
  }
}
BENCHMARK(BM_RandomContainment)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
