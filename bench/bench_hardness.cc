// E11 (Section 2's negative discussion): nonuniform tractability does not
// uniformize. CSP(K, G) — "does G contain a k-clique?" — is NP-complete
// although each slice CSP(K_k, G) is constant-time; the uniform
// backtracking cost explodes in k while each fixed-k curve stays
// polynomial in |G|. Also general CQ containment (chain-in-random) as the
// NP-complete base problem the tractable fragments carve out of.

#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "api/engine.h"
#include "cq/containment.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

void RunCliqueIntoRandomGraph(benchmark::State& state,
                              const SearchStrategy& strategy) {
  // Spears the nonuniformity: fixed target size, growing clique. The target
  // is triangle-rich but k-clique-free for larger k, so the solver must
  // exhaust the search space.
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(31337);
  auto vocab = MakeGraphVocabulary();
  Structure clique = CliqueStructure(vocab, k);
  Structure g = RandomGraphStructure(vocab, 24, 0.5, rng, /*symmetric=*/true);
  SolveOptions options;
  options.strategy = strategy;
  SolveStats stats;
  bool found = false;
  for (auto _ : state) {
    BacktrackingSolver solver(clique, g, options);
    stats = SolveStats{};
    auto h = solver.Solve(&stats);
    found = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["backjumps"] = static_cast<double>(stats.backjumps);
  state.counters["restarts"] = static_cast<double>(stats.restarts);
  state.counters["clique_found"] = found ? 1 : 0;
}

// PR 1 baseline: MRV, lexicographic values, chronological backtracking.
void BM_CliqueIntoRandomGraph(benchmark::State& state) {
  RunCliqueIntoRandomGraph(state, SearchStrategy{});
}
// The PR 2 strategy series: each adds one lever over the baseline so the
// BENCH_solver.json trajectory shows where the node reductions come from.
void BM_CliqueIntoRandomGraph_Cbj(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  RunCliqueIntoRandomGraph(state, strategy);
}
void BM_CliqueIntoRandomGraph_CbjDomWdeg(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  strategy.var_order = VarOrder::kDomWdeg;
  strategy.val_order = ValOrder::kLeastConstraining;
  RunCliqueIntoRandomGraph(state, strategy);
}
void BM_CliqueIntoRandomGraph_CbjDomWdegRestart(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  strategy.var_order = VarOrder::kDomWdeg;
  strategy.val_order = ValOrder::kLeastConstraining;
  strategy.restarts = true;
  RunCliqueIntoRandomGraph(state, strategy);
}
BENCHMARK(BM_CliqueIntoRandomGraph)
    ->DenseRange(3, 9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CliqueIntoRandomGraph_Cbj)
    ->DenseRange(3, 9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CliqueIntoRandomGraph_CbjDomWdeg)
    ->DenseRange(3, 9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CliqueIntoRandomGraph_CbjDomWdegRestart)
    ->DenseRange(3, 9)
    ->Unit(benchmark::kMillisecond);

// Work-stealing parallel scaling series (PR 3): the same refutation with
// 1/2/4/8 workers. UNSAT instances are the honest scaling measure — the
// whole tree must be exhausted whatever the decomposition, so speedup is
// pure tree-partitioning, with no first-solution racing luck. The
// `workers`/`splits`/`steals` counters land in BENCH_solver.json next to
// the nodes, and run_bench.sh records nproc alongside: on a single-core
// host this series measures the parallel machinery's overhead, not
// speedup, and the JSON context says which one you are looking at.
void RunCliqueRefutationParallel(benchmark::State& state) {
  const size_t k = 7;
  const unsigned threads = static_cast<unsigned>(state.range(0));
  Rng rng(31337);
  auto vocab = MakeGraphVocabulary();
  Structure clique = CliqueStructure(vocab, k);
  Structure g = RandomGraphStructure(vocab, 24, 0.5, rng, /*symmetric=*/true);
  SolveOptions options;
  options.num_threads = threads;
  SolveStats stats;
  bool found = false;
  for (auto _ : state) {
    BacktrackingSolver solver(clique, g, options);
    stats = SolveStats{};
    auto h = solver.Solve(&stats);
    found = h.has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["workers"] = static_cast<double>(stats.workers);
  state.counters["splits"] = static_cast<double>(stats.splits);
  state.counters["steals"] = static_cast<double>(stats.steals);
  state.counters["clique_found"] = found ? 1 : 0;
}
BENCHMARK(RunCliqueRefutationParallel)
    ->Name("BM_CliqueRefutationParallel")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Note on the refutation series above: A = K_k has a *complete* constraint
// graph, so every conflict set contains the current decision (CBJ provably
// never jumps) and the variables are fully symmetric (MRV and dom/wdeg
// coincide). The two series below break those symmetries so the strategy
// levers can act — the instances where CBJ + dom/wdeg + LCV earn their keep.

// G(n, p) with a k-clique planted on a random vertex subset: the k-clique
// query is satisfiable, and the planted vertices carry far more incident
// edges (= CSR supports) than the background, so least-constraining-value
// ordering walks straight to the witness while lexicographic values slog
// through the background graph. Aggregated over 10 seeds per iteration.
Structure PlantedCliqueGraph(const VocabularyPtr& vocab, size_t n, double p,
                             size_t k, Rng& rng) {
  Structure background = RandomGraphStructure(vocab, n, p, rng,
                                              /*symmetric=*/true);
  std::vector<Element> verts(n);
  for (size_t i = 0; i < n; ++i) verts[i] = static_cast<Element>(i);
  for (size_t i = 0; i < n; ++i) {
    std::swap(verts[i], verts[rng.Below(n)]);
  }
  // Background edges inside the planted subset are dropped before the
  // clique edges go in: duplicate tuples would double those edges' CSR
  // support counts and hand the LCV heuristic an artificial signal.
  std::vector<uint8_t> planted(n, 0);
  for (size_t i = 0; i < k; ++i) planted[verts[i]] = 1;
  Structure g(vocab, n);
  const Relation& e = background.relation(0);
  for (uint32_t t = 0; t < e.tuple_count(); ++t) {
    std::span<const Element> tup = e.tuple(t);
    if (planted[tup[0]] && planted[tup[1]]) continue;
    g.AddTuple(0, tup);
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      if (i != j) g.AddTuple(0, {verts[i], verts[j]});
    }
  }
  return g;
}

void RunPlantedCliqueRecovery(benchmark::State& state,
                              const SearchStrategy& strategy) {
  const size_t k = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  SolveOptions options;
  options.strategy = strategy;
  uint64_t nodes = 0;
  uint64_t found = 0;
  for (auto _ : state) {
    nodes = 0;
    found = 0;
    for (int seed = 0; seed < 10; ++seed) {
      Rng rng(31337 + seed);
      Structure clique = CliqueStructure(vocab, k);
      Structure g = PlantedCliqueGraph(vocab, 26, 0.5, 9, rng);
      BacktrackingSolver solver(clique, g, options);
      SolveStats stats;
      found += solver.Solve(&stats).has_value() ? 1 : 0;
      nodes += stats.nodes;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["cliques_found"] = static_cast<double>(found);
}
void BM_PlantedCliqueRecovery(benchmark::State& state) {
  RunPlantedCliqueRecovery(state, SearchStrategy{});
}
void BM_PlantedCliqueRecovery_CbjDomWdegLcv(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  strategy.var_order = VarOrder::kDomWdeg;
  strategy.val_order = ValOrder::kLeastConstraining;
  RunPlantedCliqueRecovery(state, strategy);
}
BENCHMARK(BM_PlantedCliqueRecovery)
    ->DenseRange(7, 9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlantedCliqueRecovery_CbjDomWdegLcv)
    ->DenseRange(7, 9)
    ->Unit(benchmark::kMillisecond);

// Satisfiable recovery with racing workers: whichever worker's subtree
// holds a planted clique wins. Super-linear speedups are possible (a
// stealer can start next to a witness the sequential order reaches late);
// so is zero speedup when the sequential heuristic walks straight there.
void RunPlantedCliqueParallel(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  SolveOptions options;
  options.num_threads = threads;
  uint64_t nodes = 0;
  uint64_t found = 0;
  for (auto _ : state) {
    nodes = 0;
    found = 0;
    for (int seed = 0; seed < 10; ++seed) {
      Rng rng(31337 + seed);
      Structure clique = CliqueStructure(vocab, 9);
      Structure g = PlantedCliqueGraph(vocab, 26, 0.5, 9, rng);
      BacktrackingSolver solver(clique, g, options);
      SolveStats stats;
      found += solver.Solve(&stats).has_value() ? 1 : 0;
      nodes += stats.nodes;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["cliques_found"] = static_cast<double>(found);
}
BENCHMARK(RunPlantedCliqueParallel)
    ->Name("BM_PlantedCliqueParallel")
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Sparse random patterns into small random targets under forward checking —
// the classic FC-CBJ regime: FC leaves stale prunings whose conflicts skip
// over intervening decisions, so backjumping collapses whole bands of the
// refutation tree that chronological backtracking re-proves per sibling.
// Aggregated over 10 seeds (mostly unsatisfiable at these densities).
void RunSparseRefutation(benchmark::State& state,
                         const SearchStrategy& strategy) {
  auto vocab = MakeGraphVocabulary();
  SolveOptions options;
  options.propagation = Propagation::kForwardChecking;
  options.strategy = strategy;
  uint64_t nodes = 0;
  uint64_t backjumps = 0;
  uint64_t sat = 0;
  for (auto _ : state) {
    nodes = 0;
    backjumps = 0;
    sat = 0;
    for (int seed = 0; seed < 10; ++seed) {
      Rng rng(9100 + seed);
      Structure a =
          RandomGraphStructure(vocab, 50, 0.1, rng, /*symmetric=*/true);
      Structure b =
          RandomGraphStructure(vocab, 11, 0.26, rng, /*symmetric=*/true);
      BacktrackingSolver solver(a, b, options);
      SolveStats stats;
      sat += solver.Solve(&stats).has_value() ? 1 : 0;
      nodes += stats.nodes;
      backjumps += stats.backjumps;
    }
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["backjumps"] = static_cast<double>(backjumps);
  state.counters["sat"] = static_cast<double>(sat);
}
void BM_SparseRefutationFc(benchmark::State& state) {
  RunSparseRefutation(state, SearchStrategy{});
}
void BM_SparseRefutationFc_Cbj(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  RunSparseRefutation(state, strategy);
}
void BM_SparseRefutationFc_CbjDomWdeg(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  strategy.var_order = VarOrder::kDomWdeg;
  RunSparseRefutation(state, strategy);
}
BENCHMARK(BM_SparseRefutationFc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseRefutationFc_Cbj)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SparseRefutationFc_CbjDomWdeg)->Unit(benchmark::kMillisecond);

// Front-door routing series (PR 4): the HomEngine's kAuto against the raw
// uniform solver, one benchmark per instance family, Arg(0) = engine-auto
// arm, Arg(1) = raw-uniform arm, Arg(2) = engine-auto with the resource
// governor armed on never-tripping budgets (60 s deadline + 1 GiB memory
// ceiling) — the 0-vs-2 delta is the pure governance overhead (poll
// strides + byte accounting) and must stay within noise (<= 2%). Each arm
// pays its full per-call cost
// (problem compilation + staged profile for auto, CspInstance build for
// uniform), so the deltas are honest end-to-end front-door numbers.
//
// Reading the series: on the Horn-target family the auto arm wins big and
// the gap grows with the source (the search must build + propagate the
// whole Boolean CSP; the Schaefer direct algorithm is a lean quadratic).
// On the acyclic family the source-size sweep shows the asymptotic
// separation directly: the hash-join Yannakakis backend stays near-linear
// in ‖A‖ while the MAC-based uniform solver — search-free on trees, but
// paying CSP compilation plus propagation over every (variable, value)
// pair — falls behind superlinearly (~2x at n=4096, ~10x at n=16384 on
// the dev box). The partial-k-tree family stays fixed-size: the DP's win
// there is table-factor-bounded, see BM_TreewidthDpIndexed_*. On the
// adversarial family routing correctly lands on the search and the auto
// arm's overhead is the profile cost — the series exists to keep it <= 5%.
void RunEngineAutoVsUniform(benchmark::State& state, const Structure& a,
                            const Structure& b) {
  const int arm = static_cast<int>(state.range(0));
  const bool use_auto = arm != 1;
  bool decided = false;
  int chosen = -1;
  for (auto _ : state) {
    if (use_auto) {
      auto problem = HomProblem::FromStructures(a, b);
      EngineOptions engine_options;
      if (arm == 2) {
        // Governed arm: budgets generous enough that no family here ever
        // trips, so the measurement is accounting cost, not degradation.
        engine_options.deadline_ms = 60'000;
        engine_options.memory_budget_bytes = size_t{1} << 30;
      }
      HomEngine engine(engine_options);
      auto r = engine.Run(*problem, HomTask::kDecide);
      decided = r.ok() && r->decided;
      chosen = r.ok() ? static_cast<int>(r->explain.chosen) : -1;
      benchmark::DoNotOptimize(r);
    } else {
      BacktrackingSolver solver(a, b);
      auto h = solver.Solve();
      decided = h.has_value();
      chosen = static_cast<int>(Backend::kUniform);
      benchmark::DoNotOptimize(h);
    }
  }
  state.counters["auto_arm"] = use_auto ? 1 : 0;
  state.counters["governed"] = arm == 2 ? 1 : 0;
  state.counters["backend"] = chosen;  // Backend enum value
  state.counters["decided"] = decided ? 1 : 0;
}

void BM_EngineAutoVsUniform_Acyclic(benchmark::State& state) {
  // Random tree source: GYO reduces it, so kAuto takes Yannakakis. The
  // source-size sweep (Arg 1) is the asymptotic-separation series: with the
  // hash-join kernel under the acyclic backend the auto arm's advantage
  // must GROW with n — the semijoin program is near-linear in ‖A‖ while
  // the uniform arm pays CSP compilation + MAC propagation over every
  // (variable, value) pair.
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1201);
  auto vocab = MakeGraphVocabulary();
  Structure a = StructureFromGraph(vocab, RandomTree(n, rng));
  Structure b = RandomGraphStructure(vocab, 14, 0.25, rng, /*symmetric=*/true);
  RunEngineAutoVsUniform(state, a, b);
}

void BM_EngineAutoVsUniform_PartialKTree(benchmark::State& state) {
  // Partial 2-tree source: cyclic but width-bounded, so kAuto takes the
  // treewidth DP (Theorem 5.4).
  Rng rng(1202);
  auto vocab = MakeGraphVocabulary();
  Structure a =
      StructureFromGraph(vocab, RandomPartialKTree(28, 2, 0.85, rng));
  Structure b = RandomGraphStructure(vocab, 9, 0.35, rng, /*symmetric=*/true);
  RunEngineAutoVsUniform(state, a, b);
}

void BM_EngineAutoVsUniform_HornTarget(benchmark::State& state) {
  // AND-closed Boolean target: kAuto takes the Schaefer route
  // (Theorem 3.3/3.4) while the uniform arm builds and searches the whole
  // Boolean CSP. The source-size sweep shows the gap growing: the direct
  // Horn algorithm skips constraint extraction, support indexing, and the
  // per-element search nodes entirely (~90x at n=2000 on the dev box).
  const size_t n = static_cast<size_t>(state.range(1));
  Rng rng(1203);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  Structure b = RandomClosedBooleanStructure(vocab, 3, ClosureOp::kAnd, 5, rng);
  Structure a = RandomStructure(vocab, n, 2 * n, rng);
  RunEngineAutoVsUniform(state, a, b);
}

void BM_EngineAutoVsUniform_Adversarial(benchmark::State& state) {
  // The clique refutation: every island refuses (cyclic, wide, non-Boolean
  // target), kAuto must land on the search — this series bounds the
  // front-door overhead on instances with nothing to win.
  const size_t k = static_cast<size_t>(state.range(1));
  Rng rng(31337);
  auto vocab = MakeGraphVocabulary();
  Structure clique = CliqueStructure(vocab, k);
  Structure g = RandomGraphStructure(vocab, 24, 0.5, rng, /*symmetric=*/true);
  RunEngineAutoVsUniform(state, clique, g);
}

BENCHMARK(BM_EngineAutoVsUniform_Acyclic)
    ->Args({0, 48})->Args({1, 48})->Args({2, 48})
    ->Args({0, 512})->Args({1, 512})->Args({2, 512})
    ->Args({0, 4096})->Args({1, 4096})->Args({2, 4096})
    ->Args({0, 16384})->Args({1, 16384})->Args({2, 16384})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAutoVsUniform_PartialKTree)
    ->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAutoVsUniform_HornTarget)
    ->Args({0, 200})->Args({1, 200})->Args({2, 200})
    ->Args({0, 2000})->Args({1, 2000})->Args({2, 2000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineAutoVsUniform_Adversarial)
    ->Args({0, 6})->Args({1, 6})->Args({2, 6})
    ->Args({0, 7})->Args({1, 7})->Args({2, 7})
    ->Unit(benchmark::kMillisecond);

void BM_CliqueFixedK_GraphSweep(benchmark::State& state) {
  // The nonuniform slices: k fixed, |G| growing — polynomial curves.
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(999);
  auto vocab = MakeGraphVocabulary();
  Structure clique = CliqueStructure(vocab, 4);
  Structure g = RandomGraphStructure(vocab, n, 0.3, rng, /*symmetric=*/true);
  for (auto _ : state) {
    BacktrackingSolver solver(clique, g);
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_CliqueFixedK_GraphSweep)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oAuto);

void BM_ChainContainment(benchmark::State& state) {
  // Chain queries have treewidth 1; general containment handles them fast
  // even though the problem is NP-complete in general — the contrast that
  // motivates the width-based fragments (Section 5, [CR97]).
  const size_t len = static_cast<size_t>(state.range(0));
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, len);
  ConjunctiveQuery longer = ChainQuery(vocab, len + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContained(chain, longer));
    benchmark::DoNotOptimize(IsContained(longer, chain));
  }
}
BENCHMARK(BM_ChainContainment)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_RandomContainment(benchmark::State& state) {
  // Random query pairs: the NP-complete general case at moderate sizes.
  const size_t vars = static_cast<size_t>(state.range(0));
  Rng rng(606 + vars);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = RandomQuery(vocab, vars, 2 * vars, rng);
  ConjunctiveQuery q2 = RandomQuery(vocab, vars, 2 * vars, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContained(q1, q2));
  }
}
BENCHMARK(BM_RandomContainment)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
