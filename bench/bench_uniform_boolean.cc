// E3 (Theorems 3.3 vs 3.4): the two uniform algorithms for Schaefer
// targets. The paper's claim: the formula-building route costs an extra
// factor (|δ_R| = O(k²) makes it cubic overall) while the direct algorithms
// run in O(‖A‖·‖B‖); both beat generic backtracking and never blow up.
//
// Series (a): ‖A‖ sweep at fixed small arity — both routes scale near-
// linearly in ‖A‖, backtracking is the baseline.
// Series (b): arity sweep with |R| fixed — the bijunctive formula route
// pays the k² clauses per grounded tuple, the direct route pays k·|R|.

#include <benchmark/benchmark.h>

#include "gen/generators.h"
#include "schaefer/direct.h"
#include "schaefer/uniform.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

struct Instance {
  Structure a;
  Structure b;
};

Instance MakeInstance(uint32_t arity, ClosureOp op, size_t n, size_t tuples,
                      uint64_t seed) {
  Rng rng(seed);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", arity);
  // Force position 0 to 1 and position 1 to 0 in every tuple: the closure
  // under any of the four operations preserves both, so the target is never
  // 0-valid or 1-valid — otherwise the dispatcher would answer with the
  // constant map and the benchmark would measure nothing (Theorem 3.3's
  // trivial-case shortcut).
  BooleanRelation r(arity);
  const uint64_t keep = r.FullMask() & ~0b10ULL;
  for (int i = 0; i < 4; ++i) r.Add((rng.Next() | 1ULL) & keep);
  CloseUnder(r, op);
  Structure b(vocab, 2);
  Relation packed = r.ToRelation();
  for (uint32_t t = 0; t < packed.tuple_count(); ++t) {
    b.AddTuple(0, packed.tuple(t));
  }
  Structure a = RandomStructure(vocab, n, tuples, rng);
  return Instance{std::move(a), std::move(b)};
}

void RunSchaefer(benchmark::State& state, ClosureOp op,
                 SchaeferAlgorithm algorithm) {
  const size_t n = static_cast<size_t>(state.range(0));
  Instance inst = MakeInstance(3, op, n, 4 * n, 42);
  bool found = false;
  for (auto _ : state) {
    auto h = SolveSchaefer(inst.a, inst.b, algorithm);
    found = h.ok() && h->has_value();
    benchmark::DoNotOptimize(h);
  }
  state.counters["size_a"] = static_cast<double>(inst.a.Size());
  state.counters["size_b"] = static_cast<double>(inst.b.Size());
  state.counters["hom"] = found ? 1 : 0;
  state.SetComplexityN(static_cast<int64_t>(inst.a.Size()));
}

void BM_Horn_Formula(benchmark::State& state) {
  RunSchaefer(state, ClosureOp::kAnd, SchaeferAlgorithm::kFormula);
}
void BM_Horn_Direct(benchmark::State& state) {
  RunSchaefer(state, ClosureOp::kAnd, SchaeferAlgorithm::kDirect);
}
void BM_Bijunctive_Formula(benchmark::State& state) {
  RunSchaefer(state, ClosureOp::kMajority, SchaeferAlgorithm::kFormula);
}
void BM_Bijunctive_Direct(benchmark::State& state) {
  RunSchaefer(state, ClosureOp::kMajority, SchaeferAlgorithm::kDirect);
}
void BM_Affine_Equations(benchmark::State& state) {
  RunSchaefer(state, ClosureOp::kXorTriples, SchaeferAlgorithm::kDirect);
}
void BM_Horn_Backtracking(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Instance inst = MakeInstance(3, ClosureOp::kAnd, n, 4 * n, 42);
  SolveStats stats;
  for (auto _ : state) {
    BacktrackingSolver solver(inst.a, inst.b);
    stats = SolveStats{};
    benchmark::DoNotOptimize(solver.Solve(&stats));
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.SetComplexityN(static_cast<int64_t>(inst.a.Size()));
}

// Pure search throughput: one solver reused across iterations (instance
// construction amortized away), an underconstrained 3-ary Boolean target so
// CountSolutions walks a large tree. The ns/node counter is the solver
// core's hot-path cost — the number the trail/support-index architecture
// targets.
void RunNodeThroughput(benchmark::State& state,
                       const SearchStrategy& strategy) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2718);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  Structure b(vocab, 2);
  // Odd parity: 4 of 8 triples — satisfiable everywhere, dense enough to
  // propagate, loose enough that the count explodes past any n.
  for (Element x = 0; x < 2; ++x) {
    for (Element y = 0; y < 2; ++y) {
      b.AddTuple(0, {x, y, static_cast<Element>(1 ^ x ^ y)});
    }
  }
  Structure a = RandomStructure(vocab, n, n / 2, rng);
  SolveOptions options;
  options.strategy = strategy;
  BacktrackingSolver solver(a, b, options);
  SolveStats stats;
  uint64_t total_nodes = 0;
  size_t count = 0;
  for (auto _ : state) {
    stats = SolveStats{};
    count = solver.CountSolutions(/*limit=*/100000, &stats);
    total_nodes += stats.nodes;
    benchmark::DoNotOptimize(count);
  }
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["solutions"] = static_cast<double>(count);
  // kIsRate|kInvert yields seconds per counter unit; scaling the node count
  // by 1e-9 makes the reported value (and the JSON field) nanoseconds/node.
  state.counters["ns_per_node"] = benchmark::Counter(
      static_cast<double>(total_nodes) * 1e-9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
void BM_Backtracking_NodeThroughput(benchmark::State& state) {
  RunNodeThroughput(state, SearchStrategy{});
}
// Same tree walked with conflict tracking on: the delta against the series
// above is CBJ's per-node bookkeeping cost (the acceptance bar is "no
// ns/node regression" for the default path, bounded overhead here).
void BM_Backtracking_NodeThroughput_Cbj(benchmark::State& state) {
  SearchStrategy strategy;
  strategy.backjumping = true;
  RunNodeThroughput(state, strategy);
}
BENCHMARK(BM_Backtracking_NodeThroughput)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();
BENCHMARK(BM_Backtracking_NodeThroughput_Cbj)
    ->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime();

#define SIZE_SWEEP \
  RangeMultiplier(2)->Range(32, 2048)->Unit(benchmark::kMicrosecond)->Complexity()
BENCHMARK(BM_Horn_Formula)->SIZE_SWEEP;
BENCHMARK(BM_Horn_Direct)->SIZE_SWEEP;
BENCHMARK(BM_Bijunctive_Formula)->SIZE_SWEEP;
BENCHMARK(BM_Bijunctive_Direct)->SIZE_SWEEP;
BENCHMARK(BM_Affine_Equations)->SIZE_SWEEP;
BENCHMARK(BM_Horn_Backtracking)->SIZE_SWEEP;
#undef SIZE_SWEEP

// Series (b): arity sweep, cardinality-2 relations (always bijunctive).
void ArityInstance(uint32_t arity, size_t n, Instance* out) {
  Rng rng(1000 + arity);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", arity);
  BooleanRelation r(arity);
  r.Add(rng.Next() & r.FullMask());
  r.Add(rng.Next() & r.FullMask());
  Structure b(vocab, 2);
  Relation packed = r.ToRelation();
  for (uint32_t t = 0; t < packed.tuple_count(); ++t) {
    b.AddTuple(0, packed.tuple(t));
  }
  Structure a = RandomStructure(vocab, n, 64, rng);
  *out = Instance{std::move(a), std::move(b)};
}

void BM_ArityFormula(benchmark::State& state) {
  Instance inst{Structure(MakeGraphVocabulary(), 0),
                Structure(MakeGraphVocabulary(), 0)};
  ArityInstance(static_cast<uint32_t>(state.range(0)), 64, &inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveSchaefer(inst.a, inst.b, SchaeferAlgorithm::kFormula));
  }
}
void BM_ArityDirect(benchmark::State& state) {
  Instance inst{Structure(MakeGraphVocabulary(), 0),
                Structure(MakeGraphVocabulary(), 0)};
  ArityInstance(static_cast<uint32_t>(state.range(0)), 64, &inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SolveSchaefer(inst.a, inst.b, SchaeferAlgorithm::kDirect));
  }
}
BENCHMARK(BM_ArityFormula)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ArityDirect)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqcs
