#!/usr/bin/env bash
# Regression net for the hom_tool exit-code contract (the header comment of
# examples/hom_tool.cpp):
#
#   0  "yes" / an answer was produced (incl. count=0, empty enumeration)
#   1  a definite "no" (decide/witness), or a usage problem (unknown
#      subcommand, unknown or malformed flag)
#   2  an error: unreadable file, parse failure, engine refusal (an
#      explicitly requested backend that cannot serve the instance or task)
#   3  a resource budget exhausted before an answer
#
# The matrix below runs every --task x --backend combination, ungoverned
# and governed (a never-tripping budget must not change any code), over
# four instances chosen to hit every semantic cell:
#
#   yes      acyclic source, non-Boolean target, homomorphism exists
#   no       CYCLIC source (acyclic backend must refuse with 2),
#            non-Boolean target, no homomorphism
#   boolyes  acyclic source, Boolean target, homomorphism exists
#   boolno   acyclic source, Boolean target, no homomorphism
#
# plus dedicated arms for budget exhaustion (3), bad flags (1), unreadable
# files (2), and usage (1).
#
# Usage: hom_tool_exit_codes.sh <path-to-hom_tool>

set -u

HOM_TOOL="${1:?usage: hom_tool_exit_codes.sh <path-to-hom_tool>}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# yes: directed path (acyclic) into a directed triangle.
printf 'universe 4\nE/2: 0 1, 1 2, 2 3\n' > "$tmp/path.struct"
printf 'universe 3\nE/2: 0 1, 1 2, 2 0\n' > "$tmp/tri.struct"
# boolyes: a Boolean edge into the full Boolean relation.
printf 'universe 2\nE/2: 0 1\n' > "$tmp/bsrc.struct"
printf 'universe 2\nE/2: 0 0, 0 1, 1 0, 1 1\n' > "$tmp/bfull.struct"
# boolno: a loop needs (x, x) in the target, which only has (0, 1).
printf 'universe 1\nE/2: 0 0\n' > "$tmp/bloop.struct"
printf 'universe 2\nE/2: 0 1\n' > "$tmp/bedge.struct"
# Budget-trip instance: a 6-edge path query against a 2000-node graph with
# 20k edges — the acyclic backend's governed tables blow a 1 MiB budget
# deterministically (the estimate is ~3 MiB).
printf 'universe 7\nE/2: 0 1, 1 2, 2 3, 3 4, 4 5, 5 6\n' > "$tmp/p6.struct"
awk 'BEGIN {
  printf "universe 2000\nE/2:"; sep = "";
  split("1 3 7 11 13 17 19 23 29 31", d, " ");
  for (i = 0; i < 2000; i++)
    for (k = 1; k <= 10; k++) {
      printf "%s %d %d", sep, i, (i + d[k]) % 2000; sep = ",";
    }
  printf "\n"
}' > "$tmp/big.struct"

fail=0
expect() {
  local desc="$1" want="$2"
  shift 2
  "$@" >/dev/null 2>&1
  local got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL [$desc]: expected exit $want, got $got: $*" >&2
    fail=1
  fi
}

# The contract cell for (task, backend, instance), mirroring the engine's
# documented refusals:
#   - acyclic refuses cyclic sources (2);
#   - schaefer refuses non-Boolean targets (2) and only decides/witnesses;
#   - treewidth only decides/witnesses;
#   - otherwise: decide/witness answer yes->0 / no->1; count/enumerate
#     always produce an answer (possibly 0 rows) -> 0.
expected_code() {
  local task="$1" backend="$2" inst="$3"
  local cyclic_source=0 boolean_target=0 answer_yes=0
  case "$inst" in
    yes)     answer_yes=1 ;;
    no)      cyclic_source=1 ;;
    boolyes) boolean_target=1; answer_yes=1 ;;
    boolno)  boolean_target=1 ;;
  esac
  if [[ "$backend" == acyclic && "$cyclic_source" == 1 ]]; then echo 2; return; fi
  if [[ "$backend" == schaefer && "$boolean_target" == 0 ]]; then echo 2; return; fi
  case "$task" in
    count|enumerate)
      if [[ "$backend" == schaefer || "$backend" == treewidth ]]; then
        echo 2
      else
        echo 0
      fi
      return ;;
  esac
  if [[ "$answer_yes" == 1 ]]; then echo 0; else echo 1; fi
}

declare -A sources=([yes]=path [no]=tri [boolyes]=bsrc [boolno]=bloop)
declare -A targets=([yes]=tri [no]=path [boolyes]=bfull [boolno]=bedge)

for task in decide witness count enumerate; do
  for backend in auto uniform acyclic schaefer treewidth; do
    for inst in yes no boolyes boolno; do
      want="$(expected_code "$task" "$backend" "$inst")"
      a="$tmp/${sources[$inst]}.struct"
      b="$tmp/${targets[$inst]}.struct"
      expect "$task/$backend/$inst" "$want" \
        "$HOM_TOOL" solve "$a" "$b" "--task=$task" "--backend=$backend"
      # A never-tripping budget must leave every code unchanged: governance
      # is observability, not semantics.
      expect "$task/$backend/$inst/governed" "$want" \
        "$HOM_TOOL" solve "$a" "$b" "--task=$task" "--backend=$backend" \
        --memory-budget-mb=512 --deadline-ms=60000
    done
  done
done

# Budget exhaustion: every task exits 3, governed or not by other flags.
for task in decide witness count enumerate; do
  expect "trip/$task" 3 "$HOM_TOOL" solve "$tmp/p6.struct" "$tmp/big.struct" \
    "--task=$task" --backend=acyclic --memory-budget-mb=1
done

# Usage problems -> 1.
expect "bad-flag" 1 "$HOM_TOOL" solve "$tmp/path.struct" "$tmp/tri.struct" --bogus
expect "bad-backend" 1 "$HOM_TOOL" solve "$tmp/path.struct" "$tmp/tri.struct" --backend=magic
expect "bad-task" 1 "$HOM_TOOL" solve "$tmp/path.struct" "$tmp/tri.struct" --task=dream
expect "unknown-subcommand" 1 "$HOM_TOOL" frobnicate
expect "serve-bad-flag" 1 "$HOM_TOOL" serve --max-inflight-mb=many

# Errors -> 2.
expect "missing-file" 2 "$HOM_TOOL" solve "$tmp/nope.struct" "$tmp/tri.struct"
expect "parse-error" 2 "$HOM_TOOL" contains "Q(X :- E(X." "Q(X) :- E(X, Y)."
expect "classify-non-boolean" 2 "$HOM_TOOL" classify "$tmp/tri.struct"

# Answers -> 0.
expect "contains" 0 "$HOM_TOOL" contains "Q(X) :- E(X, Y), E(Y, Z)." "Q(X) :- E(X, Y)."
expect "minimize" 0 "$HOM_TOOL" minimize "Q(X) :- E(X, Y), E(X, Z)."
expect "evaluate" 0 "$HOM_TOOL" evaluate "Q(X) :- E(X, Y)." "$tmp/tri.struct"
expect "classify-boolean" 0 "$HOM_TOOL" classify "$tmp/bfull.struct"

# Serve mode exits 0 on quit/EOF, including after per-request errors.
if ! printf 'db g universe 3; E/2: 0 1, 1 2, 2 0\nquery q Q() :- E(X, Y).\nrun decide q g\nrun decide q missing\nquit\n' \
    | "$HOM_TOOL" serve >/dev/null 2>&1; then
  echo "FAIL [serve-session]: expected exit 0" >&2
  fail=1
fi

# New serve flags reject malformed values with a usage error (1).
expect "serve-bad-fsync" 1 "$HOM_TOOL" serve --fsync=sometimes
expect "serve-bad-fsync-interval" 1 "$HOM_TOOL" serve --fsync-interval-ms=soon
expect "serve-bad-snapshot-every" 1 "$HOM_TOOL" serve --snapshot-every=often
expect "serve-bad-poison-strikes" 1 "$HOM_TOOL" serve --poison-strikes=-3

# ------------------------------------------------ serve protocol edge cases ---
# Degenerate input lines must each get a clean protocol error (or a clean
# parse of what was actually sent) and leave the session serving; none may
# crash, hang, or silently alter the line.

# An oversized (> 1 MiB) line is refused with a protocol error, and the
# session resynchronizes on the next line.
out="$( { printf 'db big universe 3; E/2:'
          awk 'BEGIN { for (i = 0; i < 220000; i++) printf " 0 1,"; print " 1 2" }'
          printf 'db ok universe 2; E/2: 0 1\nquit\n'; } \
        | "$HOM_TOOL" serve 2>/dev/null )"
code=$?
if [[ "$code" != 0 ]] \
    || ! grep -q '^error: protocol line exceeds' <<< "$out" \
    || ! grep -q '^ok db ok' <<< "$out"; then
  echo "FAIL [serve-oversized-line]: exit $code, out: $out" >&2
  fail=1
fi

# An embedded NUL byte cannot truncate the line into a different command;
# it is refused outright and the session continues.
out="$(printf 'db evil universe 2; E/2: 0 1\0trailing-garbage\ndb ok universe 2; E/2: 0 1\nquit\n' \
        | "$HOM_TOOL" serve 2>/dev/null)"
code=$?
if [[ "$code" != 0 ]] \
    || ! grep -q '^error: protocol line contains an embedded NUL' <<< "$out" \
    || ! grep -q '^ok db ok' <<< "$out"; then
  echo "FAIL [serve-embedded-nul]: exit $code, out: $out" >&2
  fail=1
fi

# CRLF line endings parse as if the \r were not there.
out="$(printf 'db w universe 2; E/2: 0 1\r\ndump w\r\nquit\r\n' \
        | "$HOM_TOOL" serve 2>/dev/null)"
code=$?
if [[ "$code" != 0 ]] || ! grep -q '^ok dump w universe 2;E/2: 0 1;$' <<< "$out"; then
  echo "FAIL [serve-crlf]: exit $code, out: $out" >&2
  fail=1
fi

# EOF mid-line: the partial final line is still a command (the sender
# died after writing it), and the session then exits 0.
out="$(printf 'db p universe 2; E/2: 0 1\ndump p' | "$HOM_TOOL" serve 2>/dev/null)"
code=$?
if [[ "$code" != 0 ]] || ! grep -q '^ok dump p' <<< "$out"; then
  echo "FAIL [serve-eof-mid-line]: exit $code, out: $out" >&2
  fail=1
fi

if [[ "$fail" == 0 ]]; then
  echo "hom_tool exit-code contract: all cells PASS"
else
  exit 1
fi
