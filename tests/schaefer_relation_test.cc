// Tests for Boolean relations, Schaefer classification (Theorem 3.1),
// defining formulas (Theorem 3.2), GF(2) algebra, and the SAT solvers.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "schaefer/boolean_relation.h"
#include "schaefer/cnf.h"
#include "schaefer/formula_build.h"
#include "schaefer/gf2.h"

namespace cqcs {
namespace {

BooleanRelation Rel(uint32_t arity, std::initializer_list<uint64_t> tuples) {
  BooleanRelation r(arity);
  for (uint64_t t : tuples) r.Add(t);
  return r;
}

// Masks here are little-endian in positions: bit p = position p. The paper
// writes tuples left-to-right; (1,0,0) is mask 0b001.
constexpr uint64_t T(std::initializer_list<int> bits) {
  uint64_t mask = 0;
  int p = 0;
  for (int b : bits) {
    if (b) mask |= 1ULL << p;
    ++p;
  }
  return mask;
}

TEST(BooleanRelationTest, AddContains) {
  BooleanRelation r = Rel(3, {0b001, 0b010});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains(0b001));
  EXPECT_FALSE(r.Contains(0b100));
  r.Add(0b001);  // duplicate ignored
  EXPECT_EQ(r.size(), 2u);
}

TEST(BooleanRelationTest, OneInThreeIsNotSchaefer) {
  // B = {(1,0,0),(0,1,0),(0,0,1)}: positive one-in-three 3-SAT, the paper's
  // example of an NP-complete CSP(B). It must fall outside all six classes.
  BooleanRelation r = Rel(3, {T({1, 0, 0}), T({0, 1, 0}), T({0, 0, 1})});
  EXPECT_EQ(r.Classify(), 0);
}

TEST(BooleanRelationTest, ZeroAndOneValid) {
  EXPECT_TRUE(Rel(2, {0b00, 0b01}).IsZeroValid());
  EXPECT_FALSE(Rel(2, {0b01}).IsZeroValid());
  EXPECT_TRUE(Rel(2, {0b11}).IsOneValid());
  EXPECT_FALSE(Rel(2, {0b01}).IsOneValid());
}

TEST(BooleanRelationTest, HornClosure) {
  // Implication x -> y = {00, 01... } wait: models of (!x | y) are
  // 00, 10 (y=1? position 0 = x, position 1 = y): masks x + 2y:
  // models: x=0,y=0 (0); x=0,y=1 (2); x=1,y=1 (3).
  BooleanRelation imp = Rel(2, {0b00, 0b10, 0b11});
  EXPECT_TRUE(imp.IsHorn());
  EXPECT_TRUE(imp.IsDualHorn());  // also definable as (!x | y): one of each
  // XOR relation {01, 10} is not Horn (AND gives 00).
  BooleanRelation xr = Rel(2, {0b01, 0b10});
  EXPECT_FALSE(xr.IsHorn());
  EXPECT_FALSE(xr.IsDualHorn());
}

TEST(BooleanRelationTest, ExampleC4FirstLabeling) {
  // Example 3.8: C4 Booleanized with a->00, b->01, c->10, d->11 yields
  // E' = {(0,0,0,1), (0,1,1,0), (1,0,1,1), (1,1,0,0)} — affine but not
  // Horn, dual Horn, bijunctive, 0-valid, or 1-valid.
  BooleanRelation e = Rel(4, {T({0, 0, 0, 1}), T({0, 1, 1, 0}),
                              T({1, 0, 1, 1}), T({1, 1, 0, 0})});
  SchaeferClassSet classes = e.Classify();
  EXPECT_EQ(classes, kAffine);
}

TEST(BooleanRelationTest, ExampleC4SecondLabeling) {
  // Example 3.8, second labeling a->00, b->10, c->11, d->01:
  // E'' = {(0,0,1,0), (1,0,1,1), (1,1,0,1), (0,1,0,0)} — bijunctive AND
  // affine, neither Horn nor dual Horn.
  BooleanRelation e = Rel(4, {T({0, 0, 1, 0}), T({1, 0, 1, 1}),
                              T({1, 1, 0, 1}), T({0, 1, 0, 0})});
  SchaeferClassSet classes = e.Classify();
  EXPECT_TRUE(classes & kAffine);
  EXPECT_TRUE(classes & kBijunctive);
  EXPECT_FALSE(classes & kHorn);
  EXPECT_FALSE(classes & kDualHorn);
}

TEST(BooleanRelationTest, TwoColorabilityRelation) {
  // Example 3.7: R = {(0,1), (1,0)} is both bijunctive and affine.
  BooleanRelation r = Rel(2, {0b01, 0b10});
  SchaeferClassSet classes = r.Classify();
  EXPECT_TRUE(classes & kBijunctive);
  EXPECT_TRUE(classes & kAffine);
}

TEST(BooleanRelationTest, AnyCardinalityTwoIsBijunctive) {
  // The fact Saraiya's case rests on (proof of Proposition 3.6).
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(10));
    BooleanRelation r(arity);
    r.Add(rng.Next() & r.FullMask());
    r.Add(rng.Next() & r.FullMask());
    EXPECT_TRUE(r.IsBijunctive());
  }
}

TEST(BooleanRelationTest, ClosureGeneratedRelationsClassify) {
  // Closing a random relation under ∧ makes it Horn; under ∨ dual Horn;
  // under XOR-of-triples affine (property sweep).
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t arity = 2 + static_cast<uint32_t>(rng.Below(6));
    BooleanRelation base(arity);
    for (int i = 0; i < 4; ++i) base.Add(rng.Next() & base.FullMask());

    BooleanRelation horn = base;
    bool grew = true;
    while (grew) {
      grew = false;
      auto tuples = horn.tuples();
      for (uint64_t x : tuples) {
        for (uint64_t y : tuples) {
          if (!horn.Contains(x & y)) {
            horn.Add(x & y);
            grew = true;
          }
        }
      }
    }
    EXPECT_TRUE(horn.IsHorn());

    BooleanRelation affine = base;
    grew = true;
    while (grew) {
      grew = false;
      auto tuples = affine.tuples();
      for (uint64_t x : tuples) {
        for (uint64_t y : tuples) {
          for (uint64_t z : tuples) {
            if (!affine.Contains(x ^ y ^ z)) {
              affine.Add(x ^ y ^ z);
              grew = true;
            }
          }
        }
      }
    }
    EXPECT_TRUE(affine.IsAffine());
  }
}

TEST(BooleanRelationTest, StructureConversionRoundTrip) {
  Relation r(2);
  r.Add({0, 1});
  r.Add({1, 0});
  auto packed = BooleanRelation::FromRelation(r);
  ASSERT_TRUE(packed.ok());
  Relation back = packed->ToRelation();
  EXPECT_TRUE(r == back);
}

TEST(BooleanRelationTest, NonBooleanRelationRejected) {
  Relation r(1);
  r.Add({2});
  EXPECT_FALSE(BooleanRelation::FromRelation(r).ok());
}

TEST(ClassifyStructureTest, IntersectsAcrossRelations) {
  auto vocab = std::make_shared<Vocabulary>();
  RelId r1 = vocab->AddRelation("R1", 2);
  RelId r2 = vocab->AddRelation("R2", 2);
  Structure b(vocab, 2);
  // R1 = {01, 10}: bijunctive+affine. R2 = implication: Horn+dual+bijunctive.
  b.AddTuple(r1, {1, 0});
  b.AddTuple(r1, {0, 1});
  b.AddTuple(r2, {0, 0});
  b.AddTuple(r2, {0, 1});
  b.AddTuple(r2, {1, 1});
  SchaeferClassSet classes = ClassifyBooleanStructure(b);
  EXPECT_TRUE(classes & kBijunctive);
  EXPECT_FALSE(classes & kHorn);
  EXPECT_FALSE(classes & kAffine);  // R2 (implication) is not affine
  EXPECT_TRUE(IsSchaeferStructure(b));
}

TEST(Gf2Test, RowReduceRank) {
  Gf2Matrix m(3);
  m.AddRow(0b011);
  m.AddRow(0b110);
  m.AddRow(0b101);  // sum of the other two
  EXPECT_EQ(m.RowReduce(), 2u);
}

TEST(Gf2Test, NullspaceOrthogonality) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t cols = 2 + static_cast<uint32_t>(rng.Below(10));
    Gf2Matrix m(cols);
    for (int r = 0; r < 6; ++r) {
      m.AddRow(rng.Next() & ((1ULL << cols) - 1));
    }
    auto basis = m.NullspaceBasis();
    for (uint64_t v : basis) {
      for (size_t r = 0; r < m.rows(); ++r) {
        EXPECT_EQ(std::popcount(m.row(r) & v) % 2, 0);
      }
    }
    // rank + nullity = cols
    Gf2Matrix copy = m;
    EXPECT_EQ(copy.RowReduce() + basis.size(), cols);
  }
}

TEST(LinearSystemTest, SolveSimple) {
  // x0 ^ x1 = 1, x1 = 1  =>  x0 = 0, x1 = 1.
  LinearSystem sys;
  sys.var_count = 2;
  sys.equations.push_back({{0, 1}, true});
  sys.equations.push_back({{1}, true});
  auto sol = SolveLinearSystem(sys);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0], 0);
  EXPECT_EQ((*sol)[1], 1);
}

TEST(LinearSystemTest, DetectsInconsistency) {
  LinearSystem sys;
  sys.var_count = 2;
  sys.equations.push_back({{0, 1}, true});
  sys.equations.push_back({{0, 1}, false});
  EXPECT_FALSE(SolveLinearSystem(sys).has_value());
}

TEST(LinearSystemTest, RepeatedVariablesCancel) {
  // x0 ^ x0 = 0 is vacuous; x0 ^ x0 = 1 is inconsistent.
  LinearSystem vacuous;
  vacuous.var_count = 1;
  vacuous.equations.push_back({{0, 0}, false});
  EXPECT_TRUE(SolveLinearSystem(vacuous).has_value());
  LinearSystem bad;
  bad.var_count = 1;
  bad.equations.push_back({{0, 0}, true});
  EXPECT_FALSE(SolveLinearSystem(bad).has_value());
}

TEST(DefiningFormulaTest, BijunctiveDefinesExactly) {
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(5));
    BooleanRelation r(arity);
    // Cardinality <= 2 relations are always bijunctive.
    r.Add(rng.Next() & r.FullMask());
    if (rng.Chance(0.8)) r.Add(rng.Next() & r.FullMask());
    auto delta = BuildDefiningFormula(r, kBijunctive);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    EXPECT_TRUE(Defines(*delta, r));
    EXPECT_TRUE(delta->cnf.IsTwoCnf());
  }
}

TEST(DefiningFormulaTest, AffineDefinesExactly) {
  // The C4 relation from Example 3.8 and random affine-closed relations.
  BooleanRelation c4 = Rel(4, {T({0, 0, 0, 1}), T({0, 1, 1, 0}),
                               T({1, 0, 1, 1}), T({1, 1, 0, 0})});
  auto delta = BuildDefiningFormula(c4, kAffine);
  ASSERT_TRUE(delta.ok());
  EXPECT_TRUE(Defines(*delta, c4));
  // Basis size bound from Theorem 3.2: at most min(k+1, |R|).
  EXPECT_LE(delta->system.equations.size(), 4u);
}

TEST(DefiningFormulaTest, HornDefinesExactly) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(6));
    BooleanRelation r(arity);
    for (int i = 0; i < 3; ++i) r.Add(rng.Next() & r.FullMask());
    // AND-close.
    bool grew = true;
    while (grew) {
      grew = false;
      auto tuples = r.tuples();
      for (uint64_t x : tuples) {
        for (uint64_t y : tuples) {
          if (!r.Contains(x & y)) {
            r.Add(x & y);
            grew = true;
          }
        }
      }
    }
    auto delta = BuildDefiningFormula(r, kHorn);
    ASSERT_TRUE(delta.ok());
    EXPECT_TRUE(delta->cnf.IsHorn());
    EXPECT_TRUE(Defines(*delta, r)) << "arity " << arity;
  }
}

TEST(DefiningFormulaTest, DualHornDefinesExactly) {
  Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t arity = 1 + static_cast<uint32_t>(rng.Below(6));
    BooleanRelation r(arity);
    for (int i = 0; i < 3; ++i) r.Add(rng.Next() & r.FullMask());
    bool grew = true;
    while (grew) {
      grew = false;
      auto tuples = r.tuples();
      for (uint64_t x : tuples) {
        for (uint64_t y : tuples) {
          if (!r.Contains(x | y)) {
            r.Add(x | y);
            grew = true;
          }
        }
      }
    }
    auto delta = BuildDefiningFormula(r, kDualHorn);
    ASSERT_TRUE(delta.ok());
    EXPECT_TRUE(delta->cnf.IsDualHorn());
    EXPECT_TRUE(Defines(*delta, r));
  }
}

TEST(DefiningFormulaTest, EmptyRelationUnsatisfiable) {
  BooleanRelation empty(3);
  for (SchaeferClass k : {kHorn, kDualHorn, kBijunctive, kAffine}) {
    auto delta = BuildDefiningFormula(empty, k);
    ASSERT_TRUE(delta.ok()) << SchaeferClassSetToString(k);
    EXPECT_TRUE(Defines(*delta, empty)) << SchaeferClassSetToString(k);
  }
}

TEST(DefiningFormulaTest, WrongClassRejected) {
  BooleanRelation xr = Rel(2, {0b01, 0b10});  // not Horn
  EXPECT_FALSE(BuildDefiningFormula(xr, kHorn).ok());
  BooleanRelation one_in_three =
      Rel(3, {T({1, 0, 0}), T({0, 1, 0}), T({0, 0, 1})});
  EXPECT_FALSE(BuildDefiningFormula(one_in_three, kBijunctive).ok());
  EXPECT_FALSE(BuildDefiningFormula(one_in_three, kAffine).ok());
}

TEST(DefiningFormulaTest, HornArityBound) {
  BooleanRelation wide(20);
  wide.Add(0);
  EXPECT_TRUE(wide.IsHorn());
  auto delta = BuildDefiningFormula(wide, kHorn, /*horn_arity_limit=*/16);
  EXPECT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kUnsupported);
}

TEST(HornSatTest, Basics) {
  // (x0) & (!x0 | x1) & (!x1 | !x2): minimal model {x0, x1}.
  CnfFormula f;
  f.var_count = 3;
  f.clauses = {{Pos(0)}, {Neg(0), Pos(1)}, {Neg(1), Neg(2)}};
  auto model = SolveHornSat(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 1);
  EXPECT_EQ((*model)[1], 1);
  EXPECT_EQ((*model)[2], 0);
}

TEST(HornSatTest, Unsatisfiable) {
  // (x0) & (!x0).
  CnfFormula f;
  f.var_count = 1;
  f.clauses = {{Pos(0)}, {Neg(0)}};
  EXPECT_FALSE(SolveHornSat(f).has_value());
}

TEST(HornSatTest, EmptyClauseUnsat) {
  CnfFormula f;
  f.var_count = 1;
  f.clauses = {{}};
  EXPECT_FALSE(SolveHornSat(f).has_value());
}

TEST(HornSatTest, ChainPropagation) {
  // x0, x0->x1, ..., x_{n-1}->x_n; then !x_n makes it UNSAT.
  CnfFormula f;
  f.var_count = 50;
  f.clauses.push_back({Pos(0)});
  for (uint32_t i = 0; i + 1 < 50; ++i) {
    f.clauses.push_back({Neg(i), Pos(i + 1)});
  }
  auto model = SolveHornSat(f);
  ASSERT_TRUE(model.has_value());
  for (uint32_t i = 0; i < 50; ++i) EXPECT_EQ((*model)[i], 1);
  f.clauses.push_back({Neg(49)});
  EXPECT_FALSE(SolveHornSat(f).has_value());
}

TEST(DualHornSatTest, MirrorsHorn) {
  // (!x0) & (x0 | !x1): maximal model sets x1=0? x0=0 forced, then clause 2
  // requires !x1 => x1=0... wait x0|!x1 with x0=0 needs x1=0.
  CnfFormula f;
  f.var_count = 2;
  f.clauses = {{Neg(0)}, {Pos(0), Neg(1)}};
  auto model = SolveDualHornSat(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 0);
  EXPECT_EQ((*model)[1], 0);
}

TEST(TwoSatTest, SatisfiableChain) {
  // Implication cycle without contradiction.
  CnfFormula f;
  f.var_count = 4;
  f.clauses = {{Neg(0), Pos(1)}, {Neg(1), Pos(2)}, {Neg(2), Pos(3)},
               {Neg(3), Pos(0)}};
  EXPECT_TRUE(SolveTwoSat(f).has_value());
  EXPECT_TRUE(SolveTwoSatByPropagation(f).has_value());
}

TEST(TwoSatTest, Contradiction) {
  // (x0|x1) & (x0|!x1) & (!x0|x1) & (!x0|!x1).
  CnfFormula f;
  f.var_count = 2;
  f.clauses = {{Pos(0), Pos(1)},
               {Pos(0), Neg(1)},
               {Neg(0), Pos(1)},
               {Neg(0), Neg(1)}};
  EXPECT_FALSE(SolveTwoSat(f).has_value());
  EXPECT_FALSE(SolveTwoSatByPropagation(f).has_value());
}

TEST(TwoSatTest, UnitClauses) {
  CnfFormula f;
  f.var_count = 2;
  f.clauses = {{Pos(0)}, {Neg(0), Pos(1)}};
  auto model = SolveTwoSat(f);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ((*model)[0], 1);
  EXPECT_EQ((*model)[1], 1);
}

TEST(TwoSatTest, SccAndPropagationAgreeOnRandomFormulas) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    CnfFormula f;
    f.var_count = 2 + static_cast<uint32_t>(rng.Below(10));
    size_t clauses = rng.Below(20);
    for (size_t c = 0; c < clauses; ++c) {
      Clause clause;
      clause.push_back(
          Literal{static_cast<uint32_t>(rng.Below(f.var_count)),
                  rng.Chance(0.5)});
      if (rng.Chance(0.8)) {
        clause.push_back(
            Literal{static_cast<uint32_t>(rng.Below(f.var_count)),
                    rng.Chance(0.5)});
      }
      f.clauses.push_back(std::move(clause));
    }
    auto scc = SolveTwoSat(f);
    auto prop = SolveTwoSatByPropagation(f);
    EXPECT_EQ(scc.has_value(), prop.has_value()) << f.ToString();
    if (scc.has_value()) EXPECT_TRUE(Satisfies(f, *scc));
    if (prop.has_value()) EXPECT_TRUE(Satisfies(f, *prop));
  }
}

TEST(CnfTest, ClassPredicates) {
  CnfFormula f;
  f.var_count = 3;
  f.clauses = {{Neg(0), Neg(1), Pos(2)}};
  EXPECT_TRUE(f.IsHorn());
  EXPECT_FALSE(f.IsDualHorn());
  EXPECT_FALSE(f.IsTwoCnf());
  EXPECT_EQ(f.Length(), 3u);
}

}  // namespace
}  // namespace cqcs
