// Serving-layer net (`ctest -L serve`): the collision-safe LRU cache, the
// workload generator, and the ServingEngine's caches / invalidation /
// admission against a fresh-engine oracle.
//
// The two properties the acceptance bar names are pinned here:
//   - a digest collision between distinct keys can cost a miss, never a
//     cross-served value (LruCacheTest.ForcedDigestCollision*);
//   - an update-heavy mix serves zero stale answers — every read is
//     re-checked against an oracle computed from the database content
//     registered at that moment (ServingEngineTest.UpdateHeavyMixServes
//     ZeroStaleAnswers).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "cq/parser.h"
#include "cq/query.h"
#include "gen/generators.h"
#include "serve/cache.h"
#include "serve/serving.h"
#include "serve/workload.h"

namespace cqcs {
namespace {

using serve::CacheKey;
using serve::LruCache;

// ---- LruCache: bounds, ordering, collision safety. ------------------------

TEST(LruCacheTest, PutGetAndLruEviction) {
  LruCache<int> cache(2);
  cache.Put(CacheKey::FromCanonical("a"), std::make_shared<int>(1));
  cache.Put(CacheKey::FromCanonical("b"), std::make_shared<int>(2));
  // Touch "a" so "b" is the cold end, then insert "c" to evict "b".
  ASSERT_NE(cache.Get(CacheKey::FromCanonical("a")), nullptr);
  cache.Put(CacheKey::FromCanonical("c"), std::make_shared<int>(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get(CacheKey::FromCanonical("a")), nullptr);
  EXPECT_EQ(cache.Get(CacheKey::FromCanonical("b")), nullptr);
  EXPECT_NE(cache.Get(CacheKey::FromCanonical("c")), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, CapacityZeroDisables) {
  LruCache<int> cache(0);
  cache.Put(CacheKey::FromCanonical("a"), std::make_shared<int>(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get(CacheKey::FromCanonical("a")), nullptr);
}

TEST(LruCacheTest, PutReplacesExistingKey) {
  LruCache<int> cache(4);
  cache.Put(CacheKey::FromCanonical("a"), std::make_shared<int>(1));
  cache.Put(CacheKey::FromCanonical("a"), std::make_shared<int>(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(CacheKey::FromCanonical("a")), 2);
}

TEST(LruCacheTest, ForcedDigestCollisionNeverCrossServes) {
  // Two DISTINCT canonical keys forced into the same 64-bit bucket: the
  // cache must keep both and serve each its own value — full-key equality,
  // never digest equality alone.
  LruCache<std::string> cache(8);
  const CacheKey k1 = CacheKey::WithDigest("Q1() :- E(X, Y).", 42);
  const CacheKey k2 = CacheKey::WithDigest("Q2() :- E(X, X).", 42);
  ASSERT_EQ(k1.digest, k2.digest);
  ASSERT_FALSE(k1 == k2);
  cache.Put(k1, std::make_shared<std::string>("answer-1"));
  cache.Put(k2, std::make_shared<std::string>("answer-2"));
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.Get(k1), nullptr);
  ASSERT_NE(cache.Get(k2), nullptr);
  EXPECT_EQ(*cache.Get(k1), "answer-1");
  EXPECT_EQ(*cache.Get(k2), "answer-2");
}

TEST(LruCacheTest, ForcedDigestCollisionEvictsAndErasesTheRightEntry) {
  LruCache<int> cache(8);
  const CacheKey k1 = CacheKey::WithDigest("one", 7);
  const CacheKey k2 = CacheKey::WithDigest("two", 7);
  const CacheKey k3 = CacheKey::WithDigest("three", 7);
  cache.Put(k1, std::make_shared<int>(1));
  cache.Put(k2, std::make_shared<int>(2));
  cache.Put(k3, std::make_shared<int>(3));
  // EraseIf must drop exactly the matching canonical, not the bucket.
  EXPECT_EQ(cache.EraseIf([](const CacheKey& k) {
    return k.canonical == "two";
  }), 1u);
  EXPECT_EQ(cache.Get(k2), nullptr);
  ASSERT_NE(cache.Get(k1), nullptr);
  ASSERT_NE(cache.Get(k3), nullptr);
  EXPECT_EQ(*cache.Get(k1), 1);
  EXPECT_EQ(*cache.Get(k3), 3);
}

// ---- Workload generator. --------------------------------------------------

TEST(WorkloadTest, DeterministicFromSeed) {
  serve::WorkloadSpec spec;
  spec.update_fraction = 0.3;
  serve::Workload w1(spec);
  serve::Workload w2(spec);
  for (int i = 0; i < 200; ++i) {
    const serve::Op a = w1.Next();
    const serve::Op b = w2.Next();
    EXPECT_EQ(static_cast<int>(a.type), static_cast<int>(b.type));
    EXPECT_EQ(a.query, b.query);
    EXPECT_EQ(a.database, b.database);
  }
}

TEST(WorkloadTest, ZipfianConcentratesOnHotKeys) {
  // At theta=0.99 over 16 keys, the hottest key draws far more than the
  // uniform 1/16 share; uniform stays near it.
  auto frequency_of_top = [](serve::Distribution d, double param) {
    serve::WorkloadSpec spec;
    spec.query_dist = d;
    spec.query_skew = param;
    serve::Workload w(spec);
    std::vector<int> counts(spec.num_queries, 0);
    const int kOps = 4000;
    for (int i = 0; i < kOps; ++i) ++counts[w.Next().query];
    int top = 0;
    for (int c : counts) top = std::max(top, c);
    return static_cast<double>(top) / kOps;
  };
  const double zipf = frequency_of_top(serve::Distribution::kZipfian, 0.99);
  const double uni = frequency_of_top(serve::Distribution::kUniform, 0.0);
  const double self = frequency_of_top(serve::Distribution::kSelfSimilar, 0.2);
  // Theoretical top-key mass at theta=0.99 over 16 keys is ~0.296.
  EXPECT_GT(zipf, 0.25);
  EXPECT_LT(uni, 0.15);
  EXPECT_GT(self, 0.3);
}

TEST(WorkloadTest, UpdateFractionRoughlyHonored) {
  serve::WorkloadSpec spec;
  spec.update_fraction = 0.3;
  serve::Workload w(spec);
  int updates = 0;
  const int kOps = 4000;
  for (int i = 0; i < kOps; ++i) {
    if (w.Next().type == serve::OpType::kUpdate) ++updates;
  }
  EXPECT_GT(updates, kOps / 5);
  EXPECT_LT(updates, kOps / 2);
}

TEST(WorkloadTest, DistributionNamesRoundTrip) {
  for (serve::Distribution d :
       {serve::Distribution::kUniform, serve::Distribution::kZipfian,
        serve::Distribution::kSelfSimilar}) {
    auto parsed = serve::ParseDistributionName(serve::DistributionName(d));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(static_cast<int>(*parsed), static_cast<int>(d));
  }
  EXPECT_FALSE(serve::ParseDistributionName("gaussian").has_value());
}

// ---- ServingEngine vs a fresh-engine oracle. ------------------------------

struct OracleAnswer {
  bool decided = false;
  size_t count = 0;
  size_t rows = 0;
};

OracleAnswer Oracle(const std::string& query_text, const Structure& db,
                    HomTask task, const EngineOptions& options) {
  auto query = ParseQuery(query_text, db.vocabulary());
  CQCS_CHECK_MSG(query.ok(), query.status().ToString());
  auto problem = HomProblem::FromQuery(*query, db);
  CQCS_CHECK_MSG(problem.ok(), problem.status().ToString());
  HomEngine engine(options);
  auto r = engine.Run(*problem, task);
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return OracleAnswer{r->decided, r->count, r->rows.size()};
}

Structure MakeTestDb(const VocabularyPtr& vocab, uint32_t index,
                     uint64_t version) {
  Rng rng(0x5e12 + index * 977 + version * 7919);
  return RandomGraphStructure(vocab, 24, 0.2, rng, /*symmetric=*/true);
}

std::vector<std::string> MakeTestQueries(const VocabularyPtr& vocab) {
  std::vector<std::string> queries;
  for (size_t i = 2; i <= 5; ++i) {
    queries.push_back(ToString(ChainQuery(vocab, i)));
    queries.push_back(ToString(StarQuery(vocab, i)));
  }
  return queries;
}

TEST(ServingEngineTest, CachedAnswersMatchFreshEngineAcrossTasks) {
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.engine.count_limit = 10000;
  options.engine.max_results = 512;
  serve::ServingEngine serving(options);
  const auto queries = MakeTestQueries(vocab);
  std::vector<Structure> dbs;
  for (uint32_t d = 0; d < 3; ++d) {
    dbs.push_back(MakeTestDb(vocab, d, 0));
    ASSERT_TRUE(
        serving.UpsertDatabase("db" + std::to_string(d), dbs[d]).ok());
  }
  // Two passes: the second is all-hot (result-cache hits) and must agree
  // with the cold pass's oracle answers.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t d = 0; d < 3; ++d) {
      for (size_t q = 0; q < queries.size(); ++q) {
        for (HomTask task :
             {HomTask::kDecide, HomTask::kCount, HomTask::kEnumerate}) {
          serve::ServeRequest request;
          request.query = queries[q];
          request.database = "db" + std::to_string(d);
          request.task = task;
          auto served = serving.Serve(request);
          ASSERT_TRUE(served.ok()) << served.status().ToString();
          const OracleAnswer expected =
              Oracle(queries[q], dbs[d], task, options.engine);
          EXPECT_EQ(served->decided, expected.decided)
              << "pass " << pass << " q" << q << " db" << d;
          if (task == HomTask::kCount) {
            EXPECT_EQ(served->count, expected.count);
          }
          if (task == HomTask::kEnumerate) {
            EXPECT_EQ(served->rows.size(), expected.rows);
          }
          EXPECT_TRUE(served->stats.serve.enabled);
        }
      }
    }
  }
  const serve::ServeStats stats = serving.stats();
  EXPECT_GT(stats.result_hits, 0u);
  EXPECT_GT(stats.plan_hits, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.served, stats.requests);
}

TEST(ServingEngineTest, RebindAfterUpdateSharesPlanAndAnswersFresh) {
  auto vocab = MakeGraphVocabulary();
  serve::ServingEngine serving;
  const std::string query = ToString(ChainQuery(vocab, 4));
  Structure v0 = MakeTestDb(vocab, 0, 0);
  ASSERT_TRUE(serving.UpsertDatabase("g", v0).ok());
  serve::ServeRequest request;
  request.query = query;
  request.database = "g";
  request.task = HomTask::kCount;
  auto cold = serving.Serve(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->stats.serve.plan_cache_hit);

  // Replace the database: the plan cache's SOURCE entry must be reused
  // (plan hit via WithTarget rebind) while the answer reflects v1.
  Structure v1 = MakeTestDb(vocab, 0, 1);
  ASSERT_TRUE(serving.UpsertDatabase("g", v1).ok());
  auto warm = serving.Serve(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->stats.serve.plan_cache_hit);
  EXPECT_FALSE(warm->stats.serve.result_cache_hit);
  const OracleAnswer expected =
      Oracle(query, v1, HomTask::kCount, EngineOptions{});
  EXPECT_EQ(warm->count, expected.count);
}

TEST(ServingEngineTest, UpdateHeavyMixServesZeroStaleAnswers) {
  // The acceptance property: run an update-heavy skewed mix and oracle-
  // re-check EVERY read against the database content registered at that
  // moment. A stale cached answer (served after its database changed)
  // would diverge from the oracle.
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.engine.count_limit = 10000;
  serve::ServingEngine serving(options);
  const auto queries = MakeTestQueries(vocab);
  serve::WorkloadSpec spec;
  spec.num_queries = static_cast<uint32_t>(queries.size());
  spec.num_databases = 3;
  spec.query_dist = serve::Distribution::kZipfian;
  spec.query_skew = 0.99;
  spec.update_fraction = 0.3;
  serve::Workload workload(spec);

  std::vector<Structure> current;
  std::vector<uint64_t> versions(spec.num_databases, 0);
  for (uint32_t d = 0; d < spec.num_databases; ++d) {
    current.push_back(MakeTestDb(vocab, d, 0));
    ASSERT_TRUE(
        serving.UpsertDatabase("db" + std::to_string(d), current[d]).ok());
  }
  for (int op_index = 0; op_index < 300; ++op_index) {
    const serve::Op op = workload.Next();
    if (op.type == serve::OpType::kUpdate) {
      current[op.database] =
          MakeTestDb(vocab, op.database, ++versions[op.database]);
      ASSERT_TRUE(serving
                      .UpsertDatabase("db" + std::to_string(op.database),
                                      current[op.database])
                      .ok());
      continue;
    }
    serve::ServeRequest request;
    request.query = queries[op.query];
    request.database = "db" + std::to_string(op.database);
    request.task = HomTask::kCount;
    auto served = serving.Serve(request);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    const OracleAnswer expected = Oracle(queries[op.query],
                                         current[op.database],
                                         HomTask::kCount, options.engine);
    ASSERT_EQ(served->count, expected.count)
        << "stale answer at op " << op_index << " (db" << op.database
        << " v" << versions[op.database] << ")";
  }
  const serve::ServeStats stats = serving.stats();
  // The mix must have actually exercised both the cache and invalidation.
  EXPECT_GT(stats.result_hits, 0u);
  EXPECT_GT(stats.updates, spec.num_databases);
  EXPECT_GT(stats.invalidated_entries, 0u);
}

TEST(ServingEngineTest, DropDatabaseInvalidatesAndReturnsNotFound) {
  auto vocab = MakeGraphVocabulary();
  serve::ServingEngine serving;
  ASSERT_TRUE(serving.UpsertDatabase("g", MakeTestDb(vocab, 0, 0)).ok());
  serve::ServeRequest request;
  request.query = ToString(ChainQuery(vocab, 3));
  request.database = "g";
  ASSERT_TRUE(serving.Serve(request).ok());
  ASSERT_TRUE(serving.DropDatabase("g").ok());
  EXPECT_EQ(serving.DropDatabase("g").code(), StatusCode::kNotFound);
  EXPECT_EQ(serving.Serve(request).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(serving.stats().result_cache_entries, 0u);
}

TEST(ServingEngineTest, RejectsDelimiterBearingDatabaseNames) {
  auto vocab = MakeGraphVocabulary();
  serve::ServingEngine serving;
  Structure db = MakeTestDb(vocab, 0, 0);
  // Delimiters, whitespace, and every control byte the durable-name rule
  // (core/io IsCatalogName) rejects — the same set the WAL replay and the
  // snapshot parser refuse, so nothing acknowledgeable is unreplayable.
  for (const char* name : {"a|b", "a#b", "a b", "a\tb", "", "a\x01" "b",
                           "a\rb", "del\x7f", "\x1f"}) {
    EXPECT_EQ(serving.UpsertDatabase(name, db).code(),
              StatusCode::kInvalidArgument)
        << "name \"" << name << "\"";
  }
}

TEST(ServingEngineTest, ByteAdmissionShedsDeterministically) {
  // max_inflight_bytes=1: any request with a nonzero size-bound estimate
  // is shed with kResourceExhausted, before the engine runs.
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.max_inflight_bytes = 1;
  serve::ServingEngine serving(options);
  ASSERT_TRUE(serving.UpsertDatabase("g", MakeTestDb(vocab, 0, 0)).ok());
  serve::ServeRequest request;
  request.query = ToString(ChainQuery(vocab, 3));
  request.database = "g";
  auto served = serving.Serve(request);
  ASSERT_FALSE(served.ok());
  EXPECT_EQ(served.status().code(), StatusCode::kResourceExhausted);
  const serve::ServeStats stats = serving.stats();
  EXPECT_EQ(stats.shed_bytes, 1u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.inflight_bytes, 0u);  // the reservation was rolled back
}

TEST(ServingEngineTest, QueueDepthShedsConcurrentOverload) {
  // One deliberately slow request (a huge count under a deadline) occupies
  // the only admission slot; a second request arriving while it runs must
  // be shed immediately — the policy sheds, it never stalls.
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.max_queue_depth = 1;
  options.engine.deadline_ms = 2000;
  options.engine.count_limit = static_cast<size_t>(-1);
  // Pin the uniform backend: auto-routing would hand the (acyclic) chain
  // query to Yannakakis, which finishes before the second request arrives.
  options.engine.backend = Backend::kUniform;
  serve::ServingEngine serving(options);
  ASSERT_TRUE(serving.UpsertDatabase("big", CliqueStructure(vocab, 24)).ok());
  serve::ServeRequest heavy;
  heavy.query = ToString(ChainQuery(vocab, 6));  // ~24^7 paths: deadline-bound
  heavy.database = "big";
  heavy.task = HomTask::kCount;
  std::thread slow([&] {
    auto r = serving.Serve(heavy);
    // Served (possibly as an un-cacheable "unknown"), never shed: it held
    // the slot first.
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  // Wait until the heavy request is inside the engine.
  while (serving.stats().queue_depth == 0) {
    std::this_thread::yield();
  }
  serve::ServeRequest cheap;
  cheap.query = ToString(ChainQuery(vocab, 2));
  cheap.database = "big";
  auto shed = serving.Serve(cheap);
  slow.join();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  const serve::ServeStats stats = serving.stats();
  EXPECT_EQ(stats.shed_queue, 1u);
  EXPECT_EQ(stats.queue_depth_peak, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ServingEngineTest, UnknownResultsAreNotCached) {
  // A deadline-tripped ("unknown") answer reflects the request's budget,
  // not the instance: serving it from the result cache to a later request
  // would be wrong. The second serve must re-run, not hit.
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.engine.deadline_ms = 1;
  options.engine.count_limit = static_cast<size_t>(-1);
  options.engine.backend = Backend::kUniform;  // ~24^7 nodes: deadline-bound
  serve::ServingEngine serving(options);
  ASSERT_TRUE(serving.UpsertDatabase("big", CliqueStructure(vocab, 24)).ok());
  serve::ServeRequest request;
  request.query = ToString(ChainQuery(vocab, 6));
  request.database = "big";
  request.task = HomTask::kCount;
  auto first = serving.Serve(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->stats.governor.tripped);
  auto second = serving.Serve(request);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->stats.serve.result_cache_hit);
  EXPECT_EQ(serving.stats().result_hits, 0u);
}

TEST(ServingEngineTest, StatsJsonAndEngineStatsCarryServeFields) {
  auto vocab = MakeGraphVocabulary();
  serve::ServingEngine serving;
  ASSERT_TRUE(serving.UpsertDatabase("g", MakeTestDb(vocab, 0, 0)).ok());
  serve::ServeRequest request;
  request.query = ToString(ChainQuery(vocab, 3));
  request.database = "g";
  auto served = serving.Serve(request);
  ASSERT_TRUE(served.ok());
  // The per-request EngineStats JSON must include the serve block...
  const std::string result_json = served->ToJson();
  EXPECT_NE(result_json.find("\"serve\":{"), std::string::npos);
  EXPECT_NE(result_json.find("\"plan_cache_hit\":"), std::string::npos);
  // ...and the aggregate snapshot its counters.
  const std::string agg = serving.stats().ToJson();
  for (const char* field :
       {"\"requests\":", "\"plan_hit_rate\":", "\"result_hit_rate\":",
        "\"shed_queue\":", "\"shed_bytes\":", "\"queue_depth\":",
        "\"invalidated_entries\":"}) {
    EXPECT_NE(agg.find(field), std::string::npos) << field;
  }
  // An engine run outside the serving layer reports serve: null.
  auto query = ParseQuery(request.query, vocab);
  ASSERT_TRUE(query.ok());
  auto problem = HomProblem::FromQuery(*query, MakeTestDb(vocab, 0, 0));
  ASSERT_TRUE(problem.ok());
  HomEngine engine;
  auto direct = engine.Run(*problem, HomTask::kDecide);
  ASSERT_TRUE(direct.ok());
  EXPECT_NE(direct->ToJson().find("\"serve\":null"), std::string::npos);
}

}  // namespace
}  // namespace cqcs
