// Tests for nice tree decompositions and the textbook-form DP.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/nice.h"

namespace cqcs {
namespace {

TEST(NiceDecompositionTest, PreservesWidthAndValidates) {
  Rng rng(91);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(3));
    Graph g = RandomPartialKTree(5 + rng.Below(12), k, 0.8, rng);
    Structure a = StructureFromGraph(vocab, g);
    TreeDecomposition td = HeuristicDecomposition(a);
    NiceDecomposition nice = MakeNice(td);
    EXPECT_EQ(nice.Width(), td.Width());
    EXPECT_TRUE(nice.ValidateFor(a).ok()) << nice.ValidateFor(a).ToString();
  }
}

TEST(NiceDecompositionTest, NodeKindsArePresent) {
  auto vocab = MakeGraphVocabulary();
  // A star forces a join-free spine; a branching decomposition gets joins.
  Structure grid = GridStructure(vocab, 3, 3);
  NiceDecomposition nice = MakeNice(HeuristicDecomposition(grid));
  bool has_leaf = false, has_introduce = false, has_forget = false;
  for (const auto& node : nice.nodes) {
    has_leaf |= node.kind == NiceNodeKind::kLeaf;
    has_introduce |= node.kind == NiceNodeKind::kIntroduce;
    has_forget |= node.kind == NiceNodeKind::kForget;
  }
  EXPECT_TRUE(has_leaf);
  EXPECT_TRUE(has_introduce);
  EXPECT_TRUE(has_forget);
}

TEST(NiceDpTest, MatchesGeneralDpAndBacktracking) {
  Rng rng(93);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(2));
    Graph ga = RandomPartialKTree(4 + rng.Below(8), k, 0.8, rng);
    Structure a = StructureFromGraph(vocab, ga);
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.5, rng,
                                       /*symmetric=*/true);
    TreeDecomposition td = HeuristicDecomposition(a);
    NiceDecomposition nice = MakeNice(td);
    auto via_nice = SolveViaNiceDecomposition(a, b, nice);
    ASSERT_TRUE(via_nice.ok()) << via_nice.status().ToString();
    bool expected = HasHomomorphism(a, b);
    EXPECT_EQ(via_nice->has_value(), expected) << "trial " << trial;
    if (via_nice->has_value()) {
      EXPECT_TRUE(IsHomomorphism(a, b, **via_nice));
    }
  }
}

TEST(NiceDpTest, HandlesSelfLoopsAndUnaryFacts) {
  auto vocab = std::make_shared<Vocabulary>();
  RelId e = vocab->AddRelation("E", 2);
  RelId p = vocab->AddRelation("P", 1);
  Structure a(vocab, 2);
  a.AddTuple(e, {0, 0});  // self loop: an all-same-element tuple
  a.AddTuple(e, {0, 1});
  a.AddTuple(p, {1});
  Structure b(vocab, 2);
  b.AddTuple(e, {0, 0});
  b.AddTuple(e, {0, 1});
  b.AddTuple(p, {1});
  NiceDecomposition nice = MakeNice(HeuristicDecomposition(a));
  auto h = SolveViaNiceDecomposition(a, b, nice);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->has_value());
  EXPECT_TRUE(IsHomomorphism(a, b, **h));
  // Remove the loop from B: now element 0 has no image.
  Structure b2(vocab, 2);
  b2.AddTuple(e, {0, 1});
  b2.AddTuple(p, {1});
  auto h2 = SolveViaNiceDecomposition(a, b2, nice);
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(h2->has_value());
}

TEST(NiceDpTest, EmptySource) {
  auto vocab = MakeGraphVocabulary();
  Structure empty(vocab, 0);
  Structure b = CliqueStructure(vocab, 2);
  NiceDecomposition nice = MakeNice(HeuristicDecomposition(empty));
  auto h = SolveViaNiceDecomposition(empty, b, nice);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->has_value());
}

}  // namespace
}  // namespace cqcs
