// Resource-governance net: every backend must honor deadlines, memory
// budgets, cancellation, and injected faults by unwinding to a structured
// "unknown" — never an abort, never a torn or wrong answer — and a problem
// or engine that tripped must stay fully reusable afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "api/engine.h"
#include "common/governor.h"
#include "common/rng.h"
#include "common/saturating.h"
#include "core/homomorphism.h"
#include "core/io.h"
#include "cq/parser.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "rel/hash_index.h"
#include "rel/table.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

HomProblem MustProblem(Result<HomProblem> r) {
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *std::move(r);
}

EngineResult MustRun(const HomEngine& engine, const HomProblem& p,
                     HomTask task) {
  auto r = engine.Run(p, task);
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *std::move(r);
}

bool OracleDecide(const Structure& a, const Structure& b) {
  BacktrackingSolver solver(a, b);
  return solver.Solve().has_value();
}

// ---- Governor unit behavior. ----------------------------------------------

TEST(GovernorTest, UngovernedPollsAlwaysOk) {
  ResourceGovernor g;  // no deadline, no budget
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(g.Poll().ok());
  EXPECT_FALSE(g.tripped());
  EXPECT_EQ(g.trip_cause(), TripCause::kNone);
  EXPECT_EQ(g.checks(), 100u);
}

TEST(GovernorTest, MemoryCeilingTripsOnNextPoll) {
  ResourceGovernor g(0, 1000);
  g.ChargeBytes(600);
  EXPECT_TRUE(g.Poll().ok());  // within budget
  g.ChargeBytes(600);          // 1200 > 1000: marks the trip
  Status s = g.Poll();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_EQ(g.trip_cause(), TripCause::kMemory);
  EXPECT_EQ(g.peak_bytes(), 1200u);
  // Release does not un-trip: the budget was exceeded, sticky by design.
  g.ReleaseBytes(1200);
  EXPECT_FALSE(g.Poll().ok());
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(GovernorTest, FirstCauseWins) {
  ResourceGovernor g(0, 10);
  g.ChargeBytes(100);
  EXPECT_FALSE(g.Poll().ok());
  EXPECT_EQ(g.trip_cause(), TripCause::kMemory);
  g.Cancel();  // later cause must not overwrite the first
  EXPECT_EQ(g.trip_cause(), TripCause::kMemory);
}

TEST(GovernorTest, ExternalCancelObservedAtPoll) {
  std::atomic<bool> cancel{false};
  ResourceGovernor g;
  g.set_external_cancel(&cancel);
  EXPECT_TRUE(g.Poll().ok());
  cancel.store(true);
  EXPECT_EQ(g.Poll().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.trip_cause(), TripCause::kCancelled);
}

TEST(GovernorTest, FailpointTripsAtNthCheck) {
  ResourceGovernor g;
  GovernorFailpoints fp;
  fp.trip_after_checks = 3;
  g.set_failpoints(fp);
  EXPECT_TRUE(g.Poll().ok());
  EXPECT_TRUE(g.Poll().ok());
  EXPECT_FALSE(g.Poll().ok());
  EXPECT_EQ(g.trip_cause(), TripCause::kFailpoint);
}

TEST(GovernorTest, AdmitBytesDoesNotTrip) {
  ResourceGovernor g(0, 1000);
  g.ChargeBytes(800);
  EXPECT_TRUE(g.AdmitBytes(100));
  EXPECT_FALSE(g.AdmitBytes(500));
  EXPECT_FALSE(g.tripped());  // admission is advisory, not a trip
  ResourceGovernor unlimited;
  EXPECT_TRUE(unlimited.AdmitBytes(SIZE_MAX));
}

// ---- Charged-bytes conservation in the governed rel/ kernel. --------------
//
// rel::Table and rel::HashIndex report capacity deltas to the governor and
// hand their charge over on move (the moved-from object must neither
// double-release nor keep a phantom charge). The audit property: after ANY
// interleaving of appends, reserves, copies, moves, clears, KeepRows, and
// destructions, bytes_in_use() equals the sum of the live objects' charges
// — and hits exactly zero when the last governed object dies.

TEST(GovernorChargeTest, TableMoveTransfersChargeExactlyOnce) {
  ResourceGovernor g;
  {
    rel::Table a(2);
    a.AttachGovernor(&g);
    for (Element v = 0; v < 100; ++v) {
      const Element row[2] = {v, v};
      a.AppendRow(row);
    }
    const size_t charged = g.bytes_in_use();
    ASSERT_GT(charged, 0u);
    // Move-construct: the charge follows the buffer; destroying the
    // moved-from shell must not release (or re-release) anything.
    rel::Table b(std::move(a));
    EXPECT_EQ(g.bytes_in_use(), charged);
    { rel::Table graveyard(std::move(a)); }  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(g.bytes_in_use(), charged);
    // Move-assign over a charged table: the target's old charge is
    // released, the source's transfers — never summed, never dropped.
    rel::Table c(2);
    c.AttachGovernor(&g);
    const Element row[2] = {1, 2};
    for (int i = 0; i < 50; ++i) c.AppendRow(row);
    c = std::move(b);
    EXPECT_EQ(g.bytes_in_use(), charged);
  }
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(GovernorChargeTest, TableCopyChargesTheCopyIndependently) {
  ResourceGovernor g;
  {
    rel::Table a(3);
    a.AttachGovernor(&g);
    const Element row[3] = {1, 2, 3};
    for (int i = 0; i < 64; ++i) a.AppendRow(row);
    const size_t one = g.bytes_in_use();
    rel::Table b(a);
    // The copy charges its own buffer (at least the 64*3 cells of data,
    // whatever slack the original's capacity carried).
    EXPECT_GE(g.bytes_in_use(), one + 64 * 3 * sizeof(Element));
    b = a;  // re-assign releases the old charge then re-charges, no leak
    const size_t both = g.bytes_in_use();
    {
      rel::Table c(a);
      EXPECT_GT(g.bytes_in_use(), both);
    }
    EXPECT_EQ(g.bytes_in_use(), both);  // c fully released on destruction
  }
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(GovernorChargeTest, KeepRowsAndClearNeverLeakCharge) {
  ResourceGovernor g;
  {
    rel::Table t(2);
    t.AttachGovernor(&g);
    const Element row[2] = {7, 7};
    for (int i = 0; i < 200; ++i) t.AppendRow(row);
    // KeepRows compacts in place (capacity, and thus the charge, may stay);
    // the invariant is only that destruction returns to zero, checked at
    // scope exit, and that the charge never exceeds the peak.
    const size_t peak = g.bytes_in_use();
    const uint32_t keep_ids[] = {0, 5, 9};
    t.KeepRows(keep_ids);
    EXPECT_LE(g.bytes_in_use(), peak);
    t.Clear();
    EXPECT_LE(g.bytes_in_use(), peak);
    t.AttachGovernor(nullptr);  // detach releases everything still charged
    EXPECT_EQ(g.bytes_in_use(), 0u);
    const Element row2[2] = {1, 1};
    t.AppendRow(row2);  // detached: no governor, no charge
    EXPECT_EQ(g.bytes_in_use(), 0u);
  }
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(GovernorChargeTest, HashIndexMovesAndCopiesConserveCharge) {
  ResourceGovernor g;
  {
    rel::Table t(2);
    for (Element v = 0; v < 128; ++v) {
      const Element r[2] = {v, v % 7};
      t.AppendRow(r);
    }
    rel::HashIndex idx;
    idx.AttachGovernor(&g);
    idx.Build(t.data(), 2, static_cast<uint32_t>(t.row_count()), {1});
    const size_t charged = g.bytes_in_use();
    ASSERT_GT(charged, 0u);
    rel::HashIndex moved(std::move(idx));
    EXPECT_EQ(g.bytes_in_use(), charged);
    rel::HashIndex copy(moved);
    EXPECT_GT(g.bytes_in_use(), charged);
    copy = std::move(moved);  // release copy's charge, adopt moved's
    EXPECT_EQ(g.bytes_in_use(), charged);
  }
  EXPECT_EQ(g.bytes_in_use(), 0u);
}

TEST(GovernorChargeTest, RandomizedLifecycleConservesToZero) {
  // Randomized interleaving over a pool of governed tables and indexes;
  // the governor's byte account must (a) never underflow (an underflow
  // wraps size_t and shows up as an absurdly large balance) and (b) settle
  // at exactly zero once the pool is destroyed.
  Rng rng(0xacc7);
  ResourceGovernor g;
  {
    std::vector<rel::Table> tables;
    std::vector<rel::HashIndex> indexes;
    for (int step = 0; step < 600; ++step) {
      const uint32_t action = rng.Below(8);
      switch (action) {
        case 0: {  // new governed table
          rel::Table t(2);
          t.AttachGovernor(&g);
          tables.push_back(std::move(t));
          break;
        }
        case 1: {  // append rows
          if (tables.empty()) break;
          rel::Table& t = tables[rng.Below(
              static_cast<uint32_t>(tables.size()))];
          for (int i = 0; i < 16; ++i) {
            const Element row[2] = {static_cast<Element>(rng.Below(100)),
                                    static_cast<Element>(rng.Below(100))};
            t.AppendRow(row);
          }
          break;
        }
        case 2: {  // reserve
          if (tables.empty()) break;
          tables[rng.Below(static_cast<uint32_t>(tables.size()))].Reserve(
              rng.Below(256));
          break;
        }
        case 3: {  // copy-assign
          if (tables.size() < 2) break;
          const uint32_t n = static_cast<uint32_t>(tables.size());
          tables[rng.Below(n)] = tables[rng.Below(n)];
          break;
        }
        case 4: {  // move-assign (possibly self — guarded by the kernel)
          if (tables.size() < 2) break;
          const uint32_t n = static_cast<uint32_t>(tables.size());
          tables[rng.Below(n)] = std::move(tables[rng.Below(n)]);
          break;
        }
        case 5: {  // destroy one
          if (tables.empty()) break;
          tables.erase(tables.begin() +
                       rng.Below(static_cast<uint32_t>(tables.size())));
          break;
        }
        case 6: {  // KeepRows / Clear
          if (tables.empty()) break;
          rel::Table& t = tables[rng.Below(
              static_cast<uint32_t>(tables.size()))];
          if (t.row_count() > 2 && rng.Chance(0.5)) {
            const uint32_t keep[] = {0, 1};
            t.KeepRows(keep);
          } else {
            t.Clear();
          }
          break;
        }
        case 7: {  // build a governed index over a random table
          if (tables.empty()) break;
          const rel::Table& t = tables[rng.Below(
              static_cast<uint32_t>(tables.size()))];
          if (t.row_count() == 0) break;
          rel::HashIndex idx;
          idx.AttachGovernor(&g);
          idx.Build(t.data(), t.width(),
                    static_cast<uint32_t>(t.row_count()), {0});
          if (indexes.size() > 4) {
            indexes[rng.Below(static_cast<uint32_t>(indexes.size()))] =
                std::move(idx);
          } else {
            indexes.push_back(std::move(idx));
          }
          break;
        }
      }
      // Underflow guard: a bad release would wrap to ~SIZE_MAX.
      ASSERT_LT(g.bytes_in_use(), size_t{1} << 40) << "step " << step;
    }
  }
  EXPECT_EQ(g.bytes_in_use(), 0u);
  EXPECT_FALSE(g.tripped());
}

// ---- Saturating arithmetic boundaries. ------------------------------------

TEST(SaturatingTest, AddBoundaries) {
  EXPECT_EQ(SatAdd(2, 3, 100), 5u);
  EXPECT_EQ(SatAdd(60, 60, 100), 100u);
  EXPECT_EQ(SatAdd(100, 0, 100), 100u);
  EXPECT_EQ(SatAdd(SIZE_MAX, SIZE_MAX, SIZE_MAX), SIZE_MAX);
  EXPECT_EQ(SatAdd(SIZE_MAX - 1, 1, SIZE_MAX), SIZE_MAX);
  EXPECT_EQ(SatAdd(0, 0, SIZE_MAX), 0u);
}

TEST(SaturatingTest, MulBoundaries) {
  EXPECT_EQ(SatMul(6, 7, 100), 42u);
  EXPECT_EQ(SatMul(20, 20, 100), 100u);
  EXPECT_EQ(SatMul(SIZE_MAX, 0, 100), 0u);  // 0 annihilates even saturated
  EXPECT_EQ(SatMul(0, SIZE_MAX, 100), 0u);
  EXPECT_EQ(SatMul(SIZE_MAX, 2, SIZE_MAX), SIZE_MAX);
  EXPECT_EQ(SatMul(1, SIZE_MAX, SIZE_MAX), SIZE_MAX);
}

TEST(SaturatingTest, PowBoundaries) {
  EXPECT_EQ(SatPow(10, 0, 100), 1u);  // empty product, even at the limit
  EXPECT_EQ(SatPow(0, 0, 100), 1u);
  EXPECT_EQ(SatPow(0, 5, 100), 0u);
  EXPECT_EQ(SatPow(2, 6, 100), 64u);
  EXPECT_EQ(SatPow(2, 7, 100), 100u);
  EXPECT_EQ(SatPow(2, 64, SIZE_MAX), SIZE_MAX);
}

// ---- Fault injection: every backend x task unwinds cleanly. ---------------

struct BackendCase {
  Backend backend;
  std::vector<HomTask> tasks;
};

void ExpectCleanTrip(const EngineResult& r, HomTask task) {
  EXPECT_TRUE(r.stats.governor.enabled);
  EXPECT_TRUE(r.stats.governor.tripped) << r.explain.ToString();
  EXPECT_EQ(r.stats.governor.cause, TripCause::kFailpoint);
  EXPECT_FALSE(r.decided);
  EXPECT_FALSE(r.witness.has_value());
  if (task == HomTask::kEnumerate || task == HomTask::kProject) {
    // A poly-backend trip discards partial rows (the uniform search keeps
    // its verified prefix, marked incomplete via limit_hit — not covered
    // by this helper, see UniformTripKeepsVerifiedPrefix).
    EXPECT_TRUE(r.rows.empty());
  }
}

TEST(GovernorEngineTest, EveryBackendTripsCleanlyAndStaysReusable) {
  Rng rng(7001);
  auto graph_vocab = MakeGraphVocabulary();
  // One instance per backend, shaped so the explicit backend accepts it.
  Structure acyclic_a = PathStructure(graph_vocab, 8);
  Structure cyclic_a = UndirectedCycleStructure(graph_vocab, 7);
  Structure graph_b = RandomGraphStructure(graph_vocab, 4, 0.6, rng, true);

  auto bool_vocab = std::make_shared<Vocabulary>();
  bool_vocab->AddRelation("R", 3);
  Structure horn_b =
      RandomClosedBooleanStructure(bool_vocab, 3, ClosureOp::kAnd, 4, rng);
  Structure bool_a = RandomStructure(bool_vocab, 8, 12, rng);

  const std::vector<BackendCase> cases = {
      {Backend::kAcyclic,
       {HomTask::kDecide, HomTask::kWitness, HomTask::kCount,
        HomTask::kEnumerate, HomTask::kProject}},
      {Backend::kTreewidth, {HomTask::kDecide, HomTask::kWitness}},
      {Backend::kSchaefer, {HomTask::kDecide, HomTask::kWitness}},
      {Backend::kUniform,
       {HomTask::kDecide, HomTask::kWitness, HomTask::kCount,
        HomTask::kEnumerate, HomTask::kProject}},
  };

  for (const BackendCase& c : cases) {
    const Structure& a =
        c.backend == Backend::kSchaefer
            ? bool_a
            : (c.backend == Backend::kTreewidth ? cyclic_a : acyclic_a);
    const Structure& b = c.backend == Backend::kSchaefer ? horn_b : graph_b;
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    ASSERT_TRUE(p.SetProjection({0}).ok());

    for (HomTask task : c.tasks) {
      SCOPED_TRACE(testing::Message() << BackendName(c.backend) << "/"
                                      << HomTaskName(task));
      EngineOptions tripping;
      tripping.backend = c.backend;
      tripping.failpoints.trip_after_checks = 1;
      HomEngine governed(tripping);
      EngineResult r = MustRun(governed, p, task);
      if (c.backend == Backend::kUniform) {
        // The search reports its trip via the node-limit contract.
        EXPECT_TRUE(r.stats.governor.tripped);
        EXPECT_TRUE(r.stats.search.limit_hit);
        EXPECT_FALSE(r.decided);
      } else {
        ExpectCleanTrip(r, task);
        // The trip is on the record: the fallback log names the exhaustion.
        bool mentioned = false;
        for (const auto& f : r.explain.fallbacks) {
          if (f.find("exhausted") != std::string::npos) mentioned = true;
        }
        EXPECT_TRUE(mentioned) << r.explain.ToString();
      }

      // Reuse: the identical problem and an ungoverned engine agree with
      // the oracle — the trip left no torn cache behind.
      EngineOptions clean;
      clean.backend = c.backend;
      HomEngine fresh(clean);
      EngineResult ok = MustRun(fresh, p, task);
      EXPECT_FALSE(ok.stats.governor.enabled);
      if (task == HomTask::kDecide || task == HomTask::kWitness) {
        EXPECT_EQ(ok.decided, OracleDecide(a, b));
      }
    }
  }
}

TEST(GovernorEngineTest, ParallelMorselTripBehavesLikeSequential) {
  // A failpoint firing while several morsel workers are in flight must
  // honor the same clean-trip contract as the sequential path: the cancel
  // flag propagates through the MorselPool, in-flight morsels finish,
  // partial shards are discarded (no torn tables surface in the result),
  // and the identical problem immediately answers correctly afterwards.
  Rng rng(7010);
  auto vocab = MakeGraphVocabulary();
  Structure acyclic_a = PathStructure(vocab, 10);
  Structure cyclic_a = UndirectedCycleStructure(vocab, 7);
  Structure b = RandomGraphStructure(vocab, 5, 0.6, rng, true);

  struct Case {
    Backend backend;
    HomTask task;
    const Structure* a;
  };
  const std::vector<Case> cases = {
      {Backend::kAcyclic, HomTask::kCount, &acyclic_a},
      {Backend::kAcyclic, HomTask::kEnumerate, &acyclic_a},
      {Backend::kAcyclic, HomTask::kProject, &acyclic_a},
      {Backend::kTreewidth, HomTask::kDecide, &cyclic_a},
  };
  for (const Case& c : cases) {
    HomProblem p = MustProblem(HomProblem::FromStructures(*c.a, b));
    ASSERT_TRUE(p.SetProjection({0}).ok());

    // Ungoverned parallel baseline (already thread-invariant per the poly
    // oracle); the post-trip reuse check compares against it.
    EngineOptions clean;
    clean.backend = c.backend;
    clean.solve.num_threads = 4;
    EngineResult baseline = MustRun(HomEngine(clean), p, c.task);

    // Sweep the failpoint through the run so it lands in different
    // phases — including mid-morsel of the parallel passes.
    for (uint64_t after : {uint64_t{1}, uint64_t{3}, uint64_t{17},
                           uint64_t{200}}) {
      SCOPED_TRACE(testing::Message()
                   << BackendName(c.backend) << "/" << HomTaskName(c.task)
                   << " trip_after_checks=" << after);
      EngineOptions tripping = clean;
      tripping.failpoints.trip_after_checks = after;
      EngineResult r = MustRun(HomEngine(tripping), p, c.task);
      if (r.stats.governor.tripped) {
        ExpectCleanTrip(r, c.task);
      } else {
        // Failpoint beyond the run's poll count: the governed run must
        // then agree with the ungoverned baseline exactly.
        EXPECT_EQ(r.decided, baseline.decided);
        EXPECT_EQ(r.count, baseline.count);
        EXPECT_EQ(r.rows, baseline.rows);
      }
      // Reuse after the trip: no torn state behind the compiled problem.
      EngineResult again = MustRun(HomEngine(clean), p, c.task);
      EXPECT_EQ(again.decided, baseline.decided);
      EXPECT_EQ(again.count, baseline.count);
      EXPECT_EQ(again.rows, baseline.rows);
    }
  }
}

TEST(GovernorEngineTest, ChargeFailpointTripsTheTablePaths) {
  // trip_after_charges=1 fires on the first table/index growth, exercising
  // the memory-accounting trip path rather than the poll path.
  Rng rng(7002);
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 8);
  Structure b = RandomGraphStructure(vocab, 4, 0.6, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  for (Backend backend : {Backend::kAcyclic, Backend::kTreewidth}) {
    SCOPED_TRACE(BackendName(backend));
    EngineOptions options;
    options.backend = backend;
    options.failpoints.trip_after_charges = 1;
    HomEngine engine(options);
    EngineResult r = MustRun(engine, p, HomTask::kDecide);
    EXPECT_TRUE(r.stats.governor.tripped) << r.explain.ToString();
    EXPECT_EQ(r.stats.governor.cause, TripCause::kFailpoint);
    EXPECT_FALSE(r.decided);
  }
}

TEST(GovernorEngineTest, CompiledArtifactsKeepPointerIdentityAcrossTrips) {
  Rng rng(7003);
  auto vocab = MakeGraphVocabulary();
  Structure a = UndirectedCycleStructure(vocab, 7);
  Structure b = RandomGraphStructure(vocab, 4, 0.6, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  // Compile the source artifacts once, ungoverned.
  const ConjunctiveQuery* q_before = &p.SourceCanonicalQuery();
  const TreeDecomposition* dec_before = &p.SourceDecomposition();

  EngineOptions options;
  options.backend = Backend::kTreewidth;
  options.failpoints.trip_after_checks = 2;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  EXPECT_TRUE(r.stats.governor.tripped);

  // The cached artifacts survived the trip at the same addresses: the
  // governed run reused them instead of rebuilding (and the trip did not
  // evict them).
  EXPECT_EQ(q_before, &p.SourceCanonicalQuery());
  EXPECT_EQ(dec_before, &p.SourceDecomposition());

  HomEngine clean;
  EngineResult ok = MustRun(clean, p, HomTask::kDecide);
  EXPECT_EQ(ok.decided, OracleDecide(a, b));
}

TEST(GovernorEngineTest, TrippedDecompositionBuildCachesNothing) {
  Rng rng(7004);
  auto vocab = MakeGraphVocabulary();
  Structure a = UndirectedCycleStructure(vocab, 9);
  Structure b = RandomGraphStructure(vocab, 4, 0.6, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  ResourceGovernor tripping;
  GovernorFailpoints fp;
  fp.trip_after_checks = 1;
  tripping.set_failpoints(fp);
  Status s = p.EnsureSourceDecomposition(&tripping);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();

  // The next (unconstrained) build completes and is correct.
  ResourceGovernor roomy;
  ASSERT_TRUE(p.EnsureSourceDecomposition(&roomy).ok());
  EXPECT_TRUE(p.SourceDecomposition().ValidateFor(a).ok());
}

// ---- Deadlines and budgets end to end. ------------------------------------

TEST(GovernorEngineTest, DeadlineStopsAnUnfinishableCount) {
  // Counting hom(P20 -> K5) enumerates ~5 * 4^19 solutions: unfinishable.
  // A governed run must come back promptly with limit_hit, not hang.
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 20);
  Structure b = CliqueStructure(vocab, 5);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  EngineOptions options;
  options.backend = Backend::kUniform;
  options.deadline_ms = 50;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kCount);
  EXPECT_TRUE(r.stats.governor.tripped);
  EXPECT_EQ(r.stats.governor.cause, TripCause::kDeadline);
  EXPECT_TRUE(r.stats.search.limit_hit);
  // Overshoot is bounded by the poll stride: generous slack for CI noise,
  // but far below the hours the full count would take.
  EXPECT_LT(r.stats.governor.elapsed_ms, 5000u);

  auto count = engine.Count(p);
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorEngineTest, ParallelDeadlineOvershootBounded) {
  // Same guarantee with work-stealing workers: the shared trip flag stops
  // every worker within its poll stride.
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 20);
  Structure b = CliqueStructure(vocab, 5);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  EngineOptions options;
  options.backend = Backend::kUniform;
  options.solve.num_threads = 4;
  options.deadline_ms = 50;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kCount);
  EXPECT_TRUE(r.stats.governor.tripped);
  EXPECT_TRUE(r.stats.search.limit_hit);
  EXPECT_LT(r.stats.governor.elapsed_ms, 5000u);
}

TEST(GovernorEngineTest, MemoryBudgetTripsExplicitAcyclicEnumerate) {
  Rng rng(7005);
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 12);
  Structure b = CliqueStructure(vocab, 6);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  EngineOptions options;
  options.backend = Backend::kAcyclic;  // explicit: no admission demotion
  options.memory_budget_bytes = 512;    // far below the atom tables
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kEnumerate);
  EXPECT_TRUE(r.stats.governor.tripped) << r.explain.ToString();
  EXPECT_EQ(r.stats.governor.cause, TripCause::kMemory);
  EXPECT_TRUE(r.rows.empty());
  EXPECT_GT(r.stats.governor.peak_bytes, 512u);

  // Same problem, real budget: completes and the row count is the truth.
  EngineOptions roomy;
  roomy.backend = Backend::kAcyclic;
  roomy.memory_budget_bytes = 64u << 20;
  HomEngine ok_engine(roomy);
  EngineResult ok = MustRun(ok_engine, p, HomTask::kCount);
  EXPECT_FALSE(ok.stats.governor.tripped);
  EXPECT_EQ(ok.count, 6u * 5u * 5u * 5u * 5u * 5u * 5u * 5u * 5u * 5u * 5u *
                          5u);  // 6 * 5^11 homs P12 -> K6
}

TEST(GovernorEngineTest, AutoAdmissionDemotesToSearchBeforeBuilding) {
  Rng rng(7006);
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 10);
  Structure b = RandomGraphStructure(vocab, 8, 0.5, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  EngineOptions options;  // kAuto
  options.memory_budget_bytes = 256;  // admits nothing the DP would build
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  EXPECT_EQ(r.explain.chosen, Backend::kUniform) << r.explain.ToString();
  bool admission_note = false;
  for (const auto& f : r.explain.fallbacks) {
    if (f.find("admission refused") != std::string::npos) {
      admission_note = true;
    }
  }
  EXPECT_TRUE(admission_note) << r.explain.ToString();
  // The search streams: it decides correctly inside the same tiny budget.
  EXPECT_EQ(r.decided, OracleDecide(a, b));
  EXPECT_FALSE(r.stats.governor.tripped);
}

TEST(GovernorEngineTest, PreCancelledRunReturnsImmediately) {
  Rng rng(7007);
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 8);
  Structure b = RandomGraphStructure(vocab, 4, 0.6, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  std::atomic<bool> cancel{true};
  EngineOptions options;
  options.backend = Backend::kAcyclic;
  options.cancel = &cancel;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  EXPECT_TRUE(r.stats.governor.tripped);
  EXPECT_EQ(r.stats.governor.cause, TripCause::kCancelled);
  EXPECT_FALSE(r.decided);
}

TEST(GovernorEngineTest, GovernedRunThatFitsBudgetMatchesUngoverned) {
  // A budget generous enough to never trip must not change any answer.
  Rng rng(7008);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = StructureFromGraph(vocab, RandomTree(6 + rng.Below(5), rng));
    Structure b = RandomGraphStructure(vocab, 3 + rng.Below(3), 0.5, rng, true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

    EngineOptions governed;
    governed.deadline_ms = 60'000;
    governed.memory_budget_bytes = 256u << 20;
    HomEngine engine(governed);
    EngineResult r = MustRun(engine, p, HomTask::kWitness);
    EXPECT_TRUE(r.stats.governor.enabled);
    EXPECT_FALSE(r.stats.governor.tripped) << r.explain.ToString();
    EXPECT_EQ(r.decided, OracleDecide(a, b)) << "trial " << trial;
    if (r.decided) {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(IsHomomorphism(a, b, *r.witness));
    }
    EXPECT_NE(r.stats.ToJson().find("\"governor\":{"), std::string::npos);
  }
}

TEST(GovernorEngineTest, UniformTripKeepsVerifiedPrefix) {
  // The search's enumeration keeps solutions verified before the trip —
  // each is a real homomorphism — marked incomplete via limit_hit.
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 16);
  Structure b = CliqueStructure(vocab, 4);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));

  EngineOptions options;
  options.backend = Backend::kUniform;
  options.deadline_ms = 30;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kEnumerate);
  EXPECT_TRUE(r.stats.search.limit_hit);
  for (const auto& row : r.rows) {
    EXPECT_TRUE(IsHomomorphism(a, b, row));
  }
}

// ---- Input-reachable aborts converted to structured errors. ---------------

TEST(RobustInputTest, UniverseOverflowIsAParseError) {
  auto r = ParseStructure("universe 4294967296\nE/2: 0 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("universe"), std::string::npos);
  // The boundary itself is fine.
  EXPECT_TRUE(ParseStructure("universe 4294967295\nE/2:").ok());
}

TEST(RobustInputTest, CqParserRejectsArityMismatchWithoutAborting) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  auto q = ParseQuery("q(X) :- E(X, Y, Z).", vocab);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  auto unknown = ParseQuery("q(X) :- F(X, Y).", vocab);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(RobustInputTest, WideBooleanRelationClassifiesAsNonSchaefer) {
  // Arity 64 exceeds the BooleanRelation bitmask; classification must
  // degrade to "not Schaefer" (0) instead of CHECK-failing, and
  // SolveSchaefer must surface the dichotomy's Unsupported.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("W", 64);
  Structure b(vocab, 2);
  std::vector<Element> tuple(64, 0);
  b.AddTuple(0, tuple);
  EXPECT_EQ(ClassifyBooleanStructure(b), 0u);

  Structure a(vocab, 3);
  a.AddTuple(0, std::vector<Element>(64, 1));
  auto solved = SolveSchaefer(a, b);
  ASSERT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kUnsupported);
}

TEST(RobustInputTest, SetProjectionRejectsOutOfRangeElements) {
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 4);
  Structure b = PathStructure(vocab, 4);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
  Status s = p.SetProjection({0, 99});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(p.projection().empty());  // unchanged on failure
  EXPECT_TRUE(p.SetProjection({0, 3}).ok());
}

TEST(RobustInputTest, DatalogDefaultGoalStillResolves) {
  // The default-goal lookup (last rule's head) is now a structured error
  // path; the happy path must keep working.
  auto program = ParseDatalogProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- path(X, Y), edge(Y, Z).");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
}

}  // namespace
}  // namespace cqcs
