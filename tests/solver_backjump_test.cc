// Conflict-directed backjumping: hand-built instances with known conflict
// structure, asserting (via SolveStats) that the search actually jumps past
// irrelevant decisions, plus the enumeration regression a naive CBJ gets
// wrong — skipping sibling solutions after a subtree both reported a
// solution and exhausted.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/structure.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

SolveOptions WithCbj(Propagation propagation, bool cbj) {
  SolveOptions options;
  options.propagation = propagation;
  options.strategy.var_order = VarOrder::kLex;  // pin the decision sequence
  options.strategy.backjumping = cbj;
  return options;
}

// A: an isolated element 0 plus the edge E(1, 2). B: five vertices, no
// edges. Lexicographic order branches on the irrelevant element 0 first;
// the conflict (no B-edge to host E(1, 2)) never involves it, so CBJ must
// refute the instance after a single value of element 0 while chronological
// backtracking re-proves the same conflict under all five.
TEST(SolverBackjumpTest, FcJumpsPastIrrelevantDecision) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a(vocab, 3);
  a.AddTuple(0, {1, 2});
  Structure b(vocab, 5);  // no edges at all

  SolveStats chrono;
  BacktrackingSolver plain(a, b, WithCbj(Propagation::kForwardChecking, false));
  EXPECT_FALSE(plain.Solve(&chrono).has_value());
  EXPECT_EQ(chrono.backjumps, 0u);

  SolveStats stats;
  BacktrackingSolver cbj(a, b, WithCbj(Propagation::kForwardChecking, true));
  EXPECT_FALSE(cbj.Solve(&stats).has_value());
  EXPECT_GE(stats.backjumps, 1u);
  EXPECT_GE(stats.longest_backjump, 1u);
  EXPECT_LT(stats.nodes, chrono.nodes);
}

// The MAC variant: an isolated element plus an odd cycle (triangle), mapped
// into K2 padded with isolated vertices. Root GAC holds (every edge endpoint
// has both K2 values supported), so the odd-cycle conflict only surfaces
// after branching — two levels below the irrelevant first decision, which
// has |B| = 5 values for chronological search to waste.
TEST(SolverBackjumpTest, MacJumpsPastIrrelevantDecision) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a(vocab, 4);
  for (auto [x, y] : {std::pair<Element, Element>{1, 2}, {2, 3}, {3, 1}}) {
    a.AddTuple(0, {x, y});
    a.AddTuple(0, {y, x});
  }
  Structure b(vocab, 5);
  b.AddTuple(0, {0, 1});
  b.AddTuple(0, {1, 0});

  SolveStats chrono;
  BacktrackingSolver plain(a, b, WithCbj(Propagation::kMac, false));
  EXPECT_FALSE(plain.Solve(&chrono).has_value());

  SolveStats stats;
  BacktrackingSolver cbj(a, b, WithCbj(Propagation::kMac, true));
  EXPECT_FALSE(cbj.Solve(&stats).has_value());
  EXPECT_GE(stats.backjumps, 1u);
  EXPECT_LT(stats.nodes, chrono.nodes);
  EXPECT_GE(stats.max_conflict_set, 1u);
}

// Regression: enumeration must not treat "subtree exhausted after reporting
// solutions" as a conflict. A: isolated element 0 plus edge E(1, 2); B: one
// edge (0, 1) plus an isolated vertex. The only edge image is 1 -> 0,
// 2 -> 1, and element 0 ranges freely over all three B-vertices. After the
// x0 = 0 subtree reports its solution and exhausts, a naive CBJ computes an
// empty conflict set (the failures below never involve x0) and jumps the
// root — silently dropping the other two solutions.
TEST(SolverBackjumpTest, EnumerationSeesAllSolutionsUnderCbj) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a(vocab, 3);
  a.AddTuple(0, {1, 2});
  Structure b(vocab, 3);
  b.AddTuple(0, {0, 1});

  for (Propagation propagation :
       {Propagation::kForwardChecking, Propagation::kMac}) {
    std::set<Homomorphism> without;
    BacktrackingSolver plain(a, b, WithCbj(propagation, false));
    plain.ForEachSolution([&](const Homomorphism& h) {
      without.insert(h);
      return true;
    });
    ASSERT_EQ(without.size(), 3u);

    std::set<Homomorphism> with;
    BacktrackingSolver cbj(a, b, WithCbj(propagation, true));
    size_t delivered = cbj.ForEachSolution([&](const Homomorphism& h) {
      with.insert(h);
      return true;
    });
    EXPECT_EQ(delivered, 3u);
    EXPECT_EQ(with, without);

    // Same property through the projection enumerator: element 0 projects
    // to every B-vertex.
    BacktrackingSolver proj(a, b, WithCbj(propagation, true));
    const std::vector<Element> projection = {0};
    auto rows = proj.EnumerateProjections(projection);
    EXPECT_EQ(rows.size(), 3u);
  }
}

// CBJ must agree with chronological search on satisfiable instances too,
// and never jump past a frame whose variable is in the conflict.
TEST(SolverBackjumpTest, SatisfiableInstancesUnchanged) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a = UndirectedCycleStructure(vocab, 6);
  Structure b = CliqueStructure(vocab, 3);

  for (Propagation propagation :
       {Propagation::kForwardChecking, Propagation::kMac}) {
    BacktrackingSolver plain(a, b, WithCbj(propagation, false));
    BacktrackingSolver cbj(a, b, WithCbj(propagation, true));
    EXPECT_EQ(cbj.CountSolutions(), plain.CountSolutions());
    EXPECT_TRUE(cbj.Solve().has_value());
  }
}

}  // namespace
}  // namespace cqcs
