// Property checks on SolveStats invariants across random instances and
// strategies, plus the node_limit x restart interaction: restarting unwinds
// the trail, never the node accounting, and a limit hit mid-restart must
// still be reported as limit_hit.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/structure.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

bool OracleHasHom(const Structure& a, const Structure& b) {
  const size_t n = a.universe_size();
  const size_t d = b.universe_size();
  if (d == 0) return n == 0;
  Homomorphism h(n, 0);
  while (true) {
    bool ok = true;
    for (RelId id = 0; id < a.vocabulary()->size() && ok; ++id) {
      const Relation& ra = a.relation(id);
      const Relation& rb = b.relation(id);
      std::vector<Element> image(ra.arity());
      for (size_t t = 0; t < ra.tuple_count() && ok; ++t) {
        std::span<const Element> tup = ra.tuple(t);
        for (uint32_t p = 0; p < ra.arity(); ++p) image[p] = h[tup[p]];
        ok = rb.Contains(image);
      }
    }
    if (ok) return true;
    size_t i = 0;
    while (i < n && h[i] + 1 == d) h[i++] = 0;
    if (i == n) return false;
    ++h[i];
  }
}

std::vector<SolveOptions> RepresentativeConfigs() {
  std::vector<SolveOptions> configs;
  for (Propagation prop :
       {Propagation::kForwardChecking, Propagation::kMac}) {
    for (bool cbj : {false, true}) {
      for (bool restarts : {false, true}) {
        SolveOptions o;
        o.propagation = prop;
        o.strategy.var_order = cbj ? VarOrder::kDomWdeg : VarOrder::kMrv;
        o.strategy.val_order =
            restarts ? ValOrder::kLeastConstraining : ValOrder::kLex;
        o.strategy.backjumping = cbj;
        o.strategy.restarts = restarts;
        o.strategy.restart_base = 2;
        configs.push_back(o);
      }
    }
  }
  return configs;
}

void CheckInvariants(const SolveOptions& options, const SolveStats& stats,
                     size_t var_count) {
  EXPECT_LE(stats.backtracks, stats.nodes);
  EXPECT_LE(stats.longest_backjump, stats.backjumps);
  EXPECT_LE(stats.max_conflict_set, var_count);
  if (!options.strategy.backjumping) {
    EXPECT_EQ(stats.backjumps, 0u);
    EXPECT_EQ(stats.longest_backjump, 0u);
    EXPECT_EQ(stats.max_conflict_set, 0u);
  }
  if (!options.strategy.restarts) EXPECT_EQ(stats.restarts, 0u);
  if (options.node_limit == 0) {
    EXPECT_FALSE(stats.limit_hit);
  } else if (stats.limit_hit) {
    EXPECT_GT(stats.nodes, options.node_limit);
  } else {
    EXPECT_LE(stats.nodes, options.node_limit);
  }
}

TEST(SolverStatsTest, InvariantsOnRandomInstances) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(0x57a75ULL);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.Below(5);
    const size_t m = 1 + rng.Below(4);
    Structure a = RandomGraphStructure(vocab, n, 0.5, rng, /*symmetric=*/false);
    Structure b = RandomGraphStructure(vocab, m, 0.5, rng, /*symmetric=*/false);
    const bool oracle = OracleHasHom(a, b);
    for (SolveOptions options : RepresentativeConfigs()) {
      BacktrackingSolver solver(a, b, options);
      SolveStats stats;
      auto h = solver.Solve(&stats);
      CheckInvariants(options, stats, a.universe_size());
      // Without a node limit the answer is definitive.
      EXPECT_EQ(h.has_value(), oracle);

      // Enumeration entry points never restart (a restarted run would
      // re-deliver solutions), whatever the strategy says.
      SolveStats count_stats;
      solver.CountSolutions(SIZE_MAX, &count_stats);
      EXPECT_EQ(count_stats.restarts, 0u);
      CheckInvariants(options, count_stats, a.universe_size());
    }
  }
}

TEST(SolverStatsTest, LimitHitMeansUnknown) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(424242);
  int limit_hits = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 2 + rng.Below(4);
    Structure a = RandomGraphStructure(vocab, n, 0.6, rng, /*symmetric=*/true);
    Structure b = RandomGraphStructure(vocab, 3, 0.5, rng, /*symmetric=*/true);
    const bool oracle = OracleHasHom(a, b);
    for (SolveOptions options : RepresentativeConfigs()) {
      options.node_limit = 1 + rng.Below(6);
      BacktrackingSolver solver(a, b, options);
      SolveStats stats;
      auto h = solver.Solve(&stats);
      CheckInvariants(options, stats, a.universe_size());
      // A found witness is always real, limit or not; limit_hit and a
      // witness are mutually exclusive (the search stops at either).
      if (h.has_value()) {
        EXPECT_TRUE(oracle);
        EXPECT_FALSE(stats.limit_hit);
      }
      // Only a clean exhaustion proves absence.
      if (!h.has_value() && !stats.limit_hit) EXPECT_FALSE(oracle);
      if (stats.limit_hit) ++limit_hits;
    }
  }
  // The limits above are tight enough that the "unknown" branch is
  // genuinely exercised.
  EXPECT_GT(limit_hits, 0);
}

// The node_limit x restart interaction (the latent bug this PR fixes by
// construction): the node counter is cumulative across restarts, so a tiny
// Luby base cannot launder the limit, and a limit hit between restarts is
// reported.
TEST(SolverStatsTest, RestartDoesNotResetNodeCounter) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  // Odd cycle into K2: unsatisfiable with a search tree far above the
  // limit, and root-GAC-consistent so the search actually runs.
  Structure a = UndirectedCycleStructure(vocab, 9);
  Structure b = CliqueStructure(vocab, 2);

  SolveOptions options;
  options.propagation = Propagation::kForwardChecking;
  options.strategy.var_order = VarOrder::kLex;
  options.strategy.restarts = true;
  options.strategy.restart_base = 1;  // restart every few nodes
  options.node_limit = 30;

  BacktrackingSolver solver(a, b, options);
  SolveStats stats;
  EXPECT_FALSE(solver.Solve(&stats).has_value());
  EXPECT_TRUE(stats.limit_hit);
  // Counted every node across all runs: stopped exactly one past the limit.
  EXPECT_EQ(stats.nodes, options.node_limit + 1);
  // With cutoffs 1,1,2,... the limit was necessarily hit mid-restart.
  EXPECT_GE(stats.restarts, 1u);
}

TEST(SolverStatsTest, RestartedSearchTerminatesAndAgrees) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  SolveOptions options;
  options.strategy.restarts = true;
  options.strategy.restart_base = 1;
  options.strategy.var_order = VarOrder::kDomWdeg;  // decayed on restart

  // Unsatisfiable: the Luby cutoffs grow until one run exhausts the tree.
  Structure odd = UndirectedCycleStructure(vocab, 7);
  Structure k2 = CliqueStructure(vocab, 2);
  SolveStats unsat_stats;
  BacktrackingSolver unsat(odd, k2, options);
  EXPECT_FALSE(unsat.Solve(&unsat_stats).has_value());
  EXPECT_FALSE(unsat_stats.limit_hit);
  EXPECT_GE(unsat_stats.restarts, 1u);

  // Satisfiable: restarts still find the witness.
  Structure even = UndirectedCycleStructure(vocab, 8);
  SolveStats sat_stats;
  BacktrackingSolver sat(even, k2, options);
  EXPECT_TRUE(sat.Solve(&sat_stats).has_value());
  EXPECT_FALSE(sat_stats.limit_hit);
}

}  // namespace
}  // namespace cqcs
