// Tests for the DynamicBitset word-level container.

#include <gtest/gtest.h>

#include "common/bitset.h"
#include <set>

#include "common/rng.h"

namespace cqcs {
namespace {

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynamicBitsetTest, FillConstructorTrimsTail) {
  DynamicBitset b(70, /*fill=*/true);
  EXPECT_EQ(b.count(), 70u);
  b.SetAll();
  EXPECT_EQ(b.count(), 70u);  // no stray bits beyond size
  b.ResetAll();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitsetTest, FindFirstNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.FindFirst(), DynamicBitset::npos);
  b.set(3);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.FindFirst(), 3u);
  EXPECT_EQ(b.FindNext(3), 64u);
  EXPECT_EQ(b.FindNext(64), 199u);
  EXPECT_EQ(b.FindNext(199), DynamicBitset::npos);
}

TEST(DynamicBitsetTest, ForEachVisitsInOrder) {
  DynamicBitset b(100);
  std::vector<size_t> expected = {0, 17, 63, 64, 99};
  for (size_t i : expected) b.set(i);
  std::vector<size_t> seen;
  b.ForEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitsetTest, BitwiseOpsAndSubset) {
  DynamicBitset a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(1);
  DynamicBitset a_and = a;
  a_and &= b;
  EXPECT_EQ(a_and.count(), 1u);
  EXPECT_TRUE(a_and.test(1));
  DynamicBitset a_or = a;
  a_or |= b;
  EXPECT_EQ(a_or.count(), 2u);
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(a == a_or);
}

TEST(DynamicBitsetTest, RandomizedAgainstReference) {
  Rng rng(7);
  DynamicBitset b(257);
  std::set<size_t> reference;
  for (int op = 0; op < 2000; ++op) {
    size_t i = rng.Below(257);
    if (rng.Chance(0.5)) {
      b.set(i);
      reference.insert(i);
    } else {
      b.reset(i);
      reference.erase(i);
    }
  }
  EXPECT_EQ(b.count(), reference.size());
  for (size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(b.test(i), reference.count(i) > 0) << i;
  }
  // Iteration order agrees with the sorted reference.
  std::vector<size_t> seen;
  b.ForEach([&](size_t i) { seen.push_back(i); });
  std::vector<size_t> expected(reference.begin(), reference.end());
  EXPECT_EQ(seen, expected);
}

}  // namespace
}  // namespace cqcs
