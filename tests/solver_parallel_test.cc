// The work-stealing parallel search (src/solver/parallel.cc): stats
// merging, cancellation on the first solution, node_limit as a global
// budget across workers, and the num_threads == 1 sequential regression.
//
// A structural property this suite leans on: a stolen subproblem replays
// the donor's exact decision prefix through the same propagation, so the
// stealer reaches the identical domain state and explores the identical
// subtree. Under a deterministic strategy with no conflict tracking
// (default MRV + lex values), the union of all workers' nodes is therefore
// exactly the sequential search tree — enumeration node/backtrack totals
// are thread-count invariant, not just the solution sets.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/homomorphism.h"
#include "core/structure.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

// A satisfiable instance with a large solution count and a nontrivial tree:
// 3-colorings of a sparse random graph.
Structure SparseGraph(size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  return RandomGraphStructure(MakeGraphVocabulary(), n, p, rng,
                              /*symmetric=*/true);
}

TEST(SolverParallelTest, OneThreadIsExactlySequential) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a = SparseGraph(12, 0.3, 77);
  Structure b = CliqueStructure(vocab, 3);

  SolveOptions sequential;  // num_threads defaults to 1
  SolveOptions one_thread;
  one_thread.num_threads = 1;

  SolveStats seq_stats, one_stats;
  BacktrackingSolver s1(a, b, sequential);
  BacktrackingSolver s2(a, b, one_thread);
  auto h1 = s1.Solve(&seq_stats);
  auto h2 = s2.Solve(&one_stats);

  ASSERT_EQ(h1.has_value(), h2.has_value());
  if (h1.has_value()) EXPECT_EQ(*h1, *h2);
  EXPECT_EQ(seq_stats.nodes, one_stats.nodes);
  EXPECT_EQ(seq_stats.backtracks, one_stats.backtracks);
  EXPECT_EQ(seq_stats.restarts, one_stats.restarts);
  // The sequential path never spins up the parallel machinery.
  EXPECT_EQ(one_stats.workers, 0u);
  EXPECT_EQ(one_stats.splits, 0u);
  EXPECT_EQ(one_stats.steals, 0u);

  EXPECT_EQ(s1.CountSolutions(), s2.CountSolutions());
}

TEST(SolverParallelTest, EnumerationNodeTotalsAreThreadCountInvariant) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a = SparseGraph(13, 0.25, 4242);
  Structure b = CliqueStructure(vocab, 3);

  SolveOptions options;  // default MRV + lex: deterministic, no CBJ
  BacktrackingSolver seq(a, b, options);
  SolveStats seq_stats;
  const size_t expected = seq.CountSolutions(SIZE_MAX, &seq_stats);
  ASSERT_GT(seq_stats.nodes, 0u);

  for (unsigned threads : {2u, 4u, 8u}) {
    SolveOptions par = options;
    par.num_threads = threads;
    BacktrackingSolver solver(a, b, par);
    SolveStats stats;
    EXPECT_EQ(solver.CountSolutions(SIZE_MAX, &stats), expected);
    // Same tree, partitioned: totals match the sequential run exactly.
    EXPECT_EQ(stats.nodes, seq_stats.nodes) << threads << " threads";
    EXPECT_EQ(stats.backtracks, seq_stats.backtracks) << threads
                                                      << " threads";
    EXPECT_EQ(stats.workers, threads);
    EXPECT_FALSE(stats.limit_hit);
    // Every steal serves a split, and a split donates at least one
    // subproblem — so splits can never outnumber steals... the other way:
    // steals >= splits is not guaranteed either (donations can sit in the
    // pool when the search ends early). Sanity-bound both instead.
    EXPECT_LE(stats.splits, stats.nodes);
    EXPECT_LE(stats.steals, stats.nodes);
  }
}

TEST(SolverParallelTest, WorkIsActuallyStolen) {
  // An unsatisfiable refutation whose tree dwarfs worker startup, so idle
  // workers' split requests get observed. Scheduling on a loaded host can
  // still let one worker finish before the others wake, so retry a few
  // times — one split anywhere is the property under test.
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(31337);
  Structure clique = CliqueStructure(vocab, 6);
  Structure g = RandomGraphStructure(vocab, 26, 0.45, rng, /*symmetric=*/true);

  SolveOptions options;
  options.num_threads = 4;
  SolveStats stats;
  for (int attempt = 0; attempt < 10; ++attempt) {
    BacktrackingSolver solver(clique, g, options);
    stats = SolveStats{};
    EXPECT_FALSE(solver.Solve(&stats).has_value());
    EXPECT_EQ(stats.workers, 4u);
    if (stats.splits > 0 && stats.steals > 0) break;
  }
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.steals, 0u);
}

TEST(SolverParallelTest, FirstSolutionCancelsTheFleet) {
  // Many solutions: whichever worker wins, the witness must be real and the
  // fleet must stop (the search returning at all is the termination check).
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a = SparseGraph(16, 0.2, 1234);
  Structure b = CliqueStructure(vocab, 3);

  for (unsigned threads : {2u, 4u, 8u}) {
    SolveOptions options;
    options.num_threads = threads;
    BacktrackingSolver solver(a, b, options);
    SolveStats stats;
    auto h = solver.Solve(&stats);
    ASSERT_TRUE(h.has_value()) << threads << " threads";
    EXPECT_TRUE(IsHomomorphism(a, b, *h)) << threads << " threads";
    EXPECT_FALSE(stats.limit_hit);
    EXPECT_EQ(stats.workers, threads);
  }
}

TEST(SolverParallelTest, ForEachSolutionStopsOnCallbackFalse) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure a = SparseGraph(12, 0.25, 555);
  Structure b = CliqueStructure(vocab, 3);

  SolveOptions options;
  options.num_threads = 4;
  BacktrackingSolver solver(a, b, options);
  size_t seen = 0;
  const size_t delivered = solver.ForEachSolution([&](const Homomorphism& h) {
    EXPECT_TRUE(IsHomomorphism(a, b, h));
    return ++seen < 3;
  });
  // Deliveries are serialized, so the early stop is exact — no overshoot
  // from racing workers.
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(seen, 3u);
}

TEST(SolverParallelTest, NodeLimitIsAGlobalBudget) {
  // Unsatisfiable and far larger than the limit: K5 into a triangle-rich
  // but K5-free graph.
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(31337);
  Structure clique = CliqueStructure(vocab, 6);
  Structure g = RandomGraphStructure(vocab, 24, 0.4, rng, /*symmetric=*/true);

  for (unsigned threads : {2u, 4u, 8u}) {
    SolveOptions options;
    options.num_threads = threads;
    options.node_limit = 200;
    BacktrackingSolver solver(clique, g, options);
    SolveStats stats;
    auto h = solver.Solve(&stats);
    EXPECT_FALSE(h.has_value());
    ASSERT_TRUE(stats.limit_hit) << threads << " threads";
    // The budget is enforced against the shared counter: the crossing
    // worker stops everyone, and each other worker can have at most one
    // node in flight past the line.
    EXPECT_GT(stats.nodes, options.node_limit);
    EXPECT_LE(stats.nodes, options.node_limit + threads);
  }
}

TEST(SolverParallelTest, ZeroMeansHardwareConcurrency) {
  // num_threads = 0 must resolve to *something* sane and solve correctly
  // whatever the host's core count is.
  VocabularyPtr vocab = MakeGraphVocabulary();
  Structure even = UndirectedCycleStructure(vocab, 8);
  Structure odd = UndirectedCycleStructure(vocab, 9);
  Structure k2 = CliqueStructure(vocab, 2);

  SolveOptions options;
  options.num_threads = 0;
  BacktrackingSolver sat(even, k2, options);
  auto h = sat.Solve();
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(IsHomomorphism(even, k2, *h));
  BacktrackingSolver unsat(odd, k2, options);
  EXPECT_FALSE(unsat.Solve().has_value());
}

TEST(SolverParallelTest, ParallelWithAllStrategyLevers) {
  // CBJ + dom/wdeg + LCV + restarts, in parallel: heuristics and conflict
  // sets are worker-local, restarts are per-worker and Solve-only; the
  // answer must still be right on both satisfiable and refuted instances.
  VocabularyPtr vocab = MakeGraphVocabulary();
  SolveOptions options;
  options.num_threads = 4;
  options.strategy.backjumping = true;
  options.strategy.var_order = VarOrder::kDomWdeg;
  options.strategy.val_order = ValOrder::kLeastConstraining;
  options.strategy.restarts = true;
  options.strategy.restart_base = 4;

  Structure odd = UndirectedCycleStructure(vocab, 11);
  Structure k2 = CliqueStructure(vocab, 2);
  BacktrackingSolver unsat(odd, k2, options);
  SolveStats stats;
  EXPECT_FALSE(unsat.Solve(&stats).has_value());
  EXPECT_FALSE(stats.limit_hit);

  Structure even = UndirectedCycleStructure(vocab, 10);
  BacktrackingSolver sat(even, k2, options);
  auto h = sat.Solve();
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(IsHomomorphism(even, k2, *h));

  // Enumeration ignores restarts (they would re-deliver solutions) but
  // keeps CBJ; counts must match the sequential run.
  SolveOptions seq = options;
  seq.num_threads = 1;
  BacktrackingSolver seq_solver(even, k2, seq);
  BacktrackingSolver par_solver(even, k2, options);
  SolveStats par_count_stats;
  EXPECT_EQ(par_solver.CountSolutions(SIZE_MAX, &par_count_stats),
            seq_solver.CountSolutions());
  EXPECT_EQ(par_count_stats.restarts, 0u);
}

TEST(SolverParallelTest, DegenerateInstances) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  SolveOptions options;
  options.num_threads = 4;

  // The solver aliases its input structures (CspInstance keeps pointers),
  // so they must outlive it — locals, not temporaries.
  Structure empty(vocab, 0);
  Structure k3 = CliqueStructure(vocab, 3);
  Structure path = PathStructure(vocab, 3);

  // Empty A: exactly one (empty) homomorphism, found without any branching.
  BacktrackingSolver empty_a(empty, k3, options);
  EXPECT_EQ(empty_a.CountSolutions(), 1u);

  // Empty B with nonempty A: no assignments at all.
  BacktrackingSolver empty_b(path, empty, options);
  EXPECT_EQ(empty_b.CountSolutions(), 0u);

  // Root-refuted instance (self-loop into a loopless clique): every
  // worker's root propagation fails; nobody deadlocks on the pool.
  Structure loop(vocab, 1);
  loop.AddTuple(0, {0, 0});
  BacktrackingSolver refuted(loop, k3, options);
  SolveStats stats;
  EXPECT_FALSE(refuted.Solve(&stats).has_value());
  EXPECT_EQ(stats.nodes, 0u);
}

}  // namespace
}  // namespace cqcs
