// Tests for the generic backtracking solver and GAC propagation.

#include <gtest/gtest.h>

#include "core/ops.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

VocabularyPtr GraphVocab() {
  auto v = std::make_shared<Vocabulary>();
  v->AddRelation("E", 2);
  return v;
}

Structure DirectedCycle(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    s.AddTuple(0, {static_cast<Element>(i), static_cast<Element>((i + 1) % n)});
  }
  return s;
}

Structure UndirectedCycle(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    auto u = static_cast<Element>(i);
    auto v = static_cast<Element>((i + 1) % n);
    s.AddTuple(0, {u, v});
    s.AddTuple(0, {v, u});
  }
  return s;
}

Structure Clique(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        s.AddTuple(0, {static_cast<Element>(i), static_cast<Element>(j)});
      }
    }
  }
  return s;
}

TEST(CspInstanceTest, ExtractsConstraints) {
  auto vocab = GraphVocab();
  Structure a = DirectedCycle(vocab, 3);
  Structure b = DirectedCycle(vocab, 3);
  CspInstance csp(a, b);
  EXPECT_EQ(csp.var_count(), 3u);
  EXPECT_EQ(csp.domain_size(), 3u);
  EXPECT_EQ(csp.constraints().size(), 3u);
  EXPECT_EQ(csp.constraints_of(0).size(), 2u);  // in two edges
}

TEST(CspInstanceTest, RepeatedVariablesInScope) {
  auto vocab = GraphVocab();
  Structure a(vocab, 1);
  a.AddTuple(0, {0, 0});  // self loop in A
  Structure b = DirectedCycle(vocab, 3);  // loopless
  EXPECT_FALSE(HasHomomorphism(a, b));
  Structure loop(vocab, 1);
  loop.AddTuple(0, {0, 0});
  EXPECT_TRUE(HasHomomorphism(a, loop));
}

TEST(GacTest, DetectsTrivialInconsistency) {
  auto vocab = GraphVocab();
  Structure a(vocab, 2);
  a.AddTuple(0, {0, 1});
  Structure b(vocab, 2);  // no edges at all
  CspInstance csp(a, b);
  auto domains = csp.FullDomains();
  EXPECT_FALSE(EstablishGac(csp, domains));
}

TEST(GacTest, PrunesUnsupportedValues) {
  auto vocab = GraphVocab();
  // A: single edge (0,1). B: path 0->1. GAC leaves dom(0)={0}, dom(1)={1}.
  Structure a(vocab, 2);
  a.AddTuple(0, {0, 1});
  Structure b(vocab, 2);
  b.AddTuple(0, {0, 1});
  CspInstance csp(a, b);
  auto domains = csp.FullDomains();
  ASSERT_TRUE(EstablishGac(csp, domains));
  EXPECT_EQ(domains[0].count(), 1u);
  EXPECT_TRUE(domains[0].test(0));
  EXPECT_EQ(domains[1].count(), 1u);
  EXPECT_TRUE(domains[1].test(1));
}

TEST(SolverTest, EvenCycleMapsToEdge) {
  auto vocab = GraphVocab();
  Structure c6 = UndirectedCycle(vocab, 6);
  Structure k2 = UndirectedCycle(vocab, 2);  // single undirected edge
  auto h = FindHomomorphism(c6, k2);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(IsHomomorphism(c6, k2, *h));
}

TEST(SolverTest, OddCycleDoesNotMapToEdge) {
  auto vocab = GraphVocab();
  Structure c5 = UndirectedCycle(vocab, 5);
  Structure k2 = UndirectedCycle(vocab, 2);
  EXPECT_FALSE(HasHomomorphism(c5, k2));
}

TEST(SolverTest, OddCycleMapsToTriangle) {
  auto vocab = GraphVocab();
  Structure c5 = UndirectedCycle(vocab, 5);
  Structure k3 = Clique(vocab, 3);
  auto h = FindHomomorphism(c5, k3);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(IsHomomorphism(c5, k3, *h));
}

TEST(SolverTest, DirectedCycleDivisibility) {
  // C_n -> C_m for directed cycles iff m divides n.
  auto vocab = GraphVocab();
  for (size_t n = 2; n <= 9; ++n) {
    for (size_t m = 2; m <= 6; ++m) {
      Structure cn = DirectedCycle(vocab, n);
      Structure cm = DirectedCycle(vocab, m);
      EXPECT_EQ(HasHomomorphism(cn, cm), n % m == 0)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(SolverTest, EmptyStructureAlwaysMaps) {
  auto vocab = GraphVocab();
  Structure empty(vocab, 0);
  Structure any = DirectedCycle(vocab, 3);
  auto h = FindHomomorphism(empty, any);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->empty());
}

TEST(SolverTest, IsolatedElementsNeedNonemptyTarget) {
  auto vocab = GraphVocab();
  Structure a(vocab, 2);  // two isolated elements
  Structure b(vocab, 1);  // single element, no edges
  EXPECT_TRUE(HasHomomorphism(a, b));
  Structure b0(vocab, 0);
  EXPECT_FALSE(HasHomomorphism(a, b0));
}

TEST(SolverTest, ForwardCheckingAgreesWithMac) {
  auto vocab = GraphVocab();
  for (size_t n = 3; n <= 7; ++n) {
    Structure cn = UndirectedCycle(vocab, n);
    Structure k3 = Clique(vocab, 3);
    SolveOptions fc;
    fc.propagation = Propagation::kForwardChecking;
    BacktrackingSolver fc_solver(cn, k3, fc);
    BacktrackingSolver mac_solver(cn, k3);
    EXPECT_EQ(fc_solver.Solve().has_value(), mac_solver.Solve().has_value());
  }
}

TEST(SolverTest, CountSolutionsTriangleToTriangle) {
  // Homomorphisms K3 -> K3 are exactly the 6 permutations (3-colorings of a
  // triangle with distinct colors).
  auto vocab = GraphVocab();
  Structure k3 = Clique(vocab, 3);
  BacktrackingSolver solver(k3, k3);
  EXPECT_EQ(solver.CountSolutions(), 6u);
}

TEST(SolverTest, CountRespectsLimit) {
  auto vocab = GraphVocab();
  Structure k3 = Clique(vocab, 3);
  BacktrackingSolver solver(k3, k3);
  EXPECT_EQ(solver.CountSolutions(4), 4u);
}

TEST(SolverTest, ForEachSolutionVisitsAll) {
  auto vocab = GraphVocab();
  Structure path(vocab, 2);
  path.AddTuple(0, {0, 1});
  Structure k3 = Clique(vocab, 3);
  size_t count = 0;
  BacktrackingSolver solver(path, k3);
  solver.ForEachSolution([&](const Homomorphism& h) {
    EXPECT_TRUE(IsHomomorphism(path, k3, h));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 6u);  // ordered pairs of distinct colors
}

TEST(SolverTest, EnumerateProjections) {
  auto vocab = GraphVocab();
  // A: path x -> y -> z. B: directed 3-cycle. Project onto {x}: every
  // B-element starts some path, so we get all 3 answers.
  Structure path(vocab, 3);
  path.AddTuple(0, {0, 1});
  path.AddTuple(0, {1, 2});
  Structure c3 = DirectedCycle(vocab, 3);
  BacktrackingSolver solver(path, c3);
  std::vector<Element> proj = {0};
  auto rows = solver.EnumerateProjections(proj);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(SolverTest, EnumerateProjectionsDedupes) {
  auto vocab = GraphVocab();
  Structure path(vocab, 2);
  path.AddTuple(0, {0, 1});
  Structure k3 = Clique(vocab, 3);
  BacktrackingSolver solver(path, k3);
  std::vector<Element> proj = {0};
  auto rows = solver.EnumerateProjections(proj);
  EXPECT_EQ(rows.size(), 3u);  // 6 homs but 3 distinct first components
}

TEST(SolverTest, NodeLimitReportsUnknown) {
  auto vocab = GraphVocab();
  Structure big = Clique(vocab, 8);
  Structure k7 = Clique(vocab, 7);  // no hom: needs 8 colors
  SolveOptions options;
  options.node_limit = 5;
  options.propagation = Propagation::kForwardChecking;
  BacktrackingSolver solver(big, k7, options);
  SolveStats stats;
  auto h = solver.Solve(&stats);
  EXPECT_FALSE(h.has_value());
  EXPECT_TRUE(stats.limit_hit);
}

TEST(SolverTest, ProductIsGreatestLowerBound) {
  // hom(C -> A x B) iff hom(C -> A) and hom(C -> B).
  auto vocab = GraphVocab();
  Structure c4 = UndirectedCycle(vocab, 4);
  Structure k2 = UndirectedCycle(vocab, 2);
  Structure k3 = Clique(vocab, 3);
  Structure prod = Product(k2, k3);
  EXPECT_TRUE(HasHomomorphism(c4, prod));
  Structure c3 = UndirectedCycle(vocab, 3);
  // C3 -> K3 but not C3 -> K2, so not into the product.
  EXPECT_FALSE(HasHomomorphism(c3, prod));
}

}  // namespace
}  // namespace cqcs
