// Tests for canonical databases, Chandra–Merlin containment (Theorem 2.1),
// evaluation, and minimization.

#include <gtest/gtest.h>

#include "cq/containment.h"
#include "cq/parser.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

ConjunctiveQuery MustParse(std::string_view text, VocabularyPtr vocab = {}) {
  auto q = vocab == nullptr ? ParseQuery(text) : ParseQuery(text, vocab);
  CQCS_CHECK_MSG(q.ok(), q.status().ToString());
  return *std::move(q);
}

VocabularyPtr GraphVocab() {
  auto v = std::make_shared<Vocabulary>();
  v->AddRelation("E", 2);
  return v;
}

TEST(CanonicalDbTest, PaperExample) {
  // D_Q for Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2) has facts
  // P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2), P1(X1), P2(X2)  (Section 2).
  auto q = MustParse("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).");
  CanonicalDb db = MakeCanonicalDbWithHeadMarkers(q);
  EXPECT_EQ(db.structure.universe_size(), 5u);
  EXPECT_EQ(db.structure.TotalTuples(), 5u);  // 3 body facts + 2 markers
  EXPECT_EQ(db.vocabulary->size(), 4u);       // P, R, __head_0, __head_1
  ASSERT_EQ(db.head.size(), 2u);
  auto h0 = db.vocabulary->FindRelation("__head_0");
  ASSERT_TRUE(h0.has_value());
  Element marker[] = {db.head[0]};
  EXPECT_TRUE(db.structure.relation(*h0).Contains(marker));
}

TEST(CanonicalDbTest, WithoutMarkersMatchesBody) {
  auto q = MustParse("Q(X) :- E(X, Y).");
  CanonicalDb db = MakeCanonicalDb(q);
  EXPECT_EQ(db.vocabulary->size(), 1u);
  EXPECT_EQ(db.structure.TotalTuples(), 1u);
}

TEST(ContainmentTest, PathsContainLongerPaths) {
  // Q1: path of length 2 from X to Y; Q2: edge from X to Y... containment of
  // "there is a 2-path" in "there is an edge" fails, but a 2-path query is
  // contained in a 1-path (reachability-style weakening) when the weaker
  // query relaxes endpoints. Classic sanity pair: identical queries.
  auto vocab = GraphVocab();
  auto q1 = MustParse("Q(X, Y) :- E(X, Z), E(Z, Y).", vocab);
  auto q2 = MustParse("Q(X, Y) :- E(X, Z), E(Z, Y).", vocab);
  auto r = IsContained(q1, q2);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(ContainmentTest, SpecializationIsContained) {
  auto vocab = GraphVocab();
  // Q1 asks for a triangle through X; Q2 asks for an edge out of X.
  auto q1 = MustParse("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).", vocab);
  auto q2 = MustParse("Q(X) :- E(X, Y).", vocab);
  EXPECT_TRUE(*IsContained(q1, q2));
  EXPECT_FALSE(*IsContained(q2, q1));
}

TEST(ContainmentTest, WitnessIsHomomorphism) {
  auto vocab = GraphVocab();
  auto q1 = MustParse("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).", vocab);
  auto q2 = MustParse("Q(X) :- E(X, Y).", vocab);
  auto r = Contains(q1, q2);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->contained);
  ASSERT_TRUE(r->witness.has_value());
  CanonicalDb d1 = MakeCanonicalDbWithHeadMarkers(q1);
  CanonicalDb d2 = MakeCanonicalDbWithHeadMarkers(q2);
  EXPECT_TRUE(IsHomomorphism(d2.structure, d1.structure, *r->witness));
}

TEST(ContainmentTest, HeadOrderDistinguishes) {
  auto vocab = GraphVocab();
  auto q1 = MustParse("Q(X, Y) :- E(X, Y).", vocab);
  auto q2 = MustParse("Q(Y, X) :- E(X, Y).", vocab);
  // Q1 returns edges; Q2 returns reversed edges. Neither contains the other.
  EXPECT_FALSE(*IsContained(q1, q2));
  EXPECT_FALSE(*IsContained(q2, q1));
}

TEST(ContainmentTest, RepeatedHeadVariables) {
  auto vocab = GraphVocab();
  auto q1 = MustParse("Q(X, X) :- E(X, X).", vocab);
  auto q2 = MustParse("Q(X, Y) :- E(X, Y).", vocab);
  EXPECT_TRUE(*IsContained(q1, q2));
  EXPECT_FALSE(*IsContained(q2, q1));
}

TEST(ContainmentTest, BooleanQueries) {
  auto vocab = GraphVocab();
  // "has a triangle" ⊆ "has an edge" ⊆ "has a walk of length 2".
  auto tri = MustParse("Q() :- E(X, Y), E(Y, Z), E(Z, X).", vocab);
  auto edge = MustParse("Q() :- E(X, Y).", vocab);
  auto walk2 = MustParse("Q() :- E(X, Y), E(Y, Z).", vocab);
  EXPECT_TRUE(*IsContained(tri, edge));
  EXPECT_FALSE(*IsContained(edge, tri));
  // A single edge does NOT guarantee a 2-walk (its endpoint may be a sink),
  // so the containment only goes one way.
  EXPECT_FALSE(*IsContained(edge, walk2));
  EXPECT_TRUE(*IsContained(walk2, edge));
}

TEST(ContainmentTest, MismatchedInputsRejected) {
  auto vocab = GraphVocab();
  auto q1 = MustParse("Q(X, Y) :- E(X, Y).", vocab);
  auto q2 = MustParse("Q(X) :- E(X, Y).", vocab);
  EXPECT_FALSE(IsContained(q1, q2).ok());  // arity mismatch
  auto other = MustParse("Q(X, Y) :- F(X, Y).");
  EXPECT_FALSE(IsContained(q1, other).ok());  // vocabulary mismatch
}

TEST(ContainmentTest, AgreesWithEvaluationCharacterization) {
  // Theorem 2.1: the homomorphism test and the "tuple in Q2(D_Q1)" test
  // must agree on every pair.
  auto vocab = GraphVocab();
  std::vector<ConjunctiveQuery> queries = {
      MustParse("Q(X) :- E(X, Y).", vocab),
      MustParse("Q(X) :- E(X, X).", vocab),
      MustParse("Q(X) :- E(X, Y), E(Y, Z).", vocab),
      MustParse("Q(X) :- E(X, Y), E(Y, X).", vocab),
      MustParse("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).", vocab),
      MustParse("Q(Y) :- E(X, Y).", vocab),
  };
  for (const auto& a : queries) {
    for (const auto& b : queries) {
      auto via_hom = IsContained(a, b);
      auto via_eval = IsContainedViaEvaluation(a, b);
      ASSERT_TRUE(via_hom.ok());
      ASSERT_TRUE(via_eval.ok());
      EXPECT_EQ(*via_hom, *via_eval)
          << ToString(a) << "  vs  " << ToString(b);
    }
  }
}

TEST(ContainmentTest, HomomorphismIffCanonicalQueryContainment) {
  // Section 2: hom(A -> B) iff Q_B ⊆ Q_A.
  auto vocab = GraphVocab();
  Structure c4(vocab, 4);
  for (int i = 0; i < 4; ++i) {
    c4.AddTuple(0, {static_cast<Element>(i), static_cast<Element>((i + 1) % 4)});
  }
  Structure c2(vocab, 2);
  c2.AddTuple(0, {0, 1});
  c2.AddTuple(0, {1, 0});
  ConjunctiveQuery qc4 = CanonicalQuery(c4);
  ConjunctiveQuery qc2 = CanonicalQuery(c2);
  EXPECT_TRUE(HasHomomorphism(c4, c2));
  EXPECT_TRUE(*IsContained(qc2, qc4));
  // No hom C2 -> C4 (a 2-cycle cannot wind around a 4-cycle).
  EXPECT_FALSE(HasHomomorphism(c2, c4));
  EXPECT_FALSE(*IsContained(qc4, qc2));
}

TEST(EvaluateTest, PathEndpoints) {
  auto vocab = GraphVocab();
  auto q = MustParse("Q(X, Y) :- E(X, Z), E(Z, Y).", vocab);
  Structure d(vocab, 4);  // path 0 -> 1 -> 2 -> 3
  d.AddTuple(0, {0, 1});
  d.AddTuple(0, {1, 2});
  d.AddTuple(0, {2, 3});
  auto rows = Evaluate(q, d);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);  // (0,2) and (1,3)
  std::set<std::vector<Element>> expected = {{0, 2}, {1, 3}};
  std::set<std::vector<Element>> got(rows->begin(), rows->end());
  EXPECT_EQ(got, expected);
}

TEST(EvaluateTest, BooleanQueryOnDatabase) {
  auto vocab = GraphVocab();
  auto tri = MustParse("Q() :- E(X, Y), E(Y, Z), E(Z, X).", vocab);
  Structure acyclic(vocab, 3);
  acyclic.AddTuple(0, {0, 1});
  acyclic.AddTuple(0, {1, 2});
  EXPECT_FALSE(*EvaluateBoolean(tri, acyclic));
  Structure triangle(vocab, 3);
  triangle.AddTuple(0, {0, 1});
  triangle.AddTuple(0, {1, 2});
  triangle.AddTuple(0, {2, 0});
  EXPECT_TRUE(*EvaluateBoolean(tri, triangle));
}

TEST(EvaluateTest, VocabularyMismatchRejected) {
  auto q = MustParse("Q(X) :- E(X, Y).");
  auto other = std::make_shared<Vocabulary>();
  other->AddRelation("F", 2);
  Structure d(other, 2);
  EXPECT_FALSE(Evaluate(q, d).ok());
}

TEST(MinimizeTest, RedundantAtomRemoved) {
  auto vocab = GraphVocab();
  // E(X,Y), E(X,Z) — the second atom folds onto the first (Z := Y).
  auto q = MustParse("Q(X) :- E(X, Y), E(X, Z).", vocab);
  auto m = Minimize(q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atoms().size(), 1u);
  EXPECT_TRUE(*AreEquivalent(q, *m));
}

TEST(MinimizeTest, CoreIsStable) {
  auto vocab = GraphVocab();
  auto q = MustParse("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).", vocab);
  auto m = Minimize(q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atoms().size(), 3u);  // the triangle is already a core
}

TEST(MinimizeTest, DirectedPathIsCore) {
  auto vocab = GraphVocab();
  // The canonical database of a directed path is a core (a directed path
  // admits no homomorphism onto a shorter one), so nothing can be dropped.
  auto q = MustParse("Q() :- E(A, B), E(B, C), E(C, D), E(D, F).", vocab);
  auto m = Minimize(q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atoms().size(), 4u);
  EXPECT_TRUE(*AreEquivalent(q, *m));
}

TEST(MinimizeTest, ParallelWalksFold) {
  auto vocab = GraphVocab();
  // Two disjoint copies of the same 2-walk pattern fold onto one copy.
  auto q = MustParse("Q() :- E(A, B), E(B, C), E(X, Y), E(Y, Z).", vocab);
  auto m = Minimize(q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atoms().size(), 2u);
  EXPECT_TRUE(*AreEquivalent(q, *m));
}

TEST(MinimizeTest, HeadVariablesBlockFolding) {
  auto vocab = GraphVocab();
  // With both endpoints distinguished, the 2-path cannot fold.
  auto q = MustParse("Q(X, Y) :- E(X, Z), E(Z, Y), E(X, W).", vocab);
  auto m = Minimize(q);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->atoms().size(), 2u);  // E(X,W) folds onto E(X,Z)
  EXPECT_TRUE(*AreEquivalent(q, *m));
}

}  // namespace
}  // namespace cqcs
