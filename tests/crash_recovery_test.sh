#!/usr/bin/env bash
# Crash-recovery chaos harness for the durable serving state
# (src/serve/durability.h, `hom_tool serve --data-dir`).
#
# Method: each trial generates a deterministic random update workload
# (seeded by the trial number), streams it into a durable
# `hom_tool serve --fsync=always` session, and kill -9s the server at a
# random moment mid-stream. The server flushes stdout once per response, so
# the number of response lines R that made it into the output file is
# exactly the number of acknowledged commands. A restarted server must then
# report a catalog (names, versions, AND full contents via `dump`) equal to
# an in-process oracle replay of the first R commands — or R+1, for the one
# command that may have been applied-but-unacknowledged when the SIGKILL
# landed. Anything else is a durability bug: an acknowledged update
# vanished, or a refused one resurrected.
#
# Two deliberate-corruption arms ride along: a garbage tail appended to the
# newest log must be truncated with a logged warning (never a crash, never
# a wrong answer), and a corrupted only-snapshot must make startup refuse
# (exit 2) rather than guess.
#
# Usage: crash_recovery_test.sh <path-to-hom_tool> [trials]

set -u

HOM_TOOL="${1:?usage: crash_recovery_test.sh <path-to-hom_tool> [trials]}"
TRIALS="${2:-220}"
# Sized so the stream (~120ms at fsync=always) outlasts the kill window
# below: most SIGKILLs land with commands still in flight.
COMMANDS_PER_TRIAL=300

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
mid_stream_kills=0

# ---------------------------------------------------------------- workload ---
# A seeded stream of valid `db` / `drop` commands over names a-e. Database
# texts are generated in the structure printer's canonical spacing so the
# oracle can predict `dump` output byte-for-byte.
gen_workload() { # seed count -> stdout
  awk -v seed="$1" -v m="$2" 'BEGIN {
    srand(seed);
    split("a b c d e", names, " ");
    for (j = 1; j <= m; j++) {
      name = names[int(rand() * 5) + 1];
      if (rand() < 0.25 && present[name]) {
        print "drop " name;
        present[name] = 0;
      } else {
        u = 3 + int(rand() * 4);
        chain = 1 + int(rand() * (u - 1));
        text = "universe " u "; E/2:";
        for (t = 0; t < chain; t++)
          text = text (t ? "," : "") " " t " " (t + 1);
        print "db " name " " text;
        present[name] = 1;
      }
    }
  }'
}

# The oracle: replay the first k commands in-process and print exactly what
# a recovered server must answer to `catalog` + `dump <name>` for every
# present name (sorted). Versions restart at 1 after a drop, mirroring the
# registry.
oracle() { # cmds-file k -> stdout
  awk -v k="$2" '
    NR > k { exit }
    $1 == "db" {
      name = $2;
      ver[name] = present[name] ? ver[name] + 1 : 1;
      present[name] = 1;
      text = $0;
      sub(/^db [a-e] /, "", text);
      gsub(/; /, ";", text);
      dump[name] = text ";";
    }
    $1 == "drop" { present[$2] = 0 }
    END {
      n = 0; line = "";
      split("a b c d e", names, " ");
      for (j = 1; j <= 5; j++) {
        nm = names[j];
        if (present[nm]) { n++; line = line " " nm "#" ver[nm]; }
      }
      print "ok catalog " n line;
      for (j = 1; j <= 5; j++) {
        nm = names[j];
        if (present[nm]) print "ok dump " nm " " dump[nm];
      }
    }' "$1"
}

# Probe a data dir with a fresh server: catalog, then dump every name.
# Output keeps the catalog line and the successful dumps (absent names
# answer "error: ...", which the oracle format omits).
probe() { # data-dir -> stdout; returns the server exit code
  printf 'catalog\ndump a\ndump b\ndump c\ndump d\ndump e\nquit\n' \
    | "$HOM_TOOL" serve "--data-dir=$1" 2>/dev/null \
    | grep -e '^ok catalog' -e '^ok dump'
  return "${PIPESTATUS[1]}"
}

# -------------------------------------------------------------- chaos loop ---
fifo="$tmp/fifo"
mkfifo "$fifo"
for ((i = 1; i <= TRIALS; i++)); do
  dir="$tmp/trial"
  rm -rf "$dir"
  cmds="$tmp/cmds"
  gen_workload "$i" "$COMMANDS_PER_TRIAL" > "$cmds"
  # Small, varying snapshot threshold: kills land before, during, and after
  # generation switches.
  snap=$(( (i % 7) + 1 ))
  # The kill offset is computed up front (not slept inside awk) so the
  # delay starts counting from the moment the server opens its stdin.
  delay="$(awk -v s="$i" 'BEGIN { srand(s); printf "%.3f", rand() * 0.1 }')"

  # Feed the workload over a FIFO held open by fd 3: the server must die by
  # SIGKILL, never EOF. Opening fd 3 blocks until the server opens the
  # other end, which synchronizes the kill timer with server startup.
  "$HOM_TOOL" serve "--data-dir=$dir" --fsync=always \
      "--snapshot-every=$snap" < "$fifo" > "$tmp/out" 2> "$tmp/err" &
  spid=$!
  exec 3> "$fifo"
  cat "$cmds" >&3 &
  feeder=$!
  sleep "$delay"
  kill -9 "$spid" 2>/dev/null
  wait "$spid" 2>/dev/null
  exec 3>&-
  wait "$feeder" 2>/dev/null
  R=$(wc -l < "$tmp/out")
  if (( R < COMMANDS_PER_TRIAL )); then
    mid_stream_kills=$((mid_stream_kills + 1))
  fi

  got="$(probe "$dir")"
  code=$?
  if [[ "$code" != 0 ]]; then
    echo "FAIL [trial $i]: recovery probe exited $code (R=$R)" >&2
    sed 's/^/  stderr: /' "$tmp/err" >&2
    fail=1
    continue
  fi
  want_r="$(oracle "$cmds" "$R")"
  want_r1="$(oracle "$cmds" $((R + 1)))"
  if [[ "$got" != "$want_r" && "$got" != "$want_r1" ]]; then
    echo "FAIL [trial $i]: recovered state matches neither oracle($R) nor" \
         "oracle($((R + 1)))" >&2
    echo "  got:        $got" >&2
    echo "  oracle(R):  $want_r" >&2
    echo "  oracle(R+1):$want_r1" >&2
    fail=1
    continue
  fi
  # Recovery must be idempotent: a second restart answers identically.
  again="$(probe "$dir")"
  if [[ "$again" != "$got" ]]; then
    echo "FAIL [trial $i]: second recovery disagrees with the first" >&2
    echo "  first:  $got" >&2
    echo "  second: $again" >&2
    fail=1
  fi
done

# A harness whose kills always land after the full workload would prove
# nothing about mid-write crashes; require real mid-stream coverage.
if (( mid_stream_kills < TRIALS / 10 )); then
  echo "FAIL [coverage]: only $mid_stream_kills/$TRIALS kills landed" \
       "mid-stream; the harness is not exercising torn writes" >&2
  fail=1
fi

# ------------------------------------------------------ corrupted-tail arm ---
dir="$tmp/tail"
gen_workload 9999 20 | "$HOM_TOOL" serve "--data-dir=$dir" --fsync=always \
  --snapshot-every=6 > "$tmp/out" 2>/dev/null
newest_wal="$dir/$(ls "$dir" | grep '^wal-' | sort -t- -k2 -n | tail -1)"
printf '\x17\x00\x00\x00torn-record-garbage' >> "$newest_wal"
# Recovery physically repairs the tail, so the truncation warning only
# appears on the FIRST post-corruption startup: capture its stderr here
# rather than probing twice.
printf 'catalog\ndump a\ndump b\ndump c\ndump d\ndump e\nquit\n' \
  | "$HOM_TOOL" serve "--data-dir=$dir" > "$tmp/tail_out" 2> "$tmp/tail_err"
if [[ "${PIPESTATUS[1]}" != 0 ]]; then
  echo "FAIL [tail]: recovery crashed on a corrupt log tail" >&2
  fail=1
fi
got="$(grep -e '^ok catalog' -e '^ok dump' "$tmp/tail_out")"
want="$(oracle <(gen_workload 9999 20) 20)"
if [[ "$got" != "$want" ]]; then
  echo "FAIL [tail]: corrupt tail changed the recovered catalog" >&2
  echo "  got:  $got" >&2
  echo "  want: $want" >&2
  fail=1
fi
if ! grep -q 'truncated torn/corrupt log tail' "$tmp/tail_err"; then
  echo "FAIL [tail]: expected a logged truncation warning on stderr" >&2
  fail=1
fi

# --------------------------------------------------- corrupted-snapshot arm ---
dir="$tmp/snap"
gen_workload 4242 20 | "$HOM_TOOL" serve "--data-dir=$dir" --fsync=always \
  --snapshot-every=5 > /dev/null 2>&1
newest_snap="$dir/$(ls "$dir" | grep '^snapshot-' | sort -t- -k2 -n | tail -1)"
if [[ ! -f "$newest_snap" ]]; then
  echo "FAIL [snap]: workload produced no snapshot to corrupt" >&2
  fail=1
else
  printf 'XX' | dd of="$newest_snap" bs=1 seek=20 conv=notrunc 2>/dev/null
  printf 'quit\n' | "$HOM_TOOL" serve "--data-dir=$dir" >/dev/null 2>&1
  code=$?
  if [[ "$code" != 2 ]]; then
    echo "FAIL [snap]: corrupt only-snapshot must refuse startup with" \
         "exit 2, got $code" >&2
    fail=1
  fi
fi

if [[ "$fail" == 0 ]]; then
  echo "crash recovery: $TRIALS kill -9 trials PASS" \
       "($mid_stream_kills mid-stream) + corruption arms PASS"
else
  exit 1
fi
