// Tests for the Datalog engine: parsing, semi-naive evaluation, k-Datalog
// width accounting, unsafe-rule semantics, and the Section 4.1 example.

#include <gtest/gtest.h>

#include "datalog/builtin_programs.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace cqcs {
namespace {

Structure UndirectedCycle(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    auto u = static_cast<Element>(i);
    auto v = static_cast<Element>((i + 1) % n);
    s.AddTuple(0, {u, v});
    s.AddTuple(0, {v, u});
  }
  return s;
}

TEST(DatalogParserTest, TransitiveClosure) {
  auto program = ParseDatalogProgram(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Y) :- T(X, Z), E(Z, Y).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->idb_count(), 1u);
  EXPECT_EQ(program->rules().size(), 2u);
  EXPECT_EQ(program->edb_vocabulary()->size(), 1u);
  EXPECT_EQ(program->MaxBodyWidth(), 3u);
  EXPECT_EQ(program->MaxHeadWidth(), 2u);
  EXPECT_TRUE(program->IsKDatalog(3));
  EXPECT_FALSE(program->IsKDatalog(2));
}

TEST(DatalogParserTest, GoalSelection) {
  const char* text =
      "P(X) :- E(X, Y).\n"
      "Q() :- P(X).\n";
  auto by_default = ParseDatalogProgram(text);
  ASSERT_TRUE(by_default.ok());
  EXPECT_EQ(by_default->idb(by_default->goal()).name, "Q");
  auto named = ParseDatalogProgram(text, "P");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->idb(named->goal()).name, "P");
  EXPECT_FALSE(ParseDatalogProgram(text, "Nope").ok());
}

TEST(DatalogParserTest, EmptyBodyRule) {
  auto program = ParseDatalogProgram("P(X) :- .\nQ() :- P(X).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->rules()[0].body.empty());
}

TEST(DatalogParserTest, Malformed) {
  EXPECT_FALSE(ParseDatalogProgram("").ok());
  EXPECT_FALSE(ParseDatalogProgram("P(X)\n").ok());           // no ':-'
  EXPECT_FALSE(ParseDatalogProgram("P(X) :- E(X, Y)\n").ok());  // no '.'
  EXPECT_FALSE(
      ParseDatalogProgram("P(X) :- P(X, Y).\n").ok());  // IDB arity clash
}

TEST(DatalogParserTest, RoundTripThroughToString) {
  auto program = ParseDatalogProgram(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).\n"
      "Q() :- P(X, X).\n");
  ASSERT_TRUE(program.ok());
  auto reparsed = ParseDatalogProgram(program->ToString(),
                                      program->edb_vocabulary(), "Q");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->rules().size(), program->rules().size());
}

TEST(DatalogEvalTest, TransitiveClosureOnPath) {
  auto program = ParseDatalogProgram(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Y) :- T(X, Z), E(Z, Y).\n");
  ASSERT_TRUE(program.ok());
  Structure path(program->edb_vocabulary(), 4);
  path.AddTuple(0, {0, 1});
  path.AddTuple(0, {1, 2});
  path.AddTuple(0, {2, 3});
  auto result = EvaluateDatalog(*program, path);
  ASSERT_TRUE(result.ok());
  const TupleSet& t = result->idb_relations[0];
  EXPECT_EQ(t.size(), 6u);  // all i<j pairs
  EXPECT_TRUE(t.Contains({0, 3}));
  EXPECT_FALSE(t.Contains({3, 0}));
}

TEST(DatalogEvalTest, UnsafeHeadVariableRangesOverUniverse) {
  auto program = ParseDatalogProgram("P(X, Y) :- E(X, X).\nQ() :- P(X, Y).\n",
                                     "P");
  ASSERT_TRUE(program.ok());
  Structure s(program->edb_vocabulary(), 3);
  s.AddTuple(0, {1, 1});
  auto result = EvaluateDatalog(*program, s);
  ASSERT_TRUE(result.ok());
  // P(1, y) for every y in the universe.
  EXPECT_EQ(result->idb_relations[*program->FindIdb("P")].size(), 3u);
  EXPECT_TRUE(result->idb_relations[*program->FindIdb("P")].Contains({1, 2}));
}

TEST(DatalogEvalTest, VocabularyMismatchRejected) {
  auto program = ParseDatalogProgram("P(X) :- E(X, Y).\n");
  ASSERT_TRUE(program.ok());
  auto other = std::make_shared<Vocabulary>();
  other->AddRelation("F", 2);
  Structure s(other, 2);
  EXPECT_FALSE(EvaluateDatalog(*program, s).ok());
}

TEST(DatalogEvalTest, MutualRecursion) {
  // Even/odd distance from vertex marked by Start.
  auto program = ParseDatalogProgram(
      "Even(X) :- Start(X).\n"
      "Odd(Y) :- Even(X), E(X, Y).\n"
      "Even(Y) :- Odd(X), E(X, Y).\n",
      "Even");
  ASSERT_TRUE(program.ok());
  auto vocab = program->edb_vocabulary();
  Structure path(vocab, 4);
  RelId e = *vocab->FindRelation("E");
  RelId start = *vocab->FindRelation("Start");
  path.AddTuple(e, {0, 1});
  path.AddTuple(e, {1, 2});
  path.AddTuple(e, {2, 3});
  path.AddTuple(start, {0});
  auto result = EvaluateDatalog(*program, path);
  ASSERT_TRUE(result.ok());
  const TupleSet& even = result->idb_relations[*program->FindIdb("Even")];
  const TupleSet& odd = result->idb_relations[*program->FindIdb("Odd")];
  EXPECT_TRUE(even.Contains({0}));
  EXPECT_TRUE(odd.Contains({1}));
  EXPECT_TRUE(even.Contains({2}));
  EXPECT_TRUE(odd.Contains({3}));
  EXPECT_FALSE(even.Contains({1}));
}

TEST(Non2ColorabilityTest, MatchesGraphColoring) {
  // The paper's 4-Datalog program detects odd cycles (Section 4.1).
  DatalogProgram program = BuildNon2ColorabilityProgram();
  EXPECT_TRUE(program.IsKDatalog(4));
  EXPECT_FALSE(program.IsKDatalog(3));
  auto vocab = program.edb_vocabulary();
  for (size_t n = 3; n <= 9; ++n) {
    Structure cn = UndirectedCycle(vocab, n);
    auto derived = GoalDerivable(program, cn);
    ASSERT_TRUE(derived.ok());
    EXPECT_EQ(*derived, n % 2 == 1) << "n=" << n;
  }
  // Disjoint union of two even cycles stays 2-colorable.
  Structure two_even(vocab, 10);
  for (int i = 0; i < 4; ++i) {
    two_even.AddTuple(0, {static_cast<Element>(i),
                          static_cast<Element>((i + 1) % 4)});
    two_even.AddTuple(0, {static_cast<Element>((i + 1) % 4),
                          static_cast<Element>(i)});
  }
  for (int i = 0; i < 6; ++i) {
    two_even.AddTuple(0, {static_cast<Element>(4 + i),
                          static_cast<Element>(4 + (i + 1) % 6)});
    two_even.AddTuple(0, {static_cast<Element>(4 + (i + 1) % 6),
                          static_cast<Element>(4 + i)});
  }
  auto derived = GoalDerivable(program, two_even);
  ASSERT_TRUE(derived.ok());
  EXPECT_FALSE(*derived);
}

TEST(TupleSetTest, Basics) {
  TupleSet s(2);
  EXPECT_TRUE(s.Insert({0, 1}));
  EXPECT_FALSE(s.Insert({0, 1}));
  EXPECT_TRUE(s.Contains({0, 1}));
  EXPECT_FALSE(s.Contains({1, 0}));
  EXPECT_EQ(s.size(), 1u);
  TupleSet nullary(0);
  EXPECT_TRUE(nullary.empty());
  EXPECT_TRUE(nullary.Insert({}));
  EXPECT_FALSE(nullary.empty());
}

}  // namespace
}  // namespace cqcs
