// Tests for homomorphism checking, structure operations, graphs, and IO.

#include <gtest/gtest.h>

#include "core/graph.h"
#include "core/homomorphism.h"
#include "core/io.h"
#include "core/ops.h"

namespace cqcs {
namespace {

VocabularyPtr GraphVocab() {
  auto v = std::make_shared<Vocabulary>();
  v->AddRelation("E", 2);
  return v;
}

Structure Cycle(VocabularyPtr vocab, size_t n, bool directed = true) {
  Structure s(std::move(vocab), n);
  for (size_t i = 0; i < n; ++i) {
    auto u = static_cast<Element>(i);
    auto v = static_cast<Element>((i + 1) % n);
    s.AddTuple(0, {u, v});
    if (!directed) s.AddTuple(0, {v, u});
  }
  return s;
}

TEST(HomomorphismTest, ValidAndInvalid) {
  auto vocab = GraphVocab();
  Structure c4 = Cycle(vocab, 4);
  Structure c2 = Cycle(vocab, 2);
  // C4 -> C2 by parity.
  Homomorphism h = {0, 1, 0, 1};
  EXPECT_TRUE(IsHomomorphism(c4, c2, h));
  Homomorphism bad = {0, 0, 0, 0};  // (0,0) is not an edge of C2
  EXPECT_FALSE(IsHomomorphism(c4, c2, bad));
  EXPECT_FALSE(CheckHomomorphism(c4, c2, bad).ok());
  Homomorphism wrong_size = {0, 1};
  EXPECT_FALSE(IsHomomorphism(c4, c2, wrong_size));
}

TEST(HomomorphismTest, PartialIgnoresUnassigned) {
  auto vocab = GraphVocab();
  Structure c4 = Cycle(vocab, 4);
  Structure c2 = Cycle(vocab, 2);
  Homomorphism partial = {0, kUnassigned, 0, kUnassigned};
  EXPECT_TRUE(IsPartialHomomorphism(c4, c2, partial));
  Homomorphism bad = {0, 0, kUnassigned, kUnassigned};
  EXPECT_FALSE(IsPartialHomomorphism(c4, c2, bad));
}

TEST(OpsTest, DisjointUnion) {
  auto vocab = GraphVocab();
  Structure a = Cycle(vocab, 3);
  Structure b = Cycle(vocab, 2);
  Structure u = DisjointUnion(a, b);
  EXPECT_EQ(u.universe_size(), 5u);
  EXPECT_EQ(u.TotalTuples(), 5u);
  Element shifted[] = {3, 4};
  EXPECT_TRUE(u.relation(0).Contains(shifted));
}

TEST(OpsTest, ProductProjectionsAreHoms) {
  auto vocab = GraphVocab();
  Structure a = Cycle(vocab, 3);
  Structure b = Cycle(vocab, 2);
  Structure p = Product(a, b);
  EXPECT_EQ(p.universe_size(), 6u);
  // Projections are homomorphisms.
  Homomorphism proj_a(p.universe_size()), proj_b(p.universe_size());
  for (Element x = 0; x < p.universe_size(); ++x) {
    proj_a[x] = x / 2;
    proj_b[x] = x % 2;
  }
  EXPECT_TRUE(IsHomomorphism(p, a, proj_a));
  EXPECT_TRUE(IsHomomorphism(p, b, proj_b));
}

TEST(OpsTest, InducedSubstructure) {
  auto vocab = GraphVocab();
  Structure c4 = Cycle(vocab, 4);
  std::vector<Element> keep = {0, 1};
  Structure sub = InducedSubstructure(c4, keep);
  EXPECT_EQ(sub.universe_size(), 2u);
  EXPECT_EQ(sub.TotalTuples(), 1u);  // only edge (0,1) survives
  Element t[] = {0, 1};
  EXPECT_TRUE(sub.relation(0).Contains(t));
}

TEST(OpsTest, RenameAndCompose) {
  auto vocab = GraphVocab();
  Structure c4 = Cycle(vocab, 4);
  std::vector<Element> parity = {0, 1, 0, 1};
  Structure folded = RenameElements(c4, parity, 2);
  EXPECT_EQ(folded.universe_size(), 2u);
  Element e01[] = {0, 1}, e10[] = {1, 0};
  EXPECT_TRUE(folded.relation(0).Contains(e01));
  EXPECT_TRUE(folded.relation(0).Contains(e10));

  Homomorphism id = IdentityMap(c4);
  Homomorphism composed = Compose(id, parity);
  EXPECT_EQ(composed, parity);
}

TEST(GraphTest, BasicOps) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);  // duplicate ignored
  g.AddEdge(2, 2);  // self loop ignored
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  size_t count = 0;
  auto comp = g.ConnectedComponents(&count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(GraphTest, TwoColor) {
  Graph even(4);
  for (int i = 0; i < 4; ++i) even.AddEdge(i, (i + 1) % 4);
  std::vector<uint8_t> colors;
  EXPECT_TRUE(even.TwoColor(&colors));
  for (uint32_t v = 0; v < 4; ++v) {
    for (uint32_t w : even.neighbors(v)) EXPECT_NE(colors[v], colors[w]);
  }
  Graph odd(3);
  for (int i = 0; i < 3; ++i) odd.AddEdge(i, (i + 1) % 3);
  EXPECT_FALSE(odd.TwoColor(nullptr));
}

TEST(GraphViewsTest, GaifmanGraph) {
  auto vocab = std::make_shared<Vocabulary>();
  RelId r = vocab->AddRelation("R", 3);
  Structure s(vocab, 4);
  s.AddTuple(r, {0, 1, 2});
  Graph g = GaifmanGraph(s);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(GraphViewsTest, IncidenceGraphOfSingleTupleIsStar) {
  // The paper (§5) notes a single n-tuple has Gaifman treewidth n-1 but its
  // incidence graph is a tree. Check the incidence view is the star.
  auto vocab = std::make_shared<Vocabulary>();
  RelId r = vocab->AddRelation("R", 3);
  Structure s(vocab, 3);
  s.AddTuple(r, {0, 1, 2});
  Graph g = IncidenceGraph(s);
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(3), 3u);  // the tuple vertex
}

TEST(IoTest, RoundTrip) {
  const char* text =
      "# a small structure\n"
      "universe 3\n"
      "E/2: 0 1, 1 2\n"
      "P/1: 0\n";
  auto parsed = ParseStructure(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->universe_size(), 3u);
  EXPECT_EQ(parsed->TotalTuples(), 3u);
  auto reparsed = ParseStructure(PrintStructure(*parsed));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*parsed == *reparsed);
}

TEST(IoTest, AccumulatesAcrossLines) {
  auto parsed = ParseStructure("universe 2\nE/2: 0 1\nE/2: 1 0\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->TotalTuples(), 2u);
}

TEST(IoTest, FixedVocabulary) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  vocab->AddRelation("P", 1);
  auto parsed = ParseStructure("universe 2\nE/2: 0 1\n", vocab);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->relation(1).tuple_count(), 0u);  // P empty
  auto unknown = ParseStructure("universe 1\nZ/1: 0\n", vocab);
  EXPECT_FALSE(unknown.ok());
}

TEST(IoTest, Errors) {
  EXPECT_FALSE(ParseStructure("").ok());
  EXPECT_FALSE(ParseStructure("E/2: 0 1\n").ok());        // no universe
  EXPECT_FALSE(ParseStructure("universe 2\nE: 0\n").ok());  // no arity
  EXPECT_FALSE(ParseStructure("universe 2\nE/2: 0\n").ok());  // short tuple
  EXPECT_FALSE(ParseStructure("universe 2\nE/2: 0 9\n").ok());  // range
  EXPECT_FALSE(
      ParseStructure("universe 2\nE/2: 0 1\nE/3: 0 1 1\n").ok());  // arity
  EXPECT_FALSE(ParseStructure("universe 2\nE/0:\n").ok());  // zero arity
}

}  // namespace
}  // namespace cqcs
