// Tests for the conjunctive-query AST, parser, and printer.

#include <gtest/gtest.h>

#include "cq/parser.h"

namespace cqcs {
namespace {

TEST(CqParserTest, PaperRunningExample) {
  // Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)  (Section 2).
  auto q = ParseQuery("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->arity(), 2u);
  EXPECT_EQ(q->atoms().size(), 3u);
  EXPECT_EQ(q->var_count(), 5u);
  EXPECT_EQ(q->vocabulary()->size(), 2u);
  EXPECT_EQ(q->vocabulary()->arity(*q->vocabulary()->FindRelation("P")), 3u);
  EXPECT_TRUE(q->Validate().ok());
}

TEST(CqParserTest, HeadOrderMatters) {
  // The paper notes Q(X2, X1) is an equally valid but different ordering.
  auto q = ParseQuery("Q(X2, X1) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->var_name(q->head()[0]), "X2");
  EXPECT_EQ(q->var_name(q->head()[1]), "X1");
}

TEST(CqParserTest, BooleanQuery) {
  auto q = ParseQuery("Q() :- E(X, Y), E(Y, X).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->arity(), 0u);
  EXPECT_EQ(q->var_count(), 2u);
}

TEST(CqParserTest, RepeatedHeadVariable) {
  auto q = ParseQuery("Q(X, X) :- E(X, Y).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->arity(), 2u);
  EXPECT_EQ(q->head()[0], q->head()[1]);
}

TEST(CqParserTest, OptionalPeriodAndWhitespace) {
  auto q = ParseQuery("  Q ( X ) :-  E ( X , Y )  ");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->arity(), 1u);
}

TEST(CqParserTest, FixedVocabulary) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  auto ok = ParseQuery("Q(X) :- E(X, Y).", vocab);
  ASSERT_TRUE(ok.ok());
  auto unknown = ParseQuery("Q(X) :- F(X, Y).", vocab);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto bad_arity = ParseQuery("Q(X) :- E(X, Y, Z).", vocab);
  EXPECT_FALSE(bad_arity.ok());
}

TEST(CqParserTest, RejectsUnsafeHead) {
  auto q = ParseQuery("Q(W) :- E(X, Y).");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(CqParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("Q(X)").ok());                  // no body
  EXPECT_FALSE(ParseQuery("Q(X) :- ").ok());              // empty body
  EXPECT_FALSE(ParseQuery("Q(X) :- E(X,)").ok());         // dangling comma
  EXPECT_FALSE(ParseQuery("Q(X) :- E()").ok());           // nullary atom
  EXPECT_FALSE(ParseQuery("Q(X) :- E(X, Y) extra").ok()); // trailing junk
  EXPECT_FALSE(ParseQuery("Q(X) :- E(X Y)").ok());        // missing comma
  EXPECT_FALSE(
      ParseQuery("Q(X) :- E(X, Y), E(X, Y, Z)").ok());    // arity clash
}

TEST(CqParserTest, RoundTripThroughToString) {
  const char* text = "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(ToString(*q), q->vocabulary());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_TRUE(*q == *q2);
}

TEST(CqQueryTest, TwoAtomDetection) {
  auto yes = ParseQuery("Q(X) :- E(X, Y), E(Y, Z), F(Z, X).");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->IsTwoAtomQuery());
  auto no = ParseQuery("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->IsTwoAtomQuery());
}

TEST(CqQueryTest, WithoutAtom) {
  auto q = ParseQuery("Q(X) :- E(X, Y), E(Y, X).");
  ASSERT_TRUE(q.ok());
  ConjunctiveQuery dropped = q->WithoutAtom(1);
  EXPECT_EQ(dropped.atoms().size(), 1u);
  EXPECT_EQ(dropped.head(), q->head());
  EXPECT_EQ(dropped.var_count(), q->var_count());
}

TEST(CqQueryTest, SizeMeasure) {
  auto q = ParseQuery("Q(X) :- E(X, Y), E(Y, X).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->Size(), 2u + 4u);  // 2 variables + 2 binary atoms
}

}  // namespace
}  // namespace cqcs
