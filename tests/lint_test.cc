// Tests for the repo-specific lint pass (tools/lint): each rule must fire
// on its violating fixture and stay quiet on the clean / waived twin, and
// the waiver comment syntax must round-trip through the parser.

#include "lint/lint.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace cqcs::lint {
namespace {

#ifndef CQCS_LINT_FIXTURE_DIR
#error "CQCS_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(CQCS_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lints fixture `name` under the fake repo path `as_path`.
std::vector<Finding> LintFixture(const std::string& name,
                                 const std::string& as_path,
                                 bool has_sibling_header = false) {
  FileInput input;
  input.path = as_path;
  input.content = ReadFixture(name);
  input.has_sibling_header = has_sibling_header;
  return LintFile(input);
}

std::vector<std::string> RulesFired(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

// ----------------------------------------------------------- unpolled-loop

TEST(UnpolledLoop, FiresOnUngovernedOuterLoop) {
  auto findings = LintFixture("unpolled_loop_bad.cc", "src/rel/ops.cc");
  ASSERT_EQ(findings.size(), 1u) << "inner loop must not double-report";
  EXPECT_EQ(findings[0].rule, "unpolled-loop");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(UnpolledLoop, QuietWhenLoopPolls) {
  EXPECT_TRUE(
      LintFixture("unpolled_loop_ok.cc", "src/rel/ops.cc").empty());
}

TEST(UnpolledLoop, QuietWhenWaived) {
  EXPECT_TRUE(
      LintFixture("unpolled_loop_waived.cc", "src/treewidth/hom_dp.cc")
          .empty());
}

TEST(UnpolledLoop, FiresOnceOnDoWhile) {
  auto findings = LintFixture("unpolled_loop_do.cc", "src/rel/ops.cc");
  ASSERT_EQ(findings.size(), 1u) << "tail while must not double-report";
  EXPECT_EQ(findings[0].rule, "unpolled-loop");
  EXPECT_EQ(findings[0].line, 6);
}

TEST(UnpolledLoop, ScansWhileAfterClosingBrace) {
  auto findings =
      LintFixture("unpolled_loop_after_block.cc", "src/rel/ops.cc");
  ASSERT_EQ(findings.size(), 1u)
      << "the nested while must fire exactly once, at its own line";
  EXPECT_EQ(findings[0].line, 9);
}

TEST(UnpolledLoop, QuietOnFlatLoop) {
  // Only nested loop structures must poll; a flat pass over materialized
  // data is amortized by the charge that built it.
  EXPECT_TRUE(
      LintFixture("unpolled_loop_flat.cc", "src/rel/ops.cc").empty());
}

TEST(UnpolledLoop, RuleOnlyAppliesToGovernedFiles) {
  // The same ungoverned loop in a non-hot-path file is fine.
  EXPECT_TRUE(
      LintFixture("unpolled_loop_bad.cc", "src/core/graph.cc").empty());
}

TEST(UnpolledLoop, CoversMorselWorkerBodies) {
  // The morsel pool dispatches the governed bodies, so its own loops are
  // in the governed set too: an unpolled nested loop there would let a
  // stuck worker outlive every budget.
  auto findings =
      LintFixture("unpolled_loop_bad.cc", "src/common/work_pool.cc");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unpolled-loop");
}

// ------------------------------------------------------------ banned-abort

TEST(BannedAbort, FiresOnCheckAndAbortInInputReachableCode) {
  auto findings = LintFixture("banned_abort_bad.cc", "src/core/io.cc");
  EXPECT_EQ(RulesFired(findings),
            (std::vector<std::string>{"banned-abort", "banned-abort"}));
}

TEST(BannedAbort, AppliesUnderServe) {
  EXPECT_FALSE(
      LintFixture("banned_abort_bad.cc", "src/serve/serving.cc").empty());
}

TEST(BannedAbort, QuietWhenWaivedPerSite) {
  EXPECT_TRUE(
      LintFixture("banned_abort_waived.cc", "src/core/io.cc").empty());
}

TEST(BannedAbort, RuleOnlyAppliesToInputReachableModules) {
  // CQCS_CHECK remains the invariant idiom everywhere else (solver core).
  EXPECT_TRUE(
      LintFixture("banned_abort_bad.cc", "src/solver/propagator.cc")
          .empty());
}

// ------------------------------------------------------------- banned-call

TEST(BannedCall, FiresOnRandSrandSystem) {
  auto findings = LintFixture("banned_call_bad.cc", "src/gen/generators.cc");
  EXPECT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "banned-call");
}

TEST(BannedCall, QuietOnCommentsStringsAndSubstrings) {
  EXPECT_TRUE(
      LintFixture("banned_call_clean.cc", "src/gen/generators.cc").empty());
}

// ------------------------------------------------------------ header-guard

TEST(HeaderGuard, FiresOnWrongGuard) {
  auto findings = LintFixture("header_guard_bad.h", "src/common/fixture.h");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-guard");
  EXPECT_NE(findings[0].message.find("CQCS_COMMON_FIXTURE_H_"),
            std::string::npos);
}

TEST(HeaderGuard, QuietOnCanonicalGuard) {
  EXPECT_TRUE(
      LintFixture("header_guard_ok.h", "src/common/fixture.h").empty());
}

// ------------------------------------------------------------ header-first

TEST(HeaderFirst, FiresWhenOwnHeaderIsNotFirst) {
  auto findings = LintFixture("header_first_bad.cc", "src/common/fixture.cc",
                              /*has_sibling_header=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "header-first");
}

TEST(HeaderFirst, QuietWhenOwnHeaderLeads) {
  EXPECT_TRUE(LintFixture("header_first_ok.cc", "src/common/fixture.cc",
                          /*has_sibling_header=*/true)
                  .empty());
}

TEST(HeaderFirst, QuietWithoutSiblingHeader) {
  EXPECT_TRUE(LintFixture("header_first_bad.cc", "src/common/fixture.cc",
                          /*has_sibling_header=*/false)
                  .empty());
}

// ----------------------------------------------------------------- waivers

TEST(Waivers, MalformedWaiversFireMetaRuleAndDoNotWaive) {
  auto findings = LintFixture("waiver_malformed.cc", "src/serve/fixture.cc");
  // Three malformed directives plus the un-waived CQCS_CHECK.
  EXPECT_EQ(RulesFired(findings),
            (std::vector<std::string>{"waiver", "waiver", "waiver",
                                      "banned-abort"}));
}

TEST(Waivers, CanonicalCommentRoundTrips) {
  for (const std::string& rule : RuleNames()) {
    const std::string reason = "some documented reason for " + rule;
    const std::string comment = MakeWaiverComment(rule, reason);
    std::vector<Finding> findings;
    auto waivers = ParseWaivers("src/x.cc", comment + "\n", &findings);
    EXPECT_TRUE(findings.empty()) << comment;
    ASSERT_EQ(waivers.size(), 1u) << comment;
    EXPECT_EQ(waivers[0].rule, rule);
    EXPECT_EQ(waivers[0].reason, reason);
    EXPECT_FALSE(waivers[0].file_scope);
    EXPECT_EQ(waivers[0].line, 1);
  }
}

TEST(Waivers, FileScopeWaiverCoversEveryLine) {
  const std::string content =
      "// cqcs-lint: allow-file(banned-abort): fixture exercising aborts\n"
      "#include \"common/check.h\"\n"
      "void A(int n) { CQCS_CHECK(n); }\n"
      "void B(int n) { CQCS_CHECK(n); }\n";
  FileInput input{"src/serve/x.cc", content, false};
  EXPECT_TRUE(LintFile(input).empty());
}

TEST(Waivers, InlineWaiverDoesNotLeakPastNextLine) {
  const std::string content =
      "#include \"common/check.h\"\n"
      "// cqcs-lint: allow(banned-abort): only the next line is covered\n"
      "void A(int n) { CQCS_CHECK(n); }\n"
      "void B(int n) { CQCS_CHECK(n); }\n";
  FileInput input{"src/serve/x.cc", content, false};
  auto findings = LintFile(input);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

// ------------------------------------------------------- masking internals

TEST(Masking, StringsCommentsAndRawStringsAreBlanked) {
  const std::string content =
      "int x = 0; // system(\"rm\")\n"
      "const char* s = \"abort(\";\n"
      "const char* r = R\"(std::rand())\";\n";
  const std::string mask = StripCommentsAndStrings(content);
  EXPECT_EQ(mask.find("system"), std::string::npos);
  EXPECT_EQ(mask.find("abort"), std::string::npos);
  EXPECT_EQ(mask.find("rand"), std::string::npos);
  EXPECT_NE(mask.find("int x = 0;"), std::string::npos);
  // Line structure survives for diagnostics.
  EXPECT_EQ(std::count(mask.begin(), mask.end(), '\n'), 3);
}

}  // namespace
}  // namespace cqcs::lint
