// Fixture: the clean twin of banned_call_bad.cc. The banned names appear
// only in comments ("use rand() here would be wrong"), string literals,
// and as substrings of longer identifiers — none may fire.
#include <string>

// Do not call rand() or system() from library code.
std::string Describe() {
  std::string s = "the ecosystem( of srand( calls )";
  int operand(3);  // identifier containing "rand" as a substring
  return s + std::to_string(operand);
}
