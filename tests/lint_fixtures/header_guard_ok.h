// Fixture: header carrying the canonical guard for src/common/fixture.h.
#ifndef CQCS_COMMON_FIXTURE_H_
#define CQCS_COMMON_FIXTURE_H_

int Answer();

#endif  // CQCS_COMMON_FIXTURE_H_
