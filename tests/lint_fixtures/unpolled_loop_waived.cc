// Fixture: the waived twin of unpolled_loop_bad.cc — the nested loop is
// bounded by a compile-time constant, and the waiver above it says so.
int SumFixed(const int* xs) {
  int total = 0;
  // cqcs-lint: allow(unpolled-loop): bound is the compile-time 8x8 block
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      total += xs[i * 8 + j];
    }
  }
  return total;
}
