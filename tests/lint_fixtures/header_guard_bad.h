// Fixture: header with a non-canonical include guard (linted as
// src/common/fixture.h, whose canonical guard is CQCS_COMMON_FIXTURE_H_).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

int Answer();

#endif  // WRONG_GUARD_H
