// Fixture: the clean twin — own header first proves it self-contained.
#include "common/fixture.h"

#include <string>

int Answer() { return 42; }
