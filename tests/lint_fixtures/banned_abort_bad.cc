// Fixture: input-reachable module (linted as src/core/io.cc) using the
// abort family — both sites must fire banned-abort.
#include "common/check.h"

void Parse(const char* bytes, int n) {
  CQCS_CHECK(n >= 0);
  if (bytes == nullptr) {
    std::abort();
  }
}
