// Fixture: a .cc with a sibling header (linted as src/common/fixture.cc)
// whose first include is NOT its own header — fires header-first.
#include <string>

#include "common/fixture.h"

int Answer() { return 42; }
