// Fixture: a flat (non-nested) loop in a governed hot-path file. The rule
// only fires on nested loop structures — a single pass over an
// already-charged materialization is amortized by the SyncCharge that
// built it — so this file is clean with no poll and no waiver.
int Total(const int* xs, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    total += xs[i];
  }
  return total;
}
