// Fixture: the waived twin of banned_abort_bad.cc. One inline waiver per
// site; both carry reasons, so the rule stays quiet.
#include "common/check.h"

void Parse(const char* bytes, int n) {
  // cqcs-lint: allow(banned-abort): n is a trusted caller-computed length,
  CQCS_CHECK(n >= 0);
  if (bytes == nullptr) {
    std::abort();  // cqcs-lint: allow(banned-abort): unreachable by contract
  }
}
