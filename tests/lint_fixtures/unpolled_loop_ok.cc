// Fixture: the clean twin of unpolled_loop_bad.cc — same loop shape, but
// the body references the governor poll, so the rule stays quiet.
int Sum(const int* xs, int n, Governor* governor) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    if ((i & 1023) == 0 && !governor->Poll().ok()) break;
    for (int j = 0; j < n; ++j) {
      total += xs[i] * xs[j];
    }
  }
  return total;
}
