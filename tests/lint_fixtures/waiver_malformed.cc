// Fixture: three malformed waivers — each must fire the meta-rule and be
// ignored as a waiver (the CQCS_CHECK below must still fire banned-abort
// when linted as src/serve/fixture.cc).
//
// cqcs-lint: allow(banned-abort)
// cqcs-lint: allow(no-such-rule): the rule name does not exist
// cqcs-lint: allow(banned-abort):
#include "common/check.h"

void Touch(int n) { CQCS_CHECK(n >= 0); }
