// Fixture: a while loop that follows a closing brace is still scanned —
// regression guard for a do-while tail heuristic that skipped any `while`
// after `}` and let its inner loops masquerade as outermost.
int Sweep(int* xs, int n) {
  for (int i = 0; i < n; ++i) {
    xs[i] = 0;
  }
  int total = 0;
  while (n > 0) {
    for (int i = 0; i < n; ++i) {
      total += xs[i];
    }
    --n;
  }
  return total;
}
