// Fixture: library code calling the banned C-library entropy/shell
// functions — three findings expected.
#include <cstdlib>

int Roll() {
  std::srand(42);
  int r = std::rand();
  if (r == 0) {
    return std::system("echo unlucky");
  }
  return r;
}
