// Fixture: governed hot-path file with an outermost loop that never polls.
// Linted under the fake path src/rel/ops.cc; the loop must fire
// unpolled-loop.
int Sum(const int* xs, int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      total += xs[i] * xs[j];
    }
  }
  return total;
}
