// Fixture: an ungoverned do-while whose body nests a loop fires at the
// `do`, and the tail `while` must not double-report.
int Drain(int* xs, int n) {
  int total = 0;
  int round = 0;
  do {
    for (int i = 0; i < n; ++i) {
      total += xs[i];
    }
  } while (++round < n);
  return total;
}
