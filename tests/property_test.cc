// Cross-module property tests: algebraic laws of the homomorphism order,
// agreement of all independent decision procedures, and classical
// game-theoretic facts, swept over seeds with parameterized gtest.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ops.h"
#include "core/structure_core.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "fo/evaluate.h"
#include "fo/from_decomposition.h"
#include "gen/generators.h"
#include "pebble/game.h"
#include "solver/backtracking.h"
#include "treewidth/hom_dp.h"

namespace cqcs {
namespace {

class SeededProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng MakeRng(uint64_t salt) const {
    return Rng(static_cast<uint64_t>(GetParam()) * 0x9e3779b9ULL + salt);
  }
};

TEST_P(SeededProperty, DisjointUnionIsCoproduct) {
  // hom(A ⊎ B -> C) iff hom(A -> C) and hom(B -> C).
  Rng rng = MakeRng(1);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.4, rng, false);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.4, rng, false);
  Structure c = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng, false);
  EXPECT_EQ(HasHomomorphism(DisjointUnion(a, b), c),
            HasHomomorphism(a, c) && HasHomomorphism(b, c));
}

TEST_P(SeededProperty, ProductIsProduct) {
  // hom(C -> A × B) iff hom(C -> A) and hom(C -> B).
  Rng rng = MakeRng(2);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng, false);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng, false);
  Structure c = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.4, rng, false);
  EXPECT_EQ(HasHomomorphism(c, Product(a, b)),
            HasHomomorphism(c, a) && HasHomomorphism(c, b));
}

TEST_P(SeededProperty, HomomorphismsCompose) {
  Rng rng = MakeRng(3);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.3, rng, false);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.6, rng, false);
  Structure c = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.7, rng, false);
  auto h1 = FindHomomorphism(a, b);
  auto h2 = FindHomomorphism(b, c);
  if (h1.has_value() && h2.has_value()) {
    EXPECT_TRUE(IsHomomorphism(a, c, Compose(*h1, *h2)));
  }
}

TEST_P(SeededProperty, ContainmentIsPreorder) {
  Rng rng = MakeRng(4);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(3),
                                    rng);
  ConjunctiveQuery q2 = RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(3),
                                    rng);
  ConjunctiveQuery q3 = RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(3),
                                    rng);
  // Reflexivity.
  EXPECT_TRUE(*IsContained(q1, q1));
  // Transitivity.
  if (*IsContained(q1, q2) && *IsContained(q2, q3)) {
    EXPECT_TRUE(*IsContained(q1, q3));
  }
}

TEST_P(SeededProperty, EvaluationMonotoneUnderContainment) {
  // Q1 ⊆ Q2 implies Q1(D) ⊆ Q2(D) for every database — the defining
  // property, checked on random instances.
  Rng rng = MakeRng(5);
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(3),
                                    rng);
  ConjunctiveQuery q2 = RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(2),
                                    rng);
  if (!*IsContained(q1, q2)) return;
  Structure d = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.5, rng, false);
  auto rows1 = Evaluate(q1, d);
  auto rows2 = Evaluate(q2, d);
  ASSERT_TRUE(rows1.ok() && rows2.ok());
  std::set<std::vector<Element>> set2(rows2->begin(), rows2->end());
  for (const auto& row : *rows1) {
    EXPECT_TRUE(set2.count(row) > 0)
        << ToString(q1) << " ⊆ " << ToString(q2);
  }
}

TEST_P(SeededProperty, AllDecisionProceduresAgreeOnBoundedTreewidth) {
  // Backtracking, treewidth DP, the ∃FO^{w+1} sentence, and (for k >= |A|)
  // the pebble game must all agree.
  Rng rng = MakeRng(6);
  auto vocab = MakeGraphVocabulary();
  Graph ga = RandomPartialKTree(4 + rng.Below(4), 2, 0.8, rng);
  Structure a = StructureFromGraph(vocab, ga);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng, true);
  bool backtracking = HasHomomorphism(a, b);
  auto dp = SolveBoundedTreewidth(a, b);
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(dp->has_value(), backtracking);
  auto sentence = BuildSentence(a);
  ASSERT_TRUE(sentence.ok());
  auto fo_says = EvaluateFoSentence(*sentence, b);
  ASSERT_TRUE(fo_says.ok());
  EXPECT_EQ(*fo_says, backtracking);
}

TEST_P(SeededProperty, FullPebbleGameIsExact) {
  // With k = |A| pebbles the existential game decides homomorphism
  // existence exactly (the Duplicator's strategy must BE a homomorphism).
  Rng rng = MakeRng(7);
  auto vocab = MakeGraphVocabulary();
  size_t n = 2 + rng.Below(3);
  Structure a = RandomGraphStructure(vocab, n, 0.5, rng, false);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng, false);
  bool hom = HasHomomorphism(a, b);
  auto spoiler = SpoilerWinsExistentialKPebble(a, b, static_cast<uint32_t>(n));
  ASSERT_TRUE(spoiler.ok());
  EXPECT_EQ(!hom, *spoiler);
}

TEST_P(SeededProperty, TreewidthBoundMakesGameExact) {
  // Classical consequence of Sections 4 and 5: if A has treewidth < k,
  // the existential k-pebble game decides hom(A -> B) exactly.
  Rng rng = MakeRng(8);
  auto vocab = MakeGraphVocabulary();
  Graph ga = RandomPartialKTree(4 + rng.Below(4), 1, 0.9, rng);  // width <= 1
  Structure a = StructureFromGraph(vocab, ga);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.4, rng, true);
  bool hom = HasHomomorphism(a, b);
  auto spoiler = SpoilerWinsExistentialKPebble(a, b, 2);
  ASSERT_TRUE(spoiler.ok());
  EXPECT_EQ(!hom, *spoiler);
}

TEST_P(SeededProperty, CoreIdempotentAndEquivalent) {
  Rng rng = MakeRng(9);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.4, rng, true);
  CoreResult core = ComputeCore(a);
  EXPECT_TRUE(IsCore(core.core));
  EXPECT_TRUE(HasHomomorphism(a, core.core));
  EXPECT_TRUE(HasHomomorphism(core.core, a));
  // Idempotence: the core of the core is itself.
  CoreResult again = ComputeCore(core.core);
  EXPECT_EQ(again.kept_elements.size(), core.core.universe_size());
}

TEST_P(SeededProperty, CanonicalQueryGaloisConnection) {
  // hom(A -> B) iff Q_B ⊆ Q_A (Section 2) — on random structure pairs.
  Rng rng = MakeRng(10);
  auto vocab = MakeGraphVocabulary();
  Structure a = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.4, rng, false);
  Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.4, rng, false);
  ConjunctiveQuery qa = CanonicalQuery(a);
  ConjunctiveQuery qb = CanonicalQuery(b);
  auto contained = IsContained(qb, qa);
  ASSERT_TRUE(contained.ok());
  EXPECT_EQ(HasHomomorphism(a, b), *contained);
}

TEST_P(SeededProperty, SolutionCountMatchesBruteForce) {
  Rng rng = MakeRng(11);
  auto vocab = MakeGraphVocabulary();
  size_t n = 1 + rng.Below(3);
  size_t m = 1 + rng.Below(3);
  Structure a = RandomGraphStructure(vocab, n, 0.5, rng, false);
  Structure b = RandomGraphStructure(vocab, m, 0.5, rng, false);
  // Brute force over all m^n maps.
  size_t expected = 0;
  std::vector<Element> h(n, 0);
  while (true) {
    if (IsHomomorphism(a, b, h)) ++expected;
    size_t pos = 0;
    while (pos < n && ++h[pos] == m) {
      h[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  BacktrackingSolver solver(a, b);
  EXPECT_EQ(solver.CountSolutions(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace cqcs
