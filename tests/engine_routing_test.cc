// Front-door routing tests: the HomEngine must (1) pick a polynomial
// backend exactly when the paper's theorems license one, naming the profile
// evidence in Explain(), (2) agree with the uniform search on every answer
// whichever backend ran, (3) fall back — not abort — when an island's
// precondition fails, and (4) reuse a compiled HomProblem's artifacts
// across repeated solves and target rebinds.

#include <gtest/gtest.h>

#include <set>

#include "api/engine.h"
#include "common/rng.h"
#include "core/homomorphism.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

HomProblem MustProblem(Result<HomProblem> r) {
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *std::move(r);
}

EngineResult MustRun(const HomEngine& engine, const HomProblem& p,
                     HomTask task) {
  auto r = engine.Run(p, task);
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *std::move(r);
}

// The uniform search as the trusted oracle (its own correctness is locked
// down by the solver crosscheck suite).
bool OracleDecide(const Structure& a, const Structure& b) {
  BacktrackingSolver solver(a, b);
  return solver.Solve().has_value();
}

TEST(EngineRoutingTest, AcyclicSourcePicksYannakakisForDecide) {
  Rng rng(101);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = StructureFromGraph(vocab, RandomTree(8 + rng.Below(6), rng));
    Structure b =
        RandomGraphStructure(vocab, 3 + rng.Below(4), 0.4, rng, true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    HomEngine engine;
    EngineResult r = MustRun(engine, p, HomTask::kDecide);
    EXPECT_EQ(r.explain.chosen, Backend::kAcyclic) << r.explain.ToString();
    EXPECT_TRUE(r.explain.profiled);
    EXPECT_TRUE(r.explain.profile.source_acyclic);
    EXPECT_NE(r.explain.reason.find("acyclic"), std::string::npos);
    EXPECT_FALSE(r.stats.used_search);
    EXPECT_EQ(r.decided, OracleDecide(a, b)) << "trial " << trial;
  }
}

TEST(EngineRoutingTest, TreeSourceWitnessTakesYannakakis) {
  // Witness requests stay on the acyclic route: the full Yannakakis
  // program extracts a witness from the reduced join forest, so a tree
  // source never needs the DP or the search.
  Rng rng(202);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = StructureFromGraph(vocab, RandomTree(8 + rng.Below(6), rng));
    Structure b =
        RandomGraphStructure(vocab, 3 + rng.Below(4), 0.5, rng, true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    HomEngine engine;
    EngineResult r = MustRun(engine, p, HomTask::kWitness);
    EXPECT_EQ(r.explain.chosen, Backend::kAcyclic) << r.explain.ToString();
    EXPECT_FALSE(r.stats.used_search);
    EXPECT_TRUE(r.stats.used_acyclic);
    EXPECT_EQ(r.explain.served, HomTask::kWitness);
    EXPECT_EQ(r.decided, OracleDecide(a, b)) << "trial " << trial;
    if (r.decided) {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(IsHomomorphism(a, b, *r.witness));
    }
  }
}

TEST(EngineRoutingTest, BoundedWidthSourcePicksTreewidthDp) {
  Rng rng(303);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 10; ++trial) {
    // Partial 2-trees keep treewidth <= 2; the min-fill estimate tracks it.
    Structure a = StructureFromGraph(
        vocab, RandomPartialKTree(10 + rng.Below(8), 2, 0.85, rng));
    Structure b =
        RandomGraphStructure(vocab, 3 + rng.Below(3), 0.5, rng, true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    HomEngine engine;
    EngineResult r = MustRun(engine, p, HomTask::kWitness);
    // Dropping edges can leave a partial 2-tree acyclic, in which case
    // the (cheaper) Yannakakis route wins; otherwise the DP must fire.
    EXPECT_EQ(r.explain.chosen,
              p.SourceAcyclic() ? Backend::kAcyclic : Backend::kTreewidth)
        << r.explain.ToString();
    if (!p.SourceAcyclic()) {
      EXPECT_LE(r.explain.profile.width_estimate, 3);
    }
    EXPECT_EQ(r.decided, OracleDecide(a, b)) << "trial " << trial;
    if (r.decided) {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(IsHomomorphism(a, b, *r.witness));
    }
  }
}

TEST(EngineRoutingTest, SchaeferTargetPicksUniformPolyAlgorithm) {
  Rng rng(404);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  for (int trial = 0; trial < 10; ++trial) {
    Structure b =
        RandomClosedBooleanStructure(vocab, 3, ClosureOp::kAnd, 4, rng);
    Structure a = RandomStructure(vocab, 8 + rng.Below(8),
                                  12 + rng.Below(12), rng);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    HomEngine engine;
    EngineResult r = MustRun(engine, p, HomTask::kWitness);
    EXPECT_EQ(r.explain.chosen, Backend::kSchaefer) << r.explain.ToString();
    EXPECT_TRUE(r.explain.profile.target_boolean);
    EXPECT_NE(r.explain.profile.schaefer_classes, 0);
    EXPECT_FALSE(r.stats.used_search);
    EXPECT_TRUE(r.stats.used_schaefer);
    EXPECT_EQ(r.decided, OracleDecide(a, b)) << "trial " << trial;
    if (r.decided) {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(IsHomomorphism(a, b, *r.witness));
    }
  }
}

TEST(EngineRoutingTest, FallbackWhenWidthEstimateTooHigh) {
  // K6 -> K5: cyclic, width estimate 5 > max_auto_width, non-Boolean
  // target. kAuto must fall all the way back to the uniform search and
  // still answer correctly (no 6-clique in K5).
  auto vocab = MakeGraphVocabulary();
  Structure k6 = CliqueStructure(vocab, 6);
  Structure k5 = CliqueStructure(vocab, 5);
  HomProblem p = MustProblem(HomProblem::FromStructures(k6, k5));
  HomEngine engine;
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  EXPECT_EQ(r.explain.chosen, Backend::kUniform) << r.explain.ToString();
  EXPECT_TRUE(r.stats.used_search);
  EXPECT_FALSE(r.decided);
  EXPECT_EQ(r.explain.profile.width_estimate, 5);
  bool noted_width = false;
  for (const std::string& f : r.explain.fallbacks) {
    if (f.find("treewidth") != std::string::npos) noted_width = true;
  }
  EXPECT_TRUE(noted_width) << r.explain.ToString();
}

TEST(EngineRoutingTest, FallbackOnNonSchaeferBooleanTarget) {
  // 1-in-3-SAT as a structure: Boolean but in no Schaefer class. With a
  // dense cyclic source the width gate fails too, so kAuto lands on the
  // search — with both refusals recorded.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  Structure b(vocab, 2);
  b.AddTuple(0, {0, 0, 1});
  b.AddTuple(0, {0, 1, 0});
  b.AddTuple(0, {1, 0, 0});
  Rng rng(505);
  Structure a = RandomStructure(vocab, 12, 40, rng);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
  ASSERT_TRUE(p.Profile().target_boolean);
  ASSERT_EQ(p.Profile().schaefer_classes, 0);
  ASSERT_FALSE(p.Profile().source_acyclic);
  ASSERT_GT(p.Profile().width_estimate, 3);
  HomEngine engine;
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  EXPECT_EQ(r.explain.chosen, Backend::kUniform) << r.explain.ToString();
  bool noted_schaefer = false;
  for (const std::string& f : r.explain.fallbacks) {
    if (f.find("outside every Schaefer class") != std::string::npos) {
      noted_schaefer = true;
    }
  }
  EXPECT_TRUE(noted_schaefer) << r.explain.ToString();
  EXPECT_EQ(r.decided, OracleDecide(a, b));
}

TEST(EngineRoutingTest, CrossBackendOracleAgreement) {
  // Randomized agreement net: wherever >= 2 backends apply, they must all
  // return the oracle's decide answer.
  Rng rng(606);
  auto vocab = MakeGraphVocabulary();
  int multi_backend_instances = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Structure a = RandomGraphStructure(vocab, 3 + rng.Below(4),
                                       0.3 + 0.1 * rng.Below(3), rng, false);
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.4, rng,
                                       false);
    bool oracle = OracleDecide(a, b);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    const InstanceProfile& prof = p.Profile();

    // kAuto, whatever it picks.
    HomEngine auto_engine;
    EngineResult r = MustRun(auto_engine, p, HomTask::kDecide);
    EXPECT_EQ(r.decided, oracle)
        << "auto chose " << BackendName(r.explain.chosen) << " on trial "
        << trial;

    // Every explicitly applicable backend.
    int applicable = 1;  // uniform always applies
    EngineOptions uniform_options;
    uniform_options.backend = Backend::kUniform;
    EXPECT_EQ(
        MustRun(HomEngine(uniform_options), p, HomTask::kDecide).decided,
        oracle);
    {
      EngineOptions o;
      o.backend = Backend::kTreewidth;  // exact whatever the width
      ++applicable;
      EXPECT_EQ(MustRun(HomEngine(o), p, HomTask::kDecide).decided, oracle)
          << "treewidth disagrees on trial " << trial;
    }
    if (prof.source_acyclic && b.universe_size() > 0) {
      EngineOptions o;
      o.backend = Backend::kAcyclic;
      ++applicable;
      EXPECT_EQ(MustRun(HomEngine(o), p, HomTask::kDecide).decided, oracle)
          << "acyclic disagrees on trial " << trial;
    }
    if (prof.schaefer_classes != 0) {
      EngineOptions o;
      o.backend = Backend::kSchaefer;
      ++applicable;
      EXPECT_EQ(MustRun(HomEngine(o), p, HomTask::kDecide).decided, oracle)
          << "schaefer disagrees on trial " << trial;
    }
    if (applicable >= 2) ++multi_backend_instances;
  }
  EXPECT_GT(multi_backend_instances, 10);
}

TEST(EngineRoutingTest, AcyclicServesCountEnumerateProjectWithoutSearch) {
  // The acceptance net for the full Yannakakis program: on acyclic
  // sources every task is served on the acyclic route — no uniform-search
  // fallback — and every answer matches the search oracle exactly.
  Rng rng(707);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = StructureFromGraph(vocab, RandomTree(4 + rng.Below(3), rng));
    Structure b = RandomGraphStructure(vocab, 3, 0.6, rng, true);
    BacktrackingSolver solver(a, b);
    size_t oracle_count = solver.CountSolutions();
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    ASSERT_TRUE(p.SetProjection({0}).ok());
    HomEngine engine;

    EngineResult count = MustRun(engine, p, HomTask::kCount);
    EXPECT_EQ(count.explain.chosen, Backend::kAcyclic)
        << count.explain.ToString();
    EXPECT_TRUE(count.explain.profiled);
    EXPECT_FALSE(count.stats.used_search);
    EXPECT_TRUE(count.stats.used_acyclic);
    EXPECT_EQ(count.explain.served, HomTask::kCount);
    EXPECT_EQ(count.count, oracle_count);

    EngineResult all = MustRun(engine, p, HomTask::kEnumerate);
    EXPECT_EQ(all.explain.chosen, Backend::kAcyclic);
    EXPECT_FALSE(all.stats.used_search);
    EXPECT_EQ(all.rows.size(), oracle_count);
    std::set<std::vector<Element>> hom_set(all.rows.begin(), all.rows.end());
    EXPECT_EQ(hom_set.size(), oracle_count) << "duplicate homomorphisms";
    size_t checked = 0;
    BacktrackingSolver(a, b).ForEachSolution([&](const Homomorphism& h) {
      EXPECT_TRUE(hom_set.count(h)) << "oracle solution missing";
      ++checked;
      return true;
    });
    EXPECT_EQ(checked, oracle_count);

    EngineResult rows = MustRun(engine, p, HomTask::kProject);
    EXPECT_EQ(rows.explain.chosen, Backend::kAcyclic);
    EXPECT_FALSE(rows.stats.used_search);
    auto oracle_rows = BacktrackingSolver(a, b).EnumerateProjections(
        std::vector<Element>{0});
    std::set<std::vector<Element>> got(rows.rows.begin(), rows.rows.end());
    std::set<std::vector<Element>> want(oracle_rows.begin(),
                                       oracle_rows.end());
    EXPECT_EQ(got.size(), rows.rows.size()) << "duplicate projections";
    EXPECT_EQ(got, want);
  }
}

TEST(EngineRoutingTest, CyclicSourceCountFallsBackToSearch) {
  // Counting has no polynomial island for cyclic sources: the router
  // must land on the search and say why the acyclic route refused.
  auto vocab = MakeGraphVocabulary();
  Structure k3 = CliqueStructure(vocab, 3);
  Structure k4 = CliqueStructure(vocab, 4);
  HomProblem p = MustProblem(HomProblem::FromStructures(k3, k4));
  HomEngine engine;
  EngineResult r = MustRun(engine, p, HomTask::kCount);
  EXPECT_EQ(r.explain.chosen, Backend::kUniform) << r.explain.ToString();
  EXPECT_TRUE(r.stats.used_search);
  EXPECT_TRUE(r.explain.profiled);
  EXPECT_FALSE(r.explain.profile.source_acyclic);
  EXPECT_EQ(r.count, BacktrackingSolver(k3, k4).CountSolutions());
  bool noted_acyclic = false;
  for (const std::string& f : r.explain.fallbacks) {
    if (f.find("cyclic") != std::string::npos) noted_acyclic = true;
  }
  EXPECT_TRUE(noted_acyclic) << r.explain.ToString();
}

TEST(EngineRoutingTest, CompiledProblemReusesArtifactsAcrossRuns) {
  Rng rng(808);
  auto vocab = MakeGraphVocabulary();
  Structure a = StructureFromGraph(vocab, RandomPartialKTree(10, 2, 0.9, rng));
  Structure b = RandomGraphStructure(vocab, 4, 0.5, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
  // Same compiled pieces on every access.
  const CspInstance* csp = &p.Csp();
  EXPECT_EQ(csp, &p.Csp());
  const TreeDecomposition* dec = &p.SourceDecomposition();
  EXPECT_EQ(dec, &p.SourceDecomposition());
  const InstanceProfile* prof = &p.Profile();
  EXPECT_EQ(prof, &p.Profile());
  // Copies share them.
  HomProblem copy = p;
  EXPECT_EQ(&copy.Csp(), csp);
  // Rebinding the target keeps the whole source side...
  Structure b2 = RandomGraphStructure(vocab, 5, 0.5, rng, true);
  HomProblem rebound = MustProblem(p.WithTarget(b2));
  EXPECT_EQ(&rebound.SourceDecomposition(), dec);
  // ...but recompiles the pair state against the new target.
  EXPECT_NE(&rebound.Csp(), csp);
  EXPECT_EQ(rebound.Profile().target_universe, 5u);
  // And the rebound problem still answers correctly.
  HomEngine engine;
  EXPECT_EQ(MustRun(engine, rebound, HomTask::kDecide).decided,
            OracleDecide(a, b2));
  EXPECT_EQ(MustRun(engine, p, HomTask::kDecide).decided, OracleDecide(a, b));
}

TEST(EngineRoutingTest, ContainmentProblemsRouteThroughPolyBackends) {
  // Chain-query containment: the marked canonical database of a chain is
  // acyclic and width-1, so the front door must not search — this is the
  // acceptance case "kAuto picks a polynomial backend where the uniform
  // solver would search", cross-checked against both Theorem 2.1
  // characterizations.
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain4 = ChainQuery(vocab, 4);
  ConjunctiveQuery chain6 = ChainQuery(vocab, 6);
  HomProblem p = MustProblem(HomProblem::FromContainment(chain6, chain4));
  HomEngine engine;
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  EXPECT_NE(r.explain.chosen, Backend::kUniform) << r.explain.ToString();
  auto via_eval = IsContainedViaEvaluation(chain6, chain4);
  ASSERT_TRUE(via_eval.ok());
  EXPECT_EQ(r.decided, *via_eval);
  auto via_wrapper = IsContained(chain6, chain4);
  ASSERT_TRUE(via_wrapper.ok());
  EXPECT_EQ(r.decided, *via_wrapper);
}

TEST(EngineRoutingTest, PebblePreflightCertifiesUnsat) {
  // C5 -> K2: not 2-colorable; the Spoiler wins the 4-pebble game, so the
  // preflight proves "no homomorphism" and the search never runs.
  auto vocab = MakeGraphVocabulary();
  Structure c5 = UndirectedCycleStructure(vocab, 5);
  Structure k2 = UndirectedCycleStructure(vocab, 2);
  HomProblem p = MustProblem(HomProblem::FromStructures(c5, k2));
  EngineOptions options;
  options.backend = Backend::kUniform;
  options.pebble_preflight_k = 4;
  EngineResult r = MustRun(HomEngine(options), p, HomTask::kDecide);
  EXPECT_FALSE(r.decided);
  EXPECT_TRUE(r.stats.used_pebble);
  EXPECT_FALSE(r.stats.used_search);
  EXPECT_GT(r.stats.pebble.deleted_positions, 0u);
}

TEST(EngineRoutingTest, ExplicitBackendErrorsInsteadOfFallingBack) {
  auto vocab = MakeGraphVocabulary();
  Structure k4 = CliqueStructure(vocab, 4);   // cyclic source
  Structure k5 = CliqueStructure(vocab, 5);   // non-Boolean target
  HomProblem p = MustProblem(HomProblem::FromStructures(k4, k5));
  {
    EngineOptions o;
    o.backend = Backend::kAcyclic;
    auto r = HomEngine(o).Run(p, HomTask::kDecide);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // The acyclic backend serves every task now — an explicit witness
    // request on an acyclic source must succeed, not error.
    EngineOptions o;
    o.backend = Backend::kAcyclic;
    Structure path = PathStructure(vocab, 3);
    HomProblem acyclic_p = MustProblem(HomProblem::FromStructures(path, k5));
    auto r = HomEngine(o).Run(acyclic_p, HomTask::kWitness);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->decided);
    ASSERT_TRUE(r->witness.has_value());
    EXPECT_TRUE(IsHomomorphism(path, k5, *r->witness));
  }
  {
    EngineOptions o;
    o.backend = Backend::kSchaefer;  // non-Boolean target
    auto r = HomEngine(o).Run(p, HomTask::kDecide);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(EngineRoutingTest, NodeLimitSurfacesAsUnknownNeverAsNo) {
  auto vocab = MakeGraphVocabulary();
  Rng rng(909);
  Structure a = CliqueStructure(vocab, 7);
  Structure g = RandomGraphStructure(vocab, 20, 0.5, rng, true);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, g));
  EngineOptions options;
  options.backend = Backend::kUniform;
  options.solve.node_limit = 3;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  if (!r.decided) {
    EXPECT_TRUE(r.stats.search.limit_hit);
    auto decided = engine.Decide(p);
    ASSERT_FALSE(decided.ok());
    EXPECT_EQ(decided.status().code(), StatusCode::kUnsupported);
  }
}

TEST(EngineRoutingTest, TrivialUniversesShortCircuit) {
  auto vocab = MakeGraphVocabulary();
  Structure empty(vocab, 0);
  Structure k3 = CliqueStructure(vocab, 3);
  HomEngine engine;
  HomProblem from_empty = MustProblem(HomProblem::FromStructures(empty, k3));
  EngineResult r = MustRun(engine, from_empty, HomTask::kWitness);
  EXPECT_TRUE(r.decided);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(r.witness->empty());
  HomProblem to_empty = MustProblem(HomProblem::FromStructures(k3, empty));
  EngineResult r2 = MustRun(engine, to_empty, HomTask::kDecide);
  EXPECT_FALSE(r2.decided);
  EXPECT_FALSE(r2.stats.search.limit_hit);
}

TEST(EngineRoutingTest, ExplainRendersJson) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 4);
  Structure k3 = CliqueStructure(vocab, 3);
  HomProblem p = MustProblem(HomProblem::FromStructures(path, k3));
  HomEngine engine;
  EngineResult r = MustRun(engine, p, HomTask::kDecide);
  std::string json = r.ToJson();
  EXPECT_NE(json.find("\"chosen\":\"acyclic\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"profile\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"decided\":true"), std::string::npos) << json;
  EXPECT_EQ(BackendName(Backend::kTreewidth), std::string("treewidth"));
  EXPECT_EQ(ParseBackendName("schaefer"), Backend::kSchaefer);
  EXPECT_EQ(ParseBackendName("bogus"), std::nullopt);
}

}  // namespace
}  // namespace cqcs
