// Tests for the ∃FO^k fragment: formula construction, bottom-up
// evaluation, and the Lemma 5.2 translation from tree decompositions.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fo/evaluate.h"
#include "fo/from_decomposition.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

TEST(FoFormulaTest, FreeVarsAndSlots) {
  // Ex1 (E(x0, x1) & E(x1, x0)) — x0 free, 2 slots.
  FoFormula f = FoFormula::Exists(
      1, FoFormula::And({FoFormula::Atom(0, {0, 1}),
                         FoFormula::Atom(0, {1, 0})}));
  EXPECT_EQ(f.FreeVars(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(f.SlotCount(), 2u);
}

TEST(FoFormulaTest, RebindingDoesNotLeak) {
  // Ex0 E(x0, x1): only x1 free even though x0 occurs.
  FoFormula f = FoFormula::Exists(0, FoFormula::Atom(0, {0, 1}));
  EXPECT_EQ(f.FreeVars(), (std::vector<uint32_t>{1}));
}

TEST(FoEvaluateTest, AtomSelection) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 3);  // edges (0,1), (1,2)
  FoFormula atom = FoFormula::Atom(0, {0, 1});
  auto r = EvaluateFo(atom, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  // Repeated slot: E(x0, x0) selects self-loops only.
  FoFormula loop = FoFormula::Atom(0, {0, 0});
  auto rl = EvaluateFo(loop, path);
  ASSERT_TRUE(rl.ok());
  EXPECT_TRUE(rl->rows.empty());
  EXPECT_EQ(rl->vars.size(), 1u);
}

TEST(FoEvaluateTest, JoinAndProjection) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 4);
  // ∃x1 (E(x0, x1) ∧ E(x1, x2)): pairs at distance exactly 2.
  FoFormula two_step = FoFormula::Exists(
      1, FoFormula::And({FoFormula::Atom(0, {0, 1}),
                         FoFormula::Atom(0, {1, 2})}));
  auto r = EvaluateFo(two_step, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->vars, (std::vector<uint32_t>{0, 2}));
  std::set<std::vector<Element>> expected = {{0, 2}, {1, 3}};
  EXPECT_EQ(r->rows, expected);
}

TEST(FoEvaluateTest, SlotReuseEvaluatesCorrectly) {
  // The bounded-variable idiom: a 3-step walk with 2 slots.
  // ∃x1(E(x0,x1) ∧ ∃x0(E(x1,x0) ∧ ∃x1 E(x0,x1))) — "a walk of length 3
  // starts at x0".
  auto vocab = MakeGraphVocabulary();
  FoFormula walk3 = FoFormula::Exists(
      1,
      FoFormula::And(
          {FoFormula::Atom(0, {0, 1}),
           FoFormula::Exists(
               0, FoFormula::And({FoFormula::Atom(0, {1, 0}),
                                  FoFormula::Exists(
                                      1, FoFormula::Atom(0, {0, 1}))}))}));
  EXPECT_EQ(walk3.SlotCount(), 2u);
  Structure path = PathStructure(vocab, 5);
  auto r = EvaluateFo(walk3, path);
  ASSERT_TRUE(r.ok());
  // Walks of length 3 start at 0 and 1 only.
  std::set<std::vector<Element>> expected = {{0}, {1}};
  EXPECT_EQ(r->rows, expected);
}

TEST(FoEvaluateTest, SentenceAndErrors) {
  auto vocab = MakeGraphVocabulary();
  Structure triangle = CliqueStructure(vocab, 3);
  FoFormula has_edge =
      FoFormula::Exists(0, FoFormula::Exists(1, FoFormula::Atom(0, {0, 1})));
  auto yes = EvaluateFoSentence(has_edge, triangle);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  // Not a sentence.
  FoFormula open = FoFormula::Atom(0, {0, 1});
  EXPECT_FALSE(EvaluateFoSentence(open, triangle).ok());
  // Arity mismatch.
  FoFormula bad = FoFormula::Atom(0, {0});
  EXPECT_FALSE(EvaluateFo(bad, triangle).ok());
}

TEST(FromDecompositionTest, SlotBudgetMatchesWidth) {
  auto vocab = MakeGraphVocabulary();
  Structure cycle = UndirectedCycleStructure(vocab, 8);
  TreeDecomposition td = HeuristicDecomposition(cycle);
  ASSERT_EQ(td.Width(), 2);
  auto sentence = BuildSentenceFromDecomposition(cycle, td);
  ASSERT_TRUE(sentence.ok()) << sentence.status().ToString();
  EXPECT_LE(sentence->SlotCount(), 3u);  // width + 1 = 3 (Lemma 5.2)
  EXPECT_TRUE(sentence->FreeVars().empty());
}

TEST(FromDecompositionTest, SentenceDecidesHomomorphism) {
  // Third decision procedure for hom(A -> B): B ⊨ Q_A. Cross-validate
  // against backtracking on random bounded-treewidth sources.
  Rng rng(61);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(2));
    Graph ga = RandomPartialKTree(4 + rng.Below(7), k, 0.8, rng);
    Structure a = StructureFromGraph(vocab, ga);
    Structure b =
        RandomGraphStructure(vocab, 2 + rng.Below(4), 0.5, rng, true);
    auto sentence = BuildSentence(a);
    ASSERT_TRUE(sentence.ok());
    auto models = EvaluateFoSentence(*sentence, b);
    ASSERT_TRUE(models.ok());
    EXPECT_EQ(*models, HasHomomorphism(a, b)) << "trial " << trial;
  }
}

TEST(FromDecompositionTest, DisconnectedSources) {
  auto vocab = MakeGraphVocabulary();
  // Two components: a triangle and an edge.
  Structure a(vocab, 5);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {1, 2});
  a.AddTuple(0, {2, 0});
  a.AddTuple(0, {3, 4});
  auto sentence = BuildSentence(a);
  ASSERT_TRUE(sentence.ok());
  Structure k3 = CliqueStructure(vocab, 3);
  auto m = EvaluateFoSentence(*sentence, k3);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(*m);
  Structure k2 = CliqueStructure(vocab, 2);  // no directed triangle
  auto m2 = EvaluateFoSentence(*sentence, k2);
  ASSERT_TRUE(m2.ok());
  EXPECT_FALSE(*m2);
}

TEST(FromDecompositionTest, EmptyStructureIsTrue) {
  auto vocab = MakeGraphVocabulary();
  Structure empty(vocab, 0);
  auto sentence = BuildSentence(empty);
  ASSERT_TRUE(sentence.ok());
  Structure b = CliqueStructure(vocab, 2);
  EXPECT_TRUE(*EvaluateFoSentence(*sentence, b));
}

TEST(FromDecompositionTest, PrintsReadably) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 3);
  auto sentence = BuildSentence(path);
  ASSERT_TRUE(sentence.ok());
  std::string text = sentence->ToString(*vocab);
  EXPECT_NE(text.find("E("), std::string::npos);
  EXPECT_NE(text.find("Ex"), std::string::npos);
}

}  // namespace
}  // namespace cqcs
