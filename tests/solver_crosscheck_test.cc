// Randomized cross-check of the backtracking solver against a brute-force
// reference enumerator, over the full search-strategy matrix.
//
// The trail-based propagator (src/solver/propagator.cc) replaces the old
// snapshot-and-rescan solver with incremental undo and support indexes, and
// PR 2 layered conflict-directed backjumping, pluggable variable/value
// orderings, and Luby restarts on top; any bug in any of them silently
// corrupts containment and Datalog answers downstream. This suite enumerates
// every assignment A -> B on small random instances and asserts that every
// configuration in
//
//   {FC, MAC} x {lex, MRV, dom/wdeg} x {lex, LCV} x {CBJ on/off}
//            x {restarts on/off}
//
// returns the *identical solution set* (not just the same count) as the
// oracle, and that EnumerateProjections' row sets are strategy-invariant.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/structure.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

// Every total assignment h: A -> B with h(t) in R^B for all t in R^A, by
// exhaustive enumeration of the |B|^|A| candidates.
std::vector<Homomorphism> ReferenceSolutions(const Structure& a,
                                             const Structure& b) {
  std::vector<Homomorphism> solutions;
  const size_t n = a.universe_size();
  const size_t d = b.universe_size();
  if (d == 0) {
    if (n == 0) solutions.push_back({});
    return solutions;
  }
  Homomorphism h(n, 0);
  while (true) {
    bool ok = true;
    for (RelId id = 0; id < a.vocabulary()->size() && ok; ++id) {
      const Relation& ra = a.relation(id);
      const Relation& rb = b.relation(id);
      std::vector<Element> image(ra.arity());
      for (size_t t = 0; t < ra.tuple_count() && ok; ++t) {
        std::span<const Element> tup = ra.tuple(t);
        for (uint32_t p = 0; p < ra.arity(); ++p) image[p] = h[tup[p]];
        ok = rb.Contains(image);
      }
    }
    if (ok) solutions.push_back(h);
    // Odometer increment over the assignment space.
    size_t i = 0;
    while (i < n && h[i] + 1 == d) h[i++] = 0;
    if (i == n) break;
    ++h[i];
  }
  return solutions;
}

std::set<std::vector<Element>> ProjectRows(
    const std::vector<Homomorphism>& solutions,
    std::span<const Element> projection) {
  std::set<std::vector<Element>> rows;
  for (const Homomorphism& h : solutions) {
    std::vector<Element> row(projection.size());
    for (size_t i = 0; i < projection.size(); ++i) row[i] = h[projection[i]];
    rows.insert(std::move(row));
  }
  return rows;
}

struct NamedConfig {
  std::string name;
  SolveOptions options;
};

// The full strategy matrix. restart_base is tiny so that restart-enabled
// configs actually restart on these instances instead of finishing within
// the first cutoff.
const std::vector<NamedConfig>& StrategyMatrix() {
  static const std::vector<NamedConfig>* matrix = [] {
    auto* configs = new std::vector<NamedConfig>;
    const std::pair<const char*, Propagation> props[] = {
        {"fc", Propagation::kForwardChecking}, {"mac", Propagation::kMac}};
    const std::pair<const char*, VarOrder> var_orders[] = {
        {"lex", VarOrder::kLex},
        {"mrv", VarOrder::kMrv},
        {"domwdeg", VarOrder::kDomWdeg}};
    const std::pair<const char*, ValOrder> val_orders[] = {
        {"lex", ValOrder::kLex},
        {"lcv", ValOrder::kLeastConstraining}};
    for (const auto& [pn, prop] : props) {
      for (const auto& [vn, vo] : var_orders) {
        for (const auto& [van, valo] : val_orders) {
          for (bool cbj : {false, true}) {
            for (bool restarts : {false, true}) {
              NamedConfig c;
              c.name = std::string(pn) + "/" + vn + "/" + van +
                       (cbj ? "/cbj" : "") + (restarts ? "/restart" : "");
              c.options.propagation = prop;
              c.options.strategy.var_order = vo;
              c.options.strategy.val_order = valo;
              c.options.strategy.backjumping = cbj;
              c.options.strategy.restarts = restarts;
              c.options.strategy.restart_base = 2;
              configs->push_back(std::move(c));
            }
          }
        }
      }
    }
    return configs;
  }();
  return *matrix;
}

void CrossCheck(const Structure& a, const Structure& b, Rng& rng) {
  std::vector<Homomorphism> expected = ReferenceSolutions(a, b);
  std::sort(expected.begin(), expected.end());

  // One random projection (possibly with repeated variables, possibly
  // empty) shared across all configs: its row set must be config-invariant.
  std::vector<Element> projection;
  std::set<std::vector<Element>> expected_rows;
  if (a.universe_size() > 0) {
    projection.resize(rng.Below(a.universe_size() + 1));
    for (Element& v : projection) {
      v = static_cast<Element>(rng.Below(a.universe_size()));
    }
    expected_rows = ProjectRows(expected, projection);
  }
  const size_t cap =
      expected_rows.empty() ? 0 : 1 + rng.Below(expected_rows.size());

  for (const NamedConfig& config : StrategyMatrix()) {
    SCOPED_TRACE(config.name);
    BacktrackingSolver solver(a, b, config.options);

    EXPECT_EQ(solver.CountSolutions(), expected.size());
    EXPECT_EQ(solver.Solve().has_value(), !expected.empty());

    std::vector<Homomorphism> enumerated;
    solver.ForEachSolution([&](const Homomorphism& h) {
      enumerated.push_back(h);
      return true;
    });
    std::sort(enumerated.begin(), enumerated.end());
    EXPECT_EQ(enumerated, expected);

    if (a.universe_size() > 0) {
      std::vector<std::vector<Element>> rows =
          solver.EnumerateProjections(projection);
      EXPECT_EQ(std::set<std::vector<Element>>(rows.begin(), rows.end()),
                expected_rows);
      EXPECT_EQ(rows.size(), expected_rows.size()) << "duplicate rows";

      // max_results must cap the row count exactly, never overshoot.
      if (cap > 0) {
        EXPECT_EQ(solver.EnumerateProjections(projection, cap).size(), cap);
      }
      EXPECT_TRUE(solver.EnumerateProjections(projection, 0).empty());
    }
  }
}

TEST(SolverCrossCheckTest, RandomGraphPairs) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(20260729);
  for (int trial = 0; trial < 110; ++trial) {
    const size_t n = 1 + rng.Below(4);
    const size_t m = 1 + rng.Below(3);
    Structure a = RandomGraphStructure(vocab, n, 0.5, rng, /*symmetric=*/false);
    Structure b = RandomGraphStructure(vocab, m, 0.6, rng, /*symmetric=*/false);
    CrossCheck(a, b, rng);
  }
}

TEST(SolverCrossCheckTest, RandomMixedArityPairs) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  vocab->AddRelation("T", 3);
  vocab->AddRelation("U", 1);
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 90; ++trial) {
    const size_t n = 1 + rng.Below(4);
    const size_t m = 1 + rng.Below(3);
    // Random tuple counts leave some relations empty and some with repeated
    // tuples — exercising constraint dedup and the repeated-variable paths.
    Structure a = RandomStructure(vocab, n, rng.Below(5), rng);
    Structure b = RandomStructure(vocab, m, rng.Below(7), rng);
    CrossCheck(a, b, rng);
  }
}

TEST(SolverCrossCheckTest, StructuredPairs) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(7);
  CrossCheck(UndirectedCycleStructure(vocab, 4), PathStructure(vocab, 2), rng);
  CrossCheck(UndirectedCycleStructure(vocab, 5), CliqueStructure(vocab, 3),
             rng);
  CrossCheck(DirectedCycleStructure(vocab, 6), DirectedCycleStructure(vocab, 3),
             rng);
  CrossCheck(PathStructure(vocab, 4), PathStructure(vocab, 4), rng);
}

// Thread-count invariance oracle: the parallel search must deliver the
// *identical* solution set, solution count, and projection row set as the
// sequential path for every worker count, across the same kind of
// randomized instance net the strategy matrix runs on. Instances here are
// larger than the brute-force net (the sequential solver is the oracle, so
// no |B|^|A| enumeration caps the size) — big enough that splitting and
// stealing actually happen.
void ThreadInvarianceCheck(const Structure& a, const Structure& b, Rng& rng) {
  // A couple of strategy corners: the default, and everything on at once.
  std::vector<SolveOptions> configs(2);
  configs[1].propagation = Propagation::kForwardChecking;
  configs[1].strategy.var_order = VarOrder::kDomWdeg;
  configs[1].strategy.val_order = ValOrder::kLeastConstraining;
  configs[1].strategy.backjumping = true;

  std::vector<Element> projection;
  if (a.universe_size() > 0) {
    projection.resize(rng.Below(a.universe_size() + 1));
    for (Element& v : projection) {
      v = static_cast<Element>(rng.Below(a.universe_size()));
    }
  }

  for (size_t ci = 0; ci < configs.size(); ++ci) {
    SCOPED_TRACE(ci == 0 ? "default" : "fc/domwdeg/lcv/cbj");
    BacktrackingSolver oracle(a, b, configs[ci]);
    std::vector<Homomorphism> expected;
    oracle.ForEachSolution([&](const Homomorphism& h) {
      expected.push_back(h);
      return true;
    });
    std::sort(expected.begin(), expected.end());
    std::vector<std::vector<Element>> oracle_rows =
        oracle.EnumerateProjections(projection);
    const std::set<std::vector<Element>> expected_rows(oracle_rows.begin(),
                                                       oracle_rows.end());

    for (unsigned threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(threads);
      SolveOptions options = configs[ci];
      options.num_threads = threads;
      BacktrackingSolver solver(a, b, options);

      EXPECT_EQ(solver.CountSolutions(), expected.size());
      auto h = solver.Solve();
      EXPECT_EQ(h.has_value(), !expected.empty());
      if (h.has_value()) {
        EXPECT_TRUE(std::binary_search(expected.begin(), expected.end(), *h));
      }

      std::vector<Homomorphism> enumerated;
      solver.ForEachSolution([&](const Homomorphism& sol) {
        enumerated.push_back(sol);
        return true;
      });
      std::sort(enumerated.begin(), enumerated.end());
      EXPECT_EQ(enumerated, expected);

      std::vector<std::vector<Element>> rows =
          solver.EnumerateProjections(projection);
      EXPECT_EQ(std::set<std::vector<Element>>(rows.begin(), rows.end()),
                expected_rows);
      EXPECT_EQ(rows.size(), expected_rows.size()) << "duplicate rows";
    }
  }
}

TEST(SolverCrossCheckTest, ThreadCountInvariance) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(0x9a11e1);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t n = 6 + rng.Below(5);
    const size_t m = 3 + rng.Below(2);
    Structure a = RandomGraphStructure(vocab, n, 0.4, rng, /*symmetric=*/true);
    Structure b = RandomGraphStructure(vocab, m, 0.7, rng, /*symmetric=*/true);
    ThreadInvarianceCheck(a, b, rng);
  }
  // Structured corners: heavy solution counts and a guaranteed refutation.
  ThreadInvarianceCheck(UndirectedCycleStructure(vocab, 10),
                        CliqueStructure(vocab, 3), rng);
  ThreadInvarianceCheck(UndirectedCycleStructure(vocab, 9),
                        CliqueStructure(vocab, 2), rng);
}

TEST(SolverCrossCheckTest, EmptyAndDegenerate) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(11);
  // Empty A maps (vacuously, uniquely) into anything, including empty B.
  CrossCheck(Structure(vocab, 0), Structure(vocab, 0), rng);
  CrossCheck(Structure(vocab, 0), CliqueStructure(vocab, 3), rng);
  // Nonempty A with empty-universe B has no assignments at all.
  CrossCheck(PathStructure(vocab, 3), Structure(vocab, 0), rng);
  // Self-loop in A forces a loop in B.
  Structure loop(vocab, 1);
  loop.AddTuple(0, {0, 0});
  CrossCheck(loop, CliqueStructure(vocab, 2), rng);
  Structure loopy_b(vocab, 2);
  loopy_b.AddTuple(0, {0, 0});
  loopy_b.AddTuple(0, {0, 1});
  CrossCheck(loop, loopy_b, rng);
}

}  // namespace
}  // namespace cqcs
