// Randomized cross-check of the trail/indexed backtracking solver against a
// brute-force reference enumerator.
//
// The trail-based propagator (src/solver/propagator.cc) replaces the old
// snapshot-and-rescan solver with incremental undo and support indexes; any
// bug there silently corrupts containment and Datalog answers downstream.
// This suite enumerates every assignment A -> B on small random instances
// and asserts that CountSolutions and EnumerateProjections agree exactly,
// under both forward checking and MAC.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/structure.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

// Every total assignment h: A -> B with h(t) in R^B for all t in R^A, by
// exhaustive enumeration of the |B|^|A| candidates.
std::vector<Homomorphism> ReferenceSolutions(const Structure& a,
                                             const Structure& b) {
  std::vector<Homomorphism> solutions;
  const size_t n = a.universe_size();
  const size_t d = b.universe_size();
  if (d == 0) {
    if (n == 0) solutions.push_back({});
    return solutions;
  }
  Homomorphism h(n, 0);
  while (true) {
    bool ok = true;
    for (RelId id = 0; id < a.vocabulary()->size() && ok; ++id) {
      const Relation& ra = a.relation(id);
      const Relation& rb = b.relation(id);
      std::vector<Element> image(ra.arity());
      for (size_t t = 0; t < ra.tuple_count() && ok; ++t) {
        std::span<const Element> tup = ra.tuple(t);
        for (uint32_t p = 0; p < ra.arity(); ++p) image[p] = h[tup[p]];
        ok = rb.Contains(image);
      }
    }
    if (ok) solutions.push_back(h);
    // Odometer increment over the assignment space.
    size_t i = 0;
    while (i < n && h[i] + 1 == d) h[i++] = 0;
    if (i == n) break;
    ++h[i];
  }
  return solutions;
}

std::set<std::vector<Element>> ProjectRows(
    const std::vector<Homomorphism>& solutions,
    std::span<const Element> projection) {
  std::set<std::vector<Element>> rows;
  for (const Homomorphism& h : solutions) {
    std::vector<Element> row(projection.size());
    for (size_t i = 0; i < projection.size(); ++i) row[i] = h[projection[i]];
    rows.insert(std::move(row));
  }
  return rows;
}

void CrossCheck(const Structure& a, const Structure& b, Rng& rng) {
  std::vector<Homomorphism> expected = ReferenceSolutions(a, b);
  std::sort(expected.begin(), expected.end());

  for (Propagation propagation :
       {Propagation::kForwardChecking, Propagation::kMac}) {
    SolveOptions options;
    options.propagation = propagation;
    BacktrackingSolver solver(a, b, options);

    EXPECT_EQ(solver.CountSolutions(), expected.size());
    EXPECT_EQ(solver.Solve().has_value(), !expected.empty());

    std::vector<Homomorphism> enumerated;
    solver.ForEachSolution([&](const Homomorphism& h) {
      enumerated.push_back(h);
      return true;
    });
    std::sort(enumerated.begin(), enumerated.end());
    EXPECT_EQ(enumerated, expected);

    // A random projection (possibly with repeated variables, possibly
    // empty) must enumerate exactly the distinct projected rows.
    if (a.universe_size() > 0) {
      std::vector<Element> projection(rng.Below(a.universe_size() + 1));
      for (Element& v : projection) {
        v = static_cast<Element>(rng.Below(a.universe_size()));
      }
      std::set<std::vector<Element>> expected_rows =
          ProjectRows(expected, projection);
      std::vector<std::vector<Element>> rows =
          solver.EnumerateProjections(projection);
      EXPECT_EQ(std::set<std::vector<Element>>(rows.begin(), rows.end()),
                expected_rows);
      EXPECT_EQ(rows.size(), expected_rows.size()) << "duplicate rows";

      // max_results must cap the row count exactly, never overshoot.
      if (!expected_rows.empty()) {
        const size_t cap = 1 + rng.Below(expected_rows.size());
        EXPECT_EQ(solver.EnumerateProjections(projection, cap).size(), cap);
      }
      EXPECT_TRUE(solver.EnumerateProjections(projection, 0).empty());
    }
  }
}

TEST(SolverCrossCheckTest, RandomGraphPairs) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(20260729);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 1 + rng.Below(4);
    const size_t m = 1 + rng.Below(3);
    Structure a = RandomGraphStructure(vocab, n, 0.5, rng, /*symmetric=*/false);
    Structure b = RandomGraphStructure(vocab, m, 0.6, rng, /*symmetric=*/false);
    CrossCheck(a, b, rng);
  }
}

TEST(SolverCrossCheckTest, RandomMixedArityPairs) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  vocab->AddRelation("T", 3);
  vocab->AddRelation("U", 1);
  Rng rng(0xc0ffee);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 1 + rng.Below(4);
    const size_t m = 1 + rng.Below(3);
    // Random tuple counts leave some relations empty and some with repeated
    // tuples — exercising constraint dedup and the repeated-variable paths.
    Structure a = RandomStructure(vocab, n, rng.Below(5), rng);
    Structure b = RandomStructure(vocab, m, rng.Below(7), rng);
    CrossCheck(a, b, rng);
  }
}

TEST(SolverCrossCheckTest, StructuredPairs) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(7);
  CrossCheck(UndirectedCycleStructure(vocab, 4), PathStructure(vocab, 2), rng);
  CrossCheck(UndirectedCycleStructure(vocab, 5), CliqueStructure(vocab, 3),
             rng);
  CrossCheck(DirectedCycleStructure(vocab, 6), DirectedCycleStructure(vocab, 3),
             rng);
  CrossCheck(PathStructure(vocab, 4), PathStructure(vocab, 4), rng);
}

TEST(SolverCrossCheckTest, EmptyAndDegenerate) {
  VocabularyPtr vocab = MakeGraphVocabulary();
  Rng rng(11);
  // Empty A maps (vacuously, uniquely) into anything, including empty B.
  CrossCheck(Structure(vocab, 0), Structure(vocab, 0), rng);
  CrossCheck(Structure(vocab, 0), CliqueStructure(vocab, 3), rng);
  // Nonempty A with empty-universe B has no assignments at all.
  CrossCheck(PathStructure(vocab, 3), Structure(vocab, 0), rng);
  // Self-loop in A forces a loop in B.
  Structure loop(vocab, 1);
  loop.AddTuple(0, {0, 0});
  CrossCheck(loop, CliqueStructure(vocab, 2), rng);
  Structure loopy_b(vocab, 2);
  loopy_b.AddTuple(0, {0, 0});
  loopy_b.AddTuple(0, {0, 1});
  CrossCheck(loop, loopy_b, rng);
}

}  // namespace
}  // namespace cqcs
