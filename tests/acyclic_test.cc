// Tests for acyclic conjunctive queries: GYO acyclicity, join trees,
// Yannakakis evaluation, and polynomial containment with acyclic right-hand
// sides (the [Yan81]/[CR97] line the paper's introduction discusses).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/acyclic.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/generators.h"

namespace cqcs {
namespace {

ConjunctiveQuery MustParse(std::string_view text, VocabularyPtr vocab = {}) {
  auto q = vocab == nullptr ? ParseQuery(text) : ParseQuery(text, vocab);
  CQCS_CHECK_MSG(q.ok(), q.status().ToString());
  return *std::move(q);
}

TEST(AcyclicTest, ChainsAndStarsAreAcyclic) {
  auto vocab = MakeGraphVocabulary();
  EXPECT_TRUE(IsAcyclicQuery(ChainQuery(vocab, 5)));
  EXPECT_TRUE(IsAcyclicQuery(StarQuery(vocab, 4)));
}

TEST(AcyclicTest, TriangleIsCyclic) {
  auto q = MustParse("Q() :- E(X, Y), E(Y, Z), E(Z, X).");
  EXPECT_FALSE(IsAcyclicQuery(q));
  EXPECT_FALSE(BuildJoinTree(q).ok());
}

TEST(AcyclicTest, WideAtomsMakeCyclesAcyclic) {
  // A triangle closed off by a covering ternary atom is alpha-acyclic.
  auto q = MustParse("Q() :- E(X, Y), E(Y, Z), E(Z, X), T(X, Y, Z).");
  EXPECT_TRUE(IsAcyclicQuery(q));
}

TEST(AcyclicTest, JoinTreeShape) {
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, 4);
  auto tree = BuildJoinTree(chain);
  ASSERT_TRUE(tree.ok());
  size_t roots = 0;
  for (uint32_t p : tree->parent) {
    if (p == JoinTree::kNoParent) ++roots;
  }
  EXPECT_EQ(roots, 1u);
}

TEST(AcyclicTest, YannakakisMatchesBacktrackingEvaluation) {
  Rng rng(83);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 40; ++trial) {
    // Random acyclic query: a chain or a star with random extras that keep
    // acyclicity (attach a fresh leaf variable to an existing one).
    ConjunctiveQuery q(vocab, "Q");
    RelId e = 0;
    VarId v0 = q.GetOrCreateVar("V0");
    std::vector<VarId> vars{v0};
    size_t atoms = 1 + rng.Below(6);
    for (size_t i = 0; i < atoms; ++i) {
      VarId existing = vars[rng.Below(vars.size())];
      VarId fresh = q.GetOrCreateVar("V" + std::to_string(vars.size()));
      vars.push_back(fresh);
      if (rng.Chance(0.5)) {
        q.AddAtom(e, {existing, fresh});
      } else {
        q.AddAtom(e, {fresh, existing});
      }
    }
    q.SetHead({});
    ASSERT_TRUE(IsAcyclicQuery(q)) << ToString(q);
    Structure d = RandomGraphStructure(vocab, 2 + rng.Below(5), 0.3, rng,
                                       false);
    auto fast = EvaluateBooleanAcyclic(q, d);
    auto slow = EvaluateBoolean(q, d);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << ToString(q);
  }
}

TEST(AcyclicTest, EmptyDatabaseFails) {
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, 2);
  Structure d(vocab, 3);  // no edges
  auto r = EvaluateBooleanAcyclic(chain, d);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(AcyclicTest, ContainmentMatchesGeneric) {
  auto vocab = MakeGraphVocabulary();
  struct Pair {
    const char* q1;
    const char* q2;
  };
  std::vector<Pair> pairs = {
      {"Q(X) :- E(X, Y), E(Y, Z), E(Z, X).", "Q(X) :- E(X, Y)."},
      {"Q(X) :- E(X, Y).", "Q(X) :- E(X, Y), E(Y, Z)."},
      {"Q(X, Y) :- E(X, Y).", "Q(Y, X) :- E(X, Y)."},
      {"Q() :- E(X, Y), E(Y, X).", "Q() :- E(X, Y)."},
      {"Q(X) :- E(X, X).", "Q(X) :- E(X, Y), E(Y, Z)."},
  };
  for (const auto& [t1, t2] : pairs) {
    ConjunctiveQuery q1 = MustParse(t1, vocab);
    ConjunctiveQuery q2 = MustParse(t2, vocab);
    auto fast = AcyclicContainment(q1, q2);
    auto slow = IsContained(q1, q2);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString() << " for " << t1;
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << t1 << " vs " << t2;
  }
}

TEST(AcyclicTest, RandomAcyclicContainmentSweep) {
  Rng rng(89);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 30; ++trial) {
    ConjunctiveQuery q1 =
        RandomQuery(vocab, 2 + rng.Below(3), 2 + rng.Below(4), rng);
    ConjunctiveQuery q2 = ChainQuery(vocab, 1 + rng.Below(4));
    if (q1.arity() != q2.arity()) {
      // ChainQuery is binary-headed; rebuild q1's head to match.
      std::vector<VarId> head = {q1.head()[0], q1.head()[0]};
      q1.SetHead(head);
    }
    auto fast = AcyclicContainment(q1, q2);
    auto slow = IsContained(q1, q2);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(*fast, *slow) << ToString(q1) << " vs " << ToString(q2);
  }
}

TEST(AcyclicTest, CyclicRightSideRejected) {
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery q1 = MustParse("Q() :- E(X, Y).", vocab);
  ConjunctiveQuery q2 = MustParse("Q() :- E(X, Y), E(Y, Z), E(Z, X).", vocab);
  auto r = AcyclicContainment(q1, q2);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cqcs
