// Concurrency stress for the serving path (`ctest -L serve`; run under
// -DCQCS_SANITIZE=thread for the race check).
//
// Two nets:
//   - N threads hammer ONE shared HomProblem through mixed tasks and
//     WithTarget rebinds. The problem's lazy caches (canonical query, GYO
//     verdict, decomposition, CSP) are mutex-guarded and built at most
//     once; every concurrent answer must equal the sequentially computed
//     oracle for its (target, task) cell.
//   - N threads drive one ServingEngine with mixed reads and updates: the
//     reads hit databases that are never updated (so every answer is
//     oracle-checkable even mid-race) while a writer thread churns a
//     separate database, racing the invalidation sweeps against the
//     readers' cache probes.
//   - The same shape over a DURABLE engine with an aggressive snapshot
//     threshold: writers keep forcing log rotations (under the registry
//     lock) while snapshot serialization and pruning run outside it, and
//     readers keep serving throughout. A reopen afterwards must recover
//     the exact final catalog.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "core/io.h"
#include "cq/parser.h"
#include "cq/query.h"
#include "gen/generators.h"
#include "serve/serving.h"

namespace cqcs {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 40;

TEST(ServeStressTest, SharedProblemMixedTasksAndRebindsMatchOracle) {
  auto vocab = MakeGraphVocabulary();
  Rng rng(0x57a6);
  Structure source = StructureFromGraph(vocab, RandomTree(10, rng));
  std::vector<Structure> targets;
  for (int t = 0; t < 4; ++t) {
    Rng target_rng(100 + t);
    targets.push_back(
        RandomGraphStructure(vocab, 12, 0.25, target_rng, /*symmetric=*/true));
  }

  EngineOptions options;
  options.count_limit = 1u << 20;
  options.max_results = 256;

  // Sequential oracle per (target, task) cell, computed on throwaway
  // problems before any concurrency starts.
  struct Cell {
    bool decided = false;
    size_t count = 0;
    size_t rows = 0;
  };
  std::vector<Cell> oracle(targets.size());
  for (size_t t = 0; t < targets.size(); ++t) {
    auto problem = HomProblem::FromStructures(source, targets[t]);
    ASSERT_TRUE(problem.ok());
    HomEngine engine(options);
    auto decide = engine.Run(*problem, HomTask::kDecide);
    auto count = engine.Run(*problem, HomTask::kCount);
    auto enumerate = engine.Run(*problem, HomTask::kEnumerate);
    ASSERT_TRUE(decide.ok() && count.ok() && enumerate.ok());
    oracle[t] = Cell{decide->decided, count->count, enumerate->rows.size()};
  }

  // The single shared problem every thread runs against; rebinds share its
  // source cache by construction.
  auto base = HomProblem::FromStructures(source, targets[0]);
  ASSERT_TRUE(base.ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int worker = 0; worker < kThreads; ++worker) {
    threads.emplace_back([&, worker] {
      HomEngine engine(options);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const size_t t = (worker + i) % targets.size();
        const int task_code = (worker * 7 + i) % 3;
        // Every iteration rebinds (including back to targets[0]): the
        // rebind path itself is part of what must be race-free.
        auto bound = base->WithTarget(targets[t]);
        if (!bound.ok()) {
          ++failures;
          continue;
        }
        const HomTask task = task_code == 0   ? HomTask::kDecide
                             : task_code == 1 ? HomTask::kCount
                                              : HomTask::kEnumerate;
        auto r = engine.Run(*bound, task);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        const Cell& expected = oracle[t];
        const bool match =
            task == HomTask::kDecide  ? r->decided == expected.decided
            : task == HomTask::kCount ? r->count == expected.count
                                      : r->rows.size() == expected.rows;
        if (!match) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServeStressTest, ConcurrentServeAndUpdateStayCoherent) {
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.engine.count_limit = 1u << 20;
  serve::ServingEngine serving(options);

  // Stable databases: read by every thread, never updated, so the answers
  // are oracle-checkable even while the writer churns "hot".
  std::vector<Structure> stable;
  std::vector<std::string> queries;
  for (int d = 0; d < 2; ++d) {
    Rng rng(200 + d);
    stable.push_back(
        RandomGraphStructure(vocab, 16, 0.25, rng, /*symmetric=*/true));
    ASSERT_TRUE(
        serving.UpsertDatabase("stable" + std::to_string(d), stable[d]).ok());
  }
  for (size_t len = 2; len <= 4; ++len) {
    queries.push_back(ToString(ChainQuery(vocab, len)));
    queries.push_back(ToString(StarQuery(vocab, len)));
  }
  std::vector<std::vector<size_t>> oracle_counts(stable.size());
  for (size_t d = 0; d < stable.size(); ++d) {
    for (const std::string& q_text : queries) {
      auto q = ParseQuery(q_text, stable[d].vocabulary());
      ASSERT_TRUE(q.ok());
      auto problem = HomProblem::FromQuery(*q, stable[d]);
      ASSERT_TRUE(problem.ok());
      HomEngine engine(options.engine);
      auto r = engine.Run(*problem, HomTask::kCount);
      ASSERT_TRUE(r.ok());
      oracle_counts[d].push_back(r->count);
    }
  }

  Rng hot_rng(0x407);
  ASSERT_TRUE(serving
                  .UpsertDatabase("hot", RandomGraphStructure(
                                             vocab, 16, 0.25, hot_rng,
                                             /*symmetric=*/true))
                  .ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Churn the hot database: each upsert bumps its version and races the
    // invalidation sweep against the readers below.
    uint64_t version = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Rng rng(0x407 + ++version);
      Structure db =
          RandomGraphStructure(vocab, 16, 0.25, rng, /*symmetric=*/true);
      if (!serving.UpsertDatabase("hot", std::move(db)).ok()) ++failures;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int worker = 0; worker < kThreads; ++worker) {
    readers.emplace_back([&, worker] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const size_t q = (worker * 5 + i) % queries.size();
        serve::ServeRequest request;
        request.query = queries[q];
        request.task = HomTask::kCount;
        if (i % 4 == 3) {
          // Reads of the churning database exercise the registry/cache
          // races; any registered version's answer is acceptable, but the
          // serve itself must succeed.
          request.database = "hot";
          if (!serving.Serve(request).ok()) ++failures;
          continue;
        }
        const size_t d = (worker + i) % stable.size();
        request.database = "stable" + std::to_string(d);
        auto r = serving.Serve(request);
        if (!r.ok() || r->count != oracle_counts[d][q]) ++failures;
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  const serve::ServeStats stats = serving.stats();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.served, stats.requests);  // no admission bounds set
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(stats.updates, 2u);
}

TEST(ServeStressTest, DurableConcurrentUpdatesSnapshotWithoutBlockingReads) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "cqcs_serve_stress_durable")
          .string();
  std::filesystem::remove_all(dir);
  auto vocab = MakeGraphVocabulary();
  serve::ServeOptions options;
  options.durability.data_dir = dir;
  // Every few updates crosses the threshold: rotations (under the registry
  // lock) constantly interleave with snapshot writes (outside it) while
  // readers and other writers keep going.
  options.durability.snapshot_every_records = 4;
  options.durability.fsync = serve::FsyncPolicy::kNever;  // speed, not loss
  {
    serve::ServingEngine serving(options);
    ASSERT_TRUE(serving.Open(nullptr).ok());
    Rng seed_rng(0xd0c);
    ASSERT_TRUE(
        serving
            .UpsertDatabase("read0", RandomGraphStructure(vocab, 12, 0.3,
                                                          seed_rng,
                                                          /*symmetric=*/true))
            .ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
      writers.emplace_back([&, w] {
        // Each writer owns its names: per-name versions stay deterministic
        // while rotations and snapshot writes race across writers.
        for (int i = 0; i < kOpsPerThread; ++i) {
          Rng rng(w * 1000 + i);
          Structure db =
              RandomGraphStructure(vocab, 10, 0.3, rng, /*symmetric=*/true);
          const std::string name =
              "w" + std::to_string(w) + "-" + std::to_string(i % 3);
          if (!serving.UpsertDatabase(name, std::move(db)).ok()) ++failures;
        }
      });
    }
    std::vector<std::thread> readers;
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&] {
        serve::ServeRequest request;
        request.query = "Q() :- E(X, Y), E(Y, Z).";
        request.database = "read0";
        request.task = HomTask::kDecide;
        for (int i = 0; i < kOpsPerThread; ++i) {
          if (!serving.Serve(request).ok()) ++failures;
        }
      });
    }
    for (auto& t : writers) t.join();
    for (auto& t : readers) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_FALSE(serving.degraded());
    const serve::ServeStats stats = serving.stats();
    EXPECT_GT(stats.snapshots, 0u);
    EXPECT_EQ(stats.snapshot_failures, 0u);
    // Recovery must reproduce the final catalog exactly: names, versions,
    // and contents.
    auto expected = serving.ListDatabases();
    serve::ServingEngine reopened(options);
    ASSERT_TRUE(reopened.Open(nullptr).ok());
    EXPECT_EQ(reopened.ListDatabases(), expected);
    for (const auto& [name, version] : expected) {
      auto ours = serving.GetDatabase(name);
      auto theirs = reopened.GetDatabase(name);
      ASSERT_TRUE(ours.ok() && theirs.ok()) << name;
      EXPECT_EQ(PrintStructure(**ours), PrintStructure(**theirs)) << name;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cqcs
