// Durability net: CRC32C vectors, catalog round-trips, WAL recovery,
// torn-tail truncation at every byte offset, FaultyFs failpoint matrices
// (fail / short-write the Nth write, fsync, rename), snapshot generations,
// and the ServingEngine's degraded mode + poison-query quarantine.
//
// The invariant every matrix asserts: the recovered catalog equals the
// ACKNOWLEDGED catalog exactly — an update whose append failed must never
// resurrect, an update that was acknowledged must never vanish (under
// FsyncPolicy::kAlways), and recovery itself must never crash, whatever
// the bytes on disk.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/fs.h"
#include "core/io.h"
#include "serve/durability.h"
#include "serve/serving.h"

namespace cqcs {
namespace {

using serve::DurabilityManager;
using serve::DurabilityOptions;
using serve::FsyncPolicy;
using serve::RecoveryInfo;

// ---------------------------------------------------------------- helpers ---

/// A fresh scratch directory under the test temp root, removed on exit.
/// The pid keeps concurrently running test processes (ctest -j) from
/// sharing a path: the per-process counter and gtest's random_seed are
/// identical across processes, and two tests deleting each other's WAL
/// mid-matrix shows up as phantom "resurrected" catalog entries.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("cqcs_durability_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter_++)))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

Structure MakeDb(uint32_t universe, const std::string& tuples) {
  auto parsed = ParseStructure("universe " + std::to_string(universe) +
                               "\nE/2:" + tuples + "\n");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

DurabilityOptions Opts(const std::string& dir, FileSystem* fs = nullptr,
                       Clock* clock = nullptr) {
  DurabilityOptions o;
  o.data_dir = dir;
  o.fsync = FsyncPolicy::kAlways;
  o.snapshot_every_records = 0;  // tests trigger snapshots explicitly
  o.fs = fs;
  o.clock = clock;
  return o;
}

/// Names of the entries a recovery produced, sorted.
std::vector<std::string> Names(const std::vector<CatalogEntry>& entries) {
  std::vector<std::string> names;
  for (const auto& e : entries) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}

// ----------------------------------------------------------------- crc32c ---

TEST(Crc32c, KnownVectors) {
  // The Castagnoli check value (RFC 3720 appendix B.4 et al.).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  // 32 zero bytes — the iSCSI test vector.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox";
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t first = Crc32c(data.data(), 7);
  const uint32_t chained = Crc32c(data.data() + 7, data.size() - 7, first);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data = "framing test payload";
  const uint32_t good = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32c(data.data(), data.size()), good) << "offset " << i;
    data[i] ^= 0x01;
  }
}

// ---------------------------------------------------------------- catalog ---

TEST(Catalog, RoundTripsExactly) {
  std::vector<CatalogEntry> entries;
  entries.push_back(CatalogEntry{"alpha", 3, MakeDb(3, " 0 1, 1 2")});
  entries.push_back(CatalogEntry{"beta", 1, MakeDb(2, " 0 0")});
  const std::string text = PrintCatalog(entries);
  auto parsed = ParseCatalog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, "alpha");
  EXPECT_EQ((*parsed)[0].version, 3u);
  EXPECT_EQ((*parsed)[1].name, "beta");
  EXPECT_EQ((*parsed)[1].version, 1u);
  // Byte-exact second round trip.
  EXPECT_EQ(PrintCatalog(*parsed), text);
}

TEST(Catalog, EmptyCatalogRoundTrips) {
  auto parsed = ParseCatalog(PrintCatalog({}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(Catalog, RejectsCorruptInputsWithoutAborting) {
  // Every deviation is a ParseError, never a crash: these bytes arrive
  // from disk after a kill -9.
  const char* bad[] = {
      "",                                          // no header
      "cqcs-catalog 2\n",                          // wrong version
      "cqcs-catalog 1\nfoo bar\n",                 // not a db line
      "cqcs-catalog 1\ndb\n",                      // truncated db line
      "cqcs-catalog 1\ndb a\n",                    // missing version
      "cqcs-catalog 1\ndb a x\n",                  // bad version
      "cqcs-catalog 1\ndb a 1\nuniverse 1\n",      // missing 'end'
      "cqcs-catalog 1\ndb a 1\nnot a structure\nend\n",  // bad structure
      "cqcs-catalog 1\ndb a 1\nuniverse 1\nend\n"
      "db a 2\nuniverse 1\nend\n",                 // duplicate name
  };
  for (const char* text : bad) {
    auto parsed = ParseCatalog(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
  }
}

TEST(Catalog, ZeroArityRelationIsParseErrorNotAbort) {
  // The io Result<> sweep: a zero-arity declaration used to reach the
  // CHECK-failing vocabulary AddRelation via the inference path.
  auto parsed = ParseCatalog("cqcs-catalog 1\ndb a 1\nuniverse 1\nE/0:\nend\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  auto direct = ParseStructure("universe 1\nE/0:\n");
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kParseError);
}

// ----------------------------------------------------------- wal recovery ---

TEST(Durability, OpenOnEmptyDirIsCleanSlate) {
  ScratchDir dir("empty");
  std::vector<CatalogEntry> recovered;
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_TRUE(recovered.empty());
  EXPECT_FALSE(info.snapshot_loaded);
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_TRUE(info.warnings.empty());
}

TEST(Durability, AppendsRecoverAcrossReopen) {
  ScratchDir dir("reopen");
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(3, " 1 2")).ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 2, MakeDb(2, " 1 0")).ok());
    ASSERT_TRUE((*mgr)->AppendDrop("b").ok());
  }
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ(info.records_replayed, 4u);
  EXPECT_FALSE(info.tail_truncated);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].name, "a");
  EXPECT_EQ(recovered[0].version, 2u);
  EXPECT_EQ(PrintStructure(recovered[0].db),
            PrintStructure(MakeDb(2, " 1 0")));
}

TEST(Durability, SnapshotSwitchesGenerationAndPrunesOldFiles) {
  ScratchDir dir("snapshot");
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
    std::vector<CatalogEntry> catalog;
    catalog.push_back(CatalogEntry{"a", 1, MakeDb(2, " 0 1")});
    ASSERT_TRUE((*mgr)->Snapshot(catalog).ok());
    EXPECT_EQ((*mgr)->generation(), 1u);
    // Post-snapshot appends land in the new generation's log.
    ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 1 1")).ok());
  }
  EXPECT_FALSE(RealFileSystem()->Exists(dir.path() + "/wal-0"));
  EXPECT_TRUE(RealFileSystem()->Exists(dir.path() + "/snapshot-1"));
  EXPECT_TRUE(RealFileSystem()->Exists(dir.path() + "/wal-1"));
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok());
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.records_replayed, 1u);  // only "b", "a" came from the snapshot
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a", "b"}));
}

TEST(Durability, SnapshotDueHonorsThreshold) {
  ScratchDir dir("due");
  DurabilityOptions options = Opts(dir.path());
  options.snapshot_every_records = 2;
  std::vector<CatalogEntry> recovered;
  auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
  ASSERT_TRUE(mgr.ok());
  EXPECT_FALSE((*mgr)->SnapshotDue());
  ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_FALSE((*mgr)->SnapshotDue());
  ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_TRUE((*mgr)->SnapshotDue());
  ASSERT_TRUE((*mgr)->Snapshot({}).ok());
  EXPECT_FALSE((*mgr)->SnapshotDue());
}

TEST(Durability, AllSnapshotsCorruptRefusesToOpen) {
  ScratchDir dir("badsnap");
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->Snapshot({}).ok());
  }
  // Corrupt the only snapshot: recovery must refuse, not guess.
  auto trunc = RealFileSystem()->Truncate(dir.path() + "/snapshot-1", 4);
  ASSERT_TRUE(trunc.ok());
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
  EXPECT_FALSE(mgr.ok());
}

TEST(Durability, OlderValidSnapshotCoversACorruptNewerOne) {
  ScratchDir dir("fallback");
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    std::vector<CatalogEntry> catalog;
    catalog.push_back(CatalogEntry{"a", 1, MakeDb(2, " 0 1")});
    ASSERT_TRUE((*mgr)->Snapshot(catalog).ok());          // snapshot-1
    catalog.push_back(CatalogEntry{"b", 1, MakeDb(2, "")});
    ASSERT_TRUE((*mgr)->Snapshot(catalog).ok());          // snapshot-2
  }
  // snapshot-2 corrupt, snapshot-1 gone (pruned) — recreate the layered
  // case by hand: write a valid older snapshot next to the corrupt newer.
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());  // sanity: snapshot-2 currently valid
    EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a", "b"}));
  }
  // Make a fake older snapshot that is VALID by copying snapshot-2's bytes
  // to snapshot-1... instead simply corrupt snapshot-2 after planting a
  // valid snapshot-1 via a fresh manager in a sibling dir.
  auto bytes = RealFileSystem()->ReadFile(dir.path() + "/snapshot-2");
  ASSERT_TRUE(bytes.ok());
  {
    std::ofstream out(dir.path() + "/snapshot-1", std::ios::binary);
    out << *bytes;
  }
  ASSERT_TRUE(RealFileSystem()->Truncate(dir.path() + "/snapshot-2", 7).ok());
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(info.generation, 1u);
  EXPECT_FALSE(info.warnings.empty());  // the invalid newer one was reported
  // The fallback serves snapshot-1's state, but wal-2 holds records from
  // AFTER the (unreadable) snapshot-2 — appending at generation 1 and then
  // replaying wal-2 on a later recovery would reorder history, so the log
  // is poisoned: reads serve, updates refuse.
  EXPECT_TRUE((*mgr)->stats().poisoned);
  EXPECT_FALSE((*mgr)->AppendUpsert("c", 1, MakeDb(2, " 0 0")).ok());
}

// ------------------------------------------------------------- torn tails ---

TEST(Durability, TornTailIsTruncatedAndReopenIsIdempotent) {
  ScratchDir dir("torn");
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 1 0")).ok());
  }
  auto good = RealFileSystem()->ReadFile(dir.path() + "/wal-0");
  ASSERT_TRUE(good.ok());
  // Simulate dying mid-append: half a record's worth of garbage.
  {
    std::ofstream out(dir.path() + "/wal-0",
                      std::ios::binary | std::ios::app);
    out << "\x13\x00\x00\x00garbage";
  }
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok());
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_GT(info.tail_bytes_dropped, 0u);
  EXPECT_FALSE(info.warnings.empty());
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a", "b"}));
  // The repair was physical: the file is byte-identical to the good log,
  // and a second open sees nothing wrong.
  auto repaired = RealFileSystem()->ReadFile(dir.path() + "/wal-0");
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(*repaired, *good);
  mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok());
  EXPECT_FALSE(info.tail_truncated);
  EXPECT_TRUE(info.warnings.empty());
}

TEST(Durability, CorruptByteAtEveryOffsetNeverCrashesRecovery) {
  // Build a small WAL of three records, then for EVERY byte offset flip
  // that byte and recover. The recovered catalog must always be a prefix
  // of the applied sequence, and recovery must never fail or crash.
  ScratchDir dir("flip");
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 1 0")).ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("c", 1, MakeDb(2, " 1 1")).ok());
  }
  const std::string wal_path = dir.path() + "/wal-0";
  auto pristine = RealFileSystem()->ReadFile(wal_path);
  ASSERT_TRUE(pristine.ok());
  const std::vector<std::vector<std::string>> prefixes = {
      {}, {"a"}, {"a", "b"}, {"a", "b", "c"}};
  for (size_t offset = 0; offset < pristine->size(); ++offset) {
    std::string mutated = *pristine;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0xFF);
    {
      std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    RecoveryInfo info;
    auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
    ASSERT_TRUE(mgr.ok()) << "offset " << offset << ": "
                          << mgr.status().ToString();
    mgr->reset();  // release the append handle before the next iteration
    const std::vector<std::string> names = Names(recovered);
    EXPECT_NE(std::find(prefixes.begin(), prefixes.end(), names),
              prefixes.end())
        << "offset " << offset << " recovered a non-prefix catalog";
    // A flip always damages some record, so some tail must have dropped.
    EXPECT_TRUE(info.tail_truncated) << "offset " << offset;
  }
}

// ------------------------------------------------------ faultyfs matrices ---

/// Drives `appends` upserts through a manager on a FaultyFs, returning the
/// set of acknowledged names; then recovers with a clean filesystem and
/// asserts recovered == acknowledged exactly.
void RunWriteFaultMatrix(const FsFailpoints& failpoints,
                         FsyncPolicy policy) {
  ScratchDir dir("faulty");
  FaultyFs faulty(RealFileSystem(), failpoints);
  ManualClock clock;
  std::vector<std::string> acked;
  {
    DurabilityOptions options = Opts(dir.path(), &faulty, &clock);
    options.fsync = policy;
    std::vector<CatalogEntry> recovered;
    auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    const char* names[] = {"a", "b", "c", "d", "e"};
    for (const char* name : names) {
      Status s = (*mgr)->AppendUpsert(name, 1, MakeDb(2, " 0 1"));
      if (s.ok()) acked.push_back(name);
    }
  }
  std::vector<CatalogEntry> recovered;
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  std::sort(acked.begin(), acked.end());
  EXPECT_EQ(Names(recovered), acked)
      << "fail_write_n=" << failpoints.fail_write_n
      << " short=" << failpoints.short_write_bytes
      << " fail_sync_n=" << failpoints.fail_sync_n;
  // The failed append rewound the log, so recovery sees a CLEAN file: no
  // torn tail to truncate.
  EXPECT_FALSE(info.tail_truncated);
}

TEST(DurabilityFaults, NthWriteFailsNeverResurrects) {
  for (uint64_t n = 1; n <= 6; ++n) {
    FsFailpoints fp;
    fp.fail_write_n = n;
    RunWriteFaultMatrix(fp, FsyncPolicy::kAlways);
  }
}

TEST(DurabilityFaults, ShortWritesLandGarbageButNeverResurrect) {
  // The failing write lands a PREFIX of the frame — the torn-record
  // signature — and the rewind must scrub it before the next append.
  for (uint64_t n = 1; n <= 4; ++n) {
    for (size_t short_bytes : {size_t{1}, size_t{4}, size_t{9}, size_t{17}}) {
      FsFailpoints fp;
      fp.fail_write_n = n;
      fp.short_write_bytes = short_bytes;
      RunWriteFaultMatrix(fp, FsyncPolicy::kAlways);
    }
  }
}

TEST(DurabilityFaults, NthFsyncFailsNeverResurrects) {
  for (uint64_t n = 1; n <= 6; ++n) {
    FsFailpoints fp;
    fp.fail_sync_n = n;
    RunWriteFaultMatrix(fp, FsyncPolicy::kAlways);
  }
}

TEST(DurabilityFaults, RenameFailureFailsSnapshotButLosesNothing) {
  // Snapshots are rotate-then-write: the rotation (cheap) succeeds and
  // switches appends to wal-1; only the snapshot WRITE fails. Recovery
  // then replays the whole chain wal-0 + wal-1 — nothing acknowledged is
  // lost, and nothing retries per update.
  ScratchDir dir("rename");
  FsFailpoints fp;
  fp.fail_rename_n = 1;
  FaultyFs faulty(RealFileSystem(), fp);
  std::vector<CatalogEntry> recovered;
  DurabilityOptions options = Opts(dir.path(), &faulty);
  auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
  std::vector<CatalogEntry> catalog;
  catalog.push_back(CatalogEntry{"a", 1, MakeDb(2, " 0 1")});
  EXPECT_FALSE((*mgr)->Snapshot(catalog).ok());  // rename injected to fail
  EXPECT_EQ((*mgr)->generation(), 1u);           // rotation still happened
  EXPECT_EQ((*mgr)->stats().snapshot_failures, 1u);
  EXPECT_FALSE((*mgr)->stats().poisoned);
  // The un-snapshotted wal-0 must survive for recovery to replay.
  EXPECT_TRUE(RealFileSystem()->Exists(dir.path() + "/wal-0"));
  // Appends keep working (into wal-1) and recovery sees everything.
  ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 1 0")).ok());
  mgr->reset();
  RecoveryInfo info;
  auto reopened = DurabilityManager::Open(Opts(dir.path()), &recovered,
                                          &info);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(info.records_replayed, 2u);
  EXPECT_EQ((*reopened)->generation(), 1u);
}

TEST(DurabilityFaults, RepeatedSnapshotFailuresGrowAChainThatReplays) {
  // Two failed snapshot writes leave three log generations; every
  // acknowledged record recovers, in order, across all of them.
  ScratchDir dir("chain");
  FsFailpoints fp;
  fp.fail_rename_n = 1;
  FaultyFs faulty(RealFileSystem(), fp);
  std::vector<CatalogEntry> recovered;
  auto mgr = DurabilityManager::Open(Opts(dir.path(), &faulty), &recovered,
                                     nullptr);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_FALSE((*mgr)->Snapshot({}).ok());  // wal-0 -> wal-1, write fails
  ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 1 0")).ok());
  fp.fail_rename_n = 2;  // the shared rename counter already consumed #1
  faulty.set_failpoints(fp);
  EXPECT_FALSE((*mgr)->Snapshot({}).ok());  // wal-1 -> wal-2, write fails
  ASSERT_TRUE((*mgr)->AppendUpsert("a", 2, MakeDb(2, " 1 1")).ok());
  EXPECT_EQ((*mgr)->generation(), 2u);
  mgr->reset();
  RecoveryInfo info;
  auto reopened = DurabilityManager::Open(Opts(dir.path()), &recovered,
                                          &info);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(info.records_replayed, 3u);
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a", "b"}));
  for (const CatalogEntry& e : recovered) {
    if (e.name == "a") EXPECT_EQ(e.version, 2u);  // the wal-2 record won
  }
  // A later successful snapshot collapses the chain.
  std::vector<CatalogEntry> catalog;
  catalog.push_back(CatalogEntry{"a", 2, MakeDb(2, " 1 1")});
  catalog.push_back(CatalogEntry{"b", 1, MakeDb(2, " 1 0")});
  ASSERT_TRUE((*reopened)->Snapshot(catalog).ok());
  EXPECT_FALSE(RealFileSystem()->Exists(dir.path() + "/wal-0"));
  EXPECT_FALSE(RealFileSystem()->Exists(dir.path() + "/wal-1"));
  EXPECT_FALSE(RealFileSystem()->Exists(dir.path() + "/wal-2"));
  EXPECT_TRUE(RealFileSystem()->Exists(dir.path() + "/snapshot-3"));
}

TEST(Durability, MidChainCorruptionStopsReplayAndPoisons) {
  // Damage in a NON-final log of the chain is external corruption, not a
  // kill -9 signature: recovery serves the prefix up to the damage,
  // refuses updates, and leaves the bytes (and later logs) on disk so a
  // rerun reaches the same state.
  ScratchDir dir("midchain");
  FsFailpoints fp;
  fp.fail_rename_n = 1;
  FaultyFs faulty(RealFileSystem(), fp);
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(Opts(dir.path(), &faulty), &recovered,
                                       nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
    EXPECT_FALSE((*mgr)->Snapshot({}).ok());  // chain: wal-0, wal-1
    ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 1 0")).ok());
  }
  {
    std::ofstream out(dir.path() + "/wal-0",
                      std::ios::binary | std::ios::app);
    out << "garbage-tail";
  }
  auto damaged = RealFileSystem()->ReadFile(dir.path() + "/wal-0");
  ASSERT_TRUE(damaged.ok());
  RecoveryInfo info;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, &info);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"a"}));  // prefix only
  EXPECT_TRUE((*mgr)->stats().poisoned);
  EXPECT_FALSE(info.warnings.empty());
  EXPECT_FALSE((*mgr)->AppendUpsert("c", 1, MakeDb(2, " 0 0")).ok());
  // Forensics preserved: the damaged log was NOT truncated.
  auto after = RealFileSystem()->ReadFile(dir.path() + "/wal-0");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *damaged);
  EXPECT_TRUE(RealFileSystem()->Exists(dir.path() + "/wal-1"));
}

// ------------------------------------------------- acknowledgment guards ---

TEST(Durability, NamesRecoveryWouldRejectAreRefusedAtAppendTime) {
  // The durable-name rule is enforced when a record is ACKNOWLEDGED, not
  // discovered when it fails to replay: a name IsCatalogName rejects must
  // never reach the log, where it would read as a corrupt tail and drag
  // every later acknowledged record down with it.
  ScratchDir dir("badname");
  std::vector<CatalogEntry> recovered;
  auto mgr = DurabilityManager::Open(Opts(dir.path()), &recovered, nullptr);
  ASSERT_TRUE(mgr.ok());
  const std::string bad_names[] = {
      std::string("a\x01" "b"), std::string("a b"), std::string("a\nb"),
      std::string("\x7f"),   std::string(),      std::string("a\tb")};
  for (const std::string& bad : bad_names) {
    Status up = (*mgr)->AppendUpsert(bad, 1, MakeDb(2, " 0 1"));
    EXPECT_EQ(up.code(), StatusCode::kInvalidArgument) << "name " << bad;
    Status drop = (*mgr)->AppendDrop(bad);
    EXPECT_EQ(drop.code(), StatusCode::kInvalidArgument) << "name " << bad;
  }
  // The refusals were caller errors: the log is healthy, not poisoned, and
  // a valid append both works and is the only thing recovery sees.
  EXPECT_EQ((*mgr)->stats().wal_appends, 0u);
  EXPECT_FALSE((*mgr)->stats().poisoned);
  ASSERT_TRUE((*mgr)->AppendUpsert("good", 1, MakeDb(2, " 0 1")).ok());
  mgr->reset();
  RecoveryInfo info;
  auto reopened = DurabilityManager::Open(Opts(dir.path()), &recovered,
                                          &info);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Names(recovered), (std::vector<std::string>{"good"}));
  EXPECT_FALSE(info.tail_truncated);
}

TEST(Durability, OversizedRecordIsRefusedBeforeAnyByteIsWritten) {
  // A record recovery would treat as framing corruption (len past the
  // ceiling) must be refused at acknowledgment time. The ceiling is 1 GiB
  // in production; the writer-side option lowers it so the guard is
  // testable without a 1 GiB allocation.
  ScratchDir dir("oversize");
  DurabilityOptions options = Opts(dir.path());
  options.max_record_bytes = 32;
  std::vector<CatalogEntry> recovered;
  auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
  ASSERT_TRUE(mgr.ok());
  // "U big 1\n" + a multi-tuple structure text comfortably exceeds 32B.
  Status refused =
      (*mgr)->AppendUpsert("big", 1, MakeDb(6, " 0 1, 1 2, 2 3, 3 4, 4 5"));
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*mgr)->stats().wal_appends, 0u);
  EXPECT_EQ((*mgr)->stats().wal_bytes, 0u);  // nothing was framed or written
  EXPECT_FALSE((*mgr)->stats().poisoned);
  // A record under the bound still appends, and recovery replays exactly it.
  ASSERT_TRUE((*mgr)->AppendDrop("big").ok());
  mgr->reset();
  RecoveryInfo info;
  auto reopened = DurabilityManager::Open(Opts(dir.path()), &recovered,
                                          &info);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(info.records_replayed, 1u);
  EXPECT_FALSE(info.tail_truncated);
  EXPECT_TRUE(recovered.empty());
}

TEST(Durability, CleanShutdownSyncsTheIntervalTail) {
  // FsyncPolicy::kInterval has no timer: an idle writer's dirty tail waits
  // for the next append, a rotation, or shutdown. The destructor is the
  // shutdown half of that promise.
  ScratchDir dir("intervalclose");
  ManualClock clock;
  FaultyFs faulty(RealFileSystem());  // counters only, no faults
  DurabilityOptions options = Opts(dir.path(), &faulty, &clock);
  options.fsync = FsyncPolicy::kInterval;
  options.fsync_interval_ms = 100;
  std::vector<CatalogEntry> recovered;
  {
    auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
    ASSERT_TRUE(mgr.ok());
    ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
    EXPECT_EQ(faulty.syncs(), 0u);  // interval not elapsed: still dirty
  }
  EXPECT_EQ(faulty.syncs(), 1u);  // the destructor flushed the tail
}

TEST(Durability, RotationSyncsADirtyIntervalTailBeforeSwitching) {
  // The old log is never written again after rotation; leaving its
  // acknowledged tail unsynced until the snapshot lands would stretch the
  // interval policy's loss window indefinitely when the snapshot fails.
  ScratchDir dir("rotatesync");
  ManualClock clock;
  FaultyFs faulty(RealFileSystem());
  DurabilityOptions options = Opts(dir.path(), &faulty, &clock);
  options.fsync = FsyncPolicy::kInterval;
  options.fsync_interval_ms = 100;
  std::vector<CatalogEntry> recovered;
  auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_EQ(faulty.syncs(), 0u);
  uint64_t gen = 0;
  ASSERT_TRUE((*mgr)->RotateLog(&gen).ok());
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(faulty.syncs(), 1u);  // wal-0's tail synced before abandonment
}

TEST(DurabilityFaults, IntervalPolicySyncsOnTheClock) {
  ScratchDir dir("interval");
  ManualClock clock;
  FaultyFs faulty(RealFileSystem());  // counters only, no faults
  DurabilityOptions options = Opts(dir.path(), &faulty, &clock);
  options.fsync = FsyncPolicy::kInterval;
  options.fsync_interval_ms = 100;
  std::vector<CatalogEntry> recovered;
  auto mgr = DurabilityManager::Open(options, &recovered, nullptr);
  ASSERT_TRUE(mgr.ok());
  ASSERT_TRUE((*mgr)->AppendUpsert("a", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_EQ((*mgr)->stats().wal_syncs, 0u);  // interval not yet elapsed
  clock.Advance(99);
  ASSERT_TRUE((*mgr)->AppendUpsert("b", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_EQ((*mgr)->stats().wal_syncs, 0u);
  clock.Advance(1);
  ASSERT_TRUE((*mgr)->AppendUpsert("c", 1, MakeDb(2, " 0 1")).ok());
  EXPECT_EQ((*mgr)->stats().wal_syncs, 1u);  // 100ms elapsed: sync fired
}

// ------------------------------------------------- serving engine durable ---

serve::ServeOptions DurableServeOptions(const std::string& dir,
                                        FileSystem* fs = nullptr) {
  serve::ServeOptions o;
  o.durability.data_dir = dir;
  o.durability.fsync = FsyncPolicy::kAlways;
  o.durability.snapshot_every_records = 0;
  o.durability.fs = fs;
  return o;
}

TEST(ServingDurable, RegistryRecoversWithVersions) {
  ScratchDir dir("serve");
  {
    serve::ServingEngine engine(DurableServeOptions(dir.path()));
    ASSERT_TRUE(engine.Open(nullptr).ok());
    ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1, 1 2")).ok());
    ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1")).ok());
    ASSERT_TRUE(engine.UpsertDatabase("h", MakeDb(2, " 0 0")).ok());
    ASSERT_TRUE(engine.DropDatabase("h").ok());
  }
  serve::ServingEngine engine(DurableServeOptions(dir.path()));
  RecoveryInfo info;
  ASSERT_TRUE(engine.Open(&info).ok());
  EXPECT_EQ(info.records_replayed, 4u);
  const auto dbs = engine.ListDatabases();
  ASSERT_EQ(dbs.size(), 1u);
  EXPECT_EQ(dbs[0].first, "g");
  EXPECT_EQ(dbs[0].second, 2u);  // versions survive restarts
  // And the recovered database actually serves.
  serve::ServeRequest request;
  request.query = "Q() :- E(X, Y).";
  request.database = "g";
  request.task = HomTask::kDecide;
  auto result = engine.Serve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->decided);
}

TEST(ServingDurable, WalFailureEntersStickyDegradedModeReadsKeepServing) {
  ScratchDir dir("degraded");
  FsFailpoints fp;
  fp.fail_write_n = 2;  // the second update's append fails
  FaultyFs faulty(RealFileSystem(), fp);
  serve::ServingEngine engine(DurableServeOptions(dir.path(), &faulty));
  ASSERT_TRUE(engine.Open(nullptr).ok());
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1, 1 2")).ok());
  Status refused = engine.UpsertDatabase("g", MakeDb(3, " 0 1"));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  // Sticky: even though the failpoint has passed, updates stay refused.
  Status again = engine.UpsertDatabase("h", MakeDb(2, " 0 0"));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(engine.degraded());
  EXPECT_TRUE(engine.stats().degraded);
  EXPECT_EQ(engine.stats().update_refusals, 2u);
  // Reads keep serving the last acknowledged state.
  serve::ServeRequest request;
  request.query = "Q() :- E(X, Y).";
  request.database = "g";
  request.task = HomTask::kCount;
  auto result = engine.Serve(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 2u);  // the v1 contents, not the refused v2
  // The refused update never resurrects across a restart either.
  serve::ServingEngine reopened(DurableServeOptions(dir.path()));
  ASSERT_TRUE(reopened.Open(nullptr).ok());
  const auto dbs = reopened.ListDatabases();
  ASSERT_EQ(dbs.size(), 1u);
  EXPECT_EQ(dbs[0].second, 1u);
}

TEST(ServingDurable, ControlByteNamesAreRefusedAtAckTimeNotOnRecovery) {
  // The reviewer scenario: a name like "a\x01b" passes a loose ack-time
  // check, is WAL-logged, and recovery then truncates it — plus every
  // later acknowledged record — as a corrupt tail. The ack-time rule now
  // mirrors the recovery parsers exactly, so the record never exists.
  ScratchDir dir("ctrlname");
  {
    serve::ServingEngine engine(DurableServeOptions(dir.path()));
    ASSERT_TRUE(engine.Open(nullptr).ok());
    Status refused = engine.UpsertDatabase("a\x01" "b", MakeDb(2, " 0 1"));
    EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(engine.UpsertDatabase("del\x7f", MakeDb(2, " 0 1")).code(),
              StatusCode::kInvalidArgument);
    // The refusal is a caller error, not a log failure: not degraded, and
    // later updates are acknowledged and survive.
    EXPECT_FALSE(engine.degraded());
    ASSERT_TRUE(engine.UpsertDatabase("good", MakeDb(2, " 0 1")).ok());
    ASSERT_TRUE(engine.UpsertDatabase("also-good", MakeDb(2, " 1 0")).ok());
  }
  serve::ServingEngine engine(DurableServeOptions(dir.path()));
  RecoveryInfo info;
  ASSERT_TRUE(engine.Open(&info).ok());
  EXPECT_EQ(info.records_replayed, 2u);
  EXPECT_FALSE(info.tail_truncated);
  const auto dbs = engine.ListDatabases();
  ASSERT_EQ(dbs.size(), 2u);
  EXPECT_EQ(dbs[0].first, "also-good");
  EXPECT_EQ(dbs[1].first, "good");
}

TEST(ServingDurable, OversizedUpdateRefusedWithoutDegrading) {
  ScratchDir dir("oversizeserve");
  serve::ServeOptions options = DurableServeOptions(dir.path());
  options.durability.max_record_bytes = 32;
  serve::ServingEngine engine(options);
  ASSERT_TRUE(engine.Open(nullptr).ok());
  Status refused = engine.UpsertDatabase(
      "big", MakeDb(6, " 0 1, 1 2, 2 3, 3 4, 4 5"));
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  // One bad update refuses; the engine keeps acknowledging good ones.
  EXPECT_FALSE(engine.degraded());
  ASSERT_TRUE(engine.UpsertDatabase("ok", MakeDb(2, " 0 1")).ok());
  EXPECT_TRUE(engine.ListDatabases().size() == 1);
}

TEST(ServingDurable, SnapshotThresholdRotatesAndCatalogRecovers) {
  // End-to-end over the rotate-then-write path the engine now uses: with a
  // small snapshot threshold, a burst of updates crosses it repeatedly and
  // the final on-disk state (snapshot + log chain) reproduces the catalog.
  ScratchDir dir("serverotate");
  serve::ServeOptions options = DurableServeOptions(dir.path());
  options.durability.snapshot_every_records = 3;
  {
    serve::ServingEngine engine(options);
    ASSERT_TRUE(engine.Open(nullptr).ok());
    for (int i = 0; i < 10; ++i) {
      const std::string name = "db" + std::to_string(i % 4);
      ASSERT_TRUE(engine.UpsertDatabase(name, MakeDb(3, " 0 1, 1 2")).ok())
          << i;
    }
    ASSERT_TRUE(engine.DropDatabase("db0").ok());
  }
  serve::ServingEngine engine(DurableServeOptions(dir.path()));
  ASSERT_TRUE(engine.Open(nullptr).ok());
  const auto dbs = engine.ListDatabases();
  ASSERT_EQ(dbs.size(), 3u);
  EXPECT_EQ(dbs[0].first, "db1");
  EXPECT_EQ(dbs[1].first, "db2");
  EXPECT_EQ(dbs[2].first, "db3");
  // 10 upserts over 4 names, round-robin: db1/db2 hit version 3.
  EXPECT_EQ(dbs[0].second, 3u);
}

TEST(ServingDurable, VersionsStayMonotoneAcrossRestarts) {
  // An upsert after recovery must continue the version sequence, not
  // restart it — otherwise result-cache keys from before the crash could
  // collide with different content after it.
  ScratchDir dir("monotone");
  {
    serve::ServingEngine engine(DurableServeOptions(dir.path()));
    ASSERT_TRUE(engine.Open(nullptr).ok());
    ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(2, " 0 1")).ok());
    ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(2, " 1 0")).ok());
  }
  serve::ServingEngine engine(DurableServeOptions(dir.path()));
  ASSERT_TRUE(engine.Open(nullptr).ok());
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(2, " 1 1")).ok());
  EXPECT_EQ(engine.ListDatabases()[0].second, 3u);
}

// -------------------------------------------------------------- quarantine ---

TEST(Quarantine, RepeatedBudgetTripsQuarantineTheQueryText) {
  serve::ServeOptions options;
  options.poison_strikes = 2;
  // Failpoint: every run trips the governor on its first poll.
  options.engine.failpoints.trip_after_checks = 1;
  serve::ServingEngine engine(options);
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1, 1 2")).ok());
  serve::ServeRequest request;
  request.query = "Q() :- E(X, Y), E(Y, Z).";
  request.database = "g";
  request.task = HomTask::kDecide;
  // Two strikes run (and trip); the third is refused up front.
  for (int i = 0; i < 2; ++i) {
    auto result = engine.Serve(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->stats.governor.tripped);
  }
  auto refused = engine.Serve(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().quarantined, 1u);
  EXPECT_EQ(engine.stats().poisoned_queries, 1u);
  // A different query text is unaffected.
  serve::ServeRequest other = request;
  other.query = "Q() :- E(X, X).";
  auto ok_result = engine.Serve(other);
  ASSERT_TRUE(ok_result.ok());
}

TEST(Quarantine, DatabaseUpdateClearsTheQuarantine) {
  serve::ServeOptions options;
  options.poison_strikes = 1;
  options.engine.failpoints.trip_after_checks = 1;
  serve::ServingEngine engine(options);
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1")).ok());
  serve::ServeRequest request;
  request.query = "Q() :- E(X, Y).";
  request.database = "g";
  request.task = HomTask::kDecide;
  ASSERT_TRUE(engine.Serve(request).ok());        // strike 1 (tripped)
  ASSERT_FALSE(engine.Serve(request).ok());       // quarantined
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1, 1 2")).ok());
  // The update cleared the quarantine: the query runs again (and trips
  // again, but it RUNS — fresh evidence against fresh data).
  auto retried = engine.Serve(request);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST(Quarantine, CleanRunResetsTheStrikeCount) {
  serve::ServeOptions options;
  options.poison_strikes = 2;
  serve::ServingEngine engine(options);
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(3, " 0 1, 1 2")).ok());
  serve::ServeRequest request;
  request.query = "Q() :- E(X, Y).";
  request.database = "g";
  request.task = HomTask::kDecide;
  // No failpoints: runs are clean, strikes never accumulate.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Serve(request).ok());
  }
  EXPECT_EQ(engine.stats().quarantined, 0u);
  EXPECT_EQ(engine.stats().poisoned_queries, 0u);
}

TEST(ServingDurable, StatsJsonCarriesDurabilityFields) {
  ScratchDir dir("statsjson");
  serve::ServingEngine engine(DurableServeOptions(dir.path()));
  ASSERT_TRUE(engine.Open(nullptr).ok());
  ASSERT_TRUE(engine.UpsertDatabase("g", MakeDb(2, " 0 1")).ok());
  const std::string json = engine.stats().ToJson();
  EXPECT_NE(json.find("\"degraded\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wal_appends\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"quarantined\":0"), std::string::npos) << json;
}

// --------------------------------------------------------- fsync policies ---

TEST(Durability, FsyncPolicyNamesRoundTrip) {
  for (FsyncPolicy policy : {FsyncPolicy::kAlways, FsyncPolicy::kInterval,
                             FsyncPolicy::kNever}) {
    auto parsed = serve::ParseFsyncPolicyName(serve::FsyncPolicyName(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(serve::ParseFsyncPolicyName("sometimes").has_value());
}

}  // namespace
}  // namespace cqcs
