// Randomized oracle suite for the polynomial backends (`ctest -L poly`):
// the full Yannakakis program (decide / witness / count / enumerate /
// project, cq/acyclic.h) and the hash-indexed treewidth DP
// (treewidth/hom_dp.h) are cross-checked against the uniform backtracking
// solver on ~100 generated acyclic and partial-k-tree instances, plus the
// degenerate shapes that historically break join machinery: empty
// relations, disconnected hypergraphs, and duplicate atoms.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "api/engine.h"
#include "common/rng.h"
#include "core/homomorphism.h"
#include "cq/acyclic.h"
#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/hom_dp.h"

namespace cqcs {
namespace {

using RowSet = std::set<std::vector<Element>>;

HomProblem MustProblem(Result<HomProblem> r) {
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *std::move(r);
}

EngineResult MustRun(const HomEngine& engine, const HomProblem& p,
                     HomTask task) {
  auto r = engine.Run(p, task);
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *std::move(r);
}

RowSet OracleSolutions(const Structure& a, const Structure& b) {
  RowSet out;
  BacktrackingSolver solver(a, b);
  solver.ForEachSolution([&](const Homomorphism& h) {
    out.insert(h);
    return true;
  });
  return out;
}

// Runs every HomTask on the explicit kAcyclic backend and cross-checks
// each answer against the uniform solver's full solution set.
void CheckAcyclicBattery(const Structure& a, const Structure& b,
                         const char* label, int trial) {
  SCOPED_TRACE(testing::Message() << label << " trial " << trial);
  const RowSet oracle = OracleSolutions(a, b);

  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
  std::vector<Element> proj;
  if (a.universe_size() > 0) {
    proj.push_back(0);
    if (a.universe_size() > 1) {
      proj.push_back(static_cast<Element>(a.universe_size() - 1));
    }
    ASSERT_TRUE(p.SetProjection(proj).ok());
  }
  EngineOptions options;
  options.backend = Backend::kAcyclic;
  HomEngine engine(options);

  EngineResult decide = MustRun(engine, p, HomTask::kDecide);
  EXPECT_EQ(decide.decided, !oracle.empty());
  EXPECT_FALSE(decide.stats.used_search);

  EngineResult witness = MustRun(engine, p, HomTask::kWitness);
  EXPECT_EQ(witness.decided, !oracle.empty());
  if (witness.decided) {
    ASSERT_TRUE(witness.witness.has_value());
    EXPECT_TRUE(IsHomomorphism(a, b, *witness.witness));
    EXPECT_TRUE(oracle.count(*witness.witness));
  }

  EngineResult count = MustRun(engine, p, HomTask::kCount);
  EXPECT_EQ(count.count, oracle.size());

  EngineResult all = MustRun(engine, p, HomTask::kEnumerate);
  const RowSet got(all.rows.begin(), all.rows.end());
  EXPECT_EQ(got.size(), all.rows.size()) << "duplicate homomorphisms";
  EXPECT_EQ(got, oracle);

  if (!proj.empty()) {
    EngineResult rows = MustRun(engine, p, HomTask::kProject);
    RowSet want;
    for (const auto& h : oracle) {
      std::vector<Element> r;
      for (Element e : proj) r.push_back(h[e]);
      want.insert(std::move(r));
    }
    const RowSet got_proj(rows.rows.begin(), rows.rows.end());
    EXPECT_EQ(got_proj.size(), rows.rows.size()) << "duplicate projections";
    EXPECT_EQ(got_proj, want);
  }

  // Saturated counting / capped enumeration must clamp, not truncate
  // arbitrarily (the limit is min(true answer, limit)).
  if (oracle.size() > 1) {
    EngineOptions capped = options;
    capped.count_limit = oracle.size() - 1;
    capped.max_results = oracle.size() - 1;
    HomEngine capped_engine(capped);
    EXPECT_EQ(MustRun(capped_engine, p, HomTask::kCount).count,
              oracle.size() - 1);
    EngineResult few = MustRun(capped_engine, p, HomTask::kEnumerate);
    EXPECT_EQ(few.rows.size(), oracle.size() - 1);
    for (const auto& h : few.rows) EXPECT_TRUE(oracle.count(h));
  }
}

// Decide + witness on the explicit kTreewidth backend against the oracle.
void CheckTreewidthBattery(const Structure& a, const Structure& b,
                           const char* label, int trial) {
  SCOPED_TRACE(testing::Message() << label << " trial " << trial);
  BacktrackingSolver solver(a, b);
  const bool oracle = solver.Solve().has_value();

  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
  EngineOptions options;
  options.backend = Backend::kTreewidth;
  HomEngine engine(options);
  EngineResult r = MustRun(engine, p, HomTask::kWitness);
  EXPECT_EQ(r.decided, oracle);
  EXPECT_TRUE(r.stats.used_treewidth);
  EXPECT_FALSE(r.stats.used_search);
  if (r.decided) {
    ASSERT_TRUE(r.witness.has_value());
    EXPECT_TRUE(IsHomomorphism(a, b, *r.witness));
  }
  // The hash-indexed DP populates its table counters whenever it runs on a
  // nonempty instance.
  if (a.universe_size() > 0 && b.universe_size() > 0) {
    EXPECT_GE(r.stats.treewidth.width, 0);
  }
}

TEST(PolyOracleTest, AcyclicTreeFamily) {
  Rng rng(20260730);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 40; ++trial) {
    Structure a =
        StructureFromGraph(vocab, RandomTree(2 + rng.Below(6), rng));
    Structure b = RandomGraphStructure(vocab, 1 + rng.Below(4),
                                       0.2 + 0.15 * rng.Below(4), rng,
                                       /*symmetric=*/rng.Below(2) == 0);
    CheckAcyclicBattery(a, b, "tree", trial);
  }
}

TEST(PolyOracleTest, DisconnectedHypergraphFamily) {
  // A forest source: GYO yields several roots, the count is the product of
  // the components' counts, and enumeration must take the cross product —
  // exactly what a per-component implementation would get wrong.
  Rng rng(424242);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n1 = 2 + rng.Below(3);
    const size_t n2 = 2 + rng.Below(3);
    const size_t isolated = rng.Below(2);  // plus 0-1 atom-free elements
    Structure a(vocab, n1 + n2 + isolated);
    for (size_t i = 0; i + 1 < n1; ++i) {
      a.AddTuple(0, {static_cast<Element>(i), static_cast<Element>(i + 1)});
    }
    for (size_t i = 0; i + 1 < n2; ++i) {
      a.AddTuple(0, {static_cast<Element>(n1 + i),
                     static_cast<Element>(n1 + i + 1)});
    }
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng,
                                       /*symmetric=*/true);
    CheckAcyclicBattery(a, b, "forest", trial);
  }
}

TEST(PolyOracleTest, DuplicateAtomFamily) {
  // Duplicate tuples in the source become duplicate atoms of the canonical
  // query: two join-forest nodes carrying identical tables. The reduction
  // must not double-count or double-enumerate.
  Rng rng(777);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 3 + rng.Below(4);
    Structure a(vocab, n);
    for (size_t i = 0; i + 1 < n; ++i) {
      a.AddTuple(0, {static_cast<Element>(i), static_cast<Element>(i + 1)});
    }
    // Duplicate one edge, twice.
    const Element u = static_cast<Element>(rng.Below(n - 1));
    a.AddTuple(0, {u, static_cast<Element>(u + 1)});
    a.AddTuple(0, {u, static_cast<Element>(u + 1)});
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng,
                                       /*symmetric=*/true);
    CheckAcyclicBattery(a, b, "duplicate-atom", trial);
  }
}

TEST(PolyOracleTest, EmptyRelationEdgeCases) {
  auto vocab = MakeGraphVocabulary();
  // Target with elements but no tuples: any source edge kills every map.
  {
    Structure a = PathStructure(vocab, 3);
    Structure b(vocab, 2);
    CheckAcyclicBattery(a, b, "empty-target-relation", 0);
  }
  // Source with elements but no tuples: the canonical query has variables
  // and no atoms, so every total map is a homomorphism (|B|^|A| of them).
  {
    Structure a(vocab, 3);
    Structure b(vocab, 2);
    b.AddTuple(0, {0, 1});
    const RowSet oracle = OracleSolutions(a, b);
    EXPECT_EQ(oracle.size(), 8u);
    CheckAcyclicBattery(a, b, "empty-source-relation", 0);
  }
  // Both empty; single elements.
  {
    Structure a(vocab, 1);
    Structure b(vocab, 1);
    CheckAcyclicBattery(a, b, "both-empty", 0);
  }
  // Empty source universe: the empty map is the one homomorphism.
  {
    Structure a(vocab, 0);
    Structure b(vocab, 3);
    b.AddTuple(0, {0, 1});
    CheckAcyclicBattery(a, b, "empty-source-universe", 0);
  }
}

TEST(PolyOracleTest, PartialKTreeFamily) {
  Rng rng(515151);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 30; ++trial) {
    Structure a = StructureFromGraph(
        vocab, RandomPartialKTree(5 + rng.Below(8), 2, 0.85, rng));
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(4),
                                       0.3 + 0.1 * rng.Below(4), rng,
                                       /*symmetric=*/true);
    CheckTreewidthBattery(a, b, "partial-2-tree", trial);
  }
}

TEST(PolyOracleTest, TreewidthDpEdgeCases) {
  auto vocab = MakeGraphVocabulary();
  // Empty target relation: refutation must come from the DP, not a crash.
  {
    Structure a = PathStructure(vocab, 4);
    Structure b(vocab, 3);
    CheckTreewidthBattery(a, b, "empty-target-relation", 0);
  }
  // Disconnected source: the decomposition is a forest of bags.
  {
    Structure a(vocab, 4);
    a.AddTuple(0, {0, 1});
    a.AddTuple(0, {2, 3});
    Structure b = CliqueStructure(vocab, 2);
    CheckTreewidthBattery(a, b, "disconnected", 0);
  }
  // Duplicate tuples in the source.
  {
    Structure a(vocab, 3);
    a.AddTuple(0, {0, 1});
    a.AddTuple(0, {0, 1});
    a.AddTuple(0, {1, 2});
    Structure b = CliqueStructure(vocab, 3);
    CheckTreewidthBattery(a, b, "duplicate-tuples", 0);
  }
}

TEST(PolyOracleTest, DeepSourceDoesNotOverflowTheStack) {
  // Regression: the enumeration walk used to recurse one frame per atom,
  // so witness/enumerate on a ~100k-atom acyclic source crashed where
  // decide survived. The walk is now an explicit-stack iteration.
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 150001);
  Structure b = DirectedCycleStructure(vocab, 3);
  HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
  EngineOptions options;
  options.max_results = 2;
  HomEngine engine(options);
  EngineResult w = MustRun(engine, p, HomTask::kWitness);
  EXPECT_EQ(w.explain.chosen, Backend::kAcyclic);
  ASSERT_TRUE(w.decided);
  ASSERT_TRUE(w.witness.has_value());
  EXPECT_TRUE(IsHomomorphism(a, b, *w.witness));
  EngineResult rows = MustRun(engine, p, HomTask::kEnumerate);
  EXPECT_EQ(rows.rows.size(), 2u);
}

TEST(PolyOracleTest, ThreadCountInvariance) {
  // Parallelism changes wall-clock, never the answer: every acyclic task
  // and the treewidth DP must return byte-identical results and stats at
  // 1, 2, and 8 workers. Only `workers` (the request echo) and `steals`
  // (a scheduling record) may differ; morsel decomposition depends only
  // on table sizes, so even `morsels` must match.
  Rng rng(20260808);
  auto vocab = MakeGraphVocabulary();
  const unsigned kThreadCounts[] = {1, 2, 8};
  for (int trial = 0; trial < 10; ++trial) {
    Structure a =
        StructureFromGraph(vocab, RandomTree(4 + rng.Below(6), rng));
    Structure b = RandomGraphStructure(vocab, 3 + rng.Below(3), 0.4, rng,
                                       /*symmetric=*/true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    std::vector<Element> proj = {0,
                                 static_cast<Element>(a.universe_size() - 1)};
    ASSERT_TRUE(p.SetProjection(proj).ok());

    struct Answers {
      EngineResult decide, count, enumerate, project, tw;
    };
    auto run_all = [&](unsigned threads) {
      EngineOptions options;
      options.backend = Backend::kAcyclic;
      options.solve.num_threads = threads;
      HomEngine engine(options);
      Answers ans;
      ans.decide = MustRun(engine, p, HomTask::kDecide);
      ans.count = MustRun(engine, p, HomTask::kCount);
      ans.enumerate = MustRun(engine, p, HomTask::kEnumerate);
      ans.project = MustRun(engine, p, HomTask::kProject);
      EngineOptions tw_options = options;
      tw_options.backend = Backend::kTreewidth;
      ans.tw = MustRun(HomEngine(tw_options), p, HomTask::kWitness);
      return ans;
    };
    auto expect_ys_equal = [&](const YannakakisStats& got,
                               const YannakakisStats& want) {
      EXPECT_EQ(got.atom_tables, want.atom_tables);
      EXPECT_EQ(got.rows_materialized, want.rows_materialized);
      EXPECT_EQ(got.max_table_rows, want.max_table_rows);
      EXPECT_EQ(got.semijoins, want.semijoins);
      EXPECT_EQ(got.rows_pruned, want.rows_pruned);
      EXPECT_EQ(got.join_rows, want.join_rows);
      EXPECT_EQ(got.morsels, want.morsels);
    };

    const Answers base = run_all(1);
    EXPECT_EQ(base.decide.stats.yannakakis.workers, 1u);
    EXPECT_EQ(base.decide.stats.yannakakis.steals, 0u);
    for (unsigned threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message()
                   << "trial " << trial << " threads " << threads);
      const Answers got = run_all(threads);
      EXPECT_EQ(got.decide.decided, base.decide.decided);
      expect_ys_equal(got.decide.stats.yannakakis,
                      base.decide.stats.yannakakis);
      EXPECT_EQ(got.decide.stats.yannakakis.workers, threads);
      EXPECT_EQ(got.count.count, base.count.count);
      expect_ys_equal(got.count.stats.yannakakis,
                      base.count.stats.yannakakis);
      // Rows must match in ORDER, not just as sets: deterministic
      // morsel-order shard merging is the contract.
      EXPECT_EQ(got.enumerate.rows, base.enumerate.rows);
      expect_ys_equal(got.enumerate.stats.yannakakis,
                      base.enumerate.stats.yannakakis);
      EXPECT_EQ(got.project.rows, base.project.rows);
      expect_ys_equal(got.project.stats.yannakakis,
                      base.project.stats.yannakakis);
      EXPECT_EQ(got.tw.decided, base.tw.decided);
      EXPECT_EQ(got.tw.witness, base.tw.witness);
      EXPECT_EQ(got.tw.stats.treewidth.table_entries,
                base.tw.stats.treewidth.table_entries);
      EXPECT_EQ(got.tw.stats.treewidth.table_rows,
                base.tw.stats.treewidth.table_rows);
      EXPECT_EQ(got.tw.stats.treewidth.workers, threads);
    }
  }
}

TEST(PolyOracleTest, ProjectCountMatchesMaterializedProject) {
  // AcyclicProjectCount must agree with |AcyclicProject| on every instance
  // — including forests (per-tree root products) and isolated projection
  // variables (universe factors) — and saturate at the limit.
  Rng rng(31337);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 15; ++trial) {
    // Two path components plus one atom-free element: exercises the
    // multi-root product and the universe^|isolated| factor.
    const size_t n1 = 2 + rng.Below(3);
    const size_t n2 = 2 + rng.Below(3);
    Structure a(vocab, n1 + n2 + 1);
    for (size_t i = 0; i + 1 < n1; ++i) {
      a.AddTuple(0, {static_cast<Element>(i), static_cast<Element>(i + 1)});
    }
    for (size_t i = 0; i + 1 < n2; ++i) {
      a.AddTuple(0, {static_cast<Element>(n1 + i),
                     static_cast<Element>(n1 + i + 1)});
    }
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(3), 0.5, rng,
                                       /*symmetric=*/true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    const ConjunctiveQuery& q = p.SourceCanonicalQuery();
    // Projection spans both trees and the isolated element, with a repeat.
    std::vector<VarId> proj = {0, static_cast<VarId>(n1),
                               static_cast<VarId>(n1 + n2), 0};

    auto rows = AcyclicProject(q, b, proj);
    ASSERT_TRUE(rows.ok());
    const size_t want = rows->size();

    auto count = AcyclicProjectCount(q, b, proj);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, want) << "trial " << trial;

    // Saturation: limit below the true count clamps exactly there.
    if (want > 1) {
      auto capped = AcyclicProjectCount(q, b, proj, want - 1);
      ASSERT_TRUE(capped.ok());
      EXPECT_EQ(*capped, want - 1);
    }
    auto zero = AcyclicProjectCount(q, b, proj, 0);
    ASSERT_TRUE(zero.ok());
    EXPECT_EQ(*zero, 0u);

    // Engine route: project_count_only returns the count and no rows.
    ASSERT_TRUE(p.SetProjection(std::vector<Element>(proj.begin(),
                                                     proj.end()))
                    .ok());
    EngineOptions options;
    options.backend = Backend::kAcyclic;
    options.project_count_only = true;
    EngineResult r = MustRun(HomEngine(options), p, HomTask::kProject);
    EXPECT_EQ(r.count, want);
    EXPECT_TRUE(r.rows.empty());
  }
}

TEST(PolyOracleTest, DirectAcyclicApiAgreesWithEngine) {
  // The cq/acyclic.h entry points are also the containment fast path; make
  // sure the direct API and the engine route agree on the same instances
  // (same canonical query, same target).
  Rng rng(987);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 5; ++trial) {
    Structure a =
        StructureFromGraph(vocab, RandomTree(3 + rng.Below(4), rng));
    Structure b = RandomGraphStructure(vocab, 3, 0.5, rng, true);
    HomProblem p = MustProblem(HomProblem::FromStructures(a, b));
    const ConjunctiveQuery& q = p.SourceCanonicalQuery();
    const RowSet oracle = OracleSolutions(a, b);

    auto sat = EvaluateBooleanAcyclic(q, b);
    ASSERT_TRUE(sat.ok());
    EXPECT_EQ(*sat, !oracle.empty());

    auto count = AcyclicCount(q, b);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, oracle.size());

    auto rows = AcyclicEnumerate(q, b);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(RowSet(rows->begin(), rows->end()), oracle);

    auto w = AcyclicWitness(q, b);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ(w->has_value(), !oracle.empty());
    if (w->has_value()) EXPECT_TRUE(oracle.count(**w));
  }
}

}  // namespace
}  // namespace cqcs
