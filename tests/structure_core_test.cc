// Tests for structure cores and their relationship to query minimization.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ops.h"
#include "core/structure_core.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "gen/generators.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

TEST(StructureCoreTest, EvenCycleFoldsToEdge) {
  auto vocab = MakeGraphVocabulary();
  Structure c6 = UndirectedCycleStructure(vocab, 6);
  CoreResult core = ComputeCore(c6);
  EXPECT_EQ(core.kept_elements.size(), 2u);  // the core of C6 is K2
  EXPECT_TRUE(IsHomomorphism(c6, c6, core.retraction));
  EXPECT_TRUE(IsCore(core.core));
}

TEST(StructureCoreTest, OddCycleIsCore) {
  auto vocab = MakeGraphVocabulary();
  Structure c5 = UndirectedCycleStructure(vocab, 5);
  EXPECT_TRUE(IsCore(c5));
}

TEST(StructureCoreTest, CliquesAreCores) {
  auto vocab = MakeGraphVocabulary();
  for (size_t n = 2; n <= 4; ++n) {
    EXPECT_TRUE(IsCore(CliqueStructure(vocab, n))) << n;
  }
}

TEST(StructureCoreTest, DirectedPathIsCore) {
  auto vocab = MakeGraphVocabulary();
  EXPECT_TRUE(IsCore(PathStructure(vocab, 5)));
}

TEST(StructureCoreTest, DisjointUnionFolds) {
  auto vocab = MakeGraphVocabulary();
  // C3 ⊎ C9: both map into C3, so the core is the triangle.
  Structure u = DisjointUnion(UndirectedCycleStructure(vocab, 3),
                              UndirectedCycleStructure(vocab, 9));
  CoreResult core = ComputeCore(u);
  EXPECT_EQ(core.kept_elements.size(), 3u);
}

TEST(StructureCoreTest, CoreIsHomEquivalent) {
  Rng rng(71);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 15; ++trial) {
    Structure a = RandomGraphStructure(vocab, 3 + rng.Below(4), 0.4, rng,
                                       /*symmetric=*/true);
    CoreResult core = ComputeCore(a);
    // A and its core are homomorphically equivalent.
    EXPECT_TRUE(HasHomomorphism(a, core.core));
    EXPECT_TRUE(HasHomomorphism(core.core, a));
    EXPECT_TRUE(IsCore(core.core));
  }
}

TEST(StructureCoreTest, ProtectedElementsStayFixed) {
  auto vocab = MakeGraphVocabulary();
  Structure c6 = UndirectedCycleStructure(vocab, 6);
  std::vector<Element> keep = {0, 3};
  CoreResult core = ComputeCore(c6, keep);
  EXPECT_EQ(core.retraction[0], 0u);
  EXPECT_EQ(core.retraction[3], 3u);
  // Folding may still shrink the rest; protected elements must survive.
  for (Element e : keep) {
    EXPECT_TRUE(std::binary_search(core.kept_elements.begin(),
                                   core.kept_elements.end(), e));
  }
}

TEST(StructureCoreTest, MatchesQueryMinimization) {
  // The canonical database of the minimized query has the same size as the
  // head-protected core of the original canonical database.
  auto vocab = MakeGraphVocabulary();
  auto q = ParseQuery("Q(X) :- E(X, Y), E(X, Z), E(Z, W).", vocab);
  ASSERT_TRUE(q.ok());
  auto minimized = Minimize(*q);
  ASSERT_TRUE(minimized.ok());
  CanonicalDb db = MakeCanonicalDb(*q);
  CoreResult core = ComputeCore(db.structure, db.head);
  // Minimized query: E(X,Z), E(Z,W) — 3 variables.
  EXPECT_EQ(minimized->atoms().size(), 2u);
  EXPECT_EQ(core.kept_elements.size(), 3u);
}

}  // namespace
}  // namespace cqcs
