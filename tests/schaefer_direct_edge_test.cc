// Edge-case tests for the direct Theorem 3.4 algorithms: multi-relation
// vocabularies, empty relations, repeated elements, and minimal/maximal
// model properties.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "schaefer/booleanize.h"
#include "schaefer/direct.h"
#include "schaefer/uniform.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

TEST(DirectEdgeTest, MultiRelationVocabulary) {
  // Two relations, both Horn, interacting through shared elements:
  // Imp(x, y): x -> y; One(x): x must be 1.
  auto vocab = std::make_shared<Vocabulary>();
  RelId imp = vocab->AddRelation("Imp", 2);
  RelId one = vocab->AddRelation("One", 1);
  Structure b(vocab, 2);
  b.AddTuple(imp, {0, 0});
  b.AddTuple(imp, {0, 1});
  b.AddTuple(imp, {1, 1});
  b.AddTuple(one, {1});
  // Chain x0 -> x1 -> x2 with One(x0): everything is forced to 1.
  Structure a(vocab, 3);
  a.AddTuple(one, {0});
  a.AddTuple(imp, {0, 1});
  a.AddTuple(imp, {1, 2});
  auto h = SolveHornDirect(a, b);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->has_value());
  EXPECT_EQ(**h, (Homomorphism{1, 1, 1}));
  EXPECT_TRUE(IsHomomorphism(a, b, **h));
}

TEST(DirectEdgeTest, HornMinimalityProperty) {
  // The Horn algorithm returns the MINIMAL model: every other homomorphism
  // is pointwise >= it. Check against full enumeration.
  Rng rng(101);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  for (int trial = 0; trial < 20; ++trial) {
    Structure b = RandomClosedBooleanStructure(vocab, 3, ClosureOp::kAnd, 3,
                                               rng);
    Structure a = RandomStructure(vocab, 3 + rng.Below(3), 4, rng);
    auto h = SolveHornDirect(a, b);
    ASSERT_TRUE(h.ok());
    if (!h->has_value()) {
      EXPECT_FALSE(HasHomomorphism(a, b));
      continue;
    }
    BacktrackingSolver solver(a, b);
    solver.ForEachSolution([&](const Homomorphism& other) {
      for (size_t e = 0; e < other.size(); ++e) {
        EXPECT_LE((**h)[e], other[e]) << "not minimal at element " << e;
      }
      return true;
    });
  }
}

TEST(DirectEdgeTest, DualHornMaximalityProperty) {
  Rng rng(103);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  for (int trial = 0; trial < 20; ++trial) {
    Structure b = RandomClosedBooleanStructure(vocab, 3, ClosureOp::kOr, 3,
                                               rng);
    Structure a = RandomStructure(vocab, 3 + rng.Below(3), 4, rng);
    auto h = SolveDualHornDirect(a, b);
    ASSERT_TRUE(h.ok());
    if (!h->has_value()) {
      EXPECT_FALSE(HasHomomorphism(a, b));
      continue;
    }
    BacktrackingSolver solver(a, b);
    solver.ForEachSolution([&](const Homomorphism& other) {
      for (size_t e = 0; e < other.size(); ++e) {
        EXPECT_GE((**h)[e], other[e]) << "not maximal at element " << e;
      }
      return true;
    });
  }
}

TEST(DirectEdgeTest, EmptyTargetRelationWithConstraints) {
  auto vocab = MakeGraphVocabulary();
  Structure b(vocab, 2);  // E empty but Horn (vacuously)
  Structure a(vocab, 2);
  a.AddTuple(0, {0, 1});
  auto horn = SolveHornDirect(a, b);
  ASSERT_TRUE(horn.ok());
  EXPECT_FALSE(horn->has_value());
  auto bij = SolveBijunctiveDirect(a, b);
  ASSERT_TRUE(bij.ok());
  EXPECT_FALSE(bij->has_value());
  auto aff = SolveAffineViaEquations(a, b);
  ASSERT_TRUE(aff.ok());
  EXPECT_FALSE(aff->has_value());
}

TEST(DirectEdgeTest, NoConstraintsAtAll) {
  auto vocab = MakeGraphVocabulary();
  Structure b(vocab, 2);  // empty relation
  Structure a(vocab, 3);  // three isolated elements
  for (auto solve : {SolveHornDirect, SolveBijunctiveDirect,
                     SolveAffineViaEquations, SolveDualHornDirect}) {
    auto h = solve(a, b);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(h->has_value());
    EXPECT_TRUE(IsHomomorphism(a, b, **h));
  }
}

TEST(DirectEdgeTest, RepeatedElementsInTuples) {
  // A tuple (x, x) forces equal images at both positions; relations where
  // no tuple has equal components then force failure.
  auto vocab = MakeGraphVocabulary();
  Structure b(vocab, 2);
  b.AddTuple(0, {0, 1});
  b.AddTuple(0, {1, 0});  // XOR: bijunctive+affine, no constant pairs
  Structure a(vocab, 1);
  a.AddTuple(0, {0, 0});
  auto bij = SolveBijunctiveDirect(a, b);
  ASSERT_TRUE(bij.ok());
  EXPECT_FALSE(bij->has_value());
  auto aff = SolveAffineViaEquations(a, b);
  ASSERT_TRUE(aff.ok());
  EXPECT_FALSE(aff->has_value());
}

TEST(DirectEdgeTest, BijunctiveBothPhasesNeeded) {
  // An instance where the first guess of a phase fails and the flip
  // succeeds: x XOR y with a unit pin.
  auto vocab = std::make_shared<Vocabulary>();
  RelId x = vocab->AddRelation("Xor", 2);
  RelId zero = vocab->AddRelation("Zero", 1);
  Structure b(vocab, 2);
  b.AddTuple(x, {0, 1});
  b.AddTuple(x, {1, 0});
  b.AddTuple(zero, {0});
  Structure a(vocab, 2);
  a.AddTuple(x, {0, 1});
  a.AddTuple(zero, {1});  // element 1 pinned to 0, so element 0 must be 1
  auto h = SolveBijunctiveDirect(a, b);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->has_value());
  EXPECT_EQ(**h, (Homomorphism{1, 0}));
}

TEST(BooleanizeEdgeTest, NonPowerOfTwoTargets) {
  // |B| = 3 leaves the codeword 11 unused; unconstrained elements of A may
  // decode out of range and must clamp to a valid element.
  Rng rng(107);
  auto vocab = MakeGraphVocabulary();
  Structure b(vocab, 3);
  b.AddTuple(0, {0, 1});
  b.AddTuple(0, {1, 2});
  Structure a(vocab, 3);
  a.AddTuple(0, {0, 1});  // element 2 is isolated / unconstrained
  auto boolean = Booleanize(a, b);
  ASSERT_TRUE(boolean.ok());
  auto hb = FindHomomorphism(boolean->a_b, boolean->b_b);
  ASSERT_TRUE(hb.has_value());
  Homomorphism decoded = DecodeHomomorphism(*boolean, *hb);
  EXPECT_TRUE(IsHomomorphism(a, b, decoded));
  EXPECT_LT(decoded[2], 3u);
}

TEST(BooleanizeEdgeTest, SingletonTarget) {
  auto vocab = MakeGraphVocabulary();
  Structure b(vocab, 1);
  b.AddTuple(0, {0, 0});
  Structure a = DirectedCycleStructure(vocab, 4);
  auto boolean = Booleanize(a, b);
  ASSERT_TRUE(boolean.ok());
  EXPECT_EQ(boolean->bits, 1u);
  EXPECT_EQ(HasHomomorphism(a, b),
            HasHomomorphism(boolean->a_b, boolean->b_b));
}

}  // namespace
}  // namespace cqcs
