// Tests for vocabularies, relations, structures, and occurrence indexing.

#include <gtest/gtest.h>

#include "core/structure.h"

namespace cqcs {
namespace {

VocabularyPtr GraphVocab() {
  auto v = std::make_shared<Vocabulary>();
  v->AddRelation("E", 2);
  return v;
}

TEST(VocabularyTest, AddAndFind) {
  Vocabulary v;
  RelId e = v.AddRelation("E", 2);
  RelId p = v.AddRelation("P", 1);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.FindRelation("E"), e);
  EXPECT_EQ(v.FindRelation("P"), p);
  EXPECT_EQ(v.FindRelation("Q"), std::nullopt);
  EXPECT_EQ(v.arity(e), 2u);
  EXPECT_EQ(v.name(p), "P");
  EXPECT_EQ(v.MaxArity(), 2u);
}

TEST(VocabularyTest, DuplicateRejected) {
  Vocabulary v;
  v.AddRelation("E", 2);
  auto r = v.TryAddRelation("E", 3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(VocabularyTest, ZeroArityRejected) {
  Vocabulary v;
  auto r = v.TryAddRelation("N", 0);
  EXPECT_FALSE(r.ok());
}

TEST(VocabularyTest, Equals) {
  Vocabulary a, b;
  a.AddRelation("E", 2);
  b.AddRelation("E", 2);
  EXPECT_TRUE(a.Equals(b));
  b.AddRelation("P", 1);
  EXPECT_FALSE(a.Equals(b));
}

TEST(RelationTest, AddAndContains) {
  Relation r(2);
  r.Add({0, 1});
  r.Add({1, 2});
  EXPECT_EQ(r.tuple_count(), 2u);
  Element t0[] = {0, 1};
  Element t1[] = {1, 2};
  Element t2[] = {2, 0};
  EXPECT_TRUE(r.Contains(t0));
  EXPECT_TRUE(r.Contains(t1));
  EXPECT_FALSE(r.Contains(t2));
}

TEST(RelationTest, ContainsAfterMutation) {
  Relation r(1);
  r.Add({3});
  Element a[] = {3}, b[] = {4};
  EXPECT_TRUE(r.Contains(a));
  r.Add({4});
  EXPECT_TRUE(r.Contains(b));  // index must be rebuilt
}

TEST(RelationTest, Dedup) {
  Relation r(2);
  r.Add({1, 1});
  r.Add({0, 1});
  r.Add({1, 1});
  r.Dedup();
  EXPECT_EQ(r.tuple_count(), 2u);
  Element t[] = {1, 1};
  EXPECT_TRUE(r.Contains(t));
}

TEST(RelationTest, EqualityIgnoresOrder) {
  Relation a(2), b(2);
  a.Add({0, 1});
  a.Add({2, 3});
  b.Add({2, 3});
  b.Add({0, 1});
  EXPECT_TRUE(a == b);
  b.Add({0, 0});
  EXPECT_FALSE(a == b);
}

TEST(StructureTest, BuildAndQuery) {
  Structure s(GraphVocab(), 3);
  s.AddTuple(0, {0, 1});
  s.AddTuple(0, {1, 2});
  EXPECT_EQ(s.universe_size(), 3u);
  EXPECT_EQ(s.TotalTuples(), 2u);
  EXPECT_EQ(s.Size(), 3u + 4u);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(StructureTest, TryAddTupleValidation) {
  Structure s(GraphVocab(), 2);
  Element bad_len[] = {0};
  EXPECT_EQ(s.TryAddTuple(0, bad_len).code(), StatusCode::kInvalidArgument);
  Element out_of_range[] = {0, 5};
  EXPECT_EQ(s.TryAddTuple(0, out_of_range).code(),
            StatusCode::kInvalidArgument);
  Element ok[] = {0, 1};
  EXPECT_TRUE(s.TryAddTuple(0, ok).ok());
  EXPECT_EQ(s.TryAddTuple(7, ok).code(), StatusCode::kInvalidArgument);
}

TEST(StructureTest, GrowUniverse) {
  Structure s(GraphVocab(), 1);
  s.GrowUniverse(4);
  s.AddTuple(0, {0, 3});
  EXPECT_TRUE(s.Validate().ok());
}

TEST(StructureTest, Equality) {
  Structure a(GraphVocab(), 2), b(GraphVocab(), 2);
  a.AddTuple(0, {0, 1});
  b.AddTuple(0, {0, 1});
  EXPECT_TRUE(a == b);
  b.AddTuple(0, {1, 0});
  EXPECT_FALSE(a == b);
}

TEST(OccurrenceIndexTest, ListsAllOccurrences) {
  auto vocab = std::make_shared<Vocabulary>();
  RelId e = vocab->AddRelation("E", 2);
  RelId p = vocab->AddRelation("P", 1);
  Structure s(vocab, 3);
  s.AddTuple(e, {0, 1});
  s.AddTuple(e, {1, 1});
  s.AddTuple(p, {1});
  OccurrenceIndex index(s);
  EXPECT_EQ(index.occurrences(0).size(), 1u);
  EXPECT_EQ(index.occurrences(1).size(), 4u);  // twice in tuple (1,1)
  EXPECT_EQ(index.occurrences(2).size(), 0u);
  auto occ = index.occurrences(0)[0];
  EXPECT_EQ(occ.rel, e);
  EXPECT_EQ(occ.tuple_index, 0u);
  EXPECT_EQ(occ.pos, 0u);
}

}  // namespace
}  // namespace cqcs
