// Failure-injection and corner-case coverage across modules: resource
// limits surface as errors (never wrong answers), degenerate inputs work,
// and diagnostics render.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/io.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "datalog/parser.h"
#include "datalog/evaluator.h"
#include "fo/evaluate.h"
#include "fo/from_decomposition.h"
#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/decomposition.h"

namespace cqcs {
namespace {

TEST(LimitsTest, ContainmentNodeLimitIsAnErrorNotAnAnswer) {
  auto vocab = MakeGraphVocabulary();
  // A containment instance needing real search: random queries, tiny limit.
  Rng rng(11);
  ConjunctiveQuery q1 = RandomQuery(vocab, 6, 10, rng);
  ConjunctiveQuery q2 = RandomQuery(vocab, 6, 10, rng);
  SolveOptions options;
  options.node_limit = 1;
  options.propagation = Propagation::kForwardChecking;
  auto r = IsContained(q1, q2, options);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  } else {
    // Decided within one node — must agree with the unlimited answer.
    EXPECT_EQ(*r, *IsContained(q1, q2));
  }
}

TEST(LimitsTest, EvaluationNodeLimit) {
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, 6);
  Rng rng(13);
  Structure d = RandomGraphStructure(vocab, 12, 0.5, rng, false);
  SolveOptions options;
  options.node_limit = 2;
  options.propagation = Propagation::kForwardChecking;
  auto r = Evaluate(chain, d, options);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  }
}

TEST(SolverEdgeTest, ProjectionOntoAllVariables) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 2);
  Structure k3 = CliqueStructure(vocab, 3);
  BacktrackingSolver solver(path, k3);
  std::vector<Element> all = {0, 1};
  auto rows = solver.EnumerateProjections(all);
  EXPECT_EQ(rows.size(), 6u);  // all homs distinct on full projection
}

TEST(SolverEdgeTest, ProjectionLimit) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 2);
  Structure k3 = CliqueStructure(vocab, 3);
  BacktrackingSolver solver(path, k3);
  std::vector<Element> proj = {0};
  auto rows = solver.EnumerateProjections(proj, 2);
  EXPECT_EQ(rows.size(), 2u);
}

TEST(SolverEdgeTest, RepeatedProjectionVariables) {
  auto vocab = MakeGraphVocabulary();
  Structure path = PathStructure(vocab, 2);
  Structure k3 = CliqueStructure(vocab, 3);
  BacktrackingSolver solver(path, k3);
  std::vector<Element> proj = {0, 0, 1};
  auto rows = solver.EnumerateProjections(proj);
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0], row[1]);
  }
}

TEST(IoEdgeTest, PrintEmptyStructure) {
  auto vocab = MakeGraphVocabulary();
  Structure empty(vocab, 0);
  std::string text = PrintStructure(empty);
  auto reparsed = ParseStructure(text, vocab);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->universe_size(), 0u);
}

TEST(IoEdgeTest, CommentsAndBlankLines) {
  auto parsed = ParseStructure(
      "# header\n\nuniverse 2\n# mid comment\nE/2: 0 1  # trailing\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->TotalTuples(), 1u);
}

TEST(HomomorphismEdgeTest, CheckReportsViolatedTuple) {
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 2);
  Structure b(vocab, 2);  // no edges
  Homomorphism h = {0, 1};
  Status s = CheckHomomorphism(a, b, h);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("relation E"), std::string::npos);
}

TEST(DatalogEdgeTest, GoalWithArguments) {
  auto program = ParseDatalogProgram(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Y) :- T(X, Z), E(Z, Y).\n",
      "T");
  ASSERT_TRUE(program.ok());
  Structure path(program->edb_vocabulary(), 3);
  path.AddTuple(0, {0, 1});
  path.AddTuple(0, {1, 2});
  auto derivable = GoalDerivable(*program, path);
  ASSERT_TRUE(derivable.ok());
  EXPECT_TRUE(*derivable);
  Structure empty(program->edb_vocabulary(), 3);
  auto not_derivable = GoalDerivable(*program, empty);
  ASSERT_TRUE(not_derivable.ok());
  EXPECT_FALSE(*not_derivable);
}

TEST(DatalogEdgeTest, RoundsCounterTracksDepth) {
  auto program = ParseDatalogProgram(
      "T(X, Y) :- E(X, Y).\n"
      "T(X, Y) :- T(X, Z), E(Z, Y).\n",
      "T");
  ASSERT_TRUE(program.ok());
  Structure path(program->edb_vocabulary(), 6);
  for (Element i = 0; i + 1 < 6; ++i) path.AddTuple(0, {i, i + 1});
  auto result = EvaluateDatalog(*program, path);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->rounds, 3u);  // a length-5 path needs several rounds
  EXPECT_EQ(result->idb_relations[0].size(), 15u);  // all i<j pairs
}

TEST(FoEdgeTest, StatsAreTracked) {
  auto vocab = MakeGraphVocabulary();
  Structure grid = GridStructure(vocab, 2, 3);
  auto sentence = BuildSentence(grid);
  ASSERT_TRUE(sentence.ok());
  Structure k3 = CliqueStructure(vocab, 3);
  FoEvalStats stats;
  auto r = EvaluateFoSentence(*sentence, k3, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.join_count, 0u);
  EXPECT_GT(stats.max_intermediate_rows, 0u);
}

TEST(TreewidthEdgeTest, ExactOnDisconnectedGraph) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);  // triangle
  g.AddEdge(3, 4);  // edge + isolated vertex 5
  EXPECT_EQ(*ExactTreewidth(g), 2);
}

TEST(TreewidthEdgeTest, EliminationOrderChecked) {
  Graph g(3);
  g.AddEdge(0, 1);
  std::vector<uint32_t> short_order = {0, 1};
  EXPECT_DEATH(DecompositionFromEliminationOrder(g, short_order),
               "order must list every vertex once");
}

TEST(CheckMacrosTest, CheckFailAborts) {
  EXPECT_DEATH(CQCS_CHECK(1 == 2), "CQCS_CHECK failed");
}

}  // namespace
}  // namespace cqcs
