// Tests for the existential k-pebble game solver, its agreement with the
// generated k-Datalog program ρ_B (Theorem 4.7), and the uniform algorithm
// of Theorem 4.9 / Remark 4.10.2.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/evaluator.h"
#include "gen/generators.h"
#include "schaefer/boolean_relation.h"
#include "datalog/rho_b.h"
#include "pebble/game.h"
#include "solver/backtracking.h"

namespace cqcs {
namespace {

VocabularyPtr GraphVocab() {
  auto v = std::make_shared<Vocabulary>();
  v->AddRelation("E", 2);
  return v;
}

Structure UndirectedCycle(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    auto u = static_cast<Element>(i);
    auto v = static_cast<Element>((i + 1) % n);
    s.AddTuple(0, {u, v});
    s.AddTuple(0, {v, u});
  }
  return s;
}

Structure RandomGraph(const VocabularyPtr& vocab, size_t n, double p,
                      Rng& rng, bool symmetric) {
  Structure s(vocab, n);
  for (Element u = 0; u < n; ++u) {
    for (Element v = 0; v < n; ++v) {
      if (u == v) continue;
      if (symmetric && v < u) continue;
      if (rng.Chance(p)) {
        s.AddTuple(0, {u, v});
        if (symmetric) s.AddTuple(0, {v, u});
      }
    }
  }
  return s;
}

TEST(PebbleGameTest, HomomorphismImpliesDuplicatorWins) {
  // If hom(A -> B) exists, the Duplicator wins for every k (play h).
  auto vocab = GraphVocab();
  Structure c6 = UndirectedCycle(vocab, 6);
  Structure k2 = UndirectedCycle(vocab, 2);
  for (uint32_t k = 1; k <= 3; ++k) {
    auto game = ExistentialPebbleGame::Create(c6, k2, k);
    ASSERT_TRUE(game.ok());
    EXPECT_TRUE(game->DuplicatorWins()) << "k=" << k;
  }
}

TEST(PebbleGameTest, SoundnessOnRandomInstances) {
  // Spoiler winning certifies no homomorphism (proof of Theorem 4.8).
  Rng rng(23);
  auto vocab = GraphVocab();
  for (int trial = 0; trial < 40; ++trial) {
    Structure a = RandomGraph(vocab, 3 + rng.Below(4), 0.4, rng, false);
    Structure b = RandomGraph(vocab, 2 + rng.Below(3), 0.4, rng, false);
    bool hom = HasHomomorphism(a, b);
    for (uint32_t k = 1; k <= 3; ++k) {
      auto game = ExistentialPebbleGame::Create(a, b, k);
      ASSERT_TRUE(game.ok());
      if (hom) {
        EXPECT_TRUE(game->DuplicatorWins())
            << "hom exists but Spoiler wins, k=" << k;
      }
      if (game->SpoilerWins()) {
        EXPECT_FALSE(hom);
      }
    }
  }
}

TEST(PebbleGameTest, MonotoneInK) {
  // More pebbles only help the Spoiler.
  Rng rng(29);
  auto vocab = GraphVocab();
  for (int trial = 0; trial < 20; ++trial) {
    Structure a = RandomGraph(vocab, 3 + rng.Below(3), 0.5, rng, false);
    Structure b = RandomGraph(vocab, 2 + rng.Below(3), 0.5, rng, false);
    bool spoiler_prev = false;
    for (uint32_t k = 1; k <= 3; ++k) {
      auto spoiler_result = SpoilerWinsExistentialKPebble(a, b, k);
      ASSERT_TRUE(spoiler_result.ok());
      bool spoiler = *spoiler_result;
      if (spoiler_prev) EXPECT_TRUE(spoiler) << "k=" << k;
      spoiler_prev = spoiler;
    }
  }
}

TEST(PebbleGameTest, OddCycleVsEdgeSpoilerWinsWithFourPebbles) {
  // non-2-colorability is 4-Datalog expressible (Section 4.1), so with k=4
  // the Spoiler beats every non-2-colorable A against K2 (Theorem 4.8).
  auto vocab = GraphVocab();
  Structure k2 = UndirectedCycle(vocab, 2);
  for (size_t n = 3; n <= 7; n += 2) {
    Structure cn = UndirectedCycle(vocab, n);
    auto game = ExistentialPebbleGame::Create(cn, k2, 4);
    ASSERT_TRUE(game.ok());
    EXPECT_TRUE(game->SpoilerWins()) << "n=" << n;
  }
  for (size_t n = 4; n <= 8; n += 2) {
    Structure cn = UndirectedCycle(vocab, n);
    auto game = ExistentialPebbleGame::Create(cn, k2, 4);
    ASSERT_TRUE(game.ok());
    EXPECT_TRUE(game->DuplicatorWins()) << "n=" << n;
  }
}

TEST(PebbleGameTest, EmptyTargetSpoilerWins) {
  auto vocab = GraphVocab();
  Structure a(vocab, 2);
  Structure empty(vocab, 0);
  auto game = ExistentialPebbleGame::Create(a, empty, 2);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->SpoilerWins());
}

TEST(PebbleGameTest, EmptySourceDuplicatorWins) {
  auto vocab = GraphVocab();
  Structure empty(vocab, 0);
  Structure b = UndirectedCycle(vocab, 3);
  auto game = ExistentialPebbleGame::Create(empty, b, 2);
  ASSERT_TRUE(game.ok());
  EXPECT_TRUE(game->DuplicatorWins());
}

TEST(PebbleGameTest, DuplicatorWinsFromPositions) {
  auto vocab = GraphVocab();
  Structure c4 = UndirectedCycle(vocab, 4);
  Structure k2 = UndirectedCycle(vocab, 2);
  auto game_result = ExistentialPebbleGame::Create(c4, k2, 2);
  ASSERT_TRUE(game_result.ok());
  const ExistentialPebbleGame& game = *game_result;
  ASSERT_TRUE(game.DuplicatorWins());
  // Adjacent elements of C4 pebbled on the two distinct K2 endpoints: fine.
  EXPECT_TRUE(game.DuplicatorWinsFrom({{0, 0}, {1, 1}}));
  // Adjacent elements pebbled on the same endpoint: not a partial hom.
  EXPECT_FALSE(game.DuplicatorWinsFrom({{0, 0}, {1, 0}}));
  // Conflicting pebbles on the same element: losing by definition.
  EXPECT_FALSE(game.DuplicatorWinsFrom({{0, 0}, {0, 1}}));
}

TEST(PebbleGameTest, DegenerateInputsAreErrorsNotAborts) {
  // The pebble game follows the same Result<> contract as the other
  // backends: the engine must be able to fall back instead of aborting.
  auto vocab = GraphVocab();
  Structure a = UndirectedCycle(vocab, 3);
  Structure b = UndirectedCycle(vocab, 2);
  auto zero_pebbles = ExistentialPebbleGame::Create(a, b, 0);
  ASSERT_FALSE(zero_pebbles.ok());
  EXPECT_EQ(zero_pebbles.status().code(), StatusCode::kInvalidArgument);
  auto other = std::make_shared<Vocabulary>();
  other->AddRelation("F", 2);
  Structure mismatched(other, 2);
  auto mismatch = ExistentialPebbleGame::Create(a, mismatched, 2);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(SpoilerWinsExistentialKPebble(a, mismatched, 2).ok());
  EXPECT_FALSE(SpoilerWinsExistentialKPebble(a, b, 0).ok());
}

TEST(RhoBTest, ProgramIsKDatalog) {
  auto vocab = GraphVocab();
  Structure k2 = UndirectedCycle(vocab, 2);
  for (uint32_t k = 1; k <= 3; ++k) {
    auto program = BuildSpoilerWinProgram(k2, k);
    ASSERT_TRUE(program.ok());
    EXPECT_TRUE(program->IsKDatalog(k))
        << "body width " << program->MaxBodyWidth() << ", head width "
        << program->MaxHeadWidth();
    EXPECT_EQ(program->idb_count(), (1u << k) + 1);  // |B|^k IDBs + goal
  }
}

TEST(RhoBTest, AgreesWithGameSolver) {
  // Theorem 4.7(2): ρ_B derives its goal on A iff the Spoiler wins the
  // existential k-pebble game on (A, B). Cross-validate the two independent
  // implementations on random instances.
  Rng rng(41);
  auto vocab = GraphVocab();
  for (int trial = 0; trial < 25; ++trial) {
    Structure b = RandomGraph(vocab, 2 + rng.Below(2), 0.5, rng, false);
    Structure a = RandomGraph(vocab, 2 + rng.Below(4), 0.4, rng, false);
    for (uint32_t k = 1; k <= 2; ++k) {
      auto program = BuildSpoilerWinProgram(b, k);
      ASSERT_TRUE(program.ok()) << program.status().ToString();
      auto datalog_says = GoalDerivable(*program, a);
      ASSERT_TRUE(datalog_says.ok()) << datalog_says.status().ToString();
      auto game_says = SpoilerWinsExistentialKPebble(a, b, k);
      ASSERT_TRUE(game_says.ok());
      EXPECT_EQ(*datalog_says, *game_says)
          << "trial " << trial << " k=" << k;
    }
  }
}

TEST(RhoBTest, RejectsDegenerateInputs) {
  auto vocab = GraphVocab();
  Structure b = UndirectedCycle(vocab, 2);
  EXPECT_FALSE(BuildSpoilerWinProgram(b, 0).ok());
  Structure empty(vocab, 0);
  EXPECT_FALSE(BuildSpoilerWinProgram(empty, 2).ok());
}

TEST(Remark410Test, HornStructureGameDecidesExactly) {
  // Remark 4.10.2: for a k-ary Horn Boolean structure B, ¬CSP(B) is
  // k-Datalog expressible, so the k-pebble game decides CSP(A, B) exactly
  // (Theorem 4.9). Cross-validate against the backtracking solver.
  Rng rng(53);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 2);
  for (int trial = 0; trial < 30; ++trial) {
    // Random AND-closed binary Boolean relation.
    BooleanRelation rel(2);
    for (int i = 0; i < 3; ++i) rel.Add(rng.Next() & 3);
    CloseUnder(rel, ClosureOp::kAnd);
    Structure b(vocab, 2);
    Relation packed = rel.ToRelation();
    for (uint32_t t = 0; t < packed.tuple_count(); ++t) {
      b.AddTuple(0, packed.tuple(t));
    }
    Structure a(vocab, 2 + rng.Below(4));
    size_t tuples = rng.Below(7);
    for (size_t t = 0; t < tuples; ++t) {
      a.AddTuple(0, {static_cast<Element>(rng.Below(a.universe_size())),
                     static_cast<Element>(rng.Below(a.universe_size()))});
    }
    bool hom = HasHomomorphism(a, b);
    auto spoiler = SpoilerWinsExistentialKPebble(a, b, 2);
    ASSERT_TRUE(spoiler.ok());
    EXPECT_EQ(!hom, *spoiler) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cqcs
