// Tests for src/common: Status/Result, strings, RNG determinism.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace cqcs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
}

TEST(StringsTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  foo\t bar baz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringsTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("Q"));
  EXPECT_TRUE(IsIdentifier("_x1'"));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("a b"));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowHitsAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.Range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace cqcs
