// Tests for tree decompositions, treewidth heuristics/exact computation,
// the DP homomorphism solver (Theorem 5.4), and the binary encoding
// (Lemma 5.5).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/generators.h"
#include "solver/backtracking.h"
#include "treewidth/binary_encoding.h"
#include "treewidth/decomposition.h"
#include "treewidth/hom_dp.h"

namespace cqcs {
namespace {

Graph CycleGraph(size_t n) {
  Graph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    g.AddEdge(i, static_cast<uint32_t>((i + 1) % n));
  }
  return g;
}

Graph CliqueGraph(size_t n) {
  Graph g(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

TEST(DecompositionTest, ManualValidDecomposition) {
  // Path 0-1-2: bags {0,1} and {1,2}.
  Graph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  TreeDecomposition td;
  uint32_t root = td.AddNode({0, 1}, TreeDecomposition::kNoParent);
  td.AddNode({1, 2}, root);
  EXPECT_TRUE(td.ValidateFor(path).ok());
  EXPECT_EQ(td.Width(), 1);
}

TEST(DecompositionTest, DetectsViolations) {
  Graph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  {
    // Missing vertex 2.
    TreeDecomposition td;
    td.AddNode({0, 1}, TreeDecomposition::kNoParent);
    EXPECT_FALSE(td.ValidateFor(path).ok());
  }
  {
    // Edge {1,2} in no bag.
    TreeDecomposition td;
    uint32_t root = td.AddNode({0, 1}, TreeDecomposition::kNoParent);
    td.AddNode({2}, root);
    EXPECT_FALSE(td.ValidateFor(path).ok());
  }
  {
    // Vertex 0's bags disconnected.
    TreeDecomposition td;
    uint32_t root = td.AddNode({0, 1}, TreeDecomposition::kNoParent);
    uint32_t mid = td.AddNode({1, 2}, root);
    td.AddNode({0, 2}, mid);
    EXPECT_FALSE(td.ValidateFor(path).ok());
  }
}

TEST(DecompositionTest, EliminationOrderWidths) {
  // Trees have width 1, cycles 2, cliques n-1 under any elimination order
  // heuristic that is not pathological.
  Rng rng(3);
  Graph tree = RandomTree(20, rng);
  auto td_tree =
      DecompositionFromEliminationOrder(tree, MinFillOrder(tree));
  EXPECT_TRUE(td_tree.ValidateFor(tree).ok());
  EXPECT_EQ(td_tree.Width(), 1);

  Graph cycle = CycleGraph(12);
  auto td_cycle =
      DecompositionFromEliminationOrder(cycle, MinFillOrder(cycle));
  EXPECT_TRUE(td_cycle.ValidateFor(cycle).ok());
  EXPECT_EQ(td_cycle.Width(), 2);

  Graph clique = CliqueGraph(6);
  auto td_clique =
      DecompositionFromEliminationOrder(clique, MinDegreeOrder(clique));
  EXPECT_TRUE(td_clique.ValidateFor(clique).ok());
  EXPECT_EQ(td_clique.Width(), 5);
}

TEST(DecompositionTest, ValidatesOnRandomPartialKTrees) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(3));
    Graph g = RandomPartialKTree(6 + rng.Below(15), k, 0.7, rng);
    for (auto order : {MinDegreeOrder(g), MinFillOrder(g)}) {
      auto td = DecompositionFromEliminationOrder(g, order);
      EXPECT_TRUE(td.ValidateFor(g).ok());
    }
  }
}

TEST(ExactTreewidthTest, KnownValues) {
  EXPECT_EQ(*ExactTreewidth(Graph(0)), -1);
  EXPECT_EQ(*ExactTreewidth(Graph(3)), 0);  // no edges
  Graph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  EXPECT_EQ(*ExactTreewidth(path), 1);
  EXPECT_EQ(*ExactTreewidth(CycleGraph(7)), 2);
  EXPECT_EQ(*ExactTreewidth(CliqueGraph(5)), 4);
  // 3x3 grid has treewidth 3.
  auto vocab = MakeGraphVocabulary();
  Structure grid = GridStructure(vocab, 3, 3);
  EXPECT_EQ(*ExactTreewidth(GaifmanGraph(grid)), 3);
}

TEST(ExactTreewidthTest, BoundsEnforced) {
  EXPECT_FALSE(ExactTreewidth(Graph(25)).ok());
}

TEST(ExactTreewidthTest, HeuristicsAreUpperBounds) {
  Rng rng(19);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g(8);
    for (uint32_t u = 0; u < 8; ++u) {
      for (uint32_t v = u + 1; v < 8; ++v) {
        if (rng.Chance(0.3)) g.AddEdge(u, v);
      }
    }
    int exact = *ExactTreewidth(g);
    int min_fill =
        DecompositionFromEliminationOrder(g, MinFillOrder(g)).Width();
    int min_degree =
        DecompositionFromEliminationOrder(g, MinDegreeOrder(g)).Width();
    EXPECT_GE(min_fill, exact);
    EXPECT_GE(min_degree, exact);
  }
}

TEST(ExactTreewidthTest, KTreesHaveTreewidthK) {
  Rng rng(23);
  for (uint32_t k = 1; k <= 3; ++k) {
    Graph g = RandomKTree(9, k, rng);
    EXPECT_EQ(*ExactTreewidth(g), static_cast<int>(k));
  }
}

TEST(GaifmanVsIncidenceTest, SingleWideTuple) {
  // Section 5: one n-ary tuple has Gaifman treewidth n-1 but incidence
  // treewidth 1 (its incidence graph is a star).
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 5);
  Structure s(vocab, 5);
  s.AddTuple(0, {0, 1, 2, 3, 4});
  EXPECT_EQ(*ExactTreewidth(GaifmanGraph(s)), 4);
  EXPECT_EQ(HeuristicIncidenceTreewidth(s), 1);
}

TEST(HomDpTest, CycleToCliqueMatchesBacktracking) {
  auto vocab = MakeGraphVocabulary();
  for (size_t n = 3; n <= 8; ++n) {
    Structure cn = UndirectedCycleStructure(vocab, n);
    for (size_t kk = 2; kk <= 3; ++kk) {
      Structure target = CliqueStructure(vocab, kk);
      auto dp = SolveBoundedTreewidth(cn, target);
      ASSERT_TRUE(dp.ok()) << dp.status().ToString();
      EXPECT_EQ(dp->has_value(), HasHomomorphism(cn, target))
          << "n=" << n << " k=" << kk;
      if (dp->has_value()) {
        EXPECT_TRUE(IsHomomorphism(cn, target, **dp));
      }
    }
  }
}

TEST(HomDpTest, RandomPartialKTreesMatchBacktracking) {
  Rng rng(29);
  auto vocab = MakeGraphVocabulary();
  for (int trial = 0; trial < 30; ++trial) {
    uint32_t k = 1 + static_cast<uint32_t>(rng.Below(3));
    Graph ga = RandomPartialKTree(5 + rng.Below(8), k, 0.8, rng);
    Structure a = StructureFromGraph(vocab, ga);
    Structure b = RandomGraphStructure(vocab, 2 + rng.Below(4), 0.5, rng,
                                       /*symmetric=*/true);
    TreewidthSolveStats stats;
    auto dp = SolveBoundedTreewidth(a, b, &stats);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(dp->has_value(), HasHomomorphism(a, b)) << "trial " << trial;
    if (dp->has_value()) {
      EXPECT_TRUE(IsHomomorphism(a, b, **dp));
    }
    EXPECT_LE(stats.width, static_cast<int>(2 * k + 1));  // heuristic slack
  }
}

TEST(HomDpTest, SuppliedDecompositionIsChecked) {
  auto vocab = MakeGraphVocabulary();
  Structure c4 = UndirectedCycleStructure(vocab, 4);
  TreeDecomposition bogus;
  bogus.AddNode({0, 1}, TreeDecomposition::kNoParent);
  auto result = SolveViaTreeDecomposition(c4, c4, bogus);
  EXPECT_FALSE(result.ok());
}

TEST(HomDpTest, EmptySource) {
  auto vocab = MakeGraphVocabulary();
  Structure empty(vocab, 0);
  Structure b = UndirectedCycleStructure(vocab, 3);
  auto dp = SolveBoundedTreewidth(empty, b);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(dp->has_value());
  EXPECT_TRUE((*dp)->empty());
}

TEST(HomDpTest, EmptyTarget) {
  auto vocab = MakeGraphVocabulary();
  Structure a = PathStructure(vocab, 3);
  Structure empty(vocab, 0);
  auto dp = SolveBoundedTreewidth(a, empty);
  ASSERT_TRUE(dp.ok());
  EXPECT_FALSE(dp->has_value());
}

TEST(BinaryEncodingTest, VocabularyShape) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("P", 3);
  vocab->AddRelation("R", 2);
  Structure s(vocab, 4);
  s.AddTuple(0, {0, 1, 2});
  s.AddTuple(1, {2, 3});
  BinaryEncoded enc = BinaryEncode(s);
  // (3+2)^2 = 25 coincidence relations; 2 tuples -> 2 elements.
  EXPECT_EQ(enc.vocabulary->size(), 25u);
  EXPECT_EQ(enc.encoded.universe_size(), 2u);
  // Reflexive pairs exist: E_P_P_0_0 contains (s, s).
  auto rel = enc.vocabulary->FindRelation("E_P_P_0_0");
  ASSERT_TRUE(rel.has_value());
  Element self_pair[] = {0, 0};
  EXPECT_TRUE(enc.encoded.relation(*rel).Contains(self_pair));
  // Coincidence across relations: position 2 of the P-tuple equals
  // position 0 of the R-tuple.
  auto cross = enc.vocabulary->FindRelation("E_P_R_2_0");
  ASSERT_TRUE(cross.has_value());
  Element pair[] = {0, 1};
  EXPECT_TRUE(enc.encoded.relation(*cross).Contains(pair));
}

TEST(BinaryEncodingTest, PreservesHomomorphismExistence) {
  Rng rng(31);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  for (int trial = 0; trial < 40; ++trial) {
    Structure a = RandomStructure(vocab, 2 + rng.Below(4), rng.Below(5), rng);
    Structure b = RandomStructure(vocab, 2 + rng.Below(3), rng.Below(6), rng);
    bool direct = HasHomomorphism(a, b);
    bool via_encoding = HomomorphismExistsViaBinaryEncoding(
        a, b, [](const Structure& ea, const Structure& eb) {
          return HasHomomorphism(ea, eb);
        });
    EXPECT_EQ(direct, via_encoding) << "trial " << trial;
  }
}

TEST(BinaryEncodingTest, DecodeRoundTrip) {
  Rng rng(37);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 3);
  for (int trial = 0; trial < 20; ++trial) {
    Structure a = RandomStructure(vocab, 3, 1 + rng.Below(3), rng);
    Structure b = RandomStructure(vocab, 3, 4 + rng.Below(6), rng);
    if (a.TotalTuples() == 0 || b.TotalTuples() == 0) continue;
    BinaryEncoded enc_a = BinaryEncode(a);
    BinaryEncoded enc_b = BinaryEncode(b);
    auto h_enc = FindHomomorphism(enc_a.encoded, enc_b.encoded);
    if (!h_enc.has_value()) continue;
    auto decoded = DecodeBinaryHomomorphism(a, b, enc_a, enc_b, *h_enc);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(IsHomomorphism(a, b, *decoded));
  }
}

TEST(BinaryEncodingTest, LowersArityForTreewidthMachinery) {
  // The point of Lemma 5.5: a high-arity A becomes binary, so the DP of
  // Theorem 5.4 applies after encoding. End to end: encode, decompose, DP.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("R", 4);
  Rng rng(41);
  Structure a(vocab, 6);
  a.AddTuple(0, {0, 1, 2, 3});
  a.AddTuple(0, {2, 3, 4, 5});
  Structure b = RandomStructure(vocab, 3, 10, rng);
  bool expected = HasHomomorphism(a, b);
  bool got = HomomorphismExistsViaBinaryEncoding(
      a, b, [](const Structure& ea, const Structure& eb) {
        auto dp = SolveBoundedTreewidth(ea, eb);
        CQCS_CHECK(dp.ok());
        return dp->has_value();
      });
  EXPECT_EQ(expected, got);
}

TEST(GeneratorsTest, ChainAndStarQueries) {
  auto vocab = MakeGraphVocabulary();
  ConjunctiveQuery chain = ChainQuery(vocab, 3);
  EXPECT_EQ(chain.atoms().size(), 3u);
  EXPECT_EQ(chain.arity(), 2u);
  EXPECT_TRUE(chain.Validate().ok());
  ConjunctiveQuery star = StarQuery(vocab, 4);
  EXPECT_EQ(star.atoms().size(), 4u);
  EXPECT_TRUE(star.Validate().ok());
  EXPECT_TRUE(star.IsTwoAtomQuery() == false);
}

TEST(GeneratorsTest, RandomQueriesValidate) {
  Rng rng(43);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  vocab->AddRelation("F", 3);
  for (int trial = 0; trial < 30; ++trial) {
    ConjunctiveQuery q =
        RandomQuery(vocab, 1 + rng.Below(5), 1 + rng.Below(6), rng);
    EXPECT_TRUE(q.Validate().ok());
    ConjunctiveQuery two = RandomTwoAtomQuery(vocab, 1 + rng.Below(5), rng);
    EXPECT_TRUE(two.Validate().ok());
    EXPECT_TRUE(two.IsTwoAtomQuery());
  }
}

TEST(GeneratorsTest, GridStructure) {
  auto vocab = MakeGraphVocabulary();
  Structure grid = GridStructure(vocab, 2, 3);
  EXPECT_EQ(grid.universe_size(), 6u);
  EXPECT_EQ(grid.TotalTuples(), 2u * 7u);  // 7 undirected edges
}

}  // namespace
}  // namespace cqcs
