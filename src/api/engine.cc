#include "api/engine.h"

#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "cq/acyclic.h"

namespace cqcs {

namespace {

void AppendJsonString(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kUniform: return "uniform";
    case Backend::kTreewidth: return "treewidth";
    case Backend::kAcyclic: return "acyclic";
    case Backend::kSchaefer: return "schaefer";
  }
  return "unknown";
}

std::optional<Backend> ParseBackendName(std::string_view name) {
  for (Backend b : {Backend::kAuto, Backend::kUniform, Backend::kTreewidth,
                    Backend::kAcyclic, Backend::kSchaefer}) {
    if (name == BackendName(b)) return b;
  }
  return std::nullopt;
}

const char* HomTaskName(HomTask task) {
  switch (task) {
    case HomTask::kDecide: return "decide";
    case HomTask::kWitness: return "witness";
    case HomTask::kCount: return "count";
    case HomTask::kEnumerate: return "enumerate";
    case HomTask::kProject: return "project";
  }
  return "unknown";
}

std::optional<HomTask> ParseHomTaskName(std::string_view name) {
  for (HomTask t : {HomTask::kDecide, HomTask::kWitness, HomTask::kCount,
                    HomTask::kEnumerate, HomTask::kProject}) {
    if (name == HomTaskName(t)) return t;
  }
  return std::nullopt;
}

Result<EngineResult> HomEngine::Run(const HomProblem& problem,
                                    HomTask task) const {
  EngineResult r;
  r.task = task;
  r.explain.requested = options_.backend;
  r.explain.served = task;

  const Structure& a = problem.source();
  const Structure& b = problem.target();
  const bool decide_like = task == HomTask::kDecide || task == HomTask::kWitness;

  // ---- Resource governance. ----------------------------------------------
  // One governor per run; the backends poll it cooperatively and charge
  // their table growth against it. Ungoverned runs pass nullptr everywhere.
  std::optional<ResourceGovernor> governor_storage;
  ResourceGovernor* governor = nullptr;
  if (options_.deadline_ms > 0 || options_.memory_budget_bytes > 0 ||
      options_.cancel != nullptr ||
      options_.failpoints.trip_after_checks > 0 ||
      options_.failpoints.trip_after_charges > 0) {
    governor_storage.emplace(options_.deadline_ms,
                             options_.memory_budget_bytes);
    governor_storage->set_failpoints(options_.failpoints);
    if (options_.cancel != nullptr) {
      governor_storage->set_external_cancel(options_.cancel);
    }
    governor = &*governor_storage;
  }
  auto snapshot_governor = [&]() {
    if (governor == nullptr) return;
    r.stats.governor.enabled = true;
    r.stats.governor.tripped = governor->tripped();
    r.stats.governor.cause = governor->trip_cause();
    r.stats.governor.checks = governor->checks();
    r.stats.governor.peak_bytes = governor->peak_bytes();
    r.stats.governor.elapsed_ms = governor->elapsed_ms();
  };

  // ---- Routing. ----------------------------------------------------------
  Backend chosen = options_.backend;
  if (chosen == Backend::kAuto) {
    if (!decide_like) {
      // Counting/enumeration/projection: the full Yannakakis program
      // serves these on α-acyclic sources (count DP, output-bounded
      // enumeration, join-project over the reduced join forest);
      // everything else needs the uniform search. The Schaefer and
      // treewidth islands stay decide/witness-only.
      InstanceProfile& prof = r.explain.profile;
      FillSizeStats(a, b, &prof);
      r.explain.profiled = true;
      prof.acyclicity_known = true;
      prof.source_acyclic = problem.SourceAcyclic();
      if (prof.source_acyclic) {
        chosen = Backend::kAcyclic;
        r.explain.reason =
            "source hypergraph is α-acyclic (GYO reduces it): full "
            "Yannakakis program over the reduced join forest";
      } else {
        r.explain.fallbacks.push_back(
            "acyclic: source hypergraph is cyclic (GYO leaves live edges)");
        r.explain.fallbacks.push_back(
            "schaefer/treewidth: decide/witness only — counting and "
            "enumeration need the search");
        chosen = Backend::kUniform;
        r.explain.reason =
            "cyclic source with a counting/enumeration task; uniform "
            "search";
      }
    } else if (a.universe_size() == 0) {
      r.decided = true;
      if (task == HomTask::kWitness) r.witness = Homomorphism{};
      r.explain.chosen = Backend::kUniform;
      r.explain.reason = "empty source universe: the empty map is a "
                         "homomorphism; no backend needed";
      snapshot_governor();
      return r;
    } else if (b.universe_size() == 0) {
      r.decided = false;
      r.explain.chosen = Backend::kUniform;
      r.explain.reason = "nonempty source, empty target: no total map "
                         "exists; no backend needed";
      snapshot_governor();
      return r;
    } else {
      // Staged decision tree, cheapest predicate first, stopping at the
      // first island that fires: classifying a Boolean target is near-free,
      // GYO is quadratic in the source's atoms, and the min-fill estimate
      // (the expensive stage) only runs when the earlier islands refused.
      // The profile records exactly the evidence that was computed.
      InstanceProfile& prof = r.explain.profile;
      FillSizeStats(a, b, &prof);
      prof.target_boolean = problem.TargetBoolean();
      prof.schaefer_classes = problem.TargetSchaeferClasses();
      r.explain.profiled = true;
      std::ostringstream why;
      if (prof.schaefer_classes != 0) {
        chosen = Backend::kSchaefer;
        why << "Boolean target in Schaefer class(es) "
            << SchaeferClassSetToString(prof.schaefer_classes)
            << ": uniform polynomial algorithm (Theorems 3.3/3.4)";
      } else {
        r.explain.fallbacks.push_back(
            prof.target_boolean
                ? "schaefer: target is Boolean but outside every Schaefer "
                  "class (by the dichotomy, CSP(B) is NP-complete)"
                : "schaefer: target is not Boolean");
        prof.acyclicity_known = true;
        prof.source_acyclic = problem.SourceAcyclic();
        if (prof.source_acyclic) {
          chosen = Backend::kAcyclic;
          why << "source hypergraph is α-acyclic (GYO reduces it): "
              << (task == HomTask::kDecide
                      ? "Yannakakis semijoin evaluation"
                      : "Yannakakis semijoin reduction with witness "
                        "extraction");
        } else {
          r.explain.fallbacks.push_back(
              "acyclic: source hypergraph is cyclic (GYO leaves live "
              "edges)");
          const TreeDecomposition& dec = problem.SourceDecomposition();
          prof.width_known = true;
          prof.width_estimate = dec.Width();
          prof.decomposition_bags = dec.node_count();
          prof.treewidth_dp_cost = EstimateTreewidthDpCost(
              prof.decomposition_bags, prof.width_estimate, b.universe_size());
          if (prof.width_estimate >= 0 &&
              prof.width_estimate <= options_.max_auto_width &&
              prof.treewidth_dp_cost <= options_.treewidth_cost_budget) {
            chosen = Backend::kTreewidth;
            why << "min-fill width estimate " << prof.width_estimate
                << " (bags=" << prof.decomposition_bags << ", est. DP cost "
                << prof.treewidth_dp_cost
                << "): bag-by-bag dynamic program (Theorem 5.4)";
          } else {
            std::ostringstream note;
            note << "treewidth: min-fill estimate " << prof.width_estimate
                 << " / est. DP cost " << prof.treewidth_dp_cost
                 << " exceeds the gate (max_auto_width="
                 << options_.max_auto_width
                 << ", budget=" << options_.treewidth_cost_budget << ")";
            r.explain.fallbacks.push_back(note.str());
            chosen = Backend::kUniform;
            why << "no tractable island matched the profile; uniform "
                   "backtracking search";
          }
        }
      }
      r.explain.reason = why.str();
    }
  } else {
    r.explain.reason = "backend explicitly requested";
  }

  // ---- Pre-flight admission (kAuto + memory budget only). ----------------
  // If a polynomial route's size-bound estimate already exceeds the memory
  // budget, demote to the uniform search before any table is built: the
  // search streams over the CSP instance and charges almost nothing, so it
  // can still decide within the budget where the DP provably cannot.
  if (governor != nullptr && options_.memory_budget_bytes > 0 &&
      options_.backend == Backend::kAuto &&
      (chosen == Backend::kAcyclic || chosen == Backend::kTreewidth)) {
    size_t estimate =
        chosen == Backend::kAcyclic
            ? EstimateAcyclicBytes(a, b)
            : EstimateTreewidthDpBytes(
                  r.explain.profile.decomposition_bags,
                  r.explain.profile.width_estimate, b.universe_size());
    if (!governor->AdmitBytes(estimate)) {
      std::ostringstream note;
      note << BackendName(chosen) << ": admission refused — size-bound "
           << "estimate " << estimate << " bytes exceeds the memory budget ("
           << options_.memory_budget_bytes
           << " bytes); demoting to the uniform search";
      r.explain.fallbacks.push_back(note.str());
      chosen = Backend::kUniform;
    }
  }

  // ---- Execution (with runtime fallback for kAuto). ----------------------
  auto run_backend = [&](Backend backend) -> Status {
    switch (backend) {
      case Backend::kSchaefer: {
        if (!decide_like) {
          return Status::InvalidArgument(
              "the schaefer backend supports decide/witness only");
        }
        auto h = SolveSchaefer(a, b, SchaeferAlgorithm::kAuto,
                               &r.stats.schaefer, governor);
        if (!h.ok()) return h.status();
        r.stats.used_schaefer = true;
        r.decided = h->has_value();
        if (task == HomTask::kWitness) r.witness = *std::move(h);
        return Status::OK();
      }
      case Backend::kAcyclic: {
        if (b.universe_size() == 0 && a.universe_size() > 0) {
          // Body satisfiability ignores isolated source elements, which
          // still need images; only an empty target makes that distinction.
          r.decided = false;
          r.count = 0;
          return Status::OK();
        }
        // Canonical-query variable ids ARE source element ids, so the
        // assignment rows the Yannakakis program returns are
        // homomorphisms verbatim.
        const ConjunctiveQuery& q = problem.SourceCanonicalQuery();
        YannakakisStats* ys = &r.stats.yannakakis;
        const unsigned threads = options_.solve.num_threads;
        switch (task) {
          case HomTask::kDecide: {
            auto sat = EvaluateBooleanAcyclic(q, b, ys, governor, threads);
            if (!sat.ok()) return sat.status();
            r.decided = *sat;
            break;
          }
          case HomTask::kWitness: {
            auto w = AcyclicWitness(q, b, ys, governor, threads);
            if (!w.ok()) return w.status();
            r.decided = w->has_value();
            if (w->has_value()) r.witness = *std::move(*w);
            break;
          }
          case HomTask::kCount: {
            auto c = AcyclicCount(q, b, options_.count_limit, ys, governor,
                                  threads);
            if (!c.ok()) return c.status();
            r.count = *c;
            break;
          }
          case HomTask::kEnumerate: {
            auto rows = AcyclicEnumerate(q, b, options_.max_results, ys,
                                         governor, threads);
            if (!rows.ok()) return rows.status();
            r.rows = *std::move(rows);
            r.count = r.rows.size();
            break;
          }
          case HomTask::kProject: {
            std::span<const Element> proj = problem.projection();
            std::vector<VarId> pvars(proj.begin(), proj.end());
            if (options_.project_count_only) {
              auto c = AcyclicProjectCount(q, b, pvars, options_.count_limit,
                                           ys, governor, threads);
              if (!c.ok()) return c.status();
              r.count = *c;
              break;
            }
            auto rows = AcyclicProject(q, b, pvars, options_.max_results, ys,
                                       governor, threads);
            if (!rows.ok()) return rows.status();
            r.rows = *std::move(rows);
            r.count = r.rows.size();
            break;
          }
        }
        r.stats.used_acyclic = true;
        return Status::OK();
      }
      case Backend::kTreewidth: {
        if (!decide_like) {
          return Status::InvalidArgument(
              "the treewidth backend supports decide/witness only");
        }
        CQCS_RETURN_IF_ERROR(problem.EnsureSourceDecomposition(governor));
        auto h = SolveViaTreeDecomposition(a, b, problem.SourceDecomposition(),
                                           &r.stats.treewidth, governor,
                                           options_.solve.num_threads);
        if (!h.ok()) return h.status();
        r.stats.used_treewidth = true;
        r.decided = h->has_value();
        if (task == HomTask::kWitness) r.witness = *std::move(h);
        return Status::OK();
      }
      case Backend::kUniform: {
        if (decide_like && options_.pebble_preflight_k > 0) {
          auto game = ExistentialPebbleGame::Create(
              a, b, options_.pebble_preflight_k);
          if (!game.ok()) {
            r.explain.fallbacks.push_back(
                std::string("pebble preflight skipped: ") +
                game.status().message());
          } else {
            r.stats.used_pebble = true;
            r.stats.pebble = game->stats();
            if (game->SpoilerWins()) {
              // Sound regardless of Datalog expressibility (Theorem 4.9):
              // a Spoiler win certifies that no homomorphism exists.
              r.decided = false;
              r.explain.fallbacks.push_back(
                  "pebble preflight: Spoiler wins the existential " +
                  std::to_string(options_.pebble_preflight_k) +
                  "-pebble game — certified unsatisfiable without search");
              return Status::OK();
            }
            r.explain.fallbacks.push_back(
                "pebble preflight: Duplicator wins (no k-pebble "
                "obstruction); searching");
          }
        }
        SolveOptions solve = options_.solve;
        solve.governor = governor;  // trip surfaces as stats.search.limit_hit
        BacktrackingSolver solver(&problem.Csp(), solve);
        r.stats.used_search = true;
        switch (task) {
          case HomTask::kDecide:
          case HomTask::kWitness: {
            auto h = solver.Solve(&r.stats.search);
            r.decided = h.has_value();
            if (task == HomTask::kWitness) r.witness = std::move(h);
            break;
          }
          case HomTask::kCount:
            r.count = solver.CountSolutions(options_.count_limit,
                                            &r.stats.search);
            break;
          case HomTask::kEnumerate:
            if (options_.max_results > 0) {
              solver.ForEachSolution(
                  [&](const Homomorphism& h) {
                    r.rows.push_back(h);
                    return r.rows.size() < options_.max_results;
                  },
                  &r.stats.search);
            }
            r.count = r.rows.size();
            break;
          case HomTask::kProject:
            if (options_.project_count_only) {
              r.count = solver
                            .EnumerateProjections(problem.projection(),
                                                  options_.count_limit,
                                                  &r.stats.search)
                            .size();
              break;
            }
            r.rows = solver.EnumerateProjections(
                problem.projection(), options_.max_results, &r.stats.search);
            r.count = r.rows.size();
            break;
        }
        return Status::OK();
      }
      case Backend::kAuto:
        return Status::Internal("kAuto survived routing");
    }
    return Status::Internal("unknown backend");
  };

  Status st = run_backend(chosen);
  if (!st.ok() && options_.backend == Backend::kAuto &&
      chosen != Backend::kUniform &&
      st.code() != StatusCode::kResourceExhausted) {
    // kAuto never aborts on a backend's refusal — it demotes to the search.
    // A budget trip is NOT a refusal: the budget is already spent, so
    // rerunning on the search would overshoot it; that case unwinds below.
    r.explain.fallbacks.push_back(std::string(BackendName(chosen)) +
                                  " failed at runtime (" + st.message() +
                                  "); falling back to the uniform search");
    chosen = Backend::kUniform;
    st = run_backend(chosen);
  }
  if (!st.ok() && st.code() == StatusCode::kResourceExhausted) {
    // Clean unwind to a structured "unknown": no partial rows, no wrong
    // answer — just the record of what was spent. Callers distinguish this
    // from a real "no" via stats.governor.tripped (and the conveniences map
    // it back to a kResourceExhausted status).
    r.decided = false;
    r.witness.reset();
    r.count = 0;
    r.rows.clear();
    r.explain.fallbacks.push_back(std::string(BackendName(chosen)) + ": " +
                                  st.message());
    r.explain.chosen = chosen;
    snapshot_governor();
    return r;
  }
  if (!st.ok()) return st;
  r.explain.chosen = chosen;
  snapshot_governor();
  return r;
}

namespace {

/// A governed run that tripped before producing a definite answer: the
/// conveniences surface it as kResourceExhausted (a decided result found
/// before the trip is still the answer and passes through).
Status GovernorTripStatus(const EngineResult& r) {
  return Status::ResourceExhausted(
      std::string("resource budget exhausted (") +
      TripCauseName(r.stats.governor.cause) + ") before " +
      HomTaskName(r.task) + " finished");
}

}  // namespace

Result<bool> HomEngine::Decide(const HomProblem& problem) const {
  CQCS_ASSIGN_OR_RETURN(EngineResult r, Run(problem, HomTask::kDecide));
  if (!r.decided && r.stats.governor.tripped) return GovernorTripStatus(r);
  if (!r.decided && r.stats.search.limit_hit) {
    return Status::Unsupported("node limit reached before a decision");
  }
  return r.decided;
}

Result<std::optional<Homomorphism>> HomEngine::FindWitness(
    const HomProblem& problem) const {
  CQCS_ASSIGN_OR_RETURN(EngineResult r, Run(problem, HomTask::kWitness));
  if (!r.decided && r.stats.governor.tripped) return GovernorTripStatus(r);
  if (!r.decided && r.stats.search.limit_hit) {
    return Status::Unsupported("node limit reached before a decision");
  }
  return std::move(r.witness);
}

Result<size_t> HomEngine::Count(const HomProblem& problem) const {
  CQCS_ASSIGN_OR_RETURN(EngineResult r, Run(problem, HomTask::kCount));
  if (r.stats.governor.tripped) return GovernorTripStatus(r);
  if (r.stats.search.limit_hit) {
    return Status::Unsupported("node limit reached before the count finished");
  }
  return r.count;
}

Result<std::vector<std::vector<Element>>> HomEngine::Project(
    const HomProblem& problem) const {
  CQCS_ASSIGN_OR_RETURN(EngineResult r, Run(problem, HomTask::kProject));
  if (r.stats.governor.tripped) return GovernorTripStatus(r);
  if (r.stats.search.limit_hit) {
    return Status::Unsupported(
        "node limit reached before the enumeration finished");
  }
  return std::move(r.rows);
}

// ---- Rendering. ----------------------------------------------------------

std::string EngineStats::ToJson() const {
  std::ostringstream out;
  out << "{";
  out << "\"search\":";
  if (used_search) {
    out << "{\"nodes\":" << search.nodes
        << ",\"backtracks\":" << search.backtracks
        << ",\"backjumps\":" << search.backjumps
        << ",\"restarts\":" << search.restarts
        << ",\"workers\":" << search.workers
        << ",\"limit_hit\":" << (search.limit_hit ? "true" : "false") << "}";
  } else {
    out << "null";
  }
  out << ",\"treewidth\":";
  if (used_treewidth) {
    out << "{\"width\":" << treewidth.width
        << ",\"table_entries\":" << treewidth.table_entries
        << ",\"table_rows\":" << treewidth.table_rows
        << ",\"workers\":" << treewidth.workers
        << ",\"morsels\":" << treewidth.morsels
        << ",\"steals\":" << treewidth.steals << "}";
  } else {
    out << "null";
  }
  out << ",\"acyclic\":";
  if (used_acyclic) {
    out << "{\"atom_tables\":" << yannakakis.atom_tables
        << ",\"rows_materialized\":" << yannakakis.rows_materialized
        << ",\"max_table_rows\":" << yannakakis.max_table_rows
        << ",\"semijoins\":" << yannakakis.semijoins
        << ",\"rows_pruned\":" << yannakakis.rows_pruned
        << ",\"join_rows\":" << yannakakis.join_rows
        << ",\"workers\":" << yannakakis.workers
        << ",\"morsels\":" << yannakakis.morsels
        << ",\"steals\":" << yannakakis.steals << "}";
  } else {
    out << "null";
  }
  out << ",\"pebble\":";
  if (used_pebble) {
    out << "{\"total_positions\":" << pebble.total_positions
        << ",\"deleted_positions\":" << pebble.deleted_positions << "}";
  } else {
    out << "null";
  }
  out << ",\"schaefer\":";
  if (used_schaefer) {
    out << "{\"classes\":";
    AppendJsonString(out, SchaeferClassSetToString(schaefer.classes));
    out << ",\"dispatched\":";
    AppendJsonString(out, SchaeferClassSetToString(schaefer.dispatched));
    out << ",\"trivial\":" << (schaefer.trivial ? "true" : "false") << "}";
  } else {
    out << "null";
  }
  out << ",\"governor\":";
  if (governor.enabled) {
    out << "{\"tripped\":" << (governor.tripped ? "true" : "false")
        << ",\"cause\":\"" << TripCauseName(governor.cause)
        << "\",\"checks\":" << governor.checks
        << ",\"peak_bytes\":" << governor.peak_bytes
        << ",\"elapsed_ms\":" << governor.elapsed_ms << "}";
  } else {
    out << "null";
  }
  out << ",\"serve\":";
  if (serve.enabled) {
    out << "{\"plan_cache_hit\":" << (serve.plan_cache_hit ? "true" : "false")
        << ",\"result_cache_hit\":"
        << (serve.result_cache_hit ? "true" : "false")
        << ",\"plan_hit_rate\":" << serve.plan_hit_rate
        << ",\"result_hit_rate\":" << serve.result_hit_rate
        << ",\"shed_total\":" << serve.shed_total
        << ",\"queue_depth\":" << serve.queue_depth << "}";
  } else {
    out << "null";
  }
  out << "}";
  return out.str();
}

std::string EngineExplain::ToString() const {
  std::ostringstream out;
  out << "backend " << BackendName(chosen) << " (requested "
      << BackendName(requested) << ", task " << HomTaskName(served)
      << "): " << reason;
  for (const std::string& f : fallbacks) out << "\n  - " << f;
  if (profiled) out << "\n  profile: " << profile.ToString();
  return out.str();
}

std::string EngineExplain::ToJson() const {
  std::ostringstream out;
  out << "{\"requested\":\"" << BackendName(requested) << "\",\"chosen\":\""
      << BackendName(chosen) << "\",\"served\":\"" << HomTaskName(served)
      << "\",\"reason\":";
  AppendJsonString(out, reason);
  out << ",\"fallbacks\":[";
  for (size_t i = 0; i < fallbacks.size(); ++i) {
    if (i > 0) out << ",";
    AppendJsonString(out, fallbacks[i]);
  }
  out << "],\"profile\":" << (profiled ? profile.ToJson() : "null") << "}";
  return out.str();
}

std::string EngineResult::ToJson() const {
  std::ostringstream out;
  out << "{\"task\":\"" << HomTaskName(task)
      << "\",\"decided\":" << (decided ? "true" : "false")
      << ",\"witness\":" << (witness.has_value() ? "true" : "false")
      << ",\"count\":" << count << ",\"rows\":" << rows.size()
      << ",\"explain\":" << explain.ToJson() << ",\"stats\":" << stats.ToJson()
      << "}";
  return out.str();
}

// ---- The structure-pair conveniences (declared in solver/backtracking.h).
// Defined here so they route through the engine: one battle-tested path.

bool HasHomomorphism(const Structure& a, const Structure& b) {
  auto problem = HomProblem::FromStructures(a, b);
  CQCS_CHECK_MSG(problem.ok(), problem.status().ToString());
  HomEngine engine;
  auto decided = engine.Decide(*problem);
  CQCS_CHECK_MSG(decided.ok(), decided.status().ToString());
  return *decided;
}

std::optional<Homomorphism> FindHomomorphism(const Structure& a,
                                             const Structure& b) {
  auto problem = HomProblem::FromStructures(a, b);
  CQCS_CHECK_MSG(problem.ok(), problem.status().ToString());
  HomEngine engine;
  auto witness = engine.FindWitness(*problem);
  CQCS_CHECK_MSG(witness.ok(), witness.status().ToString());
  return *std::move(witness);
}

}  // namespace cqcs
