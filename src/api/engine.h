// HomEngine: the unified front door over all five solving backends.
//
// The paper's theorems say which algorithm each instance deserves; the
// engine applies them so callers don't have to:
//
//   Backend::kSchaefer   Boolean Schaefer-class target  (Theorems 3.1-3.4)
//   Backend::kAcyclic    α-acyclic source — the full Yannakakis program:
//                        decide, witness, count, enumerate, and project
//                        all run over the semijoin-reduced join forest
//                        (cq/acyclic.h, on the rel/ columnar kernel)
//   Backend::kTreewidth  small-width source             (Theorem 5.4)
//   Backend::kUniform    everything (NP-complete)       (backtracking), with
//                        an optional existential-pebble-game preflight whose
//                        Spoiler win certifies unsatisfiability (Thm 4.7/4.9)
//   Backend::kAuto       route from the InstanceProfile, falling back down
//                        the list above; Explain() records the decision.
//
// Every run returns an EngineResult: the answer for the requested HomTask,
// an EngineStats superset merging the backends' stats structs, and an
// EngineExplain record (profile, chosen backend, why, fallbacks taken).
// The uniform backend honors EngineOptions::solve (node_limit, strategy,
// threads); a hit node limit surfaces as stats.search.limit_hit — "unknown",
// never a wrong answer. The polynomial backends always decide.
//
// The public conveniences — HasHomomorphism / FindHomomorphism
// (solver/backtracking.h) and cq::Contains / Evaluate / Minimize
// (cq/containment.h) — all route through this engine, so there is exactly
// one battle-tested path from any input shape to an answer.

#ifndef CQCS_API_ENGINE_H_
#define CQCS_API_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/problem.h"
#include "api/profile.h"
#include "common/governor.h"
#include "common/status.h"
#include "pebble/game.h"
#include "schaefer/uniform.h"
#include "solver/backtracking.h"
#include "treewidth/hom_dp.h"

namespace cqcs {

/// Which algorithm answers the instance.
enum class Backend {
  kAuto,       ///< Route from the profile; fall back toward kUniform.
  kUniform,    ///< Backtracking search (always applicable).
  kTreewidth,  ///< DP over the source's tree decomposition (decide/witness).
  kAcyclic,    ///< Full Yannakakis program (every HomTask).
  kSchaefer,   ///< Uniform polynomial algorithm for Schaefer targets
               ///< (decide/witness).
};

/// "auto" / "uniform" / ... — stable names for flags and JSON.
const char* BackendName(Backend backend);
/// Inverse of BackendName; nullopt for unknown names.
std::optional<Backend> ParseBackendName(std::string_view name);

/// "decide" / "witness" / "count" / "enumerate" / "project" — stable
/// names for `hom_tool --task` and JSON.
const char* HomTaskName(HomTask task);
/// Inverse of HomTaskName; nullopt for unknown names.
std::optional<HomTask> ParseHomTaskName(std::string_view name);

/// Engine configuration. The defaults make kAuto safe: the polynomial
/// routes only fire on profile evidence, and the pebble preflight (which is
/// itself Θ(n^{2k})) stays off unless asked for.
struct EngineOptions {
  Backend backend = Backend::kAuto;
  /// Uniform-backend knobs: propagation, node_limit, strategy, threads.
  SolveOptions solve;
  /// kAuto takes the treewidth route only when the min-fill width estimate
  /// is at most this...
  int max_auto_width = 3;
  /// ...and the estimated DP work (profile.treewidth_dp_cost, i.e.
  /// bags * |B|^{w+1}) stays under this budget.
  double treewidth_cost_budget = 5e6;
  /// When > 0, the uniform backend first plays the existential k-pebble
  /// game; a Spoiler win certifies "no homomorphism" without any search.
  uint32_t pebble_preflight_k = 0;
  /// HomTask::kCount stops counting here.
  size_t count_limit = SIZE_MAX;
  /// HomTask::kProject / kEnumerate stop after this many rows.
  size_t max_results = SIZE_MAX;
  /// HomTask::kProject only: report the distinct-row count (saturated at
  /// count_limit) in EngineResult::count and return no rows. The acyclic
  /// route then skips the cross-product assembly entirely
  /// (AcyclicProjectCount: reduced-forest row-count product instead of
  /// materialize-then-dedup); other backends enumerate up to count_limit
  /// projections and discard the rows.
  bool project_count_only = false;

  // -- Resource governance (common/governor.h). When any of the four knobs
  // below is set, Run() builds a per-request ResourceGovernor and threads
  // it through whichever backend executes: every backend polls it on a
  // stride and charges its table growth, so a trip unwinds cleanly to an
  // "unknown" EngineResult (decided=false, stats.governor.tripped) — never
  // an abort, never a torn answer. All zero/null = ungoverned (one null
  // check per poll site, no other overhead).
  /// Wall-clock deadline for the whole run; 0 = none.
  uint64_t deadline_ms = 0;
  /// Ceiling on bytes the backends' tables may hold at once; 0 = none.
  /// Also drives kAuto's pre-flight admission: a route whose size-bound
  /// estimate exceeds the budget is demoted before any work starts.
  size_t memory_budget_bytes = 0;
  /// Optional external cancellation flag, polled alongside the deadline.
  const std::atomic<bool>* cancel = nullptr;
  /// Fault injection for the robustness tests: trip at the Nth poll or the
  /// Kth allocation charge. Zeroed (inert) in production use.
  GovernorFailpoints failpoints;
};

/// What the run's ResourceGovernor saw: whether it tripped, why, and what
/// was spent up to the trip (or completion). `enabled` is false for
/// ungoverned runs; the other fields are then meaningless.
struct GovernorRunStats {
  bool enabled = false;
  bool tripped = false;
  TripCause cause = TripCause::kNone;
  uint64_t checks = 0;       ///< cooperative polls answered
  size_t peak_bytes = 0;     ///< high-water mark of charged table bytes
  uint64_t elapsed_ms = 0;   ///< wall-clock spent when the snapshot was taken
};

/// What the serving layer (serve/serving.h) did with the request before the
/// engine ran: cache outcome plus an engine-wide snapshot. `enabled` stays
/// false for direct HomEngine calls — the JSON then renders "serve": null.
struct ServeRequestStats {
  bool enabled = false;
  bool plan_cache_hit = false;    ///< compiled plan reused (pair or rebind)
  bool result_cache_hit = false;  ///< answer served without running a backend
  uint64_t shed_total = 0;        ///< requests shed by admission so far
  size_t queue_depth = 0;         ///< in-flight requests when this one ran
  double plan_hit_rate = 0.0;     ///< engine-wide, at serve time
  double result_hit_rate = 0.0;
};

/// Stats superset: one struct per backend that ran (used_* flags tell which).
struct EngineStats {
  bool used_search = false;
  bool used_treewidth = false;
  bool used_pebble = false;
  bool used_schaefer = false;
  bool used_acyclic = false;
  SolveStats search;
  TreewidthSolveStats treewidth;
  PebbleGameStats pebble;
  SchaeferSolveInfo schaefer;
  /// Semijoin / table-size counters from the Yannakakis run (used_acyclic).
  YannakakisStats yannakakis;
  /// Resource accounting for governed runs (EngineOptions::deadline_ms etc.).
  GovernorRunStats governor;
  /// Serving-layer record (cache hits, admission snapshot) for requests
  /// that came through serve::ServingEngine.
  ServeRequestStats serve;
  std::string ToJson() const;
};

/// The routing record: what was asked, what ran, and why — with the profile
/// evidence and every fallback taken along the way.
struct EngineExplain {
  Backend requested = Backend::kAuto;
  Backend chosen = Backend::kUniform;
  /// The task this run actually served (witness/count/... — so a JSON
  /// consumer never has to correlate with the request).
  HomTask served = HomTask::kDecide;
  /// Why `chosen` ran, naming the profile evidence (e.g. the Schaefer
  /// classes, the GYO verdict, the width estimate).
  std::string reason;
  /// Routes considered and abandoned, in decision order; includes runtime
  /// fallbacks (a backend erroring demotes kAuto to the uniform search).
  std::vector<std::string> fallbacks;
  bool profiled = false;      ///< kAuto profiles (all tasks — enumeration
                              ///< tasks record at least the GYO verdict);
                              ///< explicit backends skip it
  InstanceProfile profile;    ///< meaningful when `profiled`
  std::string ToString() const;
  std::string ToJson() const;
};

/// The unified answer. Which fields are meaningful depends on the task:
/// decided (+witness) for kDecide/kWitness, count for kCount, rows for
/// kEnumerate (full homomorphisms) / kProject (distinct projections).
struct EngineResult {
  HomTask task = HomTask::kDecide;
  bool decided = false;
  std::optional<Homomorphism> witness;
  size_t count = 0;
  std::vector<std::vector<Element>> rows;
  EngineExplain explain;
  EngineStats stats;

  const EngineExplain& Explain() const { return explain; }
  /// Machine-readable record of answer + explain + stats, for
  /// `hom_tool --explain` and the bench harnesses.
  std::string ToJson() const;
};

/// The front door. Stateless apart from its options; one engine can serve
/// any number of problems (and one compiled HomProblem any number of runs).
class HomEngine {
 public:
  explicit HomEngine(EngineOptions options = {}) : options_(options) {}

  const EngineOptions& options() const { return options_; }

  /// Solves `problem` for `task`. Errors: InvalidArgument when an explicitly
  /// requested backend cannot handle the task or instance (kAuto never has
  /// that problem — it falls back); backend-specific statuses otherwise.
  /// A hit node limit is NOT an error here: check stats.search.limit_hit.
  /// Likewise a governed run that exhausts its budget returns OK with an
  /// "unknown" result: decided=false and stats.governor.tripped — the spent
  /// budget is recorded, the problem and engine stay reusable. kAuto does
  /// NOT fall back after a budget trip (the budget is already spent).
  Result<EngineResult> Run(const HomProblem& problem, HomTask task) const;

  // One-call conveniences over Run().
  Result<bool> Decide(const HomProblem& problem) const;
  Result<std::optional<Homomorphism>> FindWitness(
      const HomProblem& problem) const;
  Result<size_t> Count(const HomProblem& problem) const;
  Result<std::vector<std::vector<Element>>> Project(
      const HomProblem& problem) const;

 private:
  EngineOptions options_;
};

}  // namespace cqcs

#endif  // CQCS_API_ENGINE_H_
