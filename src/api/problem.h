// HomProblem: one value type for every input shape of the paper's central
// problem.
//
// Kolaitis–Vardi's Section 2 shows CQ evaluation, CQ containment, and the
// homomorphism problem are the same question. This module makes that
// concrete: all three input shapes normalize to a pair of structures
// (source A, target B) plus an optional projection —
//
//   FromStructures(A, B)      hom(A -> B) directly;
//   FromQuery(Q, D)           evaluation: A = canonical database of Q's
//                             body, B = D, projection = Q's head;
//   FromContainment(Q1, Q2)   containment: A = D_{Q2}, B = D_{Q1}, both
//                             with head markers (Theorem 2.1).
//
// A HomProblem is a *compiled* instance: the routing artifacts (profile,
// canonical query + GYO join-tree verdict, min-fill tree decomposition) and
// the solver's constraint network (CspInstance, with the CSR support
// indexes on B's relations) are built lazily on first use and cached, so
// repeated solves — batch evaluation of one query over many databases,
// Minimize's repeated containment tests — pay for compilation once.
// WithTarget() rebinds the target while sharing every source-side cache.
//
// Thread safety: the lazy caches are mutex-guarded, so concurrent solves of
// the same problem are safe; the returned references stay valid for the
// problem's lifetime (copies share the caches).

#ifndef CQCS_API_PROBLEM_H_
#define CQCS_API_PROBLEM_H_

#include <memory>
#include <span>
#include <vector>

#include "api/profile.h"
#include "common/status.h"
#include "core/structure.h"
#include "cq/acyclic.h"
#include "cq/query.h"
#include "solver/csp.h"
#include "treewidth/decomposition.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// What to compute about the instance.
enum class HomTask {
  kDecide,     ///< Is there a homomorphism?
  kWitness,    ///< ... and produce one.
  kCount,      ///< How many homomorphisms (up to EngineOptions::count_limit)?
  kEnumerate,  ///< All homomorphisms, as full source->target rows.
  kProject,    ///< Distinct projections onto projection() — CQ answers.
};

/// A compiled homomorphism problem. Copies are cheap and share the caches.
class HomProblem {
 public:
  /// hom(source -> target). InvalidArgument on vocabulary mismatch or
  /// structures that fail Validate(). Takes the structures by value: a
  /// compiled problem owns its inputs so the cached artifacts (and the
  /// CspInstance's internal pointers) can never dangle. One-shot callers
  /// pay one copy per structure — the price of the reuse design; amortize
  /// it by keeping the problem (or WithTarget rebinds) alive across solves.
  static Result<HomProblem> FromStructures(Structure source, Structure target);

  /// Evaluation of `query` over `database` (Theorem 2.1's first
  /// characterization): source = D_{Q} over the body vocabulary, projection
  /// = the head's elements. Errors mirror cq::Evaluate's validation.
  static Result<HomProblem> FromQuery(const ConjunctiveQuery& query,
                                      Structure database);

  /// Containment q1 ⊆ q2: source = D_{Q2}, target = D_{Q1}, head markers
  /// attached to both. Errors mirror cq::Contains' validation (vocabulary /
  /// head-arity mismatch).
  static Result<HomProblem> FromContainment(const ConjunctiveQuery& q1,
                                            const ConjunctiveQuery& q2);

  /// The same source against a new target, sharing all source-side caches
  /// (canonical query, acyclicity verdict, decomposition). This is the
  /// batch-evaluation / Minimize reuse path. InvalidArgument on vocabulary
  /// mismatch.
  Result<HomProblem> WithTarget(Structure new_target) const;

  /// Zero-copy rebind for callers that already share ownership of a
  /// validated target (the serving layer's database registry): same cache
  /// sharing as WithTarget(Structure) but no structure copy and no
  /// re-validation — the caller guarantees new_target passed Validate()
  /// when it entered the shared pool. InvalidArgument on null pointers or
  /// vocabulary mismatch.
  Result<HomProblem> WithTarget(
      std::shared_ptr<const Structure> new_target) const;

  const Structure& source() const { return *source_; }
  const Structure& target() const { return *target_; }

  /// Elements of the source to project solutions onto (HomTask::kProject).
  /// Set by FromQuery (the head); empty otherwise.
  std::span<const Element> projection() const { return projection_; }
  /// Overrides the projection. InvalidArgument on out-of-range elements
  /// (the projection is left unchanged).
  Status SetProjection(std::vector<Element> projection);

  // -- Compiled artifacts, built lazily and cached. ------------------------

  /// The FULL instance profile: evaluates every island predicate, including
  /// the min-fill width estimate, whose cost grows with the source. The
  /// engine's router prefers the staged accessors below (cheapest predicate
  /// first, stop at the first island that fires); call this when you want
  /// the whole picture.
  const InstanceProfile& Profile() const;

  /// Is the target's universe {0, 1}?
  bool TargetBoolean() const;

  /// Schaefer classification of the target; 0 when the target is not
  /// Boolean or in no class (Theorem 3.1). Cached.
  SchaeferClassSet TargetSchaeferClasses() const;

  /// The Boolean canonical query of the source (body = source's facts);
  /// the input to the Yannakakis backend.
  const ConjunctiveQuery& SourceCanonicalQuery() const;

  /// GYO verdict on the source's hypergraph.
  bool SourceAcyclic() const;

  /// Min-fill heuristic tree decomposition of the source.
  const TreeDecomposition& SourceDecomposition() const;

  /// Governed variant of the decomposition build: polls `governor` while
  /// the min-fill ordering runs, so a deadline or budget trip surfaces as
  /// kResourceExhausted instead of an unbounded compile. On success the
  /// result is cached exactly like SourceDecomposition(); a tripped build
  /// caches nothing, so a later (re-budgeted) run can complete it. A null
  /// governor degrades to the ungoverned build.
  Status EnsureSourceDecomposition(ResourceGovernor* governor) const;

  /// The constraint network for the uniform backend, with B's CSR support
  /// indexes materialized. Built once per (source, target) pair.
  const CspInstance& Csp() const;

 private:
  struct SourceCache;
  struct PairCache;

  HomProblem(std::shared_ptr<const Structure> source,
             std::shared_ptr<const Structure> target,
             std::vector<Element> projection);

  std::shared_ptr<const Structure> source_;
  std::shared_ptr<const Structure> target_;
  std::vector<Element> projection_;
  std::shared_ptr<SourceCache> source_cache_;
  std::shared_ptr<PairCache> pair_cache_;
};

}  // namespace cqcs

#endif  // CQCS_API_PROBLEM_H_
