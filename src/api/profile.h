// Instance analysis for the engine front door (api/engine.h).
//
// The paper's routing theorems are all predicates on the *instance*: is the
// target a Schaefer structure (Theorem 3.1/3.3)?  Is the source hypergraph
// α-acyclic (Yannakakis, [Yan81])?  Does the source have small treewidth
// (Theorem 5.4)?  An InstanceProfile is the result of evaluating those
// predicates once — plus the size statistics a cost-based router needs in
// the spirit of the output/size-bound line of work (PAPERS.md, "Size Bounds
// for Conjunctive Queries") — so routing is a table lookup, not a theory
// quiz for the caller.

#ifndef CQCS_API_PROFILE_H_
#define CQCS_API_PROFILE_H_

#include <cstdint>
#include <string>

#include "core/structure.h"
#include "schaefer/boolean_relation.h"
#include "treewidth/decomposition.h"

namespace cqcs {

/// Everything the router needs to know about a hom(A -> B) instance.
/// Produced by Analyze() (one-shot) or cached inside a HomProblem.
struct InstanceProfile {
  // -- Size statistics (‖·‖ is the paper's size measure).
  size_t source_universe = 0;
  size_t source_tuples = 0;
  size_t source_size = 0;
  size_t target_universe = 0;
  size_t target_tuples = 0;
  size_t target_size = 0;

  // -- Schaefer island (Theorem 3.1): only meaningful for Boolean targets.
  bool target_boolean = false;          ///< universe of B is {0, 1}
  SchaeferClassSet schaefer_classes = 0;  ///< 0 when not Boolean / not Schaefer

  // -- Acyclicity island (Yannakakis): GYO on the source's hypergraph.
  // `acyclicity_known` is false when the router decided before reaching
  // this stage (e.g. a Schaefer target) — the decision tree evaluates its
  // predicates lazily, cheapest first, and records only what it computed.
  bool acyclicity_known = false;
  bool source_acyclic = false;

  // -- Treewidth island (Theorem 5.4): min-fill heuristic estimate. The
  // heuristic only upper-bounds the true width, so a large estimate never
  // proves intractability — it only steers the router. Like acyclicity,
  // `width_known` marks whether the (comparatively expensive) min-fill
  // stage actually ran.
  bool width_known = false;
  int width_estimate = -1;         ///< max bag size - 1; -1 for empty source
  size_t decomposition_bags = 0;   ///< nodes of the heuristic decomposition
  /// Estimated DP table work: decomposition_bags * |B|^{width+1}. The gate
  /// the router compares against its cost budget (a crude size bound; see
  /// the header comment).
  double treewidth_dp_cost = 0.0;

  /// One-line diagnostic rendering.
  std::string ToString() const;
  /// Machine-readable rendering for `hom_tool --explain` and the benches.
  std::string ToJson() const;
};

/// Assembles a profile from precomputed routing artifacts (the caching path:
/// HomProblem holds the join tree and decomposition and must not recompute
/// them just to fill in numbers).
InstanceProfile BuildProfile(const Structure& a, const Structure& b,
                             bool source_acyclic,
                             const TreeDecomposition& source_decomposition);

/// Fills the size-statistic fields (the paper's ‖·‖ measures) of `profile`.
/// Shared by BuildProfile and the engine's staged router, which assembles a
/// partial profile one decision stage at a time.
void FillSizeStats(const Structure& a, const Structure& b,
                   InstanceProfile* profile);

/// The treewidth cost gate: bags * |target_universe|^(width+1), 0 when the
/// decomposition is empty (width -1). One definition so the router and
/// Analyze() can never disagree about the cost model. Computed in saturating
/// integer arithmetic (common/saturating.h) and widened to double; overflow
/// saturates far above any router budget instead of wrapping.
double EstimateTreewidthDpCost(size_t bags, int width, size_t target_universe);

/// Worst-case bytes the treewidth DP can charge against a memory budget:
/// bags * |B|^(width+1) rows of (width+1) Elements. Saturates at SIZE_MAX
/// (meaning "more than any budget"); 0 when width < 0. The engine's
/// pre-flight admission check compares this against the governor's budget
/// before any table is built.
size_t EstimateTreewidthDpBytes(size_t bags, int width, size_t target_universe);

/// Worst-case bytes the Yannakakis per-atom materialization can charge:
/// every source tuple of relation R becomes a table of at most |R^B| rows
/// of arity Elements. Saturates at SIZE_MAX (admission then refuses any
/// finite budget, which is the right answer for an estimate that large).
/// Shared by the engine's pre-flight admission and the serving layer's
/// in-flight-bytes queue policy.
size_t EstimateAcyclicBytes(const Structure& a, const Structure& b);

/// One-shot analysis of a structure pair: runs GYO (via the canonical query
/// of A) and the min-fill heuristic, then classifies B. The structures are
/// expected to share a vocabulary (the profile itself never compares them,
/// but a profile of mismatched structures routes a problem that has no
/// answer). Prefer HomProblem::Profile() when the instance will be solved —
/// it caches the artifacts this function throws away.
InstanceProfile Analyze(const Structure& a, const Structure& b);

}  // namespace cqcs

#endif  // CQCS_API_PROFILE_H_
