#include "api/profile.h"

#include <cstdint>
#include <sstream>

#include "common/saturating.h"
#include "cq/gyo.h"

namespace cqcs {

void FillSizeStats(const Structure& a, const Structure& b,
                   InstanceProfile* profile) {
  profile->source_universe = a.universe_size();
  profile->source_tuples = a.TotalTuples();
  profile->source_size = a.Size();
  profile->target_universe = b.universe_size();
  profile->target_tuples = b.TotalTuples();
  profile->target_size = b.Size();
}

double EstimateTreewidthDpCost(size_t bags, int width,
                               size_t target_universe) {
  if (width < 0) return 0.0;
  // Saturating integer math: m^(w+1) on a large universe with a wide bag
  // saturates at SIZE_MAX, which lands far above any router budget, so
  // saturation only needs to preserve "huge", not the exact value.
  size_t entries = SatPow(target_universe,
                          static_cast<size_t>(width) + 1, SIZE_MAX);
  return static_cast<double>(SatMul(bags, entries, SIZE_MAX));
}

size_t EstimateTreewidthDpBytes(size_t bags, int width,
                                size_t target_universe) {
  if (width < 0) return 0;
  size_t entries = SatPow(target_universe,
                          static_cast<size_t>(width) + 1, SIZE_MAX);
  size_t rows = SatMul(bags, entries, SIZE_MAX);
  size_t row_bytes =
      SatMul(static_cast<size_t>(width) + 1, sizeof(Element), SIZE_MAX);
  return SatMul(rows, row_bytes, SIZE_MAX);
}

size_t EstimateAcyclicBytes(const Structure& a, const Structure& b) {
  size_t total = 0;
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    size_t row_bytes = SatMul(vocab.arity(id), sizeof(Element), SIZE_MAX);
    size_t per_atom =
        SatMul(b.relation(id).tuple_count(), row_bytes, SIZE_MAX);
    total = SatAdd(
        total, SatMul(a.relation(id).tuple_count(), per_atom, SIZE_MAX),
        SIZE_MAX);
  }
  return total;
}

InstanceProfile BuildProfile(const Structure& a, const Structure& b,
                             bool source_acyclic,
                             const TreeDecomposition& source_decomposition) {
  InstanceProfile p;
  FillSizeStats(a, b, &p);
  p.target_boolean = IsBooleanStructure(b);
  p.schaefer_classes = p.target_boolean ? ClassifyBooleanStructure(b) : 0;
  p.acyclicity_known = true;
  p.source_acyclic = source_acyclic;
  p.width_known = true;
  p.width_estimate = source_decomposition.Width();
  p.decomposition_bags = source_decomposition.node_count();
  p.treewidth_dp_cost = EstimateTreewidthDpCost(
      p.decomposition_bags, p.width_estimate, b.universe_size());
  return p;
}

InstanceProfile Analyze(const Structure& a, const Structure& b) {
  // The shared queue-driven GYO (cq/gyo.h) runs directly on A's tuples —
  // the same hypergraph the canonical query would present, without
  // materializing the query.
  bool acyclic = IsAcyclicStructure(a);
  TreeDecomposition decomposition = HeuristicDecomposition(a);
  return BuildProfile(a, b, acyclic, decomposition);
}

std::string InstanceProfile::ToString() const {
  std::ostringstream out;
  out << "source ‖A‖=" << source_size << " (n=" << source_universe
      << ", tuples=" << source_tuples << "), target ‖B‖=" << target_size
      << " (n=" << target_universe << ", tuples=" << target_tuples << "), ";
  if (target_boolean) {
    out << "Boolean target ["
        << (schaefer_classes != 0 ? SchaeferClassSetToString(schaefer_classes)
                                  : std::string("no Schaefer class"))
        << "], ";
  } else {
    out << "non-Boolean target, ";
  }
  if (acyclicity_known) {
    out << (source_acyclic ? "acyclic" : "cyclic") << " source, ";
  } else {
    out << "acyclicity not evaluated, ";
  }
  if (width_known) {
    out << "width<=" << width_estimate << " (" << decomposition_bags
        << " bags, est. DP cost " << treewidth_dp_cost << ")";
  } else {
    out << "width not estimated";
  }
  return out.str();
}

std::string InstanceProfile::ToJson() const {
  std::ostringstream out;
  out << "{\"source_universe\":" << source_universe
      << ",\"source_tuples\":" << source_tuples
      << ",\"source_size\":" << source_size
      << ",\"target_universe\":" << target_universe
      << ",\"target_tuples\":" << target_tuples
      << ",\"target_size\":" << target_size
      << ",\"target_boolean\":" << (target_boolean ? "true" : "false")
      << ",\"schaefer_classes\":\""
      << (schaefer_classes != 0 ? SchaeferClassSetToString(schaefer_classes)
                                : std::string())
      << "\",\"source_acyclic\":"
      << (acyclicity_known ? (source_acyclic ? "true" : "false") : "null")
      << ",\"width_estimate\":";
  if (width_known) {
    out << width_estimate << ",\"decomposition_bags\":" << decomposition_bags
        << ",\"treewidth_dp_cost\":" << treewidth_dp_cost;
  } else {
    out << "null,\"decomposition_bags\":null,\"treewidth_dp_cost\":null";
  }
  out << "}";
  return out.str();
}

}  // namespace cqcs
