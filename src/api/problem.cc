#include "api/problem.h"

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "cq/canonical.h"
#include "cq/containment.h"
#include "cq/gyo.h"

namespace cqcs {

// Source-side compilation products: everything derived from the source
// structure alone, shared across WithTarget rebinds. Fields are built
// lazily under `mu` and never rebuilt, so references handed out after the
// build stay valid without the lock.
struct HomProblem::SourceCache {
  Mutex mu;
  std::optional<ConjunctiveQuery> canonical CQCS_GUARDED_BY(mu);
  bool acyclic_known CQCS_GUARDED_BY(mu) = false;
  bool acyclic CQCS_GUARDED_BY(mu) = false;
  std::optional<TreeDecomposition> decomposition CQCS_GUARDED_BY(mu);
};

// Pair products: the profile (needs the target half) and the constraint
// network. Fresh per (source, target) binding.
struct HomProblem::PairCache {
  Mutex mu;
  std::optional<InstanceProfile> profile CQCS_GUARDED_BY(mu);
  std::optional<CspInstance> csp CQCS_GUARDED_BY(mu);
  bool schaefer_known CQCS_GUARDED_BY(mu) = false;
  SchaeferClassSet schaefer_classes CQCS_GUARDED_BY(mu) = 0;
};

HomProblem::HomProblem(std::shared_ptr<const Structure> source,
                       std::shared_ptr<const Structure> target,
                       std::vector<Element> projection)
    : source_(std::move(source)),
      target_(std::move(target)),
      projection_(std::move(projection)),
      source_cache_(std::make_shared<SourceCache>()),
      pair_cache_(std::make_shared<PairCache>()) {}

Result<HomProblem> HomProblem::FromStructures(Structure source,
                                              Structure target) {
  if (!source.vocabulary()->Equals(*target.vocabulary())) {
    return Status::InvalidArgument(
        "source and target have different vocabularies");
  }
  CQCS_RETURN_IF_ERROR(source.Validate());
  CQCS_RETURN_IF_ERROR(target.Validate());
  return HomProblem(std::make_shared<const Structure>(std::move(source)),
                    std::make_shared<const Structure>(std::move(target)), {});
}

Result<HomProblem> HomProblem::FromQuery(const ConjunctiveQuery& query,
                                         Structure database) {
  CQCS_RETURN_IF_ERROR(query.Validate());
  if (!query.vocabulary()->Equals(*database.vocabulary())) {
    return Status::InvalidArgument(
        "query and database have different vocabularies");
  }
  CQCS_RETURN_IF_ERROR(database.Validate());
  CanonicalDb body = MakeCanonicalDb(query);
  return HomProblem(
      std::make_shared<const Structure>(std::move(body.structure)),
      std::make_shared<const Structure>(std::move(database)),
      std::move(body.head));
}

Result<HomProblem> HomProblem::FromContainment(const ConjunctiveQuery& q1,
                                               const ConjunctiveQuery& q2) {
  CQCS_RETURN_IF_ERROR(CheckComparableQueries(q1, q2));
  // Theorem 2.1: Q1 ⊆ Q2 iff hom(D_{Q2} -> D_{Q1}), head markers pinning
  // the distinguished variables positionally.
  CanonicalDb d1 = MakeCanonicalDbWithHeadMarkers(q1);
  CanonicalDb d2 = MakeCanonicalDbWithHeadMarkers(q2);
  return HomProblem(std::make_shared<const Structure>(std::move(d2.structure)),
                    std::make_shared<const Structure>(std::move(d1.structure)),
                    {});
}

Result<HomProblem> HomProblem::WithTarget(Structure new_target) const {
  if (!source_->vocabulary()->Equals(*new_target.vocabulary())) {
    return Status::InvalidArgument(
        "new target's vocabulary differs from the source's");
  }
  CQCS_RETURN_IF_ERROR(new_target.Validate());
  HomProblem rebound(
      source_, std::make_shared<const Structure>(std::move(new_target)),
      projection_);
  rebound.source_cache_ = source_cache_;  // keep the compiled source side
  return rebound;
}

Result<HomProblem> HomProblem::WithTarget(
    std::shared_ptr<const Structure> new_target) const {
  if (new_target == nullptr) {
    return Status::InvalidArgument("WithTarget: null target");
  }
  if (!source_->vocabulary()->Equals(*new_target->vocabulary())) {
    return Status::InvalidArgument(
        "new target's vocabulary differs from the source's");
  }
  HomProblem rebound(source_, std::move(new_target), projection_);
  rebound.source_cache_ = source_cache_;  // keep the compiled source side
  return rebound;
}

Status HomProblem::SetProjection(std::vector<Element> projection) {
  for (Element e : projection) {
    if (e >= source_->universe_size()) {
      return Status::InvalidArgument(
          "projection element " + std::to_string(e) +
          " outside the source universe of size " +
          std::to_string(source_->universe_size()));
    }
  }
  projection_ = std::move(projection);
  return Status::OK();
}

const ConjunctiveQuery& HomProblem::SourceCanonicalQuery() const {
  SourceCache& cache = *source_cache_;
  MutexLock lock(cache.mu);
  if (!cache.canonical.has_value()) {
    cache.canonical = CanonicalQuery(*source_);
  }
  return *cache.canonical;
}

bool HomProblem::SourceAcyclic() const {
  SourceCache& cache = *source_cache_;
  MutexLock lock(cache.mu);
  if (!cache.acyclic_known) {
    // Shared queue-driven GYO, straight on the source's tuples — same
    // hypergraph as the canonical query's, no query materialization.
    cache.acyclic = IsAcyclicStructure(*source_);
    cache.acyclic_known = true;
  }
  return cache.acyclic;
}

const TreeDecomposition& HomProblem::SourceDecomposition() const {
  SourceCache& cache = *source_cache_;
  MutexLock lock(cache.mu);
  if (!cache.decomposition.has_value()) {
    cache.decomposition = HeuristicDecomposition(*source_);
  }
  return *cache.decomposition;
}

Status HomProblem::EnsureSourceDecomposition(ResourceGovernor* governor) const {
  SourceCache& cache = *source_cache_;
  MutexLock lock(cache.mu);
  if (cache.decomposition.has_value()) return Status::OK();
  if (governor == nullptr) {
    cache.decomposition = HeuristicDecomposition(*source_);
    return Status::OK();
  }
  // A trip leaves the cache empty — never a torn artifact — so the problem
  // stays reusable under a fresh budget.
  Result<TreeDecomposition> decomposition =
      HeuristicDecomposition(*source_, governor);
  if (!decomposition.ok()) return decomposition.status();
  cache.decomposition = *std::move(decomposition);
  return Status::OK();
}

const InstanceProfile& HomProblem::Profile() const {
  // Build the source-side artifacts before taking the pair lock (lock order:
  // source cache, then pair cache — never the reverse).
  bool acyclic = SourceAcyclic();
  const TreeDecomposition& decomposition = SourceDecomposition();
  PairCache& cache = *pair_cache_;
  MutexLock lock(cache.mu);
  if (!cache.profile.has_value()) {
    cache.profile = BuildProfile(*source_, *target_, acyclic, decomposition);
  }
  return *cache.profile;
}

bool HomProblem::TargetBoolean() const { return IsBooleanStructure(*target_); }

SchaeferClassSet HomProblem::TargetSchaeferClasses() const {
  PairCache& cache = *pair_cache_;
  MutexLock lock(cache.mu);
  if (!cache.schaefer_known) {
    cache.schaefer_classes = IsBooleanStructure(*target_)
                                 ? ClassifyBooleanStructure(*target_)
                                 : 0;
    cache.schaefer_known = true;
  }
  return cache.schaefer_classes;
}

const CspInstance& HomProblem::Csp() const {
  PairCache& cache = *pair_cache_;
  MutexLock lock(cache.mu);
  if (!cache.csp.has_value()) {
    cache.csp.emplace(*source_, *target_);
  }
  return *cache.csp;
}

}  // namespace cqcs
