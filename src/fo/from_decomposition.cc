#include "fo/from_decomposition.h"

#include <algorithm>

#include "common/check.h"

namespace cqcs {

namespace {

class Translator {
 public:
  Translator(const Structure& a, const TreeDecomposition& td)
      : a_(a), td_(td), slot_pool_(static_cast<size_t>(td.Width()) + 1) {
    AssignTuplesToBags();
  }

  FoFormula BuildAll() {
    std::vector<FoFormula> roots;
    for (uint32_t node = 0; node < td_.node_count(); ++node) {
      if (td_.parent(node) != TreeDecomposition::kNoParent) continue;
      // Root: all slots fresh.
      std::vector<int> slot_of_element(a_.universe_size(), -1);
      std::vector<uint8_t> slot_used(slot_pool_, 0);
      roots.push_back(BuildNode(node, slot_of_element, slot_used));
    }
    if (roots.size() == 1) return std::move(roots[0]);
    return FoFormula::And(std::move(roots));
  }

 private:
  void AssignTuplesToBags() {
    tuples_of_node_.resize(td_.node_count());
    const Vocabulary& vocab = *a_.vocabulary();
    for (RelId id = 0; id < vocab.size(); ++id) {
      const Relation& r = a_.relation(id);
      for (uint32_t t = 0; t < r.tuple_count(); ++t) {
        std::span<const Element> tup = r.tuple(t);
        for (uint32_t node = 0; node < td_.node_count(); ++node) {
          const auto& bag = td_.bag(node);
          bool covered = true;
          for (Element e : tup) {
            if (!std::binary_search(bag.begin(), bag.end(), e)) {
              covered = false;
              break;
            }
          }
          if (covered) {
            tuples_of_node_[node].emplace_back(id, t);
            break;
          }
        }
      }
    }
  }

  /// Builds the subformula for `node`. `slot_of_element` / `slot_used`
  /// describe the slots of elements shared with the parent (the
  /// "boundary"). New bag elements are bound to free slots under ∃.
  FoFormula BuildNode(uint32_t node, std::vector<int> slot_of_element,
                      std::vector<uint8_t> slot_used) {
    const auto& bag = td_.bag(node);
    // Release slots of inherited elements that left the bag: a parent slot
    // stays reserved only while its element is still present.
    // (slot_of_element entries for departed elements are cleared by the
    // caller — `inherited` only lists surviving ones.)
    std::vector<uint32_t> fresh_slots;
    std::vector<Element> fresh_elements;
    for (Element e : bag) {
      if (slot_of_element[e] != -1) continue;  // shared with parent
      uint32_t slot = 0;
      while (slot < slot_pool_ && slot_used[slot]) ++slot;
      CQCS_CHECK_MSG(slot < slot_pool_, "slot pool exhausted — bag wider "
                                        "than width+1?");
      slot_of_element[e] = static_cast<int>(slot);
      slot_used[slot] = 1;
      fresh_slots.push_back(slot);
      fresh_elements.push_back(e);
    }

    std::vector<FoFormula> conjuncts;
    for (auto [rel, t] : tuples_of_node_[node]) {
      std::span<const Element> tup = a_.relation(rel).tuple(t);
      std::vector<uint32_t> vars;
      vars.reserve(tup.size());
      for (Element e : tup) {
        CQCS_CHECK(slot_of_element[e] != -1);
        vars.push_back(static_cast<uint32_t>(slot_of_element[e]));
      }
      conjuncts.push_back(FoFormula::Atom(rel, std::move(vars)));
    }
    for (uint32_t child : td_.children(node)) {
      // The child inherits slots only for elements shared with it.
      const auto& cbag = td_.bag(child);
      std::vector<int> child_slots(a_.universe_size(), -1);
      std::vector<uint8_t> child_used(slot_pool_, 0);
      for (Element e : cbag) {
        if (std::binary_search(bag.begin(), bag.end(), e)) {
          child_slots[e] = slot_of_element[e];
          child_used[static_cast<size_t>(slot_of_element[e])] = 1;
        }
      }
      conjuncts.push_back(BuildNode(child, std::move(child_slots),
                                    std::move(child_used)));
    }

    FoFormula body = conjuncts.size() == 1 ? std::move(conjuncts[0])
                                           : FoFormula::And(std::move(conjuncts));
    // Quantify the fresh slots (innermost-first order is immaterial).
    for (size_t i = fresh_slots.size(); i-- > 0;) {
      body = FoFormula::Exists(fresh_slots[i], std::move(body));
    }
    return body;
  }

  const Structure& a_;
  const TreeDecomposition& td_;
  size_t slot_pool_;
  std::vector<std::vector<std::pair<RelId, uint32_t>>> tuples_of_node_;
};

}  // namespace

Result<FoFormula> BuildSentenceFromDecomposition(
    const Structure& a, const TreeDecomposition& decomposition) {
  CQCS_RETURN_IF_ERROR(decomposition.ValidateFor(a));
  if (a.universe_size() == 0) {
    return FoFormula::And({});  // the empty conjunction: "true"
  }
  Translator translator(a, decomposition);
  FoFormula sentence = translator.BuildAll();
  CQCS_CHECK_MSG(sentence.FreeVars().empty(), "translation left free slots");
  return sentence;
}

Result<FoFormula> BuildSentence(const Structure& a) {
  return BuildSentenceFromDecomposition(a, HeuristicDecomposition(a));
}

}  // namespace cqcs
