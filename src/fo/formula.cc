#include "fo/formula.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.h"

namespace cqcs {

namespace {

void CollectFree(const FoFormula& f, std::set<uint32_t>* out) {
  switch (f.kind()) {
    case FoFormula::Kind::kAtom:
      out->insert(f.atom_vars().begin(), f.atom_vars().end());
      return;
    case FoFormula::Kind::kAnd:
      for (const FoFormula& child : f.children()) CollectFree(child, out);
      return;
    case FoFormula::Kind::kExists: {
      std::set<uint32_t> inner;
      CollectFree(f.body(), &inner);
      inner.erase(f.quantified_var());
      out->insert(inner.begin(), inner.end());
      return;
    }
  }
}

void CollectAll(const FoFormula& f, std::set<uint32_t>* out) {
  switch (f.kind()) {
    case FoFormula::Kind::kAtom:
      out->insert(f.atom_vars().begin(), f.atom_vars().end());
      return;
    case FoFormula::Kind::kAnd:
      for (const FoFormula& child : f.children()) CollectAll(child, out);
      return;
    case FoFormula::Kind::kExists:
      out->insert(f.quantified_var());
      CollectAll(f.body(), out);
      return;
  }
}

}  // namespace

std::vector<uint32_t> FoFormula::FreeVars() const {
  std::set<uint32_t> free;
  CollectFree(*this, &free);
  return std::vector<uint32_t>(free.begin(), free.end());
}

uint32_t FoFormula::SlotCount() const {
  std::set<uint32_t> all;
  CollectAll(*this, &all);
  return static_cast<uint32_t>(all.size());
}

std::string FoFormula::ToString(const Vocabulary& vocab) const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kAtom: {
      out << vocab.name(rel_) << "(";
      for (size_t i = 0; i < atom_vars_.size(); ++i) {
        if (i > 0) out << ", ";
        out << "x" << atom_vars_[i];
      }
      out << ")";
      break;
    }
    case Kind::kAnd: {
      if (children_.empty()) {
        out << "true";
        break;
      }
      out << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << " & ";
        out << children_[i].ToString(vocab);
      }
      out << ")";
      break;
    }
    case Kind::kExists: {
      out << "Ex" << quantified_var_ << " " << children_[0].ToString(vocab);
      break;
    }
  }
  return out.str();
}

FoFormula FoFormula::Atom(RelId rel, std::vector<uint32_t> vars) {
  FoFormula f;
  f.kind_ = Kind::kAtom;
  f.rel_ = rel;
  f.atom_vars_ = std::move(vars);
  return f;
}

FoFormula FoFormula::And(std::vector<FoFormula> children) {
  FoFormula f;
  f.kind_ = Kind::kAnd;
  f.children_ = std::move(children);
  return f;
}

FoFormula FoFormula::Exists(uint32_t var, FoFormula body) {
  FoFormula f;
  f.kind_ = Kind::kExists;
  f.quantified_var_ = var;
  f.children_.push_back(std::move(body));
  return f;
}

}  // namespace cqcs
