// Bottom-up evaluation of ∃FO^k_{∧,+} formulas on a finite structure.
//
// Every subformula is evaluated to the relation of its satisfying
// assignments over its free slots; conjunction is a natural join and
// existential quantification a projection. With k slots every intermediate
// relation has at most |B|^k rows — the polynomial combined complexity of
// bounded-variable logics ([Var95]) that Theorem 5.4 relies on.

#ifndef CQCS_FO_EVALUATE_H_
#define CQCS_FO_EVALUATE_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "core/structure.h"
#include "fo/formula.h"

namespace cqcs {

/// A relation over named variable slots: `vars` is sorted ascending and
/// every row has vars.size() entries aligned with it.
struct FoRelation {
  std::vector<uint32_t> vars;
  std::set<std::vector<Element>> rows;
};

/// Statistics, for the benchmarks.
struct FoEvalStats {
  size_t max_intermediate_rows = 0;
  size_t join_count = 0;
};

/// Evaluates the formula over B; errors on vocabulary mismatches (atom
/// relation ids must be valid for B's vocabulary, with matching arities).
Result<FoRelation> EvaluateFo(const FoFormula& formula, const Structure& b,
                              FoEvalStats* stats = nullptr);

/// Sentence convenience: true iff the formula (which must have no free
/// slots) holds in B.
Result<bool> EvaluateFoSentence(const FoFormula& formula, const Structure& b,
                                FoEvalStats* stats = nullptr);

}  // namespace cqcs

#endif  // CQCS_FO_EVALUATE_H_
