// Existential positive first-order formulas with a bounded number of
// variables — the fragment ∃FO^k_{∧,+} of Section 5 (conjunction and
// existential quantification over atoms; Remark 5.3 shows this fragment
// captures exactly the queries Q_A for A of treewidth k-1).
//
// Variables are SLOTS 0..k-1: an Exists node rebinds a slot, which is how a
// formula over k slots can mention arbitrarily many logical variables —
// the whole point of the bounded-variable fragments.

#ifndef CQCS_FO_FORMULA_H_
#define CQCS_FO_FORMULA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/vocabulary.h"

namespace cqcs {

/// A formula node. Construct with the factory functions below.
class FoFormula {
 public:
  enum class Kind { kAtom, kAnd, kExists };

  Kind kind() const { return kind_; }

  // Atom accessors (kind == kAtom).
  RelId rel() const { return rel_; }
  const std::vector<uint32_t>& atom_vars() const { return atom_vars_; }

  // And accessors (kind == kAnd).
  const std::vector<FoFormula>& children() const { return children_; }

  // Exists accessors (kind == kExists).
  uint32_t quantified_var() const { return quantified_var_; }
  const FoFormula& body() const { return children_[0]; }

  /// Free variable slots, sorted ascending.
  std::vector<uint32_t> FreeVars() const;

  /// Number of distinct variable slots mentioned anywhere (bound or free):
  /// the "number of distinct variables" of the bounded-variable fragments.
  uint32_t SlotCount() const;

  /// Rendering like "∃x1 (E(x0, x1) ∧ ∃x0 E(x1, x0))" with xN slot names.
  std::string ToString(const Vocabulary& vocab) const;

  // Factories.
  static FoFormula Atom(RelId rel, std::vector<uint32_t> vars);
  static FoFormula And(std::vector<FoFormula> children);
  static FoFormula Exists(uint32_t var, FoFormula body);

 private:
  FoFormula() = default;

  Kind kind_ = Kind::kAtom;
  RelId rel_ = 0;
  std::vector<uint32_t> atom_vars_;
  std::vector<FoFormula> children_;
  uint32_t quantified_var_ = 0;
};

}  // namespace cqcs

#endif  // CQCS_FO_FORMULA_H_
