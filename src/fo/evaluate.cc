#include "fo/evaluate.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace cqcs {

namespace {

void Track(FoEvalStats* stats, const FoRelation& r) {
  if (stats != nullptr) {
    stats->max_intermediate_rows =
        std::max(stats->max_intermediate_rows, r.rows.size());
  }
}

/// Natural join of two slot relations.
FoRelation Join(const FoRelation& left, const FoRelation& right,
                FoEvalStats* stats) {
  if (stats != nullptr) ++stats->join_count;
  FoRelation out;
  std::set_union(left.vars.begin(), left.vars.end(), right.vars.begin(),
                 right.vars.end(), std::back_inserter(out.vars));
  // Positions of shared vars and of each side's vars in the output.
  std::vector<size_t> left_pos(left.vars.size()), right_pos(right.vars.size());
  for (size_t i = 0; i < left.vars.size(); ++i) {
    left_pos[i] = static_cast<size_t>(
        std::lower_bound(out.vars.begin(), out.vars.end(), left.vars[i]) -
        out.vars.begin());
  }
  for (size_t i = 0; i < right.vars.size(); ++i) {
    right_pos[i] = static_cast<size_t>(
        std::lower_bound(out.vars.begin(), out.vars.end(), right.vars[i]) -
        out.vars.begin());
  }
  std::vector<size_t> shared_left, shared_right;  // aligned index pairs
  for (size_t i = 0; i < left.vars.size(); ++i) {
    auto it =
        std::lower_bound(right.vars.begin(), right.vars.end(), left.vars[i]);
    if (it != right.vars.end() && *it == left.vars[i]) {
      shared_left.push_back(i);
      shared_right.push_back(static_cast<size_t>(it - right.vars.begin()));
    }
  }
  // Index the right side by its shared-key projection.
  std::map<std::vector<Element>, std::vector<const std::vector<Element>*>>
      by_key;
  for (const auto& row : right.rows) {
    std::vector<Element> key;
    key.reserve(shared_right.size());
    for (size_t i : shared_right) key.push_back(row[i]);
    by_key[key].push_back(&row);
  }
  std::vector<Element> merged(out.vars.size());
  for (const auto& lrow : left.rows) {
    std::vector<Element> key;
    key.reserve(shared_left.size());
    for (size_t i : shared_left) key.push_back(lrow[i]);
    auto it = by_key.find(key);
    if (it == by_key.end()) continue;
    for (const auto* rrow : it->second) {
      for (size_t i = 0; i < left.vars.size(); ++i) {
        merged[left_pos[i]] = lrow[i];
      }
      for (size_t i = 0; i < right.vars.size(); ++i) {
        merged[right_pos[i]] = (*rrow)[i];
      }
      out.rows.insert(merged);
    }
  }
  Track(stats, out);
  return out;
}

/// Projects a slot out of the relation (existential quantification).
FoRelation ProjectOut(const FoRelation& r, uint32_t var, FoEvalStats* stats) {
  auto it = std::lower_bound(r.vars.begin(), r.vars.end(), var);
  if (it == r.vars.end() || *it != var) return r;  // var not free: no-op
  size_t drop = static_cast<size_t>(it - r.vars.begin());
  FoRelation out;
  out.vars = r.vars;
  out.vars.erase(out.vars.begin() + static_cast<ptrdiff_t>(drop));
  for (const auto& row : r.rows) {
    std::vector<Element> projected = row;
    projected.erase(projected.begin() + static_cast<ptrdiff_t>(drop));
    out.rows.insert(std::move(projected));
  }
  Track(stats, out);
  return out;
}

Result<FoRelation> EvalImpl(const FoFormula& f, const Structure& b,
                            FoEvalStats* stats) {
  switch (f.kind()) {
    case FoFormula::Kind::kAtom: {
      if (f.rel() >= b.vocabulary()->size()) {
        return Status::InvalidArgument("atom relation id out of range");
      }
      const Relation& rel = b.relation(f.rel());
      if (f.atom_vars().size() != rel.arity()) {
        return Status::InvalidArgument("atom arity mismatch");
      }
      FoRelation out;
      // Distinct slots, sorted; repeated slots filter tuples.
      out.vars.assign(f.atom_vars().begin(), f.atom_vars().end());
      std::sort(out.vars.begin(), out.vars.end());
      out.vars.erase(std::unique(out.vars.begin(), out.vars.end()),
                     out.vars.end());
      std::vector<Element> row(out.vars.size());
      for (uint32_t t = 0; t < rel.tuple_count(); ++t) {
        std::span<const Element> tup = rel.tuple(t);
        bool ok = true;
        for (size_t p = 0; p < tup.size() && ok; ++p) {
          for (size_t q = p + 1; q < tup.size() && ok; ++q) {
            if (f.atom_vars()[p] == f.atom_vars()[q] && tup[p] != tup[q]) {
              ok = false;
            }
          }
        }
        if (!ok) continue;
        for (size_t p = 0; p < tup.size(); ++p) {
          size_t pos = static_cast<size_t>(
              std::lower_bound(out.vars.begin(), out.vars.end(),
                               f.atom_vars()[p]) -
              out.vars.begin());
          row[pos] = tup[p];
        }
        out.rows.insert(row);
      }
      Track(stats, out);
      return out;
    }
    case FoFormula::Kind::kAnd: {
      FoRelation acc;  // empty vars, single empty row == "true"
      // NB: insert({}) would select the initializer_list overload and
      // insert nothing; spell out the empty row.
      acc.rows.insert(std::vector<Element>{});
      for (const FoFormula& child : f.children()) {
        CQCS_ASSIGN_OR_RETURN(FoRelation r, EvalImpl(child, b, stats));
        acc = Join(acc, r, stats);
        if (acc.rows.empty()) break;  // short-circuit
      }
      return acc;
    }
    case FoFormula::Kind::kExists: {
      CQCS_ASSIGN_OR_RETURN(FoRelation r, EvalImpl(f.body(), b, stats));
      return ProjectOut(r, f.quantified_var(), stats);
    }
  }
  return Status::Internal("unknown formula kind");
}

}  // namespace

Result<FoRelation> EvaluateFo(const FoFormula& formula, const Structure& b,
                              FoEvalStats* stats) {
  return EvalImpl(formula, b, stats);
}

Result<bool> EvaluateFoSentence(const FoFormula& formula, const Structure& b,
                                FoEvalStats* stats) {
  if (!formula.FreeVars().empty()) {
    return Status::InvalidArgument("formula is not a sentence");
  }
  CQCS_ASSIGN_OR_RETURN(FoRelation r, EvaluateFo(formula, b, stats));
  return !r.rows.empty();
}

}  // namespace cqcs
