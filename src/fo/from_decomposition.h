// Lemma 5.2: a structure A of treewidth k yields a sentence of ∃FO^{k+1}
// equivalent to its canonical Boolean query Q_A, computable in polynomial
// time from a tree decomposition.
//
// The construction walks the rooted decomposition: each bag's elements are
// assigned variable SLOTS from a pool of width+1; a child reuses its
// parent's slots for shared elements and rebinds free slots (under ∃) for
// its new elements — exactly the parse-tree/k-boundaried-structure argument
// in the paper's proof, with slots playing the boundary labels.
//
// Composing with fo/evaluate.h gives an independent third decision
// procedure for hom(A -> B) when A has small treewidth:
//   hom(A -> B)  iff  B ⊨ BuildSentenceFromDecomposition(A, td).

#ifndef CQCS_FO_FROM_DECOMPOSITION_H_
#define CQCS_FO_FROM_DECOMPOSITION_H_

#include "common/status.h"
#include "fo/formula.h"
#include "treewidth/decomposition.h"

namespace cqcs {

/// Builds the ∃FO^{width+1} sentence equivalent to Q_A. The decomposition
/// is validated (InvalidArgument when it is not a decomposition of A).
/// The returned sentence uses at most decomposition.Width() + 1 slots.
Result<FoFormula> BuildSentenceFromDecomposition(
    const Structure& a, const TreeDecomposition& decomposition);

/// Convenience: min-fill heuristic decomposition, then the translation.
Result<FoFormula> BuildSentence(const Structure& a);

}  // namespace cqcs

#endif  // CQCS_FO_FROM_DECOMPOSITION_H_
