#include "common/strings.h"

#include <cctype>
#include <cstdint>

namespace cqcs {

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(head) && s[0] != '_') return false;
  for (size_t i = 1; i < s.size(); ++i) {
    auto c = static_cast<unsigned char>(s[i]);
    if (!std::isalnum(c) && s[i] != '_' && s[i] != '\'') return false;
  }
  return true;
}

}  // namespace cqcs
