// Shared non-cryptographic hashing helpers.

#ifndef CQCS_COMMON_HASH_H_
#define CQCS_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace cqcs {

/// FNV-1a over a sequence of 32-bit values. Used wherever tuples/rows of
/// Elements key a hash table (constraint dedup, projection-row dedup).
inline uint64_t Fnv1a64(const uint32_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cqcs

#endif  // CQCS_COMMON_HASH_H_
