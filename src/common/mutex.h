// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// std::mutex is not a TSA capability, so attributes like CQCS_GUARDED_BY
// cannot reference it. cqcs::Mutex is a zero-overhead std::mutex wrapper
// carrying the capability attribute; MutexLock is the annotated RAII guard
// (replaces std::lock_guard) and CondVar the companion condition variable
// (replaces std::condition_variable for Mutex-guarded state). Modules whose
// lock discipline is machine-checked (serve/, api/problem.cc,
// solver/parallel.cc) use these; see docs/static_analysis.md.

#ifndef CQCS_COMMON_MUTEX_H_
#define CQCS_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace cqcs {

/// A std::mutex annotated as a TSA capability. Lowercase lock()/unlock()
/// keep it a C++ Lockable, so std:: lock adapters still compose where the
/// annotated MutexLock below does not fit.
class CQCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CQCS_ACQUIRE() { mu_.lock(); }
  void unlock() CQCS_RELEASE() { mu_.unlock(); }
  bool try_lock() CQCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII guard over Mutex, visible to the analysis: constructing one
/// acquires the capability for the enclosing scope.
class CQCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CQCS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CQCS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable for Mutex-guarded state. Wait() atomically releases
/// and reacquires the caller's lock, so from the analysis's point of view
/// the capability is held across the call — which is exactly the caller's
/// contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CQCS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) CQCS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cqcs

#endif  // CQCS_COMMON_MUTEX_H_
