// Saturating size_t arithmetic for cost and size estimates.
//
// The polynomial backends reason about table sizes like bags * |B|^(w+1)
// before building anything; those products overflow size_t long before the
// tables would fit in memory, so every estimate saturates at an explicit
// limit instead of wrapping. A saturated estimate compares correctly
// against any budget below the limit, which is all the callers need.

#ifndef CQCS_COMMON_SATURATING_H_
#define CQCS_COMMON_SATURATING_H_

#include <cstddef>

namespace cqcs {

/// a + b, saturated at `limit`.
inline size_t SatAdd(size_t a, size_t b, size_t limit) {
  if (a >= limit) return limit;
  if (b >= limit - a) return limit;
  return a + b;
}

/// a * b, saturated at `limit`. SatMul(x, 0, limit) == 0 for every x.
inline size_t SatMul(size_t a, size_t b, size_t limit) {
  if (a == 0 || b == 0) return 0;
  if (a > limit / b) return limit;
  return a * b;
}

/// base^exp, saturated at `limit` (SatPow(x, 0, limit) == 1 for every x,
/// matching the empty product).
inline size_t SatPow(size_t base, size_t exp, size_t limit) {
  size_t out = 1;
  for (size_t i = 0; i < exp; ++i) {
    out = SatMul(out, base, limit);
    if (out >= limit) return limit;
  }
  return out;
}

}  // namespace cqcs

#endif  // CQCS_COMMON_SATURATING_H_
