// Portable Clang Thread Safety Analysis annotations.
//
// These macros turn the repo's lock-discipline comments ("guarded by
// registry_mu_", "caller holds cache.mu", "snapshot I/O runs with NO lock
// held") into attributes the compiler can enforce. Under Clang with
// -Wthread-safety (the CQCS_ANALYZE=thread-safety CMake mode builds with
// -Werror=thread-safety) a violated contract is a build failure; under GCC
// or unannotated builds every macro expands to nothing, so the annotations
// cost zero and the code stays portable.
//
// The attributes only compose with *annotated* lock types — std::mutex is
// not a TSA capability — so the lockable wrappers live next door in
// common/mutex.h (cqcs::Mutex / MutexLock / CondVar). Use those for any
// mutex whose discipline is worth machine-checking; docs/static_analysis.md
// is the contract catalogue.
//
// Vocabulary (mirrors the Abseil/Chromium discipline):
//
//   CQCS_GUARDED_BY(mu)      on a data member: reads and writes require mu.
//   CQCS_PT_GUARDED_BY(mu)   on a pointer member: the pointee requires mu.
//   CQCS_REQUIRES(mu)        on a function: caller must hold mu (the
//                            "FooLocked()" naming convention, enforced).
//   CQCS_EXCLUDES(mu)        on a function: caller must NOT hold mu — the
//                            attribute form of "no I/O under the registry
//                            lock".
//   CQCS_ACQUIRE(mu) / CQCS_RELEASE(mu)
//                            on functions that take / drop the lock.
//   CQCS_CAPABILITY(name) / CQCS_SCOPED_CAPABILITY
//                            on lock / scoped-lock class definitions.
//   CQCS_RETURN_CAPABILITY(mu)
//                            on accessors returning a reference to a lock.
//   CQCS_NO_THREAD_SAFETY_ANALYSIS
//                            last-resort opt-out for one function; prefer a
//                            narrower annotation and say why in a comment.

#ifndef CQCS_COMMON_THREAD_ANNOTATIONS_H_
#define CQCS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CQCS_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef CQCS_THREAD_ANNOTATION_
#define CQCS_THREAD_ANNOTATION_(x)  // no-op: GCC / non-TSA compilers
#endif

#define CQCS_CAPABILITY(name) CQCS_THREAD_ANNOTATION_(capability(name))
#define CQCS_SCOPED_CAPABILITY CQCS_THREAD_ANNOTATION_(scoped_lockable)

#define CQCS_GUARDED_BY(mu) CQCS_THREAD_ANNOTATION_(guarded_by(mu))
#define CQCS_PT_GUARDED_BY(mu) CQCS_THREAD_ANNOTATION_(pt_guarded_by(mu))

#define CQCS_REQUIRES(...) \
  CQCS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CQCS_EXCLUDES(...) CQCS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define CQCS_ACQUIRE(...) \
  CQCS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CQCS_RELEASE(...) \
  CQCS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CQCS_TRY_ACQUIRE(...) \
  CQCS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define CQCS_ASSERT_HELD(...) \
  CQCS_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))
#define CQCS_RETURN_CAPABILITY(mu) \
  CQCS_THREAD_ANNOTATION_(lock_returned(mu))

#define CQCS_NO_THREAD_SAFETY_ANALYSIS \
  CQCS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CQCS_COMMON_THREAD_ANNOTATIONS_H_
