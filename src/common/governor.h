// Per-request resource governance: wall-clock deadline, memory ceiling,
// and cooperative cancellation, shared by every backend.
//
// A ResourceGovernor is created per engine request and threaded (by
// pointer, nullptr = ungoverned) through the solver, the Yannakakis
// passes, the treewidth DP, min-fill, the Schaefer pipeline, and the
// rel/ kernel. The contract mirrors the solver's node-limit discipline:
//
//  - Enforcement is cooperative. Long loops call Poll() on a stride (or
//    poll the trip flag inside fixpoints) and unwind with the returned
//    kResourceExhausted status; nothing is ever killed mid-write, so a
//    trip never leaves a torn result.
//  - Memory is accounted, not intercepted. rel::Table / rel::HashIndex
//    report capacity deltas via ChargeBytes/ReleaseBytes; crossing the
//    ceiling marks the trip, and the next Poll() observes it. Overshoot
//    is bounded by one allocation step plus one poll stride.
//  - The trip is sticky and first-cause-wins: concurrent workers race to
//    set it once, and every later Poll() returns the same status, so a
//    request that trips deep inside one backend cannot be half-resumed
//    by another.
//
// Fault injection: GovernorFailpoints trips the governor at the Nth
// Poll() or the Kth ChargeBytes() call. The checks live inside methods
// that only governed runs reach — an ungoverned run costs exactly one
// `governor == nullptr` branch per poll site and never touches an atomic.

#ifndef CQCS_COMMON_GOVERNOR_H_
#define CQCS_COMMON_GOVERNOR_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace cqcs {

/// Why a governor tripped. kNone means it has not.
enum class TripCause {
  kNone = 0,
  kDeadline,   ///< Wall clock passed deadline_ms.
  kMemory,     ///< Charged bytes exceeded the budget.
  kCancelled,  ///< Cancel() or the external cancel flag fired.
  kFailpoint,  ///< Fault injection (tests only).
};

/// Short name: "none", "deadline", "memory", "cancelled", "failpoint".
const char* TripCauseName(TripCause cause);

/// Fault-injection configuration. Zero means disabled; N > 0 trips the
/// governor on the Nth Poll() / Nth ChargeBytes() call.
struct GovernorFailpoints {
  uint64_t trip_after_checks = 0;
  uint64_t trip_after_charges = 0;
};

/// A per-request execution budget. Thread-safe: workers of one request
/// share a single governor; all state is atomics with a CAS-once trip.
class ResourceGovernor {
 public:
  /// deadline_ms == 0 means no deadline; memory_budget_bytes == 0 means
  /// no memory ceiling. The deadline clock starts now.
  explicit ResourceGovernor(uint64_t deadline_ms = 0,
                            size_t memory_budget_bytes = 0);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  void set_failpoints(const GovernorFailpoints& fp) { failpoints_ = fp; }

  /// Hooks up an external cooperative cancel token, observed at every
  /// Poll(). The pointee must outlive the governor's last use.
  void set_external_cancel(const std::atomic<bool>* flag) {
    external_cancel_ = flag;
  }

  /// Trips the governor with kCancelled (idempotent).
  void Cancel() { Trip(TripCause::kCancelled); }

  /// The cooperative check. OK while within budget; after the first trip
  /// every call returns the same sticky kResourceExhausted status.
  Status Poll();

  /// Memory accounting; never fails, but crossing the ceiling marks the
  /// trip for the next Poll(). Thread-safe.
  void ChargeBytes(size_t bytes);
  void ReleaseBytes(size_t bytes);

  /// Pre-flight admission: would an additional `estimated_bytes` fit under
  /// the ceiling? Always true without a memory budget. Does not trip.
  bool AdmitBytes(size_t estimated_bytes) const;

  bool tripped() const {
    return trip_flag_.load(std::memory_order_acquire);
  }
  TripCause trip_cause() const {
    return static_cast<TripCause>(trip_cause_.load(std::memory_order_acquire));
  }
  /// OK when not tripped, else the same kResourceExhausted Poll() returns.
  Status TripStatus() const;

  /// For propagator fixpoints: a flag that flips to true on the first trip,
  /// compatible with Propagator::set_cancel_flag.
  const std::atomic<bool>* trip_flag() const { return &trip_flag_; }

  uint64_t deadline_ms() const { return deadline_ms_; }
  size_t memory_budget_bytes() const { return memory_budget_bytes_; }
  size_t bytes_in_use() const {
    return bytes_in_use_.load(std::memory_order_relaxed);
  }
  size_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  uint64_t elapsed_ms() const;

 private:
  /// Records the first cause; later calls keep the original. Returns true
  /// iff this call performed the trip.
  bool Trip(TripCause cause);

  uint64_t deadline_ms_ = 0;
  size_t memory_budget_bytes_ = 0;
  std::chrono::steady_clock::time_point start_;
  GovernorFailpoints failpoints_;
  const std::atomic<bool>* external_cancel_ = nullptr;

  std::atomic<bool> trip_flag_{false};
  std::atomic<int> trip_cause_{static_cast<int>(TripCause::kNone)};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> charges_{0};
  std::atomic<size_t> bytes_in_use_{0};
  std::atomic<size_t> peak_bytes_{0};
};

}  // namespace cqcs

#endif  // CQCS_COMMON_GOVERNOR_H_
