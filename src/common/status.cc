#include "common/status.h"

namespace cqcs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace cqcs
