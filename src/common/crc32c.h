// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected) for the write-ahead
// log's record checksums (serve/durability.h). Software table-driven — the
// WAL writes are fsync-bound, so a hardware CRC would be invisible — and
// seedable so a record's header and payload can be checksummed in one pass.

#ifndef CQCS_COMMON_CRC32C_H_
#define CQCS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cqcs {

/// CRC32C of `data`. Extend a running checksum by passing the previous
/// return value as `seed` (the default 0 starts a fresh checksum).
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace cqcs

#endif  // CQCS_COMMON_CRC32C_H_
