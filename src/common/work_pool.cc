#include "common/work_pool.h"

#include <algorithm>

namespace cqcs {

unsigned ResolveThreadCount(unsigned num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

MorselPool& MorselPool::Shared() {
  static MorselPool pool;
  return pool;
}

MorselPool::~MorselPool() {
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    work_cv_.NotifyAll();
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
}

void MorselPool::EnsureThreads(unsigned wanted) {
  while (threads_.size() < wanted) {
    // Pool thread i is morsel worker i+1; the dispatching caller is always
    // worker 0.
    const unsigned worker = static_cast<unsigned>(threads_.size()) + 1;
    threads_.emplace_back([this, worker] { WorkerLoop(worker); });
  }
}

void MorselPool::WorkerLoop(unsigned worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      work_cv_.Wait(mu_, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      // Threads left over from a wider earlier dispatch sit this one out:
      // callers size per-worker scratch to the worker count they asked
      // for, so only workers 1..participants may touch the job.
      if (worker > job_.participants) continue;
      // Register only if there is still something to claim. A thread the
      // scheduler wakes late — after the caller (and any registered peers)
      // already drained the cursor — skips without registering, so Run()
      // never blocks on its context switch. Once the cursor is exhausted
      // or the job cancelled, no new registration can happen, which is
      // what makes Run()'s working_ == 0 wait sufficient.
      if (job_.cancel.load(std::memory_order_relaxed) ||
          job_.cursor.load(std::memory_order_relaxed) >= job_.total) {
        continue;
      }
      ++working_;
    }
    DrainJob(&job_, worker);
    {
      MutexLock lock(mu_);
      if (--working_ == 0) done_cv_.NotifyAll();
    }
  }
}

void MorselPool::DrainJob(Job* job, unsigned worker) {
  const size_t total = job->total;
  const size_t morsel = job->morsel;
  // A body returning false (governor trip, cap reached) sets the job's
  // cancel flag; in-flight morsels on other workers finish, unclaimed ones
  // are abandoned — the clean-trip contract needs no torn partial ranges
  // because each body owns its [begin, end) exclusively.
  while (!job->cancel.load(std::memory_order_acquire)) {
    const size_t begin = job->cursor.fetch_add(morsel,
                                               std::memory_order_relaxed);
    if (begin >= total) break;
    const size_t end = std::min(total, begin + morsel);
    job->morsels.fetch_add(1, std::memory_order_relaxed);
    if (worker != 0) job->steals.fetch_add(1, std::memory_order_relaxed);
    if (!(*job->body)(worker, begin, end)) {
      job->cancel.store(true, std::memory_order_release);
      break;
    }
  }
}

MorselCounters MorselPool::Run(size_t total, unsigned workers,
                               size_t morsel_rows, const Body& body) {
  if (morsel_rows == 0) morsel_rows = kDefaultMorselRows;
  MorselCounters counters;
  counters.workers = std::max(1u, workers);
  if (total == 0) return counters;

  // Inline fast path: the sequential case (and any range that fits in one
  // morsel) never touches the pool, so `num_threads = 1` has zero
  // synchronization cost and byte-identical behavior to the pre-pool code.
  if (workers <= 1 || total <= morsel_rows) {
    size_t begin = 0;
    while (begin < total) {
      const size_t end = std::min(total, begin + morsel_rows);
      ++counters.morsels;
      if (!body(0, begin, end)) break;
      begin = end;
    }
    return counters;
  }

  // Pool threads beside the caller, never more than there are morsels to
  // claim beyond the caller's first: waking a worker that will find the
  // cursor exhausted costs a context switch (and, on few-core hosts, adds
  // scheduling latency to the caller's done-wait) for zero work.
  const size_t chunks = (total + morsel_rows - 1) / morsel_rows;
  // Pool threads beside the caller are capped three ways: never more than
  // the caller asked for, never more than there are morsels to claim
  // beyond the caller's first (waking a worker that will find the cursor
  // exhausted costs a context switch for zero work), and never more than
  // the spare hardware cores — a compute-bound morsel sweep gains nothing
  // from runnable threads beyond the core count, it just pays their
  // wakeups. The spare-core cap is floored at one pool thread so the
  // cross-thread path is genuinely exercised (and sanitizer-checked) even
  // on a single-core host.
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned spare_cores = hw == 0 ? kMaxThreads : std::max(1u, hw - 1);
  const unsigned participants = static_cast<unsigned>(std::min<size_t>(
      std::min(std::min(workers, kMaxThreads) - 1, spare_cores),
      chunks - 1));
  MutexLock dispatch(dispatch_mu_);
  {
    // Rewriting job_ is safe here: the previous Run returned only after
    // working_ hit zero, and a stale worker waking into this generation
    // re-reads everything under mu_ before touching the job.
    MutexLock lock(mu_);
    EnsureThreads(participants);
    job_.total = total;
    job_.morsel = morsel_rows;
    job_.body = &body;
    job_.participants = participants;
    job_.cursor.store(0, std::memory_order_relaxed);
    job_.cancel.store(false, std::memory_order_relaxed);
    job_.morsels.store(0, std::memory_order_relaxed);
    job_.steals.store(0, std::memory_order_relaxed);
    ++generation_;
    work_cv_.NotifyAll();
  }
  DrainJob(&job_, 0);
  {
    // The caller drained until the cursor ran dry (or the job cancelled),
    // so no worker can register from here on; it only waits for workers
    // that registered in time to do real work. The mutex handoff is what
    // publishes those workers' body writes: each releases mu_ after its
    // decrement, the caller reacquires it to observe zero.
    MutexLock lock(mu_);
    done_cv_.Wait(mu_, [&] { return working_ == 0; });
  }
  counters.morsels = job_.morsels.load(std::memory_order_relaxed);
  counters.steals = job_.steals.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace cqcs
