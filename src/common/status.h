// Lightweight Status / Result types for fallible APIs (parsers, validators).
//
// libcqcs does not throw exceptions across its public API: operations that
// can fail on user input return `Status` or `Result<T>`. Internal invariant
// violations use the CQCS_CHECK macros from common/check.h instead.

#ifndef CQCS_COMMON_STATUS_H_
#define CQCS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace cqcs {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Caller passed something malformed (bad arity, ...).
  kParseError,       ///< Text input could not be parsed.
  kNotFound,         ///< Named entity (relation symbol, ...) does not exist.
  kUnsupported,      ///< Operation valid but outside implemented bounds.
  kInternal,         ///< Library bug; should never be user-visible.
  kResourceExhausted,  ///< A deadline, memory budget, or cancel token fired.
  kUnavailable,  ///< Service degraded (e.g. the WAL cannot accept writes);
                 ///< the operation is refused now but may succeed later.
};

/// Returns a short human-readable name for a status code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path.
///
/// [[nodiscard]]: a dropped Status is a swallowed failure — the exact bug
/// class the durability ack path exists to prevent — so discarding one is a
/// compile error under -Werror. The rare intentional discard goes through
/// CQCS_IGNORE_RESULT below, with a comment saying why it is sound.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "ParseError: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status.
///
/// Usage:
///   Result<ConjunctiveQuery> r = ParseQuery(text);
///   if (!r.ok()) return r.status();
///   UseQuery(*r);
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status. CHECK-fails if `status.ok()`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Undefined if `!ok()`.
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cqcs

/// Explicitly discards a [[nodiscard]] Status / Result. Every use MUST
/// carry a comment explaining why dropping the error is sound (typically:
/// best-effort cleanup where the primary error is already being reported,
/// or a test exercising the failure path itself). An uncommented
/// CQCS_IGNORE_RESULT is a lint finding waiting to happen.
#define CQCS_IGNORE_RESULT(expr) static_cast<void>(expr)

#endif  // CQCS_COMMON_STATUS_H_
