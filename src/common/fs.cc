#include "common/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace cqcs {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::Internal("io: " + op + " " + path + ": " +
                          std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    // A destructor cannot propagate the error; callers that care about the
    // close status (the WAL ack path) call Close() explicitly first.
    CQCS_IGNORE_RESULT(Close());
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::Internal("io: write on closed " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("io: fsync on closed " + path_);
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override {
    return Open(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Result<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("io: no file " + path);
      return Errno("open", path);
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = Errno("read", path);
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", dir);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("open", dir);
    // Some filesystems refuse fsync on directories; that is not a
    // durability hole we can fix from here, so EINVAL passes.
    if (::fsync(fd) != 0 && errno != EINVAL) {
      Status s = Errno("fsync", dir);
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("io: no file " + path);
      return Errno("stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  Result<std::unique_ptr<WritableFile>> Open(const std::string& path,
                                             int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }
};

class SteadyClock : public Clock {
 public:
  uint64_t NowMs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

/// Forwards to the base handle, injecting the owner's write/sync faults.
/// Lives outside the anonymous namespace so FaultyFs's friend declaration
/// reaches it.
class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(FaultyFs* owner, std::unique_ptr<WritableFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    if (FaultyFs::Hits(&owner_->writes_, owner_->failpoints_.fail_write_n)) {
      // A short write is a write the kernel acknowledged for fewer bytes
      // than asked: land the configured prefix, then report failure.
      const size_t keep =
          std::min(owner_->failpoints_.short_write_bytes, data.size());
      if (keep > 0) {
        Status s = base_->Append(data.substr(0, keep));
        if (!s.ok()) return s;
      }
      return Status::Internal("io: injected write failure");
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (FaultyFs::Hits(&owner_->syncs_, owner_->failpoints_.fail_sync_n)) {
      return Status::Internal("io: injected fsync failure");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultyFs* owner_;
  std::unique_ptr<WritableFile> base_;
};

FileSystem* RealFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

Clock* RealClock() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

bool FaultyFs::Hits(uint64_t* counter, uint64_t n) {
  ++*counter;
  return n != 0 && *counter == n;
}

Result<std::unique_ptr<WritableFile>> FaultyFs::OpenAppend(
    const std::string& path) {
  auto base = base_->OpenAppend(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultyWritableFile>(this, *std::move(base)));
}

Result<std::unique_ptr<WritableFile>> FaultyFs::OpenTrunc(
    const std::string& path) {
  auto base = base_->OpenTrunc(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultyWritableFile>(this, *std::move(base)));
}

Status FaultyFs::Rename(const std::string& from, const std::string& to) {
  if (Hits(&renames_, failpoints_.fail_rename_n)) {
    return Status::Internal("io: injected rename failure");
  }
  return base_->Rename(from, to);
}

}  // namespace cqcs
