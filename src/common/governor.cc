#include "common/governor.h"

#include <string>

namespace cqcs {

const char* TripCauseName(TripCause cause) {
  switch (cause) {
    case TripCause::kNone:
      return "none";
    case TripCause::kDeadline:
      return "deadline";
    case TripCause::kMemory:
      return "memory";
    case TripCause::kCancelled:
      return "cancelled";
    case TripCause::kFailpoint:
      return "failpoint";
  }
  return "unknown";
}

ResourceGovernor::ResourceGovernor(uint64_t deadline_ms,
                                   size_t memory_budget_bytes)
    : deadline_ms_(deadline_ms),
      memory_budget_bytes_(memory_budget_bytes),
      start_(std::chrono::steady_clock::now()) {}

bool ResourceGovernor::Trip(TripCause cause) {
  int expected = static_cast<int>(TripCause::kNone);
  if (!trip_cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                           std::memory_order_acq_rel)) {
    return false;  // already tripped; first cause wins
  }
  trip_flag_.store(true, std::memory_order_release);
  return true;
}

uint64_t ResourceGovernor::elapsed_ms() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

Status ResourceGovernor::TripStatus() const {
  TripCause cause = trip_cause();
  if (cause == TripCause::kNone) return Status::OK();
  std::string msg = "resource budget exhausted (";
  msg += TripCauseName(cause);
  msg += "): spent ";
  msg += std::to_string(elapsed_ms());
  msg += "ms";
  if (deadline_ms_ > 0) {
    msg += " of ";
    msg += std::to_string(deadline_ms_);
    msg += "ms";
  }
  msg += ", peak ";
  msg += std::to_string(peak_bytes());
  msg += " charged bytes";
  if (memory_budget_bytes_ > 0) {
    msg += " of ";
    msg += std::to_string(memory_budget_bytes_);
  }
  return Status::ResourceExhausted(std::move(msg));
}

Status ResourceGovernor::Poll() {
  if (trip_flag_.load(std::memory_order_acquire)) return TripStatus();
  uint64_t n = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failpoints_.trip_after_checks > 0 &&
      n >= failpoints_.trip_after_checks) {
    Trip(TripCause::kFailpoint);
    return TripStatus();
  }
  if (external_cancel_ != nullptr &&
      external_cancel_->load(std::memory_order_relaxed)) {
    Trip(TripCause::kCancelled);
    return TripStatus();
  }
  if (memory_budget_bytes_ > 0 &&
      bytes_in_use_.load(std::memory_order_relaxed) > memory_budget_bytes_) {
    Trip(TripCause::kMemory);
    return TripStatus();
  }
  // The deadline needs a clock read, which is far costlier than the
  // relaxed loads above (clock_gettime may not be vDSO-accelerated), so
  // it is checked on a stride: overshoot grows by at most 63 poll
  // intervals, which the per-backend poll strides already dominate.
  if (deadline_ms_ > 0 && (n & 63) == 0 && elapsed_ms() > deadline_ms_) {
    Trip(TripCause::kDeadline);
    return TripStatus();
  }
  return Status::OK();
}

void ResourceGovernor::ChargeBytes(size_t bytes) {
  if (bytes == 0) return;
  size_t now = bytes_in_use_.fetch_add(bytes, std::memory_order_relaxed) +
               bytes;
  size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  uint64_t k = charges_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failpoints_.trip_after_charges > 0 &&
      k >= failpoints_.trip_after_charges) {
    Trip(TripCause::kFailpoint);
    return;
  }
  if (memory_budget_bytes_ > 0 && now > memory_budget_bytes_) {
    Trip(TripCause::kMemory);
  }
}

void ResourceGovernor::ReleaseBytes(size_t bytes) {
  if (bytes == 0) return;
  bytes_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool ResourceGovernor::AdmitBytes(size_t estimated_bytes) const {
  if (memory_budget_bytes_ == 0) return true;
  size_t used = bytes_in_use_.load(std::memory_order_relaxed);
  if (used >= memory_budget_bytes_) return false;
  return estimated_bytes <= memory_budget_bytes_ - used;
}

}  // namespace cqcs
