// Internal invariant checks. These abort with a message on violation and are
// reserved for conditions that indicate a bug in libcqcs or a violated API
// precondition documented as such; user-input validation uses Status instead.

#ifndef CQCS_COMMON_CHECK_H_
#define CQCS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cqcs::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CQCS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace cqcs::internal

/// Aborts if `cond` is false. Always on (also in release builds): the cost is
/// negligible outside hot loops, and silent corruption is worse.
#define CQCS_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::cqcs::internal::CheckFail(__FILE__, __LINE__, #cond, "");     \
  } while (0)

/// CQCS_CHECK with a streamed message: CQCS_CHECK_MSG(x < n, "x=" << x).
#define CQCS_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream cqcs_check_oss_;                                  \
      cqcs_check_oss_ << stream_expr;                                      \
      ::cqcs::internal::CheckFail(__FILE__, __LINE__, #cond,               \
                                  cqcs_check_oss_.str());                  \
    }                                                                      \
  } while (0)

/// Propagates a non-OK Status from an expression returning Status.
#define CQCS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::cqcs::Status cqcs_status_ = (expr);           \
    if (!cqcs_status_.ok()) return cqcs_status_;    \
  } while (0)

#define CQCS_MACRO_CONCAT_INNER(a, b) a##b
#define CQCS_MACRO_CONCAT(a, b) CQCS_MACRO_CONCAT_INNER(a, b)

/// Evaluates an expression returning Result<T>; on error returns the status,
/// otherwise assigns the value to `lhs`.
#define CQCS_ASSIGN_OR_RETURN(lhs, expr) \
  CQCS_ASSIGN_OR_RETURN_IMPL(CQCS_MACRO_CONCAT(cqcs_result_, __LINE__), lhs, \
                             expr)

#define CQCS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(*tmp)

#endif  // CQCS_COMMON_CHECK_H_
