// Small string utilities used by the text parsers and printers.

#ifndef CQCS_COMMON_STRINGS_H_
#define CQCS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cqcs {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits on a single character delimiter; empty pieces are kept.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Splits into maximal runs of non-whitespace characters.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; returns false on any deviation
/// (empty input, overflow, trailing garbage).
bool ParseUint64(std::string_view s, uint64_t* out);

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_']*.
bool IsIdentifier(std::string_view s);

}  // namespace cqcs

#endif  // CQCS_COMMON_STRINGS_H_
