// Deterministic pseudo-random number generation.
//
// All workload generators in libcqcs take explicit 64-bit seeds so that tests
// and benchmarks are reproducible across runs and platforms. We use
// SplitMix64 for seeding and xoshiro256** for the stream; both are tiny,
// fast, and have well-understood statistical quality.

#ifndef CQCS_COMMON_RNG_H_
#define CQCS_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace cqcs {

/// SplitMix64 step: maps a state to the next state's output. Used both as a
/// standalone mixer and to seed Rng.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit seed.
  explicit Rng(uint64_t seed = 0x9ULL) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Uniform 64-bit word.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Below(uint64_t bound) {
    CQCS_CHECK(bound > 0);
    // Debiased multiply-shift (Lemire). The retry loop is entered rarely.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    CQCS_CHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    // 53-bit uniform double in [0,1).
    double u = static_cast<double>(Next() >> 11) * 0x1.0p-53;
    return u < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void Shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace cqcs

#endif  // CQCS_COMMON_RNG_H_
