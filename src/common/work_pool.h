// The shared worker-pool machinery under every parallel path in the repo.
//
// Three pieces, one module, so the solver's work-stealing subtree search,
// the relational kernel's morsel-parallel operators, and the serving layer
// all draw threads through the same code:
//
//   * ResolveThreadCount — the one mapping from a `num_threads` option to
//     an actual worker count (0 = one per hardware thread, never < 1).
//   * WorkPool<Task>    — the PR 3 mutex+condvar task pool generalized
//     over its task type: Acquire/Release with the idle/termination
//     protocol, Donate for dynamic splitting, a cooperative cancel flag,
//     and split/steal counters. The solver instantiates it with its
//     decision-prefix Subproblem; the type carries the PR 9 thread-safety
//     annotations unchanged.
//   * MorselPool        — a lazily started, process-wide pool of parked
//     worker threads running *morsels*: contiguous index ranges claimed
//     dynamically from an atomic cursor. The polynomial backends
//     (cq/acyclic.cc, rel/ops.cc, treewidth/hom_dp.cc) dispatch their row
//     sweeps and independent bags here, and because the pool is shared, a
//     single serving-layer request can soak every idle worker.
//
// Morsel execution contract: the calling thread is always worker 0 and
// participates; results must not depend on which worker runs which morsel
// (writers use per-morsel shards or disjoint ranges and merge in morsel
// order, so every thread count produces byte-identical output). Bodies
// poll their ResourceGovernor per morsel and return false to cancel the
// remaining morsels — the clean-trip contract of common/governor.h.

#ifndef CQCS_COMMON_WORK_POOL_H_
#define CQCS_COMMON_WORK_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cqcs {

/// `num_threads` option -> actual worker count: 0 means one per hardware
/// thread (never less than 1).
unsigned ResolveThreadCount(unsigned num_threads);

/// The shared task pool plus the idle/termination protocol (extracted from
/// src/solver/parallel.cc, PR 3). Locking discipline: the mutex guards only
/// pool pushes/pops and the busy/done bookkeeping — events that happen once
/// per task, not per node. The per-node hot path (cancellation, split
/// polling, node budget) reads the atomics mirrored next to it without ever
/// taking the lock.
template <typename Task>
class WorkPool {
 public:
  explicit WorkPool(Task root) {
    pool_.push_back(std::move(root));
    pool_size_.store(1, std::memory_order_relaxed);
  }

  // Each hot atomic on its own cache line: cancel/want_work/pool_size are
  // read by every worker at every node, and global_nodes (node_limit runs)
  // is written by every worker at every node — sharing a line would turn
  // the reads into cross-core misses on each increment.
  alignas(64) std::atomic<bool> cancel{false};
  alignas(64) std::atomic<uint32_t> want_work{0};
  alignas(64) std::atomic<size_t> pool_size_{0};
  alignas(64) std::atomic<uint64_t> global_nodes{0};

  /// Blocks until a task is available (returns true, with `*task` filled
  /// and the caller marked busy) or the run is over — cancelled, or pool
  /// empty with nobody busy (returns false).
  bool Acquire(Task* task) {
    MutexLock lock(mu_);
    for (;;) {
      if (cancel.load(std::memory_order_relaxed) || done_) return false;
      if (!pool_.empty()) {
        *task = std::move(pool_.front());
        pool_.pop_front();
        pool_size_.store(pool_.size(), std::memory_order_relaxed);
        ++pops_;
        ++busy_;
        return true;
      }
      if (busy_ == 0) {
        done_ = true;
        cv_.NotifyAll();
        return false;
      }
      want_work.fetch_add(1, std::memory_order_relaxed);
      cv_.Wait(mu_, [&] {
        return cancel.load(std::memory_order_relaxed) || done_ ||
               !pool_.empty();
      });
      want_work.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Marks the caller idle again; declares the run done if it drained the
  /// last work.
  void Release() {
    MutexLock lock(mu_);
    --busy_;
    if (pool_.empty() && busy_ == 0) {
      done_ = true;
      cv_.NotifyAll();
    }
  }

  /// A busy worker donating freshly split tasks.
  void Donate(std::vector<Task> tasks) {
    if (tasks.empty()) return;
    MutexLock lock(mu_);
    ++splits_;
    for (Task& task : tasks) pool_.push_back(std::move(task));
    pool_size_.store(pool_.size(), std::memory_order_relaxed);
    cv_.NotifyAll();
  }

  /// Wakes every waiter after `cancel` was set (the flag is in the wait
  /// predicate, so lock-then-notify cannot miss anyone).
  void NotifyCancelled() {
    MutexLock lock(mu_);
    cv_.NotifyAll();
  }

  uint64_t splits() const {
    MutexLock lock(mu_);
    return splits_;
  }
  /// Every pop except the initial root came from another worker's donation.
  uint64_t steals() const {
    MutexLock lock(mu_);
    return pops_ > 0 ? pops_ - 1 : 0;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Task> pool_ CQCS_GUARDED_BY(mu_);
  size_t busy_ CQCS_GUARDED_BY(mu_) = 0;
  bool done_ CQCS_GUARDED_BY(mu_) = false;
  uint64_t pops_ CQCS_GUARDED_BY(mu_) = 0;
  uint64_t splits_ CQCS_GUARDED_BY(mu_) = 0;
};

/// What one MorselPool::Run dispatch did, merged by callers into their
/// stats structs (YannakakisStats, TreewidthSolveStats). Deterministic
/// fields only where the schedule is: `workers` and `morsels` are
/// schedule-independent; `steals` (morsels a pool thread ran instead of
/// the caller) depends on timing and is excluded from thread-count
/// invariance checks.
struct MorselCounters {
  unsigned workers = 0;   ///< worker slots the dispatch ran with
  uint64_t morsels = 0;   ///< contiguous ranges claimed and executed
  uint64_t steals = 0;    ///< morsels executed by pool threads (worker > 0)

  void MergeFrom(const MorselCounters& other) {
    if (other.workers > workers) workers = other.workers;
    morsels += other.morsels;
    steals += other.steals;
  }
};

/// A persistent pool of parked morsel workers. One instance is shared
/// process-wide (Shared()); the backends never construct their own, so one
/// serving request's parallel pass can reuse the threads another request
/// just released. Dispatches are serialized: one Run() executes at a time,
/// later callers queue on the dispatch mutex (bodies never nest Run, so
/// this cannot deadlock).
class MorselPool {
 public:
  /// Rows per morsel when the caller does not override: small enough to
  /// load-balance skewed probe costs, large enough that the claim (one
  /// fetch_add) and the per-morsel governor poll are noise.
  static constexpr size_t kDefaultMorselRows = 4096;
  /// Hard cap on pool threads; requests beyond it still run, the extra
  /// worker slots just share the capped threads.
  static constexpr unsigned kMaxThreads = 16;

  /// The process-wide pool. Threads start lazily on first parallel Run and
  /// park between dispatches.
  static MorselPool& Shared();

  MorselPool() = default;
  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;
  ~MorselPool();

  /// `body(worker, begin, end)` — must be safe to run concurrently on
  /// disjoint [begin, end) ranges; returns false to cancel the remaining
  /// morsels (already claimed ones still finish).
  using Body = std::function<bool(unsigned worker, size_t begin, size_t end)>;

  /// Runs `body` over [0, total) in contiguous morsels of ~`morsel_rows`
  /// rows, claimed dynamically from a shared cursor. The calling thread is
  /// worker 0 and always participates; up to workers-1 pool threads (grown
  /// on demand, capped at kMaxThreads) join it. Blocks until every claimed
  /// morsel finished. With workers <= 1, total == 0, or a range smaller
  /// than one morsel, runs inline on the caller with no pool interaction —
  /// the sequential path stays pool-free.
  MorselCounters Run(size_t total, unsigned workers, size_t morsel_rows,
                     const Body& body);

 private:
  /// The job the pool threads are (or were last) running. Reads of the hot
  /// fields (cursor, cancel) are lock-free; the descriptor itself only
  /// changes under mu_ between generations.
  struct Job {
    size_t total = 0;
    size_t morsel = 1;
    const Body* body = nullptr;
    unsigned participants = 0;  ///< pool workers allowed to touch this job
    std::atomic<size_t> cursor{0};
    std::atomic<bool> cancel{false};
    std::atomic<uint64_t> morsels{0};
    std::atomic<uint64_t> steals{0};
  };

  void EnsureThreads(unsigned wanted) CQCS_REQUIRES(mu_);
  void WorkerLoop(unsigned worker);
  /// Claims and runs morsels of the current job until the cursor runs dry
  /// or the job is cancelled.
  static void DrainJob(Job* job, unsigned worker);

  Mutex mu_;
  CondVar work_cv_;  // pool threads park here between generations
  CondVar done_cv_;  // Run() waits here for registered workers to finish
  uint64_t generation_ CQCS_GUARDED_BY(mu_) = 0;
  /// Workers currently *registered* on the job: a pool thread registers
  /// (under mu_) only when it wakes into the current generation and still
  /// sees claimable work, and deregisters after its drain. Run() waits only
  /// for registered workers — a thread that the scheduler wakes after the
  /// caller already drained the cursor sees nothing claimable and skips
  /// without registering, so the caller never serializes behind context
  /// switches of workers that did no work (the few-core dispatch-latency
  /// killer).
  unsigned working_ CQCS_GUARDED_BY(mu_) = 0;
  bool shutdown_ CQCS_GUARDED_BY(mu_) = false;
  Job job_;  // written under mu_ between generations, read lock-free within
  std::vector<std::thread> threads_ CQCS_GUARDED_BY(mu_);
  Mutex dispatch_mu_;  // serializes Run() callers (acquired before mu_)
};

}  // namespace cqcs

#endif  // CQCS_COMMON_WORK_POOL_H_
