// A fixed-size dynamic bitset used for CSP domains and DP tables.
// std::vector<bool> hides the word layout; this exposes it so that domain
// intersection and popcount run a word at a time.

#ifndef CQCS_COMMON_BITSET_H_
#define CQCS_COMMON_BITSET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace cqcs {

/// Word-level primitives over raw `uint64_t` arrays. The CSP propagator
/// stores all variable domains in one flat word array (cache locality, cheap
/// trail save/restore); these helpers keep that code word-at-a-time without
/// duplicating bit-twiddling at every call site. DynamicBitset exposes its
/// words so the two representations interconvert losslessly.
namespace bitwords {

/// Number of 64-bit words needed for `bits` bits.
inline size_t WordCount(size_t bits) { return (bits + 63) / 64; }

inline bool TestBit(const uint64_t* words, size_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

inline void SetBit(uint64_t* words, size_t i) {
  words[i >> 6] |= (1ULL << (i & 63));
}

inline void ResetBit(uint64_t* words, size_t i) {
  words[i >> 6] &= ~(1ULL << (i & 63));
}

inline size_t Count(const uint64_t* words, size_t nwords) {
  size_t c = 0;
  for (size_t wi = 0; wi < nwords; ++wi) {
    c += static_cast<size_t>(std::popcount(words[wi]));
  }
  return c;
}

inline bool Any(const uint64_t* words, size_t nwords) {
  for (size_t wi = 0; wi < nwords; ++wi) {
    if (words[wi] != 0) return true;
  }
  return false;
}

/// Index of the lowest set bit, or `DynamicBitset::npos` (== SIZE_MAX).
inline size_t FindFirst(const uint64_t* words, size_t nwords) {
  for (size_t wi = 0; wi < nwords; ++wi) {
    if (words[wi] != 0) {
      return (wi << 6) + static_cast<size_t>(std::countr_zero(words[wi]));
    }
  }
  return static_cast<size_t>(-1);
}

/// Calls fn(index) for every set bit in increasing order.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t nwords, Fn fn) {
  for (size_t wi = 0; wi < nwords; ++wi) {
    uint64_t w = words[wi];
    while (w != 0) {
      size_t bit = static_cast<size_t>(std::countr_zero(w));
      fn((wi << 6) + bit);
      w &= w - 1;
    }
  }
}

/// a &= b, word at a time. Returns true iff any word of `a` changed.
inline bool AndInPlace(uint64_t* a, const uint64_t* b, size_t nwords) {
  bool changed = false;
  for (size_t wi = 0; wi < nwords; ++wi) {
    uint64_t next = a[wi] & b[wi];
    changed |= next != a[wi];
    a[wi] = next;
  }
  return changed;
}

}  // namespace bitwords

/// A bitset whose size is fixed at construction.
class DynamicBitset {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  explicit DynamicBitset(size_t size = 0, bool fill = false)
      : size_(size), words_((size + 63) / 64, fill ? ~0ULL : 0ULL) {
    TrimTail();
  }

  size_t size() const { return size_; }

  bool test(size_t i) const {
    CQCS_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(size_t i) {
    CQCS_CHECK(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(size_t i) {
    CQCS_CHECK(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void SetAll() {
    for (auto& w : words_) w = ~0ULL;
    TrimTail();
  }

  void ResetAll() {
    for (auto& w : words_) w = 0ULL;
  }

  size_t count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  bool any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool none() const { return !any(); }

  /// Index of the lowest set bit, or npos.
  size_t FindFirst() const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return (wi << 6) +
               static_cast<size_t>(std::countr_zero(words_[wi]));
      }
    }
    return npos;
  }

  /// Index of the lowest set bit strictly above `i`, or npos.
  size_t FindNext(size_t i) const {
    ++i;
    if (i >= size_) return npos;
    size_t wi = i >> 6;
    uint64_t w = words_[wi] & (~0ULL << (i & 63));
    while (true) {
      if (w != 0) {
        return (wi << 6) + static_cast<size_t>(std::countr_zero(w));
      }
      if (++wi == words_.size()) return npos;
      w = words_[wi];
    }
  }

  /// Calls fn(index) for every set bit in increasing order.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        size_t bit = static_cast<size_t>(std::countr_zero(w));
        fn((wi << 6) + bit);
        w &= w - 1;
      }
    }
  }

  DynamicBitset& operator&=(const DynamicBitset& o) {
    CQCS_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  DynamicBitset& operator|=(const DynamicBitset& o) {
    CQCS_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  bool operator==(const DynamicBitset& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }

  /// Word-level access, for interconversion with flat word-array storage
  /// (see bitwords above). Words are little-endian in bit index: bit i lives
  /// at word i/64, position i%64; the tail word's unused high bits are zero.
  size_t word_count() const { return words_.size(); }
  uint64_t word(size_t wi) const { return words_[wi]; }
  const uint64_t* words() const { return words_.data(); }

  /// Overwrites word `wi`. The caller must keep the tail word's unused bits
  /// zero (copying words of an equal-sized bitset is always safe).
  void set_word(size_t wi, uint64_t w) { words_[wi] = w; }

  /// True if this is a subset of `o`.
  bool IsSubsetOf(const DynamicBitset& o) const {
    CQCS_CHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    }
    return true;
  }

 private:
  void TrimTail() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (~0ULL >> (64 - (size_ % 64)));
    }
  }

  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace cqcs

#endif  // CQCS_COMMON_BITSET_H_
