#include "common/crc32c.h"

#include <array>

namespace cqcs {

namespace {

// Reflected Castagnoli polynomial, the one hardware CRC32C instructions
// implement — the stored checksums stay comparable if an accelerated
// implementation ever replaces this table.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace cqcs
