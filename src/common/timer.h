// Wall-clock timing helper for the benchmark harnesses.

#ifndef CQCS_COMMON_TIMER_H_
#define CQCS_COMMON_TIMER_H_

#include <chrono>

namespace cqcs {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cqcs

#endif  // CQCS_COMMON_TIMER_H_
