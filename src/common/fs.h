// Injectable filesystem and clock seams for the durable serving state
// (serve/durability.h), in the same failpoint philosophy as
// common/governor.h: production code talks to an abstract FileSystem /
// Clock, tests wrap the real one in a FaultyFs that fails or short-writes
// the Nth write / fsync / rename deterministically. I/O failures are the
// one fault class kill -9 chaos testing cannot produce on demand — the
// seam makes "the disk said no, exactly here" a unit-test input.
//
// The surface is the minimal set the write-ahead log and snapshots need:
// append-handle writes with explicit Sync(), whole-file reads, atomic
// Rename (the snapshot commit point), Truncate (torn-tail repair), and
// directory listing/fsync (so a rename is durable, not just atomic).
//
// Everything returns Status/Result — a durability layer that aborts on I/O
// errors would defeat its purpose.

#ifndef CQCS_COMMON_FS_H_
#define CQCS_COMMON_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cqcs {

/// An open file being appended to. Append() adds bytes at the end; Sync()
/// is fsync — bytes are only durable across kill -9 after it returns OK.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  /// Close is idempotent; the destructor closes without reporting errors.
  virtual Status Close() = 0;
};

/// The filesystem operations durability needs. Paths are plain strings;
/// implementations do not interpret them beyond passing them to the OS.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it if absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;
  /// Opens `path` truncated to empty, creating it if absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) = 0;

  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  /// OK if the directory exists afterwards (EEXIST is success).
  virtual Status CreateDir(const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Atomic replace (POSIX rename). The snapshot commit point.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  /// Cuts `path` down to `size` bytes. Torn-tail repair.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;
  /// fsyncs the directory itself so completed renames/creates survive a
  /// crash of the metadata journal.
  virtual Status SyncDir(const std::string& dir) = 0;
  virtual bool Exists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
};

/// The process-wide POSIX filesystem (never deleted).
FileSystem* RealFileSystem();

/// Monotonic time source for the interval fsync policy.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowMs() = 0;
};

/// The process-wide steady-clock implementation (never deleted).
Clock* RealClock();

/// A Clock tests advance by hand.
class ManualClock : public Clock {
 public:
  uint64_t NowMs() override { return now_ms_; }
  void Advance(uint64_t ms) { now_ms_ += ms; }

 private:
  uint64_t now_ms_ = 0;
};

/// Fault injection for FileSystem. Counters are 1-based and shared across
/// all files opened through this wrapper: with fail_write_n = 3, the third
/// Append() observed anywhere fails (after short-writing
/// short_write_bytes of its payload to the underlying file, so tests can
/// manufacture torn records exactly); later writes succeed again. Zero
/// disables a failpoint. The same scheme covers Sync and Rename.
struct FsFailpoints {
  uint64_t fail_write_n = 0;
  size_t short_write_bytes = 0;  ///< bytes the failing write still lands
  uint64_t fail_sync_n = 0;
  uint64_t fail_rename_n = 0;
};

/// A FileSystem decorator that injects the configured faults and forwards
/// everything else to the base filesystem.
class FaultyFs : public FileSystem {
 public:
  explicit FaultyFs(FileSystem* base, FsFailpoints failpoints = {})
      : base_(base), failpoints_(failpoints) {}

  void set_failpoints(const FsFailpoints& fp) { failpoints_ = fp; }
  uint64_t writes() const { return writes_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t renames() const { return renames_; }

  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override {
    return base_->ReadFile(path);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Status SyncDir(const std::string& dir) override {
    return base_->SyncDir(dir);
  }
  bool Exists(const std::string& path) override { return base_->Exists(path); }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }

 private:
  friend class FaultyWritableFile;
  /// True when this call is the Nth — the caller then injects its fault.
  static bool Hits(uint64_t* counter, uint64_t n);

  FileSystem* base_;
  FsFailpoints failpoints_;
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t renames_ = 0;
};

}  // namespace cqcs

#endif  // CQCS_COMMON_FS_H_
