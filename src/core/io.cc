#include "core/io.h"

#include <sstream>

#include "common/strings.h"

namespace cqcs {

namespace {

struct ParsedLine {
  std::string name;
  uint32_t arity = 0;
  std::vector<std::vector<Element>> tuples;
};

Status ParseRelationLine(std::string_view line, size_t line_no,
                         ParsedLine* out) {
  auto fail = [line_no](const std::string& what) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + what);
  };
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return fail("expected 'name/arity: tuples'");
  }
  std::string_view head = StripAsciiWhitespace(line.substr(0, colon));
  size_t slash = head.find('/');
  if (slash == std::string_view::npos) {
    return fail("relation header must be 'name/arity'");
  }
  std::string_view name = StripAsciiWhitespace(head.substr(0, slash));
  if (!IsIdentifier(name)) {
    return fail("bad relation name '" + std::string(name) + "'");
  }
  uint64_t arity = 0;
  if (!ParseUint64(StripAsciiWhitespace(head.substr(slash + 1)), &arity) ||
      arity == 0 || arity > UINT32_MAX) {
    return fail("bad arity in '" + std::string(head) + "'");
  }
  out->name = std::string(name);
  out->arity = static_cast<uint32_t>(arity);

  std::string_view body = StripAsciiWhitespace(line.substr(colon + 1));
  if (body.empty()) return Status::OK();  // declared empty relation
  for (std::string_view piece : SplitString(body, ',')) {
    piece = StripAsciiWhitespace(piece);
    if (piece.empty()) return fail("empty tuple");
    std::vector<Element> tuple;
    for (std::string_view token : SplitWhitespace(piece)) {
      uint64_t e = 0;
      if (!ParseUint64(token, &e) || e > UINT32_MAX) {
        return fail("bad element '" + std::string(token) + "'");
      }
      tuple.push_back(static_cast<Element>(e));
    }
    if (tuple.size() != out->arity) {
      return fail("tuple of length " + std::to_string(tuple.size()) +
                  " in relation of arity " + std::to_string(out->arity));
    }
    out->tuples.push_back(std::move(tuple));
  }
  return Status::OK();
}

Result<Structure> ParseImpl(std::string_view text, VocabularyPtr fixed_vocab) {
  std::vector<ParsedLine> lines;
  bool saw_universe = false;
  uint64_t universe = 0;
  size_t line_no = 0;
  for (std::string_view raw : SplitString(text, '\n')) {
    ++line_no;
    size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    std::string_view line = StripAsciiWhitespace(raw);
    if (line.empty()) continue;
    if (!saw_universe) {
      auto tokens = SplitWhitespace(line);
      if (tokens.size() != 2 || tokens[0] != "universe" ||
          !ParseUint64(tokens[1], &universe)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'universe <n>' first");
      }
      if (universe > UINT32_MAX) {
        return Status::ParseError(
            "line " + std::to_string(line_no) + ": universe size " +
            std::to_string(universe) + " exceeds the element limit " +
            std::to_string(UINT32_MAX));
      }
      saw_universe = true;
      continue;
    }
    ParsedLine parsed;
    Status s = ParseRelationLine(line, line_no, &parsed);
    if (!s.ok()) return s;
    lines.push_back(std::move(parsed));
  }
  if (!saw_universe) {
    return Status::ParseError("missing 'universe <n>' declaration");
  }

  VocabularyPtr vocab;
  if (fixed_vocab != nullptr) {
    vocab = std::move(fixed_vocab);
  } else {
    auto inferred = std::make_shared<Vocabulary>();
    for (const ParsedLine& line : lines) {
      if (auto existing = inferred->FindRelation(line.name)) {
        if (inferred->arity(*existing) != line.arity) {
          return Status::ParseError("relation '" + line.name +
                                    "' declared with two different arities");
        }
      } else {
        inferred->AddRelation(line.name, line.arity);
      }
    }
    vocab = inferred;
  }

  Structure out(vocab, universe);
  for (const ParsedLine& line : lines) {
    auto id = vocab->FindRelation(line.name);
    if (!id.has_value()) {
      return Status::ParseError("unknown relation '" + line.name + "'");
    }
    if (vocab->arity(*id) != line.arity) {
      return Status::ParseError("relation '" + line.name + "' has arity " +
                                std::to_string(vocab->arity(*id)) +
                                " in the vocabulary");
    }
    for (const auto& tuple : line.tuples) {
      Status s = out.TryAddTuple(*id, tuple);
      if (!s.ok()) return s;
    }
  }
  return out;
}

}  // namespace

Result<Structure> ParseStructure(std::string_view text) {
  return ParseImpl(text, nullptr);
}

Result<Structure> ParseStructure(std::string_view text, VocabularyPtr vocab) {
  return ParseImpl(text, std::move(vocab));
}

std::string PrintStructure(const Structure& s) {
  std::ostringstream out;
  out << "universe " << s.universe_size() << "\n";
  const Vocabulary& vocab = *s.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = s.relation(id);
    out << vocab.name(id) << "/" << r.arity() << ":";
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      out << (t == 0 ? " " : ", ");
      std::span<const Element> tup = r.tuple(t);
      for (uint32_t p = 0; p < r.arity(); ++p) {
        if (p > 0) out << " ";
        out << tup[p];
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace cqcs
