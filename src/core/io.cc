#include "core/io.h"

#include <sstream>

#include "common/strings.h"

namespace cqcs {

namespace {

struct ParsedLine {
  std::string name;
  uint32_t arity = 0;
  std::vector<std::vector<Element>> tuples;
};

Status ParseRelationLine(std::string_view line, size_t line_no,
                         ParsedLine* out) {
  auto fail = [line_no](const std::string& what) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + what);
  };
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return fail("expected 'name/arity: tuples'");
  }
  std::string_view head = StripAsciiWhitespace(line.substr(0, colon));
  size_t slash = head.find('/');
  if (slash == std::string_view::npos) {
    return fail("relation header must be 'name/arity'");
  }
  std::string_view name = StripAsciiWhitespace(head.substr(0, slash));
  if (!IsIdentifier(name)) {
    return fail("bad relation name '" + std::string(name) + "'");
  }
  uint64_t arity = 0;
  if (!ParseUint64(StripAsciiWhitespace(head.substr(slash + 1)), &arity) ||
      arity == 0 || arity > UINT32_MAX) {
    return fail("bad arity in '" + std::string(head) + "'");
  }
  out->name = std::string(name);
  out->arity = static_cast<uint32_t>(arity);

  std::string_view body = StripAsciiWhitespace(line.substr(colon + 1));
  if (body.empty()) return Status::OK();  // declared empty relation
  for (std::string_view piece : SplitString(body, ',')) {
    piece = StripAsciiWhitespace(piece);
    if (piece.empty()) return fail("empty tuple");
    std::vector<Element> tuple;
    for (std::string_view token : SplitWhitespace(piece)) {
      uint64_t e = 0;
      if (!ParseUint64(token, &e) || e > UINT32_MAX) {
        return fail("bad element '" + std::string(token) + "'");
      }
      tuple.push_back(static_cast<Element>(e));
    }
    if (tuple.size() != out->arity) {
      return fail("tuple of length " + std::to_string(tuple.size()) +
                  " in relation of arity " + std::to_string(out->arity));
    }
    out->tuples.push_back(std::move(tuple));
  }
  return Status::OK();
}

Result<Structure> ParseImpl(std::string_view text, VocabularyPtr fixed_vocab) {
  std::vector<ParsedLine> lines;
  bool saw_universe = false;
  uint64_t universe = 0;
  size_t line_no = 0;
  for (std::string_view raw : SplitString(text, '\n')) {
    ++line_no;
    size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    std::string_view line = StripAsciiWhitespace(raw);
    if (line.empty()) continue;
    if (!saw_universe) {
      auto tokens = SplitWhitespace(line);
      if (tokens.size() != 2 || tokens[0] != "universe" ||
          !ParseUint64(tokens[1], &universe)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": expected 'universe <n>' first");
      }
      if (universe > UINT32_MAX) {
        return Status::ParseError(
            "line " + std::to_string(line_no) + ": universe size " +
            std::to_string(universe) + " exceeds the element limit " +
            std::to_string(UINT32_MAX));
      }
      saw_universe = true;
      continue;
    }
    ParsedLine parsed;
    Status s = ParseRelationLine(line, line_no, &parsed);
    if (!s.ok()) return s;
    lines.push_back(std::move(parsed));
  }
  if (!saw_universe) {
    return Status::ParseError("missing 'universe <n>' declaration");
  }

  VocabularyPtr vocab;
  if (fixed_vocab != nullptr) {
    vocab = std::move(fixed_vocab);
  } else {
    auto inferred = std::make_shared<Vocabulary>();
    for (const ParsedLine& line : lines) {
      if (auto existing = inferred->FindRelation(line.name)) {
        if (inferred->arity(*existing) != line.arity) {
          return Status::ParseError("relation '" + line.name +
                                    "' declared with two different arities");
        }
      } else {
        // TryAddRelation, not AddRelation: the abort-on-error variant would
        // make any duplicate/zero-arity slip in the guards above fatal on
        // user input (the PR 6 Result<> sweep, continued here because
        // catalog bytes arrive from disk after a crash).
        auto added = inferred->TryAddRelation(line.name, line.arity);
        if (!added.ok()) return added.status();
      }
    }
    vocab = inferred;
  }

  Structure out(vocab, universe);
  for (const ParsedLine& line : lines) {
    auto id = vocab->FindRelation(line.name);
    if (!id.has_value()) {
      return Status::ParseError("unknown relation '" + line.name + "'");
    }
    if (vocab->arity(*id) != line.arity) {
      return Status::ParseError("relation '" + line.name + "' has arity " +
                                std::to_string(vocab->arity(*id)) +
                                " in the vocabulary");
    }
    for (const auto& tuple : line.tuples) {
      Status s = out.TryAddTuple(*id, tuple);
      if (!s.ok()) return s;
    }
  }
  return out;
}

}  // namespace

Result<Structure> ParseStructure(std::string_view text) {
  return ParseImpl(text, nullptr);
}

Result<Structure> ParseStructure(std::string_view text, VocabularyPtr vocab) {
  return ParseImpl(text, std::move(vocab));
}

// Catalog names travel on single header lines and become file-key
// segments downstream; whitespace and control bytes would corrupt both.
bool IsCatalogName(std::string_view name) {
  if (name.empty()) return false;
  for (unsigned char c : name) {
    if (c <= ' ' || c == 0x7F) return false;
  }
  return true;
}

std::string PrintCatalog(const std::vector<CatalogEntry>& entries) {
  std::ostringstream out;
  out << "cqcs-catalog 1\n";
  for (const CatalogEntry& entry : entries) {
    out << "db " << entry.name << " " << entry.version << "\n"
        << PrintStructure(entry.db) << "end\n";
  }
  return out.str();
}

Result<std::vector<CatalogEntry>> ParseCatalog(std::string_view text) {
  std::vector<CatalogEntry> entries;
  std::vector<std::string_view> lines = SplitString(text, '\n');
  size_t i = 0;
  auto fail = [](size_t line_no, const std::string& what) {
    return Status::ParseError("catalog line " + std::to_string(line_no + 1) +
                              ": " + what);
  };
  if (lines.empty() ||
      StripAsciiWhitespace(lines[0]) != "cqcs-catalog 1") {
    return fail(0, "expected 'cqcs-catalog 1' header");
  }
  ++i;
  while (i < lines.size()) {
    std::string_view line = StripAsciiWhitespace(lines[i]);
    if (line.empty()) {
      ++i;
      continue;
    }
    auto tokens = SplitWhitespace(line);
    if (tokens.size() != 3 || tokens[0] != "db") {
      return fail(i, "expected 'db <name> <version>'");
    }
    std::string name(tokens[1]);
    if (!IsCatalogName(name)) {
      return fail(i, "bad database name");
    }
    for (const CatalogEntry& prev : entries) {
      if (prev.name == name) {
        return fail(i, "duplicate database '" + name + "'");
      }
    }
    uint64_t version = 0;
    if (!ParseUint64(tokens[2], &version)) {
      return fail(i, "bad version '" + std::string(tokens[2]) + "'");
    }
    const size_t block_start = ++i;
    while (i < lines.size() && StripAsciiWhitespace(lines[i]) != "end") {
      ++i;
    }
    if (i == lines.size()) {
      return fail(block_start - 1,
                  "unterminated 'db " + name + "' block (missing 'end')");
    }
    // Re-slice the original text so the structure parser sees the exact
    // bytes (line numbers in its errors are relative to the block).
    const char* begin = lines[block_start - 1].data() +
                        lines[block_start - 1].size() + 1;
    const char* stop = lines[i].data();
    auto db = ParseStructure(std::string_view(
        begin, static_cast<size_t>(stop - begin)));
    if (!db.ok()) {
      return Status::ParseError("catalog database '" + name +
                                "': " + db.status().ToString());
    }
    Status valid = db->Validate();
    if (!valid.ok()) {
      return Status::ParseError("catalog database '" + name +
                                "': " + valid.ToString());
    }
    entries.push_back(CatalogEntry{std::move(name), version, *std::move(db)});
    ++i;  // past 'end'
  }
  return entries;
}

std::string PrintStructure(const Structure& s) {
  std::ostringstream out;
  out << "universe " << s.universe_size() << "\n";
  const Vocabulary& vocab = *s.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = s.relation(id);
    out << vocab.name(id) << "/" << r.arity() << ":";
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      out << (t == 0 ? " " : ", ");
      std::span<const Element> tup = r.tuple(t);
      for (uint32_t p = 0; p < r.arity(); ++p) {
        if (p > 0) out << " ";
        out << tup[p];
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace cqcs
