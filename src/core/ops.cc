#include "core/ops.h"

#include <unordered_map>

#include "common/check.h"

namespace cqcs {

Structure DisjointUnion(const Structure& a, const Structure& b) {
  CQCS_CHECK_MSG(a.vocabulary()->Equals(*b.vocabulary()),
                 "disjoint union requires equal vocabularies");
  Structure out(a.vocabulary(), a.universe_size() + b.universe_size());
  const Vocabulary& vocab = *a.vocabulary();
  std::vector<Element> shifted;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      out.AddTuple(id, ra.tuple(t));
    }
    const Relation& rb = b.relation(id);
    const uint32_t arity = rb.arity();
    shifted.resize(arity);
    for (uint32_t t = 0; t < rb.tuple_count(); ++t) {
      std::span<const Element> tup = rb.tuple(t);
      for (uint32_t p = 0; p < arity; ++p) {
        shifted[p] = tup[p] + static_cast<Element>(a.universe_size());
      }
      out.AddTuple(id, shifted);
    }
  }
  return out;
}

Structure Product(const Structure& a, const Structure& b) {
  CQCS_CHECK_MSG(a.vocabulary()->Equals(*b.vocabulary()),
                 "product requires equal vocabularies");
  const size_t nb = b.universe_size();
  Structure out(a.vocabulary(), a.universe_size() * nb);
  const Vocabulary& vocab = *a.vocabulary();
  std::vector<Element> combined;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    const Relation& rb = b.relation(id);
    const uint32_t arity = ra.arity();
    combined.resize(arity);
    for (uint32_t ta = 0; ta < ra.tuple_count(); ++ta) {
      std::span<const Element> ua = ra.tuple(ta);
      for (uint32_t tb = 0; tb < rb.tuple_count(); ++tb) {
        std::span<const Element> ub = rb.tuple(tb);
        for (uint32_t p = 0; p < arity; ++p) {
          combined[p] = static_cast<Element>(ua[p] * nb + ub[p]);
        }
        out.AddTuple(id, combined);
      }
    }
  }
  return out;
}

Structure InducedSubstructure(const Structure& a,
                              std::span<const Element> elements) {
  std::unordered_map<Element, Element> to_new;
  to_new.reserve(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    CQCS_CHECK(elements[i] < a.universe_size());
    bool inserted =
        to_new.emplace(elements[i], static_cast<Element>(i)).second;
    CQCS_CHECK_MSG(inserted, "duplicate element in InducedSubstructure");
  }
  Structure out(a.vocabulary(), elements.size());
  const Vocabulary& vocab = *a.vocabulary();
  std::vector<Element> mapped;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    const uint32_t arity = ra.arity();
    mapped.resize(arity);
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      std::span<const Element> tup = ra.tuple(t);
      bool inside = true;
      for (uint32_t p = 0; p < arity; ++p) {
        auto it = to_new.find(tup[p]);
        if (it == to_new.end()) {
          inside = false;
          break;
        }
        mapped[p] = it->second;
      }
      if (inside) out.AddTuple(id, mapped);
    }
  }
  return out;
}

Structure RenameElements(const Structure& a, std::span<const Element> rename,
                         size_t new_size) {
  CQCS_CHECK(rename.size() == a.universe_size());
  Structure out(a.vocabulary(), new_size);
  const Vocabulary& vocab = *a.vocabulary();
  std::vector<Element> mapped;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    const uint32_t arity = ra.arity();
    mapped.resize(arity);
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      std::span<const Element> tup = ra.tuple(t);
      for (uint32_t p = 0; p < arity; ++p) {
        CQCS_CHECK(rename[tup[p]] < new_size);
        mapped[p] = rename[tup[p]];
      }
      out.AddTuple(id, mapped);
    }
  }
  return out;
}

Homomorphism IdentityMap(const Structure& a) {
  Homomorphism h(a.universe_size());
  for (size_t i = 0; i < h.size(); ++i) h[i] = static_cast<Element>(i);
  return h;
}

Homomorphism Compose(std::span<const Element> h, std::span<const Element> g) {
  Homomorphism out(h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    CQCS_CHECK(h[i] < g.size());
    out[i] = g[h[i]];
  }
  return out;
}

}  // namespace cqcs
