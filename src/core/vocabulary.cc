#include "core/vocabulary.h"

#include "common/check.h"

namespace cqcs {

RelId Vocabulary::AddRelation(std::string name, uint32_t arity) {
  Result<RelId> r = TryAddRelation(std::move(name), arity);
  CQCS_CHECK_MSG(r.ok(), r.status().ToString());
  return *r;
}

Result<RelId> Vocabulary::TryAddRelation(std::string name, uint32_t arity) {
  if (arity == 0) {
    return Status::InvalidArgument("relation symbol '" + name +
                                   "' must have arity >= 1");
  }
  if (by_name_.count(name) > 0) {
    return Status::InvalidArgument("duplicate relation symbol '" + name + "'");
  }
  RelId id = static_cast<RelId>(symbols_.size());
  by_name_.emplace(name, id);
  symbols_.push_back(RelationSymbol{std::move(name), arity});
  return id;
}

std::optional<RelId> Vocabulary::FindRelation(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const RelationSymbol& Vocabulary::symbol(RelId id) const {
  CQCS_CHECK_MSG(id < symbols_.size(), "RelId " << id << " out of range");
  return symbols_[id];
}

uint32_t Vocabulary::MaxArity() const {
  uint32_t m = 0;
  for (const auto& s : symbols_) m = std::max(m, s.arity);
  return m;
}

bool Vocabulary::Equals(const Vocabulary& other) const {
  if (symbols_.size() != other.symbols_.size()) return false;
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name != other.symbols_[i].name ||
        symbols_[i].arity != other.symbols_[i].arity) {
      return false;
    }
  }
  return true;
}

std::string Vocabulary::ToString() const {
  std::string out;
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += symbols_[i].name + "/" + std::to_string(symbols_[i].arity);
  }
  return out;
}

}  // namespace cqcs
