#include "core/structure.h"

#include "common/check.h"

namespace cqcs {

Structure::Structure(VocabularyPtr vocabulary, size_t universe_size)
    : vocabulary_(std::move(vocabulary)), universe_size_(universe_size) {
  CQCS_CHECK(vocabulary_ != nullptr);
  relations_.reserve(vocabulary_->size());
  for (RelId id = 0; id < vocabulary_->size(); ++id) {
    relations_.emplace_back(vocabulary_->arity(id));
  }
}

void Structure::GrowUniverse(size_t new_size) {
  CQCS_CHECK(new_size >= universe_size_);
  universe_size_ = new_size;
}

const Relation& Structure::relation(RelId id) const {
  CQCS_CHECK_MSG(id < relations_.size(), "RelId " << id << " out of range");
  return relations_[id];
}

Relation& Structure::mutable_relation(RelId id) {
  CQCS_CHECK_MSG(id < relations_.size(), "RelId " << id << " out of range");
  return relations_[id];
}

void Structure::AddTuple(RelId id, std::span<const Element> tuple) {
  Status s = TryAddTuple(id, tuple);
  CQCS_CHECK_MSG(s.ok(), s.ToString());
}

void Structure::AddTuple(RelId id, std::initializer_list<Element> tuple) {
  AddTuple(id, std::span<const Element>(tuple.begin(), tuple.size()));
}

Status Structure::TryAddTuple(RelId id, std::span<const Element> tuple) {
  if (id >= relations_.size()) {
    return Status::InvalidArgument("relation id out of range");
  }
  if (tuple.size() != vocabulary_->arity(id)) {
    return Status::InvalidArgument(
        "tuple length " + std::to_string(tuple.size()) + " != arity " +
        std::to_string(vocabulary_->arity(id)) + " of relation " +
        vocabulary_->name(id));
  }
  for (Element e : tuple) {
    if (e >= universe_size_) {
      return Status::InvalidArgument(
          "element " + std::to_string(e) + " outside universe of size " +
          std::to_string(universe_size_));
    }
  }
  relations_[id].Add(tuple);
  return Status::OK();
}

size_t Structure::TotalTuples() const {
  size_t n = 0;
  for (const auto& r : relations_) n += r.tuple_count();
  return n;
}

size_t Structure::Size() const {
  size_t n = universe_size_;
  for (const auto& r : relations_) n += r.data().size();
  return n;
}

void Structure::DedupAll() {
  for (auto& r : relations_) r.Dedup();
}

Status Structure::Validate() const {
  for (RelId id = 0; id < relations_.size(); ++id) {
    const Relation& r = relations_[id];
    if (r.arity() != vocabulary_->arity(id)) {
      return Status::Internal("arity mismatch for " + vocabulary_->name(id));
    }
    if (r.MaxElementPlusOne() > universe_size_) {
      return Status::InvalidArgument(
          "relation " + vocabulary_->name(id) +
          " references an element outside the universe");
    }
  }
  return Status::OK();
}

bool Structure::operator==(const Structure& other) const {
  if (universe_size_ != other.universe_size_) return false;
  if (!vocabulary_->Equals(*other.vocabulary_)) return false;
  for (RelId id = 0; id < relations_.size(); ++id) {
    if (!(relations_[id] == other.relations_[id])) return false;
  }
  return true;
}

OccurrenceIndex::OccurrenceIndex(const Structure& s) {
  const size_t n = s.universe_size();
  std::vector<size_t> counts(n + 1, 0);
  const Vocabulary& vocab = *s.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    for (Element e : s.relation(id).data()) ++counts[e + 1];
  }
  offsets_.assign(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) offsets_[i] = offsets_[i - 1] + counts[i];
  entries_.resize(offsets_[n]);
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = s.relation(id);
    const uint32_t arity = r.arity();
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      std::span<const Element> tup = r.tuple(t);
      for (uint32_t p = 0; p < arity; ++p) {
        entries_[cursor[tup[p]]++] = Occurrence{id, t, p};
      }
    }
  }
}

}  // namespace cqcs
