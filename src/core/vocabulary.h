// Relational vocabularies (signatures): named relation symbols with arities.
//
// Structures over the same vocabulary share it via shared_ptr so that
// relation ids are comparable across structures — a homomorphism h: A -> B
// only makes sense when A and B interpret the same symbols.

#ifndef CQCS_CORE_VOCABULARY_H_
#define CQCS_CORE_VOCABULARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace cqcs {

/// Index of a relation symbol within its vocabulary.
using RelId = uint32_t;

/// A named relation symbol with a fixed arity.
struct RelationSymbol {
  std::string name;
  uint32_t arity = 0;
};

/// An immutable-after-construction set of relation symbols.
///
/// Typical usage:
///   auto vocab = std::make_shared<Vocabulary>();
///   RelId e = vocab->AddRelation("E", 2);
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Adds a relation symbol. CHECK-fails on duplicate names or arity 0
  /// (nullary relation symbols are not needed by any construction in the
  /// paper; Datalog's nullary goal predicates are handled by the Datalog
  /// module separately).
  RelId AddRelation(std::string name, uint32_t arity);

  /// Adds a relation symbol, reporting duplicates as InvalidArgument.
  Result<RelId> TryAddRelation(std::string name, uint32_t arity);

  /// Looks up a symbol by name.
  std::optional<RelId> FindRelation(std::string_view name) const;

  /// Number of relation symbols.
  size_t size() const { return symbols_.size(); }

  const RelationSymbol& symbol(RelId id) const;
  const std::string& name(RelId id) const { return symbol(id).name; }
  uint32_t arity(RelId id) const { return symbol(id).arity; }

  /// Largest arity over all symbols (0 for the empty vocabulary).
  uint32_t MaxArity() const;

  /// True if both vocabularies contain the same symbols in the same order.
  bool Equals(const Vocabulary& other) const;

  /// "E/2, P/1" style listing for diagnostics.
  std::string ToString() const;

 private:
  std::vector<RelationSymbol> symbols_;
  std::unordered_map<std::string, RelId> by_name_;
};

using VocabularyPtr = std::shared_ptr<const Vocabulary>;

}  // namespace cqcs

#endif  // CQCS_CORE_VOCABULARY_H_
