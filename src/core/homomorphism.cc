#include "core/homomorphism.h"

#include "common/check.h"

namespace cqcs {

namespace {

// Shared scan over A's tuples; calls `on_violation(rel, tuple_index)` for the
// first violated tuple and returns false, or returns true if none.
template <typename OnViolation>
bool ScanTuples(const Structure& a, const Structure& b,
                std::span<const Element> h, bool allow_unassigned,
                OnViolation on_violation) {
  const Vocabulary& vocab = *a.vocabulary();
  std::vector<Element> image;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    const Relation& rb = b.relation(id);
    const uint32_t arity = ra.arity();
    image.resize(arity);
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      std::span<const Element> tup = ra.tuple(t);
      bool fully_assigned = true;
      for (uint32_t p = 0; p < arity; ++p) {
        Element v = h[tup[p]];
        if (v == kUnassigned) {
          fully_assigned = false;
          break;
        }
        image[p] = v;
      }
      if (!fully_assigned) {
        if (allow_unassigned) continue;
        on_violation(id, t);
        return false;
      }
      if (!rb.Contains(image)) {
        on_violation(id, t);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool IsHomomorphism(const Structure& a, const Structure& b,
                    std::span<const Element> h) {
  if (h.size() != a.universe_size()) return false;
  for (Element v : h) {
    if (v >= b.universe_size()) return false;
  }
  return ScanTuples(a, b, h, /*allow_unassigned=*/false,
                    [](RelId, uint32_t) {});
}

Status CheckHomomorphism(const Structure& a, const Structure& b,
                         std::span<const Element> h) {
  if (h.size() != a.universe_size()) {
    return Status::InvalidArgument("mapping has wrong domain size");
  }
  for (Element v : h) {
    if (v != kUnassigned && v >= b.universe_size()) {
      return Status::InvalidArgument("mapping value outside B's universe");
    }
  }
  RelId bad_rel = 0;
  uint32_t bad_tuple = 0;
  bool ok = ScanTuples(a, b, h, /*allow_unassigned=*/false,
                       [&](RelId r, uint32_t t) {
                         bad_rel = r;
                         bad_tuple = t;
                       });
  if (ok) return Status::OK();
  return Status::InvalidArgument(
      "tuple " + std::to_string(bad_tuple) + " of relation " +
      a.vocabulary()->name(bad_rel) + " is not preserved");
}

bool IsPartialHomomorphism(const Structure& a, const Structure& b,
                           std::span<const Element> partial) {
  CQCS_CHECK(partial.size() == a.universe_size());
  for (Element v : partial) {
    if (v != kUnassigned && v >= b.universe_size()) return false;
  }
  return ScanTuples(a, b, partial, /*allow_unassigned=*/true,
                    [](RelId, uint32_t) {});
}

}  // namespace cqcs
