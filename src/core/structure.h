// Finite relational structures: a universe {0..n-1} plus one Relation per
// symbol of a shared Vocabulary. This is the common currency of the whole
// library — queries, CSP instances, Datalog databases, and game positions
// are all (pairs of) Structures.

#ifndef CQCS_CORE_STRUCTURE_H_
#define CQCS_CORE_STRUCTURE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/relation.h"
#include "core/vocabulary.h"

namespace cqcs {

/// A finite relational structure A = (universe, R_1^A, ..., R_m^A).
class Structure {
 public:
  /// Creates a structure with an all-empty interpretation.
  Structure(VocabularyPtr vocabulary, size_t universe_size);

  const VocabularyPtr& vocabulary() const { return vocabulary_; }
  size_t universe_size() const { return universe_size_; }

  /// Grows the universe (never shrinks; shrinking would invalidate tuples).
  void GrowUniverse(size_t new_size);

  const Relation& relation(RelId id) const;
  Relation& mutable_relation(RelId id);

  /// Convenience: appends a tuple after validating arity and element range.
  void AddTuple(RelId id, std::span<const Element> tuple);
  void AddTuple(RelId id, std::initializer_list<Element> tuple);
  /// Same, returning Status instead of CHECK-failing (for loaders).
  Status TryAddTuple(RelId id, std::span<const Element> tuple);

  /// Total number of tuples over all relations.
  size_t TotalTuples() const;

  /// ‖A‖: universe size plus the total length of all tuples. This is the
  /// size measure the paper's complexity bounds use.
  size_t Size() const;

  /// Removes duplicate tuples in every relation.
  void DedupAll();

  /// Verifies all tuples reference elements < universe_size().
  Status Validate() const;

  bool operator==(const Structure& other) const;

 private:
  VocabularyPtr vocabulary_;
  size_t universe_size_;
  std::vector<Relation> relations_;
};

/// Occurrence index for a structure: for every element, where it occurs.
/// Several algorithms in the paper (Theorem 3.4's quadratic Horn/bijunctive
/// algorithms, the solver's propagation) are stated in terms of "linked
/// lists that link all occurrences in A of an element a" — this is that
/// preprocessing, done once in O(‖A‖).
class OccurrenceIndex {
 public:
  /// One occurrence of an element: tuple `tuple_index` of relation `rel`,
  /// at position `pos`.
  struct Occurrence {
    RelId rel;
    uint32_t tuple_index;
    uint32_t pos;
  };

  explicit OccurrenceIndex(const Structure& s);

  /// All occurrences of element e.
  std::span<const Occurrence> occurrences(Element e) const {
    return {entries_.data() + offsets_[e],
            offsets_[e + 1] - offsets_[e]};
  }

 private:
  std::vector<size_t> offsets_;     // universe_size + 1 entries
  std::vector<Occurrence> entries_;
};

}  // namespace cqcs

#endif  // CQCS_CORE_STRUCTURE_H_
