// Algebraic operations on structures: disjoint union, direct product,
// induced substructures, renaming along a mapping. These are the standard
// tools of the homomorphism-based treatment of CSP (products witness
// conjunction of constraints; disjoint unions witness independent instances).

#ifndef CQCS_CORE_OPS_H_
#define CQCS_CORE_OPS_H_

#include <span>

#include "core/homomorphism.h"
#include "core/structure.h"

namespace cqcs {

/// A ⊎ B: universes are concatenated (A's elements keep their ids, B's are
/// shifted by |A|). hom(A ⊎ B -> C) exists iff hom(A -> C) and hom(B -> C).
/// CHECK-fails if the vocabularies differ.
Structure DisjointUnion(const Structure& a, const Structure& b);

/// A × B: universe is the grid |A|·|B| with (x,y) encoded as x*|B|+y; a tuple
/// is in R^{A×B} iff its projections are in R^A and R^B.
/// hom(C -> A × B) exists iff hom(C -> A) and hom(C -> B).
Structure Product(const Structure& a, const Structure& b);

/// The substructure of A induced by `elements` (which must be distinct and
/// in range). Element i of the result corresponds to elements[i]; tuples of
/// A that mention anything outside `elements` are dropped.
Structure InducedSubstructure(const Structure& a,
                              std::span<const Element> elements);

/// Applies `rename` (a total map from A's universe to [0, new_size)) to every
/// tuple of A. The image structure may identify elements (this is exactly
/// taking the homomorphic image when `rename` is a homomorphism to itself).
Structure RenameElements(const Structure& a, std::span<const Element> rename,
                         size_t new_size);

/// The identity mapping on A's universe — trivially a homomorphism A -> A.
Homomorphism IdentityMap(const Structure& a);

/// Composes two mappings: (g ∘ h)(x) = g[h[x]]. Homomorphisms compose.
Homomorphism Compose(std::span<const Element> h, std::span<const Element> g);

}  // namespace cqcs

#endif  // CQCS_CORE_OPS_H_
