#include "core/graph.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "core/structure.h"

namespace cqcs {

uint32_t Graph::AddVertex() {
  adj_.emplace_back();
  return static_cast<uint32_t>(adj_.size() - 1);
}

void Graph::AddEdge(uint32_t u, uint32_t v) {
  CQCS_CHECK(u < adj_.size() && v < adj_.size());
  if (u == v) return;
  auto& nu = adj_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return;  // duplicate
  nu.insert(it, v);
  auto& nv = adj_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  CQCS_CHECK(u < adj_.size() && v < adj_.size());
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::vector<uint32_t> Graph::ConnectedComponents(size_t* count) const {
  std::vector<uint32_t> comp(adj_.size(), UINT32_MAX);
  uint32_t next = 0;
  std::queue<uint32_t> queue;
  for (uint32_t s = 0; s < adj_.size(); ++s) {
    if (comp[s] != UINT32_MAX) continue;
    comp[s] = next;
    queue.push(s);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop();
      for (uint32_t w : adj_[v]) {
        if (comp[w] == UINT32_MAX) {
          comp[w] = next;
          queue.push(w);
        }
      }
    }
    ++next;
  }
  if (count != nullptr) *count = next;
  return comp;
}

bool Graph::TwoColor(std::vector<uint8_t>* colors) const {
  std::vector<uint8_t> color(adj_.size(), 2);  // 2 == uncolored
  std::queue<uint32_t> queue;
  for (uint32_t s = 0; s < adj_.size(); ++s) {
    if (color[s] != 2) continue;
    color[s] = 0;
    queue.push(s);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop();
      for (uint32_t w : adj_[v]) {
        if (color[w] == 2) {
          color[w] = static_cast<uint8_t>(1 - color[v]);
          queue.push(w);
        } else if (color[w] == color[v]) {
          return false;
        }
      }
    }
  }
  if (colors != nullptr) *colors = std::move(color);
  return true;
}

Graph GaifmanGraph(const Structure& a) {
  Graph g(a.universe_size());
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    const uint32_t arity = r.arity();
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      std::span<const Element> tup = r.tuple(t);
      for (uint32_t i = 0; i < arity; ++i) {
        for (uint32_t j = i + 1; j < arity; ++j) {
          g.AddEdge(tup[i], tup[j]);
        }
      }
    }
  }
  return g;
}

Graph IncidenceGraph(const Structure& a) {
  Graph g(a.universe_size());
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      uint32_t tuple_vertex = g.AddVertex();
      for (Element e : r.tuple(t)) g.AddEdge(tuple_vertex, e);
    }
  }
  return g;
}

}  // namespace cqcs
