// Homomorphisms between relational structures — the central notion of the
// paper: h : A -> B is a homomorphism when every tuple of every relation of
// A is mapped (componentwise) to a tuple of the corresponding relation of B.

#ifndef CQCS_CORE_HOMOMORPHISM_H_
#define CQCS_CORE_HOMOMORPHISM_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/structure.h"

namespace cqcs {

/// A total mapping from A's universe to B's universe; h[a] is the image of a.
using Homomorphism = std::vector<Element>;

/// Checks that `h` (of size A.universe_size(), with values below
/// B.universe_size()) is a homomorphism from A to B. O(‖A‖ log ‖B‖).
bool IsHomomorphism(const Structure& a, const Structure& b,
                    std::span<const Element> h);

/// Like IsHomomorphism but reports the first violated tuple in the message.
Status CheckHomomorphism(const Structure& a, const Structure& b,
                         std::span<const Element> h);

/// A partial mapping from A to B: kUnassigned marks unmapped elements.
/// Used by the solver and the pebble-game module.
inline constexpr Element kUnassigned = static_cast<Element>(-1);

/// Checks that the assigned part of `h` violates no tuple of A all of whose
/// positions are assigned. (A necessary condition for extensibility.)
bool IsPartialHomomorphism(const Structure& a, const Structure& b,
                           std::span<const Element> partial);

}  // namespace cqcs

#endif  // CQCS_CORE_HOMOMORPHISM_H_
