// Text format for structures, for examples, tests, and tooling.
//
// Grammar (line oriented; '#' starts a comment):
//
//   universe 5
//   E/2: 0 1, 1 2, 2 3
//   P/1: 0
//
// The first non-comment line must declare the universe size. Each following
// line declares one relation: "name/arity:" then comma-separated tuples of
// whitespace-separated element indices. A relation may be declared on
// multiple lines; tuples accumulate. Relations never mentioned are empty
// only if they are present in the supplied vocabulary; when parsing without
// a vocabulary the vocabulary is inferred from the declarations.

#ifndef CQCS_CORE_IO_H_
#define CQCS_CORE_IO_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "core/structure.h"

namespace cqcs {

/// Parses a structure, inferring its vocabulary from the text.
Result<Structure> ParseStructure(std::string_view text);

/// Parses a structure against a fixed vocabulary; relations absent from the
/// text are empty; unknown relation names are an error.
Result<Structure> ParseStructure(std::string_view text, VocabularyPtr vocab);

/// Prints a structure in the format ParseStructure accepts.
std::string PrintStructure(const Structure& s);

}  // namespace cqcs

#endif  // CQCS_CORE_IO_H_
