// Text format for structures, for examples, tests, and tooling.
//
// Grammar (line oriented; '#' starts a comment):
//
//   universe 5
//   E/2: 0 1, 1 2, 2 3
//   P/1: 0
//
// The first non-comment line must declare the universe size. Each following
// line declares one relation: "name/arity:" then comma-separated tuples of
// whitespace-separated element indices. A relation may be declared on
// multiple lines; tuples accumulate. Relations never mentioned are empty
// only if they are present in the supplied vocabulary; when parsing without
// a vocabulary the vocabulary is inferred from the declarations.

// A catalog — the serving layer's full database registry — serializes as a
// framed sequence of structures (the snapshot payload of
// serve/durability.h):
//
//   cqcs-catalog 1
//   db <name> <version>
//   <structure text>
//   end
//   db ...
//
// Every parse path returns Result<>: catalog bytes come from disk after a
// crash and may be arbitrarily corrupt, so nothing in here may abort.

#ifndef CQCS_CORE_IO_H_
#define CQCS_CORE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/structure.h"

namespace cqcs {

/// Parses a structure, inferring its vocabulary from the text.
Result<Structure> ParseStructure(std::string_view text);

/// Parses a structure against a fixed vocabulary; relations absent from the
/// text are empty; unknown relation names are an error.
Result<Structure> ParseStructure(std::string_view text, VocabularyPtr vocab);

/// Prints a structure in the format ParseStructure accepts.
std::string PrintStructure(const Structure& s);

/// One named, versioned database in a serialized catalog.
struct CatalogEntry {
  std::string name;
  uint64_t version = 0;
  Structure db;
};

/// The durable-name rule: catalog names travel on single header lines in
/// snapshots and WAL records, so a valid name is nonempty and contains no
/// byte <= 0x20 (space and all controls) and no 0x7F (DEL). Everything
/// that acknowledges a name as durable must enforce exactly this predicate
/// — a name the recovery parsers would reject must never reach disk.
bool IsCatalogName(std::string_view name);

/// Serializes a catalog in the format ParseCatalog accepts. Entry order is
/// preserved (PrintCatalog -> ParseCatalog round-trips exactly).
std::string PrintCatalog(const std::vector<CatalogEntry>& entries);

/// Parses a catalog. ParseError on any deviation — bad magic, a name with
/// whitespace or control bytes, a duplicate name, a truncated entry, or a
/// structure block ParseStructure rejects.
Result<std::vector<CatalogEntry>> ParseCatalog(std::string_view text);

}  // namespace cqcs

#endif  // CQCS_CORE_IO_H_
