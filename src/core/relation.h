// A finite relation: a set of tuples over a dense element universe.
//
// Tuples are stored flattened in insertion order. Membership queries use a
// lazily built sorted index (invalidated by mutation); this keeps bulk
// loading O(1) amortized per tuple while making Contains O(log m) without a
// second copy of the data.

#ifndef CQCS_CORE_RELATION_H_
#define CQCS_CORE_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace cqcs {

/// Elements of a structure's universe are dense indices 0..n-1.
using Element = uint32_t;

/// A set of `arity`-tuples of elements.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }

  /// Number of tuples (counting duplicates until Dedup() is called).
  size_t tuple_count() const { return data_.size() / arity_; }

  bool empty() const { return data_.empty(); }

  /// Appends a tuple. Does not check for duplicates (call Dedup() after bulk
  /// loads if set semantics matter). CHECK-fails on wrong length.
  void Add(std::span<const Element> tuple);
  void Add(std::initializer_list<Element> tuple);

  /// The i-th tuple, valid until the next mutation.
  std::span<const Element> tuple(size_t i) const {
    return {data_.data() + i * arity_, arity_};
  }

  /// Set membership; O(log m) after a one-time O(m log m) index build.
  bool Contains(std::span<const Element> tuple) const;

  /// Builds (or reuses) the (position, value) support index: for every
  /// position p < arity and value v < num_values, the list of tuple ids t
  /// with tuple(t)[p] == v, in increasing t. One O(m·arity) CSR pass; the
  /// CSP propagator walks these lists instead of rescanning all tuples.
  /// CHECK-fails if some tuple mentions an element >= num_values.
  /// Invalidated by mutation, like the sorted index.
  void EnsurePositionIndex(Element num_values) const;

  /// Tuple ids whose position `pos` holds `value`. Requires a prior
  /// EnsurePositionIndex(n) with value < n (returns an empty span for
  /// out-of-range values). Valid until the next mutation.
  std::span<const uint32_t> TuplesWith(uint32_t pos, Element value) const;

  /// Removes duplicate tuples (keeps first occurrences' values; order is
  /// normalized to lexicographic).
  void Dedup();

  /// Removes all tuples.
  void Clear();

  /// Raw flattened storage (tuple_count() * arity() elements).
  const std::vector<Element>& data() const { return data_; }

  /// Largest element mentioned plus one; 0 if empty. Useful for validation.
  Element MaxElementPlusOne() const;

  bool operator==(const Relation& other) const;

 private:
  void EnsureIndex() const;
  /// Lexicographic comparison of tuples at offsets a and b.
  bool TupleLess(size_t a, size_t b) const;

  uint32_t arity_;
  std::vector<Element> data_;
  // Sorted tuple indices for binary search; rebuilt on demand.
  mutable std::vector<uint32_t> index_;
  mutable bool index_valid_ = false;
  // (position, value) -> tuple-id CSR index; see EnsurePositionIndex.
  // Slot (p, v) spans pos_offsets_[p * num_values + v] ..
  // pos_offsets_[p * num_values + v + 1] of pos_ids_.
  mutable std::vector<uint32_t> pos_offsets_;
  mutable std::vector<uint32_t> pos_ids_;
  mutable Element pos_num_values_ = 0;
  mutable bool pos_index_valid_ = false;
};

}  // namespace cqcs

#endif  // CQCS_CORE_RELATION_H_
