// A finite relation: a set of tuples over a dense element universe.
//
// Tuples are stored flattened in insertion order. Membership queries use a
// lazily built sorted index (invalidated by mutation); this keeps bulk
// loading O(1) amortized per tuple while making Contains O(log m) without a
// second copy of the data.

#ifndef CQCS_CORE_RELATION_H_
#define CQCS_CORE_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

namespace cqcs {

/// Elements of a structure's universe are dense indices 0..n-1.
using Element = uint32_t;

/// A set of `arity`-tuples of elements.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }

  /// Number of tuples (counting duplicates until Dedup() is called).
  size_t tuple_count() const { return data_.size() / arity_; }

  bool empty() const { return data_.empty(); }

  /// Appends a tuple. Does not check for duplicates (call Dedup() after bulk
  /// loads if set semantics matter). CHECK-fails on wrong length.
  void Add(std::span<const Element> tuple);
  void Add(std::initializer_list<Element> tuple);

  /// The i-th tuple, valid until the next mutation.
  std::span<const Element> tuple(size_t i) const {
    return {data_.data() + i * arity_, arity_};
  }

  /// Set membership; O(log m) after a one-time O(m log m) index build.
  bool Contains(std::span<const Element> tuple) const;

  /// Removes duplicate tuples (keeps first occurrences' values; order is
  /// normalized to lexicographic).
  void Dedup();

  /// Removes all tuples.
  void Clear();

  /// Raw flattened storage (tuple_count() * arity() elements).
  const std::vector<Element>& data() const { return data_; }

  /// Largest element mentioned plus one; 0 if empty. Useful for validation.
  Element MaxElementPlusOne() const;

  bool operator==(const Relation& other) const;

 private:
  void EnsureIndex() const;
  /// Lexicographic comparison of tuples at offsets a and b.
  bool TupleLess(size_t a, size_t b) const;

  uint32_t arity_;
  std::vector<Element> data_;
  // Sorted tuple indices for binary search; rebuilt on demand.
  mutable std::vector<uint32_t> index_;
  mutable bool index_valid_ = false;
};

}  // namespace cqcs

#endif  // CQCS_CORE_RELATION_H_
