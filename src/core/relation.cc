#include "core/relation.h"

#include <algorithm>

#include "common/check.h"

namespace cqcs {

void Relation::Add(std::span<const Element> tuple) {
  CQCS_CHECK_MSG(tuple.size() == arity_,
                 "tuple of length " << tuple.size() << " added to relation of"
                                    << " arity " << arity_);
  data_.insert(data_.end(), tuple.begin(), tuple.end());
  index_valid_ = false;
  pos_index_valid_ = false;
}

void Relation::Add(std::initializer_list<Element> tuple) {
  Add(std::span<const Element>(tuple.begin(), tuple.size()));
}

bool Relation::TupleLess(size_t a, size_t b) const {
  const Element* pa = data_.data() + a * arity_;
  const Element* pb = data_.data() + b * arity_;
  return std::lexicographical_compare(pa, pa + arity_, pb, pb + arity_);
}

void Relation::EnsureIndex() const {
  if (index_valid_) return;
  index_.resize(tuple_count());
  for (uint32_t i = 0; i < index_.size(); ++i) index_[i] = i;
  std::sort(index_.begin(), index_.end(),
            [this](uint32_t a, uint32_t b) { return TupleLess(a, b); });
  index_valid_ = true;
}

bool Relation::Contains(std::span<const Element> t) const {
  if (t.size() != arity_) return false;
  EnsureIndex();
  auto less_than_key = [this, &t](uint32_t i) {
    const Element* p = data_.data() + static_cast<size_t>(i) * arity_;
    return std::lexicographical_compare(p, p + arity_, t.begin(), t.end());
  };
  // Manual lower_bound over the permutation.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (less_than_key(index_[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == index_.size()) return false;
  const Element* p = data_.data() + static_cast<size_t>(index_[lo]) * arity_;
  return std::equal(p, p + arity_, t.begin());
}

void Relation::EnsurePositionIndex(Element num_values) const {
  if (pos_index_valid_ && pos_num_values_ == num_values) return;
  const size_t m = tuple_count();
  const size_t slots = static_cast<size_t>(arity_) * num_values;
  // Counting sort per (position, value) slot: count, prefix-sum, fill.
  pos_offsets_.assign(slots + 1, 0);
  for (size_t t = 0; t < m; ++t) {
    const Element* tup = data_.data() + t * arity_;
    for (uint32_t p = 0; p < arity_; ++p) {
      CQCS_CHECK_MSG(tup[p] < num_values,
                     "position index over " << num_values
                                            << " values, but tuple mentions "
                                            << tup[p]);
      ++pos_offsets_[static_cast<size_t>(p) * num_values + tup[p] + 1];
    }
  }
  for (size_t s = 0; s < slots; ++s) pos_offsets_[s + 1] += pos_offsets_[s];
  pos_ids_.resize(m * arity_);
  std::vector<uint32_t> cursor(pos_offsets_.begin(), pos_offsets_.end() - 1);
  for (size_t t = 0; t < m; ++t) {
    const Element* tup = data_.data() + t * arity_;
    for (uint32_t p = 0; p < arity_; ++p) {
      size_t slot = static_cast<size_t>(p) * num_values + tup[p];
      pos_ids_[cursor[slot]++] = static_cast<uint32_t>(t);
    }
  }
  pos_num_values_ = num_values;
  pos_index_valid_ = true;
}

std::span<const uint32_t> Relation::TuplesWith(uint32_t pos,
                                               Element value) const {
  CQCS_CHECK(pos_index_valid_ && pos < arity_);
  if (value >= pos_num_values_) return {};
  size_t slot = static_cast<size_t>(pos) * pos_num_values_ + value;
  return {pos_ids_.data() + pos_offsets_[slot],
          pos_offsets_[slot + 1] - pos_offsets_[slot]};
}

void Relation::Dedup() {
  EnsureIndex();
  std::vector<Element> compact;
  compact.reserve(data_.size());
  for (size_t pos = 0; pos < index_.size(); ++pos) {
    if (pos > 0) {
      const Element* prev =
          data_.data() + static_cast<size_t>(index_[pos - 1]) * arity_;
      const Element* cur =
          data_.data() + static_cast<size_t>(index_[pos]) * arity_;
      if (std::equal(prev, prev + arity_, cur)) continue;
    }
    const Element* cur =
        data_.data() + static_cast<size_t>(index_[pos]) * arity_;
    compact.insert(compact.end(), cur, cur + arity_);
  }
  data_ = std::move(compact);
  index_valid_ = false;
  pos_index_valid_ = false;
}

void Relation::Clear() {
  data_.clear();
  index_.clear();
  index_valid_ = false;
  pos_index_valid_ = false;
}

Element Relation::MaxElementPlusOne() const {
  Element m = 0;
  for (Element e : data_) m = std::max(m, static_cast<Element>(e + 1));
  return m;
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  if (tuple_count() != other.tuple_count()) return false;
  EnsureIndex();
  other.EnsureIndex();
  for (size_t pos = 0; pos < index_.size(); ++pos) {
    const Element* a = data_.data() + static_cast<size_t>(index_[pos]) * arity_;
    const Element* b = other.data_.data() +
                       static_cast<size_t>(other.index_[pos]) * other.arity_;
    if (!std::equal(a, a + arity_, b)) return false;
  }
  return true;
}

}  // namespace cqcs
