// Simple undirected graphs. Used for the Gaifman and incidence views of a
// structure and throughout the treewidth module (Section 5 of the paper).

#ifndef CQCS_CORE_GRAPH_H_
#define CQCS_CORE_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace cqcs {

/// An undirected simple graph on vertices 0..n-1 (no self loops, no
/// parallel edges). Adjacency is stored as sorted neighbor lists.
class Graph {
 public:
  explicit Graph(size_t n = 0) : adj_(n) {}

  size_t vertex_count() const { return adj_.size(); }
  size_t edge_count() const { return edge_count_; }

  /// Appends an isolated vertex and returns its id.
  uint32_t AddVertex();

  /// Adds edge {u, v}; ignores self loops and duplicates.
  void AddEdge(uint32_t u, uint32_t v);

  bool HasEdge(uint32_t u, uint32_t v) const;

  std::span<const uint32_t> neighbors(uint32_t v) const {
    return adj_[v];
  }
  size_t degree(uint32_t v) const { return adj_[v].size(); }

  /// Connected components; result[v] is a component id in [0, count).
  std::vector<uint32_t> ConnectedComponents(size_t* count = nullptr) const;

  /// Proper 2-coloring if one exists (values 0/1), std::nullopt-like empty
  /// vector otherwise. Used by the 2-colorability experiments (Example 3.7).
  bool TwoColor(std::vector<uint8_t>* colors) const;

 private:
  std::vector<std::vector<uint32_t>> adj_;
  size_t edge_count_ = 0;
};

class Structure;  // core/structure.h

/// Gaifman (primal) graph of a structure: vertices are the universe; two
/// distinct elements are adjacent iff they co-occur in some tuple.
Graph GaifmanGraph(const Structure& a);

/// Incidence graph of a structure: one vertex per universe element plus one
/// per tuple; a tuple-vertex is adjacent to the elements it mentions.
/// Element e keeps id e; tuples get ids universe_size().. in relation order.
Graph IncidenceGraph(const Structure& a);

}  // namespace cqcs

#endif  // CQCS_CORE_GRAPH_H_
