#include "core/structure_core.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "core/ops.h"
#include "solver/backtracking.h"

namespace cqcs {

namespace {

/// Builds a copy of `base` over `vocab` (which must extend base's
/// vocabulary with extra unary markers appended at the end).
Structure Lift(const Structure& base, const VocabularyPtr& vocab) {
  Structure out(vocab, base.universe_size());
  for (RelId id = 0; id < base.vocabulary()->size(); ++id) {
    const Relation& r = base.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      out.AddTuple(id, r.tuple(t));
    }
  }
  return out;
}

/// Tries to fold the induced substructure on `kept` one element smaller:
/// find a non-protected v in kept and a homomorphism of the substructure
/// into itself that avoids v and fixes every protected element. On success,
/// updates kept/retraction and returns true.
bool TryFold(const Structure& original, std::vector<Element>& kept,
             Homomorphism& retraction,
             const std::set<Element>& protected_set) {
  Structure current = InducedSubstructure(original, kept);
  const VocabularyPtr& base_vocab = current.vocabulary();

  // Extended vocabulary: __alive marks allowed targets (drops one element),
  // __pin_i pins each protected element in place.
  auto vocab = std::make_shared<Vocabulary>();
  for (RelId id = 0; id < base_vocab->size(); ++id) {
    vocab->AddRelation(base_vocab->name(id), base_vocab->arity(id));
  }
  RelId alive = vocab->AddRelation("__alive", 1);
  std::vector<std::pair<Element, RelId>> pins;  // (position in kept, rel)
  for (size_t i = 0; i < kept.size(); ++i) {
    if (protected_set.count(kept[i]) > 0) {
      pins.emplace_back(static_cast<Element>(i),
                        vocab->AddRelation("__pin_" + std::to_string(i), 1));
    }
  }

  Structure source = Lift(current, vocab);
  for (size_t i = 0; i < kept.size(); ++i) {
    source.AddTuple(alive, {static_cast<Element>(i)});
  }
  for (auto [e, rel] : pins) source.AddTuple(rel, {e});

  for (size_t drop = 0; drop < kept.size(); ++drop) {
    if (protected_set.count(kept[drop]) > 0) continue;
    Structure target = Lift(current, vocab);
    for (size_t i = 0; i < kept.size(); ++i) {
      if (i != drop) target.AddTuple(alive, {static_cast<Element>(i)});
    }
    for (auto [e, rel] : pins) target.AddTuple(rel, {e});

    // Deliberately on the raw solver, not the engine front door: this inner
    // loop runs O(n) times per fold round on lifted structures whose shape
    // never fits a polynomial island (the __alive/__pin markers make the
    // source cyclic), so per-call instance profiling would be pure
    // overhead.
    BacktrackingSolver solver(source, target);
    auto h = solver.Solve();
    if (!h.has_value()) continue;

    // Fold: compose the retraction with the found homomorphism (expressed
    // in original element ids) and restrict `kept` to the image.
    std::vector<Element> h_original(original.universe_size(), kUnassigned);
    for (size_t i = 0; i < kept.size(); ++i) {
      h_original[kept[i]] = kept[(*h)[i]];
    }
    for (Element e = 0; e < original.universe_size(); ++e) {
      retraction[e] = h_original[retraction[e]];
      CQCS_CHECK(retraction[e] != kUnassigned);
    }
    std::set<Element> image;
    for (Element e = 0; e < original.universe_size(); ++e) {
      image.insert(retraction[e]);
    }
    kept.assign(image.begin(), image.end());
    return true;
  }
  return false;
}

}  // namespace

CoreResult ComputeCore(const Structure& a,
                       std::span<const Element> protected_elements) {
  std::set<Element> protected_set(protected_elements.begin(),
                                  protected_elements.end());
  for (Element e : protected_set) CQCS_CHECK(e < a.universe_size());
  std::vector<Element> kept;
  kept.reserve(a.universe_size());
  for (Element e = 0; e < a.universe_size(); ++e) kept.push_back(e);
  Homomorphism retraction = IdentityMap(a);
  while (TryFold(a, kept, retraction, protected_set)) {
  }
  CoreResult result{InducedSubstructure(a, kept), kept, retraction};
  // Sanity: the retraction is an endomorphism of A with image = kept set.
  CQCS_CHECK(IsHomomorphism(a, a, result.retraction));
  return result;
}

bool IsCore(const Structure& a) {
  CoreResult r = ComputeCore(a);
  return r.kept_elements.size() == a.universe_size();
}

}  // namespace cqcs
