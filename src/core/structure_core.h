// Cores of finite structures. A structure is a core when every
// homomorphism from it to itself is injective (equivalently: it admits no
// homomorphism to a proper induced substructure). Cores are the semantic
// face of Chandra–Merlin query minimization: the canonical database of the
// minimized query is the core of the canonical database.

#ifndef CQCS_CORE_STRUCTURE_CORE_H_
#define CQCS_CORE_STRUCTURE_CORE_H_

#include "core/homomorphism.h"
#include "core/structure.h"

namespace cqcs {

/// The result of core computation.
struct CoreResult {
  /// The core as an induced substructure (re-indexed universe).
  Structure core;
  /// Elements of the original structure that form the core, ascending;
  /// core element i corresponds to original element kept_elements[i].
  std::vector<Element> kept_elements;
  /// A retraction: maps every original element onto the kept set
  /// (composition of the folding homomorphisms found along the way),
  /// expressed in original element ids.
  Homomorphism retraction;
};

/// Computes the core by repeatedly folding the structure onto the image of
/// a homomorphism into a one-element-smaller induced substructure.
/// Exponential in the worst case (each fold is an NP homomorphism test);
/// fine for the canonical databases of moderate queries.
/// `protected_elements` (optional) must stay fixed — pass the distinguished
/// elements of a canonical database so the core respects the query head:
/// folds must map each protected element to itself.
CoreResult ComputeCore(const Structure& a,
                       std::span<const Element> protected_elements = {});

/// True iff A is a core: no homomorphism to any proper induced substructure.
bool IsCore(const Structure& a);

}  // namespace cqcs

#endif  // CQCS_CORE_STRUCTURE_CORE_H_
