#include "datalog/evaluator.h"

#include "common/check.h"

namespace cqcs {

bool TupleSet::Insert(const std::vector<Element>& tuple) {
  CQCS_CHECK(tuple.size() == arity_);
  if (!set_.insert(tuple).second) return false;
  list_.push_back(tuple);
  return true;
}

bool TupleSet::Contains(const std::vector<Element>& tuple) const {
  return set_.count(tuple) > 0;
}

namespace {

constexpr Element kFree = static_cast<Element>(-1);

/// Evaluates one rule by backtracking over its body atoms. `delta_atom`
/// (an index into the body, or SIZE_MAX) restricts that IDB atom to the
/// delta relation — the semi-naive trick. Emits head tuples via `emit`.
class RuleEvaluator {
 public:
  RuleEvaluator(const DatalogRule& rule, const Structure& edb,
                const std::vector<TupleSet>& full,
                const std::vector<TupleSet>& delta, size_t delta_atom)
      : rule_(rule),
        edb_(edb),
        full_(full),
        delta_(delta),
        delta_atom_(delta_atom),
        binding_(rule.var_count, kFree) {}

  template <typename Emit>
  void Run(Emit emit) {
    Search(0, emit);
  }

 private:
  bool MatchAtom(const DatalogAtom& atom,
                 const std::vector<Element>& tuple,
                 std::vector<DatalogVar>& bound_here) {
    for (size_t p = 0; p < atom.args.size(); ++p) {
      DatalogVar v = atom.args[p];
      if (binding_[v] == kFree) {
        binding_[v] = tuple[p];
        bound_here.push_back(v);
      } else if (binding_[v] != tuple[p]) {
        for (DatalogVar w : bound_here) binding_[w] = kFree;
        bound_here.clear();
        return false;
      }
    }
    return true;
  }

  template <typename Emit>
  void Search(size_t atom_index, Emit emit) {
    if (atom_index == rule_.body.size()) {
      EmitHead(emit);
      return;
    }
    const DatalogAtom& atom = rule_.body[atom_index];
    std::vector<DatalogVar> bound_here;
    auto try_tuple = [&](const std::vector<Element>& tuple) {
      if (MatchAtom(atom, tuple, bound_here)) {
        Search(atom_index + 1, emit);
        for (DatalogVar w : bound_here) binding_[w] = kFree;
        bound_here.clear();
      }
    };
    if (atom.is_idb) {
      const TupleSet& source =
          atom_index == delta_atom_ ? delta_[atom.pred] : full_[atom.pred];
      for (const auto& tuple : source.tuples()) try_tuple(tuple);
    } else {
      const Relation& rel = edb_.relation(atom.pred);
      std::vector<Element> tuple(rel.arity());
      for (uint32_t t = 0; t < rel.tuple_count(); ++t) {
        std::span<const Element> tup = rel.tuple(t);
        tuple.assign(tup.begin(), tup.end());
        try_tuple(tuple);
      }
    }
  }

  /// Emits the head tuple; unsafe head variables (still free) range over
  /// the whole universe.
  template <typename Emit>
  void EmitHead(Emit emit) {
    std::vector<DatalogVar> unsafe;
    for (DatalogVar v : rule_.head.args) {
      if (binding_[v] == kFree) {
        bool seen = false;
        for (DatalogVar w : unsafe) seen |= (w == v);
        if (!seen) unsafe.push_back(v);
      }
    }
    std::vector<Element> head(rule_.head.args.size());
    EnumerateUnsafe(unsafe, 0, head, emit);
  }

  template <typename Emit>
  void EnumerateUnsafe(const std::vector<DatalogVar>& unsafe, size_t idx,
                       std::vector<Element>& head, Emit emit) {
    if (idx == unsafe.size()) {
      for (size_t p = 0; p < rule_.head.args.size(); ++p) {
        head[p] = binding_[rule_.head.args[p]];
      }
      emit(head);
      return;
    }
    for (Element e = 0; e < edb_.universe_size(); ++e) {
      binding_[unsafe[idx]] = e;
      EnumerateUnsafe(unsafe, idx + 1, head, emit);
    }
    binding_[unsafe[idx]] = kFree;
  }

  const DatalogRule& rule_;
  const Structure& edb_;
  const std::vector<TupleSet>& full_;
  const std::vector<TupleSet>& delta_;
  size_t delta_atom_;
  std::vector<Element> binding_;
};

}  // namespace

Result<DatalogResult> EvaluateDatalog(const DatalogProgram& program,
                                      const Structure& edb) {
  CQCS_RETURN_IF_ERROR(program.Validate());
  if (!edb.vocabulary()->Equals(*program.edb_vocabulary())) {
    return Status::InvalidArgument(
        "structure vocabulary differs from the program's EDB vocabulary");
  }
  DatalogResult result;
  std::vector<TupleSet>& full = result.idb_relations;
  std::vector<TupleSet> delta, next_delta;
  for (uint32_t i = 0; i < program.idb_count(); ++i) {
    full.emplace_back(program.idb(i).arity);
    delta.emplace_back(program.idb(i).arity);
    next_delta.emplace_back(program.idb(i).arity);
  }

  // Round 0: rules fire with empty IDBs — only rules whose body has no IDB
  // atoms (or whose IDB atoms could match nothing) contribute.
  //
  // Derivations are buffered and inserted after the rule finishes: a
  // recursive rule reads the very TupleSet it derives into, and inserting
  // during iteration would invalidate the tuple list being scanned.
  std::vector<std::vector<Element>> derived;
  auto run_rule = [&](const DatalogRule& rule, size_t delta_atom) {
    derived.clear();
    RuleEvaluator eval(rule, edb, full, delta, delta_atom);
    eval.Run(
        [&](const std::vector<Element>& head) { derived.push_back(head); });
    for (const auto& head : derived) {
      if (full[rule.head.pred].Insert(head)) {
        next_delta[rule.head.pred].Insert(head);
        ++result.derived_tuples;
      }
    }
  };

  for (const DatalogRule& rule : program.rules()) {
    run_rule(rule, SIZE_MAX);
  }
  for (uint32_t i = 0; i < program.idb_count(); ++i) {
    delta[i] = std::move(next_delta[i]);
    next_delta[i] = TupleSet(program.idb(i).arity);
  }

  // Semi-naive rounds: every rule firing must use at least one delta fact.
  bool changed = true;
  while (changed) {
    ++result.rounds;
    changed = false;
    for (const DatalogRule& rule : program.rules()) {
      for (size_t ai = 0; ai < rule.body.size(); ++ai) {
        if (!rule.body[ai].is_idb) continue;
        run_rule(rule, ai);
      }
    }
    for (uint32_t i = 0; i < program.idb_count(); ++i) {
      if (!next_delta[i].empty()) changed = true;
      delta[i] = std::move(next_delta[i]);
      next_delta[i] = TupleSet(program.idb(i).arity);
    }
  }
  return result;
}

Result<bool> GoalDerivable(const DatalogProgram& program,
                           const Structure& edb) {
  CQCS_ASSIGN_OR_RETURN(DatalogResult result, EvaluateDatalog(program, edb));
  return !result.idb_relations[program.goal()].empty();
}

}  // namespace cqcs
