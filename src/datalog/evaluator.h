// Bottom-up semi-naive evaluation of Datalog programs.
//
// Each IDB is computed as a least fixed point over a given EDB structure.
// Evaluation is polynomial in the size of the input structure for a fixed
// program — the fact that makes "¬CSP(B) expressible in Datalog" a
// tractability criterion (Section 4).

#ifndef CQCS_DATALOG_EVALUATOR_H_
#define CQCS_DATALOG_EVALUATOR_H_

#include <unordered_set>
#include <vector>

#include "core/structure.h"
#include "datalog/program.h"

namespace cqcs {

/// A set of tuples of a fixed arity (arity 0 allowed: the set is then either
/// empty or contains the single empty tuple).
class TupleSet {
 public:
  explicit TupleSet(uint32_t arity) : arity_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  /// Returns true if newly inserted.
  bool Insert(const std::vector<Element>& tuple);
  bool Contains(const std::vector<Element>& tuple) const;

  const std::vector<std::vector<Element>>& tuples() const { return list_; }

 private:
  struct VecHash {
    size_t operator()(const std::vector<Element>& v) const {
      size_t h = 0x9e3779b97f4a7c15ULL;
      for (Element e : v) h = (h ^ e) * 0x100000001b3ULL;
      return h;
    }
  };
  uint32_t arity_;
  std::unordered_set<std::vector<Element>, VecHash> set_;
  std::vector<std::vector<Element>> list_;  // insertion order
};

/// Evaluation result: one TupleSet per IDB predicate.
struct DatalogResult {
  std::vector<TupleSet> idb_relations;
  size_t rounds = 0;             ///< semi-naive iterations until fixpoint
  size_t derived_tuples = 0;     ///< total IDB facts derived
};

/// Runs the program to its least fixed point on `edb`. The structure must be
/// over the program's EDB vocabulary. Unsafe head variables range over the
/// universe of `edb`.
Result<DatalogResult> EvaluateDatalog(const DatalogProgram& program,
                                      const Structure& edb);

/// Convenience: does the (possibly 0-ary) goal predicate derive any fact?
Result<bool> GoalDerivable(const DatalogProgram& program,
                           const Structure& edb);

}  // namespace cqcs

#endif  // CQCS_DATALOG_EVALUATOR_H_
