#include "datalog/program.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.h"

namespace cqcs {

DatalogProgram::DatalogProgram(VocabularyPtr edb_vocabulary)
    : edb_(std::move(edb_vocabulary)) {
  CQCS_CHECK(edb_ != nullptr);
}

uint32_t DatalogProgram::AddIdb(std::string name, uint32_t arity) {
  CQCS_CHECK_MSG(!FindIdb(name).has_value(),
                 "duplicate IDB predicate '" << name << "'");
  CQCS_CHECK_MSG(!edb_->FindRelation(name).has_value(),
                 "IDB '" << name << "' collides with an EDB relation");
  idbs_.push_back(IdbPredicate{std::move(name), arity});
  return static_cast<uint32_t>(idbs_.size() - 1);
}

std::optional<uint32_t> DatalogProgram::FindIdb(std::string_view name) const {
  for (uint32_t i = 0; i < idbs_.size(); ++i) {
    if (idbs_[i].name == name) return i;
  }
  return std::nullopt;
}

namespace {

size_t CountDistinct(const std::vector<DatalogVar>& vars) {
  std::set<DatalogVar> s(vars.begin(), vars.end());
  return s.size();
}

}  // namespace

void DatalogProgram::AddRule(DatalogRule rule) {
  CQCS_CHECK_MSG(rule.head.is_idb, "rule head must be an IDB atom");
  CQCS_CHECK(rule.head.pred < idbs_.size());
  CQCS_CHECK(rule.head.args.size() == idbs_[rule.head.pred].arity);
  for (const DatalogAtom& atom : rule.body) {
    if (atom.is_idb) {
      CQCS_CHECK(atom.pred < idbs_.size());
      CQCS_CHECK(atom.args.size() == idbs_[atom.pred].arity);
    } else {
      CQCS_CHECK(atom.pred < edb_->size());
      CQCS_CHECK(atom.args.size() == edb_->arity(atom.pred));
    }
    for (DatalogVar v : atom.args) CQCS_CHECK(v < rule.var_count);
  }
  for (DatalogVar v : rule.head.args) CQCS_CHECK(v < rule.var_count);
  rules_.push_back(std::move(rule));
}

void DatalogProgram::SetGoal(uint32_t idb) {
  CQCS_CHECK(idb < idbs_.size());
  goal_ = idb;
  goal_set_ = true;
}

uint32_t DatalogProgram::MaxBodyWidth() const {
  size_t width = 0;
  for (const DatalogRule& rule : rules_) {
    std::set<DatalogVar> vars;
    for (const DatalogAtom& atom : rule.body) {
      vars.insert(atom.args.begin(), atom.args.end());
    }
    width = std::max(width, vars.size());
  }
  return static_cast<uint32_t>(width);
}

uint32_t DatalogProgram::MaxHeadWidth() const {
  size_t width = 0;
  for (const DatalogRule& rule : rules_) {
    width = std::max(width, CountDistinct(rule.head.args));
  }
  return static_cast<uint32_t>(width);
}

Status DatalogProgram::Validate() const {
  if (!goal_set_) return Status::InvalidArgument("no goal predicate set");
  if (rules_.empty()) return Status::InvalidArgument("program has no rules");
  return Status::OK();
}

std::string DatalogProgram::ToString() const {
  std::ostringstream out;
  auto print_atom = [&](const DatalogAtom& atom,
                        const std::vector<std::string>& names) {
    out << (atom.is_idb ? idbs_[atom.pred].name : edb_->name(atom.pred));
    out << "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) out << ", ";
      out << names[atom.args[i]];
    }
    out << ")";
  };
  for (const DatalogRule& rule : rules_) {
    print_atom(rule.head, rule.var_names);
    out << " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out << ", ";
      print_atom(rule.body[i], rule.var_names);
    }
    out << ".\n";
  }
  out << "# goal: " << idbs_[goal_].name << "\n";
  return out.str();
}

}  // namespace cqcs
