#include "datalog/parser.h"

#include <cctype>
#include <map>

#include "common/check.h"
#include "common/strings.h"

namespace cqcs {

namespace {

struct RawAtom {
  std::string name;
  std::vector<std::string> args;
};

struct RawRule {
  RawAtom head;
  std::vector<RawAtom> body;
};

class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipSpaceAndComments();
    return pos_ >= text_.size();
  }

  bool Consume(std::string_view token) {
    SkipSpaceAndComments();
    if (text_.substr(pos_).substr(0, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpaceAndComments();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string_view ReadIdentifier() {
    SkipSpaceAndComments();
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '\'';
      if (pos_ == start) {
        ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_';
      }
      if (!ok) break;
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  size_t position() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseAtom(Cursor& cursor, RawAtom* out) {
  std::string_view name = cursor.ReadIdentifier();
  if (name.empty()) {
    return Status::ParseError("expected a predicate name at position " +
                              std::to_string(cursor.position()));
  }
  out->name = std::string(name);
  if (!cursor.Consume("(")) {
    return Status::ParseError("expected '(' after '" + out->name + "'");
  }
  if (cursor.Consume(")")) return Status::OK();
  while (true) {
    std::string_view var = cursor.ReadIdentifier();
    if (var.empty()) {
      return Status::ParseError("expected a variable in atom '" + out->name +
                                "'");
    }
    out->args.emplace_back(var);
    if (cursor.Consume(")")) break;
    if (!cursor.Consume(",")) {
      return Status::ParseError("expected ',' or ')' in atom '" + out->name +
                                "'");
    }
  }
  return Status::OK();
}

Result<DatalogProgram> ParseImpl(std::string_view text, VocabularyPtr vocab,
                                 std::string_view goal_name) {
  Cursor cursor(text);
  std::vector<RawRule> raw_rules;
  while (!cursor.AtEnd()) {
    RawRule rule;
    CQCS_RETURN_IF_ERROR(ParseAtom(cursor, &rule.head));
    if (!cursor.Consume(":-")) {
      return Status::ParseError("expected ':-' after rule head '" +
                                rule.head.name + "'");
    }
    // Empty body: "head :- ." — the next token is the period.
    if (!cursor.Peek('.')) {
      while (true) {
        RawAtom atom;
        CQCS_RETURN_IF_ERROR(ParseAtom(cursor, &atom));
        rule.body.push_back(std::move(atom));
        if (!cursor.Consume(",")) break;
      }
    }
    if (!cursor.Consume(".")) {
      return Status::ParseError("expected '.' at the end of a rule");
    }
    raw_rules.push_back(std::move(rule));
  }
  if (raw_rules.empty()) {
    return Status::ParseError("program has no rules");
  }

  // Head predicates are IDBs; everything else is EDB.
  std::map<std::string, uint32_t> idb_arity;
  for (const RawRule& rule : raw_rules) {
    auto [it, inserted] = idb_arity.emplace(
        rule.head.name, static_cast<uint32_t>(rule.head.args.size()));
    if (!inserted && it->second != rule.head.args.size()) {
      return Status::ParseError("IDB '" + rule.head.name +
                                "' used with two different arities");
    }
  }
  if (vocab == nullptr) {
    auto inferred = std::make_shared<Vocabulary>();
    for (const RawRule& rule : raw_rules) {
      for (const RawAtom& atom : rule.body) {
        if (idb_arity.count(atom.name) > 0) continue;
        if (auto existing = inferred->FindRelation(atom.name)) {
          if (inferred->arity(*existing) != atom.args.size()) {
            return Status::ParseError("EDB '" + atom.name +
                                      "' used with two different arities");
          }
        } else {
          if (atom.args.empty()) {
            return Status::ParseError("EDB atom '" + atom.name +
                                      "' must have arguments");
          }
          inferred->AddRelation(atom.name,
                                static_cast<uint32_t>(atom.args.size()));
        }
      }
    }
    vocab = inferred;
  }

  DatalogProgram program(vocab);
  for (const auto& [name, arity] : idb_arity) {
    if (vocab->FindRelation(name).has_value()) {
      return Status::ParseError("predicate '" + name +
                                "' is both an EDB relation and a rule head");
    }
    program.AddIdb(name, arity);
  }
  for (const RawRule& raw : raw_rules) {
    DatalogRule rule;
    std::map<std::string, DatalogVar> vars;
    auto var_of = [&](const std::string& name) {
      auto [it, inserted] =
          vars.emplace(name, static_cast<DatalogVar>(vars.size()));
      if (inserted) rule.var_names.push_back(name);
      return it->second;
    };
    auto convert = [&](const RawAtom& raw_atom,
                       DatalogAtom* atom) -> Status {
      if (auto idb = program.FindIdb(raw_atom.name)) {
        atom->is_idb = true;
        atom->pred = *idb;
        if (raw_atom.args.size() != program.idb(*idb).arity) {
          return Status::ParseError("arity mismatch for IDB '" +
                                    raw_atom.name + "'");
        }
      } else if (auto edb = vocab->FindRelation(raw_atom.name)) {
        atom->is_idb = false;
        atom->pred = *edb;
        if (raw_atom.args.size() != vocab->arity(*edb)) {
          return Status::ParseError("arity mismatch for EDB '" +
                                    raw_atom.name + "'");
        }
      } else {
        return Status::NotFound("unknown predicate '" + raw_atom.name + "'");
      }
      for (const std::string& v : raw_atom.args) {
        atom->args.push_back(var_of(v));
      }
      return Status::OK();
    };
    CQCS_RETURN_IF_ERROR(convert(raw.head, &rule.head));
    if (!rule.head.is_idb) {
      return Status::ParseError("rule head '" + raw.head.name +
                                "' is an EDB relation");
    }
    for (const RawAtom& raw_atom : raw.body) {
      DatalogAtom atom;
      CQCS_RETURN_IF_ERROR(convert(raw_atom, &atom));
      rule.body.push_back(std::move(atom));
    }
    rule.var_count = static_cast<uint32_t>(vars.size());
    program.AddRule(std::move(rule));
  }

  if (goal_name.empty()) {
    // Head predicates are registered as IDBs while rules are added, so the
    // lookup cannot miss; keep a structured error rather than an abort in
    // case that invariant ever changes.
    auto goal = program.FindIdb(raw_rules.back().head.name);
    if (!goal.has_value()) {
      return Status::ParseError("default goal predicate '" +
                                std::string(raw_rules.back().head.name) +
                                "' is not an IDB of the program");
    }
    program.SetGoal(*goal);
  } else {
    auto goal = program.FindIdb(goal_name);
    if (!goal.has_value()) {
      return Status::NotFound("goal predicate '" + std::string(goal_name) +
                              "' is not an IDB of the program");
    }
    program.SetGoal(*goal);
  }
  CQCS_RETURN_IF_ERROR(program.Validate());
  return program;
}

}  // namespace

Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           VocabularyPtr edb_vocabulary,
                                           std::string_view goal_name) {
  return ParseImpl(text, std::move(edb_vocabulary), goal_name);
}

Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           std::string_view goal_name) {
  return ParseImpl(text, nullptr, goal_name);
}

}  // namespace cqcs
