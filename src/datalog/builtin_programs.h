// Datalog programs the paper uses as examples.

#ifndef CQCS_DATALOG_BUILTIN_PROGRAMS_H_
#define CQCS_DATALOG_BUILTIN_PROGRAMS_H_

#include "datalog/program.h"

namespace cqcs {

/// The paper's Section 4.1 example: non-2-colorability is expressible in
/// 4-Datalog by asserting an odd cycle:
///
///   P(X, Y) :- E(X, Y).
///   P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
///   Q() :- P(X, X).
///
/// P(x, y) holds iff there is a walk of odd length from x to y. The input
/// graph must be symmetric (undirected, encoded with both edge directions)
/// for Q to coincide with non-2-colorability.
DatalogProgram BuildNon2ColorabilityProgram();

}  // namespace cqcs

#endif  // CQCS_DATALOG_BUILTIN_PROGRAMS_H_
