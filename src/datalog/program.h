// Datalog programs (Section 4 of the paper).
//
// A program is a set of rules over intensional (IDB) and extensional (EDB)
// predicates; one IDB is the goal. Following the paper's definition of
// k-Datalog, rules may be "unsafe": a head variable need not occur in the
// body — such a variable ranges over the whole universe of the input
// structure (this is essential for the canonical game programs ρ_B of
// Theorem 4.7, whose base rules have empty bodies).

#ifndef CQCS_DATALOG_PROGRAM_H_
#define CQCS_DATALOG_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/vocabulary.h"

namespace cqcs {

/// Variables are rule-local dense indices.
using DatalogVar = uint32_t;

/// An atom in a rule: either an EDB atom (pred indexes the EDB vocabulary)
/// or an IDB atom (pred indexes the program's IDB table).
struct DatalogAtom {
  bool is_idb = false;
  uint32_t pred = 0;
  std::vector<DatalogVar> args;
};

/// One rule head :- body. Variables 0..var_count-1 are rule-local; var_names
/// exist for printing.
struct DatalogRule {
  DatalogAtom head;  // must be an IDB atom
  std::vector<DatalogAtom> body;
  uint32_t var_count = 0;
  std::vector<std::string> var_names;
};

/// An IDB predicate; arity 0 is allowed (Boolean goals).
struct IdbPredicate {
  std::string name;
  uint32_t arity = 0;
};

/// A Datalog program over a fixed EDB vocabulary.
class DatalogProgram {
 public:
  explicit DatalogProgram(VocabularyPtr edb_vocabulary);

  const VocabularyPtr& edb_vocabulary() const { return edb_; }

  /// Declares an IDB predicate; names must be unique and distinct from EDBs.
  uint32_t AddIdb(std::string name, uint32_t arity);
  std::optional<uint32_t> FindIdb(std::string_view name) const;
  const IdbPredicate& idb(uint32_t i) const { return idbs_[i]; }
  size_t idb_count() const { return idbs_.size(); }

  /// Appends a rule. CHECK-fails on malformed atoms (bad arity/pred/vars).
  void AddRule(DatalogRule rule);
  const std::vector<DatalogRule>& rules() const { return rules_; }

  /// Designates the goal predicate.
  void SetGoal(uint32_t idb) ;
  uint32_t goal() const { return goal_; }

  /// Width statistics: max distinct variables over all rule bodies / heads.
  /// A program is k-Datalog iff MaxBodyWidth() <= k and MaxHeadWidth() <= k
  /// (the paper's definition, Section 4.1).
  uint32_t MaxBodyWidth() const;
  uint32_t MaxHeadWidth() const;
  bool IsKDatalog(uint32_t k) const {
    return MaxBodyWidth() <= k && MaxHeadWidth() <= k;
  }

  /// Well-formedness: heads are IDBs, arities match, goal set.
  Status Validate() const;

  /// Rule-per-line rendering, parseable by ParseDatalogProgram.
  std::string ToString() const;

 private:
  VocabularyPtr edb_;
  std::vector<IdbPredicate> idbs_;
  std::vector<DatalogRule> rules_;
  uint32_t goal_ = 0;
  bool goal_set_ = false;
};

}  // namespace cqcs

#endif  // CQCS_DATALOG_PROGRAM_H_
