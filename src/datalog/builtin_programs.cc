#include "datalog/builtin_programs.h"

#include "common/check.h"
#include "datalog/parser.h"

namespace cqcs {

DatalogProgram BuildNon2ColorabilityProgram() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddRelation("E", 2);
  auto program = ParseDatalogProgram(
      "P(X, Y) :- E(X, Y).\n"
      "P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).\n"
      "Q() :- P(X, X).\n",
      vocab, "Q");
  CQCS_CHECK_MSG(program.ok(), program.status().ToString());
  return *std::move(program);
}

}  // namespace cqcs
