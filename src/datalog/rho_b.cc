#include "datalog/rho_b.h"

#include <cmath>

#include "common/check.h"

namespace cqcs {

namespace {

/// Decodes IDB index -> k-tuple over B's universe (base-n digits).
std::vector<Element> TupleOfIndex(size_t index, uint32_t k, size_t n) {
  std::vector<Element> b(k);
  for (uint32_t i = 0; i < k; ++i) {
    b[i] = static_cast<Element>(index % n);
    index /= n;
  }
  return b;
}

size_t IndexOfTuple(const std::vector<Element>& b, size_t n) {
  size_t index = 0;
  for (size_t i = b.size(); i-- > 0;) index = index * n + b[i];
  return index;
}

std::string TupleName(const std::vector<Element>& b) {
  // Built piecewise: GCC 12 mis-fires -Wrestrict on `"_" + to_string(e)`
  // at -O2 (PR105329), and the library builds -Werror.
  std::string name = "T";
  for (Element e : b) {
    name.push_back('_');
    name += std::to_string(e);
  }
  return name;
}

}  // namespace

Result<DatalogProgram> BuildSpoilerWinProgram(const Structure& b,
                                              uint32_t k) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const size_t n = b.universe_size();
  if (n == 0) {
    return Status::InvalidArgument(
        "empty target: the Spoiler wins trivially; no program needed");
  }
  double count = std::pow(static_cast<double>(n), static_cast<double>(k));
  if (count > static_cast<double>(1 << 20)) {
    return Status::Unsupported("|B|^k is too large for program generation");
  }
  const size_t num_tuples = static_cast<size_t>(count);

  DatalogProgram program(b.vocabulary());
  // IDB ids are aligned with tuple indices: AddIdb is called in order.
  for (size_t bi = 0; bi < num_tuples; ++bi) {
    program.AddIdb(TupleName(TupleOfIndex(bi, k, n)), k);
  }
  uint32_t goal = program.AddIdb("S", 0);

  // Variable convention per rule: vars 0..k-1 are x_1..x_k; var k is y.
  auto make_names = [&](uint32_t var_count) {
    std::vector<std::string> names;
    for (uint32_t v = 0; v < var_count; ++v) {
      if (v < k) {
        // Piecewise for the same -Wrestrict reason as TupleName above.
        std::string x(1, 'X');
        x += std::to_string(v + 1);
        names.push_back(std::move(x));
      } else {
        names.push_back("Y");
      }
    }
    return names;
  };

  const Vocabulary& vocab = *b.vocabulary();
  for (size_t bi = 0; bi < num_tuples; ++bi) {
    std::vector<Element> tuple_b = TupleOfIndex(bi, k, n);

    // Family 1: non-mapping positions. Head repeats x_i at positions i, j.
    for (uint32_t i = 0; i < k; ++i) {
      for (uint32_t j = i + 1; j < k; ++j) {
        if (tuple_b[i] == tuple_b[j]) continue;
        DatalogRule rule;
        rule.var_count = k;
        rule.var_names = make_names(k);
        rule.head.is_idb = true;
        rule.head.pred = static_cast<uint32_t>(bi);
        for (uint32_t s = 0; s < k; ++s) {
          rule.head.args.push_back(s == j ? i : s);
        }
        program.AddRule(std::move(rule));
      }
    }

    // Family 2: non-homomorphism witnesses. For every R and every index
    // tuple (i_1..i_m) with (b_{i_1}..b_{i_m}) ∉ R^B, pebbling a tuple of
    // R^A on those positions is a Spoiler win.
    for (RelId rel = 0; rel < vocab.size(); ++rel) {
      const uint32_t m = vocab.arity(rel);
      const Relation& rb = b.relation(rel);
      // Enumerate [k]^m.
      std::vector<uint32_t> idx(m, 0);
      while (true) {
        std::vector<Element> image(m);
        for (uint32_t p = 0; p < m; ++p) image[p] = tuple_b[idx[p]];
        if (!rb.Contains(image)) {
          DatalogRule rule;
          rule.var_count = k;
          rule.var_names = make_names(k);
          rule.head.is_idb = true;
          rule.head.pred = static_cast<uint32_t>(bi);
          for (uint32_t s = 0; s < k; ++s) rule.head.args.push_back(s);
          DatalogAtom atom;
          atom.is_idb = false;
          atom.pred = rel;
          for (uint32_t p = 0; p < m; ++p) atom.args.push_back(idx[p]);
          rule.body.push_back(std::move(atom));
          program.AddRule(std::move(rule));
        }
        // Increment the index tuple.
        uint32_t pos = 0;
        while (pos < m && ++idx[pos] == k) {
          idx[pos] = 0;
          ++pos;
        }
        if (pos == m) break;
      }
    }

    // Family 3: Spoiler repositions pebble j to a fresh point y; every
    // Duplicator answer c leads to a winning position.
    for (uint32_t j = 0; j < k; ++j) {
      DatalogRule rule;
      rule.var_count = k + 1;
      rule.var_names = make_names(k + 1);
      rule.head.is_idb = true;
      rule.head.pred = static_cast<uint32_t>(bi);
      for (uint32_t s = 0; s < k; ++s) rule.head.args.push_back(s);
      for (Element c = 0; c < n; ++c) {
        std::vector<Element> replaced = tuple_b;
        replaced[j] = c;
        DatalogAtom atom;
        atom.is_idb = true;
        atom.pred = static_cast<uint32_t>(IndexOfTuple(replaced, n));
        for (uint32_t s = 0; s < k; ++s) {
          atom.args.push_back(s == j ? k : s);  // y at position j
        }
        rule.body.push_back(std::move(atom));
      }
      program.AddRule(std::move(rule));
    }
  }

  // Goal: some placement of all k pebbles beats every Duplicator response.
  DatalogRule goal_rule;
  goal_rule.var_count = k;
  goal_rule.var_names = make_names(k);
  goal_rule.head.is_idb = true;
  goal_rule.head.pred = goal;
  for (size_t bi = 0; bi < num_tuples; ++bi) {
    DatalogAtom atom;
    atom.is_idb = true;
    atom.pred = static_cast<uint32_t>(bi);
    for (uint32_t s = 0; s < k; ++s) atom.args.push_back(s);
    goal_rule.body.push_back(std::move(atom));
  }
  program.AddRule(std::move(goal_rule));
  program.SetGoal(goal);
  return program;
}

}  // namespace cqcs
