// The canonical k-Datalog program ρ_B of Theorem 4.7(2): for a fixed finite
// structure B, ρ_B expresses "given A, does the Spoiler win the existential
// k-pebble game on A and B?".
//
// The program has one k-ary IDB T_b per k-tuple b ∈ B^k and a 0-ary goal S:
//   - for every i < j with b_i != b_j:      T_b(..x_i..x_i..) :- .
//     (the pebbled correspondence is not a mapping);
//   - for every relation R and index tuple (i_1..i_m) with
//     (b_{i_1},...,b_{i_m}) ∉ R^B:          T_b(x_1..x_k) :- R(x_{i_1}..x_{i_m}).
//     (the mapping is not a homomorphism);
//   - for every j <= k:  T_b(x_1..x_k) :- ⋀_{c ∈ B} T_{b[j<-c]}(x_1..y..x_k).
//     (the Spoiler repositions pebble j; every Duplicator answer loses);
//   - goal:              S :- ⋀_{b ∈ B^k} T_b(x_1..x_k).
//
// Heads of the first and third rule families contain variables that do not
// occur in the body — the paper's k-Datalog definition allows this, and the
// evaluator gives them universe-ranging semantics. Remark 4.10.1: when
// ¬CSP(B) is expressible in k-Datalog at all, ρ_B expresses it.

#ifndef CQCS_DATALOG_RHO_B_H_
#define CQCS_DATALOG_RHO_B_H_

#include "common/status.h"
#include "core/structure.h"
#include "datalog/program.h"

namespace cqcs {

/// Builds ρ_B for the given structure and pebble count k >= 1. The program
/// size is Θ(|B|^k · (k² + Σ_R k^{arity(R)} + k·|B|)), so keep B and k small.
/// Errors: InvalidArgument for k = 0; Unsupported when |B|^k exceeds 2^20
/// IDB predicates.
Result<DatalogProgram> BuildSpoilerWinProgram(const Structure& b, uint32_t k);

}  // namespace cqcs

#endif  // CQCS_DATALOG_RHO_B_H_
