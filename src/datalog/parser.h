// Parser for Datalog programs.
//
// One rule per line (or separated by '.'), '#' comments:
//
//   P(X, Y) :- E(X, Y).
//   P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
//   Q() :- P(X, X).
//
// Predicates that appear in some head are IDBs; all others must be EDB
// relations (of the supplied vocabulary, or inferred). Empty bodies are
// allowed ("T(X) :- ."), as are unsafe head variables (see program.h).
// The goal defaults to the head predicate of the last rule; pass
// `goal_name` to override.

#ifndef CQCS_DATALOG_PARSER_H_
#define CQCS_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/program.h"

namespace cqcs {

Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           VocabularyPtr edb_vocabulary,
                                           std::string_view goal_name = "");

Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           std::string_view goal_name = "");

}  // namespace cqcs

#endif  // CQCS_DATALOG_PARSER_H_
