#include "gen/generators.h"

#include <algorithm>

#include "common/check.h"

namespace cqcs {

namespace {

/// Built piecewise: GCC 12 mis-fires -Wrestrict on `"X" + to_string(i)`
/// at -O2 (PR105329), and the library builds -Werror.
std::string VarName(char prefix, size_t i) {
  std::string name(1, prefix);
  name += std::to_string(i);
  return name;
}

}  // namespace

VocabularyPtr MakeGraphVocabulary() {
  auto v = std::make_shared<Vocabulary>();
  v->AddRelation("E", 2);
  return v;
}

Structure StructureFromGraph(const VocabularyPtr& vocab, const Graph& g) {
  CQCS_CHECK(vocab->FindRelation("E").has_value());
  RelId e = *vocab->FindRelation("E");
  Structure s(vocab, g.vertex_count());
  for (uint32_t u = 0; u < g.vertex_count(); ++u) {
    for (uint32_t v : g.neighbors(u)) {
      s.AddTuple(e, {u, v});  // both directions arrive via both endpoints
    }
  }
  return s;
}

Structure DirectedCycleStructure(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    s.AddTuple(0, {static_cast<Element>(i),
                   static_cast<Element>((i + 1) % n)});
  }
  return s;
}

Structure UndirectedCycleStructure(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    auto u = static_cast<Element>(i);
    auto v = static_cast<Element>((i + 1) % n);
    s.AddTuple(0, {u, v});
    s.AddTuple(0, {v, u});
  }
  return s;
}

Structure PathStructure(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i + 1 < n; ++i) {
    s.AddTuple(0, {static_cast<Element>(i), static_cast<Element>(i + 1)});
  }
  return s;
}

Structure CliqueStructure(const VocabularyPtr& vocab, size_t n) {
  Structure s(vocab, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        s.AddTuple(0, {static_cast<Element>(i), static_cast<Element>(j)});
      }
    }
  }
  return s;
}

Structure GridStructure(const VocabularyPtr& vocab, size_t rows,
                        size_t cols) {
  Structure s(vocab, rows * cols);
  auto id = [cols](size_t r, size_t c) {
    return static_cast<Element>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        s.AddTuple(0, {id(r, c), id(r, c + 1)});
        s.AddTuple(0, {id(r, c + 1), id(r, c)});
      }
      if (r + 1 < rows) {
        s.AddTuple(0, {id(r, c), id(r + 1, c)});
        s.AddTuple(0, {id(r + 1, c), id(r, c)});
      }
    }
  }
  return s;
}

Structure RandomGraphStructure(const VocabularyPtr& vocab, size_t n, double p,
                               Rng& rng, bool symmetric) {
  Structure s(vocab, n);
  for (Element u = 0; u < n; ++u) {
    for (Element v = 0; v < n; ++v) {
      if (u == v) continue;
      if (symmetric && v < u) continue;
      if (rng.Chance(p)) {
        s.AddTuple(0, {u, v});
        if (symmetric) s.AddTuple(0, {v, u});
      }
    }
  }
  return s;
}

Structure RandomStructure(const VocabularyPtr& vocab, size_t n,
                          size_t tuples_per_relation, Rng& rng) {
  Structure s(vocab, n);
  std::vector<Element> tuple;
  for (RelId id = 0; id < vocab->size(); ++id) {
    tuple.resize(vocab->arity(id));
    for (size_t t = 0; t < tuples_per_relation; ++t) {
      for (auto& e : tuple) e = static_cast<Element>(rng.Below(n));
      s.AddTuple(id, tuple);
    }
  }
  s.DedupAll();
  return s;
}

Graph RandomTree(size_t n, Rng& rng) {
  Graph g(n);
  for (uint32_t v = 1; v < n; ++v) {
    g.AddEdge(v, static_cast<uint32_t>(rng.Below(v)));
  }
  return g;
}

Graph RandomKTree(size_t n, uint32_t k, Rng& rng) {
  CQCS_CHECK_MSG(n >= k + 1, "a k-tree needs at least k+1 vertices");
  Graph g(n);
  // Track the k-cliques available for attachment.
  std::vector<std::vector<uint32_t>> cliques;
  std::vector<uint32_t> base;
  for (uint32_t v = 0; v <= k; ++v) {
    for (uint32_t w = v + 1; w <= k; ++w) g.AddEdge(v, w);
    base.push_back(v);
  }
  // All k-subsets of the initial (k+1)-clique.
  for (uint32_t skip = 0; skip <= k; ++skip) {
    std::vector<uint32_t> clique;
    for (uint32_t v = 0; v <= k; ++v) {
      if (v != skip) clique.push_back(v);
    }
    cliques.push_back(std::move(clique));
  }
  for (uint32_t v = k + 1; v < n; ++v) {
    // Copy: push_back below may reallocate the clique list.
    const std::vector<uint32_t> attach = cliques[rng.Below(cliques.size())];
    for (uint32_t w : attach) g.AddEdge(v, w);
    // New k-cliques: attach with one vertex swapped for v.
    for (uint32_t swap = 0; swap < attach.size(); ++swap) {
      std::vector<uint32_t> clique = attach;
      clique[swap] = v;
      cliques.push_back(std::move(clique));
    }
  }
  return g;
}

Graph RandomPartialKTree(size_t n, uint32_t k, double keep, Rng& rng) {
  Graph full = RandomKTree(n, k, rng);
  Graph g(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : full.neighbors(u)) {
      if (v < u) continue;
      if (rng.Chance(keep)) g.AddEdge(u, v);
    }
  }
  return g;
}

void CloseUnder(BooleanRelation& r, ClosureOp op) {
  bool grew = true;
  while (grew) {
    grew = false;
    auto tuples = r.tuples();
    for (uint64_t x : tuples) {
      for (uint64_t y : tuples) {
        if (op == ClosureOp::kAnd || op == ClosureOp::kOr) {
          uint64_t c = op == ClosureOp::kAnd ? (x & y) : (x | y);
          if (!r.Contains(c)) {
            r.Add(c);
            grew = true;
          }
          continue;
        }
        for (uint64_t z : tuples) {
          uint64_t c = op == ClosureOp::kMajority
                           ? ((x & y) | (y & z) | (x & z))
                           : (x ^ y ^ z);
          if (!r.Contains(c)) {
            r.Add(c);
            grew = true;
          }
        }
      }
    }
  }
}

Structure RandomClosedBooleanStructure(const VocabularyPtr& vocab,
                                       uint32_t arity, ClosureOp op,
                                       size_t seeds, Rng& rng) {
  CQCS_CHECK(vocab->size() >= 1 && vocab->arity(0) == arity);
  BooleanRelation r(arity);
  for (size_t i = 0; i < seeds; ++i) r.Add(rng.Next() & r.FullMask());
  CloseUnder(r, op);
  Structure b(vocab, 2);
  Relation packed = r.ToRelation();
  for (uint32_t t = 0; t < packed.tuple_count(); ++t) {
    b.AddTuple(0, packed.tuple(t));
  }
  return b;
}

ConjunctiveQuery ChainQuery(const VocabularyPtr& vocab, size_t length) {
  CQCS_CHECK(length >= 1);
  ConjunctiveQuery q(vocab, "Q");
  RelId e = *vocab->FindRelation("E");
  std::vector<VarId> vars;
  for (size_t i = 0; i <= length; ++i) {
    vars.push_back(q.GetOrCreateVar(VarName('X', i)));
  }
  for (size_t i = 0; i < length; ++i) {
    q.AddAtom(e, {vars[i], vars[i + 1]});
  }
  q.SetHead({vars.front(), vars.back()});
  return q;
}

ConjunctiveQuery StarQuery(const VocabularyPtr& vocab, size_t leaves) {
  CQCS_CHECK(leaves >= 1);
  ConjunctiveQuery q(vocab, "Q");
  RelId e = *vocab->FindRelation("E");
  VarId center = q.GetOrCreateVar("C");
  for (size_t i = 0; i < leaves; ++i) {
    VarId leaf = q.GetOrCreateVar(VarName('L', i));
    q.AddAtom(e, {center, leaf});
  }
  q.SetHead({center});
  return q;
}

ConjunctiveQuery RandomQuery(const VocabularyPtr& vocab, size_t vars,
                             size_t atoms, Rng& rng) {
  CQCS_CHECK(vars >= 1 && atoms >= 1 && vocab->size() >= 1);
  ConjunctiveQuery q(vocab, "Q");
  std::vector<VarId> ids;
  for (size_t v = 0; v < vars; ++v) {
    ids.push_back(q.GetOrCreateVar(VarName('V', v)));
  }
  bool head_used = false;
  for (size_t a = 0; a < atoms; ++a) {
    RelId rel = static_cast<RelId>(rng.Below(vocab->size()));
    std::vector<VarId> args;
    for (uint32_t p = 0; p < vocab->arity(rel); ++p) {
      // Ensure the head variable occurs somewhere (safety).
      VarId v = (!head_used && a + 1 == atoms && p == 0)
                    ? ids[0]
                    : ids[rng.Below(ids.size())];
      head_used |= (v == ids[0]);
      args.push_back(v);
    }
    q.AddAtom(rel, std::move(args));
  }
  q.SetHead({ids[0]});
  CQCS_CHECK(q.Validate().ok());
  return q;
}

ConjunctiveQuery RandomTwoAtomQuery(const VocabularyPtr& vocab, size_t vars,
                                    Rng& rng) {
  CQCS_CHECK(vars >= 1 && vocab->size() >= 1);
  ConjunctiveQuery q(vocab, "Q");
  std::vector<VarId> ids;
  for (size_t v = 0; v < vars; ++v) {
    ids.push_back(q.GetOrCreateVar(VarName('V', v)));
  }
  bool head_used = false;
  for (RelId rel = 0; rel < vocab->size(); ++rel) {
    size_t count = 1 + rng.Below(2);  // at most two atoms per relation
    for (size_t c = 0; c < count; ++c) {
      std::vector<VarId> args;
      for (uint32_t p = 0; p < vocab->arity(rel); ++p) {
        VarId v = (!head_used && rel + 1 == vocab->size() && c + 1 == count &&
                   p == 0)
                      ? ids[0]
                      : ids[rng.Below(ids.size())];
        head_used |= (v == ids[0]);
        args.push_back(v);
      }
      q.AddAtom(rel, std::move(args));
    }
  }
  q.SetHead({ids[0]});
  CQCS_CHECK(q.Validate().ok());
  return q;
}

}  // namespace cqcs
