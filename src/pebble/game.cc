#include "pebble/game.h"

#include <algorithm>

#include "common/check.h"

namespace cqcs {

namespace {

/// Tuples of A lying entirely inside the element set `dom` (sorted).
std::vector<std::pair<RelId, uint32_t>> TuplesInside(
    const Structure& a, const std::vector<Element>& dom) {
  std::vector<std::pair<RelId, uint32_t>> out;
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = a.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      bool inside = true;
      for (Element e : r.tuple(t)) {
        if (!std::binary_search(dom.begin(), dom.end(), e)) {
          inside = false;
          break;
        }
      }
      if (inside) out.emplace_back(id, t);
    }
  }
  return out;
}

}  // namespace

Result<ExistentialPebbleGame> ExistentialPebbleGame::Create(
    const Structure& a, const Structure& b, uint32_t k) {
  if (k < 1) {
    return Status::InvalidArgument("the pebble game needs at least one pebble");
  }
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("pebble game requires a common vocabulary");
  }
  return ExistentialPebbleGame(a, b, k);
}

ExistentialPebbleGame::ExistentialPebbleGame(const Structure& a,
                                             const Structure& b, uint32_t k)
    : k_(k), a_size_(a.universe_size()), b_size_(b.universe_size()) {
  Build(a, b);
}

void ExistentialPebbleGame::Build(const Structure& a, const Structure& b) {
  const size_t n = a.universe_size();
  const size_t m = b.universe_size();
  const uint32_t max_size = static_cast<uint32_t>(
      std::min<size_t>(k_, n));

  // --- Enumerate all partial homomorphisms of size <= k. ---
  // For each domain (combination of A-elements) collect the A-tuples fully
  // inside it, then keep the assignments whose images are B-tuples.
  std::vector<Element> dom;
  std::vector<Element> assign;
  std::vector<Element> image;

  auto check_and_insert =
      [&](const std::vector<std::pair<RelId, uint32_t>>& tuples) {
        // Check every covered tuple maps into B.
        for (auto [rel, t] : tuples) {
          std::span<const Element> tup = a.relation(rel).tuple(t);
          image.resize(tup.size());
          for (size_t p = 0; p < tup.size(); ++p) {
            size_t pos = static_cast<size_t>(
                std::lower_bound(dom.begin(), dom.end(), tup[p]) -
                dom.begin());
            image[p] = assign[pos];
          }
          if (!b.relation(rel).Contains(image)) return;
        }
        PebblePosition pos;
        pos.reserve(dom.size());
        for (size_t i = 0; i < dom.size(); ++i) {
          pos.emplace_back(dom[i], assign[i]);
        }
        uint32_t id = static_cast<uint32_t>(maps_.size());
        index_.emplace(pos, id);
        maps_.push_back(std::move(pos));
      };

  auto emit_assignments = [&](const std::vector<std::pair<RelId, uint32_t>>&
                                  tuples) {
    assign.assign(dom.size(), 0);
    auto recurse = [&](auto&& self, size_t depth) -> void {
      if (depth == dom.size()) {
        check_and_insert(tuples);
        return;
      }
      for (Element bv = 0; bv < m; ++bv) {
        assign[depth] = bv;
        self(self, depth + 1);
      }
    };
    recurse(recurse, 0);
  };

  // Combinations of sizes 0..max_size.
  std::vector<Element> combo;
  auto enumerate_domains = [&](auto&& self, Element start,
                               uint32_t remaining) -> void {
    if (remaining == 0) {
      dom = combo;
      if (m == 0 && !dom.empty()) return;  // no assignments possible
      emit_assignments(TuplesInside(a, dom));
      return;
    }
    for (Element e = start; e + remaining <= n; ++e) {
      combo.push_back(e);
      self(self, e + 1, remaining - 1);
      combo.pop_back();
    }
  };
  for (uint32_t size = 0; size <= max_size; ++size) {
    enumerate_domains(enumerate_domains, 0, size);
  }
  stats_.total_positions = maps_.size();
  alive_.assign(maps_.size(), 1);

  // --- Greatest-fixpoint deletion. ---
  // Forth check for position id at element `a_elem`: does some alive
  // extension by (a_elem -> b') exist?
  auto has_support = [&](uint32_t id, Element a_elem) {
    PebblePosition extended = maps_[id];
    auto it = std::lower_bound(
        extended.begin(), extended.end(),
        std::make_pair(a_elem, static_cast<Element>(0)));
    size_t slot = static_cast<size_t>(it - extended.begin());
    extended.insert(it, {a_elem, 0});
    for (Element bv = 0; bv < m; ++bv) {
      extended[slot].second = bv;
      auto found = index_.find(extended);
      if (found != index_.end() && alive_[found->second]) return true;
    }
    return false;
  };

  std::vector<uint32_t> to_delete;
  auto kill = [&](uint32_t id) {
    if (!alive_[id]) return;
    alive_[id] = 0;
    ++stats_.deleted_positions;
    to_delete.push_back(id);
  };

  // Initial sweep: forth failures.
  for (uint32_t id = 0; id < maps_.size(); ++id) {
    if (maps_[id].size() >= max_size) continue;
    for (Element a_elem = 0; a_elem < n; ++a_elem) {
      bool in_dom = false;
      for (auto [ae, be] : maps_[id]) in_dom |= (ae == a_elem);
      if (in_dom) continue;
      if (!has_support(id, a_elem)) {
        kill(id);
        break;
      }
    }
  }

  // Cascade.
  while (!to_delete.empty()) {
    uint32_t id = to_delete.back();
    to_delete.pop_back();
    const PebblePosition f = maps_[id];
    // (2) restriction closure upward: every alive extension of f dies.
    if (f.size() < max_size) {
      PebblePosition extended = f;
      for (Element a_elem = 0; a_elem < n; ++a_elem) {
        bool in_dom = false;
        for (auto [ae, be] : f) in_dom |= (ae == a_elem);
        if (in_dom) continue;
        auto it = std::lower_bound(
            extended.begin(), extended.end(),
            std::make_pair(a_elem, static_cast<Element>(0)));
        size_t slot = static_cast<size_t>(it - extended.begin());
        extended.insert(it, {a_elem, 0});
        for (Element bv = 0; bv < m; ++bv) {
          extended[slot].second = bv;
          auto found = index_.find(extended);
          if (found != index_.end()) kill(found->second);
        }
        extended.erase(extended.begin() + static_cast<ptrdiff_t>(slot));
      }
    }
    // (1) forth re-check downward: each restriction may have lost its only
    // support at the removed element.
    for (size_t drop = 0; drop < f.size(); ++drop) {
      PebblePosition restricted = f;
      Element a_elem = restricted[drop].first;
      restricted.erase(restricted.begin() + static_cast<ptrdiff_t>(drop));
      auto found = index_.find(restricted);
      if (found == index_.end() || !alive_[found->second]) continue;
      if (!has_support(found->second, a_elem)) kill(found->second);
    }
  }

  PebblePosition empty;
  auto found = index_.find(empty);
  CQCS_CHECK(found != index_.end());
  duplicator_wins_ = alive_[found->second] != 0;
}

bool ExistentialPebbleGame::DuplicatorWinsFrom(
    const PebblePosition& position) const {
  PebblePosition normalized = position;
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()),
                   normalized.end());
  for (size_t i = 1; i < normalized.size(); ++i) {
    if (normalized[i].first == normalized[i - 1].first) return false;
  }
  CQCS_CHECK_MSG(normalized.size() <= k_, "position uses more than k pebbles");
  auto found = index_.find(normalized);
  if (found == index_.end()) return false;  // not a partial homomorphism
  return alive_[found->second] != 0;
}

Result<bool> SpoilerWinsExistentialKPebble(const Structure& a,
                                           const Structure& b, uint32_t k) {
  CQCS_ASSIGN_OR_RETURN(ExistentialPebbleGame game,
                        ExistentialPebbleGame::Create(a, b, k));
  return game.SpoilerWins();
}

}  // namespace cqcs
