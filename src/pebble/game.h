// The existential k-pebble game (Section 4.2 of the paper).
//
// The Duplicator wins the game on (A, B) iff there is a nonempty family of
// partial homomorphisms from A to B, with domains of size at most k, that is
// closed under restrictions and has the forth property up to k ([KV95]).
// This module computes the LARGEST such family by greatest-fixpoint
// deletion: start from all partial homomorphisms of size <= k, delete
//   (1) any f with |dom f| < k and some a ∉ dom f such that no extension
//       f ∪ {a -> b} survives (forth failure), and
//   (2) any f one of whose restrictions was deleted (restriction closure),
// until stable. The Duplicator wins iff the empty map survives. This is the
// bottom-up evaluation of the LFP sentence of Theorem 4.7, and runs in time
// polynomial in n^{2k} (Theorem 4.9).

#ifndef CQCS_PEBBLE_GAME_H_
#define CQCS_PEBBLE_GAME_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/structure.h"

namespace cqcs {

/// Statistics from the fixpoint computation.
struct PebbleGameStats {
  size_t total_positions = 0;    ///< partial homomorphisms enumerated
  size_t deleted_positions = 0;  ///< positions found losing for Duplicator
};

/// A partial map as sorted (a, b) pairs.
using PebblePosition = std::vector<std::pair<Element, Element>>;

/// Solver for one pair (A, B) and pebble count k.
class ExistentialPebbleGame {
 public:
  /// Enumerates all partial homomorphisms of size <= k — Θ(C(n,k) · m^k)
  /// work — and runs the deletion fixpoint. Errors (InvalidArgument) on
  /// vocabulary mismatch or k = 0, matching the Result<> contract of the
  /// other backends so the engine can fall back instead of aborting.
  static Result<ExistentialPebbleGame> Create(const Structure& a,
                                              const Structure& b, uint32_t k);

  /// True iff the Duplicator has a winning strategy.
  bool DuplicatorWins() const { return duplicator_wins_; }
  bool SpoilerWins() const { return !duplicator_wins_; }

  const PebbleGameStats& stats() const { return stats_; }

  /// Whether the position (a pebbling, as (a_i, b_i) pairs in any order) is
  /// winning for the Duplicator. Positions that are not partial
  /// homomorphisms (including conflicting repeated a_i) are losing.
  /// Precondition: at most k distinct a_i.
  bool DuplicatorWinsFrom(const PebblePosition& position) const;

 private:
  ExistentialPebbleGame(const Structure& a, const Structure& b, uint32_t k);

  struct PositionHash {
    size_t operator()(const PebblePosition& p) const {
      size_t h = 0x9e3779b97f4a7c15ULL;
      for (auto [a, b] : p) {
        h = (h ^ a) * 0x100000001b3ULL;
        h = (h ^ b) * 0x100000001b3ULL;
      }
      return h;
    }
  };

  void Build(const Structure& a, const Structure& b);

  uint32_t k_;
  size_t a_size_ = 0;
  size_t b_size_ = 0;
  bool duplicator_wins_ = false;
  PebbleGameStats stats_;
  std::vector<PebblePosition> maps_;
  std::vector<uint8_t> alive_;
  std::unordered_map<PebblePosition, uint32_t, PositionHash> index_;
};

/// Theorem 4.9's uniform algorithm: when ¬CSP(B) is k-Datalog expressible,
/// "Spoiler wins" decides CSP exactly. Independently of expressibility,
/// Spoiler winning always certifies that no homomorphism exists
/// (soundness); Duplicator winning means "no k-pebble obstruction".
/// Errors as in ExistentialPebbleGame::Create.
Result<bool> SpoilerWinsExistentialKPebble(const Structure& a,
                                           const Structure& b, uint32_t k);

}  // namespace cqcs

#endif  // CQCS_PEBBLE_GAME_H_
