#include "rel/ops.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace cqcs::rel {

namespace {

/// Workers actually dispatched for `parallel` (MorselPool caps the rest).
unsigned EffectiveWorkers(const OpParallel& parallel) {
  const unsigned w = parallel.num_threads == 0 ? 1 : parallel.num_threads;
  return std::min(w, MorselPool::kMaxThreads);
}

size_t EffectiveMorselRows(const OpParallel& parallel) {
  return parallel.morsel_rows == 0 ? MorselPool::kDefaultMorselRows
                                   : parallel.morsel_rows;
}

}  // namespace

size_t Semijoin(Table& left, std::span<const uint32_t> left_key_cols,
                const Table& right, const HashIndex& right_index,
                ResourceGovernor* governor, const OpParallel& parallel) {
  CQCS_CHECK(left_key_cols.size() == right_index.key_cols().size());
  const size_t before = left.row_count();
  if (before == 0) return 0;
  const unsigned workers = EffectiveWorkers(parallel);

  // Matches are recorded as flags, not appended: each worker owns the
  // flags of its morsel's rows, so writes are disjoint, and the final
  // ascending flag scan reproduces the sequential keep order exactly —
  // byte-identical compaction at every thread count.
  std::vector<uint8_t> keep_flags(before, 0);

  // Each body invocation (one morsel) owns its batch: per-worker batch
  // arrays would cost `workers` allocations per call even when the range
  // runs inline, and semijoins are called tens of thousands of times per
  // reduction pass.
  auto body = [&](unsigned, size_t begin, size_t end) {
    ProbeBatch batch;
    batch.Reset(static_cast<uint32_t>(left_key_cols.size()));
    auto flush = [&] {
      right_index.FindFirstBatch(right.data(), &batch);
      for (size_t i = 0; i < batch.size(); ++i) {
        keep_flags[batch.tag(i)] =
            batch.result(i) != HashIndex::kNone ? 1 : 0;
      }
      batch.Clear();
    };
    for (size_t r = begin; r < end; ++r) {
      if (governor != nullptr && ((r - begin) & 1023) == 0 &&
          !governor->Poll().ok()) {
        return false;  // tripped: abandon the pass, caller leaves `left` be
      }
      std::span<const Element> row = left.row(r);
      Element* key = batch.Append(static_cast<uint32_t>(r));
      for (size_t i = 0; i < left_key_cols.size(); ++i) {
        key[i] = row[left_key_cols[i]];
      }
      if (batch.full()) flush();
    }
    flush();
    return true;
  };
  const MorselCounters run = MorselPool::Shared().Run(
      before, workers, EffectiveMorselRows(parallel), body);
  if (parallel.counters != nullptr) parallel.counters->MergeFrom(run);

  if (governor != nullptr && governor->tripped()) {
    return 0;  // tripped: leave `left` untouched
  }
  std::vector<uint32_t> keep;
  keep.reserve(before);
  for (uint32_t r = 0; r < before; ++r) {
    if (keep_flags[r]) keep.push_back(r);
  }
  left.KeepRows(keep);
  return before - left.row_count();
}

void HashJoinAppend(const Table& left, std::span<const uint32_t> left_key_cols,
                    const Table& right, const HashIndex& right_index,
                    std::span<const uint32_t> right_extra_cols, Table* out,
                    ResourceGovernor* governor, const OpParallel& parallel) {
  CQCS_CHECK(out->width() == left.width() + right_extra_cols.size());
  CQCS_CHECK(left_key_cols.size() == right_index.key_cols().size());
  const size_t rows = left.row_count();
  if (rows == 0) return;
  const unsigned workers = EffectiveWorkers(parallel);
  const size_t morsel_rows = EffectiveMorselRows(parallel);

  // Parallel runs append into one shard table per *morsel* (not per
  // worker): morsel m covers left rows [m*morsel_rows, ...), so
  // concatenating shards in morsel order is the sequential output,
  // whichever worker produced each one. Runs the pool executes inline
  // (one worker, or a range that fits one morsel — the same condition
  // MorselPool::Run uses) skip the shards and append straight into
  // `out`, avoiding a full extra copy of the join output.
  const bool sharded = workers > 1 && rows > morsel_rows;
  std::vector<Table> shards;
  if (sharded) {
    shards.resize((rows + morsel_rows - 1) / morsel_rows);
    for (Table& shard : shards) {
      shard = Table(out->width());
      shard.AttachGovernor(governor);
    }
  }
  auto body = [&](unsigned, size_t begin, size_t end) {
    Table* target = sharded ? &shards[begin / morsel_rows] : out;
    ProbeBatch batch;
    batch.Reset(static_cast<uint32_t>(left_key_cols.size()));
    // Poll on the *output* cadence as well as the input one: a single
    // probe key can fan out into an unbounded match chain, and the output
    // rows are what eat memory.
    uint64_t tick = 0;
    bool ok = true;
    auto flush = [&] {
      right_index.FindFirstBatch(right.data(), &batch);
      for (size_t i = 0; i < batch.size() && ok; ++i) {
        const uint32_t r = batch.tag(i);
        for (uint32_t m = batch.result(i); m != HashIndex::kNone;
             m = right_index.Next(m)) {
          if (governor != nullptr && (++tick & 1023) == 0 &&
              !governor->Poll().ok()) {
            ok = false;
            break;
          }
          Element* cells = target->AppendRowSlot();
          std::span<const Element> l = left.row(r);
          std::span<const Element> rr = right.row(m);
          for (size_t c = 0; c < l.size(); ++c) cells[c] = l[c];
          for (size_t c = 0; c < right_extra_cols.size(); ++c) {
            cells[l.size() + c] = rr[right_extra_cols[c]];
          }
        }
      }
      batch.Clear();
    };
    for (size_t r = begin; r < end && ok; ++r) {
      if (governor != nullptr && (++tick & 1023) == 0 &&
          !governor->Poll().ok()) {
        return false;
      }
      std::span<const Element> lrow = left.row(r);
      Element* key = batch.Append(static_cast<uint32_t>(r));
      for (size_t i = 0; i < left_key_cols.size(); ++i) {
        key[i] = lrow[left_key_cols[i]];
      }
      if (batch.full()) flush();
    }
    if (ok) flush();
    return ok;
  };
  const MorselCounters run = MorselPool::Shared().Run(
      rows, workers, morsel_rows, body);
  if (parallel.counters != nullptr) parallel.counters->MergeFrom(run);

  if (!sharded) return;
  if (governor != nullptr && governor->tripped()) return;  // discard shards
  uint64_t tick = 0;
  for (const Table& shard : shards) {
    for (uint32_t r = 0; r < shard.row_count(); ++r) {
      if (governor != nullptr && (++tick & 1023) == 0 &&
          !governor->Poll().ok()) {
        return;
      }
      out->AppendRow(shard.row(r));
    }
  }
}

void ProjectDistinct(const Table& src, std::span<const uint32_t> cols,
                     Table* out, HashIndex* scratch, size_t max_rows,
                     ResourceGovernor* governor) {
  CQCS_CHECK(out->width() == cols.size());
  CQCS_CHECK(out->row_count() == 0);
  std::vector<uint32_t> identity(cols.size());
  for (uint32_t i = 0; i < cols.size(); ++i) identity[i] = i;
  scratch->Reset(out->width(), identity);
  std::vector<Element> key(cols.size());
  for (uint32_t r = 0; r < src.row_count() && out->row_count() < max_rows;
       ++r) {
    if (governor != nullptr && (r & 1023) == 1023 &&
        !governor->Poll().ok()) {
      return;
    }
    std::span<const Element> row = src.row(r);
    for (size_t i = 0; i < cols.size(); ++i) key[i] = row[cols[i]];
    if (scratch->FindFirst(out->data(), key) != HashIndex::kNone) continue;
    out->AppendRow(key);
    scratch->Add(out->data(), static_cast<uint32_t>(out->row_count() - 1));
  }
}

}  // namespace cqcs::rel
