#include "rel/ops.h"

#include <vector>

#include "common/check.h"

namespace cqcs::rel {

size_t Semijoin(Table& left, std::span<const uint32_t> left_key_cols,
                const Table& right, const HashIndex& right_index,
                ResourceGovernor* governor) {
  CQCS_CHECK(left_key_cols.size() == right_index.key_cols().size());
  const size_t before = left.row_count();
  std::vector<uint32_t> keep;
  keep.reserve(before);
  std::vector<Element> key(left_key_cols.size());
  for (uint32_t r = 0; r < before; ++r) {
    if (governor != nullptr && (r & 1023) == 0 && !governor->Poll().ok()) {
      return 0;  // tripped: leave `left` untouched
    }
    std::span<const Element> row = left.row(r);
    for (size_t i = 0; i < left_key_cols.size(); ++i) {
      key[i] = row[left_key_cols[i]];
    }
    if (right_index.FindFirst(right.data(), key) != HashIndex::kNone) {
      keep.push_back(r);
    }
  }
  left.KeepRows(keep);
  return before - left.row_count();
}

void HashJoinAppend(const Table& left, std::span<const uint32_t> left_key_cols,
                    const Table& right, const HashIndex& right_index,
                    std::span<const uint32_t> right_extra_cols, Table* out,
                    ResourceGovernor* governor) {
  CQCS_CHECK(out->width() == left.width() + right_extra_cols.size());
  CQCS_CHECK(left_key_cols.size() == right_index.key_cols().size());
  std::vector<Element> key(left_key_cols.size());
  // Poll on the *output* cadence as well as the input one: a single probe
  // key can fan out into an unbounded match chain, and the output rows
  // are what eat memory.
  uint64_t tick = 0;
  for (uint32_t r = 0; r < left.row_count(); ++r) {
    if (governor != nullptr && (++tick & 1023) == 0 &&
        !governor->Poll().ok()) {
      return;
    }
    std::span<const Element> lrow = left.row(r);
    for (size_t i = 0; i < left_key_cols.size(); ++i) {
      key[i] = lrow[left_key_cols[i]];
    }
    for (uint32_t m = right_index.FindFirst(right.data(), key);
         m != HashIndex::kNone; m = right_index.Next(m)) {
      if (governor != nullptr && (++tick & 1023) == 0 &&
          !governor->Poll().ok()) {
        return;
      }
      Element* cells = out->AppendRowSlot();
      // AppendRowSlot may reallocate out's buffer, so re-read lrow when
      // out aliases left — it never does in the backends, but stay safe.
      std::span<const Element> l = left.row(r);
      std::span<const Element> rr = right.row(m);
      for (size_t i = 0; i < l.size(); ++i) cells[i] = l[i];
      for (size_t i = 0; i < right_extra_cols.size(); ++i) {
        cells[l.size() + i] = rr[right_extra_cols[i]];
      }
    }
  }
}

void ProjectDistinct(const Table& src, std::span<const uint32_t> cols,
                     Table* out, HashIndex* scratch, size_t max_rows,
                     ResourceGovernor* governor) {
  CQCS_CHECK(out->width() == cols.size());
  CQCS_CHECK(out->row_count() == 0);
  std::vector<uint32_t> identity(cols.size());
  for (uint32_t i = 0; i < cols.size(); ++i) identity[i] = i;
  scratch->Reset(out->width(), identity);
  std::vector<Element> key(cols.size());
  for (uint32_t r = 0; r < src.row_count() && out->row_count() < max_rows;
       ++r) {
    if (governor != nullptr && (r & 1023) == 1023 &&
        !governor->Poll().ok()) {
      return;
    }
    std::span<const Element> row = src.row(r);
    for (size_t i = 0; i < cols.size(); ++i) key[i] = row[cols[i]];
    if (scratch->FindFirst(out->data(), key) != HashIndex::kNone) continue;
    out->AppendRow(key);
    scratch->Add(out->data(), static_cast<uint32_t>(out->row_count() - 1));
  }
}

}  // namespace cqcs::rel
