// rel::HashIndex — open-addressing hash index over flat row-major data,
// keyed on a subset of columns.
//
// The index is a view: it stores row ids only and compares keys against a
// caller-supplied base pointer (a rel::Table's buffer, or a core Relation's
// flattened tuple data — both are row-major Element arrays). Layout:
//
//   slots_  open-addressing array (power of two, linear probing); each
//           occupied slot holds the head row id of one distinct key
//   next_   per-row chain links: all rows sharing a key hang off the head
//
// One probe finds the first row with a key (O(1) expected); walking the
// chain enumerates every duplicate. No allocation per probe, no stored
// keys — equality reads the row buffer, so the index costs two uint32
// arrays regardless of key width.
//
// Two build modes share the structure: Build() bulk-loads rows [0, n), and
// Add() appends row ids one at a time (the treewidth DP inserts a row only
// after probing for its key, so tables stay deduplicated by key). Rows
// must be added densely: Add(base, r) requires r == size().

#ifndef CQCS_REL_HASH_INDEX_H_
#define CQCS_REL_HASH_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/governor.h"
#include "core/relation.h"

namespace cqcs::rel {

class HashIndex;

/// A strip of gathered keys probed together against one HashIndex.
///
/// Probe-at-a-time FindFirst stalls on one dependent cache miss per key:
/// hash, then wait for the bucket line. A batch splits that into two
/// passes — FindFirstBatch hashes every key and issues __builtin_prefetch
/// on its bucket line, then walks the buckets — so the strip's misses
/// overlap instead of serializing. That wins even single-threaded; the
/// morsel-parallel operators additionally keep one batch per worker.
///
/// Usage: Reset(key_width) once per (index, operator) pairing, then
/// gather keys into Append() slots until full(), FindFirstBatch, consume
/// result(i)/tag(i), Clear(), repeat. Capacity is fixed and small: large
/// enough to cover DRAM latency with independent loads, small enough that
/// the key strip and bucket lines stay resident in L1 between the passes.
class ProbeBatch {
 public:
  static constexpr size_t kCapacity = 64;

  /// Prepares for keys of `key_width` cells — must match the size of the
  /// probed index's key_cols.
  void Reset(uint32_t key_width) {
    key_width_ = key_width;
    keys_.resize(static_cast<size_t>(key_width) * kCapacity);
    count_ = 0;
  }

  bool full() const { return count_ == kCapacity; }
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  void Clear() { count_ = 0; }

  /// Claims the next key slot: the caller writes key_width cells through
  /// the returned pointer (gathering straight from its source row) and
  /// stamps the slot with `tag` (typically that row's id) to reconnect
  /// results with rows after the probe.
  Element* Append(uint32_t tag) {
    tags_[count_] = tag;
    return keys_.data() + static_cast<size_t>(key_width_) * count_++;
  }

  uint32_t tag(size_t i) const { return tags_[i]; }
  /// Valid after HashIndex::FindFirstBatch: first row matching key i, or
  /// HashIndex::kNone.
  uint32_t result(size_t i) const { return results_[i]; }

 private:
  friend class HashIndex;
  const Element* key(size_t i) const {
    return keys_.data() + static_cast<size_t>(key_width_) * i;
  }

  uint32_t key_width_ = 0;
  size_t count_ = 0;
  std::vector<Element> keys_;  // kCapacity keys, flat
  uint64_t hashes_[kCapacity];
  uint32_t tags_[kCapacity];
  uint32_t results_[kCapacity];
};

class HashIndex {
 public:
  static constexpr uint32_t kNone = UINT32_MAX;

  HashIndex() = default;
  ~HashIndex() { ReleaseCharge(); }
  HashIndex(const HashIndex& other);
  HashIndex& operator=(const HashIndex& other);
  HashIndex(HashIndex&& other) noexcept;
  HashIndex& operator=(HashIndex&& other) noexcept;

  /// Makes the index report its slot/chain capacity (bytes) to `governor`
  /// (nullptr detaches); same contract as Table::AttachGovernor.
  void AttachGovernor(ResourceGovernor* governor);

  /// Prepares an empty index over rows of `width` cells keyed on
  /// `key_cols` (column positions, each < width).
  void Reset(uint32_t width, std::vector<uint32_t> key_cols);

  /// Reset + bulk-load rows [0, row_count) of `base`.
  void Build(const Element* base, uint32_t width, uint32_t row_count,
             std::vector<uint32_t> key_cols);

  /// Adds the next row. `row` must equal size() (dense ids); `base` is the
  /// current buffer start (it may move between calls as the table grows).
  void Add(const Element* base, uint32_t row);

  /// First row whose key columns equal `key` (values in key_cols order),
  /// or kNone. Follow with Next() to walk all rows sharing the key.
  uint32_t FindFirst(const Element* base, std::span<const Element> key) const;

  /// Resolves every key in `batch` (results land in batch->result(i)):
  /// pass 1 hashes all keys and prefetches their bucket lines, pass 2
  /// linear-probes. Equivalent to FindFirst per key, but the bucket-line
  /// misses overlap across the strip. The batch's key width must equal
  /// key_cols().size().
  void FindFirstBatch(const Element* base, ProbeBatch* batch) const;

  /// Next row with the same key as `row`, or kNone.
  uint32_t Next(uint32_t row) const { return next_[row]; }

  /// Rows indexed so far.
  uint32_t size() const { return static_cast<uint32_t>(next_.size()); }

  std::span<const uint32_t> key_cols() const { return key_cols_; }

 private:
  uint64_t HashKey(std::span<const Element> key) const;
  uint64_t HashRow(const Element* base, uint32_t row) const;
  bool RowMatchesKey(const Element* base, uint32_t row,
                     std::span<const Element> key) const;
  bool RowsMatch(const Element* base, uint32_t a, uint32_t b) const;
  void Grow(const Element* base);
  /// Probes for `row`'s key: chains onto the head if present, else claims
  /// an empty slot.
  void Insert(const Element* base, uint32_t row);
  /// Brings the governor's view in line with slots_/next_ capacity.
  /// Inline fast path, same rationale as Table::SyncCharge: per-Add calls
  /// dominate and capacity only moves on growth steps.
  void SyncCharge() {
    size_t cap = (slots_.capacity() + next_.capacity()) * sizeof(uint32_t);
    if (cap != charged_bytes_) SyncChargeSlow(cap);
  }
  void SyncChargeSlow(size_t cap);
  void ReleaseCharge();

  uint32_t width_ = 0;
  std::vector<uint32_t> key_cols_;
  std::vector<uint32_t> slots_;  // heads; kNone = empty
  std::vector<uint32_t> next_;   // per-row same-key chain
  ResourceGovernor* governor_ = nullptr;
  size_t charged_bytes_ = 0;
};

}  // namespace cqcs::rel

#endif  // CQCS_REL_HASH_INDEX_H_
