// rel::Table — the flat column store under the polynomial backends.
//
// A Table is a bag of fixed-width rows of Elements in one contiguous
// buffer: row r occupies cells [r*width, (r+1)*width). What the columns
// *mean* (query variables, bag positions) is the caller's bookkeeping —
// the kernel only moves flat rows, so the Yannakakis tables and the
// treewidth DP tables share the same storage, operators, and hash index
// (rel/hash_index.h, rel/ops.h) with no per-row allocation anywhere:
// appending writes into the buffer, filtering compacts it in place, and
// keys are spans into it.
//
// Resource accounting: AttachGovernor makes the table report its buffer
// capacity (in bytes) to a ResourceGovernor — charged on growth, released
// on shrink and destruction, transferred on move, re-charged on copy.
// Detached tables (the default) pay one null check per append.

#ifndef CQCS_REL_TABLE_H_
#define CQCS_REL_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/governor.h"
#include "core/relation.h"

namespace cqcs::rel {

class Table {
 public:
  Table() = default;
  explicit Table(uint32_t width) : width_(width) {}
  ~Table() { ReleaseCharge(); }

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  /// Makes the table report buffer-capacity deltas to `governor` (nullptr
  /// detaches). The current capacity is charged/released immediately.
  void AttachGovernor(ResourceGovernor* governor);

  /// Cells per row. Width-0 tables are allowed (the nullary relation:
  /// either empty or the single empty row) and row_count() tracks the
  /// rows appended, not data_.size() / 0.
  uint32_t width() const { return width_; }
  size_t row_count() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  std::span<const Element> row(size_t r) const {
    return {data_.data() + r * width_, width_};
  }

  /// Appends a row (length must equal width()).
  void AppendRow(std::span<const Element> row);

  /// Appends an uninitialized row and returns the cell to fill — the
  /// zero-copy append used by operators that compose rows from several
  /// sources. The pointer is valid until the next append.
  Element* AppendRowSlot();

  /// Drops the last row (pairs with AppendRowSlot when a probe decides
  /// the freshly composed row was a duplicate).
  void PopRow();

  /// Keeps exactly the rows whose ids are listed (ascending), compacting
  /// in place. Used by the semijoin operator.
  void KeepRows(std::span<const uint32_t> keep);

  void Clear();

  /// Raw row-major buffer (row_count() * width() cells). The hash index
  /// probes this directly.
  const Element* data() const { return data_.data(); }

  void Reserve(size_t rows) {
    data_.reserve(rows * width_);
    if (governor_ != nullptr) SyncCharge();
  }

 private:
  /// Brings the governor's view in line with data_.capacity(). Inline
  /// fast path: appends dominate the polynomial backends, and capacity
  /// only changes on the vector's geometric growth steps — the common
  /// call is one multiply + compare, no out-of-line jump.
  void SyncCharge() {
    size_t cap = data_.capacity() * sizeof(Element);
    if (cap != charged_bytes_) SyncChargeSlow(cap);
  }
  void SyncChargeSlow(size_t cap);
  void ReleaseCharge();

  uint32_t width_ = 0;
  size_t rows_ = 0;
  std::vector<Element> data_;
  ResourceGovernor* governor_ = nullptr;
  size_t charged_bytes_ = 0;
};

}  // namespace cqcs::rel

#endif  // CQCS_REL_TABLE_H_
