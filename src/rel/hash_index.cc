#include "rel/hash_index.h"

#include "common/check.h"
#include "common/hash.h"

namespace cqcs::rel {

namespace {

/// Smallest power of two >= 2 * n (load factor <= 0.5), min 8.
size_t SlotCountFor(size_t n) {
  size_t slots = 8;
  while (slots < 2 * n) slots <<= 1;
  return slots;
}

}  // namespace

HashIndex::HashIndex(const HashIndex& other)
    : width_(other.width_),
      key_cols_(other.key_cols_),
      slots_(other.slots_),
      next_(other.next_),
      governor_(other.governor_) {
  if (governor_ != nullptr) SyncCharge();
}

HashIndex& HashIndex::operator=(const HashIndex& other) {
  if (this == &other) return *this;
  ReleaseCharge();
  width_ = other.width_;
  key_cols_ = other.key_cols_;
  slots_ = other.slots_;
  next_ = other.next_;
  governor_ = other.governor_;
  if (governor_ != nullptr) SyncCharge();
  return *this;
}

HashIndex::HashIndex(HashIndex&& other) noexcept
    : width_(other.width_),
      key_cols_(std::move(other.key_cols_)),
      slots_(std::move(other.slots_)),
      next_(std::move(other.next_)),
      governor_(other.governor_),
      charged_bytes_(other.charged_bytes_) {
  other.slots_.clear();
  other.next_.clear();
  other.charged_bytes_ = 0;
}

HashIndex& HashIndex::operator=(HashIndex&& other) noexcept {
  if (this == &other) return *this;
  ReleaseCharge();
  width_ = other.width_;
  key_cols_ = std::move(other.key_cols_);
  slots_ = std::move(other.slots_);
  next_ = std::move(other.next_);
  governor_ = other.governor_;
  charged_bytes_ = other.charged_bytes_;
  other.slots_.clear();
  other.next_.clear();
  other.charged_bytes_ = 0;
  return *this;
}

void HashIndex::AttachGovernor(ResourceGovernor* governor) {
  if (governor == governor_) {
    if (governor_ != nullptr) SyncCharge();
    return;
  }
  ReleaseCharge();
  governor_ = governor;
  if (governor_ != nullptr) SyncCharge();
}

void HashIndex::SyncChargeSlow(size_t cap) {
  if (cap > charged_bytes_) {
    governor_->ChargeBytes(cap - charged_bytes_);
  } else {
    governor_->ReleaseBytes(charged_bytes_ - cap);
  }
  charged_bytes_ = cap;
}

void HashIndex::ReleaseCharge() {
  if (charged_bytes_ > 0 && governor_ != nullptr) {
    governor_->ReleaseBytes(charged_bytes_);
  }
  charged_bytes_ = 0;
}

void HashIndex::Reset(uint32_t width, std::vector<uint32_t> key_cols) {
  for (uint32_t c : key_cols) CQCS_CHECK(c < width);
  width_ = width;
  key_cols_ = std::move(key_cols);
  slots_.assign(SlotCountFor(0), kNone);
  next_.clear();
  if (governor_ != nullptr) SyncCharge();
}

void HashIndex::Build(const Element* base, uint32_t width, uint32_t row_count,
                      std::vector<uint32_t> key_cols) {
  Reset(width, std::move(key_cols));
  slots_.assign(SlotCountFor(row_count), kNone);
  next_.reserve(row_count);
  if (governor_ != nullptr) SyncCharge();
  for (uint32_t r = 0; r < row_count; ++r) {
    next_.push_back(kNone);
    Insert(base, r);
  }
  if (governor_ != nullptr) SyncCharge();
}

void HashIndex::Add(const Element* base, uint32_t row) {
  CQCS_CHECK(row == size());
  if (2 * (next_.size() + 1) > slots_.size()) Grow(base);
  next_.push_back(kNone);
  Insert(base, row);
  if (governor_ != nullptr) SyncCharge();
}

uint64_t HashIndex::HashKey(std::span<const Element> key) const {
  return Fnv1a64(key.data(), key.size());
}

uint64_t HashIndex::HashRow(const Element* base, uint32_t row) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  const Element* cells = base + static_cast<size_t>(row) * width_;
  for (uint32_t c : key_cols_) {
    h ^= cells[c];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool HashIndex::RowMatchesKey(const Element* base, uint32_t row,
                              std::span<const Element> key) const {
  const Element* cells = base + static_cast<size_t>(row) * width_;
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    if (cells[key_cols_[i]] != key[i]) return false;
  }
  return true;
}

bool HashIndex::RowsMatch(const Element* base, uint32_t a, uint32_t b) const {
  const Element* ca = base + static_cast<size_t>(a) * width_;
  const Element* cb = base + static_cast<size_t>(b) * width_;
  for (uint32_t c : key_cols_) {
    if (ca[c] != cb[c]) return false;
  }
  return true;
}

void HashIndex::Insert(const Element* base, uint32_t row) {
  const uint64_t mask = slots_.size() - 1;
  size_t slot = HashRow(base, row) & mask;
  while (slots_[slot] != kNone) {
    if (RowsMatch(base, slots_[slot], row)) {
      // Same key: prepend to the chain (order within a key is irrelevant
      // to every operator).
      next_[row] = slots_[slot];
      slots_[slot] = row;
      return;
    }
    slot = (slot + 1) & mask;
  }
  slots_[slot] = row;
}

void HashIndex::Grow(const Element* base) {
  slots_.assign(SlotCountFor(next_.size() + 1), kNone);
  std::fill(next_.begin(), next_.end(), kNone);
  for (uint32_t r = 0; r < next_.size(); ++r) Insert(base, r);
}

uint32_t HashIndex::FindFirst(const Element* base,
                              std::span<const Element> key) const {
  CQCS_CHECK(key.size() == key_cols_.size());
  const uint64_t mask = slots_.size() - 1;
  size_t slot = HashKey(key) & mask;
  while (slots_[slot] != kNone) {
    if (RowMatchesKey(base, slots_[slot], key)) return slots_[slot];
    slot = (slot + 1) & mask;
  }
  return kNone;
}

void HashIndex::FindFirstBatch(const Element* base, ProbeBatch* batch) const {
  CQCS_CHECK(batch->key_width_ == key_cols_.size());
  const uint64_t mask = slots_.size() - 1;
  const size_t n = batch->size();
  const size_t kw = key_cols_.size();
  // Pass 1: hash every key, kick off its bucket-line load. The prefetches
  // are independent, so they all go to memory in parallel while pass 2 is
  // still working through earlier keys.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = Fnv1a64(batch->key(i), kw);
    batch->hashes_[i] = h;
    __builtin_prefetch(&slots_[h & mask], /*rw=*/0, /*locality=*/1);
  }
  // Pass 2: resolve, bucket line (usually) already in flight or landed.
  for (size_t i = 0; i < n; ++i) {
    size_t slot = batch->hashes_[i] & mask;
    const std::span<const Element> key(batch->key(i), kw);
    uint32_t found = kNone;
    while (slots_[slot] != kNone) {
      if (RowMatchesKey(base, slots_[slot], key)) {
        found = slots_[slot];
        break;
      }
      slot = (slot + 1) & mask;
    }
    batch->results_[i] = found;
  }
}

}  // namespace cqcs::rel
