#include "rel/hash_index.h"

#include "common/check.h"
#include "common/hash.h"

namespace cqcs::rel {

namespace {

/// Smallest power of two >= 2 * n (load factor <= 0.5), min 8.
size_t SlotCountFor(size_t n) {
  size_t slots = 8;
  while (slots < 2 * n) slots <<= 1;
  return slots;
}

}  // namespace

void HashIndex::Reset(uint32_t width, std::vector<uint32_t> key_cols) {
  for (uint32_t c : key_cols) CQCS_CHECK(c < width);
  width_ = width;
  key_cols_ = std::move(key_cols);
  slots_.assign(SlotCountFor(0), kNone);
  next_.clear();
}

void HashIndex::Build(const Element* base, uint32_t width, uint32_t row_count,
                      std::vector<uint32_t> key_cols) {
  Reset(width, std::move(key_cols));
  slots_.assign(SlotCountFor(row_count), kNone);
  next_.reserve(row_count);
  for (uint32_t r = 0; r < row_count; ++r) {
    next_.push_back(kNone);
    Insert(base, r);
  }
}

void HashIndex::Add(const Element* base, uint32_t row) {
  CQCS_CHECK(row == size());
  if (2 * (next_.size() + 1) > slots_.size()) Grow(base);
  next_.push_back(kNone);
  Insert(base, row);
}

uint64_t HashIndex::HashKey(std::span<const Element> key) const {
  return Fnv1a64(key.data(), key.size());
}

uint64_t HashIndex::HashRow(const Element* base, uint32_t row) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  const Element* cells = base + static_cast<size_t>(row) * width_;
  for (uint32_t c : key_cols_) {
    h ^= cells[c];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool HashIndex::RowMatchesKey(const Element* base, uint32_t row,
                              std::span<const Element> key) const {
  const Element* cells = base + static_cast<size_t>(row) * width_;
  for (size_t i = 0; i < key_cols_.size(); ++i) {
    if (cells[key_cols_[i]] != key[i]) return false;
  }
  return true;
}

bool HashIndex::RowsMatch(const Element* base, uint32_t a, uint32_t b) const {
  const Element* ca = base + static_cast<size_t>(a) * width_;
  const Element* cb = base + static_cast<size_t>(b) * width_;
  for (uint32_t c : key_cols_) {
    if (ca[c] != cb[c]) return false;
  }
  return true;
}

void HashIndex::Insert(const Element* base, uint32_t row) {
  const uint64_t mask = slots_.size() - 1;
  size_t slot = HashRow(base, row) & mask;
  while (slots_[slot] != kNone) {
    if (RowsMatch(base, slots_[slot], row)) {
      // Same key: prepend to the chain (order within a key is irrelevant
      // to every operator).
      next_[row] = slots_[slot];
      slots_[slot] = row;
      return;
    }
    slot = (slot + 1) & mask;
  }
  slots_[slot] = row;
}

void HashIndex::Grow(const Element* base) {
  slots_.assign(SlotCountFor(next_.size() + 1), kNone);
  std::fill(next_.begin(), next_.end(), kNone);
  for (uint32_t r = 0; r < next_.size(); ++r) Insert(base, r);
}

uint32_t HashIndex::FindFirst(const Element* base,
                              std::span<const Element> key) const {
  CQCS_CHECK(key.size() == key_cols_.size());
  const uint64_t mask = slots_.size() - 1;
  size_t slot = HashKey(key) & mask;
  while (slots_[slot] != kNone) {
    if (RowMatchesKey(base, slots_[slot], key)) return slots_[slot];
    slot = (slot + 1) & mask;
  }
  return kNone;
}

}  // namespace cqcs::rel
