#include "rel/table.h"

#include <algorithm>

#include "common/check.h"

namespace cqcs::rel {

void Table::AppendRow(std::span<const Element> row) {
  CQCS_CHECK(row.size() == width_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

Element* Table::AppendRowSlot() {
  data_.resize(data_.size() + width_);
  ++rows_;
  return data_.data() + (rows_ - 1) * width_;
}

void Table::PopRow() {
  CQCS_CHECK(rows_ > 0);
  data_.resize(data_.size() - width_);
  --rows_;
}

void Table::KeepRows(std::span<const uint32_t> keep) {
  size_t out = 0;
  for (uint32_t r : keep) {
    if (out != r) {
      std::copy_n(data_.begin() + r * width_, width_,
                  data_.begin() + out * width_);
    }
    ++out;
  }
  rows_ = out;
  data_.resize(rows_ * width_);
}

void Table::Clear() {
  rows_ = 0;
  data_.clear();
}

}  // namespace cqcs::rel
