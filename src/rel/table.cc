#include "rel/table.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cqcs::rel {

Table::Table(const Table& other)
    : width_(other.width_),
      rows_(other.rows_),
      data_(other.data_),
      governor_(other.governor_) {
  if (governor_ != nullptr) SyncCharge();
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  ReleaseCharge();
  width_ = other.width_;
  rows_ = other.rows_;
  data_ = other.data_;
  governor_ = other.governor_;
  if (governor_ != nullptr) SyncCharge();
  return *this;
}

Table::Table(Table&& other) noexcept
    : width_(other.width_),
      rows_(other.rows_),
      data_(std::move(other.data_)),
      governor_(other.governor_),
      charged_bytes_(other.charged_bytes_) {
  other.rows_ = 0;
  other.data_.clear();
  other.charged_bytes_ = 0;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  ReleaseCharge();
  width_ = other.width_;
  rows_ = other.rows_;
  data_ = std::move(other.data_);
  governor_ = other.governor_;
  charged_bytes_ = other.charged_bytes_;
  other.rows_ = 0;
  other.data_.clear();
  other.charged_bytes_ = 0;
  return *this;
}

void Table::AttachGovernor(ResourceGovernor* governor) {
  if (governor == governor_) {
    if (governor_ != nullptr) SyncCharge();
    return;
  }
  ReleaseCharge();
  governor_ = governor;
  if (governor_ != nullptr) SyncCharge();
}

void Table::SyncChargeSlow(size_t cap) {
  if (cap > charged_bytes_) {
    governor_->ChargeBytes(cap - charged_bytes_);
  } else {
    governor_->ReleaseBytes(charged_bytes_ - cap);
  }
  charged_bytes_ = cap;
}

void Table::ReleaseCharge() {
  if (charged_bytes_ > 0 && governor_ != nullptr) {
    governor_->ReleaseBytes(charged_bytes_);
  }
  charged_bytes_ = 0;
}

void Table::AppendRow(std::span<const Element> row) {
  CQCS_CHECK(row.size() == width_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
  if (governor_ != nullptr) SyncCharge();
}

Element* Table::AppendRowSlot() {
  data_.resize(data_.size() + width_);
  ++rows_;
  if (governor_ != nullptr) SyncCharge();
  return data_.data() + (rows_ - 1) * width_;
}

void Table::PopRow() {
  CQCS_CHECK(rows_ > 0);
  data_.resize(data_.size() - width_);
  --rows_;
}

void Table::KeepRows(std::span<const uint32_t> keep) {
  size_t out = 0;
  for (uint32_t r : keep) {
    if (out != r) {
      std::copy_n(data_.begin() + r * width_, width_,
                  data_.begin() + out * width_);
    }
    ++out;
  }
  rows_ = out;
  data_.resize(rows_ * width_);
}

void Table::Clear() {
  rows_ = 0;
  data_.clear();
}

}  // namespace cqcs::rel
