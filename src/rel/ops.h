// Relational operators over rel::Table + rel::HashIndex: semijoin, hash
// join, and distinct projection. These are the three moves the polynomial
// backends are made of — Yannakakis' reduction is semijoins, its
// witness/count/enumerate phases walk index chains, and its projection
// phase is join + project-distinct. None of them allocates per row: keys
// are spans into the flat buffers, outputs are appended via AppendRowSlot,
// and the semijoin compacts its input in place.

#ifndef CQCS_REL_OPS_H_
#define CQCS_REL_OPS_H_

#include <cstdint>
#include <span>

#include "common/governor.h"
#include "common/work_pool.h"
#include "rel/hash_index.h"
#include "rel/table.h"

namespace cqcs::rel {

// Each operator takes an optional ResourceGovernor polled on an input-row
// stride; on a trip the operator stops early without corrupting its
// output (Semijoin leaves `left` untouched, the append operators stop
// appending). Callers observe the sticky trip at their own next poll and
// discard the partial state — the operators themselves never fail.
//
// Semijoin and HashJoinAppend additionally take an OpParallel: with
// num_threads > 1 they split the left table into morsels on the shared
// MorselPool, each worker probing its row range through a private
// ProbeBatch, and merge per-morsel results in morsel order — so the output
// is byte-identical to the sequential run at every thread count. Governor
// polls happen at each morsel boundary and on the usual ~1024-row stride
// inside one, keeping trips clean mid-pass (no torn tables: Semijoin's
// keep-flags and the join's shards are discarded on a trip).

/// Threading knobs for the morsel-parallel operators. Defaults mean
/// "sequential, shared pool untouched".
struct OpParallel {
  /// Resolved worker count (callers apply ResolveThreadCount first);
  /// 0 or 1 = run inline on the caller.
  unsigned num_threads = 1;
  /// Rows per morsel; 0 = MorselPool::kDefaultMorselRows.
  size_t morsel_rows = 0;
  /// When non-null, the dispatch's worker/morsel/steal counters are
  /// merged in (MorselCounters::MergeFrom).
  MorselCounters* counters = nullptr;
};

/// left := left ⋉ right, in place: keeps the left rows whose key columns
/// (left_key_cols, values in the same order as the index's key_cols) have
/// at least one match in the indexed right table. Returns the number of
/// rows removed. `right_index` must be built over `right`'s buffer.
size_t Semijoin(Table& left, std::span<const uint32_t> left_key_cols,
                const Table& right, const HashIndex& right_index,
                ResourceGovernor* governor = nullptr,
                const OpParallel& parallel = {});

/// Appends to `out` one row per join match: the left row's cells followed
/// by the matching right row's `right_extra_cols`. out->width() must equal
/// left.width() + right_extra_cols.size(). `right_index` is keyed on the
/// right-side join columns; `left_key_cols` supplies the probe key in the
/// same column order.
void HashJoinAppend(const Table& left, std::span<const uint32_t> left_key_cols,
                    const Table& right, const HashIndex& right_index,
                    std::span<const uint32_t> right_extra_cols, Table* out,
                    ResourceGovernor* governor = nullptr,
                    const OpParallel& parallel = {});

/// Appends the distinct projections of `src` onto `cols` to the empty
/// table `*out` (width must equal cols.size()), stopping after max_rows
/// distinct rows. `scratch` is the dedup index and is Reset by the call;
/// on return it indexes *out's rows (keyed on all columns). Deliberately
/// sequential: output order is global first-occurrence order and the
/// dedup index mutates per accepted row, so there is no deterministic
/// morsel decomposition — callers parallelize the join feeding this
/// instead.
void ProjectDistinct(const Table& src, std::span<const uint32_t> cols,
                     Table* out, HashIndex* scratch,
                     size_t max_rows = SIZE_MAX,
                     ResourceGovernor* governor = nullptr);

}  // namespace cqcs::rel

#endif  // CQCS_REL_OPS_H_
