#include "serve/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace cqcs::serve {

namespace {

class UniformChooser : public KeyChooser {
 public:
  explicit UniformChooser(uint32_t n) : n_(n) {}
  uint32_t Next(Rng& rng) override {
    return static_cast<uint32_t>(rng.Below(n_));
  }
  uint32_t key_count() const override { return n_; }

 private:
  uint32_t n_;
};

/// Zipfian over [0, n) with parameter theta, via the rejection-free inverse
/// method of Gray et al. ("Quickly generating billion-record synthetic
/// databases"), the same construction YCSB's ZipfianGenerator uses. Key 0
/// is the hottest; the serving pool indexes carry no meaning beyond
/// identity, so no extra scramble is needed (and determinism stays obvious).
class ZipfianChooser : public KeyChooser {
 public:
  ZipfianChooser(uint32_t n, double theta) : n_(n), theta_(theta) {
    zetan_ = Zeta(n, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / n_, 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  }

  uint32_t Next(Rng& rng) override {
    const double u = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const double v =
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    const uint32_t k = static_cast<uint32_t>(v);
    return std::min(k, n_ - 1);
  }

  uint32_t key_count() const override { return n_; }

 private:
  static double Zeta(uint32_t n, double theta) {
    double sum = 0.0;
    for (uint32_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint32_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

/// Self-similar (b-model) distribution: the first h-fraction of the key
/// space receives 1-h of the draws, recursively (Gray et al. §3.3). Small
/// h = strong skew.
class SelfSimilarChooser : public KeyChooser {
 public:
  SelfSimilarChooser(uint32_t n, double skew) : n_(n), skew_(skew) {}

  uint32_t Next(Rng& rng) override {
    const double u = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53;
    const double v =
        static_cast<double>(n_) *
        std::pow(u, std::log(skew_) / std::log(1.0 - skew_));
    const uint32_t k = static_cast<uint32_t>(v);
    return std::min(k, n_ - 1);
  }

  uint32_t key_count() const override { return n_; }

 private:
  uint32_t n_;
  double skew_;
};

}  // namespace

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipfian: return "zipfian";
    case Distribution::kSelfSimilar: return "selfsimilar";
  }
  return "unknown";
}

std::optional<Distribution> ParseDistributionName(std::string_view name) {
  for (Distribution d : {Distribution::kUniform, Distribution::kZipfian,
                         Distribution::kSelfSimilar}) {
    if (name == DistributionName(d)) return d;
  }
  return std::nullopt;
}

std::unique_ptr<KeyChooser> MakeKeyChooser(Distribution d, uint32_t n,
                                           double param) {
  // cqcs-lint: allow(banned-abort): harness precondition; a WorkloadSpec is operator config, never service input
  CQCS_CHECK(n > 0);
  switch (d) {
    case Distribution::kUniform:
      return std::make_unique<UniformChooser>(n);
    case Distribution::kZipfian:
      return std::make_unique<ZipfianChooser>(
          n, std::clamp(param, 0.01, 0.99));
    case Distribution::kSelfSimilar:
      return std::make_unique<SelfSimilarChooser>(
          n, std::clamp(param, 0.01, 0.99));
  }
  return std::make_unique<UniformChooser>(n);
}

Workload::Workload(const WorkloadSpec& spec)
    : spec_(spec),
      rng_(spec.seed),
      query_chooser_(MakeKeyChooser(spec.query_dist, spec.num_queries,
                                    spec.query_skew)),
      db_chooser_(MakeKeyChooser(Distribution::kUniform, spec.num_databases,
                                 0.0)) {}

Op Workload::Next() {
  Op op;
  op.type = rng_.Chance(spec_.update_fraction) ? OpType::kUpdate
                                               : OpType::kRead;
  op.query = query_chooser_->Next(rng_);
  op.database = db_chooser_->Next(rng_);
  return op;
}

}  // namespace cqcs::serve
