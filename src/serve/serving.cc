#include "serve/serving.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "api/profile.h"
#include "common/saturating.h"
#include "core/io.h"
#include "cq/parser.h"
#include "cq/query.h"

namespace cqcs::serve {

namespace {

/// Decrements the in-flight request/byte counters when a request leaves the
/// engine, whatever path it took out.
class AdmissionGuard {
 public:
  AdmissionGuard(std::atomic<size_t>* in_flight,
                 std::atomic<size_t>* in_flight_bytes)
      : in_flight_(in_flight), in_flight_bytes_(in_flight_bytes) {}
  ~AdmissionGuard() {
    if (in_flight_ != nullptr) {
      in_flight_->fetch_sub(1, std::memory_order_relaxed);
    }
    if (bytes_reserved_ > 0) {
      in_flight_bytes_->fetch_sub(bytes_reserved_, std::memory_order_relaxed);
    }
  }
  void set_bytes_reserved(size_t bytes) { bytes_reserved_ = bytes; }

 private:
  std::atomic<size_t>* in_flight_;
  std::atomic<size_t>* in_flight_bytes_;
  size_t bytes_reserved_ = 0;
};

/// "unknown" results must never be cached: a governor trip or a node-limit
/// stop reflects this request's budget, not the instance's answer.
bool IsCacheable(const EngineResult& r) {
  return !r.stats.governor.tripped && !r.stats.search.limit_hit;
}

/// Trip causes that count as a quarantine strike: the query exhausted a
/// budget. A cancellation is the caller's doing, not the query's.
bool IsPoisonTrip(const GovernorRunStats& g) {
  return g.tripped && (g.cause == TripCause::kDeadline ||
                       g.cause == TripCause::kMemory ||
                       g.cause == TripCause::kFailpoint);
}

/// Quarantine map bound: past this many distinct texts, make room by
/// evicting an arbitrary entry (losing a strike count is harmless — the
/// query just gets fresh strikes).
constexpr size_t kMaxQuarantineEntries = 4096;

/// Ack-time name rule: exactly the bytes the WAL replay and the snapshot
/// parser accept (IsCatalogName), minus the cache-key separators. Anything
/// looser would acknowledge updates that recovery must then truncate as
/// corruption.
bool ValidDatabaseName(const std::string& name) {
  return IsCatalogName(name) && name.find_first_of("|#") == std::string::npos;
}

}  // namespace

std::string ServeStats::ToJson() const {
  std::ostringstream out;
  out << "{\"requests\":" << requests << ",\"served\":" << served
      << ",\"errors\":" << errors << ",\"plan_hits\":" << plan_hits
      << ",\"plan_misses\":" << plan_misses
      << ",\"plan_hit_rate\":" << PlanHitRate()
      << ",\"result_hits\":" << result_hits
      << ",\"result_misses\":" << result_misses
      << ",\"result_hit_rate\":" << ResultHitRate()
      << ",\"shed_queue\":" << shed_queue << ",\"shed_bytes\":" << shed_bytes
      << ",\"updates\":" << updates
      << ",\"invalidated_entries\":" << invalidated_entries
      << ",\"update_refusals\":" << update_refusals
      << ",\"quarantined\":" << quarantined
      << ",\"degraded\":" << (degraded ? "true" : "false")
      << ",\"recovered_dbs\":" << recovered_dbs
      << ",\"records_replayed\":" << records_replayed
      << ",\"wal_appends\":" << wal_appends
      << ",\"wal_append_failures\":" << wal_append_failures
      << ",\"snapshots\":" << snapshots
      << ",\"snapshot_failures\":" << snapshot_failures
      << ",\"poisoned_queries\":" << poisoned_queries
      << ",\"queue_depth\":" << queue_depth
      << ",\"queue_depth_peak\":" << queue_depth_peak
      << ",\"inflight_bytes\":" << inflight_bytes
      << ",\"plan_cache_entries\":" << plan_cache_entries
      << ",\"result_cache_entries\":" << result_cache_entries << "}";
  return out.str();
}

ServingEngine::ServingEngine(ServeOptions options)
    : options_(options),
      plan_cache_(options.plan_cache_entries),
      result_cache_(options.result_cache_entries) {}

Status ServingEngine::Open(RecoveryInfo* info) {
  if (options_.durability.data_dir.empty()) return Status::OK();
  std::vector<CatalogEntry> recovered;
  auto manager = DurabilityManager::Open(options_.durability, &recovered, info);
  if (!manager.ok()) return manager.status();
  MutexLock lock(registry_mu_);
  durability_ = *std::move(manager);
  registry_.clear();
  for (CatalogEntry& entry : recovered) {
    DbEntry& slot = registry_[entry.name];
    slot.structure = std::make_shared<const Structure>(std::move(entry.db));
    slot.version = entry.version;
  }
  MutexLock stats_lock(stats_mu_);
  stats_.recovered_dbs = registry_.size();
  stats_.records_replayed = info != nullptr ? info->records_replayed : 0;
  return Status::OK();
}

size_t ServingEngine::InvalidateFor(const std::string& name) {
  // Invalidation sweep: every cached result (and warm pair plan) computed
  // against any older version of this name. The version bump already made
  // those keys unreachable; the sweep frees them eagerly so a stale answer
  // cannot outlive the data it was computed from even via a key bug.
  const std::string segment = "|" + name + "#";
  size_t dropped = result_cache_.EraseIf([&](const CacheKey& key) {
    return key.canonical.find(segment) != std::string::npos;
  });
  dropped += plan_cache_.EraseIf([&](const CacheKey& key) {
    return key.canonical.find(segment) != std::string::npos;
  });
  // The data changed, so prior budget trips are stale evidence: a
  // quarantined query may be cheap against the new contents.
  MutexLock lock(quarantine_mu_);
  strikes_.clear();
  return dropped;
}

std::vector<ServingEngine::CatalogRef> ServingEngine::CatalogRefsLocked()
    const {
  std::vector<CatalogRef> catalog;
  catalog.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) {
    catalog.push_back(CatalogRef{name, entry.version, entry.structure});
  }
  std::sort(catalog.begin(), catalog.end(),
            [](const CatalogRef& a, const CatalogRef& b) {
              return a.name < b.name;
            });
  return catalog;
}

std::optional<std::pair<uint64_t, std::vector<ServingEngine::CatalogRef>>>
ServingEngine::MaybeRotateForSnapshotLocked() {
  if (durability_ == nullptr || !durability_->SnapshotDue()) {
    return std::nullopt;
  }
  uint64_t gen = 0;
  // Rotation failure is non-fatal (counted in stats): the log keeps
  // growing until a later rotation succeeds.
  if (!durability_->RotateLog(&gen).ok()) return std::nullopt;
  // The catalog handle is captured under registry_mu_, so it covers every
  // record appended before the rotation — the consistency point the
  // snapshot needs. The expensive serialization runs after the lock drops.
  return std::make_pair(gen, CatalogRefsLocked());
}

void ServingEngine::FinishSnapshot(uint64_t gen,
                                   const std::vector<CatalogRef>& refs) {
  std::vector<CatalogEntry> catalog;
  catalog.reserve(refs.size());
  for (const CatalogRef& ref : refs) {
    catalog.push_back(CatalogEntry{ref.name, ref.version, *ref.db});
  }
  // Failure is non-fatal (counted in the manager's snapshot_failures):
  // recovery replays the whole log chain, and the write is retried at the
  // next rotation.
  CQCS_IGNORE_RESULT(durability_->WriteSnapshot(gen, catalog));
}

Status ServingEngine::UpsertDatabase(const std::string& name, Structure db) {
  if (!ValidDatabaseName(name)) {
    return Status::InvalidArgument(
        "database names must be nonempty and free of '|', '#', "
        "whitespace, and control bytes (got \"" + name + "\")");
  }
  CQCS_RETURN_IF_ERROR(db.Validate());
  auto shared = std::make_shared<const Structure>(std::move(db));
  std::optional<std::pair<uint64_t, std::vector<CatalogRef>>> snapshot;
  {
    MutexLock lock(registry_mu_);
    if (degraded_) {
      MutexLock stats_lock(stats_mu_);
      ++stats_.update_refusals;
      return Status::Unavailable(
          "serving is degraded (the write-ahead log stopped accepting "
          "writes); updates are refused, reads keep serving");
    }
    auto it = registry_.find(name);
    const uint64_t next_version =
        it != registry_.end() ? it->second.version + 1 : 1;
    if (durability_ != nullptr) {
      // Log BEFORE apply: an update is acknowledged only once it is
      // durably in the WAL, and a refused append must leave the registry
      // untouched (never-resurrect contract).
      Status logged = durability_->AppendUpsert(name, next_version, *shared);
      if (!logged.ok()) {
        // A caller error (oversized record) refuses just this update; an
        // I/O failure means the log can no longer be trusted to
        // acknowledge anything — sticky degraded mode.
        if (logged.code() != StatusCode::kInvalidArgument) degraded_ = true;
        MutexLock stats_lock(stats_mu_);
        ++stats_.update_refusals;
        return logged;
      }
    }
    DbEntry& entry = registry_[name];
    entry.structure = std::move(shared);
    entry.version = next_version;
    snapshot = MaybeRotateForSnapshotLocked();
  }
  if (snapshot.has_value()) FinishSnapshot(snapshot->first, snapshot->second);
  const size_t dropped = InvalidateFor(name);
  {
    MutexLock lock(stats_mu_);
    ++stats_.updates;
    stats_.invalidated_entries += dropped;
  }
  return Status::OK();
}

Status ServingEngine::DropDatabase(const std::string& name) {
  std::optional<std::pair<uint64_t, std::vector<CatalogRef>>> snapshot;
  {
    MutexLock lock(registry_mu_);
    auto it = registry_.find(name);
    if (it == registry_.end()) {
      return Status::NotFound("no database named \"" + name + "\"");
    }
    if (degraded_) {
      MutexLock stats_lock(stats_mu_);
      ++stats_.update_refusals;
      return Status::Unavailable(
          "serving is degraded (the write-ahead log stopped accepting "
          "writes); updates are refused, reads keep serving");
    }
    if (durability_ != nullptr) {
      Status logged = durability_->AppendDrop(name);
      if (!logged.ok()) {
        if (logged.code() != StatusCode::kInvalidArgument) degraded_ = true;
        MutexLock stats_lock(stats_mu_);
        ++stats_.update_refusals;
        return logged;
      }
    }
    registry_.erase(it);
    snapshot = MaybeRotateForSnapshotLocked();
  }
  if (snapshot.has_value()) FinishSnapshot(snapshot->first, snapshot->second);
  const size_t dropped = InvalidateFor(name);
  MutexLock lock(stats_mu_);
  stats_.invalidated_entries += dropped;
  return Status::OK();
}

std::vector<std::pair<std::string, uint64_t>> ServingEngine::ListDatabases()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    MutexLock lock(registry_mu_);
    out.reserve(registry_.size());
    for (const auto& [name, entry] : registry_) {
      out.emplace_back(name, entry.version);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::shared_ptr<const Structure>> ServingEngine::GetDatabase(
    const std::string& name) const {
  MutexLock lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("no database named \"" + name + "\"");
  }
  return it->second.structure;
}

bool ServingEngine::degraded() const {
  MutexLock lock(registry_mu_);
  return degraded_ ||
         (durability_ != nullptr && durability_->stats().poisoned);
}

Result<ServingEngine::ResolvedDb> ServingEngine::ResolveDatabase(
    const std::string& name) const {
  MutexLock lock(registry_mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("no database named \"" + name + "\"");
  }
  ResolvedDb db;
  db.structure = it->second.structure;
  db.target_key = name + "#" + std::to_string(it->second.version);
  return db;
}

void ServingEngine::FillServeSnapshot(EngineResult* result, bool plan_hit,
                                      bool result_hit) const {
  ServeRequestStats& s = result->stats.serve;
  s.enabled = true;
  s.plan_cache_hit = plan_hit;
  s.result_cache_hit = result_hit;
  MutexLock lock(stats_mu_);
  s.shed_total = stats_.shed_queue + stats_.shed_bytes;
  s.queue_depth = in_flight_.load(std::memory_order_relaxed);
  s.plan_hit_rate = stats_.PlanHitRate();
  s.result_hit_rate = stats_.ResultHitRate();
}

Result<EngineResult> ServingEngine::Serve(const ServeRequest& request) {
  {
    MutexLock lock(stats_mu_);
    ++stats_.requests;
  }

  // ---- Queue-depth admission: shed, never stall. -------------------------
  const size_t depth = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  AdmissionGuard guard(&in_flight_, &in_flight_bytes_);
  {
    // The peak counts arrivals, shed or served: a shed request did occupy
    // this depth for the instant the bound was evaluated against it.
    MutexLock lock(stats_mu_);
    stats_.queue_depth_peak = std::max(stats_.queue_depth_peak, depth);
  }
  if (options_.max_queue_depth > 0 && depth > options_.max_queue_depth) {
    MutexLock lock(stats_mu_);
    ++stats_.shed_queue;
    return Status::ResourceExhausted(
        "request shed: queue depth " + std::to_string(depth) +
        " exceeds the admission bound " +
        std::to_string(options_.max_queue_depth));
  }

  // ---- Poison-query quarantine: refuse known budget-burners up front. ----
  if (options_.poison_strikes > 0) {
    MutexLock lock(quarantine_mu_);
    auto it = strikes_.find(request.query);
    if (it != strikes_.end() && it->second >= options_.poison_strikes) {
      MutexLock stats_lock(stats_mu_);
      ++stats_.quarantined;
      return Status::ResourceExhausted(
          "query quarantined: it tripped the resource budget " +
          std::to_string(it->second) +
          " times in a row; it will be retried after the next database "
          "update");
    }
  }

  // ---- Resolve the database and canonicalize the query. ------------------
  auto db = ResolveDatabase(request.database);
  if (!db.ok()) {
    MutexLock lock(stats_mu_);
    ++stats_.errors;
    return db.status();
  }
  auto query = ParseQuery(request.query, db->structure->vocabulary());
  if (!query.ok()) {
    MutexLock lock(stats_mu_);
    ++stats_.errors;
    return query.status();
  }
  // The canonical text (parse -> print) makes whitespace/naming variants of
  // one query share a plan; the vocabulary string keeps equal texts over
  // different schemas apart.
  const std::string canonical = ToString(*query);
  const std::string vocab_key = db->structure->vocabulary()->ToString();

  // ---- Result cache. -----------------------------------------------------
  std::ostringstream result_key_text;
  result_key_text << "res|" << HomTaskName(request.task)
                  << "|cl=" << options_.engine.count_limit
                  << "|mr=" << options_.engine.max_results
                  << "|pc=" << (options_.engine.project_count_only ? 1 : 0)
                  << "|" << db->target_key << "|" << canonical;
  const CacheKey result_key =
      CacheKey::FromCanonical(std::move(result_key_text).str());
  if (options_.result_cache_entries > 0) {
    if (std::shared_ptr<const EngineResult> hit = result_cache_.Get(result_key)) {
      EngineResult copy = *hit;
      {
        MutexLock lock(stats_mu_);
        ++stats_.result_hits;
        ++stats_.served;
      }
      FillServeSnapshot(&copy, /*plan_hit=*/false, /*result_hit=*/true);
      return copy;
    }
    MutexLock lock(stats_mu_);
    ++stats_.result_misses;
  }

  // ---- Plan cache: pair level first, then source level + rebind. ---------
  const CacheKey pair_key = CacheKey::FromCanonical(
      "pair|" + db->target_key + "|" + canonical);
  const CacheKey src_key =
      CacheKey::FromCanonical("src|" + vocab_key + "|" + canonical);
  std::shared_ptr<const HomProblem> problem;
  bool plan_hit = false;
  if (options_.plan_cache_entries > 0) {
    problem = plan_cache_.Get(pair_key);
    if (problem != nullptr) {
      plan_hit = true;  // target-side artifacts warm too
    } else if (std::shared_ptr<const HomProblem> src = plan_cache_.Get(src_key)) {
      // Same query, new database (or new version): share every source-side
      // artifact, rebuild only the target side.
      auto rebound = src->WithTarget(db->structure);
      if (rebound.ok()) {
        plan_hit = true;
        auto shared = std::make_shared<const HomProblem>(*std::move(rebound));
        plan_cache_.Put(pair_key, shared);
        problem = std::move(shared);
      }
      // A vocabulary mismatch here means the src entry belongs to another
      // schema despite the vocab key — fall through to a cold compile.
    }
  }
  if (problem == nullptr) {
    auto compiled = HomProblem::FromQuery(*query, *db->structure);
    if (!compiled.ok()) {
      MutexLock lock(stats_mu_);
      ++stats_.errors;
      return compiled.status();
    }
    auto shared = std::make_shared<const HomProblem>(*std::move(compiled));
    if (options_.plan_cache_entries > 0) {
      plan_cache_.Put(src_key, shared);
      plan_cache_.Put(pair_key, shared);
    }
    problem = std::move(shared);
  }
  {
    MutexLock lock(stats_mu_);
    if (plan_hit) {
      ++stats_.plan_hits;
    } else {
      ++stats_.plan_misses;
    }
  }

  // ---- In-flight bytes admission. ----------------------------------------
  // The same size-bound estimate the engine's pre-flight admission uses
  // (worst-case bytes of the per-atom Yannakakis materialization) doubles
  // as the queue policy's in-flight weight: cheap, monotone in the real
  // footprint, and already validated against the governor's accounting.
  if (options_.max_inflight_bytes > 0) {
    const size_t estimate =
        EstimateAcyclicBytes(problem->source(), *db->structure);
    size_t current = in_flight_bytes_.load(std::memory_order_relaxed);
    for (;;) {
      if (SatAdd(current, estimate, SIZE_MAX) > options_.max_inflight_bytes) {
        MutexLock lock(stats_mu_);
        ++stats_.shed_bytes;
        return Status::ResourceExhausted(
            "request shed: size-bound estimate " + std::to_string(estimate) +
            " bytes does not fit under the in-flight admission budget (" +
            std::to_string(options_.max_inflight_bytes) + " bytes, " +
            std::to_string(current) + " in flight)");
      }
      if (in_flight_bytes_.compare_exchange_weak(current, current + estimate,
                                                 std::memory_order_relaxed)) {
        break;
      }
    }
    guard.set_bytes_reserved(estimate);
  }

  // ---- Execute on the shared engine configuration. -----------------------
  HomEngine engine(options_.engine);
  auto result = engine.Run(*problem, request.task);
  if (!result.ok()) {
    MutexLock lock(stats_mu_);
    ++stats_.errors;
    return result.status();
  }
  if (options_.poison_strikes > 0) {
    MutexLock lock(quarantine_mu_);
    if (IsPoisonTrip(result->stats.governor)) {
      if (strikes_.count(request.query) == 0 &&
          strikes_.size() >= kMaxQuarantineEntries) {
        strikes_.erase(strikes_.begin());
      }
      ++strikes_[request.query];
    } else {
      strikes_.erase(request.query);  // a clean run resets the count
    }
  }
  if (options_.result_cache_entries > 0 && IsCacheable(*result)) {
    auto cached = std::make_shared<EngineResult>(*result);
    cached->stats.serve = ServeRequestStats{};  // hits refill it per request
    result_cache_.Put(result_key, std::move(cached));
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.served;
  }
  FillServeSnapshot(&*result, plan_hit, /*result_hit=*/false);
  return result;
}

ServeStats ServingEngine::stats() const {
  ServeStats snapshot;
  {
    MutexLock lock(stats_mu_);
    snapshot = stats_;
  }
  snapshot.queue_depth = in_flight_.load(std::memory_order_relaxed);
  snapshot.inflight_bytes = in_flight_bytes_.load(std::memory_order_relaxed);
  snapshot.plan_cache_entries = plan_cache_.size();
  snapshot.result_cache_entries = result_cache_.size();
  {
    MutexLock lock(quarantine_mu_);
    snapshot.poisoned_queries = 0;
    for (const auto& [text, count] : strikes_) {
      if (count >= options_.poison_strikes) ++snapshot.poisoned_queries;
    }
  }
  {
    MutexLock lock(registry_mu_);
    snapshot.degraded = degraded_;
    if (durability_ != nullptr) {
      const DurabilityStats d = durability_->stats();
      snapshot.degraded = snapshot.degraded || d.poisoned;
      snapshot.wal_appends = d.wal_appends;
      snapshot.wal_append_failures = d.wal_append_failures;
      snapshot.snapshots = d.snapshots;
      snapshot.snapshot_failures = d.snapshot_failures;
    }
  }
  return snapshot;
}

}  // namespace cqcs::serve
