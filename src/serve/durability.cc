#include "serve/durability.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/strings.h"

namespace cqcs::serve {

namespace {

/// A record longer than this is framing corruption, not data: the length
/// word decoded from a damaged header must not drive a giant allocation.
constexpr uint64_t kMaxRecordBytes = 1ull << 30;

constexpr size_t kHeaderBytes = 8;  // u32 length + u32 crc32c, both LE

void PutLe32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetLe32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

std::string FrameRecord(const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutLe32(static_cast<uint32_t>(payload.size()), &frame);
  PutLe32(Crc32c(payload), &frame);
  frame += payload;
  return frame;
}

/// The catalog-name constraint, for names arriving from a possibly-corrupt
/// log record AND for names being acknowledged into one — the same
/// predicate on both sides, or an acknowledged record would be truncated
/// as corruption on replay.
bool ValidRecordName(std::string_view name) { return IsCatalogName(name); }

/// The snapshot file is PrintCatalog output plus this whole-file CRC
/// footer; a snapshot without a matching footer is invalid, never "mostly
/// loaded".
constexpr size_t kSnapshotFooterBytes = 13;  // "crc " + 8 hex + "\n"

std::string SnapshotFooter(std::string_view payload) {
  static const char* kHex = "0123456789abcdef";
  uint32_t crc = Crc32c(payload);
  std::string footer = "crc ";
  for (int shift = 28; shift >= 0; shift -= 4) {
    footer.push_back(kHex[(crc >> shift) & 0xF]);
  }
  footer.push_back('\n');
  return footer;
}

Result<std::vector<CatalogEntry>> LoadSnapshot(const std::string& content) {
  if (content.size() < kSnapshotFooterBytes) {
    return Status::ParseError("snapshot too short for its CRC footer");
  }
  const std::string_view payload(content.data(),
                                 content.size() - kSnapshotFooterBytes);
  const std::string_view footer(content.data() + payload.size(),
                                kSnapshotFooterBytes);
  if (footer != SnapshotFooter(payload)) {
    return Status::ParseError("snapshot CRC footer mismatch");
  }
  return ParseCatalog(payload);
}

/// Parses a gen-numbered file name ("wal-12" with prefix "wal-").
std::optional<uint64_t> ParseGen(std::string_view name,
                                 std::string_view prefix) {
  if (!StartsWith(name, prefix)) return std::nullopt;
  uint64_t gen = 0;
  if (!ParseUint64(name.substr(prefix.size()), &gen)) return std::nullopt;
  return gen;
}

void ApplyUpsert(std::vector<CatalogEntry>* catalog, std::string name,
                 uint64_t version, Structure db) {
  for (CatalogEntry& entry : *catalog) {
    if (entry.name == name) {
      entry.version = version;
      entry.db = std::move(db);
      return;
    }
  }
  catalog->push_back(CatalogEntry{std::move(name), version, std::move(db)});
}

void ApplyDrop(std::vector<CatalogEntry>* catalog, std::string_view name) {
  catalog->erase(std::remove_if(catalog->begin(), catalog->end(),
                                [&](const CatalogEntry& e) {
                                  return e.name == name;
                                }),
                 catalog->end());
}

/// Decodes and applies one record payload. A false return means the
/// payload is not a well-formed command — framing said the bytes were
/// intact (CRC matched), but the content is garbage, so recovery treats it
/// exactly like a torn record: truncate from here.
bool ApplyRecord(std::string_view payload,
                 std::vector<CatalogEntry>* catalog) {
  const size_t eol = payload.find('\n');
  if (eol == std::string_view::npos) return false;
  auto tokens = SplitWhitespace(payload.substr(0, eol));
  if (tokens.size() == 3 && tokens[0] == "U") {
    if (!ValidRecordName(tokens[1])) return false;
    uint64_t version = 0;
    if (!ParseUint64(tokens[2], &version)) return false;
    auto db = ParseStructure(payload.substr(eol + 1));
    if (!db.ok() || !db->Validate().ok()) return false;
    ApplyUpsert(catalog, std::string(tokens[1]), version, *std::move(db));
    return true;
  }
  if (tokens.size() == 2 && tokens[0] == "D") {
    if (!ValidRecordName(tokens[1])) return false;
    ApplyDrop(catalog, tokens[1]);
    return true;
  }
  return false;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::optional<FsyncPolicy> ParseFsyncPolicyName(std::string_view name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "interval") return FsyncPolicy::kInterval;
  if (name == "never") return FsyncPolicy::kNever;
  return std::nullopt;
}

DurabilityManager::DurabilityManager(DurabilityOptions options,
                                     FileSystem* fs, Clock* clock)
    : options_(std::move(options)), fs_(fs), clock_(clock) {}

DurabilityManager::~DurabilityManager() {
  MutexLock lock(mu_);
  if (wal_ != nullptr && dirty_since_sync_) {
    // Clean shutdown closes the interval policy's loss window: an idle
    // writer's dirty tail would otherwise stay unsynced indefinitely.
    // Destructors cannot propagate; a failed final sync is the same loss
    // window the interval policy already accepts.
    CQCS_IGNORE_RESULT(wal_->Sync());
  }
}

std::string DurabilityManager::WalPath(uint64_t gen) const {
  return options_.data_dir + "/wal-" + std::to_string(gen);
}

std::string DurabilityManager::SnapshotPath(uint64_t gen) const {
  return options_.data_dir + "/snapshot-" + std::to_string(gen);
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options, std::vector<CatalogEntry>* recovered,
    RecoveryInfo* info) {
  FileSystem* fs = options.fs != nullptr ? options.fs : RealFileSystem();
  Clock* clock = options.clock != nullptr ? options.clock : RealClock();
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("durability requires a data_dir");
  }
  auto manager = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(options, fs, clock));
  CQCS_RETURN_IF_ERROR(fs->CreateDir(options.data_dir));

  RecoveryInfo local_info;
  RecoveryInfo& rec = info != nullptr ? *info : local_info;
  rec = RecoveryInfo{};
  recovered->clear();

  auto listed = fs->ListDir(options.data_dir);
  if (!listed.ok()) return listed.status();
  std::vector<uint64_t> snapshot_gens;
  std::vector<uint64_t> wal_gens;
  for (const std::string& name : *listed) {
    if (auto g = ParseGen(name, "snapshot-")) snapshot_gens.push_back(*g);
    if (auto g = ParseGen(name, "wal-")) wal_gens.push_back(*g);
  }
  std::sort(snapshot_gens.rbegin(), snapshot_gens.rend());

  // ---- Newest valid snapshot wins. ----------------------------------------
  uint64_t gen = 0;
  if (!snapshot_gens.empty()) {
    bool loaded = false;
    for (uint64_t g : snapshot_gens) {
      auto content = fs->ReadFile(manager->SnapshotPath(g));
      if (!content.ok()) {
        rec.warnings.push_back("snapshot-" + std::to_string(g) +
                               " unreadable: " + content.status().ToString());
        continue;
      }
      auto catalog = LoadSnapshot(*content);
      if (!catalog.ok()) {
        rec.warnings.push_back("snapshot-" + std::to_string(g) +
                               " invalid: " + catalog.status().ToString());
        continue;
      }
      *recovered = *std::move(catalog);
      gen = g;
      rec.snapshot_loaded = true;
      loaded = true;
      break;
    }
    if (!loaded) {
      // Guessing here could silently serve an old catalog as current;
      // refusing is the only honest move.
      return Status::Internal(
          "recovery: snapshots exist in " + options.data_dir +
          " but none is valid — refusing to guess at the catalog");
    }
  } else if (!wal_gens.empty()) {
    gen = *std::min_element(wal_gens.begin(), wal_gens.end());
    if (gen > 0) {
      rec.warnings.push_back(
          "log generations from " + std::to_string(gen) +
          " have no snapshot; replaying them over an empty catalog");
    }
  }
  const uint64_t max_wal_gen =
      wal_gens.empty() ? gen
                       : *std::max_element(wal_gens.begin(), wal_gens.end());

  // ---- Replay the chain of logs starting at `gen`. ------------------------
  // A snapshot write can fail (or a crash can land) between a rotation and
  // the snapshot landing, so any number of consecutive generations may
  // follow the newest valid snapshot; all of them hold acknowledged records
  // and all must replay, in order. A torn tail is truncated only on the
  // FINAL log (dying mid-append is normal); damage earlier in the chain, or
  // a hole in it, is external corruption — stop there, serve the prefix,
  // and poison the log so nothing dropped can be resurrected or reordered
  // by a later generation.
  size_t off = 0;
  for (;;) {
    const std::string wal_path = manager->WalPath(gen);
    if (!fs->Exists(wal_path)) {
      // Legitimate for the latest generation (crash before the rotated
      // log's first byte, or a fresh directory); a hole with logs beyond
      // it means generations were deleted out from under us.
      if (max_wal_gen > gen) {
        manager->poisoned_ = true;
        rec.warnings.push_back(
            "wal-" + std::to_string(gen) + " is missing but wal-" +
            std::to_string(max_wal_gen) +
            " exists; refusing to jump the hole — log poisoned, updates "
            "will be refused");
      }
      off = 0;
      break;
    }
    auto content = fs->ReadFile(wal_path);
    if (!content.ok()) return content.status();
    const std::string log = *std::move(content);
    const bool final_log = !fs->Exists(manager->WalPath(gen + 1));
    off = 0;
    while (off + kHeaderBytes <= log.size()) {
      const uint64_t len = GetLe32(log.data() + off);
      const uint32_t want_crc = GetLe32(log.data() + off + 4);
      if (len > kMaxRecordBytes || off + kHeaderBytes + len > log.size()) {
        break;  // torn mid-record (the normal kill -9 signature)
      }
      const std::string_view payload(log.data() + off + kHeaderBytes,
                                     static_cast<size_t>(len));
      if (Crc32c(payload) != want_crc) break;
      if (!ApplyRecord(payload, recovered)) break;
      off += kHeaderBytes + static_cast<size_t>(len);
      ++rec.records_replayed;
    }
    if (off < log.size()) {
      if (final_log) {
        rec.tail_truncated = true;
        rec.tail_bytes_dropped = log.size() - off;
        rec.warnings.push_back(
            "truncated torn/corrupt log tail: dropped " +
            std::to_string(rec.tail_bytes_dropped) + " byte(s) of wal-" +
            std::to_string(gen) + " at offset " + std::to_string(off));
        Status cut = fs->Truncate(wal_path, off);
        if (!cut.ok()) {
          // Can't repair the tail: appending after garbage would bury
          // future records behind it, so the log is poisoned (reads still
          // serve).
          manager->poisoned_ = true;
          rec.warnings.push_back("tail truncation failed (" + cut.ToString() +
                                 "); log poisoned — updates will be refused");
        }
      } else {
        // Not truncated: the bytes (and the later logs) stay on disk as
        // evidence; poisoning keeps this recovery idempotent.
        manager->poisoned_ = true;
        rec.warnings.push_back(
            "wal-" + std::to_string(gen) + " is corrupt at offset " +
            std::to_string(off) +
            " but later log generations exist; stopping replay here — log "
            "poisoned, updates will be refused");
      }
      break;
    }
    if (final_log) break;
    ++gen;
  }
  rec.generation = gen;
  manager->generation_ = gen;
  manager->good_offset_ = off;

  if (!manager->poisoned_) {
    auto wal = fs->OpenAppend(manager->WalPath(gen));
    if (!wal.ok()) {
      manager->poisoned_ = true;
      rec.warnings.push_back("cannot open log for append (" +
                             wal.status().ToString() +
                             "); updates will be refused");
    } else {
      manager->wal_ = *std::move(wal);
    }
  }
  manager->last_sync_ms_ = clock->NowMs();
  manager->stats_.poisoned = manager->poisoned_;
  manager->stats_.wal_bytes = manager->good_offset_;
  return manager;
}

Status DurabilityManager::AppendUpsert(const std::string& name,
                                       uint64_t version,
                                       const Structure& db) {
  if (!ValidRecordName(name)) {
    return Status::InvalidArgument(
        "database name \"" + name +
        "\" contains whitespace or control bytes; recovery would reject "
        "its record, so it must not be acknowledged");
  }
  std::string payload = "U " + name + " " + std::to_string(version) + "\n" +
                        PrintStructure(db);
  return AppendRecord(payload);
}

Status DurabilityManager::AppendDrop(const std::string& name) {
  if (!ValidRecordName(name)) {
    return Status::InvalidArgument(
        "database name \"" + name +
        "\" contains whitespace or control bytes; recovery would reject "
        "its record, so it must not be acknowledged");
  }
  return AppendRecord("D " + name + "\n");
}

Status DurabilityManager::AppendRecord(const std::string& payload) {
  MutexLock lock(mu_);
  if (poisoned_ || wal_ == nullptr) {
    ++stats_.wal_append_failures;
    return Status::Unavailable(
        "write-ahead log is poisoned; updates are refused (reads keep "
        "serving from memory)");
  }
  // Recovery treats a length word past the ceiling as framing corruption
  // and truncates the record AND everything after it — so an oversized
  // payload must be refused here, before any byte is written, never
  // acknowledged. (The ceiling also keeps the u32 length word exact.)
  const uint64_t limit =
      options_.max_record_bytes == 0
          ? kMaxRecordBytes
          : std::min<uint64_t>(options_.max_record_bytes, kMaxRecordBytes);
  if (payload.size() > limit) {
    return Status::InvalidArgument(
        "record payload of " + std::to_string(payload.size()) +
        " bytes exceeds the write-ahead log record limit of " +
        std::to_string(limit) + " bytes; the update is refused");
  }
  const std::string frame = FrameRecord(payload);
  Status written = wal_->Append(frame);
  if (!written.ok()) {
    ++stats_.wal_append_failures;
    RewindLog();
    return Status::Unavailable("write-ahead log append failed: " +
                               written.ToString());
  }
  bool synced = false;
  switch (options_.fsync) {
    case FsyncPolicy::kAlways:
      synced = true;
      break;
    case FsyncPolicy::kInterval: {
      const uint64_t now = clock_->NowMs();
      if (now - last_sync_ms_ >= options_.fsync_interval_ms) {
        synced = true;
      } else {
        dirty_since_sync_ = true;
      }
      break;
    }
    case FsyncPolicy::kNever:
      break;
  }
  if (synced) {
    Status s = wal_->Sync();
    if (!s.ok()) {
      // The bytes may or may not be durable; refusing AND rewinding keeps
      // the ack set and the log in agreement either way.
      ++stats_.wal_append_failures;
      RewindLog();
      return Status::Unavailable("write-ahead log fsync failed: " +
                                 s.ToString());
    }
    ++stats_.wal_syncs;
    last_sync_ms_ = clock_->NowMs();
    dirty_since_sync_ = false;
  }
  good_offset_ += frame.size();
  stats_.wal_bytes = good_offset_;
  ++stats_.wal_appends;
  ++records_since_snapshot_;
  return Status::OK();
}

void DurabilityManager::RewindLog() {
  // Called with mu_ held, after a failed append/fsync: the log may hold a
  // partial frame past good_offset_. Cut it back and reopen; if either
  // step fails the log stays poisoned so no future record lands after
  // garbage (recovery would truncate that garbage AND everything behind
  // it).
  wal_.reset();  // close (flushes the fd; content past good_offset_ is junk)
  Status cut = fs_->Truncate(WalPath(generation_), good_offset_);
  if (!cut.ok()) {
    poisoned_ = true;
    stats_.poisoned = true;
    return;
  }
  auto reopened = fs_->OpenAppend(WalPath(generation_));
  if (!reopened.ok()) {
    poisoned_ = true;
    stats_.poisoned = true;
    return;
  }
  wal_ = *std::move(reopened);
}

bool DurabilityManager::SnapshotDue() const {
  MutexLock lock(mu_);
  return options_.snapshot_every_records > 0 &&
         records_since_snapshot_ >= options_.snapshot_every_records;
}

Status DurabilityManager::RotateLog(uint64_t* new_gen) {
  MutexLock lock(mu_);
  if (poisoned_ || wal_ == nullptr) {
    ++stats_.snapshot_failures;
    return Status::Unavailable(
        "write-ahead log is poisoned; cannot rotate to a new generation");
  }
  if (dirty_since_sync_) {
    // The old log is never touched again after rotation, but its records
    // are acknowledged: close the interval policy's window before
    // abandoning the handle.
    Status s = wal_->Sync();
    if (!s.ok()) {
      ++stats_.snapshot_failures;
      return Status::Unavailable("log rotation: fsync of current log: " +
                                 s.ToString());
    }
    ++stats_.wal_syncs;
    dirty_since_sync_ = false;
  }
  const uint64_t next_gen = generation_ + 1;
  auto fresh = fs_->OpenTrunc(WalPath(next_gen));
  if (!fresh.ok()) {
    // Non-fatal: the current generation keeps accepting appends and the
    // rotation is retried by the next SnapshotDue() trigger.
    ++stats_.snapshot_failures;
    return Status::Internal("log rotation: new log open failed: " +
                            fresh.status().ToString());
  }
  wal_ = *std::move(fresh);
  generation_ = next_gen;
  good_offset_ = 0;
  records_since_snapshot_ = 0;
  stats_.wal_bytes = 0;
  if (new_gen != nullptr) *new_gen = next_gen;
  return Status::OK();
}

Status DurabilityManager::WriteSnapshot(
    uint64_t gen, const std::vector<CatalogEntry>& catalog) {
  // Deliberately does NOT hold mu_ across the serialization and file I/O:
  // appends (which went to wal-<gen> or later at rotation time) proceed
  // concurrently; this path only touches snapshot files and stale
  // generations.
  const std::string payload = PrintCatalog(catalog);
  const std::string snap_path = SnapshotPath(gen);
  const std::string tmp_path = snap_path + ".tmp";

  auto fail = [&](const std::string& what, const Status& cause) {
    // Best-effort cleanup: the primary error is `cause`; a stale .tmp file
    // is invisible to recovery.
    CQCS_IGNORE_RESULT(fs_->RemoveFile(tmp_path));
    MutexLock lock(mu_);
    ++stats_.snapshot_failures;
    return Status::Internal("snapshot: " + what + ": " + cause.ToString());
  };

  // Write-temp-then-rename: a crash at any point before the rename leaves
  // only a .tmp file recovery ignores.
  auto tmp = fs_->OpenTrunc(tmp_path);
  if (!tmp.ok()) return fail("open temp", tmp.status());
  Status s = (*tmp)->Append(payload);
  if (s.ok()) s = (*tmp)->Append(SnapshotFooter(payload));
  if (s.ok()) s = (*tmp)->Sync();
  if (s.ok()) s = (*tmp)->Close();
  if (!s.ok()) return fail("write temp", s);
  s = fs_->Rename(tmp_path, snap_path);
  if (!s.ok()) return fail("rename", s);

  // -- Commit point: the snapshot exists under its final name and recovery
  // will prefer it over everything below `gen`.
  // Best effort: the rename is already atomic, and recovery replays the
  // log chain if the directory entry is lost to a crash.
  CQCS_IGNORE_RESULT(fs_->SyncDir(options_.data_dir));
  {
    MutexLock lock(mu_);
    ++stats_.snapshots;
  }

  // Generations below the snapshot are now dead weight; removal is pure
  // cleanup and recovery ignores them either way.
  auto listed = fs_->ListDir(options_.data_dir);
  if (listed.ok()) {
    for (const std::string& name : *listed) {
      auto sg = ParseGen(name, "snapshot-");
      auto wg = ParseGen(name, "wal-");
      if ((sg.has_value() && *sg < gen) || (wg.has_value() && *wg < gen)) {
        // Best-effort prune: a generation that survives removal is ignored
        // by recovery (the newer snapshot shadows it).
        CQCS_IGNORE_RESULT(fs_->RemoveFile(options_.data_dir + "/" + name));
      }
    }
  }
  return Status::OK();
}

Status DurabilityManager::Snapshot(const std::vector<CatalogEntry>& catalog) {
  uint64_t gen = 0;
  CQCS_RETURN_IF_ERROR(RotateLog(&gen));
  return WriteSnapshot(gen, catalog);
}

DurabilityStats DurabilityManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

uint64_t DurabilityManager::generation() const {
  MutexLock lock(mu_);
  return generation_;
}

}  // namespace cqcs::serve
