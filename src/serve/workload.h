// YCSB-style workload generation for the serving benchmarks and tests.
//
// A serving claim needs a traffic model, not a single query: this module
// turns a small pool of queries and databases into an op stream with
// controllable skew and read/update mix, in the load()/get_next() spirit of
// the codes-workload API (SNIPPETS.md) and the BBTree zipfian harness.
//
//   KeyChooser     pluggable distribution over [0, n): uniform, zipfian
//                  (Gray et al.'s incremental-zeta algorithm, theta in
//                  [0.5, 0.99] like the YCSB presets), self-similar
//                  (80/20-style: the hottest `skew` fraction of the keys
//                  draws 1-skew of the traffic, recursively).
//   WorkloadSpec   pool sizes + distribution + update fraction.
//   Workload       the op stream: Next() yields {kRead|kUpdate, query, db}.
//
// Everything is seeded and deterministic, so a bench arm and its oracle
// re-check replay the exact same traffic.

#ifndef CQCS_SERVE_WORKLOAD_H_
#define CQCS_SERVE_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "common/rng.h"

namespace cqcs::serve {

/// Which distribution a KeyChooser draws from.
enum class Distribution {
  kUniform,
  kZipfian,      ///< param = theta (0 < theta < 1; YCSB uses 0.99)
  kSelfSimilar,  ///< param = skew h (the hot h-fraction gets 1-h of draws)
};

/// "uniform" / "zipfian" / "selfsimilar" — stable names for flags and JSON.
const char* DistributionName(Distribution d);
/// Inverse of DistributionName; nullopt for unknown names.
std::optional<Distribution> ParseDistributionName(std::string_view name);

/// A distribution over keys [0, n). Implementations are deterministic
/// functions of the Rng stream passed to Next().
class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  virtual uint32_t Next(Rng& rng) = 0;
  virtual uint32_t key_count() const = 0;
};

/// Factory over Distribution. `param` is ignored for kUniform. n must be
/// positive; zipfian theta outside (0,1) and self-similar skew outside
/// (0,1) are clamped to the YCSB-typical range.
std::unique_ptr<KeyChooser> MakeKeyChooser(Distribution d, uint32_t n,
                                           double param);

enum class OpType {
  kRead,    ///< serve a (query, database) request
  kUpdate,  ///< mutate + re-register the database (invalidates results)
};

/// One operation of the stream.
struct Op {
  OpType type = OpType::kRead;
  uint32_t query = 0;     ///< index into the query pool
  uint32_t database = 0;  ///< index into the database pool
};

/// Pool sizes and mix knobs. Queries are drawn with the configured skew
/// (the repeated-query assumption the plan cache monetizes); databases are
/// drawn uniformly; each op is an update with probability update_fraction.
struct WorkloadSpec {
  uint32_t num_queries = 16;
  uint32_t num_databases = 4;
  Distribution query_dist = Distribution::kZipfian;
  double query_skew = 0.99;
  double update_fraction = 0.0;  ///< 0 = read-only, 0.5 = update-heavy
  uint64_t seed = 0x5e12;
};

/// The op stream. Construct once ("load"), then call Next() per op.
class Workload {
 public:
  explicit Workload(const WorkloadSpec& spec);

  Op Next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<KeyChooser> query_chooser_;
  std::unique_ptr<KeyChooser> db_chooser_;
};

}  // namespace cqcs::serve

#endif  // CQCS_SERVE_WORKLOAD_H_
