// ServingEngine: a long-lived front end over one shared HomEngine for
// repeated queries against slowly changing databases.
//
// The engine-per-call API (api/engine.h) recompiles everything per request;
// production traffic is millions of *repeated* queries over a pool of
// databases that change rarely. The serving layer adds exactly the three
// pieces that monetize that shape:
//
//   Plan cache    bounded LRU keyed by the canonical query text (full
//                 content, collision-safe — serve/cache.h). Two levels
//                 share one cache: a source-plan entry per canonical query
//                 (the compiled HomProblem source side: canonical query,
//                 GYO verdict, decomposition) and a pair-plan entry per
//                 (query, database version) whose target-side artifacts
//                 (CSP network, profile) are warm too. A query seen against
//                 a NEW database version rebinds the source plan with
//                 WithTarget — only tables rebuild.
//   Result cache  bounded LRU keyed by (task, limits, source key = the
//                 canonical query text, target key = database name #
//                 registration version). Explicitly invalidated when the
//                 database is re-registered: UpsertDatabase bumps the
//                 version (making stale keys unreachable) AND sweeps the
//                 old entries out. Unknown results (governor trips, node
//                 limits) are never cached.
//   Admission     queue-level load shedding on top of the per-request
//                 ResourceGovernor budgets: a global in-flight request
//                 bound (queue depth) and an in-flight bytes bound fed by
//                 the same size-bound estimates the engine's pre-flight
//                 admission uses (EstimateAcyclicBytes). A request over
//                 either bound is shed with kResourceExhausted immediately
//                 — the policy sheds, it never stalls.
//   Durability    optional (ServeOptions::durability.data_dir non-empty):
//                 every acknowledged UpsertDatabase / DropDatabase is
//                 WAL-logged before it is applied, and Open() recovers the
//                 registry after a restart (serve/durability.h). When the
//                 log stops accepting writes the engine enters DEGRADED
//                 mode: updates are refused with kUnavailable — never
//                 acknowledged-but-lost — while reads keep serving from
//                 memory.
//   Quarantine    a poison-query negative cache: a query text whose runs
//                 trip the deadline / memory / failpoint budget
//                 `poison_strikes` times in a row is refused up front with
//                 kResourceExhausted instead of burning a full budget every
//                 time it is retried. A budget-clean completion or any
//                 database update clears it.
//
// Thread safety: Serve(), UpsertDatabase(), and stats() may be called from
// concurrent threads. Per-request parallelism (SolveOptions::num_threads)
// rides the solver's work-stealing pool on the uniform route and the shared
// MorselPool (common/work_pool.h) on the acyclic/treewidth routes; both
// produce answers identical to a 1-thread run, so cached results are
// thread-count-agnostic and num_threads stays out of the cache keys.
//
// Every served EngineResult carries stats.serve (plan/result hit flags plus
// an engine-wide snapshot), so `hom_tool --explain`-style consumers see the
// cache behavior inline; the aggregate ServeStats snapshot has its own
// ToJson for the `stats` protocol command and the bench harness.

#ifndef CQCS_SERVE_SERVING_H_
#define CQCS_SERVE_SERVING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/structure.h"
#include "serve/cache.h"
#include "serve/durability.h"

namespace cqcs::serve {

/// Serving configuration. The engine options apply per request (including
/// the per-request governor knobs: deadline_ms, memory_budget_bytes).
struct ServeOptions {
  EngineOptions engine;
  /// Entry bounds for the two caches; 0 disables a cache outright.
  size_t plan_cache_entries = 512;
  size_t result_cache_entries = 4096;
  /// Queue-level admission. 0 = unbounded. A request arriving when
  /// `max_queue_depth` requests are already in flight — or whose size-bound
  /// byte estimate does not fit under `max_inflight_bytes` next to the
  /// in-flight estimates — is shed with kResourceExhausted.
  size_t max_queue_depth = 0;
  size_t max_inflight_bytes = 0;
  /// Durable state. An empty durability.data_dir means the registry is
  /// memory-only (the pre-durability behavior); otherwise call Open() once
  /// before serving to recover and arm the WAL.
  DurabilityOptions durability;
  /// Poison-query quarantine: refuse a query text after this many
  /// consecutive budget trips (deadline / memory / failpoint). 0 disables.
  uint32_t poison_strikes = 3;
};

/// Aggregate serving counters. Hit rates are derived, not stored.
struct ServeStats {
  uint64_t requests = 0;       ///< Serve() calls, including shed ones
  uint64_t served = 0;         ///< requests that produced an EngineResult
  uint64_t errors = 0;         ///< parse / unknown-name / engine errors
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;  ///< result-cache lookups that missed
  uint64_t shed_queue = 0;     ///< shed: queue depth bound
  uint64_t shed_bytes = 0;     ///< shed: in-flight bytes bound
  uint64_t updates = 0;        ///< UpsertDatabase calls
  uint64_t invalidated_entries = 0;  ///< cache entries swept by updates
  uint64_t update_refusals = 0;  ///< updates refused (degraded / WAL failure)
  uint64_t quarantined = 0;    ///< requests refused by the poison quarantine
  bool degraded = false;       ///< WAL cannot accept writes; updates refuse
  uint64_t recovered_dbs = 0;      ///< databases restored by Open()
  uint64_t records_replayed = 0;   ///< WAL records replayed by Open()
  uint64_t wal_appends = 0;
  uint64_t wal_append_failures = 0;
  uint64_t snapshots = 0;
  uint64_t snapshot_failures = 0;
  size_t poisoned_queries = 0;  ///< query texts currently quarantined
  size_t queue_depth = 0;       ///< in-flight requests (snapshot)
  size_t queue_depth_peak = 0;
  size_t inflight_bytes = 0;    ///< reserved byte estimates (snapshot)
  size_t plan_cache_entries = 0;
  size_t result_cache_entries = 0;

  double PlanHitRate() const {
    const uint64_t total = plan_hits + plan_misses;
    return total == 0 ? 0.0 : static_cast<double>(plan_hits) / total;
  }
  double ResultHitRate() const {
    const uint64_t total = result_hits + result_misses;
    return total == 0 ? 0.0 : static_cast<double>(result_hits) / total;
  }
  std::string ToJson() const;
};

/// One serving request: a conjunctive query (text) against a registered
/// database, for a task. Projection tasks use the query's head.
struct ServeRequest {
  std::string query;     ///< CQ text, e.g. "Q(X) :- E(X, Y), E(Y, X)."
  std::string database;  ///< a name registered via UpsertDatabase
  HomTask task = HomTask::kDecide;
};

class ServingEngine {
 public:
  explicit ServingEngine(ServeOptions options = {});

  /// Arms durability: recovers the registry from
  /// options.durability.data_dir (newest valid snapshot + WAL replay, torn
  /// tail truncated with a warning in `info`) and opens the log for
  /// appending. Call once, before serving. A no-op returning OK when
  /// durability is disabled. Failure means the on-disk state is
  /// unrecoverable without guessing — the caller should stop, not serve.
  Status Open(RecoveryInfo* info = nullptr);

  /// Registers `db` under `name`, replacing any previous registration.
  /// Replacement bumps the name's version and invalidates every cached
  /// result (and pair plan) that was computed against the old content.
  /// InvalidArgument if the database fails Validate(), or if the name
  /// breaks the durable-name rule (core/io IsCatalogName: no bytes <= 0x20,
  /// no DEL) or contains the cache-key separators '|' / '#' — a name the
  /// WAL replay or snapshot parser would reject must never be acknowledged.
  Status UpsertDatabase(const std::string& name, Structure db);

  /// Unregisters `name`, invalidating its cached results. NotFound if the
  /// name was never registered.
  Status DropDatabase(const std::string& name);

  /// Serves one request. Errors: InvalidArgument for unparsable queries,
  /// NotFound for unknown database names, ResourceExhausted when admission
  /// sheds the request (stats.shed_* tells which bound) or the per-request
  /// governor would not admit it. A successful result carries
  /// stats.serve.{plan_cache_hit, result_cache_hit} and the usual engine
  /// explain/stats record.
  Result<EngineResult> Serve(const ServeRequest& request);

  /// The registered (name, version) pairs, sorted by name — the `catalog`
  /// protocol command, and the chaos harness's oracle probe.
  std::vector<std::pair<std::string, uint64_t>> ListDatabases() const;

  /// The current registration of `name`; NotFound when absent.
  Result<std::shared_ptr<const Structure>> GetDatabase(
      const std::string& name) const;

  /// True when updates are being refused (WAL append/rewind failure).
  /// Reads keep serving; recovery is a restart over the intact on-disk
  /// state.
  bool degraded() const;

  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct DbEntry {
    std::shared_ptr<const Structure> structure;
    uint64_t version = 0;
  };
  struct ResolvedDb {
    std::shared_ptr<const Structure> structure;
    std::string target_key;  ///< "name#version"
  };

  /// A cheap catalog handle: shared_ptr copies, no Structure deep copy —
  /// taken under registry_mu_ so the expensive snapshot serialization can
  /// run outside it (the structures are immutable).
  struct CatalogRef {
    std::string name;
    uint64_t version = 0;
    std::shared_ptr<const Structure> db;
  };

  Result<ResolvedDb> ResolveDatabase(const std::string& name) const;
  void FillServeSnapshot(EngineResult* result, bool plan_hit,
                         bool result_hit) const;
  /// Sweeps both caches of entries computed against `name` and clears the
  /// quarantine (the data changed; prior budget trips are stale evidence).
  size_t InvalidateFor(const std::string& name);
  /// Builds the sorted catalog handle from registry_.
  std::vector<CatalogRef> CatalogRefsLocked() const
      CQCS_REQUIRES(registry_mu_);
  /// If a snapshot is due, rotates the log (cheap) and captures the catalog
  /// handle. The returned refs feed FinishSnapshot() AFTER the lock is
  /// released.
  std::optional<std::pair<uint64_t, std::vector<CatalogRef>>>
  MaybeRotateForSnapshotLocked() CQCS_REQUIRES(registry_mu_);
  /// Deep-copies, serializes, and writes the snapshot — the slow half. The
  /// CQCS_EXCLUDES is the PR 8 review rule as a compile-time fact: snapshot
  /// I/O must never run under the registry lock.
  void FinishSnapshot(uint64_t gen, const std::vector<CatalogRef>& refs)
      CQCS_EXCLUDES(registry_mu_);

  const ServeOptions options_;

  /// registry_mu_ also serializes the durable path: WAL append order must
  /// equal registry apply order, and a snapshot must see a registry no
  /// append can be racing past.
  mutable Mutex registry_mu_;
  std::unordered_map<std::string, DbEntry> registry_
      CQCS_GUARDED_BY(registry_mu_);
  /// Written once by Open() before serving starts, then only read; the
  /// manager carries its own internal lock. Not guarded: FinishSnapshot()
  /// must reach it with registry_mu_ released. Append/apply ordering is
  /// preserved because every Append* call happens under registry_mu_.
  std::unique_ptr<DurabilityManager> durability_;
  bool degraded_ CQCS_GUARDED_BY(registry_mu_) = false;  ///< sticky

  /// Poison-query quarantine: consecutive budget-trip strikes per raw
  /// query text, bounded.
  mutable Mutex quarantine_mu_;
  std::unordered_map<std::string, uint32_t> strikes_
      CQCS_GUARDED_BY(quarantine_mu_);

  /// Both plan levels live in one LRU; keys are prefixed "src|" / "pair|".
  LruCache<HomProblem> plan_cache_;
  LruCache<EngineResult> result_cache_;

  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> in_flight_bytes_{0};

  mutable Mutex stats_mu_;
  ServeStats stats_ CQCS_GUARDED_BY(stats_mu_);
};

}  // namespace cqcs::serve

#endif  // CQCS_SERVE_SERVING_H_
