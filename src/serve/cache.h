// Bounded, collision-safe LRU caches for the serving layer (serve/serving.h).
//
// A CacheKey carries both a 64-bit digest (the bucket hash) and the full
// canonical content string the digest was computed from. Lookups bucket by
// the digest but ALWAYS compare the full canonical string before declaring
// a hit — a digest collision between two distinct keys can cost a miss,
// never a cross-served value. Tests force collisions via WithDigest to
// pin that property down.
//
// LruCache<V> is a classic intrusive-list LRU over a digest-bucketed index:
// Get promotes to most-recently-used, Put evicts from the cold end when the
// entry bound is exceeded, EraseIf sweeps entries for explicit invalidation
// (the result cache drops a database's entries when it is re-registered).
// All operations take an internal mutex: the serving engine calls the cache
// from concurrent request threads.

#ifndef CQCS_SERVE_CACHE_H_
#define CQCS_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cqcs::serve {

/// A cache key: full canonical content plus its 64-bit digest. Equality
/// compares the canonical string (the digest is only a bucket accelerator).
struct CacheKey {
  std::string canonical;
  uint64_t digest = 0;

  /// The normal constructor: digest = FNV-1a over the canonical bytes.
  static CacheKey FromCanonical(std::string canonical) {
    CacheKey k;
    k.digest = DigestBytes(canonical);
    k.canonical = std::move(canonical);
    return k;
  }

  /// Test hook: a key with a forced digest, for exercising bucket
  /// collisions between distinct canonicals.
  static CacheKey WithDigest(std::string canonical, uint64_t digest) {
    CacheKey k;
    k.canonical = std::move(canonical);
    k.digest = digest;
    return k;
  }

  static uint64_t DigestBytes(const std::string& s) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  bool operator==(const CacheKey& other) const {
    // Canonical-first on purpose: a hit is a hit only on full content.
    return canonical == other.canonical;
  }
};

/// Monotonic counters a cache keeps about itself. Snapshot via stats().
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  ///< entries dropped by EraseIf
  size_t entries = 0;          ///< current size (snapshot, not monotonic)
};

/// Bounded LRU map from CacheKey to shared_ptr<const V>. Thread-safe.
template <typename V>
class LruCache {
 public:
  /// `capacity` bounds the entry count; 0 disables the cache entirely
  /// (every Get misses, every Put is dropped).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// The cached value, promoting the entry to most-recently-used; nullptr
  /// on miss. Hits require full canonical-key equality, never digest
  /// equality alone.
  std::shared_ptr<const V> Get(const CacheKey& key) {
    MutexLock lock(mu_);
    auto it = Find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    entries_.splice(entries_.begin(), entries_, it);  // promote
    ++stats_.hits;
    return it->value;
  }

  /// Inserts (or replaces) the value for `key`, evicting from the cold end
  /// past the capacity bound.
  void Put(const CacheKey& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    MutexLock lock(mu_);
    auto it = Find(key);
    if (it != entries_.end()) {
      it->value = std::move(value);
      entries_.splice(entries_.begin(), entries_, it);
      return;
    }
    entries_.push_front(Entry{key, std::move(value)});
    index_.emplace(key.digest, entries_.begin());
    ++stats_.insertions;
    while (entries_.size() > capacity_) {
      RemoveEntry(std::prev(entries_.end()));
      ++stats_.evictions;
    }
  }

  /// Drops every entry whose key satisfies `pred`; returns how many.
  /// The invalidation sweep for database updates.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    MutexLock lock(mu_);
    size_t dropped = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto next = std::next(it);
      if (pred(it->key)) {
        RemoveEntry(it);
        ++dropped;
      }
      it = next;
    }
    stats_.invalidations += dropped;
    return dropped;
  }

  void Clear() {
    MutexLock lock(mu_);
    stats_.invalidations += entries_.size();
    entries_.clear();
    index_.clear();
  }

  size_t size() const {
    MutexLock lock(mu_);
    return entries_.size();
  }

  CacheStats stats() const {
    MutexLock lock(mu_);
    CacheStats s = stats_;
    s.entries = entries_.size();
    return s;
  }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const V> value;
  };
  using EntryList = std::list<Entry>;

  /// Entries sharing a digest live in the multimap bucket; the full
  /// canonical comparison picks the right one (or none).
  typename EntryList::iterator Find(const CacheKey& key)
      CQCS_REQUIRES(mu_) {
    auto [lo, hi] = index_.equal_range(key.digest);
    for (auto it = lo; it != hi; ++it) {
      if (it->second->key == key) return it->second;
    }
    return entries_.end();
  }

  void RemoveEntry(typename EntryList::iterator it) CQCS_REQUIRES(mu_) {
    auto [lo, hi] = index_.equal_range(it->key.digest);
    for (auto idx = lo; idx != hi; ++idx) {
      if (idx->second == it) {
        index_.erase(idx);
        break;
      }
    }
    entries_.erase(it);
  }

  const size_t capacity_;
  mutable Mutex mu_;
  EntryList entries_ CQCS_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_multimap<uint64_t, typename EntryList::iterator> index_
      CQCS_GUARDED_BY(mu_);
  CacheStats stats_ CQCS_GUARDED_BY(mu_);
};

}  // namespace cqcs::serve

#endif  // CQCS_SERVE_CACHE_H_
