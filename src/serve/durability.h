// Durable serving state: a write-ahead command log plus periodic snapshots,
// so a ServingEngine restart (or kill -9) recovers every acknowledged
// UpsertDatabase / DropDatabase instead of silently serving an empty
// catalog.
//
// Layout under DurabilityOptions::data_dir (generation g is a counter that
// advances once per snapshot):
//
//   wal-<g>        append-only command log: length-prefixed, CRC32C-framed
//                  records, one per acknowledged update
//   snapshot-<g>   the full catalog at the moment wal-<g> was started
//                  (core/io PrintCatalog + a whole-file CRC footer),
//                  written temp-then-rename so it is atomic
//
// Record framing: [u32 LE payload length][u32 LE CRC32C of payload][payload].
// The payload is a text command — "U <name> <version>\n<structure text>" or
// "D <name>\n" — reusing the core/io structure format so a WAL is
// inspectable with `xxd | less` when something goes wrong at 3am.
//
// Anything recovery would reject is refused at acknowledgment time, never
// written: names must satisfy core/io's IsCatalogName (the rule the WAL
// replay and the snapshot parser both enforce), and a record payload must
// fit under the format's 1 GiB framing ceiling. Both refusals are
// InvalidArgument — a caller error, not a log failure.
//
// The contract, in order of importance:
//
//  1. An acknowledged update survives kill -9 (with FsyncPolicy::kAlways;
//     the interval/never policies trade the tail for throughput and say so).
//  2. Recovery NEVER crashes on a torn or corrupt log tail: the tail is
//     truncated at the first bad record, with a warning in RecoveryInfo —
//     a torn record is the normal signature of dying mid-append.
//  3. An update that was REFUSED (its append failed, possibly after a short
//     write) is never resurrected: the failed append rewinds the log to the
//     last known-good offset, and if even the rewind fails the log is
//     poisoned — every later append refuses — rather than appending after
//     garbage that a future recovery would truncate along with good
//     records behind it.
//
// Snapshots bound recovery time and log growth, and are two-phase so the
// expensive half never blocks serving:
//
//   RotateLog()      cheap (one file open): switches appends to an empty
//                    wal-<g+1>. Called with updates blocked, so the caller's
//                    catalog copy taken right after covers every record in
//                    generations <= g.
//   WriteSnapshot()  slow (serialize + fsync): writes snapshot-<g+1>
//                    (temp + fsync + rename + directory fsync), then prunes
//                    older generations. Runs with no caller lock held;
//                    replay is idempotent over absolute commands, so a
//                    catalog that is NEWER than the rotation point (updates
//                    raced in before the write) is also correct — wal-<g+1>
//                    replays those commands back on top.
//
// Recovery replays the CHAIN of logs: newest valid snapshot s, then
// wal-<s>, wal-<s+1>, ... while consecutive generations exist — so a crash
// (or a failed snapshot write) between rotation and the snapshot landing
// loses nothing; the un-snapshotted generations are simply replayed. A
// torn tail is truncated only on the FINAL log of the chain (the normal
// kill -9 signature); damage earlier in the chain, or a hole in it, means
// external corruption — recovery stops there, serves what it has, and
// poisons the log (updates refuse) rather than resurrect or reorder. A
// failed WriteSnapshot is retried only after another snapshot_every_records
// appends trigger the next rotation, never per update.
//
// All I/O goes through the common/fs.h seams, so tests inject failures at
// the Nth write/fsync/rename (FaultyFs) and drive the interval fsync clock
// by hand — the same failpoint philosophy as GovernorFailpoints, now
// covering the disk.
//
// Thread safety: Open() is a constructor; the instance methods take an
// internal mutex, but callers that need append order to match their own
// state order (the ServingEngine does) must serialize Append*/Snapshot
// against their state mutations themselves.

#ifndef CQCS_SERVE_DURABILITY_H_
#define CQCS_SERVE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fs.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/io.h"

namespace cqcs::serve {

/// When an acknowledged WAL record is durable.
enum class FsyncPolicy {
  kAlways,  ///< fsync before every acknowledgment (crash loses nothing)
  /// fsync once fsync_interval_ms have passed since the last sync — checked
  /// on each append, so the bound only holds while appends keep arriving.
  /// An idle writer's dirty tail stays unsynced until the next append, a
  /// log rotation, or clean shutdown (the destructor syncs it); only
  /// kill -9 while idle can exceed the interval's loss window.
  kInterval,
  kNever,  ///< leave it to the OS (crash may lose the whole unsynced tail)
};

/// "always" / "interval" / "never".
const char* FsyncPolicyName(FsyncPolicy policy);
std::optional<FsyncPolicy> ParseFsyncPolicyName(std::string_view name);

struct DurabilityOptions {
  /// Directory for the WAL and snapshots; created if absent. Empty means
  /// durability is disabled (the ServingEngine then never constructs a
  /// DurabilityManager).
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// For FsyncPolicy::kInterval: maximum milliseconds between fsyncs.
  uint64_t fsync_interval_ms = 100;
  /// Snapshot (and truncate the log) every this many records; 0 disables
  /// automatic snapshots (the log grows until Snapshot() is called).
  uint64_t snapshot_every_records = 1024;
  /// Writer-side record payload bound; 0 means the format's 1 GiB framing
  /// ceiling. Values above the ceiling are clamped to it (recovery treats
  /// larger length words as corruption, so acknowledging one would truncate
  /// it — and everything after it — on replay). A testing seam: lowering it
  /// never loosens the recovery contract.
  uint64_t max_record_bytes = 0;
  /// Injection seams; nullptr selects the real filesystem / steady clock.
  FileSystem* fs = nullptr;
  Clock* clock = nullptr;
};

/// What recovery found. `warnings` is non-empty exactly when something was
/// wrong but survivable (a torn tail, an invalid snapshot that an older
/// generation covered).
struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t generation = 0;
  uint64_t records_replayed = 0;
  bool tail_truncated = false;      ///< a torn/corrupt tail was cut off
  uint64_t tail_bytes_dropped = 0;  ///< bytes removed by that truncation
  std::vector<std::string> warnings;
};

/// Monotonic counters; snapshot via stats().
struct DurabilityStats {
  uint64_t wal_appends = 0;          ///< records durably acknowledged
  uint64_t wal_append_failures = 0;  ///< appends refused (I/O error)
  uint64_t wal_syncs = 0;            ///< fsyncs issued on the log
  uint64_t snapshots = 0;
  uint64_t snapshot_failures = 0;
  uint64_t wal_bytes = 0;  ///< current generation's log size (snapshot)
  bool poisoned = false;   ///< log rewind failed; all appends refuse
};

class DurabilityManager {
 public:
  /// Opens (creating if needed) `options.data_dir`, recovers the catalog —
  /// newest valid snapshot, then its generation's log tail, truncating a
  /// torn final record — and leaves the log open for appending.
  /// `recovered` receives the catalog in application order; `info` (may be
  /// nullptr) the recovery trace. Fails only when the state is
  /// unrecoverable without guessing: an unreadable directory, or snapshots
  /// present but none valid.
  static Result<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options, std::vector<CatalogEntry>* recovered,
      RecoveryInfo* info);

  ~DurabilityManager();

  /// Appends one durable record; OK means the update may be acknowledged
  /// and applied. A non-OK return means the update must NOT be applied:
  /// the record is not durably in the log (contract point 3 above).
  /// InvalidArgument (a caller error, the log stays healthy) when the name
  /// fails IsCatalogName or the record would not fit the framing ceiling —
  /// recovery could not replay either, so neither may be acknowledged.
  Status AppendUpsert(const std::string& name, uint64_t version,
                      const Structure& db);
  Status AppendDrop(const std::string& name);

  /// True when snapshot_every_records have been appended since the last
  /// rotation — the caller should rotate and snapshot.
  bool SnapshotDue() const;

  /// Snapshot phase 1 (cheap): switches appends to an empty next-generation
  /// log and resets the SnapshotDue() counter. Call with updates blocked,
  /// then copy the catalog before unblocking — the copy must cover every
  /// record appended before the rotation. On success `*new_gen` receives
  /// the new generation, which the caller passes to WriteSnapshot().
  /// Failure (counted in snapshot_failures) leaves the current generation
  /// accepting appends.
  Status RotateLog(uint64_t* new_gen);

  /// Snapshot phase 2 (slow, no caller lock needed): writes snapshot-<gen>
  /// temp-then-rename, then prunes generations below it. The catalog must
  /// be at least as new as the RotateLog() point that produced `gen`
  /// (newer is fine — replay is idempotent). Failure is non-fatal: the
  /// log chain keeps growing and recovery replays it; the write is retried
  /// at the next rotation.
  Status WriteSnapshot(uint64_t gen, const std::vector<CatalogEntry>& catalog);

  /// Both phases back to back, for single-threaded callers and tests: the
  /// catalog must reflect every append made so far, with none racing in.
  Status Snapshot(const std::vector<CatalogEntry>& catalog);

  DurabilityStats stats() const;
  uint64_t generation() const;
  const std::string& data_dir() const { return options_.data_dir; }

 private:
  DurabilityManager(DurabilityOptions options, FileSystem* fs, Clock* clock);

  std::string WalPath(uint64_t gen) const;
  std::string SnapshotPath(uint64_t gen) const;
  Status AppendRecord(const std::string& payload) CQCS_REQUIRES(mu_);
  /// Post-failure repair: cut the log back to the last known-good offset
  /// and reopen it. Sets poisoned_ when the log cannot be made clean.
  void RewindLog() CQCS_REQUIRES(mu_);

  const DurabilityOptions options_;
  FileSystem* const fs_;
  Clock* const clock_;

  mutable Mutex mu_;
  uint64_t generation_ CQCS_GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> wal_ CQCS_GUARDED_BY(mu_);
  /// Log bytes known durable-framed.
  uint64_t good_offset_ CQCS_GUARDED_BY(mu_) = 0;
  uint64_t records_since_snapshot_ CQCS_GUARDED_BY(mu_) = 0;
  uint64_t last_sync_ms_ CQCS_GUARDED_BY(mu_) = 0;
  bool dirty_since_sync_ CQCS_GUARDED_BY(mu_) = false;
  bool poisoned_ CQCS_GUARDED_BY(mu_) = false;
  DurabilityStats stats_ CQCS_GUARDED_BY(mu_);
};

}  // namespace cqcs::serve

#endif  // CQCS_SERVE_DURABILITY_H_
