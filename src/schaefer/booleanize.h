// Booleanization (Lemma 3.5): encode the elements of B in binary so that
// CSP instances over arbitrary finite targets become Boolean CSP instances.
//
// With n = |B| and m = ceil(log2 n) bits: every element a of A becomes m
// copies a_1..a_m; a k-ary relation becomes a km-ary relation; every B-tuple
// becomes the concatenation of its elements' codewords. Lemma 3.5:
// hom(A, B) iff hom(A_b, B_b), and the instance grows by a factor ~ log n.

#ifndef CQCS_SCHAEFER_BOOLEANIZE_H_
#define CQCS_SCHAEFER_BOOLEANIZE_H_

#include <vector>

#include "common/status.h"
#include "core/homomorphism.h"
#include "core/structure.h"

namespace cqcs {

/// The Booleanized pair (A_b, B_b) plus decoding bookkeeping.
struct BooleanizedInstance {
  /// Same relation names, arities multiplied by `bits`.
  VocabularyPtr vocabulary;
  Structure a_b;
  Structure b_b;  ///< universe {0, 1}
  /// Number of bits per element, m = max(1, ceil(log2 |B|)).
  uint32_t bits = 0;
  /// Universe size of the original B (for decoding range checks).
  size_t original_b_size = 0;

  BooleanizedInstance(VocabularyPtr v, Structure a, Structure b)
      : vocabulary(std::move(v)), a_b(std::move(a)), b_b(std::move(b)) {}
};

/// Builds (A_b, B_b). By default elements are labeled by their index in
/// binary (MSB-first per element); `labeling` can permute codes — the paper
/// (Example 3.8) shows the labeling can change which Schaefer class B_b
/// lands in. Errors: InvalidArgument when |B| = 0 yet A has elements, or
/// when `labeling` is not a permutation of B's universe.
Result<BooleanizedInstance> Booleanize(
    const Structure& a, const Structure& b,
    const std::vector<Element>* labeling = nullptr);

/// Maps a homomorphism A_b -> B_b back to one A -> B (Lemma 3.5's proof
/// direction 2). Bit groups decoding to a number >= |B| can only belong to
/// unconstrained elements; they are clamped to element 0.
Homomorphism DecodeHomomorphism(const BooleanizedInstance& instance,
                                const Homomorphism& h_b,
                                const std::vector<Element>* labeling = nullptr);

/// Encodes a homomorphism A -> B as one A_b -> B_b (proof direction 1).
Homomorphism EncodeHomomorphism(const BooleanizedInstance& instance,
                                const Homomorphism& h,
                                const std::vector<Element>* labeling = nullptr);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_BOOLEANIZE_H_
