// CNF formulas and the specialized satisfiability solvers the paper's
// uniform algorithms dispatch to (Theorem 3.3): linear-time Horn-SAT
// (Dowling–Gallier style unit propagation), linear-time 2-SAT (implication
// graph + Tarjan SCC), and dual-Horn by duality.

#ifndef CQCS_SCHAEFER_CNF_H_
#define CQCS_SCHAEFER_CNF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cqcs {

/// A literal: variable index with a sign.
struct Literal {
  uint32_t var = 0;
  bool negated = false;

  bool operator==(const Literal& o) const {
    return var == o.var && negated == o.negated;
  }
};

inline Literal Pos(uint32_t var) { return Literal{var, false}; }
inline Literal Neg(uint32_t var) { return Literal{var, true}; }

/// A clause: disjunction of literals (empty clause = false).
using Clause = std::vector<Literal>;

/// A CNF formula over variables 0..var_count-1.
struct CnfFormula {
  uint32_t var_count = 0;
  std::vector<Clause> clauses;

  /// Total number of literal occurrences — the formula length the paper's
  /// bounds are stated in.
  size_t Length() const {
    size_t n = 0;
    for (const Clause& c : clauses) n += c.size();
    return n;
  }

  /// Every clause has at most one positive literal.
  bool IsHorn() const;
  /// Every clause has at most one negative literal.
  bool IsDualHorn() const;
  /// Every clause has at most two literals.
  bool IsTwoCnf() const;

  /// "(x0 | !x1) & (x2)" rendering for diagnostics.
  std::string ToString() const;
};

/// True if the assignment (indexed by variable) satisfies every clause.
bool Satisfies(const CnfFormula& f, const std::vector<uint8_t>& assignment);

/// Horn satisfiability by unit propagation from the all-false assignment;
/// runs in O(length) [BB79, DG84]. Returns the minimal model, or nullopt.
/// Precondition (checked): f.IsHorn().
std::optional<std::vector<uint8_t>> SolveHornSat(const CnfFormula& f);

/// Dual-Horn satisfiability (maximal model), by duality with Horn.
/// Precondition (checked): f.IsDualHorn().
std::optional<std::vector<uint8_t>> SolveDualHornSat(const CnfFormula& f);

/// 2-SAT via the implication graph and strongly connected components;
/// linear time. Precondition (checked): f.IsTwoCnf().
std::optional<std::vector<uint8_t>> SolveTwoSat(const CnfFormula& f);

/// 2-SAT by the phase-propagation algorithm the paper describes ([LP97]):
/// assign an arbitrary value to an unassigned variable, propagate through
/// binary clauses, undo and flip on conflict. Kept alongside the SCC solver
/// because Theorem 3.4's direct bijunctive algorithm emulates exactly this
/// procedure; the two must agree.
std::optional<std::vector<uint8_t>> SolveTwoSatByPropagation(
    const CnfFormula& f);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_CNF_H_
