#include "schaefer/boolean_relation.h"

#include <algorithm>

#include "common/check.h"

namespace cqcs {

std::string SchaeferClassSetToString(SchaeferClassSet classes) {
  static const std::pair<SchaeferClass, const char*> kNames[] = {
      {kZeroValid, "0-valid"},    {kOneValid, "1-valid"},
      {kHorn, "Horn"},            {kDualHorn, "dual-Horn"},
      {kBijunctive, "bijunctive"}, {kAffine, "affine"},
  };
  std::string out;
  for (const auto& [bit, name] : kNames) {
    if (classes & bit) {
      if (!out.empty()) out += "|";
      out += name;
    }
  }
  return out.empty() ? "none" : out;
}

BooleanRelation::BooleanRelation(uint32_t arity) : arity_(arity) {
  CQCS_CHECK_MSG(arity >= 1 && arity <= 63,
                 "BooleanRelation arity must be in [1, 63], got " << arity);
}

void BooleanRelation::Add(uint64_t tuple) {
  CQCS_CHECK_MSG((tuple & ~FullMask()) == 0,
                 "tuple has bits above arity " << arity_);
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), tuple);
  if (it != tuples_.end() && *it == tuple) return;
  tuples_.insert(it, tuple);
}

bool BooleanRelation::Contains(uint64_t tuple) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple);
}

bool BooleanRelation::IsHorn() const {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    for (size_t j = i + 1; j < tuples_.size(); ++j) {
      if (!Contains(tuples_[i] & tuples_[j])) return false;
    }
  }
  return true;
}

bool BooleanRelation::IsDualHorn() const {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    for (size_t j = i + 1; j < tuples_.size(); ++j) {
      if (!Contains(tuples_[i] | tuples_[j])) return false;
    }
  }
  return true;
}

bool BooleanRelation::IsBijunctive() const {
  // maj(a,b,c) = (a&b) | (b&c) | (a&c), componentwise. Triples with two
  // equal tuples reduce to the repeated tuple, so only distinct triples
  // need checking.
  for (size_t i = 0; i < tuples_.size(); ++i) {
    for (size_t j = i + 1; j < tuples_.size(); ++j) {
      for (size_t k = j + 1; k < tuples_.size(); ++k) {
        uint64_t a = tuples_[i], b = tuples_[j], c = tuples_[k];
        uint64_t maj = (a & b) | (b & c) | (a & c);
        if (!Contains(maj)) return false;
      }
    }
  }
  return true;
}

bool BooleanRelation::IsAffine() const {
  // R is affine iff R is a coset of a linear subspace, iff for a fixed
  // t0 ∈ R and all t1, t2 ∈ R: t0 ^ t1 ^ t2 ∈ R. This implies closure
  // under XOR of arbitrary triples (Schaefer's criterion) and is quadratic
  // rather than cubic.
  if (tuples_.empty()) return true;
  uint64_t t0 = tuples_[0];
  for (size_t i = 0; i < tuples_.size(); ++i) {
    for (size_t j = i; j < tuples_.size(); ++j) {
      if (!Contains(t0 ^ tuples_[i] ^ tuples_[j])) return false;
    }
  }
  return true;
}

SchaeferClassSet BooleanRelation::Classify() const {
  SchaeferClassSet classes = 0;
  if (IsZeroValid()) classes |= kZeroValid;
  if (IsOneValid()) classes |= kOneValid;
  if (IsHorn()) classes |= kHorn;
  if (IsDualHorn()) classes |= kDualHorn;
  if (IsBijunctive()) classes |= kBijunctive;
  if (IsAffine()) classes |= kAffine;
  return classes;
}

Result<BooleanRelation> BooleanRelation::FromRelation(const Relation& r) {
  if (r.arity() > 63) {
    return Status::Unsupported("Boolean relations support arity <= 63");
  }
  BooleanRelation out(r.arity());
  for (uint32_t t = 0; t < r.tuple_count(); ++t) {
    std::span<const Element> tup = r.tuple(t);
    uint64_t mask = 0;
    for (uint32_t p = 0; p < r.arity(); ++p) {
      if (tup[p] > 1) {
        return Status::InvalidArgument(
            "relation is not Boolean: element " + std::to_string(tup[p]));
      }
      mask |= static_cast<uint64_t>(tup[p]) << p;
    }
    out.Add(mask);
  }
  return out;
}

Relation BooleanRelation::ToRelation() const {
  Relation out(arity_);
  std::vector<Element> tuple(arity_);
  for (uint64_t mask : tuples_) {
    for (uint32_t p = 0; p < arity_; ++p) {
      tuple[p] = static_cast<Element>((mask >> p) & 1);
    }
    out.Add(tuple);
  }
  return out;
}

bool IsBooleanStructure(const Structure& b) { return b.universe_size() == 2; }

SchaeferClassSet ClassifyBooleanStructure(const Structure& b) {
  CQCS_CHECK_MSG(IsBooleanStructure(b),
                 "ClassifyBooleanStructure expects universe {0,1}");
  SchaeferClassSet classes = kAllSchaeferClasses;
  const Vocabulary& vocab = *b.vocabulary();
  for (RelId id = 0; id < vocab.size() && classes != 0; ++id) {
    auto rel = BooleanRelation::FromRelation(b.relation(id));
    // A relation we cannot represent (arity beyond the 63-bit mask) is
    // conservatively treated as outside every Schaefer class; callers see
    // "not a Schaefer structure" instead of an abort on hostile input.
    if (!rel.ok()) return 0;
    classes &= rel->Classify();
  }
  return classes;
}

}  // namespace cqcs
