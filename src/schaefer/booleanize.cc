#include "schaefer/booleanize.h"

#include <bit>

#include "common/check.h"

namespace cqcs {

namespace {

uint32_t BitsFor(size_t n) {
  if (n <= 2) return 1;
  return static_cast<uint32_t>(std::bit_width(n - 1));
}

/// code_of[b] = the bit pattern assigned to element b.
Result<std::vector<uint64_t>> MakeCodes(size_t n,
                                        const std::vector<Element>* labeling) {
  std::vector<uint64_t> codes(n);
  if (labeling == nullptr) {
    for (size_t i = 0; i < n; ++i) codes[i] = i;
    return codes;
  }
  if (labeling->size() != n) {
    return Status::InvalidArgument("labeling size != |B|");
  }
  std::vector<uint8_t> seen(n, 0);
  for (size_t i = 0; i < n; ++i) {
    Element code = (*labeling)[i];
    if (code >= n || seen[code]) {
      return Status::InvalidArgument("labeling is not a permutation");
    }
    seen[code] = 1;
    codes[i] = code;
  }
  return codes;
}

}  // namespace

Result<BooleanizedInstance> Booleanize(const Structure& a, const Structure& b,
                                       const std::vector<Element>* labeling) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  const size_t n = b.universe_size();
  if (n == 0 && a.universe_size() > 0) {
    return Status::InvalidArgument(
        "cannot Booleanize an empty target with a nonempty source (no "
        "homomorphism exists)");
  }
  const uint32_t m = BitsFor(std::max<size_t>(n, 1));
  CQCS_ASSIGN_OR_RETURN(std::vector<uint64_t> codes, MakeCodes(n, labeling));

  const Vocabulary& vocab = *a.vocabulary();
  auto extended = std::make_shared<Vocabulary>();
  for (RelId id = 0; id < vocab.size(); ++id) {
    if (static_cast<uint64_t>(vocab.arity(id)) * m > (1u << 24)) {
      return Status::Unsupported("Booleanized arity too large");
    }
    extended->AddRelation(vocab.name(id), vocab.arity(id) * m);
  }

  Structure a_b(extended, a.universe_size() * m);
  Structure b_b(extended, 2);
  std::vector<Element> tuple_b;
  for (RelId id = 0; id < vocab.size(); ++id) {
    const uint32_t arity = vocab.arity(id);
    // A_b: element e's copies are e*m .. e*m + m - 1.
    const Relation& ra = a.relation(id);
    tuple_b.resize(static_cast<size_t>(arity) * m);
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      std::span<const Element> tup = ra.tuple(t);
      for (uint32_t p = 0; p < arity; ++p) {
        for (uint32_t i = 0; i < m; ++i) {
          tuple_b[p * m + i] = tup[p] * m + i;
        }
      }
      a_b.AddTuple(id, tuple_b);
    }
    // B_b: concatenation of codewords, MSB first within each element.
    const Relation& rb = b.relation(id);
    for (uint32_t t = 0; t < rb.tuple_count(); ++t) {
      std::span<const Element> tup = rb.tuple(t);
      for (uint32_t p = 0; p < arity; ++p) {
        uint64_t code = codes[tup[p]];
        for (uint32_t i = 0; i < m; ++i) {
          tuple_b[p * m + i] =
              static_cast<Element>((code >> (m - 1 - i)) & 1);
        }
      }
      b_b.AddTuple(id, tuple_b);
    }
  }
  BooleanizedInstance out(extended, std::move(a_b), std::move(b_b));
  out.bits = m;
  out.original_b_size = n;
  return out;
}

Homomorphism DecodeHomomorphism(const BooleanizedInstance& instance,
                                const Homomorphism& h_b,
                                const std::vector<Element>* labeling) {
  const uint32_t m = instance.bits;
  const size_t n_a = instance.a_b.universe_size() / m;
  CQCS_CHECK(h_b.size() == instance.a_b.universe_size());
  // Invert the labeling: code -> element.
  std::vector<Element> element_of_code(instance.original_b_size);
  for (size_t e = 0; e < instance.original_b_size; ++e) {
    Element code = labeling == nullptr ? static_cast<Element>(e)
                                       : (*labeling)[e];
    element_of_code[code] = static_cast<Element>(e);
  }
  Homomorphism h(n_a);
  for (size_t e = 0; e < n_a; ++e) {
    uint64_t code = 0;
    for (uint32_t i = 0; i < m; ++i) {
      CQCS_CHECK(h_b[e * m + i] <= 1);
      code = (code << 1) | h_b[e * m + i];
    }
    // Codes outside the element range can only arise for elements of A that
    // occur in no tuple (anything works for them); clamp to element 0.
    h[e] = code < instance.original_b_size
               ? element_of_code[code]
               : 0;
  }
  return h;
}

Homomorphism EncodeHomomorphism(const BooleanizedInstance& instance,
                                const Homomorphism& h,
                                const std::vector<Element>* labeling) {
  const uint32_t m = instance.bits;
  Homomorphism h_b(h.size() * m);
  for (size_t e = 0; e < h.size(); ++e) {
    uint64_t code = labeling == nullptr ? h[e] : (*labeling)[h[e]];
    for (uint32_t i = 0; i < m; ++i) {
      h_b[e * m + i] = static_cast<Element>((code >> (m - 1 - i)) & 1);
    }
  }
  return h_b;
}

}  // namespace cqcs
