// Boolean relations and Schaefer's classification (Theorem 3.1).
//
// A k-ary Boolean relation is a set of k-bit tuples, stored as packed
// uint64 masks (bit i = value of position i). Schaefer's six tractable
// classes are recognized by the closure criteria cited in the paper:
//   - 0-valid / 1-valid: contains the all-zero / all-one tuple;
//   - Horn: closed under componentwise AND (Dechter–Pearl);
//   - dual Horn: closed under componentwise OR (Dechter–Pearl);
//   - bijunctive: closed under componentwise majority of triples (Schaefer);
//   - affine: closed under componentwise XOR of triples (Schaefer).

#ifndef CQCS_SCHAEFER_BOOLEAN_RELATION_H_
#define CQCS_SCHAEFER_BOOLEAN_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/structure.h"

namespace cqcs {

/// Bitmask of Schaefer classes a relation (or structure) belongs to.
enum SchaeferClass : uint8_t {
  kZeroValid = 1u << 0,
  kOneValid = 1u << 1,
  kHorn = 1u << 2,
  kDualHorn = 1u << 3,
  kBijunctive = 1u << 4,
  kAffine = 1u << 5,
};
using SchaeferClassSet = uint8_t;

/// All six classes set.
inline constexpr SchaeferClassSet kAllSchaeferClasses = 0x3f;

/// "Horn|Bijunctive"-style rendering for diagnostics.
std::string SchaeferClassSetToString(SchaeferClassSet classes);

/// A k-ary Boolean relation, k <= 63 (the affine construction appends one
/// extra column for the constant, and everything must fit in a 64-bit mask).
class BooleanRelation {
 public:
  explicit BooleanRelation(uint32_t arity);

  uint32_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Adds a tuple (mask over the low `arity` bits); duplicates ignored.
  void Add(uint64_t tuple);
  bool Contains(uint64_t tuple) const;

  /// Sorted, deduplicated tuple masks.
  const std::vector<uint64_t>& tuples() const { return tuples_; }

  /// Mask with the low `arity` bits set.
  uint64_t FullMask() const { return (arity_ == 64) ? ~0ULL : (1ULL << arity_) - 1; }

  bool IsZeroValid() const { return Contains(0); }
  bool IsOneValid() const { return Contains(FullMask()); }
  /// Closed under pairwise AND. O(|R|^2 log |R|).
  bool IsHorn() const;
  /// Closed under pairwise OR. O(|R|^2 log |R|).
  bool IsDualHorn() const;
  /// Closed under majority of triples. O(|R|^3 log |R|).
  bool IsBijunctive() const;
  /// An affine subspace: fixing any t0 in R, closed under t0 ^ t1 ^ t2.
  /// (Equivalent to Schaefer's triple-XOR criterion.) O(|R|^2 log |R|).
  bool IsAffine() const;

  /// All classes the relation belongs to.
  SchaeferClassSet Classify() const;

  /// Conversion from a relation over a Boolean universe (elements 0/1 only).
  static Result<BooleanRelation> FromRelation(const Relation& r);
  /// Conversion back to the element representation.
  Relation ToRelation() const;

  bool operator==(const BooleanRelation& o) const {
    return arity_ == o.arity_ && tuples_ == o.tuples_;
  }

 private:
  uint32_t arity_;
  std::vector<uint64_t> tuples_;  // sorted unique
};

/// True when the structure is Boolean: its universe is {0, 1}.
bool IsBooleanStructure(const Structure& b);

/// Classifies a Boolean structure: the classes ALL its relations share
/// (Schaefer's conditions quantify over every relation of B). Returns 0 if
/// B is not a Schaefer structure, including when a relation's arity exceeds
/// the 63-bit tuple mask. CHECK-fails if B is not Boolean.
SchaeferClassSet ClassifyBooleanStructure(const Structure& b);

/// Theorem 3.1: membership of B in Schaefer's class SC.
inline bool IsSchaeferStructure(const Structure& b) {
  return ClassifyBooleanStructure(b) != 0;
}

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_BOOLEAN_RELATION_H_
