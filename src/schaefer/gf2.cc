#include "schaefer/gf2.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace cqcs {

uint32_t Gf2Matrix::RowReduce() {
  size_t pivot_row = 0;
  for (uint32_t col = 0; col < cols_ && pivot_row < rows_.size(); ++col) {
    // Find a row with a 1 in this column.
    size_t found = SIZE_MAX;
    for (size_t r = pivot_row; r < rows_.size(); ++r) {
      if ((rows_[r] >> col) & 1) {
        found = r;
        break;
      }
    }
    if (found == SIZE_MAX) continue;
    std::swap(rows_[pivot_row], rows_[found]);
    for (size_t r = 0; r < rows_.size(); ++r) {
      if (r != pivot_row && ((rows_[r] >> col) & 1)) {
        rows_[r] ^= rows_[pivot_row];
      }
    }
    ++pivot_row;
  }
  rows_.resize(pivot_row);  // drop zero rows
  return static_cast<uint32_t>(pivot_row);
}

std::vector<uint64_t> Gf2Matrix::NullspaceBasis() const {
  Gf2Matrix reduced = *this;
  uint32_t rank = reduced.RowReduce();
  // Identify pivot columns (first set bit of each reduced row).
  std::vector<int> pivot_of_col(cols_, -1);
  for (uint32_t r = 0; r < rank; ++r) {
    uint32_t col = static_cast<uint32_t>(std::countr_zero(reduced.rows_[r]));
    pivot_of_col[col] = static_cast<int>(r);
  }
  std::vector<uint64_t> basis;
  for (uint32_t free_col = 0; free_col < cols_; ++free_col) {
    if (pivot_of_col[free_col] != -1) continue;
    // x[free_col] = 1, other free vars 0; pivots solve their rows.
    uint64_t v = 1ULL << free_col;
    for (uint32_t col = 0; col < cols_; ++col) {
      int r = pivot_of_col[col];
      if (r == -1) continue;
      // Row r: x[col] + sum of other set columns = 0.
      uint64_t others = reduced.rows_[static_cast<size_t>(r)] &
                        ~(1ULL << col);
      if (std::popcount(others & v) % 2 == 1) v |= 1ULL << col;
    }
    basis.push_back(v);
  }
  return basis;
}

std::optional<std::vector<uint8_t>> SolveLinearSystem(
    const LinearSystem& sys) {
  const uint32_t n = sys.var_count;
  const size_t words = (static_cast<size_t>(n) + 1 + 63) / 64;  // +1 for rhs
  const size_t rhs_bit = n;  // column n holds the right-hand side
  // Bit-packed augmented rows.
  std::vector<std::vector<uint64_t>> rows;
  rows.reserve(sys.equations.size());
  for (const LinearEquation& eq : sys.equations) {
    std::vector<uint64_t> row(words, 0);
    for (uint32_t v : eq.vars) {
      CQCS_CHECK(v < n);
      row[v >> 6] ^= 1ULL << (v & 63);  // XOR: repeated vars cancel
    }
    if (eq.rhs) row[rhs_bit >> 6] ^= 1ULL << (rhs_bit & 63);
    rows.push_back(std::move(row));
  }

  auto test_bit = [&](const std::vector<uint64_t>& row, size_t bit) {
    return (row[bit >> 6] >> (bit & 63)) & 1;
  };
  auto xor_into = [&](std::vector<uint64_t>& dst,
                      const std::vector<uint64_t>& src) {
    for (size_t w = 0; w < words; ++w) dst[w] ^= src[w];
  };

  std::vector<int> pivot_row_of_col(n, -1);
  size_t pivot_row = 0;
  for (uint32_t col = 0; col < n && pivot_row < rows.size(); ++col) {
    size_t found = SIZE_MAX;
    for (size_t r = pivot_row; r < rows.size(); ++r) {
      if (test_bit(rows[r], col)) {
        found = r;
        break;
      }
    }
    if (found == SIZE_MAX) continue;
    std::swap(rows[pivot_row], rows[found]);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r != pivot_row && test_bit(rows[r], col)) {
        xor_into(rows[r], rows[pivot_row]);
      }
    }
    pivot_row_of_col[col] = static_cast<int>(pivot_row);
    ++pivot_row;
  }
  // Inconsistency: a row 0 = 1.
  for (const auto& row : rows) {
    bool all_zero = true;
    for (uint32_t col = 0; col < n && all_zero; ++col) {
      if (test_bit(row, col)) all_zero = false;
    }
    if (all_zero && test_bit(row, rhs_bit)) return std::nullopt;
  }
  // Read off the solution: free variables 0, pivot variables from the rhs.
  std::vector<uint8_t> solution(n, 0);
  for (uint32_t col = 0; col < n; ++col) {
    int r = pivot_row_of_col[col];
    if (r != -1) {
      solution[col] =
          static_cast<uint8_t>(test_bit(rows[static_cast<size_t>(r)], rhs_bit));
    }
  }
  return solution;
}

}  // namespace cqcs
