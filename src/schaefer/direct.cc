#include "schaefer/direct.h"

#include <bit>

#include "common/check.h"
#include "schaefer/formula_build.h"

namespace cqcs {

namespace {

/// Converts all relations of a Boolean structure to packed form; validates
/// membership of every relation in `required` (a predicate on the packed
/// relation).
template <typename Predicate>
Result<std::vector<BooleanRelation>> PackBooleanStructure(
    const Structure& b, Predicate required, const char* class_name) {
  if (!IsBooleanStructure(b)) {
    return Status::InvalidArgument("target structure is not Boolean");
  }
  std::vector<BooleanRelation> packed;
  const Vocabulary& vocab = *b.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    CQCS_ASSIGN_OR_RETURN(BooleanRelation rel,
                          BooleanRelation::FromRelation(b.relation(id)));
    if (!required(rel)) {
      return Status::InvalidArgument("relation " + vocab.name(id) +
                                     " is not " + class_name);
    }
    packed.push_back(std::move(rel));
  }
  return packed;
}

/// Core of the Horn algorithm, shared with the dual case.
std::optional<Homomorphism> HornFixpoint(
    const Structure& a, const std::vector<BooleanRelation>& relations) {
  const Vocabulary& vocab = *a.vocabulary();
  std::vector<uint8_t> one(a.universe_size(), 0);

  // Global tuple ids for the worklist.
  struct TupleRef {
    RelId rel;
    uint32_t index;
  };
  std::vector<TupleRef> tuples;
  std::vector<size_t> first_tuple_of_rel(vocab.size() + 1, 0);
  for (RelId id = 0; id < vocab.size(); ++id) {
    first_tuple_of_rel[id] = tuples.size();
    for (uint32_t t = 0; t < a.relation(id).tuple_count(); ++t) {
      tuples.push_back(TupleRef{id, t});
    }
  }
  first_tuple_of_rel[vocab.size()] = tuples.size();

  OccurrenceIndex occurrences(a);
  std::vector<uint8_t> queued(tuples.size(), 1);
  std::vector<size_t> worklist(tuples.size());
  for (size_t i = 0; i < worklist.size(); ++i) worklist[i] = i;

  while (!worklist.empty()) {
    size_t gid = worklist.back();
    worklist.pop_back();
    queued[gid] = 0;
    const TupleRef ref = tuples[gid];
    const Relation& ra = a.relation(ref.rel);
    const BooleanRelation& rb = relations[ref.rel];
    std::span<const Element> tup = ra.tuple(ref.index);

    uint64_t premise = 0;  // positions whose element is in One
    for (uint32_t p = 0; p < ra.arity(); ++p) {
      if (one[tup[p]]) premise |= 1ULL << p;
    }
    // Meet of all supports t' ⊇ premise. If none, the tuple can never be
    // mapped into rb (One only grows), so there is no homomorphism.
    bool any = false;
    uint64_t meet = rb.FullMask();
    for (uint64_t t : rb.tuples()) {
      if ((premise & t) == premise) {
        meet &= t;
        any = true;
      }
    }
    if (!any) return std::nullopt;
    uint64_t forced = meet & ~premise;
    while (forced != 0) {
      uint32_t p = static_cast<uint32_t>(std::countr_zero(forced));
      forced &= forced - 1;
      Element e = tup[p];
      if (one[e]) continue;
      one[e] = 1;
      // Requeue every tuple in which e occurs; its premise grew.
      for (const auto& occ : occurrences.occurrences(e)) {
        size_t gid2 = first_tuple_of_rel[occ.rel] + occ.tuple_index;
        if (!queued[gid2]) {
          queued[gid2] = 1;
          worklist.push_back(gid2);
        }
      }
    }
  }
  // At the fixpoint every tuple had a support superset of its final premise
  // (otherwise we returned above after its last requeue), so h = [One] is a
  // homomorphism (proof of Theorem 3.4).
  Homomorphism h(a.universe_size());
  for (size_t e = 0; e < h.size(); ++e) h[e] = one[e];
  return h;
}

}  // namespace

Result<std::optional<Homomorphism>> SolveHornDirect(const Structure& a,
                                                    const Structure& b) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  CQCS_ASSIGN_OR_RETURN(
      std::vector<BooleanRelation> packed,
      PackBooleanStructure(
          b, [](const BooleanRelation& r) { return r.IsHorn(); }, "Horn"));
  return HornFixpoint(a, packed);
}

Result<std::optional<Homomorphism>> SolveDualHornDirect(const Structure& a,
                                                        const Structure& b) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  CQCS_ASSIGN_OR_RETURN(
      std::vector<BooleanRelation> packed,
      PackBooleanStructure(
          b, [](const BooleanRelation& r) { return r.IsDualHorn(); },
          "dual Horn"));
  // Bitwise flip: dual Horn becomes Horn; flip the resulting homomorphism.
  std::vector<BooleanRelation> flipped;
  flipped.reserve(packed.size());
  for (const BooleanRelation& r : packed) {
    BooleanRelation f(r.arity());
    for (uint64_t t : r.tuples()) f.Add(~t & r.FullMask());
    flipped.push_back(std::move(f));
  }
  auto h = HornFixpoint(a, flipped);
  if (!h.has_value()) return std::optional<Homomorphism>(std::nullopt);
  for (Element& v : *h) v = 1 - v;
  return std::optional<Homomorphism>(std::move(*h));
}

Result<std::optional<Homomorphism>> SolveBijunctiveDirect(const Structure& a,
                                                          const Structure& b) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  CQCS_ASSIGN_OR_RETURN(
      std::vector<BooleanRelation> packed,
      PackBooleanStructure(
          b, [](const BooleanRelation& r) { return r.IsBijunctive(); },
          "bijunctive"));
  const Vocabulary& vocab = *a.vocabulary();
  constexpr uint8_t kUnset = 2;
  std::vector<uint8_t> value(a.universe_size(), kUnset);
  OccurrenceIndex occurrences(a);

  // Forces `e` to `v`; records it on the trail and queue. Returns false on
  // conflict with an existing assignment.
  std::vector<Element> trail;
  std::vector<Element> queue;
  auto assign = [&](Element e, uint8_t v) {
    if (value[e] == v) return true;
    if (value[e] != kUnset) return false;
    value[e] = v;
    trail.push_back(e);
    queue.push_back(e);
    return true;
  };

  // Processes one occurrence of an assigned element: filter the B-tuples by
  // the element's value at that position; every position on which all
  // remaining tuples agree is forced (this is exactly unit propagation over
  // the 2-clauses of δ that mention this position).
  auto process_occurrence = [&](RelId rel, uint32_t tuple_index,
                                uint32_t pos) {
    const Relation& ra = a.relation(rel);
    const BooleanRelation& rb = packed[rel];
    std::span<const Element> tup = ra.tuple(tuple_index);
    uint8_t v = value[tup[pos]];
    CQCS_CHECK(v != kUnset);
    uint64_t agree_ones = rb.FullMask();
    uint64_t agree_zeros = rb.FullMask();
    bool any = false;
    for (uint64_t t : rb.tuples()) {
      if (((t >> pos) & 1) != v) continue;
      any = true;
      agree_ones &= t;
      agree_zeros &= ~t & rb.FullMask();
    }
    if (!any) return false;  // no B-tuple matches this value here
    for (uint32_t l = 0; l < ra.arity(); ++l) {
      if ((agree_ones >> l) & 1) {
        if (!assign(tup[l], 1)) return false;
      } else if ((agree_zeros >> l) & 1) {
        if (!assign(tup[l], 0)) return false;
      }
    }
    return true;
  };

  auto propagate = [&]() {
    while (!queue.empty()) {
      Element e = queue.back();
      queue.pop_back();
      for (const auto& occ : occurrences.occurrences(e)) {
        if (!process_occurrence(occ.rel, occ.tuple_index, occ.pos)) {
          return false;
        }
      }
    }
    return true;
  };

  // Initial forced values: positions on which an entire relation agrees
  // (the unit clauses of δ), and empty relations with tuples in A.
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    if (ra.tuple_count() == 0) continue;
    const BooleanRelation& rb = packed[id];
    if (rb.empty()) return std::optional<Homomorphism>(std::nullopt);
    uint64_t agree_ones = rb.FullMask();
    uint64_t agree_zeros = rb.FullMask();
    for (uint64_t t : rb.tuples()) {
      agree_ones &= t;
      agree_zeros &= ~t & rb.FullMask();
    }
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      std::span<const Element> tup = ra.tuple(t);
      for (uint32_t l = 0; l < ra.arity(); ++l) {
        if ((agree_ones >> l) & 1) {
          if (!assign(tup[l], 1)) return std::optional<Homomorphism>(std::nullopt);
        } else if ((agree_zeros >> l) & 1) {
          if (!assign(tup[l], 0)) return std::optional<Homomorphism>(std::nullopt);
        }
      }
    }
  }
  if (!propagate()) return std::optional<Homomorphism>(std::nullopt);
  trail.clear();

  // Phases: guess a value for an unassigned element, propagate, flip on
  // conflict; both guesses failing means unsatisfiable (classical 2-SAT).
  for (Element e = 0; e < a.universe_size(); ++e) {
    if (value[e] != kUnset) continue;
    bool done = false;
    for (uint8_t guess = 0; guess < 2 && !done; ++guess) {
      trail.clear();
      queue.clear();
      CQCS_CHECK(assign(e, guess));
      if (propagate()) {
        done = true;
      } else {
        for (Element w : trail) value[w] = kUnset;
      }
    }
    if (!done) return std::optional<Homomorphism>(std::nullopt);
  }

  Homomorphism h(a.universe_size());
  for (size_t e = 0; e < h.size(); ++e) {
    h[e] = value[e] == kUnset ? 0 : value[e];
  }
  return std::optional<Homomorphism>(std::move(h));
}

Result<std::optional<Homomorphism>> SolveAffineViaEquations(
    const Structure& a, const Structure& b) {
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  CQCS_ASSIGN_OR_RETURN(
      std::vector<BooleanRelation> packed,
      PackBooleanStructure(
          b, [](const BooleanRelation& r) { return r.IsAffine(); },
          "affine"));
  const Vocabulary& vocab = *a.vocabulary();
  LinearSystem system;
  system.var_count = static_cast<uint32_t>(a.universe_size());
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    if (ra.tuple_count() == 0) continue;
    CQCS_ASSIGN_OR_RETURN(DefiningFormula delta,
                          BuildDefiningFormula(packed[id], kAffine));
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      std::span<const Element> tup = ra.tuple(t);
      for (const LinearEquation& eq : delta.system.equations) {
        LinearEquation grounded;
        grounded.rhs = eq.rhs;
        for (uint32_t pos : eq.vars) grounded.vars.push_back(tup[pos]);
        system.equations.push_back(std::move(grounded));
      }
    }
  }
  auto solution = SolveLinearSystem(system);
  if (!solution.has_value()) return std::optional<Homomorphism>(std::nullopt);
  Homomorphism h(a.universe_size());
  for (size_t e = 0; e < h.size(); ++e) h[e] = (*solution)[e];
  return std::optional<Homomorphism>(std::move(h));
}

}  // namespace cqcs
