// The direct O(‖A‖·‖B‖) algorithms of Theorem 3.4, which skip the
// formula-building stage of Theorem 3.3:
//
//   - Horn: grow the set `One` of A-elements forced to 1 by the implications
//     One(t) -> j that B's relations satisfy, using occurrence lists so each
//     occurrence is reprocessed only when its tuple gains a One element;
//     at the fixpoint a support check decides existence.
//   - dual Horn: the same algorithm on the bitwise-flipped structure.
//   - bijunctive: emulate the phase-propagation 2-SAT algorithm [LP97]
//     directly on the structures: assigning element a the value i filters
//     the B-tuples T_{Q',k,i} and forces every position on which they agree.
//
// Preconditions (checked): B is Boolean and its relations belong to the
// respective class. All relations must have arity <= 63.

#ifndef CQCS_SCHAEFER_DIRECT_H_
#define CQCS_SCHAEFER_DIRECT_H_

#include <optional>

#include "common/status.h"
#include "core/homomorphism.h"
#include "schaefer/boolean_relation.h"

namespace cqcs {

/// Theorem 3.4, Horn case. Returns the minimal homomorphism (fewest 1s), or
/// nullopt when none exists. Errors when B is not a Horn Boolean structure.
Result<std::optional<Homomorphism>> SolveHornDirect(const Structure& a,
                                                    const Structure& b);

/// Theorem 3.4, dual Horn case (maximal homomorphism).
Result<std::optional<Homomorphism>> SolveDualHornDirect(const Structure& a,
                                                        const Structure& b);

/// Theorem 3.4, bijunctive case.
Result<std::optional<Homomorphism>> SolveBijunctiveDirect(const Structure& a,
                                                          const Structure& b);

/// The affine case via grounding B's linear-system definitions over A and
/// Gaussian elimination — the Theorem 3.3 route, which for affine relations
/// is already the efficient one (|δ_R| <= min(k+1, |R|) equations).
Result<std::optional<Homomorphism>> SolveAffineViaEquations(
    const Structure& a, const Structure& b);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_DIRECT_H_
