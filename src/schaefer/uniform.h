// The uniform polynomial-time algorithm for CSP(SC) — Theorem 3.3 — and a
// dispatcher that also offers the direct Theorem 3.4 route.
//
// Pipeline of the formula route, exactly as in the paper's proof:
//   1. classify B (Theorem 3.1);
//   2. trivial classes (0-valid / 1-valid): the constant map works;
//   3. build δ_{Q'} for each relation Q' of B (Theorem 3.2);
//   4. ground: φ_A = ⋀_{Q} ⋀_{t ∈ Q^A} δ_{Q'}(t), over one propositional
//      variable per element of A;
//   5. decide φ_A with the specialized solver (Horn-SAT / 2-SAT / Gaussian
//      elimination); a model IS the homomorphism.

#ifndef CQCS_SCHAEFER_UNIFORM_H_
#define CQCS_SCHAEFER_UNIFORM_H_

#include <optional>

#include "common/status.h"
#include "core/homomorphism.h"
#include "schaefer/boolean_relation.h"

namespace cqcs {

class ResourceGovernor;  // common/governor.h

/// Which uniform algorithm to run.
enum class SchaeferAlgorithm {
  kFormula,  ///< Theorem 3.3: build δ, ground, run the SAT solver. Cubic.
  kDirect,   ///< Theorem 3.4: skip formula building. Quadratic.
  kAuto,     ///< kDirect where available (Horn/dual-Horn/bijunctive),
             ///< equations for affine, constant map for trivial classes.
};

/// Diagnostics about how an instance was solved.
struct SchaeferSolveInfo {
  SchaeferClassSet classes = 0;     ///< full classification of B
  SchaeferClass dispatched = kHorn; ///< class the algorithm used
  bool trivial = false;             ///< solved by a constant map
};

/// Solves CSP(A, B) for a Schaefer structure B. Returns the homomorphism or
/// nullopt (definitely none). Errors: InvalidArgument for non-Boolean B or
/// vocabulary mismatch; Unsupported when B is outside Schaefer's class (the
/// dichotomy says CSP(B) is then NP-complete — use the backtracking solver)
/// or when the formula route hits the Horn arity bound.
///
/// An optional ResourceGovernor (common/governor.h) bounds the run with
/// kResourceExhausted: the pipeline polls at each phase boundary
/// (classification, formula build, dispatch) and in the grounding loop once
/// per source tuple; the specialized SAT solvers themselves run to
/// completion, so deadline overshoot is bounded by one solver call on the
/// already-grounded formula.
Result<std::optional<Homomorphism>> SolveSchaefer(
    const Structure& a, const Structure& b,
    SchaeferAlgorithm algorithm = SchaeferAlgorithm::kAuto,
    SchaeferSolveInfo* info = nullptr, ResourceGovernor* governor = nullptr);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_UNIFORM_H_
