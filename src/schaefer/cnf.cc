#include "schaefer/cnf.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace cqcs {

bool CnfFormula::IsHorn() const {
  for (const Clause& c : clauses) {
    int positives = 0;
    for (const Literal& l : c) {
      if (!l.negated && ++positives > 1) return false;
    }
  }
  return true;
}

bool CnfFormula::IsDualHorn() const {
  for (const Clause& c : clauses) {
    int negatives = 0;
    for (const Literal& l : c) {
      if (l.negated && ++negatives > 1) return false;
    }
  }
  return true;
}

bool CnfFormula::IsTwoCnf() const {
  for (const Clause& c : clauses) {
    if (c.size() > 2) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out << " & ";
    out << "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out << " | ";
      if (clauses[i][j].negated) out << "!";
      out << "x" << clauses[i][j].var;
    }
    out << ")";
  }
  return out.str();
}

bool Satisfies(const CnfFormula& f, const std::vector<uint8_t>& assignment) {
  CQCS_CHECK(assignment.size() >= f.var_count);
  for (const Clause& c : f.clauses) {
    bool sat = false;
    for (const Literal& l : c) {
      if ((assignment[l.var] != 0) != l.negated) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::optional<std::vector<uint8_t>> SolveHornSat(const CnfFormula& f) {
  CQCS_CHECK_MSG(f.IsHorn(), "SolveHornSat requires a Horn formula");
  const uint32_t n = f.var_count;
  std::vector<uint8_t> value(n, 0);  // start from the all-false assignment

  // Per clause: number of negative literals whose variable is still false,
  // and the clause's positive literal (if any). A clause "fires" when all
  // its negative literals are satisfied-by-true, i.e. the premise holds.
  const size_t m = f.clauses.size();
  std::vector<uint32_t> pending_premise(m, 0);
  std::vector<int64_t> positive(m, -1);
  std::vector<std::vector<uint32_t>> clauses_watching(n);
  std::vector<uint32_t> queue;  // variables newly set to true

  for (size_t ci = 0; ci < m; ++ci) {
    const Clause& c = f.clauses[ci];
    for (const Literal& l : c) {
      CQCS_CHECK(l.var < n);
      if (l.negated) {
        ++pending_premise[ci];
        clauses_watching[l.var].push_back(static_cast<uint32_t>(ci));
      } else {
        positive[ci] = l.var;
      }
    }
    if (pending_premise[ci] == 0) {
      // Empty premise: the positive literal (if any) is forced.
      if (positive[ci] == -1) return std::nullopt;  // empty clause
      uint32_t v = static_cast<uint32_t>(positive[ci]);
      if (value[v] == 0) {
        value[v] = 1;
        queue.push_back(v);
      }
    }
  }

  // Unit propagation: each variable enters the queue at most once, and each
  // clause's counter is decremented once per watched occurrence — linear in
  // the formula length.
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    uint32_t v = queue[qi];
    for (uint32_t ci : clauses_watching[v]) {
      if (--pending_premise[ci] != 0) continue;
      if (positive[ci] == -1) return std::nullopt;  // all-negative falsified
      uint32_t w = static_cast<uint32_t>(positive[ci]);
      if (value[w] == 0) {
        value[w] = 1;
        queue.push_back(w);
      }
    }
  }
  // A clause whose positive literal became true may have been counted as
  // pending; propagation never falsifies those. The minimal model found
  // satisfies the formula by construction, but verify in debug spirit:
  CQCS_CHECK(Satisfies(f, value));
  return value;
}

std::optional<std::vector<uint8_t>> SolveDualHornSat(const CnfFormula& f) {
  CQCS_CHECK_MSG(f.IsDualHorn(), "SolveDualHornSat requires dual Horn");
  // Dualize: negate every literal; dual-Horn becomes Horn; a model of the
  // dual maps to a model of the original by flipping every value.
  CnfFormula dual = f;
  for (Clause& c : dual.clauses) {
    for (Literal& l : c) l.negated = !l.negated;
  }
  auto model = SolveHornSat(dual);
  if (!model.has_value()) return std::nullopt;
  for (uint8_t& v : *model) v = static_cast<uint8_t>(1 - v);
  CQCS_CHECK(Satisfies(f, *model));
  return model;
}

namespace {

/// Tarjan SCC over the 2-SAT implication graph. Node 2v = "v true",
/// 2v+1 = "v false".
class TwoSatGraph {
 public:
  explicit TwoSatGraph(uint32_t vars) : adj_(2 * static_cast<size_t>(vars)) {}

  static size_t NodeOf(const Literal& l) {
    return 2 * static_cast<size_t>(l.var) + (l.negated ? 1 : 0);
  }
  static size_t NegationOf(size_t node) { return node ^ 1; }

  void AddImplication(const Literal& from, const Literal& to) {
    adj_[NodeOf(from)].push_back(NodeOf(to));
  }

  /// Iterative Tarjan; fills comp_ with SCC ids in reverse topological
  /// order of discovery (Tarjan numbers components so that a component is
  /// finished before everything that can reach it).
  void ComputeScc() {
    const size_t n = adj_.size();
    comp_.assign(n, UINT32_MAX);
    index_.assign(n, UINT32_MAX);
    low_.assign(n, 0);
    on_stack_.assign(n, 0);
    uint32_t next_index = 0;
    std::vector<size_t> stack;
    // Explicit DFS stack: (node, next child position).
    std::vector<std::pair<size_t, size_t>> frames;
    for (size_t s = 0; s < n; ++s) {
      if (index_[s] != UINT32_MAX) continue;
      frames.emplace_back(s, 0);
      while (!frames.empty()) {
        auto& [v, child] = frames.back();
        if (child == 0) {
          index_[v] = low_[v] = next_index++;
          stack.push_back(v);
          on_stack_[v] = 1;
        }
        if (child < adj_[v].size()) {
          size_t w = adj_[v][child++];
          if (index_[w] == UINT32_MAX) {
            frames.emplace_back(w, 0);
          } else if (on_stack_[w]) {
            low_[v] = std::min(low_[v], index_[w]);
          }
        } else {
          if (low_[v] == index_[v]) {
            while (true) {
              size_t w = stack.back();
              stack.pop_back();
              on_stack_[w] = 0;
              comp_[w] = scc_count_;
              if (w == v) break;
            }
            ++scc_count_;
          }
          size_t finished = v;
          frames.pop_back();
          if (!frames.empty()) {
            low_[frames.back().first] =
                std::min(low_[frames.back().first], low_[finished]);
          }
        }
      }
    }
  }

  uint32_t comp(size_t node) const { return comp_[node]; }

 private:
  std::vector<std::vector<size_t>> adj_;
  std::vector<uint32_t> comp_, index_, low_;
  std::vector<uint8_t> on_stack_;
  uint32_t scc_count_ = 0;
};

}  // namespace

std::optional<std::vector<uint8_t>> SolveTwoSat(const CnfFormula& f) {
  CQCS_CHECK_MSG(f.IsTwoCnf(), "SolveTwoSat requires a 2-CNF formula");
  TwoSatGraph graph(f.var_count);
  for (const Clause& c : f.clauses) {
    if (c.empty()) return std::nullopt;
    Literal a = c[0];
    Literal b = c.size() == 2 ? c[1] : c[0];  // unit clause: (a | a)
    CQCS_CHECK(a.var < f.var_count && b.var < f.var_count);
    // (a | b) == (!a -> b) and (!b -> a).
    graph.AddImplication(Literal{a.var, !a.negated}, b);
    graph.AddImplication(Literal{b.var, !b.negated}, a);
  }
  graph.ComputeScc();
  std::vector<uint8_t> value(f.var_count, 0);
  for (uint32_t v = 0; v < f.var_count; ++v) {
    size_t t = TwoSatGraph::NodeOf(Pos(v));
    size_t ff = TwoSatGraph::NegationOf(t);
    if (graph.comp(t) == graph.comp(ff)) return std::nullopt;
    // Tarjan ids are reverse topological: pick the literal whose component
    // comes earlier in topological order last... choosing comp(t) < comp(f)
    // sets v true iff "v true" is later in topological order, the standard
    // 2-SAT assignment.
    value[v] = graph.comp(t) < graph.comp(ff) ? 1 : 0;
  }
  CQCS_CHECK(Satisfies(f, value));
  return value;
}

std::optional<std::vector<uint8_t>> SolveTwoSatByPropagation(
    const CnfFormula& f) {
  CQCS_CHECK_MSG(f.IsTwoCnf(), "propagation solver requires 2-CNF");
  const uint32_t n = f.var_count;
  constexpr uint8_t kUnset = 2;
  std::vector<uint8_t> value(n, kUnset);
  // Occurrence lists: clause indices per variable.
  std::vector<std::vector<uint32_t>> occurs(n);
  for (uint32_t ci = 0; ci < f.clauses.size(); ++ci) {
    const Clause& c = f.clauses[ci];
    if (c.empty()) return std::nullopt;
    for (const Literal& l : c) {
      CQCS_CHECK(l.var < n);
      occurs[l.var].push_back(ci);
    }
  }

  // Propagates from `var` after it was assigned; records assignments of the
  // current phase on `trail`. Returns false on conflict.
  auto propagate = [&](uint32_t var, std::vector<uint32_t>& trail) {
    std::vector<uint32_t> queue{var};
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      uint32_t v = queue[qi];
      for (uint32_t ci : occurs[v]) {
        const Clause& c = f.clauses[ci];
        // Evaluate the clause: satisfied, or a forced remaining literal?
        bool satisfied = false;
        int unset_count = 0;
        Literal forced{};
        for (const Literal& l : c) {
          if (value[l.var] == kUnset) {
            ++unset_count;
            forced = l;
          } else if ((value[l.var] != 0) != l.negated) {
            satisfied = true;
            break;
          }
        }
        if (satisfied) continue;
        if (unset_count == 0) return false;  // falsified
        if (unset_count == 1) {
          uint8_t needed = forced.negated ? 0 : 1;
          value[forced.var] = needed;
          trail.push_back(forced.var);
          queue.push_back(forced.var);
        }
      }
    }
    return true;
  };

  // Empty-premise (unit) clauses are handled inside propagate via any
  // starting variable, but clauses may exist on variables never chosen
  // before others; simplest correct order: run phases over all variables.
  for (uint32_t v = 0; v < n; ++v) {
    if (value[v] != kUnset) continue;
    bool done = false;
    for (uint8_t attempt = 0; attempt < 2 && !done; ++attempt) {
      uint8_t guess = attempt == 0 ? 1 : 0;
      std::vector<uint32_t> trail;
      value[v] = guess;
      trail.push_back(v);
      if (propagate(v, trail)) {
        done = true;
      } else {
        for (uint32_t w : trail) value[w] = kUnset;
      }
    }
    if (!done) return std::nullopt;
  }
  for (uint8_t& v : value) {
    if (v == kUnset) v = 0;
  }
  if (!Satisfies(f, value)) return std::nullopt;  // stray unit conflicts
  return value;
}

}  // namespace cqcs
