#include "schaefer/saraiya.h"

#include "common/check.h"
#include "cq/canonical.h"
#include "schaefer/booleanize.h"
#include "schaefer/direct.h"

namespace cqcs {

Result<bool> TwoAtomContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2) {
  CQCS_RETURN_IF_ERROR(q1.Validate());
  CQCS_RETURN_IF_ERROR(q2.Validate());
  if (!q1.IsTwoAtomQuery()) {
    return Status::InvalidArgument(
        "Q1 is not a two-atom query (some predicate occurs more than twice)");
  }
  if (!q1.vocabulary()->Equals(*q2.vocabulary())) {
    return Status::InvalidArgument("queries have different vocabularies");
  }
  if (q1.arity() != q2.arity()) {
    return Status::InvalidArgument("queries have different head arities");
  }
  // Head-marker relations hold exactly one tuple and body relations at most
  // two (Q1 is two-atom), so every relation of D_{Q1} has cardinality <= 2.
  CanonicalDb d1 = MakeCanonicalDbWithHeadMarkers(q1);
  CanonicalDb d2 = MakeCanonicalDbWithHeadMarkers(q2);
  CQCS_ASSIGN_OR_RETURN(BooleanizedInstance boolean,
                        Booleanize(d2.structure, d1.structure));
  // Cardinality <= 2 survives Booleanization, so every relation of B_b is
  // bijunctive; the quadratic direct algorithm decides the instance.
  CQCS_ASSIGN_OR_RETURN(
      std::optional<Homomorphism> h,
      SolveBijunctiveDirect(boolean.a_b, boolean.b_b));
  return h.has_value();
}

}  // namespace cqcs
