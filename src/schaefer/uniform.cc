#include "schaefer/uniform.h"

#include "common/check.h"
#include "common/governor.h"
#include "schaefer/cnf.h"
#include "schaefer/direct.h"
#include "schaefer/formula_build.h"

namespace cqcs {

namespace {

/// Grounds a CNF defining formula over every tuple of every relation of A:
/// variable p of δ_{Q'} becomes element t[p]. Tautological grounded clauses
/// (x | !x) are dropped; duplicate literals are merged.
Result<CnfFormula> GroundCnf(const Structure& a,
                             const std::vector<DefiningFormula>& deltas,
                             ResourceGovernor* governor) {
  CnfFormula out;
  out.var_count = static_cast<uint32_t>(a.universe_size());
  const Vocabulary& vocab = *a.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& ra = a.relation(id);
    for (uint32_t t = 0; t < ra.tuple_count(); ++t) {
      if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
      std::span<const Element> tup = ra.tuple(t);
      for (const Clause& c : deltas[id].cnf.clauses) {
        Clause grounded;
        bool tautology = false;
        for (const Literal& l : c) {
          Literal g{tup[l.var], l.negated};
          bool duplicate = false;
          for (const Literal& existing : grounded) {
            if (existing.var == g.var) {
              if (existing.negated != g.negated) tautology = true;
              duplicate = existing.negated == g.negated;
              if (tautology) break;
            }
          }
          if (tautology) break;
          if (!duplicate) grounded.push_back(g);
        }
        if (!tautology) out.clauses.push_back(std::move(grounded));
      }
    }
  }
  return out;
}

Result<std::optional<Homomorphism>> SolveViaFormula(
    const Structure& a, const Structure& b, SchaeferClass klass,
    ResourceGovernor* governor) {
  // Build δ_{Q'} for every relation of B.
  std::vector<DefiningFormula> deltas;
  const Vocabulary& vocab = *b.vocabulary();
  for (RelId id = 0; id < vocab.size(); ++id) {
    if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
    CQCS_ASSIGN_OR_RETURN(BooleanRelation rel,
                          BooleanRelation::FromRelation(b.relation(id)));
    CQCS_ASSIGN_OR_RETURN(DefiningFormula delta,
                          BuildDefiningFormula(rel, klass));
    deltas.push_back(std::move(delta));
  }
  if (klass == kAffine) {
    // Grounding linear systems is what SolveAffineViaEquations does.
    return SolveAffineViaEquations(a, b);
  }
  CQCS_ASSIGN_OR_RETURN(CnfFormula grounded, GroundCnf(a, deltas, governor));
  std::optional<std::vector<uint8_t>> model;
  switch (klass) {
    case kHorn:
      model = SolveHornSat(grounded);
      break;
    case kDualHorn:
      model = SolveDualHornSat(grounded);
      break;
    case kBijunctive:
      model = SolveTwoSat(grounded);
      break;
    default:
      return Status::Internal("unexpected class in SolveViaFormula");
  }
  if (!model.has_value()) return std::optional<Homomorphism>(std::nullopt);
  Homomorphism h(a.universe_size());
  for (size_t e = 0; e < h.size(); ++e) h[e] = (*model)[e];
  return std::optional<Homomorphism>(std::move(h));
}

}  // namespace

Result<std::optional<Homomorphism>> SolveSchaefer(const Structure& a,
                                                  const Structure& b,
                                                  SchaeferAlgorithm algorithm,
                                                  SchaeferSolveInfo* info,
                                                  ResourceGovernor* governor) {
  if (!IsBooleanStructure(b)) {
    return Status::InvalidArgument(
        "SolveSchaefer requires a Boolean target structure; Booleanize(...) "
        "first");
  }
  if (!a.vocabulary()->Equals(*b.vocabulary())) {
    return Status::InvalidArgument("vocabulary mismatch");
  }
  if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
  SchaeferClassSet classes = ClassifyBooleanStructure(b);
  if (info != nullptr) {
    info->classes = classes;
    info->trivial = false;
  }
  if (classes == 0) {
    return Status::Unsupported(
        "B is not a Schaefer structure; by the dichotomy theorem CSP(B) is "
        "NP-complete");
  }
  // Trivial classes: the constant map is a homomorphism.
  for (SchaeferClass trivial : {kZeroValid, kOneValid}) {
    if ((classes & trivial) == 0) continue;
    if (info != nullptr) {
      info->dispatched = trivial;
      info->trivial = true;
    }
    Homomorphism h(a.universe_size(), trivial == kOneValid ? 1 : 0);
    return std::optional<Homomorphism>(std::move(h));
  }

  // Nontrivial dispatch. Preference order mirrors the paper's presentation
  // (Horn, dual Horn, bijunctive, affine); any applicable class is correct.
  for (SchaeferClass klass : {kHorn, kDualHorn, kBijunctive, kAffine}) {
    if ((classes & klass) == 0) continue;
    if (info != nullptr) info->dispatched = klass;
    if (governor != nullptr) CQCS_RETURN_IF_ERROR(governor->Poll());
    if (algorithm == SchaeferAlgorithm::kFormula) {
      return SolveViaFormula(a, b, klass, governor);
    }
    switch (klass) {
      case kHorn:
        return SolveHornDirect(a, b);
      case kDualHorn:
        return SolveDualHornDirect(a, b);
      case kBijunctive:
        return SolveBijunctiveDirect(a, b);
      case kAffine:
        return SolveAffineViaEquations(a, b);
      default:
        break;
    }
  }
  return Status::Internal("classification produced no usable class");
}

}  // namespace cqcs
