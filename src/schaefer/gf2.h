// Linear algebra over GF(2) with up to 64 columns — enough for Boolean
// relations of arity <= 63 plus the affine constant column. Used by the
// affine branch of Theorem 3.2 (nullspace basis = defining linear system)
// and by the affine satisfiability solver of Theorem 3.3.

#ifndef CQCS_SCHAEFER_GF2_H_
#define CQCS_SCHAEFER_GF2_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace cqcs {

/// A matrix over GF(2); each row is a 64-bit mask, bit j = column j.
class Gf2Matrix {
 public:
  explicit Gf2Matrix(uint32_t cols) : cols_(cols) {}

  uint32_t cols() const { return cols_; }
  size_t rows() const { return rows_.size(); }
  void AddRow(uint64_t row) { rows_.push_back(row); }
  uint64_t row(size_t i) const { return rows_[i]; }

  /// Reduces in place to reduced row-echelon form; returns the rank.
  /// Zero rows are dropped.
  uint32_t RowReduce();

  /// Basis of the right nullspace {x : Mx = 0}. Each basis vector is a
  /// 64-bit mask over the columns. Size = cols - rank.
  std::vector<uint64_t> NullspaceBasis() const;

 private:
  uint32_t cols_;
  std::vector<uint64_t> rows_;
};

/// A system of GF(2) linear equations over `var_count` variables with an
/// unbounded number of variables: each equation is (sparse) a list of
/// variable indices whose XOR must equal `rhs`.
struct LinearEquation {
  std::vector<uint32_t> vars;  // XOR of these variables ...
  bool rhs = false;            // ... equals rhs
};

struct LinearSystem {
  uint32_t var_count = 0;
  std::vector<LinearEquation> equations;
};

/// Solves the system by Gaussian elimination over bit-packed rows
/// (O(E * V / 64) per elimination step). Free variables are set to 0.
/// Returns nullopt when inconsistent.
std::optional<std::vector<uint8_t>> SolveLinearSystem(const LinearSystem& sys);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_GF2_H_
