#include "schaefer/formula_build.h"

#include <bit>

#include "common/check.h"

namespace cqcs {

namespace {

/// Does every tuple of R satisfy the clause (over position variables)?
bool RelationSatisfiesClause(const BooleanRelation& r, const Clause& c) {
  for (uint64_t t : r.tuples()) {
    bool sat = false;
    for (const Literal& l : c) {
      bool bit = (t >> l.var) & 1;
      if (bit != l.negated) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

Result<DefiningFormula> BuildBijunctive(const BooleanRelation& r) {
  if (!r.IsBijunctive()) {
    return Status::InvalidArgument("relation is not bijunctive");
  }
  DefiningFormula out;
  out.kind = kBijunctive;
  out.cnf.var_count = r.arity();
  const uint32_t k = r.arity();
  // All unit clauses, then all 2-clauses, that R satisfies — exactly the
  // paper's δ_R = ⋀ { c : R ⊨ c }, time O(|R| * k^2).
  for (uint32_t i = 0; i < k; ++i) {
    for (bool neg : {false, true}) {
      Clause c{Literal{i, neg}};
      if (RelationSatisfiesClause(r, c)) out.cnf.clauses.push_back(c);
    }
  }
  for (uint32_t i = 0; i < k; ++i) {
    for (uint32_t j = i + 1; j < k; ++j) {
      for (bool ni : {false, true}) {
        for (bool nj : {false, true}) {
          Clause c{Literal{i, ni}, Literal{j, nj}};
          if (RelationSatisfiesClause(r, c)) out.cnf.clauses.push_back(c);
        }
      }
    }
  }
  return out;
}

Result<DefiningFormula> BuildAffine(const BooleanRelation& r) {
  if (!r.IsAffine()) {
    return Status::InvalidArgument("relation is not affine");
  }
  const uint32_t k = r.arity();
  // R' = {(t, 1)}: one extra column holding the constant 1; the nullspace
  // of R' (as a matrix) is the space of linear equations R satisfies.
  Gf2Matrix matrix(k + 1);
  for (uint64_t t : r.tuples()) {
    matrix.AddRow(t | (1ULL << k));
  }
  DefiningFormula out;
  out.kind = kAffine;
  out.system.var_count = k;
  for (uint64_t a : matrix.NullspaceBasis()) {
    LinearEquation eq;
    for (uint32_t i = 0; i < k; ++i) {
      if ((a >> i) & 1) eq.vars.push_back(i);
    }
    // a_k * 1 appears on the left; move it to the right-hand side.
    eq.rhs = (a >> k) & 1;
    out.system.equations.push_back(std::move(eq));
  }
  return out;
}

/// Drops clauses subsumed by a smaller clause (literal-set inclusion).
/// Clauses here never exceed 64 literals (arity <= 63), so a clause is two
/// masks: positive vars and negative vars.
void PruneSubsumed(CnfFormula* cnf) {
  struct MaskPair {
    uint64_t pos = 0, neg = 0;
  };
  std::vector<MaskPair> masks(cnf->clauses.size());
  for (size_t i = 0; i < cnf->clauses.size(); ++i) {
    for (const Literal& l : cnf->clauses[i]) {
      (l.negated ? masks[i].neg : masks[i].pos) |= 1ULL << l.var;
    }
  }
  std::vector<uint8_t> dead(cnf->clauses.size(), 0);
  for (size_t i = 0; i < cnf->clauses.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < cnf->clauses.size(); ++j) {
      if (i == j || dead[j]) continue;
      bool i_subsumes_j = (masks[i].pos & ~masks[j].pos) == 0 &&
                          (masks[i].neg & ~masks[j].neg) == 0;
      // Break ties (equal clauses) by index so exactly one survives.
      bool equal = masks[i].pos == masks[j].pos && masks[i].neg == masks[j].neg;
      if (i_subsumes_j && (!equal || i < j)) dead[j] = 1;
    }
  }
  std::vector<Clause> kept;
  for (size_t i = 0; i < cnf->clauses.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(cnf->clauses[i]));
  }
  cnf->clauses = std::move(kept);
}

Result<DefiningFormula> BuildHorn(const BooleanRelation& r,
                                  uint32_t horn_arity_limit) {
  if (!r.IsHorn()) {
    return Status::InvalidArgument("relation is not Horn");
  }
  const uint32_t k = r.arity();
  if (k > horn_arity_limit) {
    return Status::Unsupported(
        "Horn defining-formula sweep bounded to arity " +
        std::to_string(horn_arity_limit) +
        "; use the direct Theorem 3.4 algorithm instead");
  }
  DefiningFormula out;
  out.kind = kHorn;
  out.cnf.var_count = k;
  // For every non-model s: the models above s (s ⊆ t bitwise) are closed
  // under ∧; their meet u is a model strictly above s, so some position j
  // has u_j = 1, s_j = 0 and the Horn clause One(s) -> j excludes s while
  // holding in R. With no model above s, One(s) -> false does the job.
  const uint64_t full = r.FullMask();
  for (uint64_t s = 0; s <= full; ++s) {
    if (r.Contains(s)) continue;
    bool any = false;
    uint64_t meet = full;
    for (uint64_t t : r.tuples()) {
      if ((s & t) == s) {
        meet &= t;
        any = true;
      }
    }
    Clause clause;
    uint64_t premise = s;
    while (premise != 0) {
      uint32_t i = static_cast<uint32_t>(std::countr_zero(premise));
      clause.push_back(Neg(i));
      premise &= premise - 1;
    }
    if (any) {
      uint64_t forced = meet & ~s;
      CQCS_CHECK(forced != 0);
      clause.push_back(Pos(static_cast<uint32_t>(std::countr_zero(forced))));
    }
    out.cnf.clauses.push_back(std::move(clause));
  }
  PruneSubsumed(&out.cnf);
  return out;
}

Result<DefiningFormula> BuildDualHorn(const BooleanRelation& r,
                                      uint32_t horn_arity_limit) {
  if (!r.IsDualHorn()) {
    return Status::InvalidArgument("relation is not dual Horn");
  }
  // Flip every tuple; the flipped relation is Horn; flipping the literals of
  // its Horn definition yields a dual-Horn definition of R.
  BooleanRelation flipped(r.arity());
  for (uint64_t t : r.tuples()) flipped.Add(~t & r.FullMask());
  CQCS_ASSIGN_OR_RETURN(DefiningFormula horn,
                        BuildDefiningFormula(flipped, kHorn,
                                             horn_arity_limit));
  DefiningFormula out;
  out.kind = kDualHorn;
  out.cnf = std::move(horn.cnf);
  for (Clause& c : out.cnf.clauses) {
    for (Literal& l : c) l.negated = !l.negated;
  }
  return out;
}

}  // namespace

Result<DefiningFormula> BuildDefiningFormula(const BooleanRelation& r,
                                             SchaeferClass kind,
                                             uint32_t horn_arity_limit) {
  switch (kind) {
    case kBijunctive:
      return BuildBijunctive(r);
    case kAffine:
      return BuildAffine(r);
    case kHorn:
      return BuildHorn(r, horn_arity_limit);
    case kDualHorn:
      return BuildDualHorn(r, horn_arity_limit);
    case kZeroValid:
    case kOneValid:
      return Status::InvalidArgument(
          "trivial Schaefer classes have no defining formula; the constant "
          "map is a homomorphism");
  }
  return Status::InvalidArgument("unknown Schaefer class");
}

bool Defines(const DefiningFormula& formula, const BooleanRelation& r) {
  const uint32_t k = r.arity();
  CQCS_CHECK_MSG(k <= 24, "Defines() sweeps 2^arity assignments");
  for (uint64_t s = 0; s <= r.FullMask(); ++s) {
    std::vector<uint8_t> assignment(k);
    for (uint32_t i = 0; i < k; ++i) {
      assignment[i] = static_cast<uint8_t>((s >> i) & 1);
    }
    bool is_model;
    if (formula.kind == kAffine) {
      is_model = true;
      for (const LinearEquation& eq : formula.system.equations) {
        int sum = 0;
        for (uint32_t v : eq.vars) sum ^= assignment[v];
        if (sum != (eq.rhs ? 1 : 0)) {
          is_model = false;
          break;
        }
      }
    } else {
      is_model = Satisfies(formula.cnf, assignment);
    }
    if (is_model != r.Contains(s)) return false;
  }
  return true;
}

}  // namespace cqcs
