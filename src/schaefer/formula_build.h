// Construction of defining formulas δ_R for nontrivial Schaefer relations
// (Theorem 3.2 of the paper).
//
//   - bijunctive: the conjunction of ALL 1- and 2-clauses over the positions
//     that R satisfies — O(k²) clauses, the construction in the paper;
//   - affine: Gaussian elimination on R' = {(t,1) : t ∈ R}; each nullspace
//     basis vector is one linear equation, so δ_R has at most min(k+1, |R|)
//     equations;
//   - Horn / dual Horn: an exact CNF via a bounded sweep of the model
//     complement (each non-model s contributes the clause
//     premise(One(s)) → j, where j is forced by the ∧-closure of the
//     superset models), with subsumption pruning. Bounded to arity <=
//     `horn_arity_limit` because the sweep enumerates 2^k assignments; the
//     uniform algorithms use the direct Theorem 3.4 route when the bound
//     does not hold.

#ifndef CQCS_SCHAEFER_FORMULA_BUILD_H_
#define CQCS_SCHAEFER_FORMULA_BUILD_H_

#include "common/status.h"
#include "schaefer/boolean_relation.h"
#include "schaefer/cnf.h"
#include "schaefer/gf2.h"

namespace cqcs {

/// A defining formula for a Boolean relation: CNF for the three clause-based
/// classes, a linear system for the affine class. Variables are the
/// positions 0..arity-1 of the relation.
struct DefiningFormula {
  SchaeferClass kind = kHorn;
  CnfFormula cnf;       // kind in {kHorn, kDualHorn, kBijunctive}
  LinearSystem system;  // kind == kAffine
};

/// Builds δ_R of the requested kind. Errors:
///   InvalidArgument — R is not in the requested class;
///   Unsupported — Horn/dual-Horn construction beyond `horn_arity_limit`.
Result<DefiningFormula> BuildDefiningFormula(const BooleanRelation& r,
                                             SchaeferClass kind,
                                             uint32_t horn_arity_limit = 16);

/// Exhaustively verifies models(δ) == R (2^arity sweep; test helper).
bool Defines(const DefiningFormula& formula, const BooleanRelation& r);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_FORMULA_BUILD_H_
