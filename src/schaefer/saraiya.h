// Saraiya's tractable case of conjunctive-query containment
// (Proposition 3.6): if every database predicate occurs at most twice in
// the body of Q1, then "Q1 ⊆ Q2?" is decidable in polynomial time.
//
// The paper's derivation, which this module implements literally:
//   1. Q1 ⊆ Q2 iff hom(D_{Q2} -> D_{Q1})           (Theorem 2.1);
//   2. Booleanize the pair (D_{Q2}, D_{Q1})         (Lemma 3.5);
//   3. every relation of D_{Q1} has at most two tuples, and a Boolean
//      relation of cardinality <= 2 is bijunctive (majority of three tuples
//      from a two-element set repeats one of them);
//   4. run the direct bijunctive algorithm          (Theorems 3.3/3.4).

#ifndef CQCS_SCHAEFER_SARAIYA_H_
#define CQCS_SCHAEFER_SARAIYA_H_

#include "common/status.h"
#include "cq/query.h"

namespace cqcs {

/// Decides Q1 ⊆ Q2 in polynomial time for two-atom Q1. Errors:
/// InvalidArgument when Q1 is not a two-atom query, when vocabularies or
/// head arities differ, or when a query is invalid.
Result<bool> TwoAtomContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2);

}  // namespace cqcs

#endif  // CQCS_SCHAEFER_SARAIYA_H_
