// Queue-driven GYO ear removal — the one source of truth for α-acyclicity.
//
// GYO reduces a hypergraph by repeatedly removing ears: an edge e is an
// ear when every vertex of e is either exclusive to e or covered by one
// single other live edge w (the witness; e becomes w's child in the join
// forest). The hypergraph is α-acyclic iff the reduction empties it, and
// GYO is Church–Rosser, so any maximal removal order yields the verdict.
//
// The seed implementation rescanned every edge pair per pass (O(m² · ‖H‖)
// with up to m passes). This one is worklist-driven: an edge is
// re-examined only when one of its vertices loses its last other
// occurrence — the only event that can newly make it an ear (witness sets
// only shrink over time; an edge's shared-vertex set S_e shrinks exactly
// when some vertex's live-occurrence count hits 1, and at that moment the
// sole live edge holding the vertex is enqueued). Each vertex triggers
// that scan at most once, so the trigger machinery is O(‖H‖) total and
// the whole reduction is near-linear: O(‖H‖) plus the witness subset
// checks, each bounded by the pivot vertex's live degree.
//
// Callers: cq/acyclic.cc (join trees for Yannakakis) and api/profile.cc /
// api/problem.cc (the router's acyclicity verdict) — previously two
// independent ear-removal implementations that had to agree by luck.

#ifndef CQCS_CQ_GYO_H_
#define CQCS_CQ_GYO_H_

#include <optional>
#include <span>
#include <vector>

#include "core/structure.h"
#include "cq/query.h"

namespace cqcs {

struct JoinTree;  // cq/acyclic.h

/// Runs GYO on the hypergraph with vertices 0..var_count-1 and one edge
/// per entry of `edges` (duplicate vertices within an edge are fine).
/// Returns the join forest (parent[i] = witness edge, kNoParent for
/// roots; parents are always removed after their children), or nullopt
/// when the hypergraph is cyclic.
std::optional<JoinTree> GyoJoinForest(
    size_t var_count, std::span<const std::vector<VarId>> edges);

/// The query's hypergraph: one edge per atom (the atom's argument set).
std::vector<std::vector<VarId>> QueryHyperedges(const ConjunctiveQuery& q);

/// GYO verdict for a structure, taken directly on its tuples (one edge
/// per tuple) — the same hypergraph as CanonicalQuery(a)'s, without
/// materializing the query. This is what the engine router calls.
bool IsAcyclicStructure(const Structure& a);

}  // namespace cqcs

#endif  // CQCS_CQ_GYO_H_
