#include "cq/canonical.h"

#include "common/check.h"

namespace cqcs {

namespace {

CanonicalDb MakeImpl(const ConjunctiveQuery& q, bool head_markers) {
  CQCS_CHECK_MSG(q.Validate().ok(), "canonical database of an invalid query");
  VocabularyPtr vocab = q.vocabulary();
  std::vector<RelId> head_rel;
  if (head_markers) {
    auto extended = std::make_shared<Vocabulary>();
    for (RelId id = 0; id < vocab->size(); ++id) {
      extended->AddRelation(vocab->name(id), vocab->arity(id));
    }
    for (size_t i = 0; i < q.arity(); ++i) {
      head_rel.push_back(
          extended->AddRelation("__head_" + std::to_string(i), 1));
    }
    vocab = extended;
  }

  Structure db(vocab, q.var_count());
  for (const Atom& atom : q.atoms()) {
    // VarId and Element are both dense uint32 indices; the identity map is
    // the canonical correspondence.
    std::vector<Element> tuple(atom.args.begin(), atom.args.end());
    db.AddTuple(atom.rel, tuple);
  }
  std::vector<Element> head(q.head().begin(), q.head().end());
  if (head_markers) {
    for (size_t i = 0; i < head.size(); ++i) {
      db.AddTuple(head_rel[i], {head[i]});
    }
  }
  return CanonicalDb{std::move(vocab), std::move(db), std::move(head)};
}

}  // namespace

CanonicalDb MakeCanonicalDb(const ConjunctiveQuery& q) {
  return MakeImpl(q, /*head_markers=*/false);
}

CanonicalDb MakeCanonicalDbWithHeadMarkers(const ConjunctiveQuery& q) {
  return MakeImpl(q, /*head_markers=*/true);
}

ConjunctiveQuery CanonicalQuery(const Structure& d,
                                const std::string& head_name) {
  ConjunctiveQuery q(d.vocabulary(), head_name);
  const Vocabulary& vocab = *d.vocabulary();
  // One variable per element, named after its index.
  std::vector<VarId> vars;
  vars.reserve(d.universe_size());
  for (size_t e = 0; e < d.universe_size(); ++e) {
    // Built piecewise: GCC 12 mis-fires -Wrestrict on `"v" + to_string(e)`
    // at -O2 (PR105329), and the library builds -Werror.
    std::string name(1, 'v');
    name += std::to_string(e);
    vars.push_back(q.GetOrCreateVar(name));
  }
  for (RelId id = 0; id < vocab.size(); ++id) {
    const Relation& r = d.relation(id);
    for (uint32_t t = 0; t < r.tuple_count(); ++t) {
      std::vector<VarId> args;
      args.reserve(r.arity());
      for (Element e : r.tuple(t)) args.push_back(vars[e]);
      q.AddAtom(id, std::move(args));
    }
  }
  q.SetHead({});
  return q;
}

}  // namespace cqcs
