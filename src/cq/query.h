// Conjunctive queries: positive existential formulas with conjunction only,
// written as rules  Q(X1,...,Xn) :- R(...), S(...), ...  (Section 2 of the
// paper). All arguments are variables; the head lists the distinguished
// (free) variables, the remaining body variables are existentially
// quantified.

#ifndef CQCS_CQ_QUERY_H_
#define CQCS_CQ_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/vocabulary.h"

namespace cqcs {

/// Index of a variable within one query.
using VarId = uint32_t;

/// One subgoal R(x_{i1},...,x_{ik}) of a query body.
struct Atom {
  RelId rel = 0;
  std::vector<VarId> args;

  bool operator==(const Atom& other) const {
    return rel == other.rel && args == other.args;
  }
};

/// An n-ary conjunctive query over a fixed EDB vocabulary.
class ConjunctiveQuery {
 public:
  /// Creates an empty query (no atoms, nullary head) named `head_name`.
  ConjunctiveQuery(VocabularyPtr vocabulary, std::string head_name = "Q");

  const VocabularyPtr& vocabulary() const { return vocabulary_; }
  const std::string& head_name() const { return head_name_; }

  /// Interns a variable by name, creating it on first use.
  VarId GetOrCreateVar(std::string_view name);
  /// Looks up a variable without creating it.
  std::optional<VarId> FindVar(std::string_view name) const;

  size_t var_count() const { return var_names_.size(); }
  const std::string& var_name(VarId v) const;

  /// Appends a body atom. CHECK-fails on arity mismatch or unknown RelId.
  void AddAtom(RelId rel, std::vector<VarId> args);
  /// Convenience: atom by relation name and variable names.
  Status AddAtomByName(std::string_view rel_name,
                       const std::vector<std::string>& var_names);

  /// Sets the tuple of distinguished variables (may repeat; may be empty for
  /// a Boolean query).
  void SetHead(std::vector<VarId> head);

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<VarId>& head() const { return head_; }
  size_t arity() const { return head_.size(); }

  /// Safety and well-formedness: every head variable occurs in the body,
  /// all atom arities match the vocabulary.
  Status Validate() const;

  /// Size ‖Q‖ = number of variables plus total length of all atoms.
  size_t Size() const;

  /// True if every database predicate occurs at most twice in the body —
  /// Saraiya's class (Proposition 3.6).
  bool IsTwoAtomQuery() const;

  /// A copy with atom `index` removed (head unchanged). Used by Minimize.
  ConjunctiveQuery WithoutAtom(size_t index) const;

  bool operator==(const ConjunctiveQuery& other) const;

 private:
  VocabularyPtr vocabulary_;
  std::string head_name_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_ids_;
  std::vector<Atom> atoms_;
  std::vector<VarId> head_;
};

/// Renders the query as a rule: "Q(X, Y) :- E(X, Z), E(Z, Y)."
std::string ToString(const ConjunctiveQuery& q);

}  // namespace cqcs

#endif  // CQCS_CQ_QUERY_H_
