#include "cq/acyclic.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"
#include "cq/canonical.h"

namespace cqcs {

namespace {

/// GYO reduction. Edges are var-sets per atom; returns the join forest, or
/// nullopt when the hypergraph is cyclic.
std::optional<JoinTree> Gyo(const ConjunctiveQuery& q) {
  const size_t m = q.atoms().size();
  std::vector<std::set<VarId>> edge(m);
  for (size_t i = 0; i < m; ++i) {
    edge[i].insert(q.atoms()[i].args.begin(), q.atoms()[i].args.end());
  }
  std::vector<uint8_t> alive(m, 1);
  JoinTree tree;
  tree.parent.assign(m, JoinTree::kNoParent);
  size_t alive_count = m;

  bool changed = true;
  while (changed) {
    changed = false;
    // Rule 1: drop vertices that occur in exactly one live edge.
    std::map<VarId, int> occurrences;
    for (size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      for (VarId v : edge[i]) ++occurrences[v];
    }
    for (size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      for (auto it = edge[i].begin(); it != edge[i].end();) {
        if (occurrences[*it] == 1) {
          it = edge[i].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // Rule 2: an edge contained in another live edge becomes its child.
    for (size_t i = 0; i < m && alive_count > 1; ++i) {
      if (!alive[i]) continue;
      for (size_t j = 0; j < m; ++j) {
        if (i == j || !alive[j]) continue;
        if (std::includes(edge[j].begin(), edge[j].end(), edge[i].begin(),
                          edge[i].end())) {
          tree.parent[i] = static_cast<uint32_t>(j);
          alive[i] = 0;
          --alive_count;
          changed = true;
          break;
        }
      }
    }
  }
  if (alive_count > 1) return std::nullopt;  // cyclic
  return tree;
}

struct AtomTable {
  std::vector<VarId> vars;  // sorted distinct
  std::set<std::vector<Element>> rows;
};

/// The satisfying assignments of one atom over database d.
AtomTable MaterializeAtom(const Atom& atom, const Structure& d) {
  AtomTable table;
  table.vars.assign(atom.args.begin(), atom.args.end());
  std::sort(table.vars.begin(), table.vars.end());
  table.vars.erase(std::unique(table.vars.begin(), table.vars.end()),
                   table.vars.end());
  const Relation& rel = d.relation(atom.rel);
  std::vector<Element> row(table.vars.size());
  for (uint32_t t = 0; t < rel.tuple_count(); ++t) {
    std::span<const Element> tup = rel.tuple(t);
    bool ok = true;
    for (size_t p = 0; p < tup.size() && ok; ++p) {
      for (size_t qq = p + 1; qq < tup.size() && ok; ++qq) {
        if (atom.args[p] == atom.args[qq] && tup[p] != tup[qq]) ok = false;
      }
    }
    if (!ok) continue;
    for (size_t p = 0; p < tup.size(); ++p) {
      size_t pos = static_cast<size_t>(
          std::lower_bound(table.vars.begin(), table.vars.end(),
                           atom.args[p]) -
          table.vars.begin());
      row[pos] = tup[p];
    }
    table.rows.insert(row);
  }
  return table;
}

/// parent := parent ⋉ child (keep parent rows with a matching child row on
/// the shared variables).
void Semijoin(AtomTable& parent, const AtomTable& child) {
  std::vector<size_t> shared_parent, shared_child;
  for (size_t i = 0; i < parent.vars.size(); ++i) {
    auto it = std::lower_bound(child.vars.begin(), child.vars.end(),
                               parent.vars[i]);
    if (it != child.vars.end() && *it == parent.vars[i]) {
      shared_parent.push_back(i);
      shared_child.push_back(static_cast<size_t>(it - child.vars.begin()));
    }
  }
  std::set<std::vector<Element>> child_keys;
  for (const auto& row : child.rows) {
    std::vector<Element> key;
    key.reserve(shared_child.size());
    for (size_t i : shared_child) key.push_back(row[i]);
    child_keys.insert(std::move(key));
  }
  for (auto it = parent.rows.begin(); it != parent.rows.end();) {
    std::vector<Element> key;
    key.reserve(shared_parent.size());
    for (size_t i : shared_parent) key.push_back((*it)[i]);
    if (child_keys.count(key) == 0) {
      it = parent.rows.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

bool IsAcyclicQuery(const ConjunctiveQuery& q) {
  return Gyo(q).has_value();
}

Result<JoinTree> BuildJoinTree(const ConjunctiveQuery& q) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  auto tree = Gyo(q);
  if (!tree.has_value()) {
    return Status::InvalidArgument("the query's hypergraph is cyclic");
  }
  return *std::move(tree);
}

Result<bool> EvaluateBooleanAcyclic(const ConjunctiveQuery& q,
                                    const Structure& d) {
  CQCS_RETURN_IF_ERROR(q.Validate());
  if (!q.vocabulary()->Equals(*d.vocabulary())) {
    return Status::InvalidArgument("query/database vocabulary mismatch");
  }
  CQCS_ASSIGN_OR_RETURN(JoinTree tree, BuildJoinTree(q));
  const size_t m = q.atoms().size();
  if (m == 0) return true;
  std::vector<AtomTable> tables;
  tables.reserve(m);
  for (const Atom& atom : q.atoms()) {
    tables.push_back(MaterializeAtom(atom, d));
    if (tables.back().rows.empty()) return false;
  }
  // Children were eliminated before their parents in GYO order; a reverse
  // sweep over elimination is unavailable, but semijoining children into
  // parents repeatedly until stable is equivalent and still polynomial.
  // Do it in dependency order instead: process nodes so that every child is
  // handled before its parent (topological order on the forest).
  std::vector<uint32_t> order;
  std::vector<uint32_t> indegree(m, 0);  // number of children not yet done
  for (size_t i = 0; i < m; ++i) {
    if (tree.parent[i] != JoinTree::kNoParent) ++indegree[tree.parent[i]];
  }
  std::vector<uint32_t> stack;
  for (uint32_t i = 0; i < m; ++i) {
    if (indegree[i] == 0) stack.push_back(i);
  }
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    order.push_back(node);
    uint32_t p = tree.parent[node];
    if (p != JoinTree::kNoParent && --indegree[p] == 0) stack.push_back(p);
  }
  CQCS_CHECK(order.size() == m);
  for (uint32_t node : order) {
    uint32_t p = tree.parent[node];
    if (p == JoinTree::kNoParent) {
      if (tables[node].rows.empty()) return false;
      continue;
    }
    Semijoin(tables[p], tables[node]);
    if (tables[p].rows.empty()) return false;
  }
  return true;
}

Result<bool> AcyclicContainment(const ConjunctiveQuery& q1,
                                const ConjunctiveQuery& q2) {
  CQCS_RETURN_IF_ERROR(q1.Validate());
  CQCS_RETURN_IF_ERROR(q2.Validate());
  if (!q1.vocabulary()->Equals(*q2.vocabulary())) {
    return Status::InvalidArgument("queries have different vocabularies");
  }
  if (q1.arity() != q2.arity()) {
    return Status::InvalidArgument("queries have different head arities");
  }
  // Attach head markers to Q2's body (unary atoms are ears, so acyclicity
  // is preserved iff Q2 was acyclic), then evaluate over D_{Q1}.
  CanonicalDb d1 = MakeCanonicalDbWithHeadMarkers(q1);
  ConjunctiveQuery q2_marked(d1.vocabulary, q2.head_name());
  for (VarId v = 0; v < q2.var_count(); ++v) {
    q2_marked.GetOrCreateVar(q2.var_name(v));
  }
  for (const Atom& atom : q2.atoms()) {
    q2_marked.AddAtom(atom.rel, atom.args);
  }
  for (size_t i = 0; i < q2.head().size(); ++i) {
    auto marker = d1.vocabulary->FindRelation("__head_" + std::to_string(i));
    CQCS_CHECK(marker.has_value());
    q2_marked.AddAtom(*marker, {q2.head()[i]});
  }
  q2_marked.SetHead({});
  if (!IsAcyclicQuery(q2_marked)) {
    return Status::InvalidArgument("Q2 is not acyclic");
  }
  return EvaluateBooleanAcyclic(q2_marked, d1.structure);
}

}  // namespace cqcs
